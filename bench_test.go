// Benchmarks regenerating the paper's evaluation artifacts (one bench
// per table/figure) plus ablations of the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers differ from the paper's 9-node testbed; the shape
// (who wins, scaling slope) is what each bench reproduces. Larger
// inputs are behind cmd/frbench -scale paper.
package faultyrank_test

import (
	"fmt"
	"testing"

	"faultyrank/internal/bench"
	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lfsck"
	"faultyrank/internal/lustre"
	"faultyrank/internal/online"
	"faultyrank/internal/rmat"
	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
	"faultyrank/internal/workload"
)

// --- Table II: the worked example ------------------------------------------

func BenchmarkTable2ExampleGraph(b *testing.B) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Kind: graph.KindDirent},
		{Src: 0, Dst: 2, Kind: graph.KindDirent},
		{Src: 1, Dst: 0, Kind: graph.KindLinkEA},
		{Src: 3, Dst: 1, Kind: graph.KindFilterFID},
	}
	g := graph.NewBidirected(4, edges, 0)
	opt := core.DefaultOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Run(g, opt)
		if !res.Converged {
			b.Fatal("did not converge")
		}
	}
}

// --- Tables III/IV: FaultyRank on benchmark graphs --------------------------

// table4Datasets are smoke-scale stand-ins for Table III's inputs; the
// full sizes run via cmd/frbench.
func table4Datasets() []bench.Dataset {
	return []bench.Dataset{
		{Name: "AmazonLike", Vertices: 20000, Edges: workload.AmazonLike(20000, 12, 1)},
		{Name: "RoadNetLike", Vertices: 200 * 150, Edges: workload.RoadNetLike(200, 150, 2)},
		{Name: "RMAT-15", Vertices: 1 << 15, Edges: rmat.Generate(rmat.Graph500(15, 8, 3), 0)},
		{Name: "RMAT-17", Vertices: 1 << 17, Edges: rmat.Generate(rmat.Graph500(17, 8, 3), 0)},
	}
}

func BenchmarkTable4GraphBuild(b *testing.B) {
	for _, d := range table4Datasets() {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := graph.NewBidirectedUntyped(d.Vertices, d.Edges, 0)
				if g.N() != d.Vertices {
					b.Fatal("bad graph")
				}
			}
			b.ReportMetric(float64(len(d.Edges)), "edges")
		})
	}
}

func BenchmarkTable4FaultyRank(b *testing.B) {
	for _, d := range table4Datasets() {
		d := d
		g := graph.NewBidirectedUntyped(d.Vertices, d.Edges, 0)
		opt := core.DefaultOptions()
		b.Run(d.Name, func(b *testing.B) {
			b.ReportAllocs()
			var iters int
			for i := 0; i < b.N; i++ {
				res := core.Run(g, opt)
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
			b.ReportMetric(float64(g.MemoryBytes())/(1<<20), "graph-MiB")
		})
	}
}

// --- Table V: degree sweep ---------------------------------------------------

func BenchmarkTable5Degree(b *testing.B) {
	for _, deg := range []int{4, 8, 16, 32} {
		deg := deg
		p := rmat.Graph500(14, deg, 7)
		edges := rmat.Generate(p, 0)
		g := graph.NewBidirectedUntyped(p.NumVertices(), edges, 0)
		opt := core.DefaultOptions()
		b.Run(fmt.Sprintf("deg%d", deg), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Run(g, opt)
			}
			b.ReportMetric(float64(g.Fwd.NumEdges()), "edges")
		})
	}
}

// --- Table VI: end-to-end FaultyRank vs LFSCK --------------------------------

func table6Cluster(b *testing.B, inodes int64) *lustre.Cluster {
	b.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := workload.Age(c, workload.AgeSpec{
		TargetMDTInodes: inodes, ChurnFraction: 0.15, Seed: inodes,
	}); err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkTable6FaultyRankEndToEnd(b *testing.B) {
	for _, inodes := range []int64{2000, 8000} {
		inodes := inodes
		b.Run(fmt.Sprintf("mdtInodes%d", inodes), func(b *testing.B) {
			c := table6Cluster(b, inodes)
			images := checker.ClusterImages(c)
			opt := checker.DefaultOptions()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := checker.Run(images, opt)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Findings) != 0 {
					b.Fatal("unexpected findings")
				}
			}
		})
	}
}

func BenchmarkTable6LFSCK(b *testing.B) {
	for _, inodes := range []int64{2000, 8000} {
		inodes := inodes
		b.Run(fmt.Sprintf("mdtInodes%d", inodes), func(b *testing.B) {
			c := table6Cluster(b, inodes)
			images := checker.ClusterImages(c)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := lfsck.Run(images, lfsck.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Actions) != 0 {
					b.Fatal("unexpected actions")
				}
			}
		})
	}
}

// --- Fig. 7: the functional scenarios -----------------------------------------

func BenchmarkFig7Scenarios(b *testing.B) {
	for s := inject.Scenario(0); s < inject.NumScenarios; s++ {
		s := s
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := lustre.NewCluster(lustre.Config{
					NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
					Geometry: ldiskfs.CompactGeometry(),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := c.MkdirAll("/d"); err != nil {
					b.Fatal(err)
				}
				for f := 0; f < 8; f++ {
					if _, err := c.Create(fmt.Sprintf("/d/f%d", f), 3*64<<10); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := inject.Inject(c, s, "/d/f3"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := checker.RunCluster(c, checker.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Findings) == 0 {
					b.Fatal("fault not detected")
				}
			}
		})
	}
}

// --- Ablations -----------------------------------------------------------------

// BenchmarkAblationSmoothing shows why the smoothed update is the
// default: without it, tree-shaped graphs oscillate and hit the
// iteration cap.
func BenchmarkAblationSmoothing(b *testing.B) {
	c := table6Cluster(b, 4000)
	res0, err := checker.RunCluster(c, checker.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	g := res0.Graph
	for _, sigma := range []float64{0, 0.25, 0.5, 0.75} {
		sigma := sigma
		b.Run(fmt.Sprintf("sigma%.2f", sigma), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Smoothing = sigma
			var iters int
			var converged bool
			for i := 0; i < b.N; i++ {
				r := core.Run(g, opt)
				iters, converged = r.Iterations, r.Converged
			}
			b.ReportMetric(float64(iters), "iterations")
			if !converged {
				b.ReportMetric(1, "hit-cap")
			}
		})
	}
}

// BenchmarkAblationUnpairedWeight compares the paper's 1/10 weighting
// against the unweighted distribution its Table II numbers imply.
func BenchmarkAblationUnpairedWeight(b *testing.B) {
	p := rmat.Graph500(14, 8, 9)
	g := graph.NewBidirectedUntyped(p.NumVertices(), rmat.Generate(p, 0), 0)
	for _, w := range []float64{0.1, 0.5, 1.0} {
		w := w
		b.Run(fmt.Sprintf("w%.1f", w), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.UnpairedWeight = w
			for i := 0; i < b.N; i++ {
				core.Run(g, opt)
			}
		})
	}
}

// BenchmarkAblationWorkers measures the parallel scaling of the rank
// kernel (the paper's holistic in-DRAM design is what makes this the
// cheap stage).
func BenchmarkAblationWorkers(b *testing.B) {
	p := rmat.Graph500(16, 8, 11)
	g := graph.NewBidirectedUntyped(p.NumVertices(), rmat.Generate(p, 0), 0)
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			opt := core.DefaultOptions()
			opt.Workers = w
			for i := 0; i < b.N; i++ {
				core.Run(g, opt)
			}
		})
	}
}

// BenchmarkAblationTransport compares in-process hand-off against the
// deployment-faithful TCP bulk transfer of partial graphs.
func BenchmarkAblationTransport(b *testing.B) {
	c := table6Cluster(b, 4000)
	images := checker.ClusterImages(c)
	for _, tcp := range []bool{false, true} {
		tcp := tcp
		name := "inprocess"
		if tcp {
			name = "tcp"
		}
		b.Run(name, func(b *testing.B) {
			opt := checker.DefaultOptions()
			opt.UseTCP = tcp
			for i := 0; i < b.N; i++ {
				if _, err := checker.Run(images, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineVsOfflineCheck contrasts the online tracker's
// incremental check (25 mutated files) with a full offline pipeline on
// the same cluster. Per the paper's §VI design, the *scan* is what goes
// incremental (the rank still runs on the full latest snapshot), so the
// saving shows in the scan-s/update-s metrics; end-to-end times converge
// at sizes where graph build + iteration dominate.
func BenchmarkOnlineVsOfflineCheck(b *testing.B) {
	c := table6Cluster(b, 6000)
	images := checker.ClusterImages(c)
	b.Run("offline-full", func(b *testing.B) {
		opt := checker.DefaultOptions()
		var scan float64
		for i := 0; i < b.N; i++ {
			res, err := checker.Run(images, opt)
			if err != nil {
				b.Fatal(err)
			}
			scan = res.TScan.Seconds()
		}
		b.ReportMetric(scan*1000, "scan-ms")
	})
	hotSeq := 0 // survives benchmark re-invocations with larger b.N
	b.Run("online-incremental", func(b *testing.B) {
		tr, err := online.NewTracker(images, checker.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			for j := 0; j < 25; j++ {
				hotSeq++
				if _, err := c.Create(fmt.Sprintf("/hot-%06d.dat", hotSeq), 64<<10); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			res, err := tr.Check()
			if err != nil {
				b.Fatal(err)
			}
			n = res.InodesRefreshed
			b.ReportMetric(res.TUpdate.Seconds()*1000, "scan-ms")
		}
		b.ReportMetric(float64(n), "inodes-refreshed")
	})
}

// --- ingestion pipeline -------------------------------------------------------

// BenchmarkIngestion times the streaming scan→merge→CSR span of the
// checker at several worker counts on one shared aged cluster. On a
// multi-core host the 8-worker run lands measurably below 1 worker
// (chunked scans, the sharded interner and the contention-free CSR
// build all scale); every run yields the identical GID space.
func BenchmarkIngestion(b *testing.B) {
	c := table6Cluster(b, 8000)
	images := checker.ClusterImages(c)
	for _, w := range []int{1, 2, 8} {
		w := w
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			var scan, merge, build float64
			for i := 0; i < b.N; i++ {
				row, err := bench.MeasureIngest(images, w, 0)
				if err != nil {
					b.Fatal(err)
				}
				scan = row.Scan.Seconds()
				merge = row.Merge.Seconds()
				build = row.Build.Seconds()
			}
			b.ReportMetric(scan*1000, "scan-ms")
			b.ReportMetric(merge*1000, "merge-ms")
			b.ReportMetric(build*1000, "build-ms")
		})
	}
}

// BenchmarkIngestionTelemetry is the telemetry overhead guard: the same
// ingest run with no-op instruments (nil registry — the uninstrumented
// code path) and with a live registry. The instrumented arm must stay
// within a few percent of the no-op arm: counters are batched per block
// group and per chunk, never per inode, so the delta is a handful of
// atomic adds per group. Compare the two sub-benchmark times; the ≤2%
// budget is documented in DESIGN.md §7.
func BenchmarkIngestionTelemetry(b *testing.B) {
	c := table6Cluster(b, 8000)
	images := checker.ClusterImages(c)
	b.Run("noop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.MeasureIngestObserved(images, 0, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("instrumented", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		for i := 0; i < b.N; i++ {
			if _, err := bench.MeasureIngestObserved(images, 0, 0, reg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(reg.Counter("scanner_inodes_scanned_total").Value())/float64(b.N), "inodes/run")
	})
}

// BenchmarkIngestionJournal extends the telemetry overhead guard to the
// flight recorder: the registry-instrumented ingest with a journal
// attached (sampled scanner chunk events, aggregator merge milestones)
// against the registry-only arm. The journaled arm must stay within the
// same ≤2% budget documented in DESIGN.md §7 — the hot-path chunk event
// carries no attributes and is sampled, so the common case costs one
// atomic add and a branch.
func BenchmarkIngestionJournal(b *testing.B) {
	c := table6Cluster(b, 8000)
	images := checker.ClusterImages(c)
	b.Run("registry", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		for i := 0; i < b.N; i++ {
			if _, err := bench.MeasureIngestObserved(images, 0, 0, reg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("journaled", func(b *testing.B) {
		reg := telemetry.NewRegistry()
		j := telemetry.NewJournal(0)
		j.SetServer("bench")
		for i := 0; i < b.N; i++ {
			if _, err := bench.MeasureIngestJournaled(images, 0, 0, reg, j); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkScannerMDT(b *testing.B) {
	c := table6Cluster(b, 8000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := scanner.ScanImage(c.MDT.Img, 0)
		if err != nil {
			b.Fatal(err)
		}
		if p.Stats.InodesScanned == 0 {
			b.Fatal("nothing scanned")
		}
	}
}

func BenchmarkCSRBuild(b *testing.B) {
	p := rmat.Graph500(16, 8, 13)
	edges := rmat.Generate(p, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		graph.BuildCSR(p.NumVertices(), edges, false, 0)
	}
}

func BenchmarkRMATGenerate(b *testing.B) {
	p := rmat.Graph500(16, 8, 17)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rmat.Generate(p, 0)
	}
}
