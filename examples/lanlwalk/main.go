// Lanlwalk: recreate the paper's evaluation dataset methodology (§V-A):
// populate a cluster with a LANL-archive-style namespace (realistic
// directory shapes, the published file-size distribution, 64 KiB
// stripes so layout metadata is rich), then run a full FaultyRank check
// and print the stage timing breakdown the paper reports in Table VI.
package main

import (
	"flag"
	"fmt"
	"log"

	"faultyrank/internal/checker"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/workload"
)

func main() {
	log.SetFlags(0)
	files := flag.Int("files", 20000, "files to create")
	osts := flag.Int("osts", 8, "number of OSTs")
	mdts := flag.Int("mdts", 1, "number of MDTs (>1 = DNE)")
	useTCP := flag.Bool("tcp", false, "ship partial graphs over localhost TCP")
	flag.Parse()

	cluster, err := lustre.NewCluster(lustre.Config{
		NumOSTs: *osts, NumMDTs: *mdts, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.DefaultGeometry(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("populating LANL-style tree with %d files...\n", *files)
	st, err := workload.Populate(cluster, workload.DefaultTreeSpec(*files, 7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d dirs, %d files, %d stripe objects, %.1f GiB logical data\n",
		st.Dirs, st.Files, st.Objects, float64(st.Bytes)/(1<<30))
	fmt.Printf("  MDT inodes: %d, total inodes: %d\n", cluster.MDTInodes(), cluster.TotalInodes())

	opt := checker.DefaultOptions()
	opt.UseTCP = *useTCP
	res, err := checker.RunCluster(cluster, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full check: T_scan=%.3fs  T_graph=%.3fs  T_FR=%.3fs  total=%.3fs\n",
		res.TScan.Seconds(), res.TGraph.Seconds(), res.TRank.Seconds(), res.Total().Seconds())
	fmt.Printf("graph: %d vertices, %d edges, %d unpaired — findings: %d\n",
		res.Stats.Vertices, res.Stats.Edges, res.Stats.UnpairedEdges, len(res.Findings))
	if len(res.Findings) == 0 {
		fmt.Println("freshly populated file system is consistent, as expected ✔")
	}
}
