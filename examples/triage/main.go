// Triage: reproduce the paper's Fig. 7 head-to-head — inject each of
// the eight inconsistency scenarios into identical clusters and compare
// how FaultyRank and the rule-based LFSCK baseline handle them.
package main

import (
	"fmt"
	"log"

	"faultyrank/internal/bench"
)

func main() {
	log.SetFlags(0)
	fmt.Println("running all eight Fig. 7 scenarios through both checkers...")
	rows, err := bench.Fig7Compare(bench.ScaleSmoke)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(bench.Fig7Table(rows).Render())

	frWins := 0
	for _, r := range rows {
		if r.FRIdentified && r.FRRepaired && (!r.LFConsistent || r.LFStranded > 0 || r.LFStubs > 0) {
			frWins++
		}
	}
	fmt.Printf("\nFaultyRank identified and repaired all %d scenarios;\n", len(rows))
	fmt.Printf("LFSCK stranded data or left inconsistencies in %d of them.\n", frWins)
}
