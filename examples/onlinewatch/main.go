// Onlinewatch: demonstrate the online-FaultyRank extension (the paper's
// §VIII future work). A Tracker follows a live cluster through its
// change feed: checks after mutation batches re-parse only the touched
// inodes, and corruption is caught within one online check — no unmount,
// no full rescan.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/lustre"
	"faultyrank/internal/online"
	"faultyrank/internal/workload"
)

func main() {
	log.SetFlags(0)

	cfg := lustre.DefaultConfig()
	cfg.NumOSTs = 4
	cluster, err := lustre.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := workload.Populate(cluster, workload.DefaultTreeSpec(2000, 7)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live cluster: %d inodes total\n", cluster.TotalInodes())

	tracker, err := online.NewTracker(checker.ClusterImages(cluster), checker.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tracker initialised (one full scan; everything after is incremental)")

	// Normal activity: the next check re-parses only what changed.
	for i := 0; i < 25; i++ {
		if _, err := cluster.Create(fmt.Sprintf("/hot-%02d.dat", i), 2*64<<10); err != nil {
			log.Fatal(err)
		}
	}
	res, err := tracker.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 25 creates: refreshed %d of %d inodes in %v — findings: %d\n",
		res.InodesRefreshed, cluster.TotalInodes(), res.TUpdate.Round(1000), len(res.Findings))

	// A fault lands mid-flight; the next online check catches it.
	inj, err := inject.Inject(cluster, inject.MismatchFilterFID, "/hot-07.dat")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected live: %s\n", inj.Description)
	res, err = tracker.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online check: refreshed %d inodes, %d finding(s)\n",
		res.InodesRefreshed, len(res.Findings))
	for _, f := range res.Findings {
		fmt.Printf("  [%v] %v — %s\n", f.Kind, f.FID, f.Detail)
	}
	// Watch mode as a library: a live mutator and the watcher share the
	// quiesce lock, and every round after the first attempts to
	// warm-start its ranking from the previous result (falling back to a
	// cold start when the seed does not converge within its budget).
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			_, _ = cluster.Create(fmt.Sprintf("/bg-%03d.dat", i), 64<<10)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	}()
	err = tracker.Watch(context.Background(), online.WatchOptions{
		Interval: 25 * time.Millisecond,
		Rounds:   4,
		Quiesce:  &mu,
		OnRound: func(round int, res *online.CheckResult) {
			start := "warm"
			if !res.Warm {
				start = "cold"
			}
			fmt.Printf("watch round %d: refreshed %d inode(s), %d finding(s), %d iteration(s) %s-start\n",
				round, res.InodesRefreshed, len(res.Findings), res.Rank.Iterations, start)
		},
	})
	close(stop)
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}

	st := tracker.Stats()
	fmt.Printf("tracker lifetime: %d updates, %d inodes re-parsed (vs %d for one offline scan)\n",
		st.UpdateRounds, st.InodesRescanned, cluster.TotalInodes())
}
