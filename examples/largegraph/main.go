// Largegraph: run the FaultyRank algorithm on a pure benchmark graph
// (Graph500 R-MAT), the paper's Table IV scalability experiment. This
// demonstrates the graph/core API without any file system underneath:
// generate, build the bidirected CSR, iterate to convergence, and report
// throughput and memory.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/rmat"
)

func main() {
	log.SetFlags(0)
	scale := flag.Int("scale", 18, "R-MAT scale (2^scale vertices)")
	degree := flag.Int("degree", 8, "average degree")
	workers := flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	params := rmat.Graph500(*scale, *degree, 42)
	fmt.Printf("generating RMAT-%d: %d vertices, %d edges...\n",
		*scale, params.NumVertices(), params.NumEdges())
	t0 := time.Now()
	edges := rmat.Generate(params, *workers)
	fmt.Printf("  generated in %v\n", time.Since(t0).Round(time.Millisecond))

	t1 := time.Now()
	b := graph.NewBidirectedUntyped(params.NumVertices(), edges, *workers)
	build := time.Since(t1)
	stats := b.Stats(*workers)
	fmt.Printf("  CSR built in %v: %d paired / %d unpaired edges, %d sinks\n",
		build.Round(time.Millisecond), stats.PairedEdges, stats.UnpairedEdges, stats.Sinks)

	opt := core.DefaultOptions()
	opt.Workers = *workers
	t2 := time.Now()
	res := core.Run(b, opt)
	iter := time.Since(t2)
	fmt.Printf("  FaultyRank converged=%v in %d iterations, %v (%.1f M edges/s/iter)\n",
		res.Converged, res.Iterations, iter.Round(time.Millisecond),
		float64(stats.Edges)*2*float64(res.Iterations)/iter.Seconds()/1e6)
	fmt.Printf("  memory: %.1f MiB graph + %.1f MiB ranks\n",
		float64(b.MemoryBytes())/(1<<20), float64(4*8*params.NumVertices())/(1<<20))

	// On a random directed graph most edges are unpaired, so the rank
	// mass concentrates on reciprocated structure. Show the extremes.
	minID, maxID := 0, 0
	for v := 1; v < len(res.IDRank); v++ {
		if res.IDRank[v] < res.IDRank[minID] {
			minID = v
		}
		if res.IDRank[v] > res.IDRank[maxID] {
			maxID = v
		}
	}
	fmt.Printf("  id-rank range: min %.4f (v%d) .. max %.2f (v%d)\n",
		res.IDRank[minID], minID, res.IDRank[maxID], maxID)
}
