// Quickstart: build a small simulated Lustre cluster, corrupt one
// object's identity, let FaultyRank locate the root cause, repair it,
// and verify — the full workflow of the paper in ~60 lines of API use.
package main

import (
	"fmt"
	"log"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/lustre"
	"faultyrank/internal/repair"
)

func main() {
	log.SetFlags(0)

	// 1. A cluster with 4 OSTs and the paper's 64 KiB stripes.
	cfg := lustre.DefaultConfig()
	cfg.NumOSTs = 4
	cluster, err := lustre.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.MkdirAll("/home/alice"); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		path := fmt.Sprintf("/home/alice/data-%d.bin", i)
		if _, err := cluster.Create(path, 3*64<<10); err != nil { // 3 stripes each
			log.Fatal(err)
		}
	}
	fmt.Printf("cluster: %d total inodes across 1 MDT + %d OSTs\n",
		cluster.TotalInodes(), cfg.NumOSTs)

	// 2. Corrupt a stripe object's LMA (the "dangling reference, b's id
	//    is wrong" case of paper Table I).
	inj, err := inject.Inject(cluster, inject.DanglingObjectID, "/home/alice/data-3.bin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected: %s\n", inj.Description)

	// 3. Run the FaultyRank pipeline: scan -> aggregate -> rank -> detect.
	images := checker.ClusterImages(cluster)
	result, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked %d vertices / %d edges in %v (%d iterations)\n",
		result.Stats.Vertices, result.Stats.Edges, result.Total().Round(1000), result.Rank.Iterations)
	for _, f := range result.Findings {
		fmt.Printf("finding: [%v] %v — %s\n", f.Kind, f.FID, f.Detail)
		for _, r := range f.Repairs {
			fmt.Printf("  recommended repair: %v\n", r)
		}
	}

	// 4. Apply the recommended repairs and verify.
	engine := repair.NewEngine(images, result)
	summary := engine.Apply(result.Findings)
	fmt.Printf("repair: %d applied, %d skipped\n", summary.Applied, summary.Skipped)

	verify, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if len(verify.Findings) == 0 && verify.Stats.UnpairedEdges == 0 {
		fmt.Println("verification: file system fully consistent again ✔")
	} else {
		fmt.Printf("verification: %d residual findings\n", len(verify.Findings))
	}
}
