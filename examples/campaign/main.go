// Campaign: run PFault-style multi-fault campaigns — several different
// inconsistencies planted at once in disjoint regions of one cluster —
// and score FaultyRank's single checking pass against the ground truth:
// recall (faults found), precision (findings that correspond to a real
// fault) and whether one repair pass restored global consistency.
package main

import (
	"flag"
	"fmt"
	"log"

	"faultyrank/internal/campaign"
)

func main() {
	log.SetFlags(0)
	faults := flag.Int("faults", 4, "concurrent faults per campaign")
	runs := flag.Int("runs", 5, "number of campaigns (different seeds)")
	flag.Parse()

	fmt.Printf("running %d campaigns with %d concurrent faults each...\n\n", *runs, *faults)
	var recallSum, precSum float64
	clean := 0
	for seed := int64(1); seed <= int64(*runs); seed++ {
		spec := campaign.DefaultSpec(seed)
		spec.Faults = *faults
		res, err := campaign.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("campaign %d: recall %.2f, precision %.2f, findings %d, repaired-clean %v\n",
			seed, res.Recall(), res.Precision(), res.TotalFindings, res.RepairedClean)
		for _, o := range res.Outcomes {
			marker := "✔"
			if !o.Detected {
				marker = "✘"
			}
			fmt.Printf("  %s %-36s in %s\n", marker, o.Injection.Scenario, o.Region)
		}
		recallSum += res.Recall()
		precSum += res.Precision()
		if res.RepairedClean {
			clean++
		}
	}
	fmt.Printf("\nacross %d campaigns: mean recall %.3f, mean precision %.3f, %d/%d repaired clean\n",
		*runs, recallSum/float64(*runs), precSum/float64(*runs), clean, *runs)
}
