// Command frgraph is the standalone graph workbench behind the paper's
// §V-C1 algorithm benchmarks: it generates benchmark graphs, converts
// edge-list formats, and runs the FaultyRank iteration on an edge-list
// file, reporting build time, iteration time, convergence trace and
// memory — the Table IV/V measurement path without any file system.
//
//	frgraph gen -kind rmat -scale 20 -degree 8 -o rmat20.bin
//	frgraph gen -kind amazon -n 403393 -o amazon.txt
//	frgraph convert -i graph.txt -o graph.bin
//	frgraph rank -i rmat20.bin -trace
//	frgraph ingest -dir cluster/ -workers 8 -tcp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/edgelist"
	"faultyrank/internal/graph"
	"faultyrank/internal/imgdir"
	"faultyrank/internal/par"
	"faultyrank/internal/rmat"
	"faultyrank/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frgraph: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	case "rank":
		cmdRank(os.Args[2:])
	case "stats":
		cmdStats(os.Args[2:])
	case "ingest":
		cmdIngest(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: frgraph gen|convert|rank|stats|ingest [flags]")
	os.Exit(2)
}

// cmdIngest times the streaming ingestion pipeline on a cluster image
// directory: chunked parallel scan (plus transfer, with -tcp), sharded
// merge and CSR build — the per-stage wall times behind Table VI's
// T_scan and T_graph columns.
func cmdIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	dir := fs.String("dir", "cluster", "cluster image directory")
	workers := fs.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
	chunk := fs.Int("chunk", 0, "entries per streamed chunk (0 = default)")
	useTCP := fs.Bool("tcp", false, "stream chunks over localhost TCP")
	fs.Parse(args)

	images, err := imgdir.Load(*dir)
	if err != nil {
		log.Fatal(err)
	}
	opt := checker.DefaultOptions()
	opt.Workers = *workers
	opt.ChunkSize = *chunk
	opt.UseTCP = *useTCP
	res, err := checker.Run(images, opt)
	if err != nil {
		log.Fatal(err)
	}
	st := res.Stats
	fmt.Printf("unified graph: %d vertices, %d edges (%d paired / %d unpaired)\n",
		st.Vertices, st.Edges, st.PairedEdges, st.UnpairedEdges)
	fmt.Printf("scan+stream %.3fs | merge+build %.3fs | rank %.3fs | total %.3fs\n",
		res.TScan.Seconds(), res.TGraph.Seconds(), res.TRank.Seconds(), res.Total().Seconds())
}

// cmdStats prints structural statistics of an edge list: degree
// percentiles, reciprocity (the paired-edge fraction FaultyRank's
// credibility flow rides on) and sink/source counts.
func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("i", "", "input edge list")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("stats needs -i")
	}
	edges, n, err := readEdges(*in)
	if err != nil {
		log.Fatal(err)
	}
	b := graph.NewBidirectedUntyped(n, edges, 0)
	st := b.Stats(0)
	fmt.Printf("vertices %d, edges %d\n", st.Vertices, st.Edges)
	fmt.Printf("paired %d (%.1f%%), unpaired %d\n", st.PairedEdges,
		100*float64(st.PairedEdges)/float64(max64(st.Edges, 1)), st.UnpairedEdges)
	fmt.Printf("sinks %d, sources %d\n", st.Sinks, st.Sources)

	// out-degree percentiles via counting sort
	maxDeg := int(par.MapReduceMaxFloat64(n, 0, func(v int) float64 {
		return float64(b.OutDegree(uint32(v)))
	}))
	hist := make([]int, maxDeg+1)
	for v := 0; v < n; v++ {
		hist[b.OutDegree(uint32(v))]++
	}
	fmt.Printf("out-degree: max %d", maxDeg)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		target := int(float64(n) * p)
		cum := 0
		for d, c := range hist {
			cum += c
			if cum >= target {
				fmt.Printf(", p%d %d", int(p*100), d)
				break
			}
		}
	}
	fmt.Println()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// writeEdges picks the format from the file suffix (.bin = binary).
func writeEdges(path string, edges []graph.Edge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return edgelist.WriteBinary(f, edges)
	}
	return edgelist.WriteText(f, edges)
}

func readEdges(path string) ([]graph.Edge, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return edgelist.ReadBinary(f)
	}
	return edgelist.ReadText(f)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "rmat", "rmat|amazon|roadnet")
	scale := fs.Int("scale", 20, "rmat: log2 vertex count")
	degree := fs.Int("degree", 8, "rmat: average degree / amazon: degree")
	n := fs.Int("n", 403393, "amazon: vertex count")
	w := fs.Int("w", 1590, "roadnet: grid width")
	h := fs.Int("h", 1240, "roadnet: grid height")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("o", "graph.bin", "output file (.bin = binary, else text)")
	workers := fs.Int("workers", 0, "parallelism")
	fs.Parse(args)

	var edges []graph.Edge
	t0 := time.Now()
	switch *kind {
	case "rmat":
		edges = rmat.Generate(rmat.Graph500(*scale, *degree, *seed), *workers)
	case "amazon":
		edges = workload.AmazonLike(*n, *degree, *seed)
	case "roadnet":
		edges = workload.RoadNetLike(*w, *h, *seed)
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
	fmt.Printf("generated %d edges in %v\n", len(edges), time.Since(t0).Round(time.Millisecond))
	if err := writeEdges(*out, edges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("i", "", "input edge list")
	out := fs.String("o", "", "output edge list")
	fs.Parse(args)
	if *in == "" || *out == "" {
		log.Fatal("convert needs -i and -o")
	}
	edges, _, err := readEdges(*in)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeEdges(*out, edges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converted %d edges: %s -> %s\n", len(edges), *in, *out)
}

func cmdRank(args []string) {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	in := fs.String("i", "", "input edge list")
	workers := fs.Int("workers", 0, "parallelism")
	epsilon := fs.Float64("epsilon", 0.1, "convergence epsilon")
	trace := fs.Bool("trace", false, "print the per-iteration convergence trace")
	fs.Parse(args)
	if *in == "" {
		log.Fatal("rank needs -i")
	}
	t0 := time.Now()
	edges, n, err := readEdges(*in)
	if err != nil {
		log.Fatal(err)
	}
	load := time.Since(t0)

	t1 := time.Now()
	b := graph.NewBidirectedUntyped(n, edges, *workers)
	build := time.Since(t1)

	opt := core.DefaultOptions()
	opt.Workers = *workers
	opt.Epsilon = *epsilon
	t2 := time.Now()
	res := core.Run(b, opt)
	iterate := time.Since(t2)

	st := b.Stats(*workers)
	fmt.Printf("graph: %d vertices, %d edges (%d paired / %d unpaired)\n",
		st.Vertices, st.Edges, st.PairedEdges, st.UnpairedEdges)
	fmt.Printf("load %.3fs | build %.3fs | iterate %.3fs (%d iterations, converged=%v)\n",
		load.Seconds(), build.Seconds(), iterate.Seconds(), res.Iterations, res.Converged)
	fmt.Printf("memory: %.1f MiB graph + %.1f MiB ranks\n",
		float64(b.MemoryBytes())/(1<<20), float64(4*8*n)/(1<<20))
	if *trace {
		for i, d := range res.Diffs {
			fmt.Printf("  iter %2d: max|Δid| = %.6f\n", i+1, d)
		}
	}
}
