// Command frhealthd is the fleet-health daemon: one process tracks
// many cluster mounts through their change feeds (one online tracker
// per cluster on a shared bounded worker pool), grades every finding
// critical/warning/info through a versioned rules engine with
// suggested operator actions, and serves JSON reports plus Prometheus
// metrics over HTTP.
//
//	frhealthd -config fleet.json                 # config names the clusters
//	frhealthd -config fleet.json -listen :9120   # override the HTTP address
//	frhealthd -config fleet.json -rounds 8       # bounded run (smoke tests)
//
//	curl -s localhost:9120/api/v1/clusters
//	curl -s localhost:9120/api/v1/clusters/alpha/report
//	curl -s localhost:9120/metrics
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"faultyrank/internal/health"
	"faultyrank/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frhealthd: ")
	var (
		config = flag.String("config", "", "daemon config file (JSON, schema "+health.ConfigSchema+")")
		listen = flag.String("listen", "", "HTTP address for the report API and /metrics (overrides the config's listen; default :9120)")
		rounds = flag.Int("rounds", 0, "stop after this many watch rounds per cluster (0 = run until SIGINT/SIGTERM)")
	)
	flag.Parse()
	if *config == "" {
		log.Fatal("-config is required")
	}
	if err := run(*config, *listen, *rounds); err != nil {
		log.Fatal(err)
	}
}

func run(configPath, listenFlag string, rounds int) error {
	cfg, err := health.LoadConfig(configPath)
	if err != nil {
		return err
	}
	d, err := health.NewDaemonFromConfig(cfg)
	if err != nil {
		return err
	}
	if rounds > 0 {
		d.BoundRounds(rounds)
	}

	addr := listenFlag
	if addr == "" {
		addr = cfg.Listen
	}
	if addr == "" {
		addr = ":9120"
	}
	bound, stop, err := telemetry.ServeHandler(addr, d.Handler())
	if err != nil {
		return err
	}
	log.Printf("serving report API and /metrics on %s (%d clusters)", bound, len(cfg.Clusters))
	// The HTTP server outlives the watchers: when the run context ends
	// (signal or bounded rounds), in-flight report requests drain before
	// the process exits.
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), telemetry.ServeStopTimeout)
		defer cancel()
		if err := stop(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := d.Run(ctx); err != nil {
		return err
	}
	log.Printf("all watchers stopped")
	return nil
}
