// Command frtrace renders FaultyRank flight-recorder journals (FRJR
// files, written by `faultyrank -journal`, a degraded checker run, or
// frhealthd's failed-round dump) as a wall-clock timeline: one lane per
// server, events merged by absolute time across every file given, hot
// rows (retries, stalls, stream errors, degraded transitions) marked,
// and the culpable server named from the accumulated evidence.
//
//	frtrace run/journal.frjr               # human-readable timeline
//	frtrace -json run/journal.frjr         # frtrace/timeline/v1 JSON
//	frtrace coord.frjr ost1.frjr ost2.frjr # merge several dumps
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"faultyrank/internal/telemetry"
	"faultyrank/internal/trace"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	log.SetFlags(0)
	log.SetPrefix("frtrace: ")
	jsonOut := flag.Bool("json", false, "emit the timeline as JSON (schema frtrace/timeline/v1)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: frtrace [-json] journal.frjr [journal2.frjr ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return 2
	}

	var sections []telemetry.JournalSnapshot
	for _, path := range flag.Args() {
		ss, err := telemetry.ReadJournalFile(path)
		if err != nil {
			log.Print(err)
			return 1
		}
		sections = append(sections, ss...)
	}

	tl := trace.Build(sections)
	var err error
	if *jsonOut {
		err = tl.WriteJSON(os.Stdout)
	} else {
		err = tl.WriteText(os.Stdout)
	}
	if err != nil {
		log.Print(err)
		return 1
	}
	return 0
}
