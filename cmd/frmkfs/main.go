// Command frmkfs creates a simulated Lustre cluster, populates it with
// a LANL-style namespace (paper §V-A), and writes the server images to
// a directory for the other tools:
//
//	frmkfs -out cluster/ -files 50000 -osts 8
//	frmkfs -out cluster/ -inodes 200000        # age to an inode target
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"faultyrank/internal/checker"
	"faultyrank/internal/imgdir"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frmkfs: ")
	var (
		out        = flag.String("out", "cluster", "output directory for server images")
		files      = flag.Int("files", 10000, "number of files to create (LANL-style tree)")
		inodes     = flag.Int64("inodes", 0, "age the cluster to this MDT inode count instead of -files")
		osts       = flag.Int("osts", 8, "number of OSTs")
		mdts       = flag.Int("mdts", 1, "number of MDTs (>1 = DNE distributed namespace)")
		stripeSize = flag.Int("stripesize", 64<<10, "stripe size in bytes")
		seed       = flag.Int64("seed", 42, "workload seed")
		compact    = flag.Bool("compact", false, "use compact image geometry (small test images)")
	)
	flag.Parse()

	geom := ldiskfs.DefaultGeometry()
	if *compact {
		geom = ldiskfs.CompactGeometry()
	}
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: *osts, NumMDTs: *mdts, StripeSize: *stripeSize, StripeCount: -1, Geometry: geom,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *inodes > 0 {
		alive, err := workload.Age(c, workload.AgeSpec{
			TargetMDTInodes: *inodes, ChurnFraction: 0.15, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("aged cluster: %d MDT inodes, %d total, %d live files\n",
			c.MDTInodes(), c.TotalInodes(), len(alive))
	} else {
		st, err := workload.Populate(c, workload.DefaultTreeSpec(*files, *seed))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("populated: %d dirs, %d files, %d stripe objects, %.1f MiB logical\n",
			st.Dirs, st.Files, st.Objects, float64(st.Bytes)/(1<<20))
	}
	images := checker.ClusterImages(c)
	if err := imgdir.Save(*out, images); err != nil {
		log.Fatal(err)
	}
	var bytes int64
	for _, img := range images {
		bytes += int64(len(img.Bytes()))
	}
	fmt.Printf("wrote %d images (%.1f MiB) to %s\n", len(images), float64(bytes)/(1<<20), *out)
	os.Exit(0)
}
