// Command faultyrank runs the full graph-based checking pipeline (paper
// Fig. 6) on a cluster image directory: parallel scanners → aggregator
// (FID→GID remap + CSR build) → the FaultyRank iterative algorithm →
// fault classification, and optionally applies the recommended repairs.
//
//	faultyrank -dir cluster/            # check only
//	faultyrank -dir cluster/ -repair    # check, repair, verify, persist
//	faultyrank -dir cluster/ -tcp       # ship partial graphs over TCP
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"faultyrank/internal/checker"
	"faultyrank/internal/imgdir"
	"faultyrank/internal/repair"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultyrank: ")
	var (
		dir       = flag.String("dir", "cluster", "cluster image directory")
		doRepair  = flag.Bool("repair", false, "apply recommended repairs and verify")
		useTCP    = flag.Bool("tcp", false, "stream scanner chunks over localhost TCP")
		scanTO    = flag.Duration("scan-timeout", 0, "deadline on the TCP scan+collect stage (0 = none)")
		degraded  = flag.Bool("degraded", false, "complete from surviving streams when scanners are lost (TCP path)")
		workers   = flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
		chunk     = flag.Int("chunk", 0, "entries per streamed scanner chunk (0 = default)")
		epsilon   = flag.Float64("epsilon", 0.1, "convergence epsilon (max |Δ id_rank|)")
		threshold = flag.Float64("threshold", 0.4, "fault threshold on mean-1-scaled ranks")
		weight    = flag.Float64("unpaired-weight", 0.1, "unpaired edge weight in the reversed graph")
		verbose   = flag.Bool("v", false, "print ranks of suspicious vertices and the repair log")
	)
	flag.Parse()

	images, err := imgdir.Load(*dir)
	if err != nil {
		log.Fatal(err)
	}
	opt := checker.DefaultOptions()
	opt.UseTCP = *useTCP
	opt.ScanTimeout = *scanTO
	opt.AllowDegraded = *degraded
	opt.Workers = *workers
	opt.ChunkSize = *chunk
	opt.Core.Epsilon = *epsilon
	opt.Core.Threshold = *threshold
	opt.Core.UnpairedWeight = *weight

	res, err := checker.Run(images, opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteReport(os.Stdout, *verbose); err != nil {
		log.Fatal(err)
	}
	if len(res.Findings) == 0 {
		return
	}
	if !*doRepair {
		os.Exit(1) // findings present, nothing repaired
	}
	eng := repair.NewEngine(images, res)
	sum := eng.Apply(res.Findings)
	fmt.Printf("repair: %d applied, %d skipped\n", sum.Applied, sum.Skipped)
	if *verbose {
		for _, l := range sum.Log {
			fmt.Printf("  %s\n", l)
		}
	}
	verify, err := checker.Run(images, opt)
	if err != nil {
		log.Fatal(err)
	}
	if len(verify.Findings) == 0 && verify.Stats.UnpairedEdges == 0 {
		fmt.Println("verification: file system is consistent after repair")
	} else {
		fmt.Printf("verification: %d findings remain, %d unpaired edges\n",
			len(verify.Findings), verify.Stats.UnpairedEdges)
		for _, f := range verify.Findings {
			fmt.Printf("  residual [%v] %v %s\n", f.Kind, f.FID, f.Detail)
		}
	}
	if err := imgdir.Save(*dir, images); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repaired images written back to %s\n", *dir)
}
