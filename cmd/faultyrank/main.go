// Command faultyrank runs the full graph-based checking pipeline (paper
// Fig. 6) on a cluster image directory: parallel scanners → aggregator
// (FID→GID remap + CSR build) → the FaultyRank iterative algorithm →
// fault classification, and optionally applies the recommended repairs.
//
//	faultyrank -dir cluster/            # check only
//	faultyrank -dir cluster/ -repair    # check, repair, verify, persist
//	faultyrank -dir cluster/ -tcp       # ship partial graphs over TCP
//	faultyrank -dir cluster/ -rank-workers 4        # shard the rank stage into 4 BSP partitions
//	faultyrank -dir cluster/ -rank-workers 4 -rank-spawn ./frrankd   # partitions as separate processes
//	faultyrank -dir cluster/ -rank-workers 4 -rank-listen :9200 -rank-remote  # wait for remote frrankd workers
//	faultyrank -dir cluster/ -metrics-addr :9090   # live /metrics + pprof
//	faultyrank -dir cluster/ -run-manifest run.json # machine-readable record
//	faultyrank -dir cluster/ -tcp -cluster-manifest cm.json # per-server telemetry + skew
//	faultyrank -dir cluster/ -online                # incremental check from the change feed
//	faultyrank -dir cluster/ -online -watch 2s      # loop update→check, print per-round deltas
//	faultyrank -dir cluster/ -online -state st/     # durable tracker state: resume + save snapshots
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/imgdir"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/online"
	"faultyrank/internal/repair"
	"faultyrank/internal/telemetry"
)

// main delegates to realMain so deferred cleanup — most importantly the
// graceful -metrics-addr shutdown, which drains an in-flight scrape
// instead of resetting it — runs on every exit path. Failure paths
// return an exit code instead of calling os.Exit/log.Fatal mid-stack
// (either would skip the defers).
func main() {
	os.Exit(realMain())
}

// fail logs an error and returns the tool's failure exit code — 1,
// matching the log.Fatal paths this replaced (findings-present also
// exits 1; scripts distinguish the two by the report on stdout).
func fail(err error) int {
	log.Print(err)
	return 1
}

func realMain() int {
	log.SetFlags(0)
	log.SetPrefix("faultyrank: ")
	var (
		dir       = flag.String("dir", "cluster", "cluster image directory")
		doRepair  = flag.Bool("repair", false, "apply recommended repairs and verify")
		useTCP    = flag.Bool("tcp", false, "stream scanner chunks over localhost TCP")
		scanTO    = flag.Duration("scan-timeout", 0, "deadline on the TCP scan+collect stage (0 = none)")
		degraded  = flag.Bool("degraded", false, "complete from surviving streams when scanners are lost (TCP path)")
		workers   = flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
		rankW     = flag.Int("rank-workers", 0, "shard the rank stage across this many BSP partition workers (<=1 = single kernel; exact, bit-identical results)")
		rankLn    = flag.String("rank-listen", "", "bind the rank exchange to this host:port (default: a fresh localhost port) so frrankd workers beyond localhost can dial in")
		rankSpawn = flag.String("rank-spawn", "", "exec this frrankd binary once per rank partition (implies remote workers; shards shipped over the link)")
		rankRem   = flag.Bool("rank-remote", false, "wait for externally launched frrankd workers to dial the rank exchange instead of running workers in process")
		chunk     = flag.Int("chunk", 0, "entries per streamed scanner chunk (0 = default)")
		epsilon   = flag.Float64("epsilon", 0.1, "convergence epsilon (max |Δ id_rank|)")
		threshold = flag.Float64("threshold", 0.4, "fault threshold on mean-1-scaled ranks")
		weight    = flag.Float64("unpaired-weight", 0.1, "unpaired edge weight in the reversed graph")
		verbose   = flag.Bool("v", false, "print ranks of suspicious vertices and the repair log")
		metrics   = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address while running")
		manifest  = flag.String("run-manifest", "", "write a machine-readable run manifest (JSON) to this path")
		clusterMf = flag.String("cluster-manifest", "", "write the per-server cluster manifest (JSON) to this path")
		profRates = flag.Int("profile-rates", 0, "enable mutex/block profiling at this sampling rate (for /debug/pprof)")
		useOnline = flag.Bool("online", false, "incremental online check: track the change feed instead of a full offline scan")
		watch     = flag.Duration("watch", 0, "with -online: loop update→check at this interval, printing per-round deltas")
		watchN    = flag.Int("watch-rounds", 0, "with -online -watch: stop after this many rounds (0 = until interrupted)")
		stateDir  = flag.String("state", "", "with -online: durable tracker state directory — resume from its snapshot when present, save after every check")
		journalD  = flag.String("journal", "", "write the run's flight-recorder journal (journal.frjr) into this directory; render it with frtrace")
	)
	flag.Parse()

	if *useOnline && *doRepair {
		return fail(errors.New("-online is check-only: apply repairs with an offline -repair run"))
	}
	if (*watch != 0 || *watchN != 0) && !*useOnline {
		return fail(errors.New("-watch/-watch-rounds require -online"))
	}
	if *stateDir != "" && !*useOnline {
		return fail(errors.New("-state requires -online"))
	}
	if (*rankLn != "" || *rankSpawn != "" || *rankRem) && *rankW <= 1 {
		return fail(errors.New("-rank-listen/-rank-spawn/-rank-remote require -rank-workers > 1"))
	}

	if *profRates > 0 {
		runtime.SetMutexProfileFraction(*profRates)
		runtime.SetBlockProfileRate(*profRates)
	}

	images, err := imgdir.Load(*dir)
	if err != nil {
		return fail(err)
	}
	opt := checker.DefaultOptions()
	opt.UseTCP = *useTCP
	opt.ScanTimeout = *scanTO
	opt.AllowDegraded = *degraded
	opt.Workers = *workers
	opt.RankWorkers = *rankW
	opt.RankListen = *rankLn
	opt.RankSpawn = *rankSpawn
	opt.RankRemote = *rankRem
	opt.ChunkSize = *chunk
	opt.Core.Epsilon = *epsilon
	opt.Core.Threshold = *threshold
	opt.Core.UnpairedWeight = *weight

	// The flight recorder: every run journals into jr via opt.Journal;
	// dump writes the collected sections (coordinator lane plus whatever
	// per-server sections the run shipped home) next to nothing else —
	// the file frtrace renders into a timeline.
	var jr *telemetry.Journal
	dump := func([]telemetry.JournalSnapshot) {}
	if *journalD != "" {
		jr = telemetry.NewJournal(0)
		jr.SetServer("coordinator")
		opt.Journal = jr
		path := filepath.Join(*journalD, "journal.frjr")
		dump = func(sections []telemetry.JournalSnapshot) {
			if err := os.MkdirAll(*journalD, 0o755); err != nil {
				log.Printf("journal: %v", err)
				return
			}
			if err := telemetry.WriteJournalFile(path, sections); err != nil {
				log.Printf("journal: %v", err)
				return
			}
			log.Printf("journal written to %s (render with frtrace)", path)
		}
	}

	if *metrics != "" {
		reg := telemetry.NewRegistry()
		opt.Metrics = reg
		bound, stop, err := telemetry.Serve(*metrics, reg)
		if err != nil {
			return fail(err)
		}
		defer func() {
			if err := stop(); err != nil {
				log.Printf("metrics shutdown: %v", err)
			}
		}()
		log.Printf("serving /metrics and /debug/pprof on %s", bound)
	}
	if *manifest != "" {
		// The manifest records the convergence series; recording it is
		// cheap and bounded (core.DefaultTraceCap).
		opt.Core.ConvergenceTrace = true
	}

	if *useOnline {
		return runOnline(images, opt, *stateDir, *watch, *watchN, *verbose, *manifest, *clusterMf, jr, dump)
	}

	res, err := checker.Run(images, opt)
	if err != nil {
		// The run died before producing a result; the coordinator-lane
		// journal still records how far it got and what failed.
		if jr != nil {
			dump([]telemetry.JournalSnapshot{jr.Snapshot()})
		}
		return fail(err)
	}
	if jr != nil {
		if res.Coverage.Degraded() {
			log.Printf("degraded completion (missing: %v) — the journal records the failure sequence", res.Coverage.Missing)
		}
		dump(res.Journal)
	}
	if err := res.WriteReport(os.Stdout, *verbose); err != nil {
		return fail(err)
	}
	if *manifest != "" {
		if err := telemetry.WriteJSON(*manifest, res.Manifest(opt)); err != nil {
			return fail(err)
		}
		log.Printf("run manifest written to %s", *manifest)
	}
	if *clusterMf != "" {
		if err := telemetry.WriteJSON(*clusterMf, res.Cluster); err != nil {
			return fail(err)
		}
		log.Printf("cluster manifest written to %s", *clusterMf)
	}
	if len(res.Findings) == 0 {
		return 0
	}
	if !*doRepair {
		return 1 // findings present, nothing repaired
	}
	eng := repair.NewEngine(images, res)
	sum := eng.Apply(res.Findings)
	fmt.Printf("repair: %d applied, %d skipped\n", sum.Applied, sum.Skipped)
	if *verbose {
		for _, l := range sum.Log {
			fmt.Printf("  %s\n", l)
		}
	}
	verify, err := checker.Run(images, opt)
	if err != nil {
		return fail(err)
	}
	if len(verify.Findings) == 0 && verify.Stats.UnpairedEdges == 0 {
		fmt.Println("verification: file system is consistent after repair")
	} else {
		fmt.Printf("verification: %d findings remain, %d unpaired edges\n",
			len(verify.Findings), verify.Stats.UnpairedEdges)
		for _, f := range verify.Findings {
			fmt.Printf("  residual [%v] %v %s\n", f.Kind, f.FID, f.Detail)
		}
	}
	if err := imgdir.Save(*dir, images); err != nil {
		return fail(err)
	}
	fmt.Printf("repaired images written back to %s\n", *dir)
	return 0
}

// runOnline is the -online mode: an incremental Tracker over the loaded
// images. Without -watch it runs one update→check and reports like an
// offline run; with -watch it loops, printing one delta line per round.
// With -state it resumes from the directory's snapshot when one exists
// (falling back to a fresh tracker on a missing file or a snapshot from
// an incompatible build) and saves after every check. Returns exit code
// 1 when the (last) check surfaced findings.
func runOnline(images []*ldiskfs.Image, opt checker.Options, stateDir string, interval time.Duration, rounds int, verbose bool, manifest, clusterMf string, jr *telemetry.Journal, dump func([]telemetry.JournalSnapshot)) int {
	var tr *online.Tracker
	var err error
	switch {
	case stateDir == "":
		tr, err = online.NewTracker(images, opt)
	default:
		tr, err = online.LoadState(stateDir, images, opt)
		switch {
		case err == nil:
			log.Printf("resumed tracker state from %s", stateDir)
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("no snapshot in %s, starting fresh", stateDir)
			tr, err = online.NewTracker(images, opt)
		case errors.Is(err, online.ErrTrackerSnapshotVersion):
			// A snapshot from a different build is expected across
			// upgrades; a malformed or mismatched one is not, and falls
			// through to the fail below.
			log.Printf("snapshot in %s is from an incompatible build, starting fresh", stateDir)
			tr, err = online.NewTracker(images, opt)
		}
	}
	if err != nil {
		return fail(err)
	}
	saveState := func() error {
		if stateDir == "" {
			return nil
		}
		return tr.SaveState(stateDir)
	}
	writeManifests := func(res *online.CheckResult) error {
		if manifest != "" {
			if err := telemetry.WriteJSON(manifest, res.Manifest(opt)); err != nil {
				return err
			}
			log.Printf("run manifest written to %s", manifest)
		}
		if clusterMf != "" {
			if err := telemetry.WriteJSON(clusterMf, res.Cluster); err != nil {
				return err
			}
			log.Printf("cluster manifest written to %s", clusterMf)
		}
		return nil
	}
	if interval == 0 && rounds == 0 {
		res, err := tr.Check()
		if err != nil {
			if jr != nil {
				dump([]telemetry.JournalSnapshot{jr.Snapshot()})
			}
			return fail(err)
		}
		if jr != nil {
			dump(res.Journal)
		}
		if err := saveState(); err != nil {
			return fail(err)
		}
		if err := res.WriteReport(os.Stdout, verbose); err != nil {
			return fail(err)
		}
		if err := writeManifests(res); err != nil {
			return fail(err)
		}
		if len(res.Findings) > 0 {
			return 1
		}
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var last *online.CheckResult
	var roundErr error
	prevFindings := 0
	err = tr.Watch(ctx, online.WatchOptions{
		Interval: interval,
		Rounds:   rounds,
		OnRound: func(round int, res *online.CheckResult) {
			if err := saveState(); err != nil {
				roundErr = err
				stop() // end the watch; the error surfaces below
				return
			}
			start := "warm"
			if !res.Warm {
				start = "cold"
			}
			frontier := ""
			if fs := res.Rank.Frontier; fs != nil {
				frontier = fmt.Sprintf(", frontier %d seed(s) %d touched %d full-sweep(s)",
					fs.Seeds, fs.Touched, fs.FullSweeps)
			}
			fmt.Printf("round %d: refreshed %d inode(s), findings %d (%+d), %d iteration(s) %s-start%s, update %.4fs graph %.4fs rank %.4fs\n",
				round, res.InodesRefreshed, len(res.Findings), len(res.Findings)-prevFindings,
				res.Rank.Iterations, start, frontier,
				res.TUpdate.Seconds(), res.TGraph.Seconds(), res.TRank.Seconds())
			for _, rr := range res.PerServer {
				fmt.Printf("  %s: %d refreshed, %d dropped\n", rr.Server, rr.Refreshed, rr.Dropped)
			}
			if verbose {
				for _, f := range res.Findings {
					fmt.Printf("  [%v] %v %s\n", f.Kind, f.FID, f.Detail)
				}
			}
			prevFindings = len(res.Findings)
			last = res
		},
	})
	if roundErr != nil {
		return fail(roundErr)
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		// A failed round ended the watch: dump what the flight recorder
		// saw up to and including the failure.
		if jr != nil {
			dump([]telemetry.JournalSnapshot{jr.Snapshot()})
		}
		return fail(err)
	}
	if jr != nil && last != nil {
		dump(last.Journal)
	}
	if last != nil {
		if err := writeManifests(last); err != nil {
			return fail(err)
		}
		if len(last.Findings) > 0 {
			return 1
		}
	}
	return 0
}
