// Command frlfsck runs the rule-based LFSCK baseline (paper §II-B,
// Table I) over a cluster image directory:
//
//	frlfsck -dir cluster/            # check and repair in place
//	frlfsck -dir cluster/ -dry-run   # report actions without mutating
//	frlfsck -dir cluster/ -tcp       # per-object RPCs over localhost
package main

import (
	"flag"
	"fmt"
	"log"

	"faultyrank/internal/imgdir"
	"faultyrank/internal/lfsck"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frlfsck: ")
	var (
		dir    = flag.String("dir", "cluster", "cluster image directory")
		dryRun = flag.Bool("dry-run", false, "report actions without mutating the images")
		useTCP = flag.Bool("tcp", false, "per-object RPCs over localhost TCP")
		batch  = flag.Int("batch", 0, "batched-RPC mode: FIDs per round trip (0/1 = per-object pipeline)")
	)
	flag.Parse()

	images, err := imgdir.Load(*dir)
	if err != nil {
		log.Fatal(err)
	}
	res, err := lfsck.Run(images, lfsck.Options{DryRun: *dryRun, UseTCP: *useTCP, BatchSize: *batch})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lfsck finished in %.3fs (namespace %.3fs, layout %.3fs, orphan %.3fs)\n",
		res.Duration.Seconds(), res.TNamespace.Seconds(), res.TLayout.Seconds(), res.TOrphan.Seconds())
	fmt.Printf("checked %d inodes with %d RPCs; %d actions\n",
		res.Stats.InodesChecked, res.Stats.RPCs, len(res.Actions))
	for _, a := range res.Actions {
		fmt.Printf("  [%v] %v  %s\n", a.Kind, a.FID, a.Detail)
	}
	if !*dryRun {
		if err := imgdir.Save(*dir, images); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("images written back to %s\n", *dir)
	}
}
