package main

// End-to-end tests of real process separation: a checker coordinator on
// one side, exec'd frrankd binaries on the other, nothing shared but
// TCP. These are the acceptance tests of the out-of-process rank stage:
// spawned runs must be bit-identical to the single kernel, a killed
// worker must surface as a PartError naming its partition (degrading
// cleanly when allowed), and pre-loaded shard files must interoperate
// with the shipped-shard path.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/wire"
)

// buildFrrankd compiles this package's binary once per test process.
var buildOnce sync.Once
var builtBin string
var buildErr error

func buildFrrankd(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "frrankd-e2e-")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "frrankd")
		out, err := exec.Command("go", "build", "-o", builtBin, ".").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return builtBin
}

// e2eCluster is the checker tests' fig7 tree: 3 dirs × 4 striped files
// over 4 OSTs — small, but every object has rank support.
func e2eCluster(t *testing.T) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		dir := fmt.Sprintf("/proj%d", d)
		if err := c.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			if _, err := c.Create(fmt.Sprintf("%s/file%d", dir, f), 3*64<<10); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

func rankEqualBitwise(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if len(got.IDRank) != len(want.IDRank) {
		t.Fatalf("%s: rank length %d want %d", label, len(got.IDRank), len(want.IDRank))
	}
	for i := range got.IDRank {
		if math.Float64bits(got.IDRank[i]) != math.Float64bits(want.IDRank[i]) ||
			math.Float64bits(got.PropRank[i]) != math.Float64bits(want.PropRank[i]) {
			t.Fatalf("%s: rank %d diverges from single-process kernel", label, i)
		}
	}
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Fatalf("%s: iterations %d/%v want %d/%v", label, got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
}

// TestFrrankdSpawnEquivalence: a K-way check run across K spawned
// frrankd processes — shards shipped over the link — must produce ranks
// and findings byte-identical to the single-kernel run, and the
// manifest must record the remote topology with one peak-RSS sample per
// process.
func TestFrrankdSpawnEquivalence(t *testing.T) {
	bin := buildFrrankd(t)
	c := e2eCluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, "/proj1/file2"); err != nil {
		t.Fatal(err)
	}

	base, err := checker.RunCluster(c, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Findings) == 0 {
		t.Fatal("baseline run found nothing; the equivalence check would be vacuous")
	}

	for _, k := range []int{2, 4} {
		label := fmt.Sprintf("spawn/k=%d", k)
		opt := checker.DefaultOptions()
		opt.RankWorkers = k
		opt.RankSpawn = bin
		opt.OpTimeout = 15 * time.Second
		res, err := checker.RunCluster(c, opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		rankEqualBitwise(t, label, res.Rank, base.Rank)
		if !reflect.DeepEqual(res.Findings, base.Findings) {
			t.Fatalf("%s: findings diverge from single-process run", label)
		}
		man := res.RankExec
		if man == nil || !man.Remote || man.Transport != "tcp" {
			t.Fatalf("%s: manifest does not record the spawned topology: %+v", label, man)
		}
		if man.Fallback != "" {
			t.Fatalf("%s: unexpected fallback %q", label, man.Fallback)
		}
		if len(man.WorkerRSS) != k {
			t.Fatalf("%s: %d RSS samples for %d workers", label, len(man.WorkerRSS), k)
		}
		if runtime.GOOS == "linux" {
			for p, rss := range man.WorkerRSS {
				if rss <= 0 {
					t.Fatalf("%s: no peak RSS recorded for worker %d: %v", label, p, man.WorkerRSS)
				}
			}
		}
	}
}

// TestFrrankdWorkerKill: an frrankd process dying mid-superstep (the
// injected crash crosses the process boundary as -fail-after-ups) must
// fail a strict run with a PartError naming its partition, and degrade
// an AllowDegraded run into the single-kernel fallback with identical
// findings.
func TestFrrankdWorkerKill(t *testing.T) {
	bin := buildFrrankd(t)
	c := e2eCluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, "/proj1/file2"); err != nil {
		t.Fatal(err)
	}

	base, err := checker.RunCluster(c, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	opt := checker.DefaultOptions()
	opt.RankWorkers = 3
	opt.RankSpawn = bin
	opt.OpTimeout = 5 * time.Second
	opt.RankFaults = map[int]*inject.RankFault{1: {CrashAfterUps: 1}}

	_, err = checker.RunCluster(c, opt)
	if err == nil {
		t.Fatal("strict run completed despite a killed worker process")
	}
	var pe *core.PartError
	if !errors.As(err, &pe) {
		t.Fatalf("killed process does not attribute a partition: %v", err)
	}
	if pe.Part != 1 {
		t.Fatalf("error names partition %d, want 1: %v", pe.Part, err)
	}

	opt.AllowDegraded = true
	res, err := checker.RunCluster(c, opt)
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	man := res.RankExec
	if man == nil || !strings.Contains(man.Fallback, "rank partition 1") {
		t.Fatalf("fallback missing or anonymous: %+v", man)
	}
	rankEqualBitwise(t, "spawn degraded", res.Rank, base.Rank)
	if !reflect.DeepEqual(res.Findings, base.Findings) {
		t.Fatal("degraded findings diverge from the undisturbed run")
	}
}

// TestFrrankdShardFileMode: workers pre-loaded from FRSG shard files —
// fingerprint-validated Hellos, no shipping — interoperate with a plain
// wire coordinator and reproduce the single-kernel ranks bit for bit.
func TestFrrankdShardFileMode(t *testing.T) {
	bin := buildFrrankd(t)
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A random graph large enough that every partition has ghosts.
	n := 300
	var edges []graph.Edge
	for i := 0; i < 900; i++ {
		edges = append(edges, graph.Edge{Src: uint32((i * 37) % n), Dst: uint32((i * 101) % n)})
	}
	b := graph.NewBidirected(n, edges, 4)
	opt := core.DefaultOptions()
	want := core.Run(b, opt)

	const k = 3
	owners := make([]uint16, n)
	for g := range owners {
		owners[g] = uint16(g % k)
	}
	plan := graph.PartitionPlan(b, owners, k, 4)
	sums := make([]uint64, k)
	paths := make([]string, k)
	for p, sub := range plan.Parts {
		sums[p] = sub.Fingerprint()
		paths[p] = filepath.Join(dir, fmt.Sprintf("p%d.frsg", p))
		if err := graph.WriteShardFile(paths[p], sub); err != nil {
			t.Fatal(err)
		}
	}

	x, addr, err := wire.NewRankExchange("", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	procs := make([]*exec.Cmd, k)
	for p := 0; p < k; p++ {
		procs[p] = exec.CommandContext(ctx, bin,
			"-connect", addr, "-shard", paths[p], "-op-timeout", "10s", "-v")
		procs[p].Stderr = os.Stderr
		if err := procs[p].Start(); err != nil {
			t.Fatal(err)
		}
	}

	links, err := x.AcceptWorkers(ctx, wire.WorkerSpec{K: k, Sums: sums, HandshakeTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	got, rep, err := core.Coordinate(plan, links, opt)
	if err != nil {
		t.Fatalf("coordinate: %v", err)
	}
	x.Close()
	for p, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("worker %d exit: %v", p, err)
		}
	}

	rankEqualBitwise(t, "shard-file", got, want)
	if len(rep.Supersteps) != want.Iterations {
		t.Fatalf("%d supersteps for %d iterations", len(rep.Supersteps), want.Iterations)
	}

	// A worker pointed at the wrong shard file must be refused by the
	// fingerprint handshake — and say so.
	x2, addr2, err := wire.NewRankExchange("", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer x2.Close()
	wrong := exec.CommandContext(ctx, bin, "-connect", addr2, "-shard", paths[1], "-op-timeout", "5s")
	var wrongOut strings.Builder
	wrong.Stderr = &wrongOut
	if err := wrong.Start(); err != nil {
		t.Fatal(err)
	}
	_, err = x2.AcceptWorkers(ctx, wire.WorkerSpec{K: k, Sums: []uint64{1, 2, 3}, HandshakeTimeout: 15 * time.Second})
	if !errors.Is(err, wire.ErrHelloMismatch) {
		t.Fatalf("mis-pointed worker accepted: %v", err)
	}
	x2.Close()
	if wrong.Wait() == nil {
		t.Fatalf("mis-pointed worker exited cleanly: %s", wrongOut.String())
	}
}
