// Command frrankd is one out-of-process rank worker: it dials a
// checker's rank exchange, announces its partition with the versioned
// Hello handshake, obtains its graph.SubGraph shard — shipped over the
// link by default, or pre-loaded from an FRSG file with -shard — and
// runs the worker side of the BSP superstep protocol
// (core.RunPartition) until the coordinator's Done. Process separation
// is the point: K frrankd workers hold 1/K of the CSR each, which is
// the ROADMAP's path past one process's memory, and they can live on
// other hosts when the checker binds its exchange beyond localhost
// (faultyrank -rank-listen).
//
//	frrankd -connect 127.0.0.1:9200 -part 2             # shard shipped over the link
//	frrankd -connect mds:9200 -part 2 -shard p2.frsg    # shard pre-loaded from disk
//
// The kernel knobs (-unpaired-weight, -smoothing, -leaky) default to
// the core defaults and must match the coordinator's options — the
// superstep protocol's bit-identical guarantee assumes both sides run
// the same arithmetic. The checker's -rank-spawn mode passes them
// explicitly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/inject"
	"faultyrank/internal/wire"
)

func main() {
	os.Exit(realMain())
}

func fail(err error) int {
	log.Print(err)
	return 1
}

func realMain() int {
	log.SetFlags(0)
	log.SetPrefix("frrankd: ")
	def := core.DefaultOptions()
	var (
		connect   = flag.String("connect", "", "coordinator rank-exchange address (host:port, required)")
		part      = flag.Int("part", -1, "partition index to serve (required unless -shard names it)")
		shardPath = flag.String("shard", "", "pre-loaded FRSG shard file (default: the coordinator ships the shard over the link)")
		workers   = flag.Int("workers", 1, "parallelism of the local gather kernel")
		opTimeout = flag.Duration("op-timeout", 30*time.Second, "per-frame read/write deadline on the superstep link")
		weight    = flag.Float64("unpaired-weight", def.UnpairedWeight, "unpaired edge weight in the reversed graph (must match the coordinator)")
		smoothing = flag.Float64("smoothing", def.Smoothing, "rank smoothing factor sigma (must match the coordinator)")
		leaky     = flag.Bool("leaky", def.LeakyDistribution, "distribute rank by out-degree instead of in-edge weights (must match the coordinator)")
		failUps   = flag.Int("fail-after-ups", -1, "crash the worker after this many upstream frames (fault injection; <0 = disabled)")
		verbose   = flag.Bool("v", false, "log handshake and completion details")
	)
	flag.Parse()

	if *connect == "" {
		return fail(fmt.Errorf("-connect is required"))
	}
	if *shardPath == "" && *part < 0 {
		return fail(fmt.Errorf("-part is required when no -shard file names the partition"))
	}

	opt := def
	opt.Workers = *workers
	opt.UnpairedWeight = *weight
	opt.Smoothing = *smoothing
	opt.LeakyDistribution = *leaky

	ctx := context.Background()
	var (
		sub  *graph.SubGraph
		link core.Link
		conn *wire.RankConn
		err  error
	)
	if *shardPath != "" {
		// Pre-loaded shard: the Hello carries its canonical fingerprint
		// and the K it was built for, so a coordinator with a different
		// plan refuses this worker instead of accepting garbage.
		sub, err = graph.ReadShardFile(*shardPath)
		if err != nil {
			return fail(fmt.Errorf("loading shard: %w", err))
		}
		if *part >= 0 && *part != sub.Part {
			return fail(fmt.Errorf("-part %d but %s holds partition %d", *part, *shardPath, sub.Part))
		}
		conn, err = wire.DialRankLink(ctx, *connect, sub.Part, len(sub.SendTo), sub.Fingerprint(), wire.DefaultRetryPolicy(), *opTimeout)
		if err != nil {
			return fail(fmt.Errorf("dialing %s: %w", *connect, err))
		}
	} else {
		// No shard: announce with Sum 0 and the coordinator ships the
		// canonical FRSG blob before the first Init.
		var blob []byte
		conn, blob, err = wire.JoinRankShipped(ctx, *connect, *part, wire.DefaultRetryPolicy(), *opTimeout)
		if err != nil {
			return fail(fmt.Errorf("dialing %s: %w", *connect, err))
		}
		sub, err = graph.DecodeSubGraph(blob)
		if err != nil {
			conn.Close()
			return fail(fmt.Errorf("shipped shard: %w", err))
		}
		if sub.Part != *part {
			conn.Close()
			return fail(fmt.Errorf("coordinator shipped partition %d, want %d", sub.Part, *part))
		}
	}
	defer conn.Close()
	if *verbose {
		log.Printf("partition %d: %d locals, %d ghosts, %d cut edges, fingerprint %#x",
			sub.Part, sub.NLocal(), len(sub.Ghosts), sub.CutEdges, sub.Fingerprint())
	}

	link = conn
	if *failUps >= 0 {
		f := &inject.RankFault{CrashAfterUps: *failUps}
		link = f.WrapLink(link)
	}
	if err := core.RunPartition(core.NewPartState(sub, opt), link); err != nil {
		return fail(fmt.Errorf("partition %d: %w", sub.Part, err))
	}
	if *verbose {
		log.Printf("partition %d done", sub.Part)
	}
	return 0
}
