// Command frbench regenerates the paper's evaluation tables and figures
// on the simulated substrate:
//
//	frbench -table 2               # Table II  (worked example ranks)
//	frbench -table 3               # Table III (graph inputs)
//	frbench -table 4               # Table IV  (FaultyRank perf/memory)
//	frbench -table 5               # Table V   (degree sweep)
//	frbench -table 6               # Table VI  (end-to-end vs LFSCK)
//	frbench -table fig7            # Fig. 7    (functional comparison)
//	frbench -table dne             # DNE sweep (checker vs MDT count)
//	frbench -table ablation        # design ablation matrix
//	frbench -table ingest          # ingestion scaling (scan→CSR vs workers)
//	frbench -table net             # network path under injected scanner faults
//	frbench -table skew            # per-server scan skew from wire-shipped telemetry
//	frbench -table online          # incremental delta check vs cold full recheck
//	frbench -table partition       # rank-stage scaling across BSP partition workers
//	frbench -table all -scale smoke
//
// -scale picks sizing: smoke (seconds), default (minutes), paper (the
// published sizes; RMAT-26 needs ~30 GB RAM). -json additionally writes
// each artifact as BENCH_<table>.json next to the text output, the
// machine-readable form CI archives for trend tracking.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"faultyrank/internal/bench"
)

// tableNames lists every artifact -table accepts, in doc-comment order.
// The flag help and the unknown-table error derive from it, so the two
// user-facing lists can no longer drift from the dispatch below.
var tableNames = []string{
	"2", "3", "4", "5", "6", "fig7", "dne", "ablation",
	"ingest", "net", "skew", "online", "partition",
}

// tableChoices renders the accepted -table values for help and errors.
func tableChoices() string {
	return strings.Join(tableNames, "|") + "|all"
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("frbench: ")
	var (
		table    = flag.String("table", "all", "which artifact: "+tableChoices())
		scaleStr = flag.String("scale", "default", "sizing: smoke|default|paper")
		workers  = flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
		useTCP   = flag.Bool("tcp", true, "Table VI: run both checkers over localhost TCP")
		spawn    = flag.String("rank-spawn", "", "partition table: exec this frrankd binary per partition (k > 1) and record per-process peak RSS")
		jsonOut  = flag.Bool("json", false, "also write each artifact as BENCH_<table>.json")
		outDir   = flag.String("out", ".", "directory for -json artifacts")
	)
	flag.Parse()

	scale, err := bench.ParseScale(*scaleStr)
	if err != nil {
		log.Fatal(err)
	}
	known := *table == "all"
	for _, name := range tableNames {
		if strings.EqualFold(*table, name) {
			known = true
			break
		}
	}
	if !known {
		log.Fatalf("unknown table %q (%s)", *table, tableChoices())
	}
	want := func(name string) bool {
		return *table == "all" || strings.EqualFold(*table, name)
	}
	// emit prints each table and, with -json, writes the artifact file.
	emit := func(name string, tabs ...*bench.Table) {
		for _, t := range tabs {
			fmt.Println(t.Render())
		}
		if *jsonOut {
			path, err := bench.WriteArtifact(*outDir, name, scale, tabs...)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", path)
		}
	}
	if want("2") {
		emit("2", bench.Table2())
	}
	if want("3") {
		emit("3", bench.Table3(scale))
	}
	if want("4") {
		emit("4", bench.Table4(scale, *workers))
	}
	if want("5") {
		emit("5", bench.Table5(scale, *workers))
	}
	if want("fig7") {
		rows, err := bench.Fig7Compare(scale)
		if err != nil {
			log.Fatal(err)
		}
		emit("fig7", bench.Fig7Table(rows))
	}
	if want("6") {
		rows, err := bench.Table6Measure(scale, *useTCP, *workers)
		if err != nil {
			log.Fatal(err)
		}
		emit("6", bench.Table6(rows))
	}
	if want("dne") {
		tab, err := bench.TableDNE(scale, *workers)
		if err != nil {
			log.Fatal(err)
		}
		emit("dne", tab)
	}
	if want("ingest") {
		counts := []int{1, 2, 4, 8}
		if *workers > 0 {
			counts = []int{1, *workers}
		}
		rows, err := bench.IngestMeasure(scale, counts)
		if err != nil {
			log.Fatal(err)
		}
		emit("ingest", bench.IngestTable(rows))
	}
	if want("net") {
		rows, err := bench.NetPathMeasure(scale, *workers)
		if err != nil {
			log.Fatal(err)
		}
		emit("net", bench.NetPathTable(rows))
	}
	if want("skew") {
		rows, sum, err := bench.SkewMeasure(scale, *workers)
		if err != nil {
			log.Fatal(err)
		}
		emit("skew", bench.SkewTable(rows, sum))
	}
	if want("online") {
		rows, err := bench.OnlineMeasure(scale, *workers)
		if err != nil {
			log.Fatal(err)
		}
		emit("online", bench.OnlineTable(rows))
	}
	if want("ablation") {
		tab, err := bench.AblationMatrix(scale)
		if err != nil {
			log.Fatal(err)
		}
		fp, err := bench.AblationFalsePositives(scale)
		if err != nil {
			log.Fatal(err)
		}
		emit("ablation", tab, fp)
	}
	if want("partition") {
		rows, err := bench.PartitionMeasure(scale, *workers, *spawn)
		if err != nil {
			log.Fatal(err)
		}
		emit("partition", bench.PartitionTable(rows))
	}
}
