// Command frbench regenerates the paper's evaluation tables and figures
// on the simulated substrate:
//
//	frbench -table 2               # Table II  (worked example ranks)
//	frbench -table 3               # Table III (graph inputs)
//	frbench -table 4               # Table IV  (FaultyRank perf/memory)
//	frbench -table 5               # Table V   (degree sweep)
//	frbench -table 6               # Table VI  (end-to-end vs LFSCK)
//	frbench -table fig7            # Fig. 7    (functional comparison)
//	frbench -table ingest          # ingestion scaling (scan→CSR vs workers)
//	frbench -table net             # network path under injected scanner faults
//	frbench -table all -scale smoke
//
// -scale picks sizing: smoke (seconds), default (minutes), paper (the
// published sizes; RMAT-26 needs ~30 GB RAM).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"faultyrank/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frbench: ")
	var (
		table    = flag.String("table", "all", "which artifact: 2|3|4|5|6|fig7|all")
		scaleStr = flag.String("scale", "default", "sizing: smoke|default|paper")
		workers  = flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
		useTCP   = flag.Bool("tcp", true, "Table VI: run both checkers over localhost TCP")
	)
	flag.Parse()

	scale, err := bench.ParseScale(*scaleStr)
	if err != nil {
		log.Fatal(err)
	}
	want := func(name string) bool {
		return *table == "all" || strings.EqualFold(*table, name)
	}
	ran := false
	if want("2") {
		fmt.Println(bench.Table2().Render())
		ran = true
	}
	if want("3") {
		fmt.Println(bench.Table3(scale).Render())
		ran = true
	}
	if want("4") {
		fmt.Println(bench.Table4(scale, *workers).Render())
		ran = true
	}
	if want("5") {
		fmt.Println(bench.Table5(scale, *workers).Render())
		ran = true
	}
	if want("fig7") {
		rows, err := bench.Fig7Compare(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.Fig7Table(rows).Render())
		ran = true
	}
	if want("6") {
		rows, err := bench.Table6Measure(scale, *useTCP, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.Table6(rows).Render())
		ran = true
	}
	if want("dne") {
		tab, err := bench.TableDNE(scale, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab.Render())
		ran = true
	}
	if want("ingest") {
		counts := []int{1, 2, 4, 8}
		if *workers > 0 {
			counts = []int{1, *workers}
		}
		rows, err := bench.IngestMeasure(scale, counts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.IngestTable(rows).Render())
		ran = true
	}
	if want("net") {
		rows, err := bench.NetPathMeasure(scale, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(bench.NetPathTable(rows).Render())
		ran = true
	}
	if want("ablation") {
		tab, err := bench.AblationMatrix(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tab.Render())
		fp, err := bench.AblationFalsePositives(scale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(fp.Render())
		ran = true
	}
	if !ran {
		log.Fatalf("unknown table %q (2|3|4|5|6|fig7|dne|ablation|ingest|net|all)", *table)
	}
}
