// Command frinject introduces one of the paper's Fig. 7 inconsistency
// scenarios into a cluster image directory written by frmkfs:
//
//	frinject -dir cluster/ -scenario mismatch/file-id-corrupt -path /d00001/f0000007
//	frinject -list
//
// Because injections must target live metadata, the tool re-opens the
// images through a cluster loader that rebuilds the FID index by
// scanning (the images are authoritative; no sidecar state is needed).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"faultyrank/internal/imgdir"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("frinject: ")
	var (
		dir      = flag.String("dir", "cluster", "cluster image directory")
		scenario = flag.String("scenario", "", "scenario name (see -list)")
		path     = flag.String("path", "", "target file path (a multi-stripe file); empty picks one")
		list     = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		for s := inject.Scenario(0); s < inject.NumScenarios; s++ {
			fmt.Printf("%-36s %s\n", s, s.Category())
		}
		return
	}

	var chosen inject.Scenario
	found := false
	for s := inject.Scenario(0); s < inject.NumScenarios; s++ {
		if s.String() == strings.TrimSpace(*scenario) {
			chosen, found = s, true
		}
	}
	if !found {
		log.Fatalf("unknown scenario %q (use -list)", *scenario)
	}

	images, err := imgdir.Load(*dir)
	if err != nil {
		log.Fatal(err)
	}
	c, err := lustre.Adopt(images)
	if err != nil {
		log.Fatal(err)
	}
	target := *path
	if target == "" {
		target, err = pickTarget(c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("auto-selected target %s\n", target)
	}
	inj, err := inject.Inject(c, chosen, target)
	if err != nil {
		log.Fatal(err)
	}
	if err := imgdir.Save(*dir, images); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected %s: %s\n", inj.Scenario, inj.Description)
	fmt.Printf("ground truth: %v field of %v", inj.Field, inj.VictimFID)
	if !inj.NewFID.IsZero() {
		fmt.Printf(" (now carrying %v)", inj.NewFID)
	}
	fmt.Println()
}

// pickTarget finds a regular file with at least two stripes.
func pickTarget(c *lustre.Cluster) (string, error) {
	var target string
	var walk func(dir string) error
	walk = func(dir string) error {
		if target != "" {
			return nil
		}
		ents, err := c.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, de := range ents {
			p := dir + "/" + de.Name
			if dir == "/" {
				p = "/" + de.Name
			}
			switch de.Type {
			case ldiskfs.TypeDir:
				if err := walk(p); err != nil {
					return err
				}
			case ldiskfs.TypeFile:
				if ent, err := c.Stat(p); err == nil && ent.Size > 2*64<<10 {
					target = p
					return nil
				}
			}
			if target != "" {
				return nil
			}
		}
		return nil
	}
	if err := walk("/"); err != nil {
		return "", err
	}
	if target == "" {
		return "", fmt.Errorf("no multi-stripe file found")
	}
	return target, nil
}
