package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"faultyrank/internal/telemetry"
)

// faultSections models a degraded TCP run: a coordinator journal that
// saw ost1 redial, fail its stream and force a degraded completion, and
// two server journals whose epochs interleave their events on the wall
// clock.
func faultSections() []telemetry.JournalSnapshot {
	const base = int64(1_700_000_000_000_000_000)
	return []telemetry.JournalSnapshot{
		{
			Server: "coordinator", Base: base,
			Events: []telemetry.Event{
				{T: 0, Component: "checker", Kind: "run", Attrs: []telemetry.Attr{{K: "servers", V: "2"}}},
				{T: 50, Component: "wire", Kind: "dial-retry", Attrs: []telemetry.Attr{{K: "server", V: "ost1"}, {K: "retries", V: "2"}}},
				{T: 300, Component: "wire", Kind: "stream-error", Attrs: []telemetry.Attr{{K: "server", V: "ost1"}, {K: "err", V: "scanner crashed"}}},
				{T: 400, Component: "checker", Kind: "degraded", Attrs: []telemetry.Attr{{K: "missing", V: "ost1"}}},
			},
		},
		{
			Server: "mdt0", Base: base + 10,
			Events: []telemetry.Event{
				{T: 0, Component: "scanner", Kind: "scan-start"},
				{T: 100, Component: "scanner", Kind: "scan-done"},
			},
		},
		{
			Server: "ost1", Base: base + 20,
			Events: []telemetry.Event{
				{T: 0, Component: "scanner", Kind: "scan-start"},
			},
		},
	}
}

// TestBuildMergesByWallClock: events from all sections land on one
// axis ordered by absolute time, with one lane per section.
func TestBuildMergesByWallClock(t *testing.T) {
	tl := Build(faultSections())
	if tl.Sections != 3 || len(tl.Events) != 7 {
		t.Fatalf("sections %d events %d", tl.Sections, len(tl.Events))
	}
	if got := strings.Join(tl.Lanes, ","); got != "coordinator,mdt0,ost1" {
		t.Fatalf("lanes %q", got)
	}
	for i := 1; i < len(tl.Events); i++ {
		if tl.Events[i].Wall < tl.Events[i-1].Wall {
			t.Fatalf("events out of wall order at %d", i)
		}
	}
	// The mdt0 scan-start (base+10) must sort between the coordinator's
	// run (base+0) and its dial-retry (base+50).
	if tl.Events[1].Server != "mdt0" || tl.Events[1].Kind != "scan-start" {
		t.Fatalf("interleave: event 1 is %s/%s", tl.Events[1].Server, tl.Events[1].Kind)
	}
}

// TestCulpritAttribution: hot events blame the server named in their
// attributes (or a degraded event's missing list), not the lane they
// were recorded on — so the coordinator's evidence indicts ost1.
func TestCulpritAttribution(t *testing.T) {
	tl := Build(faultSections())
	if got := tl.Culprit(); got != "ost1" {
		t.Fatalf("culprit %q, want ost1", got)
	}
	if len(tl.Suspects) != 1 {
		t.Fatalf("suspects: %+v", tl.Suspects)
	}
	s := tl.Suspects[0]
	if s.Score != 1+3+2 {
		t.Fatalf("score %d", s.Score)
	}
	kinds := map[string]int{}
	for _, k := range s.Kinds {
		kinds[k.Kind] = k.Count
	}
	if kinds["dial-retry"] != 1 || kinds["stream-error"] != 1 || kinds["degraded"] != 1 {
		t.Fatalf("kinds: %+v", s.Kinds)
	}

	// A clean run names nobody.
	clean := Build(faultSections()[1:2])
	if got := clean.Culprit(); got != "" {
		t.Fatalf("clean culprit %q", got)
	}
}

// TestWriteText: the rendered timeline highlights hot rows and closes
// by naming the culpable server with its evidence.
func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := Build(faultSections()).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"journal: 3 section(s), 7 event(s)",
		"lanes: coordinator, mdt0, ost1",
		"! +", // at least one highlighted row
		"stream-error server=ost1 err=scanner crashed",
		"culprit: ost1 —",
		"degraded×1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text render missing %q:\n%s", want, out)
		}
	}
}

// TestWriteJSON: the JSON form carries the schema tag, the ordered
// events and the suspects, machine-readable.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := Build(faultSections()).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema   string          `json:"schema"`
		Events   []TimelineEvent `json:"events"`
		Suspects []Suspect       `json:"suspects"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "frtrace/timeline/v1" || len(doc.Events) != 7 {
		t.Fatalf("schema %q events %d", doc.Schema, len(doc.Events))
	}
	if len(doc.Suspects) != 1 || doc.Suspects[0].Server != "ost1" {
		t.Fatalf("suspects: %+v", doc.Suspects)
	}
}

// TestSplitList covers the missing-list splitter's edges.
func TestSplitList(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
	}{{"", 0}, {"a", 1}, {"a,b,c", 3}, {",a,,b,", 2}} {
		if got := splitList(tc.in); len(got) != tc.want {
			t.Fatalf("splitList(%q) = %v", tc.in, got)
		}
	}
}
