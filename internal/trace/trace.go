// Package trace turns journal snapshots into a human-readable story:
// it merges per-server flight-recorder sections by wall-clock time into
// one timeline with per-server lanes, highlights the events that signal
// trouble (retries, stalls, stream errors, degraded transitions), and
// names the server the evidence points at. It is the library behind
// cmd/frtrace and the assertion surface for the checker's fault tests.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"faultyrank/internal/telemetry"
)

// hotKinds maps event kinds that indicate trouble to a suspicion
// weight: 1 = friction (retries, stalls), 2 = a lost capability
// (degraded completion, warm fallback), 3 = a hard failure (stream
// errors, failed scans or rounds). The weights drive culprit ranking;
// any nonzero weight marks the timeline row.
var hotKinds = map[string]int{
	"dial-retry":         1,
	"slow-frame":         1,
	"frontier-saturated": 1,
	"warm-fallback":      2,
	"degraded":           2,
	"rank-degraded":      2,
	"stale":              2,
	"stream-error":       3,
	"scan-failed":        3,
	"feed-error":         3,
	"round-failed":       3,
}

// A TimelineEvent is one journal event placed on the merged wall-clock
// axis: absolute time, the lane (origin journal) it belongs to, and a
// Hot mark when its kind is in the trouble vocabulary.
type TimelineEvent struct {
	Wall      int64            `json:"wall_unix_nano"`
	Server    string           `json:"server"`
	Component string           `json:"component"`
	Kind      string           `json:"kind"`
	Attrs     []telemetry.Attr `json:"attrs,omitempty"`
	Hot       bool             `json:"hot,omitempty"`
}

// Attr returns the value of the first attribute named k ("" if absent).
func (e TimelineEvent) Attr(k string) string {
	for _, a := range e.Attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// A KindCount tallies one event kind against a suspect.
type KindCount struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// A Suspect is one server with accumulated trouble evidence. Suspects
// sort by score descending (ties toward the smaller name), so
// Suspects[0] is the culpable server the render names.
type Suspect struct {
	Server string      `json:"server"`
	Score  int         `json:"score"`
	Kinds  []KindCount `json:"kinds"`
}

// A Timeline is the merged view over one or more journal sections.
type Timeline struct {
	Sections int             `json:"sections"`
	Dropped  int64           `json:"dropped,omitempty"`
	Lanes    []string        `json:"lanes"`
	Events   []TimelineEvent `json:"events"`
	Suspects []Suspect       `json:"suspects,omitempty"`
}

// Span returns the wall-clock distance between the first and last
// event (0 for fewer than two events).
func (t *Timeline) Span() time.Duration {
	if len(t.Events) < 2 {
		return 0
	}
	return time.Duration(t.Events[len(t.Events)-1].Wall - t.Events[0].Wall)
}

// Culprit returns the top suspect's server name ("" when the timeline
// holds no trouble evidence).
func (t *Timeline) Culprit() string {
	if len(t.Suspects) == 0 {
		return ""
	}
	return t.Suspects[0].Server
}

// laneOf names the lane a section's events render under.
func laneOf(s telemetry.JournalSnapshot) string {
	if s.Server == "" {
		return "(unnamed)"
	}
	return s.Server
}

// Build merges the sections into one timeline: events ordered by
// absolute wall time (section epoch + monotonic offset; ties by lane
// then original order), lanes listed sorted, and suspects ranked from
// the hot-event evidence. Attribution prefers an event's explicit
// server/cluster attribute, then a degraded event's missing list, then
// the lane the event was recorded on — so a coordinator-side "scan
// failed on ost1" still counts against ost1.
func Build(sections []telemetry.JournalSnapshot) *Timeline {
	t := &Timeline{Sections: len(sections)}
	laneSet := map[string]bool{}
	scores := map[string]int{}
	kinds := map[string]map[string]int{}
	blame := func(server, kind string, w int) {
		if server == "" {
			return
		}
		scores[server] += w
		if kinds[server] == nil {
			kinds[server] = map[string]int{}
		}
		kinds[server][kind]++
	}
	for _, s := range sections {
		lane := laneOf(s)
		if !laneSet[lane] {
			laneSet[lane] = true
			t.Lanes = append(t.Lanes, lane)
		}
		t.Dropped += s.Dropped
		for _, e := range s.Events {
			te := TimelineEvent{
				Wall:      s.Wall(e),
				Server:    lane,
				Component: e.Component,
				Kind:      e.Kind,
				Attrs:     e.Attrs,
			}
			if w := hotKinds[e.Kind]; w > 0 {
				te.Hot = true
				switch {
				case te.Attr("server") != "":
					blame(te.Attr("server"), e.Kind, w)
				case te.Attr("cluster") != "":
					blame(te.Attr("cluster"), e.Kind, w)
				case te.Attr("missing") != "":
					for _, srv := range splitList(te.Attr("missing")) {
						blame(srv, e.Kind, w)
					}
				default:
					blame(lane, e.Kind, w)
				}
			}
			t.Events = append(t.Events, te)
		}
	}
	sort.Strings(t.Lanes)
	sort.SliceStable(t.Events, func(i, j int) bool {
		if t.Events[i].Wall != t.Events[j].Wall {
			return t.Events[i].Wall < t.Events[j].Wall
		}
		return t.Events[i].Server < t.Events[j].Server
	})
	for server, score := range scores {
		s := Suspect{Server: server, Score: score}
		for k, n := range kinds[server] {
			s.Kinds = append(s.Kinds, KindCount{Kind: k, Count: n})
		}
		sort.Slice(s.Kinds, func(i, j int) bool {
			if s.Kinds[i].Count != s.Kinds[j].Count {
				return s.Kinds[i].Count > s.Kinds[j].Count
			}
			return s.Kinds[i].Kind < s.Kinds[j].Kind
		})
		t.Suspects = append(t.Suspects, s)
	}
	sort.Slice(t.Suspects, func(i, j int) bool {
		if t.Suspects[i].Score != t.Suspects[j].Score {
			return t.Suspects[i].Score > t.Suspects[j].Score
		}
		return t.Suspects[i].Server < t.Suspects[j].Server
	})
	return t
}

// splitList splits a comma-separated attribute value.
func splitList(v string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(v); i++ {
		if i == len(v) || v[i] == ',' {
			if i > start {
				out = append(out, v[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// WriteText renders the timeline for a terminal: a header, one row per
// event (offset from the first event, lane, component, kind, attrs),
// hot rows marked with '!', and a closing culprit line when the
// evidence names one.
func (t *Timeline) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "journal: %d section(s), %d event(s), %d dropped, span %.4fs\n",
		t.Sections, len(t.Events), t.Dropped, t.Span().Seconds()); err != nil {
		return err
	}
	if len(t.Lanes) > 0 {
		fmt.Fprintf(w, "lanes: %s\n", joinList(t.Lanes))
	}
	laneW, kindW := 0, 0
	for _, l := range t.Lanes {
		laneW = max(laneW, len(l))
	}
	for _, e := range t.Events {
		kindW = max(kindW, len(e.Kind))
	}
	var epoch int64
	if len(t.Events) > 0 {
		epoch = t.Events[0].Wall
	}
	for _, e := range t.Events {
		mark := " "
		if e.Hot {
			mark = "!"
		}
		fmt.Fprintf(w, "%s +%9.4fs  %-*s  %-9s %-*s", mark,
			time.Duration(e.Wall-epoch).Seconds(), laneW, e.Server, e.Component, kindW, e.Kind)
		for _, a := range e.Attrs {
			fmt.Fprintf(w, " %s=%s", a.K, a.V)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for i, s := range t.Suspects {
		head := "culprit"
		if i > 0 {
			head = "   also"
		}
		fmt.Fprintf(w, "%s: %s —", head, s.Server)
		for j, k := range s.Kinds {
			sep := " "
			if j > 0 {
				sep = ", "
			}
			fmt.Fprintf(w, "%s%s×%d", sep, k.Kind, k.Count)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the timeline as an indented JSON document with a
// schema tag, mirroring the other machine-readable artifacts.
func (t *Timeline) WriteJSON(w io.Writer) error {
	doc := struct {
		Schema string `json:"schema"`
		*Timeline
	}{Schema: "frtrace/timeline/v1", Timeline: t}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func joinList(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}
