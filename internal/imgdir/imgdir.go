// Package imgdir persists a simulated cluster's server images as files
// in a directory (<label>.img), the hand-off format between the CLI
// tools: frmkfs writes a cluster, frinject corrupts it, faultyrank and
// frlfsck check it.
package imgdir

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"faultyrank/internal/ldiskfs"
)

// Save writes every image to dir as <label>.img (dir is created).
func Save(dir string, images []*ldiskfs.Image) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, img := range images {
		label := img.Label()
		if label == "" {
			return fmt.Errorf("imgdir: image without label")
		}
		path := filepath.Join(dir, label+".img")
		if err := os.WriteFile(path, img.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Load reads every *.img in dir, returning them in canonical order
// (mdt* first, then ost* by numeric suffix).
func Load(dir string) ([]*ldiskfs.Image, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".img") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("imgdir: no *.img files in %s", dir)
	}
	sort.Slice(names, func(i, j int) bool { return imgLess(names[i], names[j]) })
	var images []*ldiskfs.Image
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		img, err := ldiskfs.FromBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("imgdir: %s: %w", name, err)
		}
		images = append(images, img)
	}
	return images, nil
}

// imgLess orders mdt images before ost images, then by the numeric
// suffix, then lexically.
func imgLess(a, b string) bool {
	ra, rb := rank(a), rank(b)
	if ra != rb {
		return ra < rb
	}
	na, nb := trailingNum(a), trailingNum(b)
	if na != nb {
		return na < nb
	}
	return a < b
}

func rank(name string) int {
	if strings.HasPrefix(name, "mdt") {
		return 0
	}
	return 1
}

func trailingNum(name string) int {
	name = strings.TrimSuffix(name, ".img")
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	n := 0
	for _, c := range name[i:] {
		n = n*10 + int(c-'0')
	}
	return n
}
