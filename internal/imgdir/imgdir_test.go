package imgdir

import (
	"os"
	"path/filepath"
	"testing"

	"faultyrank/internal/ldiskfs"
)

func mkImage(t *testing.T, label string) *ldiskfs.Image {
	t.Helper()
	img := ldiskfs.MustNew(ldiskfs.CompactGeometry())
	img.SetLabel(label)
	if _, err := img.AllocInode(ldiskfs.TypeFile); err != nil {
		t.Fatal(err)
	}
	return img
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Save deliberately out of order.
	images := []*ldiskfs.Image{
		mkImage(t, "ost10"), mkImage(t, "ost2"), mkImage(t, "mdt0"), mkImage(t, "ost0"),
	}
	if err := Save(dir, images); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"mdt0", "ost0", "ost2", "ost10"}
	if len(got) != len(want) {
		t.Fatalf("loaded %d images", len(got))
	}
	for i, img := range got {
		if img.Label() != want[i] {
			t.Errorf("position %d: %q, want %q", i, img.Label(), want[i])
		}
		if img.InodeCount() != 1 {
			t.Errorf("%s: inode count %d", img.Label(), img.InodeCount())
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := Load("/nonexistent-dir-xyz"); err == nil {
		t.Error("missing dir accepted")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "bad.img"), []byte("garbage"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Error("garbage image accepted")
	}
}

func TestSaveUnlabeled(t *testing.T) {
	img := ldiskfs.MustNew(ldiskfs.CompactGeometry())
	if err := Save(t.TempDir(), []*ldiskfs.Image{img}); err == nil {
		t.Error("unlabeled image accepted")
	}
}

func TestSaveOverwrites(t *testing.T) {
	dir := t.TempDir()
	a := mkImage(t, "mdt0")
	if err := Save(dir, []*ldiskfs.Image{a}); err != nil {
		t.Fatal(err)
	}
	a.AllocInode(ldiskfs.TypeDir)
	if err := Save(dir, []*ldiskfs.Image{a}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil || got[0].InodeCount() != 2 {
		t.Fatalf("overwrite lost data: %v", err)
	}
}
