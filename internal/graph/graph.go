// Package graph implements the metadata-graph substrate of FaultyRank.
//
// A parallel file system's checking-relevant metadata is modelled as a
// directed graph (paper §III-A): vertices are PFS objects (directories,
// files, stripe objects) and edges are the point-to relationships stored
// in their metadata fields (DIRENT, LinkEA, LOVEA, filter-fid). The
// package stores graphs in Compressed Sparse Row (CSR) form, mirroring
// the paper's in-DRAM representation (§IV-B), and computes the
// paired/unpaired status of every edge, which drives both the weighted
// rank distribution (§III-D) and inconsistency detection (§III-F).
package graph

import "fmt"

// EdgeKind labels which metadata field produced an edge. Kinds do not
// change the rank computation; they let the checker map a graph-level
// fault back to the concrete metadata field that must be repaired.
type EdgeKind uint8

const (
	// KindGeneric is an untyped edge (benchmark graphs, R-MAT inputs).
	KindGeneric EdgeKind = iota
	// KindDirent is a namespace edge: directory -> child (file or dir),
	// stored in the directory's entry blocks.
	KindDirent
	// KindLinkEA is the namespace point-back edge: child -> parent
	// directory, stored in the child's LinkEA extended attribute.
	KindLinkEA
	// KindLOVEA is a layout edge: MDT file -> OST stripe object, stored
	// in the file's LOVEA extended attribute.
	KindLOVEA
	// KindFilterFID is the layout point-back edge: OST stripe object ->
	// owning MDT file, stored in the object's filter-fid attribute.
	KindFilterFID
)

// String returns the short human-readable name of the kind.
func (k EdgeKind) String() string {
	switch k {
	case KindGeneric:
		return "generic"
	case KindDirent:
		return "dirent"
	case KindLinkEA:
		return "linkea"
	case KindLOVEA:
		return "lovea"
	case KindFilterFID:
		return "filterfid"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Counterpart returns the edge kind expected on the reciprocal edge of k:
// a DIRENT edge should be answered by a LinkEA edge and a LOVEA edge by a
// filter-fid edge (and vice versa). Generic edges pair with generic edges.
func (k EdgeKind) Counterpart() EdgeKind {
	switch k {
	case KindDirent:
		return KindLinkEA
	case KindLinkEA:
		return KindDirent
	case KindLOVEA:
		return KindFilterFID
	case KindFilterFID:
		return KindLOVEA
	default:
		return KindGeneric
	}
}

// Edge is one directed point-to relationship between two vertices.
type Edge struct {
	Src, Dst uint32
	Kind     EdgeKind
}

// Stats summarises a built bidirected graph.
type Stats struct {
	Vertices      int
	Edges         int64
	PairedEdges   int64 // forward edges with a reciprocal edge
	UnpairedEdges int64
	Sinks         int // vertices with out-degree 0
	Sources       int // vertices with in-degree 0 (sinks of the reversed graph)
}
