package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// codecShards builds real shards (every k, every partition) from a
// random bidirected graph, the same construction the coordinator ships.
func codecShards(t *testing.T) []*SubGraph {
	t.Helper()
	b := randomBidirected(t, 400, 2000, 7)
	var shards []*SubGraph
	for _, k := range []int{1, 2, 3, 8} {
		plan := PartitionPlan(b, randomOwners(b.N(), k, int64(k)), k, 4)
		shards = append(shards, plan.Parts...)
	}
	return shards
}

func TestSubGraphCodecRoundTrip(t *testing.T) {
	for _, sub := range codecShards(t) {
		blob := EncodeSubGraph(sub)
		got, err := DecodeSubGraph(blob)
		if err != nil {
			t.Fatalf("part %d: decode: %v", sub.Part, err)
		}
		if got.Part != sub.Part || got.CutEdges != sub.CutEdges {
			t.Fatalf("part %d: header mismatch: got part=%d cut=%d", sub.Part, got.Part, got.CutEdges)
		}
		// The decoded shard must re-encode byte-identically (the fuzz
		// invariant) and agree field by field up to nil-vs-empty.
		if !bytes.Equal(EncodeSubGraph(got), blob) {
			t.Fatalf("part %d: re-encode differs", sub.Part)
		}
		if !reflect.DeepEqual(got.Local, normNil(sub.Local)) ||
			!reflect.DeepEqual(got.Ghosts, normNil(sub.Ghosts)) ||
			!reflect.DeepEqual(got.RevCol, normNil(sub.RevCol)) ||
			!reflect.DeepEqual(got.FwdCol, normNil(sub.FwdCol)) {
			t.Fatalf("part %d: vertex/column arrays differ after round trip", sub.Part)
		}
		if !reflect.DeepEqual(got.RevOff, sub.RevOff) || !reflect.DeepEqual(got.FwdOff, sub.FwdOff) {
			t.Fatalf("part %d: offsets differ after round trip", sub.Part)
		}
		if got.Fingerprint() != sub.Fingerprint() {
			t.Fatalf("part %d: fingerprint changed across round trip", sub.Part)
		}
	}
}

func normNil[T any](s []T) []T {
	if len(s) == 0 {
		return nil
	}
	return s
}

func TestSubGraphFingerprintDiscriminates(t *testing.T) {
	shards := codecShards(t)
	seen := make(map[uint64]int)
	for i, sub := range shards {
		fp := sub.Fingerprint()
		if fp == 0 {
			t.Fatalf("shard %d: zero fingerprint (reserved for no-shard Hello)", i)
		}
		if j, dup := seen[fp]; dup {
			t.Fatalf("shards %d and %d share fingerprint %#x", j, i, fp)
		}
		seen[fp] = i
	}
}

func TestSubGraphCodecRejects(t *testing.T) {
	sub := codecShards(t)[5] // k=3, part 1: has locals, ghosts, schedules
	valid := EncodeSubGraph(sub)

	mutate := func(name string, f func(b []byte) []byte, want error) {
		t.Helper()
		b := f(append([]byte(nil), valid...))
		if _, err := DecodeSubGraph(b); !errors.Is(err, want) {
			t.Fatalf("%s: got %v, want %v", name, err, want)
		}
	}

	mutate("empty", func(b []byte) []byte { return nil }, ErrSubGraphCodec)
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, ErrSubGraphVersion)
	mutate("future version", func(b []byte) []byte { b[4] = SubGraphCodecVersion + 1; return b }, ErrSubGraphVersion)
	mutate("truncated", func(b []byte) []byte { return b[:len(b)/2] }, ErrSubGraphCodec)
	mutate("trailing bytes", func(b []byte) []byte { return append(b, 0) }, ErrSubGraphCodec)
	mutate("part out of range", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[5:], 99)
		return b
	}, ErrSubGraphCodec)
	mutate("lying local count", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[19:], 1<<30)
		return b
	}, ErrSubGraphCodec)
	mutate("locals not ascending", func(b []byte) []byte {
		// Swap the first two local GIDs.
		a := binary.LittleEndian.Uint32(b[23:])
		binary.LittleEndian.PutUint32(b[23:], binary.LittleEndian.Uint32(b[27:]))
		binary.LittleEndian.PutUint32(b[27:], a)
		return b
	}, ErrSubGraphCodec)
	mutate("ghost aliases local", func(b []byte) []byte {
		// Overwrite the whole ghost list with the locals' first GID —
		// strictly ascending fails for >1 ghost only at entry 2, so hit
		// entry 0 with a value that IS a local.
		off := 23 + 4*len(sub.Local) + 4
		binary.LittleEndian.PutUint32(b[off:], sub.Local[0])
		return b
	}, ErrSubGraphCodec)

	// Offset-table attacks land after the vertex lists.
	offRev := 23 + 4*len(sub.Local) + 4 + 4*len(sub.Ghosts)
	mutate("rev offsets nonzero start", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[offRev:], 1)
		return b
	}, ErrSubGraphCodec)
	mutate("rev offsets decreasing", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[offRev+8:], 1<<40)
		return b
	}, ErrSubGraphCodec)
	mutate("rev column out of range", func(b []byte) []byte {
		colOff := offRev + 8*len(sub.RevOff)
		binary.LittleEndian.PutUint32(b[colOff:], uint32(sub.NCols()))
		return b
	}, ErrSubGraphCodec)
	mutate("bad paired flag", func(b []byte) []byte {
		off := offRev + 8*len(sub.RevOff) + 4*len(sub.RevCol) +
			8*len(sub.FwdOff) + 4*len(sub.FwdCol)
		b[off] = 2
		return b
	}, ErrSubGraphCodec)
	mutate("negative out-degree", func(b []byte) []byte {
		off := offRev + 8*len(sub.RevOff) + 4*len(sub.RevCol) +
			8*len(sub.FwdOff) + 4*len(sub.FwdCol) + len(sub.FwdPaired)
		binary.LittleEndian.PutUint32(b[off:], 1<<31)
		return b
	}, ErrSubGraphCodec)
}

func TestShardFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for i, sub := range codecShards(t) {
		path := filepath.Join(dir, "shard.frsg")
		if err := WriteShardFile(path, sub); err != nil {
			t.Fatalf("shard %d: write: %v", i, err)
		}
		got, err := ReadShardFile(path)
		if err != nil {
			t.Fatalf("shard %d: read: %v", i, err)
		}
		if !bytes.Equal(EncodeSubGraph(got), EncodeSubGraph(sub)) {
			t.Fatalf("shard %d: file round trip differs", i)
		}
		// No temp file may survive the atomic rename.
		if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
			t.Fatalf("shard %d: temp file left behind (stat err %v)", i, err)
		}
	}
	if _, err := ReadShardFile(filepath.Join(dir, "missing.frsg")); !os.IsNotExist(err) {
		t.Fatalf("missing file: got %v", err)
	}
}

// FuzzDecodeSubGraph drives hostile blobs through the bounded decoder:
// it must never panic or over-allocate, and any blob it accepts must
// re-encode byte-identically (the canonical-form invariant the Hello
// fingerprint depends on).
func FuzzDecodeSubGraph(f *testing.F) {
	b := NewBidirected(60, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}, {Src: 3, Dst: 1}}, 2)
	for _, k := range []int{1, 3} {
		owners := make([]uint16, b.N())
		for i := range owners {
			owners[i] = uint16(i % k)
		}
		for _, sub := range PartitionPlan(b, owners, k, 2).Parts {
			f.Add(EncodeSubGraph(sub))
		}
	}
	f.Add([]byte("FRSG"))
	f.Add([]byte{'F', 'R', 'S', 'G', 1, 0, 0, 0, 0, 0, 0, 255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, blob []byte) {
		sub, err := DecodeSubGraph(blob)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeSubGraph(sub), blob) {
			t.Fatalf("accepted blob does not re-encode byte-identically")
		}
	})
}
