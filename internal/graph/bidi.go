package graph

import (
	"faultyrank/internal/par"
)

// Bidirected bundles a metadata graph with its transpose plus the
// paired/unpaired status of every edge. This is the input shape of the
// FaultyRank iteration: phase A (ID ranks) pulls over Rev, phase B
// (Property ranks) pulls over Fwd with unpaired edges down-weighted.
type Bidirected struct {
	Fwd *CSR // the metadata graph G
	Rev *CSR // the transposed graph G_R

	// FwdPaired[i] is 1 when forward edge i (indexing Fwd.Targets) has a
	// reciprocal edge in G; RevPaired likewise for Rev. An edge u->v is
	// paired iff v->u exists (§II-A: every point-to should be answered
	// by a point-back).
	FwdPaired []uint8
	RevPaired []uint8

	// PairedIn/UnpairedIn count, per vertex, its paired and unpaired
	// incoming forward edges. They equal the paired/unpaired out-degree
	// in G_R, which the rank kernel needs to normalise the weighted
	// distribution (§III-D) without baking a weight constant in here.
	PairedIn   []int32
	UnpairedIn []int32
}

// NewBidirected builds both CSR orientations and classifies every edge as
// paired or unpaired, all in parallel.
func NewBidirected(n int, edges []Edge, workers int) *Bidirected {
	fwd := BuildCSR(n, edges, true, workers)
	rev := BuildCSR(n, ReverseEdges(edges), true, workers)
	return newBidirectedFromCSR(fwd, rev, workers)
}

// NewBidirectedUntyped is NewBidirected for kind-less benchmark graphs;
// it skips the per-edge kind arrays (one byte per edge per orientation).
func NewBidirectedUntyped(n int, edges []Edge, workers int) *Bidirected {
	fwd := BuildCSR(n, edges, false, workers)
	rev := BuildCSR(n, ReverseEdges(edges), false, workers)
	return newBidirectedFromCSR(fwd, rev, workers)
}

func newBidirectedFromCSR(fwd, rev *CSR, workers int) *Bidirected {
	b := &Bidirected{
		Fwd:        fwd,
		Rev:        rev,
		FwdPaired:  make([]uint8, fwd.NumEdges()),
		RevPaired:  make([]uint8, rev.NumEdges()),
		PairedIn:   make([]int32, fwd.N),
		UnpairedIn: make([]int32, fwd.N),
	}
	n := fwd.N
	// Classify forward edges: u->v is paired iff v->u exists. Sharded by
	// source vertex, so writes to FwdPaired never race.
	par.ForRange(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			u := uint32(v)
			s, e := fwd.EdgeRange(u)
			for i := s; i < e; i++ {
				if fwd.HasEdge(fwd.Targets[i], u) {
					b.FwdPaired[i] = 1
				}
			}
		}
	})
	// Classify reversed edges: rev edge a->b mirrors forward b->a and is
	// paired iff forward a->b also exists.
	par.ForRange(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			a := uint32(v)
			s, e := rev.EdgeRange(a)
			for i := s; i < e; i++ {
				if fwd.HasEdge(a, rev.Targets[i]) {
					b.RevPaired[i] = 1
				}
			}
		}
	})
	// Per-vertex paired/unpaired in-edge counts = classification of the
	// vertex's out-edges in G_R.
	par.ForRange(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s, e := rev.EdgeRange(uint32(v))
			var p, up int32
			for i := s; i < e; i++ {
				if b.RevPaired[i] == 1 {
					p++
				} else {
					up++
				}
			}
			b.PairedIn[v] = p
			b.UnpairedIn[v] = up
		}
	})
	return b
}

// N returns the vertex count.
func (b *Bidirected) N() int { return b.Fwd.N }

// OutDegree returns v's out-degree in G.
func (b *Bidirected) OutDegree(v uint32) int { return b.Fwd.Degree(v) }

// InDegree returns v's in-degree in G.
func (b *Bidirected) InDegree(v uint32) int { return b.Rev.Degree(v) }

// HasUnpairedEdge reports whether v touches at least one unpaired edge in
// either direction; such vertices form the paper's S_chk candidate set.
func (b *Bidirected) HasUnpairedEdge(v uint32) bool {
	if b.UnpairedIn[v] > 0 {
		return true
	}
	s, e := b.Fwd.EdgeRange(v)
	for i := s; i < e; i++ {
		if b.FwdPaired[i] == 0 {
			return true
		}
	}
	return false
}

// UnpairedOut returns the distinct targets of v's unpaired out-edges.
func (b *Bidirected) UnpairedOut(v uint32) []uint32 {
	var out []uint32
	s, e := b.Fwd.EdgeRange(v)
	for i := s; i < e; i++ {
		if b.FwdPaired[i] == 0 {
			t := b.Fwd.Targets[i]
			if len(out) == 0 || out[len(out)-1] != t {
				out = append(out, t)
			}
		}
	}
	return out
}

// UnpairedIncoming returns the distinct sources of v's unpaired in-edges.
func (b *Bidirected) UnpairedIncoming(v uint32) []uint32 {
	var out []uint32
	s, e := b.Rev.EdgeRange(v)
	for i := s; i < e; i++ {
		if b.RevPaired[i] == 0 {
			t := b.Rev.Targets[i]
			if len(out) == 0 || out[len(out)-1] != t {
				out = append(out, t)
			}
		}
	}
	return out
}

// Stats computes summary statistics in parallel.
func (b *Bidirected) Stats(workers int) Stats {
	n := b.N()
	st := Stats{Vertices: n, Edges: b.Fwd.NumEdges()}
	type partial struct {
		paired, unpaired int64
		sinks, sources   int
	}
	parts := make([]partial, 0, 64)
	// Single sequential pass over vertices is fine for stats, but reuse
	// the chunked reduction for large graphs.
	workersN := workers
	if workersN <= 0 {
		workersN = par.DefaultWorkers()
	}
	if workersN > n {
		workersN = n
	}
	if workersN < 1 {
		workersN = 1
	}
	chunk := (n + workersN - 1) / workersN
	for lo := 0; lo < n; lo += chunk {
		parts = append(parts, partial{})
	}
	par.ForRange(n, workersN, func(lo, hi int) {
		slot := lo / chunk
		var p partial
		for v := lo; v < hi; v++ {
			u := uint32(v)
			s, e := b.Fwd.EdgeRange(u)
			if s == e {
				p.sinks++
			}
			if b.Rev.Degree(u) == 0 {
				p.sources++
			}
			for i := s; i < e; i++ {
				if b.FwdPaired[i] == 1 {
					p.paired++
				} else {
					p.unpaired++
				}
			}
		}
		parts[slot] = p
	})
	for _, p := range parts {
		st.PairedEdges += p.paired
		st.UnpairedEdges += p.unpaired
		st.Sinks += p.sinks
		st.Sources += p.sources
	}
	return st
}

// MemoryBytes estimates the total footprint of the bidirected structure,
// reported in the paper's Tables IV and V.
func (b *Bidirected) MemoryBytes() int64 {
	m := b.Fwd.MemoryBytes() + b.Rev.MemoryBytes()
	m += int64(len(b.FwdPaired)) + int64(len(b.RevPaired))
	m += int64(len(b.PairedIn))*4 + int64(len(b.UnpairedIn))*4
	return m
}
