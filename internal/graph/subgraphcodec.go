package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
)

// This file is the SubGraph's wire/disk form: a deterministic, versioned
// binary codec (FRSG) with which the coordinator — or eventually the
// aggregator — ships a partition's CSR shard to an out-of-process rank
// worker (cmd/frrankd) instead of sharing memory with it. It follows the
// repo's codec discipline (telemetry, FRDB, FRJR):
//
//   - Versioned: the blob starts with "FRSG" | version; a layout change
//     bumps SubGraphCodecVersion and old blobs fail loudly.
//   - Canonical: Local and Ghosts encode strictly ascending and disjoint,
//     offsets start at 0 and never decrease, paired flags admit only 0/1,
//     and SendTo schedules ascend; decode REJECTS any other form, so a
//     blob either fails DecodeSubGraph or re-encodes byte-identically
//     (FuzzDecodeSubGraph leans on this).
//   - Bounded: counts from untrusted headers are sanity-checked against
//     the remaining payload before any allocation sized from them, and
//     every column index is range-checked against the local column space.

// SubGraphCodecVersion identifies the binary layout of FRSG blobs. Bump
// on any incompatible change.
const SubGraphCodecVersion = 1

var subGraphMagic = [4]byte{'F', 'R', 'S', 'G'}

// ErrSubGraphCodec is wrapped by every decode failure caused by a
// malformed blob (truncation, corruption, non-canonical form).
var ErrSubGraphCodec = errors.New("malformed subgraph shard")

// ErrSubGraphVersion is wrapped when the blob's magic or version does
// not match this build — the mixed-version signal a worker handles by
// refusing the shard instead of computing garbage on it.
var ErrSubGraphVersion = errors.New("unsupported subgraph shard version")

func errShard(format string, args ...any) error {
	return fmt.Errorf("graph: %s: %w", fmt.Sprintf(format, args...), ErrSubGraphCodec)
}

// EncodeSubGraph renders one partition's shard as a versioned FRSG blob.
// Equal shards always produce identical bytes (every array encodes in
// its construction order, which PartitionPlan makes canonical).
func EncodeSubGraph(s *SubGraph) []byte {
	return AppendSubGraph(nil, s)
}

// AppendSubGraph appends EncodeSubGraph's blob to buf.
func AppendSubGraph(buf []byte, s *SubGraph) []byte {
	le := binary.LittleEndian
	buf = append(buf, subGraphMagic[:]...)
	buf = append(buf, SubGraphCodecVersion)
	buf = le.AppendUint32(buf, uint32(s.Part))
	buf = le.AppendUint16(buf, uint16(len(s.SendTo)))
	buf = le.AppendUint64(buf, uint64(s.CutEdges))

	buf = le.AppendUint32(buf, uint32(len(s.Local)))
	for _, g := range s.Local {
		buf = le.AppendUint32(buf, g)
	}
	buf = le.AppendUint32(buf, uint32(len(s.Ghosts)))
	for _, g := range s.Ghosts {
		buf = le.AppendUint32(buf, g)
	}

	for _, off := range s.RevOff {
		buf = le.AppendUint64(buf, uint64(off))
	}
	for _, c := range s.RevCol {
		buf = le.AppendUint32(buf, c)
	}
	for _, off := range s.FwdOff {
		buf = le.AppendUint64(buf, uint64(off))
	}
	for _, c := range s.FwdCol {
		buf = le.AppendUint32(buf, c)
	}
	buf = append(buf, s.FwdPaired...)

	for _, v := range s.OutDeg {
		buf = le.AppendUint32(buf, uint32(v))
	}
	for _, v := range s.PairedIn {
		buf = le.AppendUint32(buf, uint32(v))
	}
	for _, v := range s.UnpairedIn {
		buf = le.AppendUint32(buf, uint32(v))
	}

	for _, sched := range s.SendTo {
		buf = le.AppendUint32(buf, uint32(len(sched)))
		for _, l := range sched {
			buf = le.AppendUint32(buf, l)
		}
	}
	return buf
}

// Fingerprint is the shard's identity for the rank Hello handshake: an
// FNV-1a digest of the canonical FRSG encoding, so it covers the
// partition index, K (the SendTo bundle count), both CSR orientations,
// the replicated degree metadata, and the ghost/boundary schedules — a
// worker holding the wrong graph, the wrong K, or a stale shard cannot
// collide with the coordinator's plan except by hash accident. Never 0
// for a real shard (the handshake reserves 0 for "no shard, ship one").
func (s *SubGraph) Fingerprint() uint64 {
	return FingerprintShard(EncodeSubGraph(s))
}

// FingerprintShard is Fingerprint over an already-encoded FRSG blob,
// for callers (the coordinator) that hold the encoding anyway.
func FingerprintShard(blob []byte) uint64 {
	h := fnv.New64a()
	h.Write(blob)
	if sum := h.Sum64(); sum != 0 {
		return sum
	}
	return 1
}

// sdec is the bounded decoder for FRSG blobs.
type sdec struct {
	b   []byte
	off int
	err error
}

func (d *sdec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || d.off+n > len(d.b) {
		d.err = errShard("truncated at offset %d", d.off)
		return false
	}
	return true
}

func (d *sdec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *sdec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *sdec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *sdec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *sdec) remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.b) - d.off
}

// ascending32 decodes a strictly-ascending u32 vector (count already
// read and bounded). Empty decodes nil — the canonical form.
func (d *sdec) ascending32(n int, what string) []uint32 {
	if n == 0 || d.err != nil {
		return nil
	}
	out := make([]uint32, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		v := d.u32()
		if d.err != nil {
			break
		}
		if i > 0 && v <= out[i-1] {
			d.err = errShard("%s not strictly ascending at entry %d", what, i)
			break
		}
		out = append(out, v)
	}
	return out
}

// offsets decodes an nRows+1 offset array: starts at 0, never
// decreases, and its final entry (the edge count) is bounded so the
// column array it sizes cannot out-allocate the payload.
func (d *sdec) offsets(nRows int, what string) []int64 {
	if d.err != nil {
		return nil
	}
	out := make([]int64, nRows+1)
	for i := range out {
		v := d.u64()
		if d.err != nil {
			return nil
		}
		if i == 0 && v != 0 {
			d.err = errShard("%s offsets start at %d, want 0", what, v)
			return nil
		}
		if v > uint64(1)<<62 || (i > 0 && int64(v) < out[i-1]) {
			d.err = errShard("%s offsets not monotone at row %d", what, i)
			return nil
		}
		out[i] = int64(v)
	}
	return out
}

// columns decodes an edge-column array of n entries, each < nCols.
func (d *sdec) columns(n int64, nCols int, what string) []uint32 {
	if d.err != nil {
		return nil
	}
	if uint64(n)*4 > uint64(d.remaining()) {
		d.err = errShard("implausible %s column count %d", what, n)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]uint32, 0, n)
	for i := int64(0); i < n && d.err == nil; i++ {
		c := d.u32()
		if d.err != nil {
			break
		}
		if int(c) >= nCols {
			d.err = errShard("%s column %d out of range (%d columns)", what, c, nCols)
			break
		}
		out = append(out, c)
	}
	return out
}

// counts32 decodes an implied-length int32 metadata vector, rejecting
// negative values (degrees and in-edge counts are tallies).
func (d *sdec) counts32(n int, what string) []int32 {
	if d.err != nil {
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int32, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		v := int32(d.u32())
		if d.err != nil {
			break
		}
		if v < 0 {
			d.err = errShard("negative %s %d at column %d", what, v, i)
			break
		}
		out = append(out, v)
	}
	return out
}

// DecodeSubGraph reconstructs a shard from an FRSG blob. The blob is
// rejected (never panicked on) when truncated, when counts are
// implausible for the remaining payload, when any column or schedule
// index is out of range, when any canonical order is violated, or when
// the version does not match.
func DecodeSubGraph(blob []byte) (*SubGraph, error) {
	d := &sdec{b: blob}
	if !d.need(5) {
		return nil, d.err
	}
	if [4]byte(blob[:4]) != subGraphMagic {
		return nil, fmt.Errorf("graph: bad subgraph shard magic %q: %w", blob[:4], ErrSubGraphVersion)
	}
	if v := blob[4]; v != SubGraphCodecVersion {
		return nil, fmt.Errorf("graph: subgraph shard version %d (have %d): %w", v, SubGraphCodecVersion, ErrSubGraphVersion)
	}
	d.off = 5

	s := &SubGraph{Part: int(d.u32())}
	k := int(d.u16())
	s.CutEdges = int64(d.u64())
	if d.err == nil && s.CutEdges < 0 {
		return nil, errShard("negative cut-edge count %d", s.CutEdges)
	}
	if d.err == nil && s.Part >= max(k, 1) {
		return nil, errShard("partition %d out of range k=%d", s.Part, k)
	}

	nLocal := int(d.u32())
	if d.err == nil && uint64(nLocal)*4 > uint64(d.remaining()) {
		return nil, errShard("implausible local count %d", nLocal)
	}
	s.Local = d.ascending32(nLocal, "locals")
	nGhost := int(d.u32())
	if d.err == nil && uint64(nGhost)*4 > uint64(d.remaining()) {
		return nil, errShard("implausible ghost count %d", nGhost)
	}
	s.Ghosts = d.ascending32(nGhost, "ghosts")
	if d.err == nil {
		// Both lists ascend, so a single merge walk proves disjointness —
		// a ghost aliasing a local would make two columns one vertex.
		for i, j := 0, 0; i < nLocal && j < nGhost; {
			switch {
			case s.Local[i] < s.Ghosts[j]:
				i++
			case s.Local[i] > s.Ghosts[j]:
				j++
			default:
				return nil, errShard("vertex %d is both local and ghost", s.Local[i])
			}
		}
	}
	nCols := nLocal + nGhost

	if d.err == nil && uint64(nLocal+1)*8 > uint64(d.remaining()) {
		return nil, errShard("truncated rev offsets")
	}
	s.RevOff = d.offsets(nLocal, "rev")
	if d.err == nil {
		s.RevCol = d.columns(s.RevOff[nLocal], nCols, "rev")
	}
	if d.err == nil && uint64(nLocal+1)*8 > uint64(d.remaining()) {
		return nil, errShard("truncated fwd offsets")
	}
	s.FwdOff = d.offsets(nLocal, "fwd")
	if d.err == nil {
		s.FwdCol = d.columns(s.FwdOff[nLocal], nCols, "fwd")
	}
	if d.err == nil {
		nFwd := int(s.FwdOff[nLocal])
		if !d.need(nFwd) {
			return nil, d.err
		}
		if nFwd > 0 {
			s.FwdPaired = make([]uint8, nFwd)
			copy(s.FwdPaired, d.b[d.off:d.off+nFwd])
			d.off += nFwd
			for i, p := range s.FwdPaired {
				if p > 1 {
					return nil, errShard("paired flag %d at edge %d", p, i)
				}
			}
		}
	}

	if d.err == nil && uint64(nCols)*12 > uint64(d.remaining()) {
		return nil, errShard("truncated column metadata (%d columns)", nCols)
	}
	s.OutDeg = d.counts32(nCols, "out-degree")
	s.PairedIn = d.counts32(nCols, "paired-in count")
	s.UnpairedIn = d.counts32(nCols, "unpaired-in count")

	if k > 0 && d.err == nil {
		if uint64(k)*4 > uint64(d.remaining()) {
			return nil, errShard("implausible partition count %d", k)
		}
		s.SendTo = make([][]uint32, k)
		for q := 0; q < k && d.err == nil; q++ {
			n := int(d.u32())
			if d.err == nil && uint64(n)*4 > uint64(d.remaining()) {
				return nil, errShard("implausible send schedule %d for partition %d", n, q)
			}
			sched := d.ascending32(n, "send schedule")
			for _, l := range sched {
				if int(l) >= nLocal {
					return nil, errShard("send schedule entry %d out of range (%d locals)", l, nLocal)
				}
			}
			s.SendTo[q] = sched
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(blob) {
		return nil, errShard("%d trailing bytes", len(blob)-d.off)
	}
	return s, nil
}

// WriteShardFile atomically writes the shard as an FRSG file (temp file
// + rename, the WriteJSON discipline), so a worker loading it can never
// observe a torn write.
func WriteShardFile(path string, s *SubGraph) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, EncodeSubGraph(s), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadShardFile reads and decodes an FRSG shard file.
func ReadShardFile(path string) (*SubGraph, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSubGraph(b)
}
