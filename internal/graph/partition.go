package graph

import (
	"fmt"
	"sort"

	"faultyrank/internal/par"
)

// Partitioned rank execution: the unified graph's vertex space is split
// into K hash-disjoint partitions, each of which materialises a
// SubGraph — the rows of both CSR orientations for the vertices it
// owns, with column indices rewritten into a compact local space of
// "locals" (owned vertices, ascending global GID) followed by "ghosts"
// (remote vertices its rows reference, ascending global GID). A rank
// worker then needs only its SubGraph plus, per superstep, the current
// rank values of its ghost columns — the boundary cut the BSP exchange
// ships (see internal/core/superstep.go).
//
// Row order is preserved exactly: a local row's column sequence is the
// global CSR row's target sequence, translated element by element. The
// rank kernel's gather loops are order-sensitive float sums, so this is
// what makes a partitioned sweep reproduce the single-process sweep bit
// for bit rather than merely approximately.

// SubGraph is one partition's share of a Bidirected graph.
type SubGraph struct {
	// Part is this partition's index in [0, Plan.K).
	Part int

	// Local lists the global GIDs this partition owns, ascending. Local
	// vertex l (a "row") corresponds to global vertex Local[l] and to
	// column l of the local column space.
	Local []uint32

	// Ghosts lists the remote global GIDs referenced by this
	// partition's rows, ascending. Ghost g occupies column
	// len(Local)+g.
	Ghosts []uint32

	// Rev rows (phase A gathers): the in-neighbour columns of local
	// vertex l are RevCol[RevOff[l]:RevOff[l+1]], in the exact order of
	// the global Rev CSR row.
	RevOff []int64
	RevCol []uint32

	// Fwd rows (phase B gathers), with the per-edge paired flag carried
	// alongside, again in exact global row order.
	FwdOff    []int64
	FwdCol    []uint32
	FwdPaired []uint8

	// Per-column vertex metadata, replicated for ghosts so the rank
	// divisors (invOut, invW) are computable locally for every column:
	// OutDeg is the forward out-degree, PairedIn/UnpairedIn the paired
	// and unpaired in-edge counts.
	OutDeg     []int32
	PairedIn   []int32
	UnpairedIn []int32

	// SendTo[q] lists the local column indices whose values partition q
	// needs as ghosts, ascending by global GID. It is the send schedule
	// of the boundary exchange; the matching receive schedule is q's
	// Ghosts order, so routing needs no per-value addressing.
	SendTo [][]uint32

	// CutEdges counts row entries that resolve to ghost columns, i.e.
	// the edges crossing the partition boundary (both orientations).
	CutEdges int64
}

// NLocal returns the number of owned vertices (rows).
func (s *SubGraph) NLocal() int { return len(s.Local) }

// NCols returns the size of the local column space (locals + ghosts).
func (s *SubGraph) NCols() int { return len(s.Local) + len(s.Ghosts) }

// MemoryBytes estimates the heap footprint of the SubGraph arrays.
func (s *SubGraph) MemoryBytes() int64 {
	m := int64(len(s.Local))*4 + int64(len(s.Ghosts))*4
	m += int64(len(s.RevOff))*8 + int64(len(s.RevCol))*4
	m += int64(len(s.FwdOff))*8 + int64(len(s.FwdCol))*4 + int64(len(s.FwdPaired))
	m += int64(len(s.OutDeg)+len(s.PairedIn)+len(s.UnpairedIn)) * 4
	for _, st := range s.SendTo {
		m += int64(len(st)) * 4
	}
	return m
}

// Plan is a complete K-way partitioning of one Bidirected graph.
type Plan struct {
	K int
	N int
	// Owners[g] is the partition owning global vertex g.
	Owners []uint16
	// LocalIdx[g] is g's row index within its owner's Local slice.
	LocalIdx []uint32
	Parts    []*SubGraph
}

// CutEdges totals the boundary-crossing row entries across partitions.
func (p *Plan) CutEdges() int64 {
	var total int64
	for _, sub := range p.Parts {
		total += sub.CutEdges
	}
	return total
}

// PartitionPlan builds the K-way partition of b induced by the owners
// map (owners[g] = partition of global vertex g, each < k). The owners
// map typically comes from agg.(*Unified).PartitionOwners, which
// reuses the interner's FID shard hash, but any assignment works —
// including adversarial ones, which the equivalence tests exploit.
func PartitionPlan(b *Bidirected, owners []uint16, k, workers int) *Plan {
	n := b.N()
	if len(owners) != n {
		panic(fmt.Sprintf("graph: owners length %d != vertex count %d", len(owners), n))
	}
	if k < 1 {
		panic("graph: partition count must be >= 1")
	}
	p := &Plan{
		K:        k,
		N:        n,
		Owners:   owners,
		LocalIdx: make([]uint32, n),
		Parts:    make([]*SubGraph, k),
	}

	// Assign rows: ascending global GID order within each partition, so
	// a partition's Local slice is sorted by construction and the
	// coordinator can scatter/gather positionally.
	counts := make([]int, k)
	for g := 0; g < n; g++ {
		o := owners[g]
		if int(o) >= k {
			panic(fmt.Sprintf("graph: owner %d of vertex %d out of range k=%d", o, g, k))
		}
		counts[o]++
	}
	for part := 0; part < k; part++ {
		p.Parts[part] = &SubGraph{
			Part:   part,
			Local:  make([]uint32, 0, counts[part]),
			SendTo: make([][]uint32, k),
		}
	}
	for g := 0; g < n; g++ {
		sub := p.Parts[owners[g]]
		p.LocalIdx[g] = uint32(len(sub.Local))
		sub.Local = append(sub.Local, uint32(g))
	}

	// Materialise each partition independently (the passes below touch
	// only that partition's arrays).
	par.ForEach(k, workers, func(part int) {
		buildSubGraph(b, p, p.Parts[part])
	})

	// Send schedules: walking each partition's ghost list in (ascending
	// global GID) order and appending to the owner's SendTo[q] yields,
	// for every owner, a schedule sorted the same way — so the exchange
	// can route by position alone.
	for q := 0; q < k; q++ {
		for _, g := range p.Parts[q].Ghosts {
			o := owners[g]
			p.Parts[o].SendTo[q] = append(p.Parts[o].SendTo[q], p.LocalIdx[g])
		}
	}
	return p
}

func buildSubGraph(b *Bidirected, p *Plan, sub *SubGraph) {
	part := uint16(sub.Part)
	nLocal := len(sub.Local)

	// Pass 1: discover ghosts — every remote GID referenced by a row of
	// either orientation.
	var refs []uint32
	for _, g := range sub.Local {
		s, e := b.Rev.EdgeRange(g)
		for i := s; i < e; i++ {
			if src := b.Rev.Targets[i]; p.Owners[src] != part {
				refs = append(refs, src)
			}
		}
		s, e = b.Fwd.EdgeRange(g)
		for i := s; i < e; i++ {
			if dst := b.Fwd.Targets[i]; p.Owners[dst] != part {
				refs = append(refs, dst)
			}
		}
	}
	sub.CutEdges = int64(len(refs))
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	ghostIdx := make(map[uint32]uint32, len(refs)/2)
	for _, g := range refs {
		if _, ok := ghostIdx[g]; !ok {
			ghostIdx[g] = uint32(nLocal + len(sub.Ghosts))
			sub.Ghosts = append(sub.Ghosts, g)
		}
	}

	colOf := func(g uint32) uint32 {
		if p.Owners[g] == part {
			return p.LocalIdx[g]
		}
		return ghostIdx[g]
	}

	// Pass 2: translate rows, preserving the global CSR row order
	// element for element (the gather sums are order-sensitive).
	var nRev, nFwd int64
	for _, g := range sub.Local {
		nRev += int64(b.Rev.Degree(g))
		nFwd += int64(b.Fwd.Degree(g))
	}
	sub.RevOff = make([]int64, nLocal+1)
	sub.RevCol = make([]uint32, 0, nRev)
	sub.FwdOff = make([]int64, nLocal+1)
	sub.FwdCol = make([]uint32, 0, nFwd)
	sub.FwdPaired = make([]uint8, 0, nFwd)
	for l, g := range sub.Local {
		s, e := b.Rev.EdgeRange(g)
		for i := s; i < e; i++ {
			sub.RevCol = append(sub.RevCol, colOf(b.Rev.Targets[i]))
		}
		sub.RevOff[l+1] = int64(len(sub.RevCol))
		s, e = b.Fwd.EdgeRange(g)
		for i := s; i < e; i++ {
			sub.FwdCol = append(sub.FwdCol, colOf(b.Fwd.Targets[i]))
			sub.FwdPaired = append(sub.FwdPaired, b.FwdPaired[i])
		}
		sub.FwdOff[l+1] = int64(len(sub.FwdCol))
	}

	// Pass 3: per-column metadata, ghosts included, so the rank
	// divisors are computable locally for every column.
	nCols := sub.NCols()
	sub.OutDeg = make([]int32, nCols)
	sub.PairedIn = make([]int32, nCols)
	sub.UnpairedIn = make([]int32, nCols)
	fill := func(col int, g uint32) {
		sub.OutDeg[col] = int32(b.Fwd.Degree(g))
		sub.PairedIn[col] = b.PairedIn[g]
		sub.UnpairedIn[col] = b.UnpairedIn[g]
	}
	for l, g := range sub.Local {
		fill(l, g)
	}
	for i, g := range sub.Ghosts {
		fill(nLocal+i, g)
	}
}
