package graph

import (
	"fmt"
	"sort"

	"faultyrank/internal/par"
)

// CSR is a Compressed Sparse Row adjacency structure: the out-neighbours
// of vertex v occupy Targets[Offsets[v]:Offsets[v+1]], sorted ascending.
// Kinds, when non-nil, is parallel to Targets. Offsets are 64-bit so the
// structure scales past 2^31 edges (RMAT-26 at degree 32 has 2.1 G edges).
type CSR struct {
	N       int      // number of vertices
	Offsets []int64  // length N+1
	Targets []uint32 // length NumEdges
	Kinds   []EdgeKind
}

// NumEdges returns the total directed edge count.
func (c *CSR) NumEdges() int64 { return int64(len(c.Targets)) }

// Degree returns the out-degree of v.
func (c *CSR) Degree(v uint32) int {
	return int(c.Offsets[v+1] - c.Offsets[v])
}

// Neighbors returns the sorted out-neighbour slice of v. The slice aliases
// the CSR's storage and must not be modified.
func (c *CSR) Neighbors(v uint32) []uint32 {
	return c.Targets[c.Offsets[v]:c.Offsets[v+1]]
}

// EdgeRange returns the [lo, hi) index range of v's edges in Targets.
func (c *CSR) EdgeRange(v uint32) (lo, hi int64) {
	return c.Offsets[v], c.Offsets[v+1]
}

// HasEdge reports whether a directed edge u->v exists, via binary search
// over u's sorted adjacency.
func (c *CSR) HasEdge(u, v uint32) bool {
	adj := c.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// EdgeIndex returns the index into Targets of the first u->v edge, or -1.
func (c *CSR) EdgeIndex(u, v uint32) int64 {
	lo, hi := c.EdgeRange(u)
	adj := c.Targets[lo:hi]
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	if i < len(adj) && adj[i] == v {
		return lo + int64(i)
	}
	return -1
}

// EdgeMultiplicity returns how many parallel u->v edges exist.
func (c *CSR) EdgeMultiplicity(u, v uint32) int {
	lo, hi := c.EdgeRange(u)
	adj := c.Targets[lo:hi]
	first := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	n := 0
	for i := first; i < len(adj) && adj[i] == v; i++ {
		n++
	}
	return n
}

// Edges materialises the CSR back into an edge list (mostly for tests and
// small tooling; it allocates the full list).
func (c *CSR) Edges() []Edge {
	out := make([]Edge, 0, len(c.Targets))
	for v := 0; v < c.N; v++ {
		lo, hi := c.Offsets[v], c.Offsets[v+1]
		for i := lo; i < hi; i++ {
			e := Edge{Src: uint32(v), Dst: c.Targets[i]}
			if c.Kinds != nil {
				e.Kind = c.Kinds[i]
			}
			out = append(out, e)
		}
	}
	return out
}

// MemoryBytes estimates the heap footprint of the CSR arrays.
func (c *CSR) MemoryBytes() int64 {
	b := int64(len(c.Offsets)) * 8
	b += int64(len(c.Targets)) * 4
	b += int64(len(c.Kinds))
	return b
}

// csrCountBudget bounds the total size of the per-worker count arrays
// BuildCSR allocates (bytes). With very large vertex counts the worker
// count is reduced so W*n*8 stays under the budget; counting then runs
// on fewer cores but never touches an atomic.
const csrCountBudget = 2 << 30

// csrCountWorkers picks the number of counting/scatter workers for a
// build over n vertices and m edges.
func csrCountWorkers(n, m, workers int) int {
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	if workers > m {
		workers = m
	}
	if n > 0 {
		if cap := csrCountBudget / (8 * n); workers > cap {
			workers = cap
		}
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// BuildCSR builds a CSR over n vertices from an edge list, in parallel
// and without write contention: each worker counts out-degrees of its
// contiguous edge range into a private count array, the per-worker
// counts are reduced into global offsets via par.ExclusivePrefixSum64
// plus a column-wise scan that yields every worker a private scatter
// cursor per vertex, and the scatter pass then writes disjoint slots —
// no atomics anywhere, and slot assignment is deterministic (edge input
// order per vertex). Each vertex's adjacency is finally sorted so
// lookups can binary-search. Edges referencing vertices >= n cause a
// panic — callers (the aggregator) densify IDs first.
//
// keepKinds controls whether the per-edge kind array is retained; pure
// benchmark graphs drop it to save a byte per edge.
func BuildCSR(n int, edges []Edge, keepKinds bool, workers int) *CSR {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	c := &CSR{N: n, Offsets: make([]int64, n+1)}
	m := len(edges)
	if m == 0 {
		return c
	}

	// Both passes split the edge array into the same W contiguous ranges:
	// worker w owns edges [w*chunk, min((w+1)*chunk, m)).
	W := csrCountWorkers(n, m, workers)
	chunk := (m + W - 1) / W

	// Pass 1: private per-worker out-degree counts. counts[w*n+v] is the
	// number of edges with source v in worker w's range.
	counts := make([]int64, W*n)
	par.ForEach(W, W, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > m {
			hi = m
		}
		cnt := counts[w*n : (w+1)*n]
		for i := lo; i < hi; i++ {
			src := edges[i].Src
			if int(src) >= n || int(edges[i].Dst) >= n {
				panic(fmt.Sprintf("graph: edge %d (%d->%d) out of range n=%d", i, edges[i].Src, edges[i].Dst, n))
			}
			cnt[src]++
		}
	})

	// Reduce: per-vertex totals -> exclusive prefix sum -> offsets.
	par.ForRange(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var t int64
			for w := 0; w < W; w++ {
				t += counts[w*n+v]
			}
			c.Offsets[v] = t
		}
	})
	total := par.ExclusivePrefixSum64(c.Offsets[:n])
	c.Offsets[n] = total

	// Column-wise exclusive scan turns each worker's count into its
	// private start cursor: worker w's slots for vertex v begin at
	// Offsets[v] + Σ_{w'<w} counts[w'][v].
	par.ForRange(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			run := c.Offsets[v]
			for w := 0; w < W; w++ {
				cw := counts[w*n+v]
				counts[w*n+v] = run
				run += cw
			}
		}
	})

	// Pass 2: scatter. Worker w re-walks its edge range bumping only its
	// own cursors, so every Targets slot is written exactly once.
	c.Targets = make([]uint32, total)
	if keepKinds {
		c.Kinds = make([]EdgeKind, total)
	}
	par.ForEach(W, W, func(w int) {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > m {
			hi = m
		}
		cur := counts[w*n : (w+1)*n]
		for i := lo; i < hi; i++ {
			e := edges[i]
			at := cur[e.Src]
			cur[e.Src] = at + 1
			c.Targets[at] = e.Dst
			if keepKinds {
				c.Kinds[at] = e.Kind
			}
		}
	})

	// Pass 3: sort each adjacency (targets ascending, kind as tiebreak)
	// so that HasEdge/EdgeIndex can binary-search and iteration order is
	// deterministic regardless of scatter interleaving.
	par.ForRange(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s, e := c.Offsets[v], c.Offsets[v+1]
			if e-s < 2 {
				continue
			}
			sortAdjacency(c.Targets[s:e], kindsSlice(c.Kinds, s, e))
		}
	})
	return c
}

func kindsSlice(kinds []EdgeKind, s, e int64) []EdgeKind {
	if kinds == nil {
		return nil
	}
	return kinds[s:e]
}

// sortAdjacency sorts targets ascending, permuting kinds alongside when
// present. Adjacency lists are typically tiny (PFS metadata graphs have
// bounded fan-out), so insertion sort wins for short runs; longer runs
// fall back to sort.Sort.
func sortAdjacency(targets []uint32, kinds []EdgeKind) {
	if len(targets) <= 32 {
		for i := 1; i < len(targets); i++ {
			t := targets[i]
			var k EdgeKind
			if kinds != nil {
				k = kinds[i]
			}
			j := i - 1
			for j >= 0 && (targets[j] > t || (targets[j] == t && kinds != nil && kinds[j] > k)) {
				targets[j+1] = targets[j]
				if kinds != nil {
					kinds[j+1] = kinds[j]
				}
				j--
			}
			targets[j+1] = t
			if kinds != nil {
				kinds[j+1] = k
			}
		}
		return
	}
	sort.Sort(&adjSorter{targets, kinds})
}

type adjSorter struct {
	targets []uint32
	kinds   []EdgeKind
}

func (a *adjSorter) Len() int { return len(a.targets) }
func (a *adjSorter) Less(i, j int) bool {
	if a.targets[i] != a.targets[j] {
		return a.targets[i] < a.targets[j]
	}
	return a.kinds != nil && a.kinds[i] < a.kinds[j]
}
func (a *adjSorter) Swap(i, j int) {
	a.targets[i], a.targets[j] = a.targets[j], a.targets[i]
	if a.kinds != nil {
		a.kinds[i], a.kinds[j] = a.kinds[j], a.kinds[i]
	}
}

// ReverseEdges returns the edge list of the transposed graph. Edge kinds
// are preserved (the reversed edge keeps the kind of its forward edge so
// provenance survives transposition).
func ReverseEdges(edges []Edge) []Edge {
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{Src: e.Dst, Dst: e.Src, Kind: e.Kind}
	}
	return out
}
