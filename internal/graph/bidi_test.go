package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func fig3Bidi(t *testing.T) *Bidirected {
	t.Helper()
	edges := []Edge{
		{0, 1, KindDirent},
		{0, 2, KindDirent},
		{1, 0, KindLinkEA},
		{3, 1, KindFilterFID},
	}
	return NewBidirected(4, edges, 0)
}

func TestBidirectedPairing(t *testing.T) {
	b := fig3Bidi(t)
	// a<->b paired; a->c and d->b unpaired.
	st := b.Stats(0)
	if st.PairedEdges != 2 || st.UnpairedEdges != 2 {
		t.Fatalf("paired=%d unpaired=%d, want 2/2", st.PairedEdges, st.UnpairedEdges)
	}
	if st.Sinks != 1 { // c has no out-edges
		t.Errorf("sinks = %d, want 1", st.Sinks)
	}
	if st.Sources != 1 { // d has no in-edges
		t.Errorf("sources = %d, want 1", st.Sources)
	}
	if st.Vertices != 4 || st.Edges != 4 {
		t.Errorf("V=%d E=%d", st.Vertices, st.Edges)
	}
}

func TestBidirectedUnpairedSets(t *testing.T) {
	b := fig3Bidi(t)
	for v, want := range map[uint32]bool{0: true, 1: true, 2: true, 3: true} {
		if got := b.HasUnpairedEdge(v); got != want {
			t.Errorf("HasUnpairedEdge(%d) = %v, want %v", v, got, want)
		}
	}
	if got := b.UnpairedOut(0); !reflect.DeepEqual(got, []uint32{2}) {
		t.Errorf("UnpairedOut(a) = %v, want [2]", got)
	}
	if got := b.UnpairedOut(3); !reflect.DeepEqual(got, []uint32{1}) {
		t.Errorf("UnpairedOut(d) = %v, want [1]", got)
	}
	if got := b.UnpairedIncoming(2); !reflect.DeepEqual(got, []uint32{0}) {
		t.Errorf("UnpairedIncoming(c) = %v, want [0]", got)
	}
	if got := b.UnpairedIncoming(1); !reflect.DeepEqual(got, []uint32{3}) {
		t.Errorf("UnpairedIncoming(b) = %v, want [3]", got)
	}
	if got := b.UnpairedOut(1); len(got) != 0 {
		t.Errorf("UnpairedOut(b) = %v, want empty", got)
	}
}

func TestBidirectedInCounts(t *testing.T) {
	b := fig3Bidi(t)
	// a: one paired in-edge (b->a); b: one paired (a->b) + one unpaired
	// (d->b); c: one unpaired (a->c); d: none.
	wantPaired := []int32{1, 1, 0, 0}
	wantUnpaired := []int32{0, 1, 1, 0}
	if !reflect.DeepEqual(b.PairedIn, wantPaired) {
		t.Errorf("PairedIn = %v, want %v", b.PairedIn, wantPaired)
	}
	if !reflect.DeepEqual(b.UnpairedIn, wantUnpaired) {
		t.Errorf("UnpairedIn = %v, want %v", b.UnpairedIn, wantUnpaired)
	}
}

// TestPairingSymmetryProperty: an edge u->v is paired exactly when the
// graph also contains v->u, and rev-pairing mirrors forward-pairing.
func TestPairingSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		edges := randomEdges(r, n, r.Intn(200))
		b := NewBidirected(n, edges, 1+r.Intn(4))
		for v := 0; v < n; v++ {
			u := uint32(v)
			s, e := b.Fwd.EdgeRange(u)
			for i := s; i < e; i++ {
				want := b.Fwd.HasEdge(b.Fwd.Targets[i], u)
				if (b.FwdPaired[i] == 1) != want {
					return false
				}
			}
			s, e = b.Rev.EdgeRange(u)
			for i := s; i < e; i++ {
				want := b.Fwd.HasEdge(u, b.Rev.Targets[i])
				if (b.RevPaired[i] == 1) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSymmetricGraphFullyPaired: a graph containing v->u for every u->v
// has no unpaired edges and no S_chk members.
func TestSymmetricGraphFullyPaired(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		var edges []Edge
		for i := 0; i < r.Intn(100); i++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			edges = append(edges, Edge{u, v, KindDirent}, Edge{v, u, KindLinkEA})
		}
		b := NewBidirected(n, edges, 0)
		st := b.Stats(0)
		if st.UnpairedEdges != 0 {
			return false
		}
		for v := 0; v < n; v++ {
			if b.HasUnpairedEdge(uint32(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInCountsMatchRevDegrees: PairedIn+UnpairedIn equals in-degree.
func TestInCountsMatchRevDegrees(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		edges := randomEdges(r, n, r.Intn(250))
		b := NewBidirected(n, edges, 3)
		for v := 0; v < n; v++ {
			if int(b.PairedIn[v]+b.UnpairedIn[v]) != b.InDegree(uint32(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUntypedBidirected(t *testing.T) {
	edges := []Edge{{0, 1, 0}, {1, 0, 0}, {2, 0, 0}}
	b := NewBidirectedUntyped(3, edges, 0)
	if b.Fwd.Kinds != nil || b.Rev.Kinds != nil {
		t.Error("untyped graph should not allocate kind arrays")
	}
	st := b.Stats(0)
	if st.PairedEdges != 2 || st.UnpairedEdges != 1 {
		t.Errorf("stats: %+v", st)
	}
	if b.MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}
