package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func edgeLess(a, b Edge) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	return a.Kind < b.Kind
}

func sortedEdges(es []Edge) []Edge {
	out := append([]Edge(nil), es...)
	sort.Slice(out, func(i, j int) bool { return edgeLess(out[i], out[j]) })
	return out
}

func randomEdges(rng *rand.Rand, n, m int) []Edge {
	es := make([]Edge, m)
	for i := range es {
		es[i] = Edge{
			Src:  uint32(rng.Intn(n)),
			Dst:  uint32(rng.Intn(n)),
			Kind: EdgeKind(rng.Intn(5)),
		}
	}
	return es
}

func TestBuildCSREmpty(t *testing.T) {
	c := BuildCSR(5, nil, true, 0)
	if c.NumEdges() != 0 {
		t.Fatalf("edges = %d, want 0", c.NumEdges())
	}
	for v := uint32(0); v < 5; v++ {
		if c.Degree(v) != 0 {
			t.Fatalf("degree(%d) = %d", v, c.Degree(v))
		}
	}
	if c.HasEdge(0, 1) {
		t.Fatal("HasEdge on empty graph")
	}
}

func TestBuildCSRZeroVertices(t *testing.T) {
	c := BuildCSR(0, nil, false, 0)
	if c.N != 0 || c.NumEdges() != 0 {
		t.Fatalf("unexpected: %+v", c)
	}
}

func TestBuildCSRSmall(t *testing.T) {
	edges := []Edge{
		{0, 1, KindDirent},
		{0, 2, KindDirent},
		{1, 0, KindLinkEA},
		{2, 0, KindLinkEA},
		{0, 1, KindLOVEA}, // parallel edge, different kind
	}
	c := BuildCSR(3, edges, true, 0)
	if got := c.Degree(0); got != 3 {
		t.Errorf("degree(0) = %d, want 3", got)
	}
	if !c.HasEdge(0, 1) || !c.HasEdge(1, 0) || c.HasEdge(1, 2) {
		t.Errorf("HasEdge wrong")
	}
	if got := c.EdgeMultiplicity(0, 1); got != 2 {
		t.Errorf("multiplicity(0,1) = %d, want 2", got)
	}
	if got := c.EdgeMultiplicity(0, 2); got != 1 {
		t.Errorf("multiplicity(0,2) = %d, want 1", got)
	}
	// adjacency sorted with kind tiebreak
	adj := c.Neighbors(0)
	if !sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		t.Errorf("adjacency not sorted: %v", adj)
	}
	if c.Kinds[c.Offsets[0]] != KindDirent || c.Kinds[c.Offsets[0]+1] != KindLOVEA {
		t.Errorf("kind tiebreak order wrong: %v", c.Kinds[c.Offsets[0]:c.Offsets[1]])
	}
}

func TestBuildCSROutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	BuildCSR(2, []Edge{{Src: 0, Dst: 5}}, false, 1)
}

// TestCSRRoundTripProperty: building a CSR preserves the edge multiset.
func TestCSRRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		m := r.Intn(300)
		edges := randomEdges(r, n, m)
		c := BuildCSR(n, edges, true, 1+r.Intn(8))
		return reflect.DeepEqual(sortedEdges(edges), sortedEdges(c.Edges()))
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCSRHasEdgeMatchesNaive: HasEdge agrees with a brute-force scan.
func TestCSRHasEdgeMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		edges := randomEdges(r, n, r.Intn(150))
		c := BuildCSR(n, edges, false, 2)
		naive := make(map[[2]uint32]bool)
		for _, e := range edges {
			naive[[2]uint32{e.Src, e.Dst}] = true
		}
		for u := uint32(0); int(u) < n; u++ {
			for v := uint32(0); int(v) < n; v++ {
				if c.HasEdge(u, v) != naive[[2]uint32{u, v}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReverseInvolution: reversing twice restores the edge multiset.
func TestReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		edges := randomEdges(r, 1+r.Intn(40), r.Intn(200))
		back := ReverseEdges(ReverseEdges(edges))
		return reflect.DeepEqual(sortedEdges(edges), sortedEdges(back))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildDeterministicAcrossWorkers: CSR layout is identical for any
// worker count (adjacency sorting guarantees it).
func TestBuildDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 200
	edges := randomEdges(r, n, 5000)
	base := BuildCSR(n, edges, true, 1)
	for _, w := range []int{2, 4, 8, 16} {
		c := BuildCSR(n, edges, true, w)
		if !reflect.DeepEqual(base.Offsets, c.Offsets) ||
			!reflect.DeepEqual(base.Targets, c.Targets) ||
			!reflect.DeepEqual(base.Kinds, c.Kinds) {
			t.Fatalf("workers=%d produced different CSR", w)
		}
	}
}

func TestEdgeKindStringsAndCounterparts(t *testing.T) {
	cases := []struct {
		k    EdgeKind
		s    string
		back EdgeKind
	}{
		{KindGeneric, "generic", KindGeneric},
		{KindDirent, "dirent", KindLinkEA},
		{KindLinkEA, "linkea", KindDirent},
		{KindLOVEA, "lovea", KindFilterFID},
		{KindFilterFID, "filterfid", KindLOVEA},
	}
	for _, c := range cases {
		if c.k.String() != c.s {
			t.Errorf("%d.String() = %q, want %q", c.k, c.k.String(), c.s)
		}
		if c.k.Counterpart() != c.back {
			t.Errorf("%v.Counterpart() = %v, want %v", c.k, c.k.Counterpart(), c.back)
		}
		if c.k != KindGeneric && c.k.Counterpart().Counterpart() != c.k {
			t.Errorf("counterpart not involutive for %v", c.k)
		}
	}
	if EdgeKind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestMemoryBytes(t *testing.T) {
	edges := []Edge{{0, 1, KindDirent}, {1, 0, KindLinkEA}}
	c := BuildCSR(2, edges, true, 1)
	want := int64(3*8 + 2*4 + 2)
	if got := c.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

// TestBuildCSRWorkerParity: the contention-free builder produces an
// identical CSR (offsets, targets, kinds) for every worker count, and
// the pre-sort scatter order is deterministic because each worker owns
// disjoint slots derived from the same chunking.
func TestBuildCSRWorkerParity(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	n := 257
	edges := make([]Edge, 10007)
	for i := range edges {
		edges[i] = Edge{
			Src:  uint32(r.Intn(n)),
			Dst:  uint32(r.Intn(n)),
			Kind: EdgeKind(r.Intn(5)),
		}
	}
	ref := BuildCSR(n, edges, true, 1)
	for _, w := range []int{2, 3, 8, 64} {
		got := BuildCSR(n, edges, true, w)
		if !reflect.DeepEqual(ref.Offsets, got.Offsets) {
			t.Fatalf("workers=%d: offsets diverge", w)
		}
		if !reflect.DeepEqual(ref.Targets, got.Targets) {
			t.Fatalf("workers=%d: targets diverge", w)
		}
		if !reflect.DeepEqual(ref.Kinds, got.Kinds) {
			t.Fatalf("workers=%d: kinds diverge", w)
		}
	}
}

// TestBuildCSRMoreWorkersThanEdges: degenerate chunkings (W > m, W = m)
// must not drop or duplicate edges.
func TestBuildCSRMoreWorkersThanEdges(t *testing.T) {
	edges := []Edge{{Src: 2, Dst: 0}, {Src: 0, Dst: 1}, {Src: 2, Dst: 1}}
	for _, w := range []int{3, 5, 100} {
		c := BuildCSR(3, edges, false, w)
		if c.NumEdges() != 3 {
			t.Fatalf("workers=%d: %d edges", w, c.NumEdges())
		}
		if !c.HasEdge(2, 0) || !c.HasEdge(0, 1) || !c.HasEdge(2, 1) {
			t.Fatalf("workers=%d: edges missing", w)
		}
	}
}
