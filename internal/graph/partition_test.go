package graph

import (
	"math/rand"
	"testing"
)

func randomBidirected(t *testing.T, n, m int, seed int64) *Bidirected {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{
			Src: uint32(rng.Intn(n)),
			Dst: uint32(rng.Intn(n)),
		})
	}
	return NewBidirected(n, edges, 4)
}

func randomOwners(n, k int, seed int64) []uint16 {
	rng := rand.New(rand.NewSource(seed))
	owners := make([]uint16, n)
	for i := range owners {
		owners[i] = uint16(rng.Intn(k))
	}
	return owners
}

func TestPartitionPlanInvariants(t *testing.T) {
	b := randomBidirected(t, 500, 2500, 1)
	n := b.N()
	for _, k := range []int{1, 2, 3, 8} {
		owners := randomOwners(n, k, int64(k))
		plan := PartitionPlan(b, owners, k, 4)

		// Every vertex is a local of exactly its owner, locals ascend.
		seen := make([]bool, n)
		for part, sub := range plan.Parts {
			if sub.Part != part {
				t.Fatalf("k=%d: part index mismatch %d != %d", k, sub.Part, part)
			}
			prev := -1
			for l, g := range sub.Local {
				if int(g) <= prev {
					t.Fatalf("k=%d part %d: locals not strictly ascending at %d", k, part, l)
				}
				prev = int(g)
				if owners[g] != uint16(part) {
					t.Fatalf("k=%d: vertex %d local to %d but owned by %d", k, g, part, owners[g])
				}
				if plan.LocalIdx[g] != uint32(l) {
					t.Fatalf("k=%d: LocalIdx[%d]=%d want %d", k, g, plan.LocalIdx[g], l)
				}
				if seen[g] {
					t.Fatalf("k=%d: vertex %d local twice", k, g)
				}
				seen[g] = true
			}
		}
		for g, ok := range seen {
			if !ok {
				t.Fatalf("k=%d: vertex %d not assigned", k, g)
			}
		}

		var cut int64
		for part, sub := range plan.Parts {
			nLocal := sub.NLocal()
			// Ghosts ascend, are remote, and column metadata matches the
			// global graph for locals and ghosts alike.
			prev := -1
			for _, g := range sub.Ghosts {
				if int(g) <= prev {
					t.Fatalf("k=%d part %d: ghosts not strictly ascending", k, part)
				}
				prev = int(g)
				if owners[g] == uint16(part) {
					t.Fatalf("k=%d part %d: owned vertex %d listed as ghost", k, part, g)
				}
			}
			globalOf := func(col uint32) uint32 {
				if int(col) < nLocal {
					return sub.Local[col]
				}
				return sub.Ghosts[int(col)-nLocal]
			}
			for col := 0; col < sub.NCols(); col++ {
				g := globalOf(uint32(col))
				if sub.OutDeg[col] != int32(b.Fwd.Degree(g)) ||
					sub.PairedIn[col] != b.PairedIn[g] ||
					sub.UnpairedIn[col] != b.UnpairedIn[g] {
					t.Fatalf("k=%d part %d: col %d metadata mismatch for vertex %d", k, part, col, g)
				}
			}
			// Row translation preserves the global row order exactly.
			for l, g := range sub.Local {
				s, e := b.Rev.EdgeRange(g)
				row := sub.RevCol[sub.RevOff[l]:sub.RevOff[l+1]]
				if int64(len(row)) != e-s {
					t.Fatalf("k=%d part %d: rev row %d length mismatch", k, part, l)
				}
				for i := range row {
					if globalOf(row[i]) != b.Rev.Targets[s+int64(i)] {
						t.Fatalf("k=%d part %d: rev row %d entry %d mismatch", k, part, l, i)
					}
					if int(row[i]) >= nLocal {
						cut++
					}
				}
				s, e = b.Fwd.EdgeRange(g)
				frow := sub.FwdCol[sub.FwdOff[l]:sub.FwdOff[l+1]]
				if int64(len(frow)) != e-s {
					t.Fatalf("k=%d part %d: fwd row %d length mismatch", k, part, l)
				}
				for i := range frow {
					if globalOf(frow[i]) != b.Fwd.Targets[s+int64(i)] {
						t.Fatalf("k=%d part %d: fwd row %d entry %d mismatch", k, part, l, i)
					}
					if sub.FwdPaired[sub.FwdOff[l]+int64(i)] != b.FwdPaired[s+int64(i)] {
						t.Fatalf("k=%d part %d: fwd row %d paired flag mismatch", k, part, l)
					}
					if int(frow[i]) >= nLocal {
						cut++
					}
				}
			}
		}
		if cut != plan.CutEdges() {
			t.Fatalf("k=%d: CutEdges %d want %d", k, plan.CutEdges(), cut)
		}

		// Send schedules route every ghost exactly once, in ghost order.
		for q, sub := range plan.Parts {
			cursors := make([]int, k)
			for _, g := range sub.Ghosts {
				o := owners[g]
				sched := plan.Parts[o].SendTo[q]
				if cursors[o] >= len(sched) {
					t.Fatalf("k=%d: schedule %d->%d exhausted", k, o, q)
				}
				local := sched[cursors[o]]
				cursors[o]++
				if plan.Parts[o].Local[local] != g {
					t.Fatalf("k=%d: schedule %d->%d routes %d want %d", k, o, q,
						plan.Parts[o].Local[local], g)
				}
			}
			for o := 0; o < k; o++ {
				if cursors[o] != len(plan.Parts[o].SendTo[q]) {
					t.Fatalf("k=%d: schedule %d->%d has %d unused entries", k, o, q,
						len(plan.Parts[o].SendTo[q])-cursors[o])
				}
			}
		}
	}
}

func TestPartitionPlanSinglePartition(t *testing.T) {
	b := randomBidirected(t, 100, 400, 7)
	plan := PartitionPlan(b, make([]uint16, b.N()), 1, 2)
	sub := plan.Parts[0]
	if len(sub.Ghosts) != 0 {
		t.Fatalf("1-partition plan has %d ghosts", len(sub.Ghosts))
	}
	if sub.CutEdges != 0 {
		t.Fatalf("1-partition plan has %d cut edges", sub.CutEdges)
	}
	if sub.NLocal() != b.N() {
		t.Fatalf("1-partition plan owns %d of %d vertices", sub.NLocal(), b.N())
	}
}
