package lustre

import (
	"fmt"
	"strings"

	"faultyrank/internal/ldiskfs"
)

// Adopt rebuilds a Cluster handle from existing server images (MDTs
// first, then OSTs in index order — the order imgdir.Load produces).
// The FID index is reconstructed by scanning every image's LMA
// attributes, and the FID allocators resume past the highest object id
// seen, so adopted clusters can keep creating files. Structural damage
// is tolerated: an adopted cluster may be inconsistent (that is what
// the checkers are for); only a missing root directory is fatal.
func Adopt(images []*ldiskfs.Image) (*Cluster, error) {
	if len(images) < 2 {
		return nil, fmt.Errorf("lustre: adopt needs MDT + at least one OST")
	}
	if !strings.HasPrefix(images[0].Label(), "mdt") {
		return nil, fmt.Errorf("lustre: first image %q is not an MDT", images[0].Label())
	}
	nMDT := 0
	for _, img := range images {
		if strings.HasPrefix(img.Label(), "mdt") {
			nMDT++
		}
	}
	c := &Cluster{
		Cfg: Config{
			NumOSTs:     len(images) - nMDT,
			NumMDTs:     nMDT,
			StripeSize:  64 << 10,
			StripeCount: -1,
			Geometry:    images[0].Geometry(),
		},
		dirCache: make(map[string]dirRef),
		fidLoc:   make(map[FID]Location),
	}
	// Index the MDTs.
	for i := 0; i < nMDT; i++ {
		img := images[i]
		mdt := &MDT{Img: img, Index: i, seq: MDTSeqBase + uint64(i)<<20}
		err := img.AllocatedInodes(func(ino ldiskfs.Ino, t ldiskfs.FileType) error {
			raw, ok, err := img.GetXattr(ino, XattrLMA)
			if err != nil || !ok {
				return nil
			}
			fid, err := DecodeLMA(raw)
			if err != nil || fid.IsZero() {
				return nil
			}
			if _, dup := c.fidLoc[fid]; !dup {
				c.fidLoc[fid] = Location{OST: -1, MDT: i, Ino: ino}
			}
			switch t {
			case ldiskfs.TypeDir:
				c.nDirs++
			case ldiskfs.TypeFile, ldiskfs.TypeSymlink:
				c.nFiles++
			}
			if fid.Seq >= mdt.seq {
				mdt.seq = fid.Seq
				if fid.Oid > mdt.nextOid {
					mdt.nextOid = fid.Oid
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		c.MDTs = append(c.MDTs, mdt)
	}
	c.MDT = c.MDTs[0]
	// Index the OSTs.
	for i, img := range images[nMDT:] {
		ost := &OST{Img: img, Index: i, seq: OSTSeqBase + uint64(i)}
		err := img.AllocatedInodes(func(ino ldiskfs.Ino, t ldiskfs.FileType) error {
			raw, ok, err := img.GetXattr(ino, XattrLMA)
			if err != nil || !ok {
				return nil
			}
			fid, err := DecodeLMA(raw)
			if err != nil || fid.IsZero() {
				return nil
			}
			if _, dup := c.fidLoc[fid]; !dup {
				c.fidLoc[fid] = Location{OST: i, Ino: ino}
			}
			if t == ldiskfs.TypeObject {
				c.nObjects++
			}
			if fid.Seq >= ost.seq && fid.Oid > ost.nextOid {
				ost.seq = fid.Seq
				ost.nextOid = fid.Oid
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		c.OSTs = append(c.OSTs, ost)
	}
	root, ok := c.fidLoc[RootFID]
	if !ok || !root.OnMDT() || root.MDT != 0 {
		return nil, fmt.Errorf("lustre: adopt: no root directory (FID %v) on MDT0", RootFID)
	}
	c.rootIno = root.Ino
	c.dirCache["/"] = dirRef{ino: root.Ino, fid: RootFID, mdt: 0}
	return c, nil
}
