package lustre

import (
	"testing"
	"testing/quick"
)

func TestFIDStringParseRoundTrip(t *testing.T) {
	f := func(seq uint64, oid, ver uint32) bool {
		fid := FID{Seq: seq, Oid: oid, Ver: ver}
		got, err := ParseFID(fid.String())
		return err == nil && got == fid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFIDBytesRoundTrip(t *testing.T) {
	f := func(seq uint64, oid, ver uint32) bool {
		fid := FID{Seq: seq, Oid: oid, Ver: ver}
		b := fid.Bytes()
		return FIDFromBytes(b[:]) == fid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseFIDErrors(t *testing.T) {
	bad := []string{
		"", "[]", "0x1:0x2:0x3", "[0x1:0x2]", "[0x1:0x2:0x3:0x4]",
		"[zz:0x2:0x3]", "[0x1:0x100000000:0x0]", "[0x1:0x2:0x100000000]",
	}
	for _, s := range bad {
		if _, err := ParseFID(s); err == nil {
			t.Errorf("ParseFID(%q) accepted", s)
		}
	}
	good, err := ParseFID(" [0x200000400:0x1:0x0] ")
	if err != nil || good != (FID{Seq: 0x200000400, Oid: 1}) {
		t.Errorf("trimmed parse: %v %v", good, err)
	}
}

func TestFIDFromBytesShort(t *testing.T) {
	if got := FIDFromBytes([]byte{1, 2, 3}); !got.IsZero() {
		t.Errorf("short input = %v", got)
	}
}

func TestFIDOrderingAndZero(t *testing.T) {
	a := FID{Seq: 1, Oid: 2, Ver: 3}
	b := FID{Seq: 1, Oid: 2, Ver: 4}
	c := FID{Seq: 1, Oid: 3, Ver: 0}
	d := FID{Seq: 2, Oid: 0, Ver: 0}
	if !a.Less(b) || !b.Less(c) || !c.Less(d) || d.Less(a) || a.Less(a) {
		t.Error("Less ordering wrong")
	}
	if !(FID{}).IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
	if RootFID.IsZero() {
		t.Error("root FID is zero")
	}
}

func TestEAEncodings(t *testing.T) {
	// LinkEA
	links := []LinkEntry{
		{Parent: FID{Seq: 9, Oid: 8, Ver: 7}, Name: "file.txt"},
		{Parent: RootFID, Name: "hardlink"},
	}
	enc, err := EncodeLinkEA(links)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeLinkEA(enc)
	if err != nil || len(dec) != 2 || dec[0] != links[0] || dec[1] != links[1] {
		t.Fatalf("linkEA round trip: %+v %v", dec, err)
	}
	if _, err := DecodeLinkEA([]byte{1}); err == nil {
		t.Error("short linkEA accepted")
	}
	if _, err := DecodeLinkEA([]byte{1, 0, 5, 5}); err == nil {
		t.Error("truncated linkEA accepted")
	}

	// LOVEA
	layout := Layout{StripeSize: 65536, Stripes: []StripeEntry{
		{OSTIndex: 0, ObjectFID: FID{Seq: OSTSeqBase, Oid: 1}},
		{OSTIndex: 3, ObjectFID: FID{Seq: OSTSeqBase + 3, Oid: 2}},
	}}
	lov, err := EncodeLOVEA(layout)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeLOVEA(lov)
	if err != nil || back.StripeSize != 65536 || len(back.Stripes) != 2 {
		t.Fatalf("lovEA round trip: %+v %v", back, err)
	}
	if back.Stripes[1] != layout.Stripes[1] {
		t.Errorf("stripe mismatch: %+v", back.Stripes[1])
	}
	// corrupted magic is rejected (how a corrupt layout manifests)
	lov[0] ^= 0xFF
	if _, err := DecodeLOVEA(lov); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeLOVEA(nil); err == nil {
		t.Error("nil LOVEA accepted")
	}

	// FilterFID
	ff := FilterFID{ParentFID: FID{Seq: 5, Oid: 6, Ver: 0}, StripeIndex: 4}
	got, err := DecodeFilterFID(EncodeFilterFID(ff))
	if err != nil || got != ff {
		t.Fatalf("filter-fid round trip: %+v %v", got, err)
	}
	if _, err := DecodeFilterFID([]byte{1, 2}); err == nil {
		t.Error("short filter-fid accepted")
	}

	// LMA
	fid := FID{Seq: 42, Oid: 42, Ver: 42}
	lma, err := DecodeLMA(EncodeLMA(fid))
	if err != nil || lma != fid {
		t.Fatalf("lma round trip: %v %v", lma, err)
	}
	if _, err := DecodeLMA([]byte{0}); err == nil {
		t.Error("short LMA accepted")
	}
}
