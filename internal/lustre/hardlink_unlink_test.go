package lustre

import (
	"errors"
	"testing"
)

// TestUnlinkOneOfManyNames: removing one name of a hard-linked file
// keeps the inode, objects and remaining names intact; removing the
// last name frees everything.
func TestUnlinkOneOfManyNames(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/d")
	ent, err := c.Create("/d/one", 2*64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Link("/d/one", "/d/two"); err != nil {
		t.Fatal(err)
	}
	_, _, objsBefore := c.Counts()

	if err := c.Unlink("/d/one"); err != nil {
		t.Fatal(err)
	}
	// The other name survives with the same inode and objects.
	still, err := c.Stat("/d/two")
	if err != nil || still.FID != ent.FID || still.Ino != ent.Ino {
		t.Fatalf("surviving name: %+v %v", still, err)
	}
	if _, _, objs := c.Counts(); objs != objsBefore {
		t.Fatalf("objects changed: %d -> %d", objsBefore, objs)
	}
	// The LinkEA has exactly the surviving record.
	img, _ := c.EntryImage(still)
	raw, _, _ := img.GetXattr(still.Ino, XattrLink)
	links, _ := DecodeLinkEA(raw)
	if len(links) != 1 || links[0].Name != "two" {
		t.Fatalf("linkEA: %+v", links)
	}
	if _, err := c.Stat("/d/one"); !errors.Is(err, ErrNotExist) {
		t.Errorf("removed name still resolves: %v", err)
	}

	// Last name: full removal.
	if err := c.Unlink("/d/two"); err != nil {
		t.Fatal(err)
	}
	if img.InodeAllocated(still.Ino) {
		t.Error("inode survived last unlink")
	}
	if _, _, objs := c.Counts(); objs != objsBefore-2 {
		t.Errorf("objects not released: %d", objsBefore)
	}
}
