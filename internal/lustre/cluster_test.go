package lustre

import (
	"errors"
	"fmt"
	"testing"

	"faultyrank/internal/ldiskfs"
)

func testConfig() Config {
	return Config{NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry()}
}

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterRoot(t *testing.T) {
	c := newTestCluster(t)
	ent, err := c.Stat("/")
	if err != nil || ent.FID != RootFID || ent.Type != ldiskfs.TypeDir {
		t.Fatalf("root stat: %+v %v", ent, err)
	}
	// Root LinkEA points to itself.
	raw, ok, err := c.MDT.Img.GetXattr(c.RootIno(), XattrLink)
	if err != nil || !ok {
		t.Fatal("root has no LinkEA")
	}
	links, err := DecodeLinkEA(raw)
	if err != nil || len(links) != 1 || links[0].Parent != RootFID {
		t.Fatalf("root linkEA: %+v %v", links, err)
	}
	if got := len(c.Images()); got != 5 {
		t.Errorf("images = %d, want 5", got)
	}
	dirs, files, objs := c.Counts()
	if dirs != 1 || files != 0 || objs != 0 {
		t.Errorf("counts = %d %d %d", dirs, files, objs)
	}
	if _, err := NewCluster(Config{NumOSTs: 0}); err == nil {
		t.Error("zero OSTs accepted")
	}
}

func TestMkdirAndStat(t *testing.T) {
	c := newTestCluster(t)
	if err := c.Mkdir("/home"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/home"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate mkdir: %v", err)
	}
	if err := c.Mkdir("/missing/sub"); !errors.Is(err, ErrNotExist) {
		t.Errorf("mkdir under missing parent: %v", err)
	}
	if err := c.MkdirAll("/home/alice/projects/deep"); err != nil {
		t.Fatal(err)
	}
	ent, err := c.Stat("/home/alice/projects/deep")
	if err != nil || ent.Type != ldiskfs.TypeDir {
		t.Fatalf("stat deep dir: %+v %v", ent, err)
	}
	// MkdirAll is idempotent.
	if err := c.MkdirAll("/home/alice"); err != nil {
		t.Fatal(err)
	}
	// Metadata cross-check: child's LinkEA names the parent's FID.
	parent, _ := c.Stat("/home/alice/projects")
	raw, _, _ := c.MDT.Img.GetXattr(ent.Ino, XattrLink)
	links, _ := DecodeLinkEA(raw)
	if len(links) != 1 || links[0].Parent != parent.FID || links[0].Name != "deep" {
		t.Errorf("linkEA = %+v, want parent %v", links, parent.FID)
	}
}

func TestCreateFileStripes(t *testing.T) {
	c := newTestCluster(t)
	cases := []struct {
		size    int64
		objects int
	}{
		{0, 1},              // empty file still gets one object
		{1, 1},              // < one stripe
		{64 << 10, 1},       // exactly one stripe
		{64<<10 + 1, 2},     // just over
		{3 * 64 << 10, 3},   //
		{4 * 64 << 10, 4},   // = NumOSTs
		{100 * 64 << 10, 4}, // capped at NumOSTs (stripe_count -1)
	}
	for i, tc := range cases {
		p := fmt.Sprintf("/f%d", i)
		ent, err := c.Create(p, tc.size)
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		raw, ok, err := c.MDT.Img.GetXattr(ent.Ino, XattrLOV)
		if err != nil || !ok {
			t.Fatalf("%s: no LOVEA", p)
		}
		layout, err := DecodeLOVEA(raw)
		if err != nil {
			t.Fatal(err)
		}
		if len(layout.Stripes) != tc.objects {
			t.Errorf("%s (size %d): %d objects, want %d", p, tc.size, len(layout.Stripes), tc.objects)
		}
		// Every stripe object exists, has matching filter-fid, and the
		// object sizes sum to the file size.
		var total uint64
		for sIdx, s := range layout.Stripes {
			loc, ok := c.Lookup(s.ObjectFID)
			if !ok || loc.OnMDT() {
				t.Fatalf("%s stripe %d: object %v not tracked", p, sIdx, s.ObjectFID)
			}
			img, err := c.ImageFor(loc)
			if err != nil {
				t.Fatal(err)
			}
			ffRaw, ok, err := img.GetXattr(loc.Ino, XattrFilterFID)
			if err != nil || !ok {
				t.Fatalf("%s stripe %d: no filter-fid", p, sIdx)
			}
			ff, err := DecodeFilterFID(ffRaw)
			if err != nil || ff.ParentFID != ent.FID || ff.StripeIndex != uint32(sIdx) {
				t.Errorf("%s stripe %d: filter-fid %+v", p, sIdx, ff)
			}
			sz, _ := img.Size(loc.Ino)
			total += sz
		}
		if total != uint64(tc.size) {
			t.Errorf("%s: object bytes %d != size %d", p, total, tc.size)
		}
	}
}

func TestCreateDuplicateAndBadPaths(t *testing.T) {
	c := newTestCluster(t)
	if _, err := c.Create("/a", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("/a", 10); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate create: %v", err)
	}
	if _, err := c.Create("relative", 1); err == nil {
		t.Error("relative path accepted")
	}
	if _, err := c.Create("/", 1); err == nil {
		t.Error("create on root accepted")
	}
	if _, err := c.Stat("/nope"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stat missing: %v", err)
	}
}

func TestUnlinkReleasesObjects(t *testing.T) {
	c := newTestCluster(t)
	before := c.TotalInodes()
	if _, err := c.Create("/big", 4*64<<10); err != nil {
		t.Fatal(err)
	}
	_, files, objs := c.Counts()
	if files != 1 || objs != 4 {
		t.Fatalf("counts after create: files=%d objs=%d", files, objs)
	}
	if err := c.Unlink("/big"); err != nil {
		t.Fatal(err)
	}
	_, files, objs = c.Counts()
	if files != 0 || objs != 0 {
		t.Errorf("counts after unlink: files=%d objs=%d", files, objs)
	}
	if c.TotalInodes() != before {
		t.Errorf("inodes leaked: %d -> %d", before, c.TotalInodes())
	}
	if err := c.Unlink("/big"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double unlink: %v", err)
	}
}

func TestRmdir(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/d/sub")
	if err := c.Rmdir("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("rmdir non-empty: %v", err)
	}
	if err := c.Rmdir("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/d"); !errors.Is(err, ErrNotExist) {
		t.Errorf("removed dir still stats: %v", err)
	}
	if _, err := c.Create("/f", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/f"); !errors.Is(err, ErrNotDir) {
		t.Errorf("rmdir on file: %v", err)
	}
	if err := c.Unlink("/f"); err != nil {
		t.Fatal(err)
	}
	// recreate the same name as a directory (cache must not go stale)
	if err := c.Mkdir("/f"); err != nil {
		t.Fatal(err)
	}
}

func TestHardLink(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/x")
	ent, err := c.Create("/x/orig", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Link("/x/orig", "/x/alias"); err != nil {
		t.Fatal(err)
	}
	alias, err := c.Stat("/x/alias")
	if err != nil || alias.FID != ent.FID || alias.Ino != ent.Ino {
		t.Fatalf("alias stat: %+v %v", alias, err)
	}
	raw, _, _ := c.MDT.Img.GetXattr(ent.Ino, XattrLink)
	links, _ := DecodeLinkEA(raw)
	if len(links) != 2 {
		t.Fatalf("linkEA entries = %d, want 2", len(links))
	}
	if err := c.Link("/x/orig", "/x/alias"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate link: %v", err)
	}
	if err := c.Link("/x", "/x2"); !errors.Is(err, ErrIsDir) {
		t.Errorf("link dir: %v", err)
	}
}

func TestReadDir(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/r")
	for i := 0; i < 5; i++ {
		c.Create(fmt.Sprintf("/r/f%d", i), int64(i*1000))
	}
	ents, err := c.ReadDir("/r")
	if err != nil || len(ents) != 5 {
		t.Fatalf("readdir: %d entries, %v", len(ents), err)
	}
	if _, err := c.ReadDir("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("readdir missing: %v", err)
	}
}

func TestFIDAllocatorRollover(t *testing.T) {
	m := &MDT{seq: MDTSeqBase}
	m.nextOid = 0xFFFFFFFF - 1
	a := m.AllocFID()
	b := m.AllocFID() // rolls the sequence
	if a.Seq != MDTSeqBase || b.Seq != MDTSeqBase+1 || b.Oid != 1 {
		t.Errorf("rollover: %v then %v", a, b)
	}
	o := &OST{seq: OSTSeqBase + 2}
	f := o.AllocFID()
	if f.Seq != OSTSeqBase+2 || f.Oid != 1 {
		t.Errorf("ost fid: %v", f)
	}
}

func TestObjectBytes(t *testing.T) {
	// 200 KiB over 2 objects of 64 KiB stripes: chunks 64+64+64+8;
	// object 0 gets chunks 0,2 = 128K; object 1 gets chunks 1,3 = 64K+8K.
	ss := 64 << 10
	size := int64(200 << 10)
	if got := objectBytes(size, 0, 2, ss); got != uint64(128<<10) {
		t.Errorf("obj0 = %d", got)
	}
	if got := objectBytes(size, 1, 2, ss); got != uint64(72<<10) {
		t.Errorf("obj1 = %d", got)
	}
	if objectBytes(0, 0, 1, ss) != 0 {
		t.Error("empty file object bytes")
	}
}

func TestTotalAndMDTInodes(t *testing.T) {
	c := newTestCluster(t)
	c.Create("/f", 4*64<<10)
	if c.MDTInodes() != 2 { // root + file
		t.Errorf("mdt inodes = %d", c.MDTInodes())
	}
	if c.TotalInodes() != 2+4 {
		t.Errorf("total inodes = %d", c.TotalInodes())
	}
}
