package lustre

import (
	"errors"
	"testing"

	"faultyrank/internal/ldiskfs"
)

func TestSymlinkCreateReadlink(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/d")
	if _, err := c.Create("/d/real", 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Symlink("/d/real", "/d/ln"); err != nil {
		t.Fatal(err)
	}
	got, err := c.Readlink("/d/ln")
	if err != nil || got != "/d/real" {
		t.Fatalf("readlink = %q, %v", got, err)
	}
	ent, err := c.Stat("/d/ln")
	if err != nil || ent.Type != ldiskfs.TypeSymlink {
		t.Fatalf("stat: %+v %v", ent, err)
	}
	if ent.Size != uint64(len("/d/real")) {
		t.Errorf("size = %d", ent.Size)
	}
	// Dangling targets are legal.
	if err := c.Symlink("/nowhere", "/d/dangling"); err != nil {
		t.Fatal(err)
	}
}

func TestSymlinkErrors(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/d")
	if err := c.Symlink("", "/d/ln"); err == nil {
		t.Error("empty target accepted")
	}
	if err := c.Symlink("/x", "/missing/ln"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing parent: %v", err)
	}
	c.Symlink("/x", "/d/ln")
	if err := c.Symlink("/y", "/d/ln"); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := c.Readlink("/d"); err == nil {
		t.Error("readlink on dir accepted")
	}
	if _, err := c.Readlink("/d/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("readlink missing: %v", err)
	}
}

func TestSymlinkUnlink(t *testing.T) {
	c := newTestCluster(t)
	c.Symlink("/target", "/ln")
	before := c.TotalInodes()
	if err := c.Unlink("/ln"); err != nil {
		t.Fatal(err)
	}
	if c.TotalInodes() != before-1 {
		t.Errorf("inode not freed")
	}
	_, files, _ := c.Counts()
	if files != 0 {
		t.Errorf("files = %d", files)
	}
}
