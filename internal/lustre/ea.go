package lustre

import (
	"encoding/binary"
	"fmt"
)

var le = binary.LittleEndian

// Extended-attribute names used on server-local inodes, mirroring the
// trusted.* EAs of real Lustre (paper Fig. 1).
const (
	// XattrLMA holds the object's own FID (Lustre Metadata Attributes).
	XattrLMA = "lma"
	// XattrLink holds the LinkEA: parent FID + name, one entry per hard
	// link. Present on MDT files and directories.
	XattrLink = "link"
	// XattrLOV holds the LOVEA layout: the file's stripe objects.
	// Present on MDT regular files.
	XattrLOV = "lov"
	// XattrFilterFID holds the filter-fid of an OST object: the owning
	// MDT file's FID and the object's stripe index.
	XattrFilterFID = "fid"
)

// LOVMagic guards LOVEA decoding (Lustre's LOV_MAGIC_V1).
const LOVMagic uint32 = 0x0BD10BD0

// LinkEntry is one LinkEA record: this object is named Name inside the
// directory Parent.
type LinkEntry struct {
	Parent FID
	Name   string
}

// EncodeLinkEA serializes LinkEA entries:
//
//	u16 count | count × { 16-byte parent FID, u16 nameLen, name }
func EncodeLinkEA(entries []LinkEntry) ([]byte, error) {
	size := 2
	for _, e := range entries {
		if len(e.Name) > 0xFFFF {
			return nil, fmt.Errorf("lustre: link name too long (%d)", len(e.Name))
		}
		size += 16 + 2 + len(e.Name)
	}
	buf := make([]byte, size)
	le.PutUint16(buf, uint16(len(entries)))
	off := 2
	for _, e := range entries {
		fb := e.Parent.Bytes()
		copy(buf[off:], fb[:])
		off += 16
		le.PutUint16(buf[off:], uint16(len(e.Name)))
		off += 2
		copy(buf[off:], e.Name)
		off += len(e.Name)
	}
	return buf, nil
}

// DecodeLinkEA parses a LinkEA value.
func DecodeLinkEA(b []byte) ([]LinkEntry, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("lustre: linkEA too short")
	}
	count := int(le.Uint16(b))
	out := make([]LinkEntry, 0, count)
	off := 2
	for i := 0; i < count; i++ {
		if off+18 > len(b) {
			return nil, fmt.Errorf("lustre: truncated linkEA entry %d", i)
		}
		var e LinkEntry
		e.Parent = FIDFromBytes(b[off : off+16])
		off += 16
		nl := int(le.Uint16(b[off:]))
		off += 2
		if off+nl > len(b) {
			return nil, fmt.Errorf("lustre: truncated linkEA name (entry %d)", i)
		}
		e.Name = string(b[off : off+nl])
		off += nl
		out = append(out, e)
	}
	return out, nil
}

// StripeEntry is one LOVEA record: stripe index i of the file lives in
// object ObjectFID on OST OSTIndex.
type StripeEntry struct {
	OSTIndex  uint32
	ObjectFID FID
}

// Layout is the decoded LOVEA of a file.
type Layout struct {
	StripeSize uint32 // bytes per stripe chunk
	Stripes    []StripeEntry
}

// EncodeLOVEA serializes a layout:
//
//	u32 magic | u32 stripeSize | u16 stripeCount |
//	count × { u32 ostIndex, 16-byte object FID }
func EncodeLOVEA(l Layout) ([]byte, error) {
	if len(l.Stripes) > 0xFFFF {
		return nil, fmt.Errorf("lustre: too many stripes (%d)", len(l.Stripes))
	}
	buf := make([]byte, 10+20*len(l.Stripes))
	le.PutUint32(buf, LOVMagic)
	le.PutUint32(buf[4:], l.StripeSize)
	le.PutUint16(buf[8:], uint16(len(l.Stripes)))
	off := 10
	for _, s := range l.Stripes {
		le.PutUint32(buf[off:], s.OSTIndex)
		fb := s.ObjectFID.Bytes()
		copy(buf[off+4:], fb[:])
		off += 20
	}
	return buf, nil
}

// DecodeLOVEA parses a LOVEA value. A wrong magic is an error: that is
// precisely how a corrupted layout EA manifests to the scanner.
func DecodeLOVEA(b []byte) (Layout, error) {
	var l Layout
	if len(b) < 10 {
		return l, fmt.Errorf("lustre: LOVEA too short")
	}
	if le.Uint32(b) != LOVMagic {
		return l, fmt.Errorf("lustre: bad LOVEA magic 0x%x", le.Uint32(b))
	}
	l.StripeSize = le.Uint32(b[4:])
	count := int(le.Uint16(b[8:]))
	if len(b) < 10+20*count {
		return l, fmt.Errorf("lustre: truncated LOVEA (%d stripes)", count)
	}
	off := 10
	for i := 0; i < count; i++ {
		var s StripeEntry
		s.OSTIndex = le.Uint32(b[off:])
		s.ObjectFID = FIDFromBytes(b[off+4 : off+20])
		off += 20
		l.Stripes = append(l.Stripes, s)
	}
	return l, nil
}

// FilterFID is the decoded filter-fid EA of an OST object.
type FilterFID struct {
	ParentFID   FID    // owning MDT file
	StripeIndex uint32 // which stripe of that file this object is
}

// EncodeFilterFID serializes a filter-fid: 16-byte FID | u32 index.
func EncodeFilterFID(f FilterFID) []byte {
	buf := make([]byte, 20)
	fb := f.ParentFID.Bytes()
	copy(buf, fb[:])
	le.PutUint32(buf[16:], f.StripeIndex)
	return buf
}

// DecodeFilterFID parses a filter-fid value.
func DecodeFilterFID(b []byte) (FilterFID, error) {
	if len(b) < 20 {
		return FilterFID{}, fmt.Errorf("lustre: filter-fid too short")
	}
	return FilterFID{
		ParentFID:   FIDFromBytes(b[:16]),
		StripeIndex: le.Uint32(b[16:]),
	}, nil
}

// EncodeLMA / DecodeLMA wrap the 16-byte self-FID attribute.
func EncodeLMA(f FID) []byte {
	b := f.Bytes()
	return b[:]
}

// DecodeLMA parses an LMA value.
func DecodeLMA(b []byte) (FID, error) {
	if len(b) < 16 {
		return FID{}, fmt.Errorf("lustre: LMA too short")
	}
	return FIDFromBytes(b), nil
}
