package lustre

import (
	"fmt"
	"testing"

	"faultyrank/internal/ldiskfs"
)

func populatedCluster(t *testing.T) *Cluster {
	t.Helper()
	c := newTestCluster(t)
	c.MkdirAll("/a/b")
	for i := 0; i < 5; i++ {
		if _, err := c.Create(fmt.Sprintf("/a/b/f%d", i), 2*64<<10); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func clusterImages(c *Cluster) []*ldiskfs.Image {
	images := []*ldiskfs.Image{c.MDT.Img}
	for _, o := range c.OSTs {
		images = append(images, o.Img)
	}
	return images
}

func TestAdoptRoundTrip(t *testing.T) {
	orig := populatedCluster(t)
	adopted, err := Adopt(clusterImages(orig))
	if err != nil {
		t.Fatal(err)
	}
	// Namespace is fully navigable.
	ent, err := adopted.Stat("/a/b/f3")
	if err != nil {
		t.Fatal(err)
	}
	origEnt, _ := orig.Stat("/a/b/f3")
	if ent.FID != origEnt.FID || ent.Ino != origEnt.Ino {
		t.Fatalf("stat mismatch: %+v vs %+v", ent, origEnt)
	}
	// FID index covers objects on OSTs.
	raw, _, _ := adopted.MDT.Img.GetXattr(ent.Ino, XattrLOV)
	layout, err := DecodeLOVEA(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range layout.Stripes {
		loc, ok := adopted.Lookup(s.ObjectFID)
		if !ok || loc.OnMDT() {
			t.Fatalf("object %v not indexed", s.ObjectFID)
		}
	}
	dirs, files, objs := adopted.Counts()
	odirs, ofiles, oobjs := orig.Counts()
	if dirs != odirs || files != ofiles || objs != oobjs {
		t.Errorf("counts: %d/%d/%d vs %d/%d/%d", dirs, files, objs, odirs, ofiles, oobjs)
	}
}

// TestAdoptedClusterCanCreate: FID allocators resume past existing ids,
// so new files never collide.
func TestAdoptedClusterCanCreate(t *testing.T) {
	orig := populatedCluster(t)
	existing := make(map[FID]bool)
	for fid := range orig.fidLoc {
		existing[fid] = true
	}
	adopted, err := Adopt(clusterImages(orig))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ent, err := adopted.Create(fmt.Sprintf("/a/new%d", i), 3*64<<10)
		if err != nil {
			t.Fatal(err)
		}
		if existing[ent.FID] {
			t.Fatalf("new file reused FID %v", ent.FID)
		}
		raw, _, _ := adopted.MDT.Img.GetXattr(ent.Ino, XattrLOV)
		layout, _ := DecodeLOVEA(raw)
		for _, s := range layout.Stripes {
			if existing[s.ObjectFID] {
				t.Fatalf("new object reused FID %v", s.ObjectFID)
			}
		}
	}
}

func TestAdoptValidation(t *testing.T) {
	if _, err := Adopt(nil); err == nil {
		t.Error("nil images accepted")
	}
	img := ldiskfs.MustNew(ldiskfs.CompactGeometry())
	img.SetLabel("ost0")
	img2 := ldiskfs.MustNew(ldiskfs.CompactGeometry())
	img2.SetLabel("ost1")
	if _, err := Adopt([]*ldiskfs.Image{img, img2}); err == nil {
		t.Error("OST-first order accepted")
	}
	mdt := ldiskfs.MustNew(ldiskfs.CompactGeometry())
	mdt.SetLabel("mdt0")
	if _, err := Adopt([]*ldiskfs.Image{mdt, img}); err == nil {
		t.Error("rootless MDT accepted")
	}
}

func TestAdoptToleratesDamage(t *testing.T) {
	orig := populatedCluster(t)
	// Corrupt one file's LMA: adoption must still succeed (checkers will
	// deal with the inconsistency).
	ent, _ := orig.Stat("/a/b/f1")
	orig.MDT.Img.SetXattr(ent.Ino, XattrLMA, []byte{1, 2, 3})
	adopted, err := Adopt(clusterImages(orig))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := adopted.Stat("/a/b/f0"); err != nil {
		t.Fatal(err)
	}
}
