package lustre

import (
	"errors"
	"testing"

	"faultyrank/internal/ldiskfs"
)

func TestRenameFile(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/a")
	c.MkdirAll("/b")
	ent, err := c.Create("/a/old", 2*64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/a/old", "/b/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/a/old"); !errors.Is(err, ErrNotExist) {
		t.Errorf("old path still resolves: %v", err)
	}
	moved, err := c.Stat("/b/new")
	if err != nil || moved.FID != ent.FID || moved.Ino != ent.Ino {
		t.Fatalf("moved stat: %+v %v", moved, err)
	}
	// LinkEA names the new parent and name.
	bEnt, _ := c.Stat("/b")
	raw, _, _ := c.MDT.Img.GetXattr(ent.Ino, XattrLink)
	links, _ := DecodeLinkEA(raw)
	if len(links) != 1 || links[0].Parent != bEnt.FID || links[0].Name != "new" {
		t.Errorf("linkEA after rename: %+v", links)
	}
}

func TestRenameDirectoryUpdatesCache(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/x/y")
	if _, err := c.Create("/x/y/f", 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/x/y", "/x/z"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/x/z/f"); err != nil {
		t.Fatalf("file unreachable under new dir name: %v", err)
	}
	if _, err := c.Stat("/x/y/f"); !errors.Is(err, ErrNotExist) {
		t.Errorf("stale old dir path resolves: %v", err)
	}
	// The cluster can keep creating under the moved directory.
	if _, err := c.Create("/x/z/g", 100); err != nil {
		t.Fatal(err)
	}
}

func TestRenameValidation(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/a/b")
	c.Create("/a/f", 10)
	if err := c.Rename("/a/missing", "/a/g"); !errors.Is(err, ErrNotExist) {
		t.Errorf("missing source: %v", err)
	}
	if err := c.Rename("/a/f", "/a/b"); !errors.Is(err, ErrExist) {
		t.Errorf("existing target: %v", err)
	}
	if err := c.Rename("/a", "/a/b/inside"); err == nil {
		t.Error("dir moved into itself")
	}
	if err := c.Rename("relative", "/a/x"); err == nil {
		t.Error("relative source accepted")
	}
}

// TestRenameKeepsConsistency: heavy rename churn must leave the
// metadata graph fully paired.
func TestRenameKeepsConsistency(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/p")
	c.MkdirAll("/q")
	for i := 0; i < 6; i++ {
		name := string(rune('a' + i))
		if _, err := c.Create("/p/"+name, 2*64<<10); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Rename("/p/a", "/q/a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/q/a", "/p/a2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/p", "/pp"); err != nil {
		t.Fatal(err)
	}
	// Cross-check every LinkEA against its parent's dirents manually.
	var check func(dir string, dirIno ldiskfs.Ino, dirFID FID)
	check = func(dir string, dirIno ldiskfs.Ino, dirFID FID) {
		ents, err := c.MDT.Img.Dirents(dirIno)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, de := range ents {
			raw, ok, _ := c.MDT.Img.GetXattr(de.Ino, XattrLink)
			if !ok {
				t.Errorf("%s/%s: no linkEA", dir, de.Name)
				continue
			}
			links, _ := DecodeLinkEA(raw)
			found := false
			for _, l := range links {
				if l.Parent == dirFID && l.Name == de.Name {
					found = true
				}
			}
			if !found {
				t.Errorf("%s/%s: linkEA does not answer dirent (%+v)", dir, de.Name, links)
			}
			if de.Type == ldiskfs.TypeDir {
				check(dir+"/"+de.Name, de.Ino, FIDFromBytes(de.Tag[:]))
			}
		}
	}
	check("", c.RootIno(), RootFID)
}
