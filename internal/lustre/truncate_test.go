package lustre

import (
	"testing"

	"faultyrank/internal/ldiskfs"
)

func fileLayout(t *testing.T, c *Cluster, p string) Layout {
	t.Helper()
	ent, err := c.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok, err := c.MDT.Img.GetXattr(ent.Ino, XattrLOV)
	if err != nil || !ok {
		t.Fatalf("no LOVEA on %s: %v", p, err)
	}
	layout, err := DecodeLOVEA(raw)
	if err != nil {
		t.Fatal(err)
	}
	return layout
}

func TestTruncateGrowAllocatesObjects(t *testing.T) {
	c := newTestCluster(t) // 4 OSTs, 64 KiB stripes
	if _, err := c.Create("/f", 64<<10); err != nil {
		t.Fatal(err)
	}
	if got := len(fileLayout(t, c, "/f").Stripes); got != 1 {
		t.Fatalf("initial stripes = %d", got)
	}
	if err := c.Truncate("/f", 3*64<<10); err != nil {
		t.Fatal(err)
	}
	layout := fileLayout(t, c, "/f")
	if len(layout.Stripes) != 3 {
		t.Fatalf("stripes after grow = %d", len(layout.Stripes))
	}
	ent, _ := c.Stat("/f")
	if ent.Size != 3*64<<10 {
		t.Errorf("size = %d", ent.Size)
	}
	// New objects carry correct filter-fids and sizes sum to the file.
	var total uint64
	for i, s := range layout.Stripes {
		loc, ok := c.Lookup(s.ObjectFID)
		if !ok {
			t.Fatalf("stripe %d object untracked", i)
		}
		img, _ := c.ImageFor(loc)
		ffRaw, ok, _ := img.GetXattr(loc.Ino, XattrFilterFID)
		if !ok {
			t.Fatalf("stripe %d: no filter-fid", i)
		}
		ff, _ := DecodeFilterFID(ffRaw)
		if ff.ParentFID != ent.FID || int(ff.StripeIndex) != i {
			t.Errorf("stripe %d filter-fid: %+v", i, ff)
		}
		sz, _ := img.Size(loc.Ino)
		total += sz
	}
	if total != uint64(3*64<<10) {
		t.Errorf("object bytes = %d", total)
	}
}

func TestTruncateShrinkKeepsObjects(t *testing.T) {
	c := newTestCluster(t)
	if _, err := c.Create("/f", 4*64<<10); err != nil {
		t.Fatal(err)
	}
	_, _, before := c.Counts()
	if err := c.Truncate("/f", 10); err != nil {
		t.Fatal(err)
	}
	_, _, after := c.Counts()
	if after != before {
		t.Errorf("objects changed on shrink: %d -> %d", before, after)
	}
	layout := fileLayout(t, c, "/f")
	if len(layout.Stripes) != 4 {
		t.Errorf("stripes after shrink = %d", len(layout.Stripes))
	}
	ent, _ := c.Stat("/f")
	if ent.Size != 10 {
		t.Errorf("size = %d", ent.Size)
	}
}

func TestTruncateErrors(t *testing.T) {
	c := newTestCluster(t)
	c.MkdirAll("/d")
	if err := c.Truncate("/missing", 10); err == nil {
		t.Error("missing file accepted")
	}
	if err := c.Truncate("/d", 10); err == nil {
		t.Error("directory accepted")
	}
}

func TestTruncateKeepsConsistency(t *testing.T) {
	c := newTestCluster(t)
	c.Create("/f", 64<<10)
	c.Truncate("/f", 4*64<<10)
	c.Truncate("/f", 0)
	c.Truncate("/f", 2*64<<10)
	// All relations must still pair after the churn: check manually
	// (the checker-level assertion lives in workload tests to avoid an
	// import cycle here).
	ent, _ := c.Stat("/f")
	layout := fileLayout(t, c, "/f")
	for i, s := range layout.Stripes {
		loc, ok := c.Lookup(s.ObjectFID)
		if !ok {
			t.Fatalf("stripe %d lost", i)
		}
		img, _ := c.ImageFor(loc)
		if !img.InodeAllocated(loc.Ino) {
			t.Fatalf("stripe %d inode freed", i)
		}
		ffRaw, ok, _ := img.GetXattr(loc.Ino, XattrFilterFID)
		if !ok {
			t.Fatalf("stripe %d: filter-fid missing", i)
		}
		ff, _ := DecodeFilterFID(ffRaw)
		if ff.ParentFID != ent.FID {
			t.Fatalf("stripe %d points at %v, want %v", i, ff.ParentFID, ent.FID)
		}
	}
	if got, want := ldiskfs.Ino(0), ldiskfs.Ino(0); got != want {
		t.Fatal("unreachable")
	}
}
