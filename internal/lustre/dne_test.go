package lustre

import (
	"fmt"
	"testing"

	"faultyrank/internal/ldiskfs"
)

func dneCluster(t *testing.T, nMDT int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{
		NumOSTs: 4, NumMDTs: nMDT, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDNEClusterLayout(t *testing.T) {
	c := dneCluster(t, 3)
	if len(c.MDTs) != 3 || c.MDT != c.MDTs[0] {
		t.Fatalf("MDTs: %d", len(c.MDTs))
	}
	if got := len(c.Images()); got != 7 {
		t.Fatalf("images = %d, want 7", got)
	}
	// FID sequences are disjoint across MDTs.
	a := c.MDTs[0].AllocFID()
	b := c.MDTs[1].AllocFID()
	if a.Seq == b.Seq {
		t.Errorf("MDT sequences collide: %v vs %v", a, b)
	}
}

func TestDNEDirectoriesSpreadAcrossMDTs(t *testing.T) {
	c := dneCluster(t, 3)
	homes := make(map[int]int)
	for i := 0; i < 9; i++ {
		p := fmt.Sprintf("/dir%02d", i)
		if err := c.Mkdir(p); err != nil {
			t.Fatal(err)
		}
		ent, err := c.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		homes[ent.MDT]++
	}
	if len(homes) != 3 {
		t.Fatalf("directories on %d MDTs, want 3: %v", len(homes), homes)
	}
}

func TestDNECrossMDTNamespaceOps(t *testing.T) {
	c := dneCluster(t, 2)
	// Build a path that crosses MDTs and exercise every operation.
	if err := c.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	var sawRemote bool
	for _, p := range []string{"/a", "/a/b", "/a/b/c"} {
		ent, err := c.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if ent.MDT != 0 {
			sawRemote = true
		}
	}
	if !sawRemote {
		t.Fatal("no remote directory created — placement not spreading")
	}
	ent, err := c.Create("/a/b/c/file", 3*64<<10)
	if err != nil {
		t.Fatal(err)
	}
	dirEnt, _ := c.Stat("/a/b/c")
	if ent.MDT != dirEnt.MDT {
		t.Errorf("file homed on MDT %d, parent on %d", ent.MDT, dirEnt.MDT)
	}
	if err := c.Link("/a/b/c/file", "/a/alias"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("/a/alias", "/a/b/alias2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Truncate("/a/b/c/file", 5*64<<10); err != nil {
		t.Fatal(err)
	}
	if err := c.Symlink("/a/b/c/file", "/a/sym"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Readlink("/a/sym"); got != "/a/b/c/file" {
		t.Errorf("readlink: %q", got)
	}
	if err := c.Unlink("/a/b/alias2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/a/b/c/file"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/a/sym"); err != nil {
		t.Fatal(err)
	}
	if err := c.Rmdir("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	// Substrate-level integrity on all images.
	for label, img := range c.Images() {
		if errs := img.Validate(); len(errs) != 0 {
			t.Fatalf("%s invalid: %v", label, errs)
		}
	}
}

func TestDNEAdoptRoundTrip(t *testing.T) {
	c := dneCluster(t, 2)
	c.MkdirAll("/x/y")
	if _, err := c.Create("/x/y/f", 2*64<<10); err != nil {
		t.Fatal(err)
	}
	var images []*ldiskfs.Image
	for _, m := range c.MDTs {
		images = append(images, m.Img)
	}
	for _, o := range c.OSTs {
		images = append(images, o.Img)
	}
	adopted, err := Adopt(images)
	if err != nil {
		t.Fatal(err)
	}
	if len(adopted.MDTs) != 2 {
		t.Fatalf("adopted MDTs = %d", len(adopted.MDTs))
	}
	ent, err := adopted.Stat("/x/y/f")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := c.Stat("/x/y/f")
	if ent.FID != orig.FID || ent.MDT != orig.MDT {
		t.Fatalf("adopted stat %+v vs %+v", ent, orig)
	}
	// New creations on the adopted cluster use non-colliding FIDs.
	if _, err := adopted.Create("/x/y/new", 64<<10); err != nil {
		t.Fatal(err)
	}
}
