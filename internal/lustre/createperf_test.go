package lustre

import (
	"fmt"
	"testing"

	"faultyrank/internal/ldiskfs"
)

func BenchmarkCreateThroughput(b *testing.B) {
	c, _ := NewCluster(Config{NumOSTs: 8, StripeSize: 64 << 10, Geometry: ldiskfs.DefaultGeometry()})
	c.MkdirAll("/d")
	dir := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1400 == 0 {
			dir++
			c.MkdirAll(fmt.Sprintf("/d/s%d", dir))
		}
		if _, err := c.Create(fmt.Sprintf("/d/s%d/f%d", dir, i), 128<<10); err != nil {
			b.Fatal(err)
		}
	}
}
