package lustre

import (
	"errors"
	"fmt"
	"path"
	"strings"

	"faultyrank/internal/ldiskfs"
)

// Entry describes a namespace object returned by Stat.
type Entry struct {
	FID  FID
	Ino  ldiskfs.Ino
	Type ldiskfs.FileType
	Size uint64
	// MDT is the index of the metadata target the inode lives on
	// (always 0 on single-MDS clusters).
	MDT int
}

// splitPath cleans p and returns (parent, base); p must be absolute.
func splitPath(p string) (string, string, error) {
	if !strings.HasPrefix(p, "/") {
		return "", "", fmt.Errorf("lustre: path %q not absolute", p)
	}
	p = path.Clean(p)
	if p == "/" {
		return "", "", fmt.Errorf("lustre: operation on root")
	}
	return path.Dir(p), path.Base(p), nil
}

// homeMDT resolves the MDT index of a FID known to live on a metadata
// target, defaulting to the parent's MDT when the index has no record
// (an inconsistent cluster being adopted for injection).
func (c *Cluster) homeMDT(f FID, fallback int) int {
	if loc, ok := c.fidLoc[f]; ok && loc.OnMDT() {
		return loc.MDT
	}
	return fallback
}

// resolveDir resolves an absolute directory path to its inode, FID and
// home MDT, walking dirents from the root and filling the cache.
// Cross-MDT traversal follows the FID index: a dirent on one MDT may
// name a directory homed on another.
func (c *Cluster) resolveDir(p string) (dirRef, error) {
	p = path.Clean(p)
	if ref, ok := c.dirCache[p]; ok {
		return ref, nil
	}
	parent, base, err := splitPath(p)
	if err != nil {
		return dirRef{}, err
	}
	pref, err := c.resolveDir(parent)
	if err != nil {
		return dirRef{}, err
	}
	pimg, err := c.mdtImage(pref.mdt)
	if err != nil {
		return dirRef{}, err
	}
	de, found, err := pimg.LookupDirent(pref.ino, base)
	if err != nil {
		return dirRef{}, err
	}
	if !found {
		return dirRef{}, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if de.Type != ldiskfs.TypeDir {
		return dirRef{}, fmt.Errorf("%w: %s", ErrNotDir, p)
	}
	fid := FIDFromBytes(de.Tag[:])
	ref := dirRef{ino: de.Ino, fid: fid, mdt: c.homeMDT(fid, pref.mdt)}
	c.dirCache[p] = ref
	return ref, nil
}

// Stat resolves any absolute path to its MDT entry.
func (c *Cluster) Stat(p string) (Entry, error) {
	p = path.Clean(p)
	if p == "/" {
		return Entry{FID: RootFID, Ino: c.rootIno, Type: ldiskfs.TypeDir, MDT: 0}, nil
	}
	parent, base, err := splitPath(p)
	if err != nil {
		return Entry{}, err
	}
	pref, err := c.resolveDir(parent)
	if err != nil {
		return Entry{}, err
	}
	pimg, err := c.mdtImage(pref.mdt)
	if err != nil {
		return Entry{}, err
	}
	de, found, err := pimg.LookupDirent(pref.ino, base)
	if err != nil {
		return Entry{}, err
	}
	if !found {
		return Entry{}, fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	fid := FIDFromBytes(de.Tag[:])
	home := c.homeMDT(fid, pref.mdt)
	himg, err := c.mdtImage(home)
	if err != nil {
		return Entry{}, err
	}
	size, err := himg.Size(de.Ino)
	if err != nil {
		return Entry{}, err
	}
	return Entry{FID: fid, Ino: de.Ino, Type: de.Type, Size: size, MDT: home}, nil
}

// EntryImage returns the image holding an entry's inode.
func (c *Cluster) EntryImage(e Entry) (*ldiskfs.Image, error) { return c.mdtImage(e.MDT) }

// Mkdir creates one directory; the parent must exist. On multi-MDT
// clusters the new directory may be placed on a different MDT than its
// parent (a DNE "remote directory"): the parent's dirent names it by
// FID, and its LinkEA points back across servers.
func (c *Cluster) Mkdir(p string) error {
	parent, base, err := splitPath(p)
	if err != nil {
		return err
	}
	pref, err := c.resolveDir(parent)
	if err != nil {
		return err
	}
	pimg, err := c.mdtImage(pref.mdt)
	if err != nil {
		return err
	}
	if _, found, _ := pimg.LookupDirent(pref.ino, base); found {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	home := c.mdtForNewDir()
	mdt := c.MDTs[home]
	fid := mdt.AllocFID()
	ino, err := mdt.Img.AllocInode(ldiskfs.TypeDir)
	if err != nil {
		return err
	}
	if err := mdt.Img.SetXattr(ino, XattrLMA, EncodeLMA(fid)); err != nil {
		return err
	}
	link, err := EncodeLinkEA([]LinkEntry{{Parent: pref.fid, Name: base}})
	if err != nil {
		return err
	}
	if err := mdt.Img.SetXattr(ino, XattrLink, link); err != nil {
		return err
	}
	if err := pimg.AddDirent(pref.ino, ldiskfs.Dirent{
		Ino: ino, Type: ldiskfs.TypeDir, Tag: fid.Bytes(), Name: base,
	}); err != nil {
		return err
	}
	c.dirCache[path.Clean(p)] = dirRef{ino: ino, fid: fid, mdt: home}
	c.fidLoc[fid] = Location{OST: -1, MDT: home, Ino: ino}
	c.nDirs++
	return nil
}

// MkdirAll creates a directory and any missing ancestors.
func (c *Cluster) MkdirAll(p string) error {
	p = path.Clean(p)
	if p == "/" {
		return nil
	}
	if _, ok := c.dirCache[p]; ok {
		return nil
	}
	if _, err := c.resolveDir(p); err == nil {
		return nil
	}
	parent := path.Dir(p)
	if err := c.MkdirAll(parent); err != nil {
		return err
	}
	err := c.Mkdir(p)
	if errors.Is(err, ErrExist) {
		return nil
	}
	return err
}

// Create makes a regular file of the given logical size: an MDT inode
// (on the parent's MDT, as in Lustre) with LMA + LinkEA + LOVEA, a
// FID-tagged dirent in its parent, and one stripe object per chunk
// (capped at the stripe count) on round-robin OSTs, each carrying
// LMA + filter-fid.
func (c *Cluster) Create(p string, size int64) (Entry, error) {
	parent, base, err := splitPath(p)
	if err != nil {
		return Entry{}, err
	}
	pref, err := c.resolveDir(parent)
	if err != nil {
		return Entry{}, err
	}
	home := pref.mdt
	mdtSrv := c.MDTs[home]
	mdt := mdtSrv.Img
	if _, found, _ := mdt.LookupDirent(pref.ino, base); found {
		return Entry{}, fmt.Errorf("%w: %s", ErrExist, p)
	}
	fid := mdtSrv.AllocFID()
	ino, err := mdt.AllocInode(ldiskfs.TypeFile)
	if err != nil {
		return Entry{}, err
	}
	if err := mdt.SetXattr(ino, XattrLMA, EncodeLMA(fid)); err != nil {
		return Entry{}, err
	}
	link, err := EncodeLinkEA([]LinkEntry{{Parent: pref.fid, Name: base}})
	if err != nil {
		return Entry{}, err
	}
	if err := mdt.SetXattr(ino, XattrLink, link); err != nil {
		return Entry{}, err
	}
	if err := mdt.SetSize(ino, uint64(size)); err != nil {
		return Entry{}, err
	}

	// Allocate stripe objects round-robin across OSTs.
	n := c.stripeObjectCount(size)
	layout := Layout{StripeSize: uint32(c.Cfg.StripeSize)}
	for s := 0; s < n; s++ {
		ost := c.OSTs[(c.rr+s)%len(c.OSTs)]
		objFID := ost.AllocFID()
		objIno, err := ost.Img.AllocInode(ldiskfs.TypeObject)
		if err != nil {
			return Entry{}, err
		}
		if err := ost.Img.SetXattr(objIno, XattrLMA, EncodeLMA(objFID)); err != nil {
			return Entry{}, err
		}
		ff := EncodeFilterFID(FilterFID{ParentFID: fid, StripeIndex: uint32(s)})
		if err := ost.Img.SetXattr(objIno, XattrFilterFID, ff); err != nil {
			return Entry{}, err
		}
		if err := ost.Img.SetSize(objIno, objectBytes(size, s, n, c.Cfg.StripeSize)); err != nil {
			return Entry{}, err
		}
		layout.Stripes = append(layout.Stripes, StripeEntry{
			OSTIndex: uint32(ost.Index), ObjectFID: objFID,
		})
		c.fidLoc[objFID] = Location{OST: ost.Index, Ino: objIno}
		c.nObjects++
	}
	c.rr = (c.rr + n) % len(c.OSTs)

	lov, err := EncodeLOVEA(layout)
	if err != nil {
		return Entry{}, err
	}
	if err := mdt.SetXattr(ino, XattrLOV, lov); err != nil {
		return Entry{}, err
	}
	if err := mdt.AddDirent(pref.ino, ldiskfs.Dirent{
		Ino: ino, Type: ldiskfs.TypeFile, Tag: fid.Bytes(), Name: base,
	}); err != nil {
		return Entry{}, err
	}
	c.fidLoc[fid] = Location{OST: -1, MDT: home, Ino: ino}
	c.nFiles++
	return Entry{FID: fid, Ino: ino, Type: ldiskfs.TypeFile, Size: uint64(size), MDT: home}, nil
}

// objectBytes distributes a file's bytes over its n stripe objects:
// chunk k (stripeSize bytes each, last one partial) belongs to object
// k mod n.
func objectBytes(size int64, obj, n, stripeSize int) uint64 {
	if size <= 0 {
		return 0
	}
	var total int64
	for off := int64(obj) * int64(stripeSize); off < size; off += int64(n) * int64(stripeSize) {
		chunk := size - off
		if chunk > int64(stripeSize) {
			chunk = int64(stripeSize)
		}
		total += chunk
	}
	return uint64(total)
}

// Unlink removes a regular file or symlink: its dirent, MDT inode, and
// any stripe objects.
func (c *Cluster) Unlink(p string) error {
	parent, base, err := splitPath(p)
	if err != nil {
		return err
	}
	pref, err := c.resolveDir(parent)
	if err != nil {
		return err
	}
	pimg, err := c.mdtImage(pref.mdt)
	if err != nil {
		return err
	}
	de, found, err := pimg.LookupDirent(pref.ino, base)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if de.Type == ldiskfs.TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	fid := FIDFromBytes(de.Tag[:])
	home := c.homeMDT(fid, pref.mdt)
	himg, err := c.mdtImage(home)
	if err != nil {
		return err
	}
	// A hard-linked file only loses this name: drop the dirent and the
	// matching LinkEA record; the inode and its objects live on.
	if raw, ok, _ := himg.GetXattr(de.Ino, XattrLink); ok {
		if links, lerr := DecodeLinkEA(raw); lerr == nil && len(links) > 1 {
			kept := links[:0]
			for _, l := range links {
				if l.Parent == pref.fid && l.Name == base {
					continue
				}
				kept = append(kept, l)
			}
			if len(kept) < len(links) {
				enc, eerr := EncodeLinkEA(kept)
				if eerr != nil {
					return eerr
				}
				if err := himg.SetXattr(de.Ino, XattrLink, enc); err != nil {
					return err
				}
				return pimg.RemoveDirent(pref.ino, base)
			}
		}
	}
	// Release stripe objects named by the layout.
	if lovRaw, ok, _ := himg.GetXattr(de.Ino, XattrLOV); ok {
		if layout, err := DecodeLOVEA(lovRaw); err == nil {
			for _, s := range layout.Stripes {
				img, err := c.ostImage(int(s.OSTIndex))
				if err != nil {
					continue
				}
				if loc, ok := c.fidLoc[s.ObjectFID]; ok && !loc.OnMDT() {
					if img.InodeAllocated(loc.Ino) {
						_ = img.FreeInode(loc.Ino)
					}
					delete(c.fidLoc, s.ObjectFID)
					c.nObjects--
				}
			}
		}
	}
	if err := pimg.RemoveDirent(pref.ino, base); err != nil {
		return err
	}
	if err := himg.FreeInode(de.Ino); err != nil {
		return err
	}
	delete(c.fidLoc, fid)
	c.nFiles--
	return nil
}

// Rmdir removes an empty directory.
func (c *Cluster) Rmdir(p string) error {
	parent, base, err := splitPath(p)
	if err != nil {
		return err
	}
	pref, err := c.resolveDir(parent)
	if err != nil {
		return err
	}
	pimg, err := c.mdtImage(pref.mdt)
	if err != nil {
		return err
	}
	de, found, err := pimg.LookupDirent(pref.ino, base)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	if de.Type != ldiskfs.TypeDir {
		return fmt.Errorf("%w: %s", ErrNotDir, p)
	}
	fid := FIDFromBytes(de.Tag[:])
	home := c.homeMDT(fid, pref.mdt)
	himg, err := c.mdtImage(home)
	if err != nil {
		return err
	}
	children, err := himg.Dirents(de.Ino)
	if err != nil {
		return err
	}
	if len(children) > 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	if err := pimg.RemoveDirent(pref.ino, base); err != nil {
		return err
	}
	if err := himg.FreeInode(de.Ino); err != nil {
		return err
	}
	delete(c.dirCache, path.Clean(p))
	delete(c.fidLoc, fid)
	c.nDirs--
	return nil
}

// Link adds a hard link to an existing regular file: a new dirent plus a
// LinkEA entry on the target (Lustre LinkEAs hold one record per name).
func (c *Cluster) Link(oldPath, newPath string) error {
	ent, err := c.Stat(oldPath)
	if err != nil {
		return err
	}
	if ent.Type == ldiskfs.TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, oldPath)
	}
	parent, base, err := splitPath(newPath)
	if err != nil {
		return err
	}
	pref, err := c.resolveDir(parent)
	if err != nil {
		return err
	}
	pimg, err := c.mdtImage(pref.mdt)
	if err != nil {
		return err
	}
	himg, err := c.mdtImage(ent.MDT)
	if err != nil {
		return err
	}
	if _, found, _ := pimg.LookupDirent(pref.ino, base); found {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}
	raw, ok, err := himg.GetXattr(ent.Ino, XattrLink)
	if err != nil {
		return err
	}
	var links []LinkEntry
	if ok {
		if links, err = DecodeLinkEA(raw); err != nil {
			return err
		}
	}
	links = append(links, LinkEntry{Parent: pref.fid, Name: base})
	enc, err := EncodeLinkEA(links)
	if err != nil {
		return err
	}
	if err := himg.SetXattr(ent.Ino, XattrLink, enc); err != nil {
		return err
	}
	return pimg.AddDirent(pref.ino, ldiskfs.Dirent{
		Ino: ent.Ino, Type: ent.Type, Tag: ent.FID.Bytes(), Name: base,
	})
}

// XattrSymlink stores a symbolic link's target path on its MDT inode.
const XattrSymlink = "lnk"

// Symlink creates a symbolic link at linkPath whose target is the given
// path string. The target is not resolved or validated — like POSIX,
// dangling symlinks are legal (and invisible to the checkers, which
// only cross-check FID relations).
func (c *Cluster) Symlink(target, linkPath string) error {
	if target == "" {
		return fmt.Errorf("lustre: empty symlink target")
	}
	parent, base, err := splitPath(linkPath)
	if err != nil {
		return err
	}
	pref, err := c.resolveDir(parent)
	if err != nil {
		return err
	}
	mdtSrv := c.MDTs[pref.mdt]
	mdt := mdtSrv.Img
	if _, found, _ := mdt.LookupDirent(pref.ino, base); found {
		return fmt.Errorf("%w: %s", ErrExist, linkPath)
	}
	fid := mdtSrv.AllocFID()
	ino, err := mdt.AllocInode(ldiskfs.TypeSymlink)
	if err != nil {
		return err
	}
	if err := mdt.SetXattr(ino, XattrLMA, EncodeLMA(fid)); err != nil {
		return err
	}
	link, err := EncodeLinkEA([]LinkEntry{{Parent: pref.fid, Name: base}})
	if err != nil {
		return err
	}
	if err := mdt.SetXattr(ino, XattrLink, link); err != nil {
		return err
	}
	if err := mdt.SetXattr(ino, XattrSymlink, []byte(target)); err != nil {
		return err
	}
	if err := mdt.SetSize(ino, uint64(len(target))); err != nil {
		return err
	}
	if err := mdt.AddDirent(pref.ino, ldiskfs.Dirent{
		Ino: ino, Type: ldiskfs.TypeSymlink, Tag: fid.Bytes(), Name: base,
	}); err != nil {
		return err
	}
	c.fidLoc[fid] = Location{OST: -1, MDT: pref.mdt, Ino: ino}
	c.nFiles++
	return nil
}

// Readlink returns a symlink's target path.
func (c *Cluster) Readlink(p string) (string, error) {
	ent, err := c.Stat(p)
	if err != nil {
		return "", err
	}
	if ent.Type != ldiskfs.TypeSymlink {
		return "", fmt.Errorf("lustre: %s is not a symlink", p)
	}
	himg, err := c.mdtImage(ent.MDT)
	if err != nil {
		return "", err
	}
	raw, ok, err := himg.GetXattr(ent.Ino, XattrSymlink)
	if err != nil || !ok {
		return "", fmt.Errorf("lustre: %s has no target EA (%v)", p, err)
	}
	return string(raw), nil
}

// Truncate sets a file's logical size. Growth past the current stripe
// span allocates additional objects (up to the stripe-count cap) and
// extends the LOVEA; shrinking never deallocates objects — like Lustre,
// the objects stay and only the recorded sizes change.
func (c *Cluster) Truncate(p string, size int64) error {
	ent, err := c.Stat(p)
	if err != nil {
		return err
	}
	if ent.Type != ldiskfs.TypeFile {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	mdt, err := c.mdtImage(ent.MDT)
	if err != nil {
		return err
	}
	raw, ok, err := mdt.GetXattr(ent.Ino, XattrLOV)
	if err != nil || !ok {
		return fmt.Errorf("lustre: %s has no layout (%v)", p, err)
	}
	layout, err := DecodeLOVEA(raw)
	if err != nil {
		return err
	}
	want := c.stripeObjectCount(size)
	if want > len(layout.Stripes) {
		// Allocate the missing objects round-robin, continuing after
		// the last stripe's OST.
		next := 0
		if n := len(layout.Stripes); n > 0 {
			next = (int(layout.Stripes[n-1].OSTIndex) + 1) % len(c.OSTs)
		}
		for s := len(layout.Stripes); s < want; s++ {
			ost := c.OSTs[next]
			next = (next + 1) % len(c.OSTs)
			objFID := ost.AllocFID()
			objIno, err := ost.Img.AllocInode(ldiskfs.TypeObject)
			if err != nil {
				return err
			}
			if err := ost.Img.SetXattr(objIno, XattrLMA, EncodeLMA(objFID)); err != nil {
				return err
			}
			ff := EncodeFilterFID(FilterFID{ParentFID: ent.FID, StripeIndex: uint32(s)})
			if err := ost.Img.SetXattr(objIno, XattrFilterFID, ff); err != nil {
				return err
			}
			layout.Stripes = append(layout.Stripes, StripeEntry{
				OSTIndex: uint32(ost.Index), ObjectFID: objFID,
			})
			c.fidLoc[objFID] = Location{OST: ost.Index, Ino: objIno}
			c.nObjects++
		}
		enc, err := EncodeLOVEA(layout)
		if err != nil {
			return err
		}
		if err := mdt.SetXattr(ent.Ino, XattrLOV, enc); err != nil {
			return err
		}
	}
	// Refresh per-object sizes over the (possibly larger) stripe set.
	n := len(layout.Stripes)
	for i, s := range layout.Stripes {
		if s.ObjectFID.IsZero() {
			continue
		}
		loc, ok := c.fidLoc[s.ObjectFID]
		if !ok || loc.OnMDT() {
			continue
		}
		img, err := c.ostImage(loc.OST)
		if err != nil {
			continue
		}
		if err := img.SetSize(loc.Ino, objectBytes(size, i, n, int(layout.StripeSize))); err != nil {
			return err
		}
	}
	return mdt.SetSize(ent.Ino, uint64(size))
}

// Rename moves an entry to a new absolute path, updating the dirent in
// both parents and rewriting the moved object's LinkEA record — the two
// redundant copies a checker cross-checks, kept in lockstep. The moved
// inode stays on its home MDT; only the naming moves.
func (c *Cluster) Rename(oldPath, newPath string) error {
	oldParent, oldBase, err := splitPath(oldPath)
	if err != nil {
		return err
	}
	newParent, newBase, err := splitPath(newPath)
	if err != nil {
		return err
	}
	opref, err := c.resolveDir(oldParent)
	if err != nil {
		return err
	}
	npref, err := c.resolveDir(newParent)
	if err != nil {
		return err
	}
	opimg, err := c.mdtImage(opref.mdt)
	if err != nil {
		return err
	}
	npimg, err := c.mdtImage(npref.mdt)
	if err != nil {
		return err
	}
	de, found, err := opimg.LookupDirent(opref.ino, oldBase)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
	}
	if de.Type == ldiskfs.TypeDir {
		np := path.Clean(newPath) + "/"
		if strings.HasPrefix(np, path.Clean(oldPath)+"/") {
			return fmt.Errorf("lustre: cannot move %s into itself", oldPath)
		}
	}
	if _, exists, _ := npimg.LookupDirent(npref.ino, newBase); exists {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}
	// Rewrite the LinkEA record that names the old parent, on the moved
	// object's home MDT.
	fid := FIDFromBytes(de.Tag[:])
	home := c.homeMDT(fid, opref.mdt)
	himg, err := c.mdtImage(home)
	if err != nil {
		return err
	}
	var links []LinkEntry
	if raw, ok, _ := himg.GetXattr(de.Ino, XattrLink); ok {
		if got, err := DecodeLinkEA(raw); err == nil {
			links = got
		}
	}
	replaced := false
	for i := range links {
		if links[i].Parent == opref.fid && links[i].Name == oldBase {
			links[i] = LinkEntry{Parent: npref.fid, Name: newBase}
			replaced = true
			break
		}
	}
	if !replaced {
		links = append(links, LinkEntry{Parent: npref.fid, Name: newBase})
	}
	enc, err := EncodeLinkEA(links)
	if err != nil {
		return err
	}
	if err := himg.SetXattr(de.Ino, XattrLink, enc); err != nil {
		return err
	}
	if err := opimg.RemoveDirent(opref.ino, oldBase); err != nil {
		return err
	}
	if err := npimg.AddDirent(npref.ino, ldiskfs.Dirent{
		Ino: de.Ino, Type: de.Type, Tag: de.Tag, Name: newBase,
	}); err != nil {
		return err
	}
	if de.Type == ldiskfs.TypeDir {
		// Directory paths moved: drop every cache entry under the old
		// path and register the new location.
		oldClean := path.Clean(oldPath)
		for p := range c.dirCache {
			if p == oldClean || strings.HasPrefix(p, oldClean+"/") {
				delete(c.dirCache, p)
			}
		}
		c.dirCache[path.Clean(newPath)] = dirRef{ino: de.Ino, fid: fid, mdt: home}
	}
	return nil
}

// ReadDir lists a directory's entries.
func (c *Cluster) ReadDir(p string) ([]ldiskfs.Dirent, error) {
	ref, err := c.resolveDir(p)
	if err != nil {
		return nil, err
	}
	img, err := c.mdtImage(ref.mdt)
	if err != nil {
		return nil, err
	}
	return img.Dirents(ref.ino)
}
