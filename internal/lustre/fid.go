// Package lustre simulates the metadata plane of a Lustre parallel file
// system on top of ldiskfs-style images (paper §II-A, Fig. 1): a
// metadata target (MDT) holds the namespace — directories, files, their
// LMA/LinkEA/LOVEA extended attributes and FID-carrying directory
// entries — and object storage targets (OSTs) hold stripe objects with
// LMA and filter-fid attributes pointing back at their owning file.
//
// Only metadata is materialised: file *contents* never influence either
// checker (paper §V-A), so stripe objects record sizes without data
// blocks. Everything checking-relevant lives in the raw server images,
// which the scanner parses byte-by-byte and the injector corrupts.
package lustre

import (
	"fmt"
	"strconv"
	"strings"
)

// FID is a Lustre file identifier: a 64-bit sequence, a 32-bit object id
// and a 32-bit version. FIDs are cluster-unique, which is what lets the
// aggregator merge partial graphs without conflicts (paper §IV-B).
type FID struct {
	Seq uint64
	Oid uint32
	Ver uint32
}

// Well-known sequence bases, mirroring Lustre's FID namespace split.
const (
	// MDTSeqBase is the first sequence used for MDT objects.
	MDTSeqBase uint64 = 0x200000400
	// OSTSeqBase is the first sequence used for OST objects; each OST
	// index gets its own sequence (OSTSeqBase + index).
	OSTSeqBase uint64 = 0x100010000
)

// RootFID is the FID of the file system root directory.
var RootFID = FID{Seq: 0x200000007, Oid: 1, Ver: 0}

// IsZero reports whether the FID is the all-zero (invalid) value.
func (f FID) IsZero() bool { return f == FID{} }

// String renders the FID in Lustre's canonical [0xseq:0xoid:0xver] form.
func (f FID) String() string {
	return fmt.Sprintf("[0x%x:0x%x:0x%x]", f.Seq, f.Oid, f.Ver)
}

// Bytes encodes the FID into its fixed 16-byte little-endian form, the
// representation used inside EAs and dirent tags.
func (f FID) Bytes() [16]byte {
	var b [16]byte
	le.PutUint64(b[0:], f.Seq)
	le.PutUint32(b[8:], f.Oid)
	le.PutUint32(b[12:], f.Ver)
	return b
}

// FIDFromBytes decodes a 16-byte FID.
func FIDFromBytes(b []byte) FID {
	if len(b) < 16 {
		return FID{}
	}
	return FID{Seq: le.Uint64(b[0:]), Oid: le.Uint32(b[8:]), Ver: le.Uint32(b[12:])}
}

// ParseFID parses the canonical bracketed form produced by String.
func ParseFID(s string) (FID, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return FID{}, fmt.Errorf("lustre: bad FID %q", s)
	}
	parts := strings.Split(s[1:len(s)-1], ":")
	if len(parts) != 3 {
		return FID{}, fmt.Errorf("lustre: bad FID %q", s)
	}
	var vals [3]uint64
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimPrefix(p, "0x"), 16, 64)
		if err != nil {
			return FID{}, fmt.Errorf("lustre: bad FID %q: %v", s, err)
		}
		vals[i] = v
	}
	if vals[1] > 0xFFFFFFFF || vals[2] > 0xFFFFFFFF {
		return FID{}, fmt.Errorf("lustre: FID component overflow in %q", s)
	}
	return FID{Seq: vals[0], Oid: uint32(vals[1]), Ver: uint32(vals[2])}, nil
}

// Less imposes a total order (for deterministic iteration).
func (f FID) Less(o FID) bool {
	if f.Seq != o.Seq {
		return f.Seq < o.Seq
	}
	if f.Oid != o.Oid {
		return f.Oid < o.Oid
	}
	return f.Ver < o.Ver
}
