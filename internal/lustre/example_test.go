package lustre_test

import (
	"fmt"

	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// ExampleNewCluster builds a tiny cluster and shows the redundant
// metadata pair a checker cross-checks: the file's LOVEA names its
// stripe objects, and each object's filter-fid points back.
func ExampleNewCluster() {
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 2, StripeSize: 64 << 10,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		panic(err)
	}
	if err := c.MkdirAll("/data"); err != nil {
		panic(err)
	}
	ent, err := c.Create("/data/two-stripes.bin", 2*64<<10)
	if err != nil {
		panic(err)
	}
	raw, _, _ := c.MDT.Img.GetXattr(ent.Ino, lustre.XattrLOV)
	layout, _ := lustre.DecodeLOVEA(raw)
	fmt.Printf("file has %d stripe objects\n", len(layout.Stripes))
	for i, s := range layout.Stripes {
		loc, _ := c.Lookup(s.ObjectFID)
		img, _ := c.ImageFor(loc)
		ffRaw, _, _ := img.GetXattr(loc.Ino, lustre.XattrFilterFID)
		ff, _ := lustre.DecodeFilterFID(ffRaw)
		fmt.Printf("stripe %d on ost%d points back: %v\n", i, s.OSTIndex, ff.ParentFID == ent.FID)
	}
	// Output:
	// file has 2 stripe objects
	// stripe 0 on ost0 points back: true
	// stripe 1 on ost1 points back: true
}
