package lustre

import (
	"errors"
	"fmt"

	"faultyrank/internal/ldiskfs"
)

// Common errors.
var (
	ErrExist    = errors.New("lustre: already exists")
	ErrNotExist = errors.New("lustre: no such file or directory")
	ErrNotDir   = errors.New("lustre: not a directory")
	ErrIsDir    = errors.New("lustre: is a directory")
	ErrNotEmpty = errors.New("lustre: directory not empty")
)

// Config configures a simulated cluster.
type Config struct {
	// NumOSTs is the number of object storage targets (paper testbed: 8).
	NumOSTs int
	// NumMDTs is the number of metadata targets. 0 or 1 gives the
	// paper's single-MDS layout; more enables DNE-style distributed
	// namespaces: new directories are placed round-robin across MDTs
	// (like `lfs mkdir -i`), files live on their parent's MDT, and
	// directory entries reference children across MDTs by FID.
	NumMDTs int
	// StripeSize in bytes (the paper shrinks it to 64 KiB to amplify
	// layout metadata; Lustre's default is 1 MiB).
	StripeSize int
	// StripeCount limits objects per file; <=0 means -1 (all OSTs),
	// matching the paper's setup.
	StripeCount int
	// Geometry of the backing images; zero value = ldiskfs.DefaultGeometry.
	Geometry ldiskfs.Geometry
}

// DefaultConfig mirrors the paper's testbed: 8 OSTs, 64 KiB stripes,
// stripe_count -1.
func DefaultConfig() Config {
	return Config{NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1}
}

// MDT is the metadata target: the namespace image plus FID allocation.
type MDT struct {
	Img     *ldiskfs.Image
	Index   int
	nextOid uint32
	seq     uint64
}

// AllocFID hands out the next MDT FID.
func (m *MDT) AllocFID() FID {
	m.nextOid++
	if m.nextOid == 0 { // sequence exhausted, move to the next
		m.seq++
		m.nextOid = 1
	}
	return FID{Seq: m.seq, Oid: m.nextOid}
}

// OST is one object storage target.
type OST struct {
	Img     *ldiskfs.Image
	Index   int
	nextOid uint32
	seq     uint64
}

// AllocFID hands out the next object FID on this OST.
func (o *OST) AllocFID() FID {
	o.nextOid++
	if o.nextOid == 0 {
		o.seq++
		o.nextOid = 1
	}
	return FID{Seq: o.seq, Oid: o.nextOid}
}

// Location says where the inode carrying a FID lives.
type Location struct {
	OST int // -1 for a metadata target
	MDT int // meaningful only when OST < 0
	Ino ldiskfs.Ino
}

// OnMDT reports whether the location is on a metadata target.
func (l Location) OnMDT() bool { return l.OST < 0 }

// Cluster is a simulated Lustre instance: one MDT plus NumOSTs OSTs,
// with client-level namespace operations that maintain every redundant
// metadata pair the checkers cross-check (DIRENT↔LinkEA, LOVEA↔filter-fid).
type Cluster struct {
	Cfg Config
	// MDT is the primary metadata target (MDTs[0]); most single-MDS
	// call sites use it directly.
	MDT  *MDT
	MDTs []*MDT
	OSTs []*OST

	rootIno ldiskfs.Ino
	// dirCache accelerates path resolution; the on-image metadata stays
	// authoritative (the cache is never consulted by scanners).
	dirCache map[string]dirRef
	// fidLoc indexes every live FID for fault injection and tests.
	fidLoc map[FID]Location
	// rr is the round-robin cursor for stripe placement.
	rr int
	// files/dirs track counts for reporting.
	nFiles, nDirs, nObjects int64
}

type dirRef struct {
	ino ldiskfs.Ino
	fid FID
	mdt int // which MDT the directory inode lives on
}

// NewCluster builds an empty cluster with a root directory.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.NumOSTs <= 0 {
		return nil, fmt.Errorf("lustre: need at least one OST")
	}
	if cfg.NumMDTs <= 0 {
		cfg.NumMDTs = 1
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = 64 << 10
	}
	if cfg.Geometry == (ldiskfs.Geometry{}) {
		cfg.Geometry = ldiskfs.DefaultGeometry()
	}
	c := &Cluster{
		Cfg:      cfg,
		dirCache: make(map[string]dirRef),
		fidLoc:   make(map[FID]Location),
	}
	for i := 0; i < cfg.NumMDTs; i++ {
		img, err := ldiskfs.New(cfg.Geometry)
		if err != nil {
			return nil, err
		}
		img.SetLabel(fmt.Sprintf("mdt%d", i))
		// Each MDT owns a disjoint FID sequence range, as in Lustre.
		c.MDTs = append(c.MDTs, &MDT{Img: img, Index: i, seq: MDTSeqBase + uint64(i)<<20})
	}
	c.MDT = c.MDTs[0]
	for i := 0; i < cfg.NumOSTs; i++ {
		img, err := ldiskfs.New(cfg.Geometry)
		if err != nil {
			return nil, err
		}
		img.SetLabel(fmt.Sprintf("ost%d", i))
		c.OSTs = append(c.OSTs, &OST{Img: img, Index: i, seq: OSTSeqBase + uint64(i)})
	}
	// Root directory: fixed FID on MDT0, LinkEA pointing at itself (the
	// root is its own parent, so the scanner sees a self-paired relation).
	mdtImg := c.MDT.Img
	rootIno, err := mdtImg.AllocInode(ldiskfs.TypeDir)
	if err != nil {
		return nil, err
	}
	if err := mdtImg.SetXattr(rootIno, XattrLMA, EncodeLMA(RootFID)); err != nil {
		return nil, err
	}
	link, err := EncodeLinkEA([]LinkEntry{{Parent: RootFID, Name: "/"}})
	if err != nil {
		return nil, err
	}
	if err := mdtImg.SetXattr(rootIno, XattrLink, link); err != nil {
		return nil, err
	}
	c.rootIno = rootIno
	c.dirCache["/"] = dirRef{ino: rootIno, fid: RootFID, mdt: 0}
	c.fidLoc[RootFID] = Location{OST: -1, MDT: 0, Ino: rootIno}
	c.nDirs = 1
	return c, nil
}

// RootIno returns the MDT inode of the root directory.
func (c *Cluster) RootIno() ldiskfs.Ino { return c.rootIno }

// Lookup returns the location of a FID, if it is live.
func (c *Cluster) Lookup(f FID) (Location, bool) {
	loc, ok := c.fidLoc[f]
	return loc, ok
}

// Counts returns (directories, files, stripe objects) created and alive.
func (c *Cluster) Counts() (dirs, files, objects int64) {
	return c.nDirs, c.nFiles, c.nObjects
}

// TotalInodes returns the allocated inode count across all servers —
// the x-axis of paper Table VI.
func (c *Cluster) TotalInodes() int64 {
	var n int64
	for _, m := range c.MDTs {
		n += m.Img.InodeCount()
	}
	for _, o := range c.OSTs {
		n += o.Img.InodeCount()
	}
	return n
}

// MDTInodes returns the allocated inode count across all MDTs.
func (c *Cluster) MDTInodes() int64 {
	var n int64
	for _, m := range c.MDTs {
		n += m.Img.InodeCount()
	}
	return n
}

// Images returns all server images keyed by label ("mdt0", "ost0", ...).
func (c *Cluster) Images() map[string]*ldiskfs.Image {
	out := make(map[string]*ldiskfs.Image, len(c.MDTs)+len(c.OSTs))
	for _, m := range c.MDTs {
		out[m.Img.Label()] = m.Img
	}
	for _, o := range c.OSTs {
		out[o.Img.Label()] = o.Img
	}
	return out
}

// ostImage returns the image of OST i.
func (c *Cluster) ostImage(i int) (*ldiskfs.Image, error) {
	if i < 0 || i >= len(c.OSTs) {
		return nil, fmt.Errorf("lustre: no OST %d", i)
	}
	return c.OSTs[i].Img, nil
}

// mdtImage returns the image of MDT i.
func (c *Cluster) mdtImage(i int) (*ldiskfs.Image, error) {
	if i < 0 || i >= len(c.MDTs) {
		return nil, fmt.Errorf("lustre: no MDT %d", i)
	}
	return c.MDTs[i].Img, nil
}

// ImageFor resolves a Location to its backing image.
func (c *Cluster) ImageFor(loc Location) (*ldiskfs.Image, error) {
	if loc.OnMDT() {
		return c.mdtImage(loc.MDT)
	}
	return c.ostImage(loc.OST)
}

// mdtForNewDir picks the MDT a new directory is placed on: round-robin
// across MDTs by directory count, approximating balanced `lfs mkdir -i`
// placement. Single-MDT clusters always answer 0.
func (c *Cluster) mdtForNewDir() int {
	if len(c.MDTs) == 1 {
		return 0
	}
	return int(c.nDirs) % len(c.MDTs)
}

// stripeObjectCount follows the paper's sizing (§V-A): one object per
// StripeSize bytes, capped by the effective stripe count, minimum one.
func (c *Cluster) stripeObjectCount(size int64) int {
	limit := c.Cfg.StripeCount
	if limit <= 0 || limit > c.Cfg.NumOSTs {
		limit = c.Cfg.NumOSTs
	}
	n := int((size + int64(c.Cfg.StripeSize) - 1) / int64(c.Cfg.StripeSize))
	if n < 1 {
		n = 1
	}
	if n > limit {
		n = limit
	}
	return n
}
