package core

import (
	"testing"

	"faultyrank/internal/graph"
)

// fig3Edges is the metadata graph of paper Fig. 3: directory a with files
// b and c (a's DIRENT points to both), b points back via LinkEA, c's
// LinkEA is missing, stripe object d points to b via filter-fid but b's
// LOVEA entry for d is missing.
func fig3Edges() (int, []graph.Edge) {
	const a, b, c, d = 0, 1, 2, 3
	return 4, []graph.Edge{
		{Src: a, Dst: b, Kind: graph.KindDirent},
		{Src: a, Dst: c, Kind: graph.KindDirent},
		{Src: b, Dst: a, Kind: graph.KindLinkEA},
		{Src: d, Dst: b, Kind: graph.KindFilterFID},
	}
}

// TestPaperExampleTable2 reproduces Table II of the paper: on the Fig. 3
// example graph, the Property rank of object c and the ID rank of object
// d must be the extreme minima of their score vectors (the paper reports
// 0.05 each, against 0.2-0.39 for every healthy field), and detection
// must attribute the two inconsistencies to exactly those two fields.
func TestPaperExampleTable2(t *testing.T) {
	const a, b, c, d = 0, 1, 2, 3
	n, edges := fig3Edges()
	bd := graph.NewBidirected(n, edges, 0)
	opt := DefaultOptions()
	res := Run(bd, opt)
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	if res.Iterations >= 20 {
		t.Errorf("paper reports <20 iterations; got %d", res.Iterations)
	}
	id, prop := res.NormalizedID(), res.NormalizedProp()
	t.Logf("normalized ranks (paper Table II in brackets):")
	t.Logf("  a id=%.2f [0.35] prop=%.2f [0.39]", id[a], prop[a])
	t.Logf("  b id=%.2f [0.39] prop=%.2f [0.35]", id[b], prop[b])
	t.Logf("  c id=%.2f [0.20] prop=%.2f [0.05]", id[c], prop[c])
	t.Logf("  d id=%.2f [0.05] prop=%.2f [0.20]", id[d], prop[d])

	// The two injected faults must have the lowest scores in their
	// vectors, far below every healthy field.
	for _, v := range []uint32{a, b, c} {
		if id[v] <= id[d]*2 {
			t.Errorf("id[%d]=%.3f not well above faulty id[d]=%.3f", v, id[v], id[d])
		}
	}
	for _, v := range []uint32{a, b, d} {
		if prop[v] <= prop[c]*2 {
			t.Errorf("prop[%d]=%.3f not well above faulty prop[c]=%.3f", v, prop[v], prop[c])
		}
	}

	rep := Detect(bd, res, nil, opt)
	if !rep.Suspected(c, FieldProperty) {
		t.Errorf("c.property not suspected; report=%+v", rep.Suspects)
	}
	if !rep.Suspected(d, FieldID) {
		t.Errorf("d.id not suspected; report=%+v", rep.Suspects)
	}
	if len(rep.Suspects) != 2 {
		t.Errorf("want exactly 2 suspects, got %+v", rep.Suspects)
	}
	// Recommended repairs: c's missing LinkEA rebuilt from a; d's wrong
	// id overwritten from b's layout pointer... the paper repairs d's id
	// using the counterpart's (here: the unpaired relation d->b flags
	// d.id, so the healthy counterpart is b).
	wantRepairs := map[Repair]bool{
		{Target: c, Source: a, Op: RepairSetProperty, Kind: graph.KindLinkEA}: false,
		{Target: d, Source: b, Op: RepairSetID, Kind: graph.KindLOVEA}:        false,
	}
	for _, r := range rep.Repairs {
		if _, ok := wantRepairs[r]; ok {
			wantRepairs[r] = true
		} else {
			t.Errorf("unexpected repair %+v", r)
		}
	}
	for r, seen := range wantRepairs {
		if !seen {
			t.Errorf("missing repair %+v (got %+v)", r, rep.Repairs)
		}
	}
}

// TestFig5MismatchLeft reproduces the left half of paper Fig. 5: a and b
// mismatch (a points to b, b does not point back) and a additionally has
// paired edges with c. The root cause is b's property: its rank collapses
// while a's id stays healthy (paper: b.prop ≪ 0.1, a.id = 0.42).
func TestFig5MismatchLeft(t *testing.T) {
	const a, b, c = 0, 1, 2
	edges := []graph.Edge{
		{Src: a, Dst: b, Kind: graph.KindDirent},
		{Src: a, Dst: c, Kind: graph.KindDirent},
		{Src: c, Dst: a, Kind: graph.KindLinkEA},
	}
	bd := graph.NewBidirected(3, edges, 0)
	opt := DefaultOptions()
	res := Run(bd, opt)
	if res.PropRank[b] >= opt.Threshold {
		t.Errorf("b.prop=%.3f not below threshold", res.PropRank[b])
	}
	if res.IDRank[a] < opt.Threshold {
		t.Errorf("a.id=%.3f should be healthy", res.IDRank[a])
	}
	rep := Detect(bd, res, nil, opt)
	if !rep.Suspected(b, FieldProperty) {
		t.Fatalf("b.property not suspected: %+v", rep.Suspects)
	}
	if rep.Suspected(a, FieldID) {
		t.Errorf("a.id wrongly suspected")
	}
	want := Repair{Target: b, Source: a, Op: RepairSetProperty, Kind: graph.KindLinkEA}
	if len(rep.Repairs) != 1 || rep.Repairs[0] != want {
		t.Errorf("repairs = %+v, want [%+v]", rep.Repairs, want)
	}
}

// TestFig5MismatchRight reproduces the right half of paper Fig. 5: the
// same user-visible mismatch, but the root cause is a's id — it was
// corrupted, so b's (and c's) point-backs reference the old identity,
// now a phantom vertex. a's id rank collapses (paper: a.id = 0.03) while
// b's property stays healthy (paper: b.prop = 0.34).
func TestFig5MismatchRight(t *testing.T) {
	const a, b, c, oldA = 0, 1, 2, 3
	edges := []graph.Edge{
		{Src: a, Dst: b, Kind: graph.KindDirent},
		{Src: a, Dst: c, Kind: graph.KindDirent},
		{Src: b, Dst: oldA, Kind: graph.KindLinkEA},
		{Src: c, Dst: oldA, Kind: graph.KindLinkEA},
	}
	present := []bool{true, true, true, false} // oldA is a phantom FID
	bd := graph.NewBidirected(4, edges, 0)
	opt := DefaultOptions()
	res := Run(bd, opt)
	if res.IDRank[a] >= opt.Threshold {
		t.Errorf("a.id=%.3f not below threshold", res.IDRank[a])
	}
	if res.PropRank[b] < opt.Threshold {
		t.Errorf("b.prop=%.3f should be healthy", res.PropRank[b])
	}
	// The phantom's id is credible: two independent point-backs agree.
	if res.IDRank[oldA] < opt.Threshold {
		t.Errorf("phantom id=%.3f should be credible", res.IDRank[oldA])
	}
	rep := Detect(bd, res, present, opt)
	if !rep.Suspected(a, FieldID) {
		t.Fatalf("a.id not suspected: %+v", rep.Suspects)
	}
	if rep.Suspected(b, FieldProperty) || rep.Suspected(c, FieldProperty) {
		t.Errorf("healthy point-backs wrongly suspected: %+v", rep.Suspects)
	}
	// a's id is rewritten from the point-backs' target; b->oldA and
	// c->oldA relations stay pending/ambiguous until that repair lands.
	foundSetID := false
	for _, r := range rep.Repairs {
		if r.Target == a && r.Op == RepairSetID {
			foundSetID = true
		}
	}
	if !foundSetID {
		t.Errorf("no set-id repair for a: %+v", rep.Repairs)
	}
}
