package core

import (
	"sort"

	"faultyrank/internal/graph"
)

// Field identifies which of the two metadata fields of an object is
// implicated: its unique ID (pointed at by others) or its Properties
// (pointing at others). See paper §III-B.
type Field uint8

const (
	// FieldID is the object's identity (FID / LMA in Lustre terms).
	FieldID Field = iota
	// FieldProperty is the object's pointing metadata (DIRENT, LinkEA,
	// LOVEA, filter-fid).
	FieldProperty
)

func (f Field) String() string {
	if f == FieldID {
		return "id"
	}
	return "property"
}

// Suspect is one metadata field chosen as the root cause of at least one
// unpaired relation.
type Suspect struct {
	Vertex uint32
	Field  Field
	// Score is the field's rank on the mass-N scale (mean 1.0).
	Score float64
	// Peers lists the counterpart vertices of the unpaired relations
	// that implicated this vertex, ascending and deduplicated.
	Peers []uint32
}

// Relation is an unpaired point-to between two vertices: From points to
// To, but To does not point back.
type Relation struct {
	From, To uint32
	Kind     graph.EdgeKind
}

// RepairOp says how a recommended repair rewrites a metadata field.
type RepairOp uint8

const (
	// RepairSetProperty rewrites Target's property so it points to
	// Source (adding the missing point-back / fixing a wrong pointer).
	RepairSetProperty RepairOp = iota
	// RepairSetID overwrites Target's ID with the identity that Source's
	// property refers to (the dangling-reference fix). When Target is a
	// phantom FID, the checker matches it against an orphaned physical
	// object before applying.
	RepairSetID
	// RepairDropPointer removes Target's bogus pointer toward Source:
	// the pointer itself was judged to be the root cause.
	RepairDropPointer
	// RepairQuarantine moves an object whose relations cannot be
	// reconstructed into lost+found (or recreates its lost owner there).
	// Detect never emits it; the checker's classification uses it for
	// stale/orphan/duplicate objects, mirroring LFSCK's safe fallback.
	RepairQuarantine
)

func (op RepairOp) String() string {
	switch op {
	case RepairSetProperty:
		return "set-property"
	case RepairSetID:
		return "set-id"
	case RepairDropPointer:
		return "drop-pointer"
	case RepairQuarantine:
		return "quarantine"
	default:
		return "repair(?)"
	}
}

// Repair is a recommended fix derived from the rank distribution: the
// faulty side of an unpaired relation is overwritten from its healthy
// counterpart (paper §III-F).
type Repair struct {
	Target uint32 // vertex whose field is rewritten
	Source uint32 // counterpart of the unpaired relation
	Op     RepairOp
	// Kind is the metadata field kind the rewritten value lives in (for
	// RepairSetProperty, the counterpart kind of the unanswered edge).
	Kind graph.EdgeKind
}

// Report is the outcome of fault detection on a ranked metadata graph.
type Report struct {
	// Suspects are the root-cause fields, ordered by vertex then field.
	Suspects []Suspect
	// Repairs are the recommended fixes, one per (relation, faulty side).
	Repairs []Repair
	// Ambiguous lists unpaired relations where no implicated field
	// scored below threshold — the paper defers these to users (§VI), or
	// they resolve transitively once a neighbouring repair is applied.
	Ambiguous []Relation
	// Checked is |S_chk|: vertices with at least one unpaired edge.
	Checked int
}

// candidate is one field of one endpoint of an unpaired relation.
type candidate struct {
	vertex uint32
	field  Field
	score  float64
}

// Detect walks the graph's unpaired relations and attributes each to a
// root cause using the converged ranks (paper §III-F, Fig. 5): among the
// four implicated fields — the target's property (missing point-back),
// the target's ID (not the object the source means), the source's
// property (wishful pointer) and the source's ID (point-backs cannot
// reach it) — the lowest-scoring field below Options.Threshold is chosen,
// exactly as the paper "chooses the wrong one compared with" the
// alternative. Other fields below threshold within AttributionSlack× of
// the minimum are co-flagged.
//
// present, when non-nil, marks which vertices are physically scanned
// objects; phantom vertices (referenced-but-never-scanned FIDs) carry no
// properties, so only their ID can be implicated and repairs on them are
// deferred to the checker's phantom/orphan matching.
func Detect(b *graph.Bidirected, res *Result, present []bool, opt Options) *Report {
	n := b.N()
	rep := &Report{}
	isPresent := func(v uint32) bool { return present == nil || present[v] }
	slack := opt.attributionSlack()

	suspectPeers := make(map[uint32]map[Field][]uint32)
	addSuspect := func(v uint32, f Field, peer uint32) {
		m, ok := suspectPeers[v]
		if !ok {
			m = make(map[Field][]uint32)
			suspectPeers[v] = m
		}
		m[f] = append(m[f], peer)
	}

	for vi := 0; vi < n; vi++ {
		u := uint32(vi)
		if !b.HasUnpairedEdge(u) {
			continue
		}
		rep.Checked++
		// Attribute u's unpaired *outgoing* relations; incoming ones are
		// attributed at their own source, so each relation is handled
		// exactly once.
		s, e := b.Fwd.EdgeRange(u)
		for i := s; i < e; i++ {
			if b.FwdPaired[i] == 1 {
				continue
			}
			v := b.Fwd.Targets[i]
			kind := graph.KindGeneric
			if b.Fwd.Kinds != nil {
				kind = b.Fwd.Kinds[i]
			}

			cands := make([]candidate, 0, 4)
			if isPresent(v) {
				cands = append(cands, candidate{v, FieldProperty, res.PropRank[v]})
			}
			cands = append(cands, candidate{v, FieldID, res.IDRank[v]})
			if isPresent(u) {
				cands = append(cands,
					candidate{u, FieldProperty, res.PropRank[u]},
					candidate{u, FieldID, res.IDRank[u]})
			}

			min := cands[0]
			for _, c := range cands[1:] {
				if c.score < min.score {
					min = c
				}
			}
			if min.score >= opt.Threshold {
				rep.Ambiguous = append(rep.Ambiguous, Relation{From: u, To: v, Kind: kind})
				continue
			}
			for _, c := range cands {
				if c.score >= opt.Threshold || c.score > min.score*slack {
					continue
				}
				peer := u
				if c.vertex == u {
					peer = v
				}
				addSuspect(c.vertex, c.field, peer)
				rep.Repairs = append(rep.Repairs, repairFor(c, u, v, kind, isPresent))
			}
		}
	}

	vertices := make([]uint32, 0, len(suspectPeers))
	for v := range suspectPeers {
		vertices = append(vertices, v)
	}
	sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })
	for _, v := range vertices {
		for _, f := range []Field{FieldID, FieldProperty} {
			peers, ok := suspectPeers[v][f]
			if !ok {
				continue
			}
			score := res.IDRank[v]
			if f == FieldProperty {
				score = res.PropRank[v]
			}
			rep.Suspects = append(rep.Suspects, Suspect{
				Vertex: v, Field: f, Score: score, Peers: dedupSorted(peers),
			})
		}
	}
	sort.Slice(rep.Repairs, func(i, j int) bool {
		a, b := rep.Repairs[i], rep.Repairs[j]
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Source < b.Source
	})
	rep.Repairs = dedupRepairs(rep.Repairs)
	return rep
}

// repairFor translates a root-cause attribution for unpaired relation
// u->v (kind k) into a concrete repair recommendation.
func repairFor(c candidate, u, v uint32, k graph.EdgeKind, isPresent func(uint32) bool) Repair {
	switch {
	case c.vertex == v && c.field == FieldProperty:
		// v fails to point back: rebuild its property from u's identity.
		return Repair{Target: v, Source: u, Op: RepairSetProperty, Kind: k.Counterpart()}
	case c.vertex == v && c.field == FieldID:
		// The identity u refers to is not carried by a credible object:
		// rewrite the (mis-ID'd) object's identity from u's property.
		return Repair{Target: v, Source: u, Op: RepairSetID, Kind: k}
	case c.vertex == u && c.field == FieldProperty:
		// u's pointer itself is bogus: drop it (its replacement, if any,
		// is recommended by the relations that point at u unanswered).
		return Repair{Target: u, Source: v, Op: RepairDropPointer, Kind: k}
	default: // c.vertex == u && c.field == FieldID
		// u's identity is wrong, so v's point-back cannot reach it:
		// overwrite u's identity with the one v's property refers to.
		return Repair{Target: u, Source: v, Op: RepairSetID, Kind: k.Counterpart()}
	}
}

// Suspected reports whether the given field of vertex v is in the report.
func (r *Report) Suspected(v uint32, f Field) bool {
	for _, s := range r.Suspects {
		if s.Vertex == v && s.Field == f {
			return true
		}
	}
	return false
}

func dedupSorted(xs []uint32) []uint32 {
	if len(xs) == 0 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func dedupRepairs(rs []Repair) []Repair {
	if len(rs) < 2 {
		return rs
	}
	out := rs[:1]
	for _, r := range rs[1:] {
		last := out[len(out)-1]
		if r != last {
			out = append(out, r)
		}
	}
	return out
}
