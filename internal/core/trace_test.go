package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestTraceOffByDefault: the detailed trace is opt-in; Diffs keeps
// recording either way.
func TestTraceOffByDefault(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	b := randomGraph(r, 200, 1200)
	res := Run(b, DefaultOptions())
	if res.Trace != nil {
		t.Errorf("trace recorded without opt-in: %d entries", len(res.Trace))
	}
	if len(res.Diffs) != res.Iterations {
		t.Errorf("diffs %d != iterations %d", len(res.Diffs), res.Iterations)
	}
}

// TestTraceRecorded: with the option on, one record per iteration whose
// MaxDelta equals the Diffs series exactly and whose sink masses are
// sane (finite, non-negative, bounded by total mass N).
func TestTraceRecorded(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	b := randomGraph(r, 300, 1800)
	opt := DefaultOptions()
	opt.ConvergenceTrace = true
	res := Run(b, opt)
	if len(res.Trace) != res.Iterations {
		t.Fatalf("trace %d entries, want %d", len(res.Trace), res.Iterations)
	}
	for i, s := range res.Trace {
		if s.MaxDelta != res.Diffs[i] {
			t.Errorf("iter %d: trace max-delta %g != diffs %g", i, s.MaxDelta, res.Diffs[i])
		}
		for _, m := range []float64{s.SinkMassID, s.SinkMassProp} {
			if math.IsNaN(m) || m < 0 || m > float64(b.N())+1e-6 {
				t.Errorf("iter %d: sink mass out of range: %+v", i, s)
			}
		}
	}
}

// TestTraceCapBounds: a run that cannot converge stops growing the trace
// at the cap while Diffs and the iteration count keep going.
func TestTraceCapBounds(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	b := randomGraph(r, 100, 600)
	opt := DefaultOptions()
	opt.ConvergenceTrace = true
	opt.TraceCap = 3
	opt.Epsilon = 0 // unreachable: run to the iteration cap
	opt.MaxIterations = 10
	res := Run(b, opt)
	if len(res.Trace) != 3 {
		t.Errorf("trace grew past cap: %d entries", len(res.Trace))
	}
	if res.Iterations != 10 || len(res.Diffs) != 10 {
		t.Errorf("cap throttled the run itself: %d iterations, %d diffs", res.Iterations, len(res.Diffs))
	}
}

// TestTraceWorkerCountInsensitive: the trace is the same series for
// every worker count, to within floating-point reduction tolerance
// (sink masses are parallel float sums, like the ranks themselves —
// see TestWorkerCountInsensitive).
func TestTraceWorkerCountInsensitive(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	b := randomGraph(r, 500, 4000)
	opt := DefaultOptions()
	opt.ConvergenceTrace = true
	opt.Workers = 1
	base := Run(b, opt)
	if len(base.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	for _, w := range []int{2, 3, 8} {
		opt.Workers = w
		res := Run(b, opt)
		if len(res.Trace) != len(base.Trace) {
			t.Fatalf("workers=%d trace length %d != %d", w, len(res.Trace), len(base.Trace))
		}
		for i := range base.Trace {
			a, bb := base.Trace[i], res.Trace[i]
			if math.Abs(a.MaxDelta-bb.MaxDelta) > 1e-9 ||
				math.Abs(a.SinkMassID-bb.SinkMassID) > 1e-9 ||
				math.Abs(a.SinkMassProp-bb.SinkMassProp) > 1e-9 {
				t.Fatalf("workers=%d trace[%d] drifted: %+v vs %+v", w, i, a, bb)
			}
		}
	}
}
