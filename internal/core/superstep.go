package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"faultyrank/internal/graph"
	"faultyrank/internal/par"
)

// Partitioned rank execution. Run's two-phase sweep decomposes into a
// bulk-synchronous protocol between one coordinator and K partition
// workers, each holding a graph.SubGraph:
//
//	coordinator            worker p (per iteration)
//	---------------------  -------------------------------------------
//	                   <-- UpA   {sink-A values, boundary prop values}
//	fold sink mass,
//	route ghosts       --> DownA {baseA, perSinkA, ghost prop values}
//	                       phase A sweep over local Rev rows
//	                   <-- UpB   {sink-B values, boundary ID values,
//	                              local max |Δ id|}
//	fold, decide halt  --> DownB {baseB, perSinkB, ghost IDs, halt?}
//	                       phase B sweep over local Fwd rows
//
// The protocol is framed by Init (seed scatter) and Done (rank gather).
//
// The decomposition is exact, not approximate: every float operation of
// the single-process kernel happens in the same order with the same
// operands. The per-vertex gathers preserve global CSR row order
// (graph.SubGraph's construction invariant); the only cross-partition
// reductions are the sink-mass sums, whose canonical fixed-block order
// (see sinkBlock in ranks.go) the coordinator reproduces term for term
// by routing raw sink values through a static global-ascending
// schedule; and max |Δ| is order-insensitive. So a K-partition run
// returns ranks bit-identical to Run's for any K and any owners map —
// the equivalence tests assert exactly that.

// RankDelta frame kinds.
const (
	// RankHello is the TCP handshake: a dialing worker announces its
	// partition index before the coordinator starts the protocol.
	RankHello uint8 = iota + 1
	// RankInit scatters the (rescaled) initial ranks to one partition;
	// Halt set means "answer with Done immediately" (zero-iteration runs).
	RankInit
	// RankUpA carries a partition's phase-A inputs: its local sink
	// values and its boundary prop values, one bundle per peer.
	RankUpA
	// RankDownA answers with the folded sink shares and the partition's
	// ghost prop values.
	RankDownA
	// RankUpB carries the phase-B inputs plus the partition-local
	// max |Δ id_rank|.
	RankUpB
	// RankDownB answers like DownA and carries the halt decision.
	RankDownB
	// RankDone returns a partition's final local ranks.
	RankDone
)

// RankDelta is the single frame type of the superstep exchange; which
// fields are populated depends on Kind. It crosses the wire via the
// versioned MsgRankDelta codec (internal/wire) and crosses goroutines
// verbatim on the in-process path.
type RankDelta struct {
	Kind uint8
	Part uint32
	Iter uint32

	// Base and PerSink are the folded sink shares (sinkShares output)
	// on Down frames; Diff is the local max |Δ id| on UpB.
	Base    float64
	PerSink float64
	Diff    float64

	// Halt on DownB ends the loop after the current phase B; on Init it
	// requests an immediate Done.
	Halt bool

	// Sum rides only on Hello frames: the FNV-1a fingerprint of the
	// worker's shard in canonical FRSG encoding
	// (graph.(*SubGraph).Fingerprint), with 0 reserved for "no shard,
	// ship me one". Together with Iter — which Hello reuses to carry the
	// worker's believed K — it lets the coordinator reject a stale or
	// mis-pointed worker before any superstep runs.
	Sum uint64

	// Sink carries the partition's sink-vertex rank values in ascending
	// local order (Up frames); Ghost the partition's ghost-column
	// values in ghost order (Down frames).
	Sink  []float64
	Ghost []float64

	// ID and Prop carry per-local rank vectors (Init seeds, Done results).
	ID   []float64
	Prop []float64

	// Bound[q] carries the values partition q needs as ghosts, in the
	// SubGraph.SendTo[q] schedule order (Up frames). Length K or nil.
	Bound [][]float64
}

// WireSize returns the byte length of the frame's canonical wire
// encoding (wire.EncodeRankDelta), so exchange accounting reports the
// same volumes on the in-process and TCP paths.
func (d *RankDelta) WireSize() int {
	n := 61 // version, kind, part, iter, 3 floats, sum, halt, 4 counts, bound count
	n += 8 * (len(d.Sink) + len(d.Ghost) + len(d.ID) + len(d.Prop))
	for _, b := range d.Bound {
		n += 4 + 8*len(b)
	}
	return n
}

// Link is one coordinator<->worker duplex channel. The in-process path
// uses buffered Go channels; the TCP path is wire.RankConn.
type Link interface {
	Send(*RankDelta) error
	Recv() (*RankDelta, error)
}

// PartError attributes a failed exchange to the partition whose link
// broke — the checker's degraded mode reports the name.
type PartError struct {
	Part int
	Err  error
}

func (e *PartError) Error() string { return fmt.Sprintf("rank partition %d: %v", e.Part, e.Err) }
func (e *PartError) Unwrap() error { return e.Err }

// phaseASinkCol reports whether a column is a phase-A sink (no forward
// out-edges; invOut would be 0). Must stay equivalent to the invOut
// construction in both Run and NewPartState.
func phaseASinkCol(sub *graph.SubGraph, col int) bool { return sub.OutDeg[col] <= 0 }

// phaseBSinkCol reports whether a column is a phase-B sink (zero
// reversed-distribution weight; invW would be 0), using the exact float
// expression of the invW construction.
func phaseBSinkCol(sub *graph.SubGraph, opt Options, col int) bool {
	if opt.LeakyDistribution {
		return sub.PairedIn[col]+sub.UnpairedIn[col] <= 0
	}
	w := float64(sub.PairedIn[col]) + opt.UnpairedWeight*float64(sub.UnpairedIn[col])
	return !(w > 0)
}

// PartState is one rank worker's mutable state: the divisor vectors and
// the double-buffered column-sized rank arrays (locals in [0, NLocal),
// ghosts above).
type PartState struct {
	Sub *graph.SubGraph

	opt     Options
	workers int
	sigma   float64
	blend   float64

	invOut []float64 // per column: 1/outdeg, 0 for sinks
	invW   []float64 // per column: 1/W(v), 0 for reversed-graph sinks

	// sinkALoc/sinkBLoc list the local indices that are phase A/B
	// sinks, ascending; their values feed the coordinator's canonical
	// sink-mass fold.
	sinkALoc []uint32
	sinkBLoc []uint32

	idCur, idNext     []float64
	propCur, propNext []float64
}

// NewPartState prepares a worker for RunPartition. opt.Workers bounds
// this partition's sweep parallelism (the checker divides its worker
// budget across partitions).
func NewPartState(sub *graph.SubGraph, opt Options) *PartState {
	nCols := sub.NCols()
	st := &PartState{
		Sub:      sub,
		opt:      opt,
		workers:  opt.workers(),
		sigma:    opt.Smoothing,
		blend:    1 - opt.Smoothing,
		invOut:   make([]float64, nCols),
		invW:     make([]float64, nCols),
		idCur:    make([]float64, nCols),
		idNext:   make([]float64, nCols),
		propCur:  make([]float64, nCols),
		propNext: make([]float64, nCols),
	}
	// Same expressions as Run's divisor construction, fed from the
	// replicated per-column metadata.
	par.ForRange(nCols, st.workers, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			if d := sub.OutDeg[c]; d > 0 {
				st.invOut[c] = 1 / float64(d)
			}
			if opt.LeakyDistribution {
				if d := sub.PairedIn[c] + sub.UnpairedIn[c]; d > 0 {
					st.invW[c] = 1 / float64(d)
				}
			} else {
				w := float64(sub.PairedIn[c]) + opt.UnpairedWeight*float64(sub.UnpairedIn[c])
				if w > 0 {
					st.invW[c] = 1 / w
				}
			}
		}
	})
	for l := 0; l < sub.NLocal(); l++ {
		if phaseASinkCol(sub, l) {
			st.sinkALoc = append(st.sinkALoc, uint32(l))
		}
		if phaseBSinkCol(sub, opt, l) {
			st.sinkBLoc = append(st.sinkBLoc, uint32(l))
		}
	}
	return st
}

func gatherAt(dst []float64, src []float64, idx []uint32) []float64 {
	dst = dst[:0]
	for _, i := range idx {
		dst = append(dst, src[i])
	}
	return dst
}

// RunPartition executes one worker's side of the superstep protocol
// until the coordinator halts it or the link breaks.
func RunPartition(st *PartState, link Link) error {
	sub := st.Sub
	nLocal := sub.NLocal()

	init, err := link.Recv()
	if err != nil {
		return err
	}
	if init.Kind != RankInit {
		return fmt.Errorf("rank worker %d: expected Init, got kind %d", sub.Part, init.Kind)
	}
	if len(init.ID) != nLocal || len(init.Prop) != nLocal {
		return fmt.Errorf("rank worker %d: Init seed length %d/%d, want %d", sub.Part, len(init.ID), len(init.Prop), nLocal)
	}
	copy(st.idCur, init.ID)
	copy(st.propCur, init.Prop)

	done := func() error {
		return link.Send(&RankDelta{
			Kind: RankDone,
			Part: uint32(sub.Part),
			ID:   st.idCur[:nLocal],
			Prop: st.propCur[:nLocal],
		})
	}
	if init.Halt {
		return done()
	}

	// Reused frame buffers: values are copied into the frames (gathers
	// are non-contiguous), so the compute arrays stay private.
	upA := &RankDelta{Kind: RankUpA, Part: uint32(sub.Part)}
	upB := &RankDelta{Kind: RankUpB, Part: uint32(sub.Part)}
	for _, up := range []*RankDelta{upA, upB} {
		up.Bound = make([][]float64, len(sub.SendTo))
	}

	for iter := uint32(0); ; iter++ {
		// ---- superstep A: ship sinks+boundary, recv shares+ghosts ---
		upA.Iter = iter
		upA.Sink = gatherAt(upA.Sink, st.propCur, st.sinkALoc)
		for q, sched := range sub.SendTo {
			upA.Bound[q] = gatherAt(upA.Bound[q], st.propCur, sched)
		}
		if err := link.Send(upA); err != nil {
			return err
		}
		downA, err := link.Recv()
		if err != nil {
			return err
		}
		if downA.Kind != RankDownA || downA.Iter != iter {
			return fmt.Errorf("rank worker %d: expected DownA iter %d, got kind %d iter %d", sub.Part, iter, downA.Kind, downA.Iter)
		}
		if len(downA.Ghost) != len(sub.Ghosts) {
			return fmt.Errorf("rank worker %d: DownA ghost count %d, want %d", sub.Part, len(downA.Ghost), len(sub.Ghosts))
		}
		copy(st.propCur[nLocal:], downA.Ghost)

		// ---- phase A: gather property mass along forward edges ------
		baseA, perSinkA := downA.Base, downA.PerSink
		par.ForRange(nLocal, st.workers, func(lo, hi int) {
			for l := lo; l < hi; l++ {
				s, e := sub.RevOff[l], sub.RevOff[l+1]
				acc := baseA
				for i := s; i < e; i++ {
					src := sub.RevCol[i]
					acc += st.propCur[src] * st.invOut[src]
				}
				if perSinkA != 0 && st.invOut[l] == 0 && sub.OutDeg[l] == 0 {
					acc -= st.propCur[l] * perSinkA
				}
				st.idNext[l] = st.sigma*st.idCur[l] + st.blend*acc
			}
		})
		localDiff := par.MapReduceMaxFloat64(nLocal, st.workers, func(l int) float64 {
			return math.Abs(st.idCur[l] - st.idNext[l])
		})

		// ---- superstep B ---------------------------------------------
		upB.Iter = iter
		upB.Diff = localDiff
		upB.Sink = gatherAt(upB.Sink, st.idNext, st.sinkBLoc)
		for q, sched := range sub.SendTo {
			upB.Bound[q] = gatherAt(upB.Bound[q], st.idNext, sched)
		}
		if err := link.Send(upB); err != nil {
			return err
		}
		downB, err := link.Recv()
		if err != nil {
			return err
		}
		if downB.Kind != RankDownB || downB.Iter != iter {
			return fmt.Errorf("rank worker %d: expected DownB iter %d, got kind %d iter %d", sub.Part, iter, downB.Kind, downB.Iter)
		}
		if len(downB.Ghost) != len(sub.Ghosts) {
			return fmt.Errorf("rank worker %d: DownB ghost count %d, want %d", sub.Part, len(downB.Ghost), len(sub.Ghosts))
		}
		copy(st.idNext[nLocal:], downB.Ghost)

		// ---- phase B: gather ID mass along reversed edges -----------
		baseB, perSinkB := downB.Base, downB.PerSink
		par.ForRange(nLocal, st.workers, func(lo, hi int) {
			for l := lo; l < hi; l++ {
				s, e := sub.FwdOff[l], sub.FwdOff[l+1]
				acc := baseB
				for i := s; i < e; i++ {
					dst := sub.FwdCol[i]
					w := st.opt.UnpairedWeight
					if sub.FwdPaired[i] == 1 {
						w = 1
					}
					acc += st.idNext[dst] * w * st.invW[dst]
				}
				if perSinkB != 0 && st.invW[l] == 0 {
					acc -= st.idNext[l] * perSinkB
				}
				st.propNext[l] = st.sigma*st.propCur[l] + st.blend*acc
			}
		})

		st.idCur, st.idNext = st.idNext, st.idCur
		st.propCur, st.propNext = st.propNext, st.propCur
		if downB.Halt {
			return done()
		}
	}
}

// SuperstepStats is one iteration's exchange record.
type SuperstepStats struct {
	Iter int `json:"iter"`
	// MaxDelta is the folded convergence measure (same scale as
	// Result.Diffs); SinkMassID/SinkMassProp the redistributed masses.
	MaxDelta     float64 `json:"max_delta"`
	SinkMassID   float64 `json:"sink_mass_id"`
	SinkMassProp float64 `json:"sink_mass_prop"`
	// UpBytes/DownBytes count the canonical encoded sizes of the four
	// frames of this iteration (UpA+UpB and DownA+DownB, summed over
	// partitions).
	UpBytes   int64 `json:"up_bytes"`
	DownBytes int64 `json:"down_bytes"`
}

// PartSummary describes one partition's share of the graph.
type PartSummary struct {
	Part     int   `json:"part"`
	Locals   int   `json:"locals"`
	Ghosts   int   `json:"ghosts"`
	CutEdges int64 `json:"cut_edges"`
}

// ExchangeReport is the coordinator's account of a partitioned run.
type ExchangeReport struct {
	K          int              `json:"k"`
	Supersteps []SuperstepStats `json:"supersteps"`
	Partitions []PartSummary    `json:"partitions"`
	// UpBytes/DownBytes are run totals, Init and Done frames included.
	UpBytes   int64 `json:"up_bytes"`
	DownBytes int64 `json:"down_bytes"`
}

// sinkRef addresses one sink vertex's value inside the Up frames: the
// global vertex gid is the cursors[part]'th entry of partition part's
// Sink array. Refs are sorted by gid, so walking them in order visits
// sinks in global-ascending order — the canonical sum order.
type sinkRef struct {
	gid  uint32
	part uint16
}

func buildSinkRefs(plan *graph.Plan, pick func(sub *graph.SubGraph, l int) bool) []sinkRef {
	var refs []sinkRef
	for p, sub := range plan.Parts {
		for l := 0; l < sub.NLocal(); l++ {
			if pick(sub, l) {
				refs = append(refs, sinkRef{gid: sub.Local[l], part: uint16(p)})
			}
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].gid < refs[j].gid })
	return refs
}

// foldSinks reproduces sinkMass's canonical blocked sum from the raw
// sink values the partitions shipped: terms land in their fixed
// 4096-wide block in ascending-gid order, and the block partials fold
// in ascending block order — the exact term sequence of the
// single-process reduction.
func foldSinks(refs []sinkRef, ups []*RankDelta, partial []float64, cursors []int) float64 {
	for i := range partial {
		partial[i] = 0
	}
	for i := range cursors {
		cursors[i] = 0
	}
	for _, r := range refs {
		partial[int(r.gid)/sinkBlock] += ups[r.part].Sink[cursors[r.part]]
		cursors[r.part]++
	}
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum
}

func sendAll(links []Link, frames []*RankDelta) error {
	errs := make([]error, len(links))
	var wg sync.WaitGroup
	for p := range links {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = links[p].Send(frames[p])
		}(p)
	}
	wg.Wait()
	return firstPartError(errs)
}

func recvAll(links []Link, kind uint8, iter uint32) ([]*RankDelta, error) {
	out := make([]*RankDelta, len(links))
	errs := make([]error, len(links))
	var wg sync.WaitGroup
	for p := range links {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			d, err := links[p].Recv()
			if err == nil {
				if d.Kind != kind || d.Iter != iter {
					err = fmt.Errorf("expected frame kind %d iter %d, got kind %d iter %d", kind, iter, d.Kind, d.Iter)
				} else if d.Part != uint32(p) {
					err = fmt.Errorf("frame claims partition %d on link %d", d.Part, p)
				}
			}
			out[p], errs[p] = d, err
		}(p)
	}
	wg.Wait()
	return out, firstPartError(errs)
}

func firstPartError(errs []error) error {
	for p, err := range errs {
		if err != nil {
			return &PartError{Part: p, Err: err}
		}
	}
	return nil
}

// Coordinate runs the coordinator side of a partitioned rank execution
// over one established link per partition. It returns the same Result a
// single-process Run over the unpartitioned graph would — bit for bit —
// plus the exchange accounting.
func Coordinate(plan *graph.Plan, links []Link, opt Options) (*Result, *ExchangeReport, error) {
	if len(links) != plan.K {
		return nil, nil, fmt.Errorf("core: %d links for %d partitions", len(links), plan.K)
	}
	n := plan.N
	res := &Result{
		IDRank:   make([]float64, n),
		PropRank: make([]float64, n),
	}
	rep := &ExchangeReport{K: plan.K}
	for _, sub := range plan.Parts {
		rep.Partitions = append(rep.Partitions, PartSummary{
			Part:     sub.Part,
			Locals:   sub.NLocal(),
			Ghosts:   len(sub.Ghosts),
			CutEdges: sub.CutEdges,
		})
	}

	// Initial ranks: exactly Run's seeding (uniform 1.0, or the warm
	// seed rescaled by the same sequential rescaleMass).
	id0 := make([]float64, n)
	prop0 := make([]float64, n)
	if len(opt.InitialID) == n && n > 0 {
		copy(id0, opt.InitialID)
		rescaleMass(id0)
	} else {
		for i := range id0 {
			id0[i] = 1
		}
	}
	if len(opt.InitialProp) == n && n > 0 {
		copy(prop0, opt.InitialProp)
		rescaleMass(prop0)
	} else {
		for i := range prop0 {
			prop0[i] = 1
		}
	}

	scatter := func(global []float64, sub *graph.SubGraph) []float64 {
		out := make([]float64, sub.NLocal())
		for l, g := range sub.Local {
			out[l] = global[g]
		}
		return out
	}

	haltNow := n == 0 || opt.MaxIterations <= 0
	inits := make([]*RankDelta, plan.K)
	for p, sub := range plan.Parts {
		inits[p] = &RankDelta{
			Kind: RankInit,
			Part: uint32(p),
			Halt: haltNow,
			ID:   scatter(id0, sub),
			Prop: scatter(prop0, sub),
		}
		rep.DownBytes += int64(inits[p].WireSize())
	}
	if err := sendAll(links, inits); err != nil {
		return nil, rep, err
	}

	refsA := buildSinkRefs(plan, phaseASinkCol)
	refsB := buildSinkRefs(plan, func(sub *graph.SubGraph, l int) bool {
		return phaseBSinkCol(sub, opt, l)
	})
	nb := (n + sinkBlock - 1) / sinkBlock
	partial := make([]float64, nb)
	cursors := make([]int, plan.K)
	blend := 1 - opt.Smoothing

	downs := make([]*RankDelta, plan.K)
	for p, sub := range plan.Parts {
		downs[p] = &RankDelta{Part: uint32(p), Ghost: make([]float64, len(sub.Ghosts))}
	}
	// routeGhosts fills each partition's ghost vector from the Bound
	// bundles: partition q's ghosts ascend by global GID and so does
	// every SendTo[·][q] schedule, so a per-owner cursor walk lines the
	// two up exactly.
	routeGhosts := func(ups []*RankDelta) {
		for q, sub := range plan.Parts {
			for i := range cursors {
				cursors[i] = 0
			}
			out := downs[q].Ghost
			for i, g := range sub.Ghosts {
				o := plan.Owners[g]
				out[i] = ups[o].Bound[q][cursors[o]]
				cursors[o]++
			}
		}
	}

	if !haltNow {
		for iter := uint32(0); ; iter++ {
			var stepUp, stepDown int64

			// ---- superstep A ----------------------------------------
			ups, err := recvAll(links, RankUpA, iter)
			if err != nil {
				return nil, rep, err
			}
			if err := checkUps(plan, ups, refsA); err != nil {
				return nil, rep, err
			}
			for _, u := range ups {
				stepUp += int64(u.WireSize())
			}
			sinkA := foldSinks(refsA, ups, partial, cursors)
			baseA, perSinkA := sinkShares(sinkA, n, opt.SinkPolicy)
			routeGhosts(ups)
			for _, d := range downs {
				d.Kind, d.Iter, d.Base, d.PerSink, d.Halt = RankDownA, iter, baseA, perSinkA, false
				stepDown += int64(d.WireSize())
			}
			if err := sendAll(links, downs); err != nil {
				return nil, rep, err
			}

			// ---- superstep B ----------------------------------------
			ups, err = recvAll(links, RankUpB, iter)
			if err != nil {
				return nil, rep, err
			}
			if err := checkUps(plan, ups, refsB); err != nil {
				return nil, rep, err
			}
			for _, u := range ups {
				stepUp += int64(u.WireSize())
			}
			sinkB := foldSinks(refsB, ups, partial, cursors)
			baseB, perSinkB := sinkShares(sinkB, n, opt.SinkPolicy)

			var diff float64
			for _, u := range ups {
				if u.Diff > diff {
					diff = u.Diff
				}
			}
			if blend > 0 {
				diff /= blend
			}
			res.Diffs = append(res.Diffs, diff)
			if opt.ConvergenceTrace && len(res.Trace) < opt.traceCap() {
				res.Trace = append(res.Trace, IterStats{
					MaxDelta:     diff,
					SinkMassID:   sinkA,
					SinkMassProp: sinkB,
				})
			}
			res.Iterations = int(iter) + 1
			converged := diff < opt.Epsilon
			last := res.Iterations >= opt.MaxIterations

			routeGhosts(ups)
			for _, d := range downs {
				d.Kind, d.Iter, d.Base, d.PerSink, d.Halt = RankDownB, iter, baseB, perSinkB, converged || last
				stepDown += int64(d.WireSize())
			}
			if err := sendAll(links, downs); err != nil {
				return nil, rep, err
			}

			rep.Supersteps = append(rep.Supersteps, SuperstepStats{
				Iter:         int(iter),
				MaxDelta:     diff,
				SinkMassID:   sinkA,
				SinkMassProp: sinkB,
				UpBytes:      stepUp,
				DownBytes:    stepDown,
			})
			rep.UpBytes += stepUp
			rep.DownBytes += stepDown
			if opt.OnIteration != nil {
				opt.OnIteration(res.Iterations, diff)
			}
			if converged {
				res.Converged = true
			}
			if converged || last {
				break
			}
		}
	}

	// ---- gather final ranks -----------------------------------------
	dones, err := recvAll(links, RankDone, 0)
	if err != nil {
		return nil, rep, err
	}
	for p, d := range dones {
		sub := plan.Parts[p]
		if len(d.ID) != sub.NLocal() || len(d.Prop) != sub.NLocal() {
			return nil, rep, &PartError{Part: p, Err: fmt.Errorf("Done carries %d/%d ranks, want %d", len(d.ID), len(d.Prop), sub.NLocal())}
		}
		rep.UpBytes += int64(d.WireSize())
		for l, g := range sub.Local {
			res.IDRank[g] = d.ID[l]
			res.PropRank[g] = d.Prop[l]
		}
	}
	if n == 0 {
		res.Converged = true
	}
	return res, rep, nil
}

// checkUps validates the shape of one round of Up frames before the
// fold and routing index into them.
func checkUps(plan *graph.Plan, ups []*RankDelta, refs []sinkRef) error {
	want := make([]int, plan.K)
	for _, r := range refs {
		want[r.part]++
	}
	for p, u := range ups {
		if len(u.Sink) != want[p] {
			return &PartError{Part: p, Err: fmt.Errorf("up frame carries %d sink values, want %d", len(u.Sink), want[p])}
		}
		if len(u.Bound) != plan.K {
			return &PartError{Part: p, Err: fmt.Errorf("up frame carries %d bound bundles, want %d", len(u.Bound), plan.K)}
		}
		for q, b := range u.Bound {
			if len(b) != len(plan.Parts[p].SendTo[q]) {
				return &PartError{Part: p, Err: fmt.Errorf("bound bundle for %d carries %d values, want %d", q, len(b), len(plan.Parts[p].SendTo[q]))}
			}
		}
	}
	return nil
}

// errLinkClosed reports an in-process link torn down by the peer.
var errLinkClosed = fmt.Errorf("core: rank link closed")

// LocalLink is one end of an in-process superstep link — the channel
// counterpart of the TCP wire.RankConn. Closing either end releases
// both: a blocked Send or Recv returns an error, so a crashed worker
// surfaces at the coordinator as a named PartError instead of hanging
// the superstep barrier.
type LocalLink struct {
	in   chan *RankDelta
	out  chan *RankDelta
	done chan struct{}
	stop *sync.Once
}

// LinkPair returns the coordinator and worker ends of a fresh in-process
// link. The channels are buffered one frame deep — enough for the
// strictly alternating protocol — and share a teardown signal.
func LinkPair() (coord, worker *LocalLink) {
	toWorker := make(chan *RankDelta, 1)
	toCoord := make(chan *RankDelta, 1)
	done := make(chan struct{})
	stop := &sync.Once{}
	coord = &LocalLink{in: toCoord, out: toWorker, done: done, stop: stop}
	worker = &LocalLink{in: toWorker, out: toCoord, done: done, stop: stop}
	return coord, worker
}

// Send hands a frame to the peer, or fails once the pair is torn down.
func (l *LocalLink) Send(d *RankDelta) error {
	select {
	case l.out <- d:
		return nil
	case <-l.done:
		return errLinkClosed
	}
}

// Recv drains a frame already in flight before honouring teardown, so a
// peer that sends its final frame and immediately closes cannot race
// its own goodbye.
func (l *LocalLink) Recv() (*RankDelta, error) {
	select {
	case d := <-l.in:
		return d, nil
	default:
	}
	select {
	case d := <-l.in:
		return d, nil
	case <-l.done:
		return nil, errLinkClosed
	}
}

// Close tears the pair down; idempotent, releases both ends.
func (l *LocalLink) Close() error {
	l.stop.Do(func() { close(l.done) })
	return nil
}

// RunPartitioned executes a partitioned rank run entirely in-process:
// one goroutine per partition worker, channel links, the calling
// goroutine as coordinator. The per-partition sweep parallelism is
// opt.Workers divided across partitions (minimum 1 each).
func RunPartitioned(plan *graph.Plan, opt Options) (*Result, *ExchangeReport, error) {
	wopt := opt
	wopt.Workers = opt.workers() / plan.K
	if wopt.Workers < 1 {
		wopt.Workers = 1
	}

	links := make([]Link, plan.K)
	workers := make([]*LocalLink, plan.K)
	var wg sync.WaitGroup
	for p := 0; p < plan.K; p++ {
		coord, worker := LinkPair()
		links[p], workers[p] = coord, worker
		st := NewPartState(plan.Parts[p], wopt)
		wg.Add(1)
		go func(st *PartState, link *LocalLink) {
			defer wg.Done()
			// A worker error breaks the protocol; closing the pair turns
			// the coordinator's next wait into a named PartError.
			if err := RunPartition(st, link); err != nil {
				link.Close()
			}
		}(st, worker)
	}
	res, rep, err := Coordinate(plan, links, opt)
	for _, w := range workers {
		w.Close()
	}
	wg.Wait()
	return res, rep, err
}
