package core

import (
	"faultyrank/internal/graph"
)

// The paper notes (§III-B, §VIII) that FaultyRank folds all of an
// object's properties into one Property rank and leaves "separating
// multiple properties" to future work. This file implements that
// extension: edges are partitioned into relation classes — the
// namespace plane (DIRENT ↔ LinkEA) and the layout plane (LOVEA ↔
// filter-fid) — and the iterative algorithm runs on each plane's
// subgraph independently. A vertex then carries one ID rank and one
// Property rank *per class*, so a corrupted LinkEA no longer dilutes
// (or hides behind) a healthy LOVEA on the same inode.

// PropertyClass identifies a relation plane.
type PropertyClass uint8

const (
	// ClassNamespace covers DIRENT and LinkEA relations.
	ClassNamespace PropertyClass = iota
	// ClassLayout covers LOVEA and filter-fid relations.
	ClassLayout
	// ClassOther covers generic/unknown edges.
	ClassOther
	// NumClasses is the number of relation planes.
	NumClasses = 3
)

func (c PropertyClass) String() string {
	switch c {
	case ClassNamespace:
		return "namespace"
	case ClassLayout:
		return "layout"
	default:
		return "other"
	}
}

// ClassOf maps an edge kind to its relation plane.
func ClassOf(k graph.EdgeKind) PropertyClass {
	switch k {
	case graph.KindDirent, graph.KindLinkEA:
		return ClassNamespace
	case graph.KindLOVEA, graph.KindFilterFID:
		return ClassLayout
	default:
		return ClassOther
	}
}

// ClassResult is the rank outcome of one relation plane.
type ClassResult struct {
	Class  PropertyClass
	Graph  *graph.Bidirected
	Result *Result
	// Active[v] is true when vertex v participates in this plane (has
	// at least one edge of the class); ranks of inactive vertices carry
	// no signal and are skipped by detection.
	Active []bool
}

// SplitResult bundles the per-plane outcomes.
type SplitResult struct {
	N       int
	Classes []*ClassResult
}

// RunSplit partitions the edge list by relation class, builds one
// bidirected subgraph per non-empty class over the same vertex space,
// and runs the FaultyRank iteration on each.
func RunSplit(n int, edges []graph.Edge, opt Options) *SplitResult {
	buckets := make([][]graph.Edge, NumClasses)
	for _, e := range edges {
		c := ClassOf(e.Kind)
		buckets[c] = append(buckets[c], e)
	}
	out := &SplitResult{N: n}
	for ci, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		b := graph.NewBidirected(n, bucket, opt.Workers)
		res := Run(b, opt)
		active := make([]bool, n)
		for v := 0; v < n; v++ {
			if b.OutDegree(uint32(v)) > 0 || b.InDegree(uint32(v)) > 0 {
				active[v] = true
			}
		}
		out.Classes = append(out.Classes, &ClassResult{
			Class: PropertyClass(ci), Graph: b, Result: res, Active: active,
		})
	}
	return out
}

// ClassSuspect is a per-plane root-cause attribution.
type ClassSuspect struct {
	Class PropertyClass
	Suspect
}

// SplitReport aggregates per-plane detection.
type SplitReport struct {
	Suspects  []ClassSuspect
	Repairs   []Repair
	Ambiguous []Relation
}

// DetectSplit runs root-cause attribution independently per plane. The
// present slice has the same meaning as in Detect. Because each plane's
// sink set differs (a file is a layout *source* but a namespace *leaf*),
// thresholds apply to each plane's own mass distribution, which is the
// precision benefit of the split.
func DetectSplit(sr *SplitResult, present []bool, opt Options) *SplitReport {
	rep := &SplitReport{}
	for _, cr := range sr.Classes {
		r := Detect(cr.Graph, cr.Result, present, opt)
		for _, s := range r.Suspects {
			if !cr.Active[s.Vertex] {
				continue
			}
			rep.Suspects = append(rep.Suspects, ClassSuspect{Class: cr.Class, Suspect: s})
		}
		rep.Repairs = append(rep.Repairs, r.Repairs...)
		rep.Ambiguous = append(rep.Ambiguous, r.Ambiguous...)
	}
	return rep
}

// SuspectedIn reports whether field f of vertex v is flagged in class c.
func (r *SplitReport) SuspectedIn(c PropertyClass, v uint32, f Field) bool {
	for _, s := range r.Suspects {
		if s.Class == c && s.Vertex == v && s.Field == f {
			return true
		}
	}
	return false
}
