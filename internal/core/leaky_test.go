package core

import (
	"math"
	"testing"

	"faultyrank/internal/graph"
)

// misdirectedEdges models the "mismatch, b's property wrong" shape that
// defeats the paper's weight-normalised distribution: object 3's
// point-back was rewritten to a phantom (4) that nobody else references,
// so under proportional normalisation the phantom bounces 3's mass
// straight back ("phantom bounce") and 3's property rank stays healthy.
//
//	0 = directory, 1 = file (paired with 0), 2 = healthy object,
//	3 = object with misdirected filter-fid, 4 = phantom target.
func misdirectedEdges() (int, []graph.Edge, []bool) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Kind: graph.KindDirent},
		{Src: 1, Dst: 0, Kind: graph.KindLinkEA},
		{Src: 1, Dst: 2, Kind: graph.KindLOVEA},
		{Src: 2, Dst: 1, Kind: graph.KindFilterFID},
		{Src: 1, Dst: 3, Kind: graph.KindLOVEA},     // unanswered claim
		{Src: 3, Dst: 4, Kind: graph.KindFilterFID}, // misdirected point-back
	}
	present := []bool{true, true, true, true, false}
	return 5, edges, present
}

// TestPhantomBounceUnderDefaultScheme documents the limitation: the
// proportionally-normalised distribution keeps the misdirected
// property's rank high, so rank-level detection alone cannot attribute
// the fault (the checker's structural pass closes this gap instead).
func TestPhantomBounceUnderDefaultScheme(t *testing.T) {
	n, edges, present := misdirectedEdges()
	b := graph.NewBidirected(n, edges, 0)
	opt := DefaultOptions()
	res := Run(b, opt)
	if res.PropRank[3] < opt.Threshold {
		t.Skipf("default scheme attributed it anyway (prop=%.3f) — bounce not reproduced", res.PropRank[3])
	}
	rep := Detect(b, res, present, opt)
	if rep.Suspected(3, FieldProperty) {
		t.Fatal("default scheme unexpectedly flagged the misdirected property")
	}
}

// TestLeakyDistributionCatchesMisdirection: under the leaky ablation the
// lone wishful pointer decays by UnpairedWeight per iteration, so the
// ranks alone finger object 3's property.
func TestLeakyDistributionCatchesMisdirection(t *testing.T) {
	n, edges, present := misdirectedEdges()
	b := graph.NewBidirected(n, edges, 0)
	opt := DefaultOptions()
	opt.LeakyDistribution = true
	opt.Epsilon = 0.01
	res := Run(b, opt)
	if res.PropRank[3] >= opt.Threshold {
		t.Fatalf("leaky scheme left prop[3] = %.3f", res.PropRank[3])
	}
	rep := Detect(b, res, present, opt)
	if !rep.Suspected(3, FieldProperty) {
		t.Fatalf("leaky scheme did not flag the misdirected property: %+v", rep.Suspects)
	}
	// The healthy object's property must stay above threshold.
	if rep.Suspected(2, FieldProperty) {
		t.Fatalf("healthy object flagged under leaky scheme")
	}
}

// TestLeakyLosesMass: the leak is real — total property mass decays on
// graphs with unpaired edges (why it is an ablation, not the default).
func TestLeakyLosesMass(t *testing.T) {
	n, edges, _ := misdirectedEdges()
	b := graph.NewBidirected(n, edges, 0)
	opt := DefaultOptions()
	opt.LeakyDistribution = true
	opt.MaxIterations = 10
	opt.Epsilon = 0
	res := Run(b, opt)
	var propSum float64
	for _, x := range res.PropRank {
		propSum += x
	}
	if propSum >= float64(n) {
		t.Fatalf("prop mass %.3f did not decay below %d", propSum, n)
	}
	// The default scheme conserves it on the same graph.
	opt.LeakyDistribution = false
	res = Run(b, opt)
	propSum = 0
	for _, x := range res.PropRank {
		propSum += x
	}
	if math.Abs(propSum-float64(n)) > 1e-6 {
		t.Fatalf("default scheme lost mass: %.6f", propSum)
	}
}

// TestLeakyStillCleanOnConsistentGraphs: the ablation must not create
// false positives on fully paired graphs.
func TestLeakyStillCleanOnConsistentGraphs(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Dst: 1, Kind: graph.KindDirent},
		{Src: 1, Dst: 0, Kind: graph.KindLinkEA},
		{Src: 1, Dst: 2, Kind: graph.KindLOVEA},
		{Src: 2, Dst: 1, Kind: graph.KindFilterFID},
	}
	b := graph.NewBidirected(3, edges, 0)
	opt := DefaultOptions()
	opt.LeakyDistribution = true
	res := Run(b, opt)
	rep := Detect(b, res, nil, opt)
	if len(rep.Suspects) != 0 {
		t.Fatalf("false positives under leaky scheme: %+v", rep.Suspects)
	}
}
