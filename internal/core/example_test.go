package core_test

import (
	"fmt"

	"faultyrank/internal/core"
	"faultyrank/internal/graph"
)

// ExampleRun reproduces the paper's Fig. 3 walk-through: a directory a
// with files b and c, and a stripe object d of b. Two faults are baked
// in — c's point-back is missing and d's identity is wrong — and the
// converged ranks expose exactly those two fields.
func ExampleRun() {
	const a, b, c, d = 0, 1, 2, 3
	edges := []graph.Edge{
		{Src: a, Dst: b, Kind: graph.KindDirent},
		{Src: a, Dst: c, Kind: graph.KindDirent},
		{Src: b, Dst: a, Kind: graph.KindLinkEA},
		{Src: d, Dst: b, Kind: graph.KindFilterFID},
	}
	g := graph.NewBidirected(4, edges, 1)
	opt := core.DefaultOptions()
	opt.Workers = 1
	res := core.Run(g, opt)
	rep := core.Detect(g, res, nil, opt)
	for _, s := range rep.Suspects {
		fmt.Printf("%c.%v is faulty\n", 'a'+rune(s.Vertex), s.Field)
	}
	for _, r := range rep.Repairs {
		fmt.Printf("repair: %v of %c from %c\n", r.Op, 'a'+rune(r.Target), 'a'+rune(r.Source))
	}
	// Output:
	// c.property is faulty
	// d.id is faulty
	// repair: set-property of c from a
	// repair: set-id of d from b
}
