package core

import (
	"math"
	"math/rand"
	"testing"

	"faultyrank/internal/graph"
	"faultyrank/internal/rmat"
)

// exactlyEqual compares float slices bit for bit — the partitioned
// kernel promises bitwise reproduction of the single-process kernel,
// not merely closeness.
func exactlyEqual(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v (%#x) want %v (%#x)", what, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func assertSameResult(t *testing.T, got, want *Result) {
	t.Helper()
	exactlyEqual(t, "IDRank", got.IDRank, want.IDRank)
	exactlyEqual(t, "PropRank", got.PropRank, want.PropRank)
	exactlyEqual(t, "Diffs", got.Diffs, want.Diffs)
	if got.Iterations != want.Iterations {
		t.Fatalf("Iterations = %d want %d", got.Iterations, want.Iterations)
	}
	if got.Converged != want.Converged {
		t.Fatalf("Converged = %v want %v", got.Converged, want.Converged)
	}
	if len(got.Trace) != len(want.Trace) {
		t.Fatalf("Trace length %d want %d", len(got.Trace), len(want.Trace))
	}
	for i := range got.Trace {
		if got.Trace[i] != want.Trace[i] {
			t.Fatalf("Trace[%d] = %+v want %+v", i, got.Trace[i], want.Trace[i])
		}
	}
}

func testOwners(n, k int, seed int64) []uint16 {
	rng := rand.New(rand.NewSource(seed))
	owners := make([]uint16, n)
	for i := range owners {
		owners[i] = uint16(rng.Intn(k))
	}
	return owners
}

func testGraphs(t *testing.T) map[string]*graph.Bidirected {
	t.Helper()
	graphs := map[string]*graph.Bidirected{}

	// RMAT at a small scale: the skewed-degree shape of the paper's
	// scalability graphs, including multi-edges and self-loops.
	edges := rmat.Generate(rmat.Graph500(8, 8, 42), 4)
	graphs["rmat8"] = graph.NewBidirectedUntyped(1<<8, edges, 4)

	// A sparse random graph with injected faults: drop some back-edges
	// so paired/unpaired classification and sink structure get
	// exercised, plus guaranteed sinks and isolated vertices.
	rng := rand.New(rand.NewSource(7))
	n := 300
	var faulty []graph.Edge
	for i := 0; i < 900; i++ {
		src, dst := uint32(rng.Intn(n-20)), uint32(rng.Intn(n-20))
		faulty = append(faulty, graph.Edge{Src: src, Dst: dst})
		if rng.Intn(3) != 0 { // two thirds paired, one third unpaired
			faulty = append(faulty, graph.Edge{Src: dst, Dst: src})
		}
	}
	graphs["faulty"] = graph.NewBidirected(n, faulty, 4)

	graphs["empty"] = graph.NewBidirected(0, nil, 1)
	graphs["edgeless"] = graph.NewBidirected(5, nil, 1)
	graphs["single"] = graph.NewBidirected(1, []graph.Edge{{Src: 0, Dst: 0}}, 1)
	return graphs
}

// TestPartitionedMatchesRunExact is the central equivalence property:
// for every graph shape, option set, partition count and owners map,
// the partitioned execution must reproduce the single-process kernel
// bit for bit — ranks, convergence trace, iteration count, everything.
func TestPartitionedMatchesRunExact(t *testing.T) {
	options := map[string]Options{
		"default": DefaultOptions(),
	}
	o := DefaultOptions()
	o.Smoothing = 0
	options["unsmoothed"] = o
	o = DefaultOptions()
	o.LeakyDistribution = true
	options["leaky"] = o
	o = DefaultOptions()
	o.SinkPolicy = SinkToAll
	options["sink-all"] = o
	o = DefaultOptions()
	o.SinkPolicy = SinkDrop
	options["sink-drop"] = o
	o = DefaultOptions()
	o.UnpairedWeight = 0
	options["weight-zero"] = o
	o = DefaultOptions()
	o.Epsilon = 1e-9 // force the iteration cap
	o.MaxIterations = 12
	o.ConvergenceTrace = true
	o.TraceCap = 5
	options["capped-traced"] = o

	for gname, b := range testGraphs(t) {
		for oname, opt := range options {
			want := Run(b, opt)
			for _, k := range []int{1, 2, 3, 8} {
				owners := testOwners(b.N(), k, int64(k)*31+int64(len(gname)))
				plan := graph.PartitionPlan(b, owners, k, 4)
				got, rep, err := RunPartitioned(plan, opt)
				if err != nil {
					t.Fatalf("%s/%s k=%d: %v", gname, oname, k, err)
				}
				assertSameResult(t, got, want)
				if rep.K != k || len(rep.Partitions) != k {
					t.Fatalf("%s/%s k=%d: report K=%d partitions=%d", gname, oname, k, rep.K, len(rep.Partitions))
				}
				if len(rep.Supersteps) != want.Iterations {
					t.Fatalf("%s/%s k=%d: %d supersteps for %d iterations", gname, oname, k, len(rep.Supersteps), want.Iterations)
				}
				if want.Iterations > 0 && (rep.UpBytes <= 0 || rep.DownBytes <= 0) {
					t.Fatalf("%s/%s k=%d: empty exchange accounting %+v", gname, oname, k, rep)
				}
			}
		}
	}
}

// TestPartitionedWarmStartExact: warm seeds flow through the
// coordinator's rescale+scatter and still match the legacy kernel
// exactly.
func TestPartitionedWarmStartExact(t *testing.T) {
	b := testGraphs(t)["faulty"]
	cold := Run(b, DefaultOptions())

	opt := DefaultOptions()
	opt.InitialID = cold.IDRank
	opt.InitialProp = cold.PropRank
	// Scale the seed off the mass-N manifold so rescaleMass has work.
	for i := range opt.InitialID {
		opt.InitialID[i] *= 3.5
	}
	want := Run(b, opt)
	for _, k := range []int{2, 3} {
		plan := graph.PartitionPlan(b, testOwners(b.N(), k, 99), k, 4)
		got, _, err := RunPartitioned(plan, opt)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		assertSameResult(t, got, want)
	}
}

// TestPartitionedZeroIterations: MaxIterations=0 short-circuits through
// Init.Halt and returns the seeded ranks unchanged, like the legacy
// loop that never runs.
func TestPartitionedZeroIterations(t *testing.T) {
	b := testGraphs(t)["faulty"]
	opt := DefaultOptions()
	opt.MaxIterations = 0
	want := Run(b, opt)
	plan := graph.PartitionPlan(b, testOwners(b.N(), 3, 5), 3, 4)
	got, rep, err := RunPartitioned(plan, opt)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, got, want)
	if len(rep.Supersteps) != 0 {
		t.Fatalf("zero-iteration run recorded %d supersteps", len(rep.Supersteps))
	}
}

// TestSinkMassWorkerIndependent: the canonical blocked reduction must
// not depend on the worker count (this is what anchors the distributed
// fold).
func TestSinkMassWorkerIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 3*sinkBlock + 17
	rank := make([]float64, n)
	invDiv := make([]float64, n)
	for i := range rank {
		rank[i] = rng.Float64()
		if rng.Intn(3) == 0 {
			invDiv[i] = rng.Float64()
		}
	}
	want := sinkMass(rank, invDiv, 1)
	for _, w := range []int{2, 3, 7, 16} {
		got := sinkMass(rank, invDiv, w)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: sinkMass %v != %v", w, got, want)
		}
	}
}

// TestPartErrorNamesPartition: the error type the degraded path
// surfaces must carry the partition index.
func TestPartErrorNamesPartition(t *testing.T) {
	err := &PartError{Part: 5, Err: errLinkClosed}
	if got := err.Error(); got != "rank partition 5: core: rank link closed" {
		t.Fatalf("PartError.Error() = %q", got)
	}
}
