// Package core implements the FaultyRank algorithm — the paper's primary
// contribution (§III): an iterative, PageRank-inspired computation that
// assigns every metadata object two credibility scores, an ID rank and a
// Property rank, by propagating credit along the point-to / point-back
// edges of the metadata graph. Metadata fields whose final score is
// extremely low lack support from their neighbours and are reported as
// the root cause of an inconsistency, together with a recommended repair.
//
// Scores are maintained in the paper's scale (every vertex starts at 1.0,
// total mass N is conserved); Result.NormalizedID/NormalizedProp divide by
// N to match the presentation of Table II, where the four example ranks
// sum to ~1.0.
package core
