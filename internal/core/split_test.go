package core

import (
	"testing"

	"faultyrank/internal/graph"
)

// twoPlaneEdges models a directory (0) with files 1,2; file 1 has
// stripe objects 3,4 — both namespace and layout planes populated.
func twoPlaneEdges() (int, []graph.Edge) {
	return 5, []graph.Edge{
		{Src: 0, Dst: 1, Kind: graph.KindDirent},
		{Src: 1, Dst: 0, Kind: graph.KindLinkEA},
		{Src: 0, Dst: 2, Kind: graph.KindDirent},
		{Src: 2, Dst: 0, Kind: graph.KindLinkEA},
		{Src: 1, Dst: 3, Kind: graph.KindLOVEA},
		{Src: 3, Dst: 1, Kind: graph.KindFilterFID},
		{Src: 1, Dst: 4, Kind: graph.KindLOVEA},
		{Src: 4, Dst: 1, Kind: graph.KindFilterFID},
	}
}

func TestClassOf(t *testing.T) {
	cases := map[graph.EdgeKind]PropertyClass{
		graph.KindDirent:    ClassNamespace,
		graph.KindLinkEA:    ClassNamespace,
		graph.KindLOVEA:     ClassLayout,
		graph.KindFilterFID: ClassLayout,
		graph.KindGeneric:   ClassOther,
	}
	for k, want := range cases {
		if got := ClassOf(k); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", k, got, want)
		}
	}
	for c := PropertyClass(0); c < NumClasses; c++ {
		if c.String() == "" {
			t.Errorf("class %d unnamed", c)
		}
	}
}

func TestRunSplitConsistentGraph(t *testing.T) {
	n, edges := twoPlaneEdges()
	sr := RunSplit(n, edges, DefaultOptions())
	if len(sr.Classes) != 2 {
		t.Fatalf("classes = %d, want 2 (namespace + layout)", len(sr.Classes))
	}
	rep := DetectSplit(sr, nil, DefaultOptions())
	if len(rep.Suspects) != 0 {
		t.Fatalf("suspects on consistent graph: %+v", rep.Suspects)
	}
	// Activity masks: the stripe objects are layout-only; the directory
	// is namespace-only; file 1 is in both.
	for _, cr := range sr.Classes {
		switch cr.Class {
		case ClassNamespace:
			if cr.Active[3] || cr.Active[4] || !cr.Active[0] || !cr.Active[1] {
				t.Errorf("namespace activity wrong: %v", cr.Active)
			}
		case ClassLayout:
			if cr.Active[0] || cr.Active[2] || !cr.Active[1] || !cr.Active[3] {
				t.Errorf("layout activity wrong: %v", cr.Active)
			}
		}
	}
}

// TestSplitIsolatesPlaneFault is the point of the extension: file 1's
// LinkEA is corrupted (namespace plane) while its layout relations stay
// healthy. The split run must flag exactly the namespace property of
// file 1 and keep its layout property clean.
func TestSplitIsolatesPlaneFault(t *testing.T) {
	n, edges := twoPlaneEdges()
	// Remove 1's LinkEA (1 -> 0).
	var mutated []graph.Edge
	for _, e := range edges {
		if e.Src == 1 && e.Dst == 0 && e.Kind == graph.KindLinkEA {
			continue
		}
		mutated = append(mutated, e)
	}
	opt := DefaultOptions()
	sr := RunSplit(n, mutated, opt)
	rep := DetectSplit(sr, nil, opt)
	if !rep.SuspectedIn(ClassNamespace, 1, FieldProperty) {
		t.Fatalf("namespace property of 1 not flagged: %+v", rep.Suspects)
	}
	if rep.SuspectedIn(ClassLayout, 1, FieldProperty) {
		t.Fatalf("layout property of 1 wrongly flagged: %+v", rep.Suspects)
	}
	// Contrast with the merged run: the healthy layout edges prop up
	// file 1's single blended property rank, so the paper's merged
	// algorithm cannot attribute this fault — the relation falls into
	// the ambiguous bucket (user input needed). This dilution is
	// precisely why the paper lists property separation as future work,
	// and what the split extension fixes.
	b := graph.NewBidirected(n, mutated, 0)
	res := Run(b, opt)
	merged := Detect(b, res, nil, opt)
	if merged.Suspected(1, FieldProperty) {
		t.Log("note: merged run attributed the fault too (threshold-sensitive)")
	} else if len(merged.Ambiguous) == 0 {
		t.Fatalf("merged run neither attributed nor surfaced the relation: %+v", merged)
	}
}

// TestSplitLayoutFault mirrors the isolation check on the other plane.
func TestSplitLayoutFault(t *testing.T) {
	n, edges := twoPlaneEdges()
	// Remove object 4's filter-fid (4 -> 1).
	var mutated []graph.Edge
	for _, e := range edges {
		if e.Src == 4 && e.Dst == 1 && e.Kind == graph.KindFilterFID {
			continue
		}
		mutated = append(mutated, e)
	}
	opt := DefaultOptions()
	sr := RunSplit(n, mutated, opt)
	rep := DetectSplit(sr, nil, opt)
	if !rep.SuspectedIn(ClassLayout, 4, FieldProperty) {
		t.Fatalf("layout property of 4 not flagged: %+v", rep.Suspects)
	}
	if rep.SuspectedIn(ClassNamespace, 1, FieldProperty) ||
		rep.SuspectedIn(ClassNamespace, 0, FieldProperty) {
		t.Fatalf("namespace plane polluted: %+v", rep.Suspects)
	}
}

func TestRunSplitEmptyAndGenericEdges(t *testing.T) {
	sr := RunSplit(3, nil, DefaultOptions())
	if len(sr.Classes) != 0 {
		t.Fatalf("classes on empty edge list: %d", len(sr.Classes))
	}
	sr = RunSplit(3, []graph.Edge{{Src: 0, Dst: 1, Kind: graph.KindGeneric}}, DefaultOptions())
	if len(sr.Classes) != 1 || sr.Classes[0].Class != ClassOther {
		t.Fatalf("generic edges: %+v", sr.Classes)
	}
}
