package core

import (
	"math"

	"faultyrank/internal/graph"
	"faultyrank/internal/par"
)

// Result holds the converged credibility scores of a FaultyRank run.
// IDRank and PropRank are on the paper's scale: every vertex starts at
// 1.0 and total mass N is conserved, so a "healthy" score hovers near
// 1.0 and a fault collapses toward 0.
type Result struct {
	IDRank   []float64
	PropRank []float64

	Iterations int
	Converged  bool
	// Diffs records the max-abs ID-rank change after each iteration
	// (the convergence trace; useful for the ablation benches).
	Diffs []float64
	// Trace is the detailed per-iteration record — populated only when
	// Options.ConvergenceTrace is set, and capped at Options.TraceCap
	// entries (DefaultTraceCap when unset). Values are worker-count
	// insensitive up to float summation order, like the ranks themselves.
	Trace []IterStats
	// Frontier records what the incremental kernel touched; nil for full
	// Run sweeps (including RunIncremental calls that delegated to Run).
	Frontier *FrontierStats
}

// IterStats is one iteration's convergence record.
type IterStats struct {
	// MaxDelta is the max-abs ID-rank change this iteration, on the
	// unsmoothed scale Epsilon is compared against (same as Diffs).
	MaxDelta float64 `json:"max_delta"`
	// SinkMassID is the dangling mass redistributed in phase A, the
	// sweep that produces the ID ranks.
	SinkMassID float64 `json:"sink_mass_id"`
	// SinkMassProp is the dangling mass redistributed in phase B, the
	// sweep that produces the property ranks.
	SinkMassProp float64 `json:"sink_mass_prop"`
}

// NormalizedID returns IDRank divided by N, the sum-to-one presentation
// used by Table II of the paper.
func (r *Result) NormalizedID() []float64 { return normalized(r.IDRank) }

// NormalizedProp returns PropRank divided by N (see NormalizedID).
func (r *Result) NormalizedProp() []float64 { return normalized(r.PropRank) }

func normalized(xs []float64) []float64 {
	n := float64(len(xs))
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / n
	}
	return out
}

// Run executes the FaultyRank iterative algorithm (paper Alg. 1) on a
// bidirected metadata graph.
//
// Each iteration has two phases:
//
//	Phase A (ID ranks, over G):   id'[u]   = Σ_{v→u∈G} prop[v]/outdeg(v)
//	Phase B (Prop ranks, over Gᵣ): prop'[u] = Σ_{u→v∈G} id'[v]·w(u→v)/W(v)
//
// where w is 1 for paired edges and Options.UnpairedWeight for unpaired
// ones, and W(v) is the total weight of v's reversed-graph out-edges
// (§III-D's weighted distribution). Both phases are pull-style gathers
// over CSR adjacency — race-free and deterministic under parallelism.
// Sink mass is redistributed according to Options.SinkPolicy.
func Run(b *graph.Bidirected, opt Options) *Result {
	n := b.N()
	res := &Result{
		IDRank:   make([]float64, n),
		PropRank: make([]float64, n),
	}
	if n == 0 {
		res.Converged = true
		return res
	}
	workers := opt.workers()

	// Initial ranks: 1.0 per vertex (paper §III-C), unless the caller
	// seeds from a previous result (Options.InitialID/InitialProp — the
	// online warm start). A seed of the wrong length is ignored: the
	// graph changed shape and positional ranks would be meaningless.
	// Seeds are rescaled to total mass N — the invariant the uniform
	// start establishes and the iteration conserves. A warm seed
	// assembled from a *different* graph's ranks (vertices added or
	// removed since) carries the wrong total, and an off-mass seed
	// converges to an off-mass scale while the slow mass-redistribution
	// modes crawl; rescaling puts the seed back on the manifold the
	// cold start iterates on.
	if len(opt.InitialID) == n {
		copy(res.IDRank, opt.InitialID)
		rescaleMass(res.IDRank)
	} else {
		for i := 0; i < n; i++ {
			res.IDRank[i] = 1
		}
	}
	if len(opt.InitialProp) == n {
		copy(res.PropRank, opt.InitialProp)
		rescaleMass(res.PropRank)
	} else {
		for i := 0; i < n; i++ {
			res.PropRank[i] = 1
		}
	}

	invOut, invW := rankDivisors(b, opt, workers)

	newID := make([]float64, n)
	newProp := make([]float64, n)
	sigma := opt.Smoothing
	blend := 1 - sigma

	for iter := 0; iter < opt.MaxIterations; iter++ {
		// ---- Phase A: gather property mass along forward edges ------
		// (pull form: iterate u's in-neighbours via the reversed CSR).
		sinkA := sinkMass(res.PropRank, invOut, workers)
		baseA, perSinkA := sinkShares(sinkA, n, opt.SinkPolicy)
		par.ForRange(n, workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				u := uint32(v)
				s, e := b.Rev.EdgeRange(u)
				acc := baseA
				for i := s; i < e; i++ {
					src := b.Rev.Targets[i]
					acc += res.PropRank[src] * invOut[src]
				}
				if perSinkA != 0 && invOut[v] == 0 && b.Fwd.Degree(u) == 0 {
					// SinkToOthers: a sink does not credit itself.
					acc -= res.PropRank[v] * perSinkA
				}
				newID[v] = sigma*res.IDRank[v] + blend*acc
			}
		})

		// ---- Phase B: gather ID mass along reversed edges -----------
		// (pull form: u's in-neighbours in Gᵣ are its out-neighbours in
		// G; the edge weight depends on whether u→v is paired).
		sinkB := sinkMass(newID, invW, workers)
		baseB, perSinkB := sinkShares(sinkB, n, opt.SinkPolicy)
		par.ForRange(n, workers, func(lo, hi int) {
			for v := lo; v < hi; v++ {
				u := uint32(v)
				s, e := b.Fwd.EdgeRange(u)
				acc := baseB
				for i := s; i < e; i++ {
					dst := b.Fwd.Targets[i]
					w := opt.UnpairedWeight
					if b.FwdPaired[i] == 1 {
						w = 1
					}
					acc += newID[dst] * w * invW[dst]
				}
				if perSinkB != 0 && invW[v] == 0 {
					acc -= newID[v] * perSinkB
				}
				newProp[v] = sigma*res.PropRank[v] + blend*acc
			}
		})

		// ---- Convergence: max |Δ id_rank| ---------------------------
		// The smoothing blend scales every step by (1-σ); dividing it
		// back out keeps Epsilon comparable to the paper's unsmoothed
		// criterion regardless of σ.
		diff := maxAbsDiff(res.IDRank, newID, workers)
		if blend > 0 {
			diff /= blend
		}
		res.Diffs = append(res.Diffs, diff)
		if opt.ConvergenceTrace && len(res.Trace) < opt.traceCap() {
			res.Trace = append(res.Trace, IterStats{
				MaxDelta:     diff,
				SinkMassID:   sinkA,
				SinkMassProp: sinkB,
			})
		}
		res.IDRank, newID = newID, res.IDRank
		res.PropRank, newProp = newProp, res.PropRank
		res.Iterations = iter + 1
		if opt.OnIteration != nil {
			opt.OnIteration(res.Iterations, diff)
		}
		if diff < opt.Epsilon {
			res.Converged = true
			break
		}
	}
	return res
}

// rankDivisors computes the two per-vertex inverse divisors the phase
// gathers multiply by:
//
//	invOut[v] = 1/outdeg_G(v), 0 for sinks: phase A divisor.
//	invW[v]   = 1/W(v) with W(v) = paired_in(v) + w·unpaired_in(v),
//	            0 when v has no in-edges (a reversed-graph sink).
func rankDivisors(b *graph.Bidirected, opt Options, workers int) (invOut, invW []float64) {
	n := b.N()
	invOut = make([]float64, n)
	invW = make([]float64, n)
	par.ForRange(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			if d := b.Fwd.Degree(uint32(v)); d > 0 {
				invOut[v] = 1 / float64(d)
			}
			if opt.LeakyDistribution {
				// Ablation: divide by the raw in-degree; unpaired
				// edges leak (1 - UnpairedWeight) of their share.
				if d := b.PairedIn[v] + b.UnpairedIn[v]; d > 0 {
					invW[v] = 1 / float64(d)
				}
			} else {
				w := float64(b.PairedIn[v]) + opt.UnpairedWeight*float64(b.UnpairedIn[v])
				if w > 0 {
					invW[v] = 1 / w
				}
			}
		}
	})
	return invOut, invW
}

// rescaleMass scales xs so it sums to len(xs), the mass-N scale of the
// uniform start. A non-positive sum (degenerate seed) falls back to
// uniform 1.0.
func rescaleMass(xs []float64) {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum <= 0 {
		for i := range xs {
			xs[i] = 1
		}
		return
	}
	scale := float64(len(xs)) / sum
	for i := range xs {
		xs[i] *= scale
	}
}

// sinkBlock is the fixed width of the canonical sink-mass summation
// blocks. Float64 addition is not associative, so the fold order IS the
// definition of the sum: per-block partials accumulate sequentially in
// ascending vertex order, and the partials fold sequentially in
// ascending block order. That order depends only on the vertex
// numbering — never on the worker count or on how the vertices are
// partitioned — which is what lets the distributed coordinator
// (superstep.go) reproduce the single-process ranks bit for bit.
const sinkBlock = 1 << 12

// sinkMass sums rank[v] over vertices whose inverse divisor is zero,
// i.e. the sinks of the graph orientation the divisor belongs to. The
// blocks are independent, so they compute in parallel; the fold order
// is canonical (see sinkBlock).
func sinkMass(rank, invDiv []float64, workers int) float64 {
	n := len(rank)
	if n == 0 {
		return 0
	}
	nb := (n + sinkBlock - 1) / sinkBlock
	partial := make([]float64, nb)
	par.ForRange(nb, workers, func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			partial[blk] = sinkBlockSum(rank, invDiv, blk)
		}
	})
	var sum float64
	for _, p := range partial {
		sum += p
	}
	return sum
}

// sinkBlockSum is one block's partial of the canonical sink-mass sum:
// sequential, ascending vertex order within the block. The incremental
// kernel caches these per block and recomputes only blocks containing
// touched vertices — a whole-block sequential recompute is bit-identical
// to the cold kernel's partial, so the canonical fold is preserved.
func sinkBlockSum(rank, invDiv []float64, blk int) float64 {
	s := blk * sinkBlock
	e := min(s+sinkBlock, len(rank))
	var acc float64
	for i := s; i < e; i++ {
		if invDiv[i] == 0 {
			acc += rank[i]
		}
	}
	return acc
}

// sinkShares converts total sink mass into the per-vertex additive base
// and, for SinkToOthers, the per-sink self-exclusion factor.
func sinkShares(mass float64, n int, policy SinkPolicy) (base, perSink float64) {
	if mass == 0 {
		return 0, 0
	}
	switch policy {
	case SinkToAll:
		return mass / float64(n), 0
	case SinkDrop:
		return 0, 0
	default: // SinkToOthers
		if n <= 1 {
			return 0, 0
		}
		per := 1 / float64(n-1)
		return mass * per, per
	}
}

func maxAbsDiff(a, b []float64, workers int) float64 {
	return par.MapReduceMaxFloat64(len(a), workers, func(i int) float64 {
		return math.Abs(a[i] - b[i])
	})
}
