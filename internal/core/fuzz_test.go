package core

import (
	"fmt"
	"math/rand"
	"testing"

	"faultyrank/internal/graph"
)

// randomConsistentTree builds a random directory-tree-shaped metadata
// graph: every namespace and layout relation paired, like a healthy
// file system. Returns the edges plus, for each vertex, whether it is a
// "file" with layout children.
func randomConsistentTree(r *rand.Rand, nDirs, filesPerDir, maxStripes int) (int, []graph.Edge) {
	var edges []graph.Edge
	next := uint32(1) // 0 is the root
	addPair := func(parent, child uint32, fwd, back graph.EdgeKind) {
		edges = append(edges,
			graph.Edge{Src: parent, Dst: child, Kind: fwd},
			graph.Edge{Src: child, Dst: parent, Kind: back})
	}
	dirs := []uint32{0}
	for d := 0; d < nDirs; d++ {
		parent := dirs[r.Intn(len(dirs))]
		dir := next
		next++
		addPair(parent, dir, graph.KindDirent, graph.KindLinkEA)
		dirs = append(dirs, dir)
	}
	for _, dir := range dirs {
		for f := 0; f < 1+r.Intn(filesPerDir); f++ {
			file := next
			next++
			addPair(dir, file, graph.KindDirent, graph.KindLinkEA)
			for s := 0; s < 1+r.Intn(maxStripes); s++ {
				obj := next
				next++
				addPair(file, obj, graph.KindLOVEA, graph.KindFilterFID)
			}
		}
	}
	return int(next), edges
}

// TestFuzzSingleBrokenRelationNeverSilent: drop one random point-back
// from a random consistent tree. The detector must surface the broken
// relation — as a suspect or, in genuinely underdetermined spots, as an
// ambiguous relation — but never stay silent. This is the safety
// property behind "a checker may be imprecise, but it must not miss".
func TestFuzzSingleBrokenRelationNeverSilent(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		n, edges := randomConsistentTree(r, 2+r.Intn(6), 3, 4)
		// Pick a random point-back edge (LinkEA or filter-fid) to drop.
		var idxs []int
		for i, e := range edges {
			if e.Kind == graph.KindLinkEA || e.Kind == graph.KindFilterFID {
				idxs = append(idxs, i)
			}
		}
		victim := idxs[r.Intn(len(idxs))]
		broken := append(append([]graph.Edge{}, edges[:victim]...), edges[victim+1:]...)

		b := graph.NewBidirected(n, broken, 0)
		opt := DefaultOptions()
		res := Run(b, opt)
		rep := Detect(b, res, nil, opt)
		if len(rep.Suspects) == 0 && len(rep.Ambiguous) == 0 {
			t.Fatalf("seed %d: dropped edge %v->%v (%v) went unnoticed",
				seed, edges[victim].Src, edges[victim].Dst, edges[victim].Kind)
		}
		// If attributed, the attribution must involve one endpoint of
		// the broken relation.
		src, dst := edges[victim].Src, edges[victim].Dst
		for _, s := range rep.Suspects {
			if s.Vertex != src && s.Vertex != dst {
				t.Fatalf("seed %d: suspect %d not an endpoint of broken %d->%d",
					seed, s.Vertex, src, dst)
			}
		}
	}
}

// TestFuzzAttributionIsUsuallyExact: across many random single-fault
// drops, the most common outcome is an exact rank-level attribution of
// the dropped point-back's owner. Pure rank evidence cannot decide
// every case (leaf relations with little surrounding support fall into
// the ambiguous bucket — paper §III-F's "only the users may know");
// the checker's structural passes then resolve most of those, which is
// covered by the campaign tests. Here we bound the rank-only rate.
func TestFuzzAttributionIsUsuallyExact(t *testing.T) {
	exact, total := 0, 0
	for seed := int64(100); seed < 160; seed++ {
		r := rand.New(rand.NewSource(seed))
		n, edges := randomConsistentTree(r, 3, 3, 3)
		var idxs []int
		for i, e := range edges {
			if e.Kind == graph.KindLinkEA || e.Kind == graph.KindFilterFID {
				idxs = append(idxs, i)
			}
		}
		victim := idxs[r.Intn(len(idxs))]
		owner := edges[victim].Src
		broken := append(append([]graph.Edge{}, edges[:victim]...), edges[victim+1:]...)
		b := graph.NewBidirected(n, broken, 0)
		opt := DefaultOptions()
		res := Run(b, opt)
		rep := Detect(b, res, nil, opt)
		total++
		if rep.Suspected(owner, FieldProperty) {
			exact++
		}
	}
	if frac := float64(exact) / float64(total); frac < 0.5 {
		t.Fatalf("exact rank-only attribution rate %.2f (%d/%d) below 0.5", frac, exact, total)
	}
}

// TestFuzzConsistentTreesStayClean: no fault, no findings — across many
// random tree shapes and sizes.
func TestFuzzConsistentTreesStayClean(t *testing.T) {
	for seed := int64(200); seed < 230; seed++ {
		r := rand.New(rand.NewSource(seed))
		n, edges := randomConsistentTree(r, 1+r.Intn(10), 4, 5)
		b := graph.NewBidirected(n, edges, 0)
		opt := DefaultOptions()
		res := Run(b, opt)
		rep := Detect(b, res, nil, opt)
		if len(rep.Suspects) != 0 || len(rep.Ambiguous) != 0 {
			msg := ""
			for _, s := range rep.Suspects {
				msg += fmt.Sprintf(" v%d.%v=%.3f", s.Vertex, s.Field, s.Score)
			}
			t.Fatalf("seed %d (n=%d): false positives:%s ambiguous=%d",
				seed, n, msg, len(rep.Ambiguous))
		}
	}
}
