package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"faultyrank/internal/graph"
)

func randomGraph(r *rand.Rand, n, m int) *graph.Bidirected {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n)),
			Kind: graph.EdgeKind(r.Intn(5)),
		}
	}
	return graph.NewBidirected(n, edges, 0)
}

// symmetricGraph returns a fully paired random graph: every point-to has
// its point-back, i.e. a consistent file system image.
func symmetricGraph(r *rand.Rand, n, pairs int) *graph.Bidirected {
	var edges []graph.Edge
	for i := 0; i < pairs; i++ {
		u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v, Kind: graph.KindDirent},
			graph.Edge{Src: v, Dst: u, Kind: graph.KindLinkEA})
	}
	return graph.NewBidirected(n, edges, 0)
}

func TestRunEmptyGraph(t *testing.T) {
	b := graph.NewBidirected(0, nil, 0)
	res := Run(b, DefaultOptions())
	if !res.Converged || len(res.IDRank) != 0 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestRunSingleVertex(t *testing.T) {
	b := graph.NewBidirected(1, nil, 0)
	res := Run(b, DefaultOptions())
	if !res.Converged {
		t.Fatal("single vertex should converge")
	}
}

func TestRunEdgelessGraph(t *testing.T) {
	// All vertices are sinks; mass circulates via sink redistribution.
	b := graph.NewBidirected(5, nil, 0)
	for _, policy := range []SinkPolicy{SinkToOthers, SinkToAll} {
		opt := DefaultOptions()
		opt.SinkPolicy = policy
		res := Run(b, opt)
		var sum float64
		for _, x := range res.IDRank {
			sum += x
		}
		if math.Abs(sum-5) > 1e-9 {
			t.Errorf("policy %v: mass = %f, want 5", policy, sum)
		}
	}
}

// TestMassConservationProperty: with conserving sink policies, the total
// ID and Property mass stays N through arbitrary graphs and iterations.
func TestMassConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(60)
		b := randomGraph(r, n, r.Intn(300))
		for _, policy := range []SinkPolicy{SinkToOthers, SinkToAll} {
			opt := DefaultOptions()
			opt.SinkPolicy = policy
			opt.Epsilon = 1e-9
			opt.MaxIterations = 50
			res := Run(b, opt)
			var idSum, propSum float64
			for i := range res.IDRank {
				idSum += res.IDRank[i]
				propSum += res.PropRank[i]
			}
			if math.Abs(idSum-float64(n)) > 1e-6*float64(n) {
				return false
			}
			if math.Abs(propSum-float64(n)) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSinkDropLosesMass: the ablation policy must strictly decay mass on
// any graph that has at least one sink holding rank.
func TestSinkDropLosesMass(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}} // 2 is a sink
	b := graph.NewBidirected(3, edges, 0)
	opt := DefaultOptions()
	opt.SinkPolicy = SinkDrop
	opt.MaxIterations = 5
	opt.Epsilon = 0
	res := Run(b, opt)
	var sum float64
	for _, x := range res.IDRank {
		sum += x
	}
	if sum >= 3 {
		t.Fatalf("mass %f should have decayed below 3", sum)
	}
}

// TestConsistentGraphNoSuspects: on a fully paired graph FaultyRank must
// not flag anything, regardless of degree skew (the paper stresses that
// low-degree but consistent vertices stay healthy).
func TestConsistentGraphNoSuspects(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(80)
		b := symmetricGraph(r, n, r.Intn(200))
		opt := DefaultOptions()
		res := Run(b, opt)
		rep := Detect(b, res, nil, opt)
		return len(rep.Suspects) == 0 && len(rep.Repairs) == 0 && len(rep.Ambiguous) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterministicForFixedWorkers: identical inputs and worker count
// produce bit-identical ranks.
func TestDeterministicForFixedWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := randomGraph(r, 300, 2000)
	opt := DefaultOptions()
	opt.Workers = 4
	a := Run(b, opt)
	c := Run(b, opt)
	for i := range a.IDRank {
		if a.IDRank[i] != c.IDRank[i] || a.PropRank[i] != c.PropRank[i] {
			t.Fatalf("nondeterministic at vertex %d", i)
		}
	}
}

// TestWorkerCountInsensitive: ranks agree across worker counts to within
// floating-point reduction tolerance.
func TestWorkerCountInsensitive(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	b := randomGraph(r, 500, 4000)
	opt := DefaultOptions()
	opt.Workers = 1
	base := Run(b, opt)
	for _, w := range []int{2, 3, 8} {
		opt.Workers = w
		res := Run(b, opt)
		if res.Iterations != base.Iterations {
			t.Fatalf("workers=%d iterations %d != %d", w, res.Iterations, base.Iterations)
		}
		for i := range base.IDRank {
			if math.Abs(res.IDRank[i]-base.IDRank[i]) > 1e-9 {
				t.Fatalf("workers=%d idrank[%d] drifted: %g vs %g", w, i, res.IDRank[i], base.IDRank[i])
			}
		}
	}
}

// TestConvergenceTrace: diffs decrease overall and the run terminates in
// fewer than 20 iterations at the paper's epsilon on realistic graphs.
func TestConvergenceTrace(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	b := symmetricGraph(r, 200, 400)
	opt := DefaultOptions()
	res := Run(b, opt)
	if !res.Converged {
		t.Fatal("not converged")
	}
	if res.Iterations >= 20 {
		t.Errorf("iterations = %d, paper reports <20", res.Iterations)
	}
	if len(res.Diffs) != res.Iterations {
		t.Errorf("diff trace length %d != iterations %d", len(res.Diffs), res.Iterations)
	}
	last := res.Diffs[len(res.Diffs)-1]
	if last >= opt.Epsilon {
		t.Errorf("final diff %f >= epsilon", last)
	}
}

// TestMaxIterationsCap: a tiny cap stops the loop unconverged.
func TestMaxIterationsCap(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	b := randomGraph(r, 100, 500)
	opt := DefaultOptions()
	opt.Epsilon = 0 // unreachable
	opt.MaxIterations = 3
	res := Run(b, opt)
	if res.Converged || res.Iterations != 3 {
		t.Fatalf("converged=%v iterations=%d", res.Converged, res.Iterations)
	}
}

// TestNormalizedSumsToOne: the Table II presentation sums to ~1.
func TestNormalizedSumsToOne(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	b := randomGraph(r, 64, 256)
	res := Run(b, DefaultOptions())
	var s float64
	for _, x := range res.NormalizedID() {
		s += x
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("normalized id sum = %f", s)
	}
	s = 0
	for _, x := range res.NormalizedProp() {
		s += x
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("normalized prop sum = %f", s)
	}
}

// TestUnpairedWeightOne matches the unweighted distribution the paper's
// Table II numbers imply (see sweep_test.go): with weight 1.0 the run
// must still isolate the same two faulty fields on the Fig. 3 graph.
func TestUnpairedWeightOne(t *testing.T) {
	n, edges := fig3Edges()
	b := graph.NewBidirected(n, edges, 0)
	opt := DefaultOptions()
	opt.UnpairedWeight = 1.0
	res := Run(b, opt)
	rep := Detect(b, res, nil, opt)
	if !rep.Suspected(2, FieldProperty) || !rep.Suspected(3, FieldID) {
		t.Fatalf("suspects: %+v", rep.Suspects)
	}
}

func TestOptionsHelpers(t *testing.T) {
	var o Options
	if o.workers() <= 0 {
		t.Error("workers() must be positive for zero Options")
	}
	if o.attributionSlack() != 2.0 {
		t.Errorf("default slack = %f", o.attributionSlack())
	}
	o.AttributionSlack = 1.5
	if o.attributionSlack() != 1.5 {
		t.Error("explicit slack ignored")
	}
	for _, p := range []SinkPolicy{SinkToOthers, SinkToAll, SinkDrop, SinkPolicy(9)} {
		if p.String() == "" {
			t.Error("empty sink policy name")
		}
	}
}
