package core

import "faultyrank/internal/par"

// SinkPolicy selects how the rank mass held by sink vertices (no outgoing
// edges in the graph being walked) is redistributed each iteration.
// The paper (§III-D) assumes sinks "point to all other vertices".
type SinkPolicy uint8

const (
	// SinkToOthers spreads each sink's mass uniformly over the other
	// N-1 vertices (the paper's wording; the default).
	SinkToOthers SinkPolicy = iota
	// SinkToAll spreads sink mass over all N vertices, self included —
	// the classic PageRank dangling-node treatment.
	SinkToAll
	// SinkDrop discards sink mass (ablation only; total mass decays).
	SinkDrop
)

func (p SinkPolicy) String() string {
	switch p {
	case SinkToOthers:
		return "others"
	case SinkToAll:
		return "all"
	case SinkDrop:
		return "drop"
	default:
		return "sink(?)"
	}
}

// Options configures a FaultyRank run. The zero value is not valid; use
// DefaultOptions, which reproduces the paper's constants.
type Options struct {
	// Epsilon is the convergence bound: iteration stops when the maximum
	// absolute per-vertex change of the ID rank between two consecutive
	// iterations falls below it. The paper uses ε=0.1 on ranks
	// initialised to 1.0, reporting convergence in <20 iterations.
	Epsilon float64

	// MaxIterations caps the loop regardless of convergence.
	MaxIterations int

	// UnpairedWeight is the relative weight of an unpaired edge in the
	// reversed-graph distribution (§III-D). The paper fixes it at 1/10:
	// a property that points at a credible ID without receiving the
	// acknowledging point-back earns only a tenth of the credit.
	UnpairedWeight float64

	// LeakyDistribution changes how the weighted distribution is
	// normalised. The default (false) follows the paper's Fig. 4
	// exactly: a vertex's ID mass is split among its referrers in
	// proportion to edge weights, so all of it is always handed out —
	// with the side effect that a vertex referenced by a *single*
	// unpaired pointer still passes its full mass back, propping up a
	// misdirected pointer ("phantom bounce"). With true, shares are
	// weight/in-degree instead: discounted edges leak their remainder,
	// so the property rank of a lone wishful pointer decays by
	// UnpairedWeight per iteration and collapses on its own. Kept as an
	// ablation; the default checker closes the same gap structurally.
	LeakyDistribution bool

	// SinkPolicy picks the dangling-mass treatment for both phases.
	SinkPolicy SinkPolicy

	// Smoothing blends each update with the previous iterate:
	// rank' = Smoothing·rank + (1-Smoothing)·gathered. It leaves the
	// fixed point untouched but damps the period-2 oscillation that
	// pure power iteration exhibits on tree-shaped metadata graphs
	// (directory trees are near-bipartite), which is what lets runs
	// converge in the <20 iterations the paper reports. 0 disables it
	// (the paper-literal update); negative is invalid.
	Smoothing float64

	// Threshold classifies a metadata field as faulty during detection:
	// fields of S_chk vertices whose score (on the mass-N scale, where
	// the mean is 1.0) falls below it are root-cause candidates. The
	// paper applies 0.1 to sum-normalised ranks of its 4-vertex example
	// (mean 0.25), i.e. 0.4 on the mass-N scale used here.
	Threshold float64

	// AttributionSlack widens root-cause attribution: within one
	// unpaired relation, fields below Threshold whose score is within
	// AttributionSlack× of the relation's minimum are co-flagged. 1.0
	// flags only the strict minimum; <=0 uses the default (2.0).
	AttributionSlack float64

	// Workers bounds the goroutines used by the parallel kernels;
	// <=0 means GOMAXPROCS.
	Workers int

	// InitialID and InitialProp seed the iteration instead of the
	// paper's uniform 1.0 start — the warm-start hook for incremental
	// checkers (package online): after a small metadata delta the
	// previous check's converged ranks are already near the new fixed
	// point, so seeding from them cuts the iteration count to a handful.
	// Each is used only when its length equals the graph's vertex count;
	// nil (or a stale length) falls back to the uniform start. The fixed
	// point itself does not depend on the seed, so a warm run converges
	// to the same ranks a cold run does (within Epsilon).
	InitialID, InitialProp []float64

	// ConvergenceTrace enables Result.Trace, the per-iteration record of
	// max-delta and redistributed sink mass. Off by default: the trace is
	// diagnostic output (run manifests, benches), not part of the
	// algorithm, and Result.Diffs already carries the bare convergence
	// series.
	ConvergenceTrace bool

	// TraceCap bounds Result.Trace when ConvergenceTrace is set; <=0 uses
	// DefaultTraceCap. Iterations beyond the cap still run and still
	// append to Diffs — only the detailed trace stops growing.
	TraceCap int

	// FrontierSlack scales RunIncremental's propagation bound: a vertex
	// whose rank moved by more than Epsilon·FrontierSlack (on the
	// unsmoothed Epsilon scale) re-activates its dependents. Smaller is
	// more conservative (larger frontiers, closer tracking of the cold
	// sweep); <=0 uses DefaultFrontierSlack. The verification sweep that
	// gates convergence makes the final criterion exact regardless.
	FrontierSlack float64

	// FrontierSaturation is the fraction of vertices beyond which
	// RunIncremental stops maintaining frontiers and iterates full
	// sweeps for the rest of the run — past that point the bookkeeping
	// costs more than it skips. <=0 uses DefaultFrontierSaturation;
	// >=1 never saturates.
	FrontierSaturation float64

	// OnIteration, when set, is called once per completed iteration (or
	// coordinated superstep) with the 1-based iteration number and the
	// convergence diff on the unsmoothed Epsilon scale. It is the
	// observability hook the checker's flight recorder uses to journal
	// rank progress without coupling the kernel to the telemetry
	// package. It runs on the iterating goroutine — keep it cheap.
	OnIteration func(iter int, maxDelta float64)
}

// DefaultFrontierSlack is the propagation-bound fraction of Epsilon used
// when Options.FrontierSlack is unset. 1/8 keeps the per-vertex drift a
// frontier iteration may silently accumulate well under the convergence
// bound, so the verification sweep rarely has to re-open the frontier.
const DefaultFrontierSlack = 0.125

// DefaultFrontierSaturation is the active fraction of N at which
// RunIncremental falls back to full sweeps when Options.FrontierSaturation
// is unset.
const DefaultFrontierSaturation = 0.25

func (o Options) frontierSlack() float64 {
	if o.FrontierSlack <= 0 {
		return DefaultFrontierSlack
	}
	return o.FrontierSlack
}

func (o Options) frontierSaturation() float64 {
	if o.FrontierSaturation <= 0 {
		return DefaultFrontierSaturation
	}
	return o.FrontierSaturation
}

// DefaultTraceCap bounds Result.Trace when Options.TraceCap is unset.
// Runs converge in <20 iterations (paper §III), so 64 records every
// realistic run while keeping a pathological non-converging loop from
// growing the trace without bound.
const DefaultTraceCap = 64

// DefaultOptions returns the configuration used throughout the paper's
// evaluation: ε=0.1, unpaired weight 1/10, sink mass to the other N-1
// vertices, detection threshold 0.1×N-normalised (0.4 on the mean-1 scale).
func DefaultOptions() Options {
	return Options{
		Epsilon:          0.1,
		MaxIterations:    100,
		UnpairedWeight:   0.1,
		SinkPolicy:       SinkToOthers,
		Smoothing:        0.5,
		Threshold:        0.4,
		AttributionSlack: 2.0,
		Workers:          par.DefaultWorkers(),
	}
}

func (o Options) attributionSlack() float64 {
	if o.AttributionSlack <= 0 {
		return 2.0
	}
	return o.AttributionSlack
}

func (o Options) traceCap() int {
	if o.TraceCap <= 0 {
		return DefaultTraceCap
	}
	return o.TraceCap
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return par.DefaultWorkers()
	}
	return o.Workers
}
