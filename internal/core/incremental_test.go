package core

import (
	"math"
	"math/rand"
	"testing"

	"faultyrank/internal/graph"
)

// mutateEdges applies k random edge removals and k random additions to
// edges, returning the new edge list plus the dirty vertex set the
// online delta path would produce: every endpoint of a changed edge.
func mutateEdges(r *rand.Rand, n int, edges []graph.Edge, k int) ([]graph.Edge, []uint32) {
	out := append([]graph.Edge(nil), edges...)
	seen := map[uint32]struct{}{}
	touch := func(e graph.Edge) {
		seen[e.Src] = struct{}{}
		seen[e.Dst] = struct{}{}
	}
	for i := 0; i < k && len(out) > 0; i++ {
		j := r.Intn(len(out))
		touch(out[j])
		out[j] = out[len(out)-1]
		out = out[:len(out)-1]
	}
	for i := 0; i < k; i++ {
		e := graph.Edge{
			Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n)),
			Kind: graph.EdgeKind(r.Intn(5)),
		}
		touch(e)
		out = append(out, e)
	}
	dirty := make([]uint32, 0, len(seen))
	for v := range seen {
		dirty = append(dirty, v)
	}
	return out, dirty
}

func randomEdges(r *rand.Rand, n, m int) []graph.Edge {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: uint32(r.Intn(n)), Dst: uint32(r.Intn(n)),
			Kind: graph.EdgeKind(r.Intn(5)),
		}
	}
	return edges
}

// TestIncrementalMatchesWarmAfterDelta: after a small edge delta, a
// frontier run seeded from the previous fixed point lands within Epsilon
// (per vertex) of the warm full-sweep Run it replaces, in the same
// number of iterations. (Warm-vs-cold divergence at loose Epsilon is a
// property of warm starting itself, present since the warm path landed;
// finding-for-finding equivalence against cold runs is asserted at the
// online layer, where classification is what matters.)
func TestIncrementalMatchesWarmAfterDelta(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(400)
		edges := randomEdges(r, n, 3*n)
		g1 := graph.NewBidirected(n, edges, 0)
		opt := DefaultOptions()
		prev := Run(g1, opt)

		edges2, dirty := mutateEdges(r, n, edges, 1+r.Intn(5))
		g2 := graph.NewBidirected(n, edges2, 0)

		warmOpt := opt
		warmOpt.InitialID = prev.IDRank
		warmOpt.InitialProp = prev.PropRank
		warm := Run(g2, warmOpt)
		inc := RunIncremental(g2, warmOpt, dirty)
		if !inc.Converged {
			t.Fatalf("seed %d: incremental run did not converge (%d iterations)", seed, inc.Iterations)
		}
		if inc.Frontier == nil {
			t.Fatalf("seed %d: incremental run has no frontier stats", seed)
		}
		if inc.Iterations > warm.Iterations+2 {
			t.Errorf("seed %d: incremental took %d iterations, warm full run %d",
				seed, inc.Iterations, warm.Iterations)
		}
		for v := range warm.IDRank {
			if d := math.Abs(inc.IDRank[v] - warm.IDRank[v]); d > opt.Epsilon {
				t.Fatalf("seed %d: vertex %d id rank diverged by %g (inc %g, warm %g)",
					seed, v, d, inc.IDRank[v], warm.IDRank[v])
			}
			if d := math.Abs(inc.PropRank[v] - warm.PropRank[v]); d > opt.Epsilon {
				t.Fatalf("seed %d: vertex %d prop rank diverged by %g", seed, v, d)
			}
		}
	}
}

// TestIncrementalTightEpsilon: at a much tighter Epsilon the propagation
// bound shrinks with it, so the frontier run must track the warm
// full-sweep trajectory to a tolerance orders of magnitude below any
// classification threshold.
func TestIncrementalTightEpsilon(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		r := rand.New(rand.NewSource(100 + seed))
		n := 50 + r.Intn(150)
		edges := randomEdges(r, n, 3*n)
		g1 := graph.NewBidirected(n, edges, 0)
		opt := DefaultOptions()
		opt.Epsilon = 1e-9
		opt.MaxIterations = 20000
		prev := Run(g1, opt)
		if !prev.Converged {
			t.Fatalf("seed %d: tight-epsilon cold run on g1 did not converge", seed)
		}

		edges2, dirty := mutateEdges(r, n, edges, 2)
		g2 := graph.NewBidirected(n, edges2, 0)
		warmOpt := opt
		warmOpt.InitialID = prev.IDRank
		warmOpt.InitialProp = prev.PropRank
		warm := Run(g2, warmOpt)
		if !warm.Converged {
			t.Fatalf("seed %d: tight-epsilon warm run on g2 did not converge", seed)
		}

		inc := RunIncremental(g2, warmOpt, dirty)
		if !inc.Converged {
			t.Fatalf("seed %d: incremental run did not converge", seed)
		}
		for v := range warm.IDRank {
			if d := math.Abs(inc.IDRank[v] - warm.IDRank[v]); d > 1e-9 {
				t.Fatalf("seed %d: vertex %d id rank off by %g at tight epsilon", seed, v, d)
			}
			if d := math.Abs(inc.PropRank[v] - warm.PropRank[v]); d > 1e-9 {
				t.Fatalf("seed %d: vertex %d prop rank off by %g at tight epsilon", seed, v, d)
			}
		}
	}
}

// TestIncrementalWorkerDeterminism: the frontier kernel keeps the
// canonical sink fold, so results are bit-identical for any worker count.
func TestIncrementalWorkerDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 300
	edges := randomEdges(r, n, 900)
	g1 := graph.NewBidirected(n, edges, 0)
	opt := DefaultOptions()
	prev := Run(g1, opt)
	edges2, dirty := mutateEdges(r, n, edges, 4)
	g2 := graph.NewBidirected(n, edges2, 0)

	var ref *Result
	for _, w := range []int{1, 2, 7} {
		wopt := opt
		wopt.Workers = w
		wopt.InitialID = prev.IDRank
		wopt.InitialProp = prev.PropRank
		got := RunIncremental(g2, wopt, dirty)
		if ref == nil {
			ref = got
			continue
		}
		if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
			t.Fatalf("workers=%d: iterations %d/%v, want %d/%v",
				w, got.Iterations, got.Converged, ref.Iterations, ref.Converged)
		}
		for v := range ref.IDRank {
			if got.IDRank[v] != ref.IDRank[v] || got.PropRank[v] != ref.PropRank[v] {
				t.Fatalf("workers=%d: vertex %d ranks differ bitwise", w, v)
			}
		}
	}
}

// TestIncrementalSaturationFallback: a delta touching more than the
// saturation fraction makes the run fall back to full sweeps — and a
// fully saturated incremental run is bit-identical to the plain warm
// Run it replaces.
func TestIncrementalSaturationFallback(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 200
	edges := randomEdges(r, n, 600)
	g1 := graph.NewBidirected(n, edges, 0)
	opt := DefaultOptions()
	opt.FrontierSaturation = 0.05
	prev := Run(g1, opt)
	edges2, dirty := mutateEdges(r, n, edges, 80)
	g2 := graph.NewBidirected(n, edges2, 0)

	warmOpt := opt
	warmOpt.InitialID = prev.IDRank
	warmOpt.InitialProp = prev.PropRank
	inc := RunIncremental(g2, warmOpt, dirty)
	if !inc.Frontier.Saturated {
		t.Fatalf("expected saturation with %d dirty vertices over cap %g·%d",
			len(dirty), opt.FrontierSaturation, n)
	}
	full := Run(g2, warmOpt)
	if inc.Iterations != full.Iterations || inc.Converged != full.Converged {
		t.Fatalf("saturated run: %d iterations/%v, full warm run: %d/%v",
			inc.Iterations, inc.Converged, full.Iterations, full.Converged)
	}
	for v := range full.IDRank {
		if inc.IDRank[v] != full.IDRank[v] || inc.PropRank[v] != full.PropRank[v] {
			t.Fatalf("saturated run diverges bitwise from warm Run at vertex %d", v)
		}
	}
}

// TestIncrementalEmptyDelta: with no dirty vertices and an already
// converged warm seed, the run spends only the verification sweep — the
// frontier itself touches nothing.
func TestIncrementalEmptyDelta(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 150
	g := randomGraph(r, n, 450)
	opt := DefaultOptions()
	prev := Run(g, opt)
	if !prev.Converged {
		t.Fatal("cold run did not converge")
	}

	warmOpt := opt
	warmOpt.InitialID = prev.IDRank
	warmOpt.InitialProp = prev.PropRank
	inc := RunIncremental(g, warmOpt, nil)
	if !inc.Converged {
		t.Fatal("incremental run on an unchanged graph did not converge")
	}
	if inc.Frontier.Seeds != 0 || inc.Frontier.MaxActive != 0 {
		t.Fatalf("expected an empty frontier, got %+v", inc.Frontier)
	}
	// One quiet frontier iteration, then the full verification sweep.
	if inc.Frontier.FullSweeps < 2 {
		t.Fatalf("expected the verification sweep to run, got %+v", inc.Frontier)
	}
	if want := int64(2 * n); inc.Frontier.Touched > want {
		t.Fatalf("touched %d vertices, want <= %d (verification only)", inc.Frontier.Touched, want)
	}
}

// TestIncrementalDelegatesWithoutWarmState: no warm vectors means there
// is nothing to be incremental against; the call must behave exactly
// like Run.
func TestIncrementalDelegatesWithoutWarmState(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomGraph(r, 80, 240)
	opt := DefaultOptions()
	cold := Run(g, opt)
	inc := RunIncremental(g, opt, []uint32{1, 2, 3})
	if inc.Frontier != nil {
		t.Fatal("delegated run should not report frontier stats")
	}
	if inc.Iterations != cold.Iterations {
		t.Fatalf("delegated run took %d iterations, cold %d", inc.Iterations, cold.Iterations)
	}
	for v := range cold.IDRank {
		if inc.IDRank[v] != cold.IDRank[v] {
			t.Fatalf("delegated run differs at vertex %d", v)
		}
	}
}

// TestIncrementalOutOfRangeDirtyIgnored: dirty entries beyond N (stale
// GIDs from a shrunken graph) are skipped, not crashed on.
func TestIncrementalOutOfRangeDirtyIgnored(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	g := randomGraph(r, 40, 120)
	opt := DefaultOptions()
	prev := Run(g, opt)
	warmOpt := opt
	warmOpt.InitialID = prev.IDRank
	warmOpt.InitialProp = prev.PropRank
	inc := RunIncremental(g, warmOpt, []uint32{0, 39, 40, 1 << 30})
	if !inc.Converged {
		t.Fatal("run did not converge")
	}
	if inc.Frontier.Seeds != 2 {
		t.Fatalf("expected 2 valid seeds, got %d", inc.Frontier.Seeds)
	}
}
