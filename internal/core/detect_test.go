package core

import (
	"testing"

	"faultyrank/internal/graph"
)

// chainGraph builds a healthy "directory tree": root 0 with children
// 1..k, all relations paired, then applies a mutation function to the
// edge list before building.
func treeEdges(k int) []graph.Edge {
	var edges []graph.Edge
	for c := uint32(1); c <= uint32(k); c++ {
		edges = append(edges,
			graph.Edge{Src: 0, Dst: c, Kind: graph.KindDirent},
			graph.Edge{Src: c, Dst: 0, Kind: graph.KindLinkEA})
	}
	return edges
}

// TestDetectMissingPointBack: drop one child's LinkEA; that child's
// property must be the sole suspect.
func TestDetectMissingPointBack(t *testing.T) {
	const k = 5
	edges := treeEdges(k)
	// remove child 3's point-back
	var mutated []graph.Edge
	for _, e := range edges {
		if e.Src == 3 && e.Dst == 0 {
			continue
		}
		mutated = append(mutated, e)
	}
	b := graph.NewBidirected(k+1, mutated, 0)
	opt := DefaultOptions()
	res := Run(b, opt)
	rep := Detect(b, res, nil, opt)
	if len(rep.Suspects) != 1 || !rep.Suspected(3, FieldProperty) {
		t.Fatalf("suspects: %+v", rep.Suspects)
	}
	want := Repair{Target: 3, Source: 0, Op: RepairSetProperty, Kind: graph.KindLinkEA}
	if len(rep.Repairs) != 1 || rep.Repairs[0] != want {
		t.Fatalf("repairs: %+v, want %+v", rep.Repairs, want)
	}
	if rep.Checked != 2 { // vertices 0 and 3 touch the unpaired edge
		t.Errorf("checked = %d, want 2", rep.Checked)
	}
}

// TestDetectWipedProperties: wipe the root's entire DIRENT (paper Fig. 7
// dangling case 1). The root's property rank collapses to ~0 and every
// child's unanswered point-back attributes to it.
func TestDetectWipedProperties(t *testing.T) {
	const k = 4
	var edges []graph.Edge
	for c := uint32(1); c <= k; c++ {
		edges = append(edges, graph.Edge{Src: c, Dst: 0, Kind: graph.KindLinkEA})
	}
	b := graph.NewBidirected(k+1, edges, 0)
	opt := DefaultOptions()
	res := Run(b, opt)
	if res.PropRank[0] > 0.05 {
		t.Errorf("wiped property rank = %f, want ~0", res.PropRank[0])
	}
	rep := Detect(b, res, nil, opt)
	if !rep.Suspected(0, FieldProperty) {
		t.Fatalf("root property not suspected: %+v", rep.Suspects)
	}
	// One set-property repair per child, rebuilding the DIRENT entries.
	var rebuilt int
	for _, r := range rep.Repairs {
		if r.Target == 0 && r.Op == RepairSetProperty && r.Kind == graph.KindDirent {
			rebuilt++
		}
	}
	if rebuilt != k {
		t.Errorf("rebuilt %d dirent entries, want %d; repairs=%+v", rebuilt, k, rep.Repairs)
	}
}

// TestDetectDanglingToPhantom: the root also references a FID that no
// scanned object carries (child with corrupted id). The phantom's id is
// weak (single referrer), the orphaned object's id collapses; both
// surface, and the orphan receives a set-id recommendation.
func TestDetectDanglingToPhantom(t *testing.T) {
	// Vertices: 0 root, 1-2 healthy children, 3 orphan (wrong id),
	// 4 phantom (the FID root still references).
	edges := treeEdges(2)
	edges = append(edges,
		graph.Edge{Src: 0, Dst: 4, Kind: graph.KindDirent}, // dangling
		graph.Edge{Src: 3, Dst: 0, Kind: graph.KindLinkEA}) // orphan points back
	present := []bool{true, true, true, true, false}
	b := graph.NewBidirected(5, edges, 0)
	opt := DefaultOptions()
	res := Run(b, opt)
	rep := Detect(b, res, present, opt)
	if !rep.Suspected(3, FieldID) {
		t.Fatalf("orphan id not suspected: %+v", rep.Suspects)
	}
	// No property repair may target the phantom.
	for _, r := range rep.Repairs {
		if r.Target == 4 && r.Op == RepairSetProperty {
			t.Errorf("repair targets phantom property: %+v", r)
		}
	}
}

// TestDetectAmbiguousTwoNodeMismatch: with only two vertices and one
// unpaired edge, the paper says the root cause is a mystery — detection
// must report the relation as ambiguous rather than guess.
func TestDetectAmbiguousTwoNodeMismatch(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1, Kind: graph.KindDirent}}
	b := graph.NewBidirected(2, edges, 0)
	opt := DefaultOptions()
	res := Run(b, opt)
	rep := Detect(b, res, nil, opt)
	// Whatever the scores do on this degenerate graph, the relation must
	// be surfaced one way or the other, and never silently dropped.
	if len(rep.Suspects) == 0 && len(rep.Ambiguous) == 0 {
		t.Fatalf("relation lost: %+v", rep)
	}
	if rep.Checked != 2 {
		t.Errorf("checked = %d, want 2", rep.Checked)
	}
}

// TestDetectDoubleReference: two parents claim the same child; the child
// answers only one. The bogus claimer's pointer is attributed, not the
// child's fields.
func TestDetectDoubleReference(t *testing.T) {
	// 0 legitimate parent <-> 2 child (paired); 1 impostor -> 2 unpaired.
	// Both parents are anchored by their own healthy children (3 for 0,
	// 4 for 1) so their ids/properties have support.
	edges := []graph.Edge{
		{Src: 0, Dst: 2, Kind: graph.KindDirent},
		{Src: 2, Dst: 0, Kind: graph.KindLinkEA},
		{Src: 0, Dst: 3, Kind: graph.KindDirent},
		{Src: 3, Dst: 0, Kind: graph.KindLinkEA},
		{Src: 1, Dst: 4, Kind: graph.KindDirent},
		{Src: 4, Dst: 1, Kind: graph.KindLinkEA},
		{Src: 1, Dst: 2, Kind: graph.KindDirent}, // duplicate claim
	}
	b := graph.NewBidirected(5, edges, 0)
	opt := DefaultOptions()
	res := Run(b, opt)
	rep := Detect(b, res, nil, opt)
	// The child 2 is doubly referenced but consistent with parent 0;
	// its fields must not be flagged.
	if rep.Suspected(2, FieldID) || rep.Suspected(2, FieldProperty) {
		t.Errorf("healthy child flagged: %+v", rep.Suspects)
	}
	// The duplicate relation is either attributed to 1's property or
	// reported ambiguous for the user — never attributed to the child.
	attributed := rep.Suspected(1, FieldProperty)
	ambiguous := false
	for _, a := range rep.Ambiguous {
		if a.From == 1 && a.To == 2 {
			ambiguous = true
		}
	}
	if !attributed && !ambiguous {
		t.Fatalf("duplicate claim unaccounted: %+v", rep)
	}
}

func TestFieldAndRepairOpStrings(t *testing.T) {
	if FieldID.String() != "id" || FieldProperty.String() != "property" {
		t.Error("Field strings wrong")
	}
	ops := map[RepairOp]string{
		RepairSetProperty: "set-property",
		RepairSetID:       "set-id",
		RepairDropPointer: "drop-pointer",
		RepairOp(99):      "repair(?)",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestReportSuspectedHelper(t *testing.T) {
	rep := &Report{Suspects: []Suspect{{Vertex: 7, Field: FieldID}}}
	if !rep.Suspected(7, FieldID) || rep.Suspected(7, FieldProperty) || rep.Suspected(8, FieldID) {
		t.Error("Suspected helper wrong")
	}
}
