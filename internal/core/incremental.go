package core

import (
	"math"

	"faultyrank/internal/graph"
	"faultyrank/internal/par"
)

// FrontierStats records what RunIncremental actually recomputed — the
// evidence that a delta check paid O(frontier), not O(graph), per
// iteration. Touched is the headline number: the cold kernel would have
// touched 2·N·Iterations vertices.
type FrontierStats struct {
	// Seeds is the number of dirty vertices the frontier was seeded from.
	Seeds int `json:"seeds"`
	// FullSweeps counts full O(N) phase sweeps (a cold-equivalent
	// iteration is two). The verification sweep that confirms
	// convergence always contributes at least two.
	FullSweeps int `json:"full_sweeps"`
	// MaxActive is the largest frontier a non-full phase processed.
	MaxActive int `json:"max_active"`
	// Touched is the total number of per-vertex equation evaluations
	// across all phases of the run (full sweeps included).
	Touched int64 `json:"touched"`
	// Saturated reports that the frontier grew past
	// Options.FrontierSaturation·N and the run fell back to full sweeps.
	Saturated bool `json:"saturated"`
}

// vertSet is an O(1)-membership set with a dense iteration list. Marking
// is sequential; the list is consumed by parallel phase kernels (reads
// only). Order of the list never affects results: phase updates write
// disjoint vertices and the max-delta reduction is order-independent.
type vertSet struct {
	in   []bool
	list []uint32
}

func newVertSet(n int) *vertSet { return &vertSet{in: make([]bool, n)} }

func (s *vertSet) mark(v uint32) {
	if !s.in[v] {
		s.in[v] = true
		s.list = append(s.list, v)
	}
}

func (s *vertSet) clear() {
	for _, v := range s.list {
		s.in[v] = false
	}
	s.list = s.list[:0]
}

// blkSet tracks which canonical sink blocks contain rewritten vertices
// since their cached partial was last refreshed. all short-circuits the
// bookkeeping after a full sweep.
type blkSet struct {
	in   []bool
	list []int32
	all  bool
}

func (s *blkSet) mark(blk int) {
	if !s.all && !s.in[blk] {
		s.in[blk] = true
		s.list = append(s.list, int32(blk))
	}
}

func (s *blkSet) reset() {
	for _, b := range s.list {
		s.in[b] = false
	}
	s.list = s.list[:0]
	s.all = false
}

// RunIncremental executes the FaultyRank iteration recomputing only the
// equations that can have changed: it seeds an active set from the dirty
// vertices (those whose cached contribution changed in the delta) and
// their neighbours in both orientations — every equation that reads a
// changed adjacency list, out-degree, or in-weight — then expands the
// set along dependency edges while per-vertex movement exceeds a bound
// derived from Epsilon (Options.FrontierSlack). Vertices outside the
// active set keep their warm values untouched.
//
// Exactness is restored at the end: convergence is only declared after a
// full verification sweep (a bit-exact cold iteration) whose diff is
// below Epsilon, so a converged incremental result satisfies the cold
// kernel's criterion on the whole graph, not just the frontier. Sink
// mass keeps the canonical sinkBlock fold by caching per-block partials
// and recomputing exactly the blocks containing rewritten vertices —
// a whole-block sequential recompute is bit-identical to the cold
// partial, and the ascending fold is unchanged, so results stay
// deterministic for any worker count.
//
// The dirty slice holds vertex IDs (GIDs) in [0, N); out-of-range
// entries are ignored. RunIncremental needs valid warm vectors to be
// incremental against — without them (or with Smoothing >= 1, or an
// empty graph) it delegates to Run, returning a nil Frontier.
func RunIncremental(b *graph.Bidirected, opt Options, dirty []uint32) *Result {
	n := b.N()
	sigma := opt.Smoothing
	blend := 1 - sigma
	if n == 0 || blend <= 0 || len(opt.InitialID) != n || len(opt.InitialProp) != n {
		return Run(b, opt)
	}
	workers := opt.workers()
	// theta is on the raw rank scale: Diffs divide by blend before the
	// Epsilon comparison, so the comparable per-write bound scales back.
	theta := opt.Epsilon * opt.frontierSlack() * blend
	satCap := n
	if f := opt.frontierSaturation(); f < 1 {
		satCap = int(f * float64(n))
	}

	res := &Result{
		IDRank:   append([]float64(nil), opt.InitialID...),
		PropRank: append([]float64(nil), opt.InitialProp...),
		Frontier: &FrontierStats{},
	}
	rescaleMass(res.IDRank)
	rescaleMass(res.PropRank)
	id, prop := res.IDRank, res.PropRank
	st := res.Frontier
	invOut, invW := rankDivisors(b, opt, workers)

	// Cached canonical sink partials (see sinkBlockSum). partA sums prop
	// over phase-A sinks; partB sums id over phase-B sinks. dirtyA/dirtyB
	// are the blocks whose partial is stale.
	nb := (n + sinkBlock - 1) / sinkBlock
	partA := make([]float64, nb)
	partB := make([]float64, nb)
	refreshAll := func(part, rank, invDiv []float64) {
		par.ForRange(nb, workers, func(lo, hi int) {
			for blk := lo; blk < hi; blk++ {
				part[blk] = sinkBlockSum(rank, invDiv, blk)
			}
		})
	}
	refreshAll(partA, prop, invOut)
	refreshAll(partB, id, invW)
	dirtyA := &blkSet{in: make([]bool, nb)}
	dirtyB := &blkSet{in: make([]bool, nb)}
	refresh := func(part, rank, invDiv []float64, blks *blkSet) float64 {
		if blks.all {
			refreshAll(part, rank, invDiv)
		} else {
			par.ForRange(len(blks.list), workers, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					blk := int(blks.list[k])
					part[blk] = sinkBlockSum(rank, invDiv, blk)
				}
			})
		}
		blks.reset()
		var sum float64
		for _, p := range part {
			sum += p
		}
		return sum
	}

	curA, curB := newVertSet(n), newVertSet(n)
	// Seed: a dirty vertex's own equations changed (its adjacency lists
	// and divisors are new), and so did every equation multiplying its
	// divisors or reading its (re)moved edges — its neighbours in either
	// orientation. Marking the full two-sided union into both phases is
	// slightly generous but always sound.
	seeded := newVertSet(n)
	for _, d := range dirty {
		if int(d) < n {
			seeded.mark(d)
		}
	}
	st.Seeds = len(seeded.list)
	for _, d := range seeded.list {
		curA.mark(d)
		curB.mark(d)
		s, e := b.Fwd.EdgeRange(d)
		for i := s; i < e; i++ {
			curA.mark(b.Fwd.Targets[i])
			curB.mark(b.Fwd.Targets[i])
		}
		s, e = b.Rev.EdgeRange(d)
		for i := s; i < e; i++ {
			curA.mark(b.Rev.Targets[i])
			curB.mark(b.Rev.Targets[i])
		}
	}

	var allVerts []uint32 // lazily built full-sweep "active" list
	allList := func() []uint32 {
		if allVerts == nil {
			allVerts = make([]uint32, n)
			par.ForRange(n, workers, func(lo, hi int) {
				for v := lo; v < hi; v++ {
					allVerts[v] = uint32(v)
				}
			})
		}
		return allVerts
	}

	// scratch[v] holds this phase's raw delta for every v it recomputed;
	// entries outside the active list are stale and never read.
	scratch := make([]float64, n)

	phaseA := func(active []uint32, baseA, perSinkA float64) float64 {
		par.ForRange(len(active), workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				v := active[k]
				s, e := b.Rev.EdgeRange(v)
				acc := baseA
				for i := s; i < e; i++ {
					src := b.Rev.Targets[i]
					acc += prop[src] * invOut[src]
				}
				if perSinkA != 0 && invOut[v] == 0 && b.Fwd.Degree(v) == 0 {
					// SinkToOthers: a sink does not credit itself.
					acc -= prop[v] * perSinkA
				}
				nv := sigma*id[v] + blend*acc
				scratch[v] = nv - id[v]
				id[v] = nv
			}
		})
		var maxD float64
		for _, v := range active {
			if d := math.Abs(scratch[v]); d > maxD {
				maxD = d
			}
		}
		return maxD
	}

	phaseB := func(active []uint32, baseB, perSinkB float64) {
		par.ForRange(len(active), workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				v := active[k]
				s, e := b.Fwd.EdgeRange(v)
				acc := baseB
				for i := s; i < e; i++ {
					dst := b.Fwd.Targets[i]
					w := opt.UnpairedWeight
					if b.FwdPaired[i] == 1 {
						w = 1
					}
					acc += id[dst] * w * invW[dst]
				}
				if perSinkB != 0 && invW[v] == 0 {
					acc -= id[v] * perSinkB
				}
				nv := sigma*prop[v] + blend*acc
				scratch[v] = nv - prop[v]
				prop[v] = nv
			}
		})
	}

	// propagate re-activates the dependents of vertices that moved more
	// than theta, and marks the rewritten vertices' sink blocks stale for
	// the *other* phase's cached partial. dep lists the consumers of the
	// written value: after phase A (id changed) that is Rev targets —
	// the sources of edges into v, whose phase-B gathers read id[v] —
	// and after phase B (prop changed) it is Fwd targets, whose phase-A
	// gathers read prop[v]. The vertex itself is re-marked too: its own
	// next-phase equation reads the written value through the sink
	// self-exclusion terms, and cheap over-marking is always sound.
	// Sequential by design: set marking is not race-safe.
	propagate := func(active []uint32, dep *graph.CSR, next *vertSet, blks *blkSet) {
		for _, v := range active {
			blks.mark(int(v) / sinkBlock)
			if math.Abs(scratch[v]) > theta {
				next.mark(v)
				s, e := dep.EdgeRange(v)
				for i := s; i < e; i++ {
					next.mark(dep.Targets[i])
				}
			}
		}
	}

	var prevBaseA, prevBaseB float64
	haveBase := false
	full := false   // saturated: full sweeps for the rest of the run
	verify := false // next iteration is the full verification sweep
	for iter := 0; iter < opt.MaxIterations; iter++ {
		if !full && (len(curA.list) > satCap || len(curB.list) > satCap) {
			full = true
			st.Saturated = true
		}

		// ---- Phase A (ID ranks) ------------------------------------
		sinkA := refresh(partA, prop, invOut, dirtyA)
		baseA, perSinkA := sinkShares(sinkA, n, opt.SinkPolicy)
		// A shifted redistribution base moves *every* equation, not just
		// the frontier's: when it shifts materially, sweep everyone once.
		fullA := full || verify || (haveBase && math.Abs(baseA-prevBaseA) > theta)
		prevBaseA = baseA
		activeA := curA.list
		if fullA {
			activeA = allList()
			st.FullSweeps++
		} else if len(activeA) > st.MaxActive {
			st.MaxActive = len(activeA)
		}
		maxDA := phaseA(activeA, baseA, perSinkA)
		st.Touched += int64(len(activeA))
		curA.clear()
		propagate(activeA, b.Rev, curB, dirtyB)
		if fullA {
			dirtyB.all = true
		}

		// ---- Phase B (Prop ranks) ----------------------------------
		sinkB := refresh(partB, id, invW, dirtyB)
		baseB, perSinkB := sinkShares(sinkB, n, opt.SinkPolicy)
		fullB := full || verify || (haveBase && math.Abs(baseB-prevBaseB) > theta)
		prevBaseB = baseB
		activeB := curB.list
		if fullB {
			activeB = allList()
			st.FullSweeps++
		} else if len(activeB) > st.MaxActive {
			st.MaxActive = len(activeB)
		}
		phaseB(activeB, baseB, perSinkB)
		st.Touched += int64(len(activeB))
		curB.clear()
		propagate(activeB, b.Fwd, curA, dirtyA)
		if fullB {
			dirtyA.all = true
		}
		haveBase = true

		// ---- Convergence (cold criterion on phase-A diff) ----------
		diff := maxDA / blend
		res.Diffs = append(res.Diffs, diff)
		if opt.ConvergenceTrace && len(res.Trace) < opt.traceCap() {
			res.Trace = append(res.Trace, IterStats{
				MaxDelta:     diff,
				SinkMassID:   sinkA,
				SinkMassProp: sinkB,
			})
		}
		res.Iterations = iter + 1
		if opt.OnIteration != nil {
			opt.OnIteration(res.Iterations, diff)
		}
		if diff < opt.Epsilon {
			if fullA && fullB {
				// This iteration WAS a cold iteration over the whole
				// graph; the cold stopping criterion holds exactly.
				res.Converged = true
				break
			}
			// The frontier went quiet but vertices outside it were
			// never checked: verify with one full iteration. If that
			// sweep still moves somewhere, its propagation re-seeds
			// the frontier and the loop continues incrementally.
			verify = true
		} else {
			verify = false
		}
	}
	return res
}
