package core

import (
	"fmt"
	"math"
	"sort"
	"testing"
)

// TestVariantSweep brute-forces algorithm variants against the paper's
// Table II values to identify the exact formulation the authors used.
// It is exploratory (always passes); kept for provenance of the chosen
// defaults.
func TestVariantSweep(t *testing.T) {
	// Graph: a=0,b=1,c=2,d=3; edges a->b, a->c, b->a, d->b.
	type edge struct{ s, d int }
	edges := []edge{{0, 1}, {0, 2}, {1, 0}, {3, 1}}
	const n = 4
	paired := map[[2]int]bool{{0, 1}: true, {1, 0}: true}
	outdeg := make([]int, n)
	indeg := make([]int, n)
	for _, e := range edges {
		outdeg[e.s]++
		indeg[e.d]++
	}
	targetID := []float64{0.35, 0.39, 0.2, 0.05}
	targetProp := []float64{0.39, 0.35, 0.05, 0.2}

	type cfg struct {
		weightMode string  // "plain", "wnorm", "wscale"
		sink       string  // "all", "others", "sources", "drop", "floor"
		init       float64 // 1 or 0.25
		cumulative bool
		iters      int // 0 = to convergence (200)
	}
	best := math.Inf(1)
	var bestCfg cfg
	var bestID, bestProp []float64
	type scored struct {
		err  float64
		c    cfg
		id   []float64
		prop []float64
	}
	var all []scored

	run := func(c cfg) ([]float64, []float64) {
		id := make([]float64, n)
		prop := make([]float64, n)
		for i := range id {
			id[i], prop[i] = c.init, c.init
		}
		// weighted out-degree of v in reversed graph
		wrev := make([]float64, n)
		for _, e := range edges {
			w := 0.1
			if paired[[2]int{e.s, e.d}] {
				w = 1
			}
			wrev[e.d] += w
		}
		maxIter := c.iters
		if maxIter == 0 {
			maxIter = 200
		}
		for it := 0; it < maxIter; it++ {
			newID := make([]float64, n)
			if c.cumulative {
				copy(newID, id)
			}
			var sinkMass float64
			for v := 0; v < n; v++ {
				if outdeg[v] == 0 {
					sinkMass += prop[v]
				}
			}
			for _, e := range edges {
				newID[e.d] += prop[e.s] / float64(outdeg[e.s])
			}
			applySink(newID, sinkMass, c.sink, outdeg, indeg, prop, true)
			newProp := make([]float64, n)
			if c.cumulative {
				copy(newProp, prop)
			}
			var sinkB float64
			for v := 0; v < n; v++ {
				if indeg[v] == 0 {
					sinkB += newID[v]
				}
			}
			for _, e := range edges {
				// reversed edge e.d -> e.s distributing id[e.d]
				switch c.weightMode {
				case "plain":
					newProp[e.s] += newID[e.d] / float64(indeg[e.d])
				case "wnorm":
					w := 0.1
					if paired[[2]int{e.s, e.d}] {
						w = 1
					}
					newProp[e.s] += newID[e.d] * w / wrev[e.d]
				case "wscale":
					w := 0.1
					if paired[[2]int{e.s, e.d}] {
						w = 1
					}
					newProp[e.s] += newID[e.d] * w / float64(indeg[e.d])
				}
			}
			applySink(newProp, sinkB, c.sink, indeg, outdeg, newID, false)
			id, prop = newID, newProp
			if c.cumulative {
				// normalise to keep totals bounded
				var s float64
				for _, x := range id {
					s += x
				}
				for i := range id {
					id[i] *= float64(n) / s
				}
				s = 0
				for _, x := range prop {
					s += x
				}
				for i := range prop {
					prop[i] *= float64(n) / s
				}
			}
		}
		return id, prop
	}

	norm := func(xs []float64) []float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		out := make([]float64, len(xs))
		if s == 0 {
			return out
		}
		for i, x := range xs {
			out[i] = x / s
		}
		return out
	}

	for _, wm := range []string{"plain", "wnorm", "wscale"} {
		for _, sk := range []string{"all", "others", "sources", "drop", "floor"} {
			for _, init := range []float64{1, 0.25} {
				for _, cum := range []bool{false, true} {
					for _, iters := range []int{1, 2, 3, 5, 0} {
						c := cfg{wm, sk, init, cum, iters}
						id, prop := run(c)
						nid, nprop := norm(id), norm(prop)
						var err float64
						for i := 0; i < n; i++ {
							err = math.Max(err, math.Abs(nid[i]-targetID[i]))
							err = math.Max(err, math.Abs(nprop[i]-targetProp[i]))
						}
						all = append(all, scored{err, c, nid, nprop})
						if err < best {
							best = err
							bestCfg = c
							bestID, bestProp = nid, nprop
						}
					}
				}
			}
		}
	}
	t.Logf("best err=%.4f cfg=%+v", best, bestCfg)
	t.Logf("  id=%s", fmtv(bestID))
	t.Logf("  pr=%s", fmtv(bestProp))
	sort.Slice(all, func(i, j int) bool { return all[i].err < all[j].err })
	for i := 0; i < 10 && i < len(all); i++ {
		t.Logf("#%d err=%.4f cfg=%+v id=%s pr=%s", i, all[i].err, all[i].c, fmtv(all[i].id), fmtv(all[i].prop))
	}
}

func applySink(rank []float64, mass float64, policy string, deg, otherDeg []int, prev []float64, phaseA bool) {
	n := len(rank)
	if mass == 0 && policy != "floor" {
		return
	}
	switch policy {
	case "all":
		for i := range rank {
			rank[i] += mass / float64(n)
		}
	case "others":
		for i := range rank {
			share := mass
			if deg[i] == 0 {
				share -= prev[i]
			}
			rank[i] += share / float64(n-1)
		}
	case "sources":
		var nsrc int
		for i := range rank {
			if otherDeg[i] == 0 {
				nsrc++
			}
		}
		if nsrc == 0 {
			for i := range rank {
				rank[i] += mass / float64(n)
			}
			return
		}
		for i := range rank {
			if otherDeg[i] == 0 {
				rank[i] += mass / float64(nsrc)
			}
		}
	case "floor":
		for i := range rank {
			if rank[i] < 0.05 {
				rank[i] = 0.05
			}
		}
	case "drop":
	}
}

func fmtv(xs []float64) string {
	s := ""
	for _, x := range xs {
		s += fmt.Sprintf("%.3f ", x)
	}
	return s
}
