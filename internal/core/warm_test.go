package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestWarmStartConvergesToColdRanks: seeding from a previous converged
// result reaches the same fixed point (per-vertex ranks within Epsilon
// of the cold run) in no more iterations than the cold run took — the
// property the online checker's warm start relies on.
func TestWarmStartConvergesToColdRanks(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(200)
		b := randomGraph(r, n, 3*n)
		opt := DefaultOptions()
		cold := Run(b, opt)

		warmOpt := opt
		warmOpt.InitialID = cold.IDRank
		warmOpt.InitialProp = cold.PropRank
		warm := Run(b, warmOpt)
		if !warm.Converged {
			t.Fatalf("seed %d: warm run did not converge", seed)
		}
		if warm.Iterations > cold.Iterations {
			t.Errorf("seed %d: warm start took %d iterations, cold took %d",
				seed, warm.Iterations, cold.Iterations)
		}
		for v := range cold.IDRank {
			if d := math.Abs(warm.IDRank[v] - cold.IDRank[v]); d > opt.Epsilon {
				t.Fatalf("seed %d: vertex %d id rank diverged by %g (warm %g, cold %g)",
					seed, v, d, warm.IDRank[v], cold.IDRank[v])
			}
			if d := math.Abs(warm.PropRank[v] - cold.PropRank[v]); d > opt.Epsilon {
				t.Fatalf("seed %d: vertex %d prop rank diverged by %g", seed, v, d)
			}
		}
	}
}

// TestWarmStartWrongLengthIgnored: a seed whose length does not match
// the vertex count (the graph changed shape) falls back to the uniform
// start instead of misassigning positional ranks.
func TestWarmStartWrongLengthIgnored(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	b := randomGraph(r, 40, 120)
	opt := DefaultOptions()
	cold := Run(b, opt)

	stale := opt
	stale.InitialID = make([]float64, 7) // wrong length
	stale.InitialProp = make([]float64, 7)
	got := Run(b, stale)
	if got.Iterations != cold.Iterations {
		t.Fatalf("stale seed changed the run: %d iterations vs %d",
			got.Iterations, cold.Iterations)
	}
	for v := range cold.IDRank {
		if got.IDRank[v] != cold.IDRank[v] {
			t.Fatalf("stale seed changed vertex %d rank", v)
		}
	}
}
