// Package health is the fleet-health serving layer on top of the
// online checker: one daemon hosts many clusters' trackers
// concurrently (one online.Tracker per configured cluster, a shared
// bounded worker pool, per-cluster durable state directories), grades
// every finding Critical/Warning/Info through a versioned rules
// engine that also suggests an operator action per finding class, and
// serves the results over HTTP — JSON reports per cluster, a fleet
// health summary, and sustained Prometheus exposition with per-cluster
// labels. It is ROADMAP item 4: watch mode turned into a long-running
// service, packaged the way production health checkers (sichek's GPFS
// component) classify events by criticality with suggested actions.
package health

import (
	"encoding/json"
	"fmt"
	"os"

	"faultyrank/internal/checker"
)

// Severity grades a finding's operational urgency.
type Severity uint8

const (
	// SevInfo: worth recording, no action required (an orphan object
	// participating in no relation, an ambiguity awaiting user input).
	SevInfo Severity = iota
	// SevWarning: repair at the next maintenance window.
	SevWarning
	// SevCritical: repair now — data loss is ongoing or imminent, or
	// the fault's blast radius grows while it waits.
	SevCritical
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarning:
		return "warning"
	case SevCritical:
		return "critical"
	default:
		return fmt.Sprintf("severity(%d)", uint8(s))
	}
}

// MarshalJSON renders the severity as its lowercase name — the form
// the rules file and the report API both use.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a lowercase severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sev, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = sev
	return nil
}

// ParseSeverity maps a severity name to its value.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return SevInfo, nil
	case "warning":
		return SevWarning, nil
	case "critical":
		return SevCritical, nil
	default:
		return 0, fmt.Errorf("health: unknown severity %q (info|warning|critical)", name)
	}
}

// RulesSchema identifies the rules-file JSON layout; a file with any
// other schema string is rejected, so layout changes cannot be
// misread as policy changes.
const RulesSchema = "frhealthd/rules/v1"

// Rule is one grading clause: the first rule whose conditions all
// match a finding decides its severity and suggested action. The
// conditions compose (kind AND score AND blast), and every omitted
// condition matches everything — a rule with only a severity and an
// action is a catch-all.
type Rule struct {
	// Name identifies the rule in reports, so an operator can tell
	// which clause graded a finding.
	Name string `json:"name"`
	// Kind matches the finding kind by its report name ("faulty-id",
	// "duplicate-identity", …); empty or "*" matches every kind.
	Kind string `json:"kind,omitempty"`
	// MaxScore matches rank-scored findings whose score is at or below
	// this value — lower rank means stronger fault evidence, so a small
	// MaxScore selects the deepest faults. Findings without a rank
	// score (score 0) never match a MaxScore rule.
	MaxScore *float64 `json:"max_score,omitempty"`
	// MinBlast matches findings whose blast radius (metadata relations
	// touching the faulty object) is at least this value — the "hot
	// directory" selector; 0 matches any.
	MinBlast int `json:"min_blast,omitempty"`

	Severity Severity `json:"severity"`
	// Action is the suggested operator action for findings this rule
	// grades.
	Action string `json:"action"`
}

// matches reports whether every condition of the rule holds for f.
func (r Rule) matches(f checker.Finding) bool {
	if r.Kind != "" && r.Kind != "*" && r.Kind != f.Kind.String() {
		return false
	}
	if r.MaxScore != nil && (f.Score <= 0 || f.Score > *r.MaxScore) {
		return false
	}
	if r.MinBlast > 0 && f.Blast < r.MinBlast {
		return false
	}
	return true
}

// Fallback grades findings no rule matches.
type Fallback struct {
	Severity Severity `json:"severity"`
	Action   string   `json:"action"`
}

// RuleSet is a versioned grading policy: an ordered rule list plus the
// fallback. Version is the operator's revision of the file and is
// surfaced in every report, so a dashboard can always tell which
// policy graded what it is looking at.
type RuleSet struct {
	Schema  string   `json:"schema"`
	Version int      `json:"version"`
	Rules   []Rule   `json:"rules"`
	Default Fallback `json:"default"`
}

// Grading is one finding's classification under a rule set.
type Grading struct {
	Severity Severity `json:"severity"`
	// Rule names the clause that matched ("default" for the fallback).
	Rule string `json:"rule"`
	// Action is the suggested operator action.
	Action string `json:"action"`
}

// Grade classifies one finding: the first matching rule wins, the
// fallback grades the rest.
func (rs *RuleSet) Grade(f checker.Finding) Grading {
	for _, r := range rs.Rules {
		if r.matches(f) {
			return Grading{Severity: r.Severity, Rule: r.Name, Action: r.Action}
		}
	}
	return Grading{Severity: rs.Default.Severity, Rule: "default", Action: rs.Default.Action}
}

// Validate checks the structural invariants a loaded rules file must
// hold: the schema string, a positive version, and named, well-formed
// rules with unique names.
func (rs *RuleSet) Validate() error {
	if rs.Schema != RulesSchema {
		return fmt.Errorf("health: rules schema %q (want %q)", rs.Schema, RulesSchema)
	}
	if rs.Version < 1 {
		return fmt.Errorf("health: rules version %d (want >= 1)", rs.Version)
	}
	seen := make(map[string]bool, len(rs.Rules))
	for i, r := range rs.Rules {
		if r.Name == "" {
			return fmt.Errorf("health: rule %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("health: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
		if r.MaxScore != nil && *r.MaxScore <= 0 {
			return fmt.Errorf("health: rule %q: max_score %g (want > 0)", r.Name, *r.MaxScore)
		}
		if r.MinBlast < 0 {
			return fmt.Errorf("health: rule %q: min_blast %d (want >= 0)", r.Name, r.MinBlast)
		}
	}
	return nil
}

// LoadRules reads and validates a rules file.
func LoadRules(path string) (*RuleSet, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("health: rules: %w", err)
	}
	var rs RuleSet
	if err := json.Unmarshal(blob, &rs); err != nil {
		return nil, fmt.Errorf("health: rules %s: %w", path, err)
	}
	if err := rs.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &rs, nil
}

func f64(v float64) *float64 { return &v }

// DefaultRules is the built-in policy, used when no rules file is
// configured. Ordering is the policy: the structural catastrophes come
// first, then the blast-radius and rank-depth escalations (so a
// dangling dirent on a hot directory grades critical even though its
// kind alone would not), then the per-kind grades.
func DefaultRules() *RuleSet {
	return &RuleSet{
		Schema:  RulesSchema,
		Version: 1,
		Rules: []Rule{
			{
				Name: "duplicate-identity", Kind: "duplicate-identity", Severity: SevCritical,
				Action: "multiple inodes claim one FID; run `faultyrank -dir <dir> -repair` to quarantine the impostors, then audit the surviving claim",
			},
			{
				Name: "parse-damage", Kind: "parse-damage", Severity: SevCritical,
				Action: "metadata failed to decode; check the device and schedule an offline `faultyrank` scrub — the graph may be missing relations",
			},
			{
				Name: "detached-namespace", Kind: "detached-namespace", Severity: SevCritical,
				Action: "a coherent subtree is unreachable from the root; reattach it under lost+found before its files are overwritten",
			},
			{
				Name: "hot-object", MinBlast: 8, Severity: SevCritical,
				Action: "the faulty object participates in many relations (hot directory or wide-striped file); repair first — every delayed round widens the blast radius",
			},
			{
				Name: "deep-rank-fault", MaxScore: f64(0.1), Severity: SevCritical,
				Action: "rank evidence is unanimous (score near zero); apply the recommended repair now",
			},
			{
				Name: "faulty-id", Kind: "faulty-id", Severity: SevWarning,
				Action: "the object's identity lost peer support; `-repair` restores it from the peers that still name the old FID",
			},
			{
				Name: "faulty-property", Kind: "faulty-property", Severity: SevWarning,
				Action: "the object's pointing metadata is wrong; `-repair` rebuilds it from the counterpart relations",
			},
			{
				Name: "stale-object", Kind: "stale-object", Severity: SevWarning,
				Action: "the object's owner no longer exists (lost file); adopt the object into lost+found",
			},
			{
				Name: "orphan-object", Kind: "orphan-object", Severity: SevInfo,
				Action: "the object participates in no relation; quarantine it during the next maintenance window",
			},
			{
				Name: "ambiguous", Kind: "ambiguous", Severity: SevInfo,
				Action: "the ranks cannot attribute a root cause; a human must pick the repair",
			},
		},
		Default: Fallback{
			Severity: SevWarning,
			Action:   "unclassified finding; run an offline `faultyrank -dir <dir> -v` check and extend the rules file",
		},
	}
}
