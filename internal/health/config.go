package health

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// ConfigSchema identifies the daemon config-file JSON layout.
const ConfigSchema = "frhealthd/config/v1"

// Duration is a time.Duration that marshals as the string form Go's
// flag package accepts ("2s", "150ms"), so config files read like
// command lines.
type Duration struct{ time.Duration }

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("health: duration %q: %w", s, err)
	}
	d.Duration = v
	return nil
}

// ClusterConfig names one cluster mount the daemon tracks.
type ClusterConfig struct {
	// Name is the cluster's identity in the API and metric labels; it
	// must be unique and URL-safe (letters, digits, '-', '_', '.').
	Name string `json:"name"`
	// Dir is the cluster's image directory (the frmkfs/faultyrank
	// hand-off format).
	Dir string `json:"dir"`
	// State, when non-empty, is the cluster's durable tracker-state
	// directory: the daemon resumes from its snapshot on start and saves
	// after every round.
	State string `json:"state,omitempty"`
	// RescanEvery, when > 0, forces a full scrub (Tracker.Rescan) every
	// N completed rounds — the defence against silent corruption the
	// change feed cannot see.
	RescanEvery int `json:"rescan_every,omitempty"`
}

// Config is the daemon's file-backed configuration.
type Config struct {
	Schema string `json:"schema"`
	// Listen is the HTTP address ("" lets the flag's default stand).
	Listen string `json:"listen,omitempty"`
	// Rules is the path to a grading rules file ("" = built-in policy).
	Rules string `json:"rules,omitempty"`
	// Interval between watch rounds per cluster (zero = one second,
	// Tracker.Watch's default).
	Interval Duration `json:"interval,omitempty"`
	// Workers bounds how many clusters run a check round at once on the
	// shared pool (0 = as many as there are clusters).
	Workers int `json:"workers,omitempty"`
	// History is the per-cluster round-history ring size (0 = default).
	History  int             `json:"history,omitempty"`
	Clusters []ClusterConfig `json:"clusters"`
}

// validName reports whether a cluster name is usable as an API path
// segment and a metric label value without escaping.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Validate checks the structural invariants of a loaded config.
func (c *Config) Validate() error {
	if c.Schema != ConfigSchema {
		return fmt.Errorf("health: config schema %q (want %q)", c.Schema, ConfigSchema)
	}
	if len(c.Clusters) == 0 {
		return fmt.Errorf("health: config names no clusters")
	}
	if c.Workers < 0 {
		return fmt.Errorf("health: workers %d (want >= 0)", c.Workers)
	}
	seen := make(map[string]bool, len(c.Clusters))
	for i, cl := range c.Clusters {
		if !validName(cl.Name) {
			return fmt.Errorf("health: cluster %d name %q (want non-empty [a-zA-Z0-9._-])", i, cl.Name)
		}
		if seen[cl.Name] {
			return fmt.Errorf("health: duplicate cluster name %q", cl.Name)
		}
		seen[cl.Name] = true
		if strings.TrimSpace(cl.Dir) == "" {
			return fmt.Errorf("health: cluster %q has no image directory", cl.Name)
		}
		if cl.RescanEvery < 0 {
			return fmt.Errorf("health: cluster %q: rescan_every %d (want >= 0)", cl.Name, cl.RescanEvery)
		}
	}
	return nil
}

// LoadConfig reads and validates a daemon config file.
func LoadConfig(path string) (*Config, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("health: config: %w", err)
	}
	var c Config
	if err := json.Unmarshal(blob, &c); err != nil {
		return nil, fmt.Errorf("health: config %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return &c, nil
}
