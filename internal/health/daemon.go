package health

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/imgdir"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/online"
	"faultyrank/internal/telemetry"
)

// defaultHistory is the per-cluster round-history ring size when the
// config does not set one.
const defaultHistory = 32

// DaemonOptions shapes a daemon independent of which clusters it
// tracks.
type DaemonOptions struct {
	// Interval between watch rounds per cluster (<= 0 = Tracker.Watch's
	// one-second default).
	Interval time.Duration
	// Workers bounds how many clusters run a check round concurrently on
	// the shared pool (<= 0 = min(number of clusters, GOMAXPROCS)).
	Workers int
	// History is the round-history ring size (<= 0 = defaultHistory).
	History int
	// Logf, when non-nil, receives one line per completed or failed
	// round (the daemon's operational log).
	Logf func(format string, args ...any)
	// StaleAfter is how long a cluster may go without settling a round
	// before its status reads "stale" instead of whatever its last
	// findings said (<= 0 = ten intervals, floor defaultStaleAfter). A
	// wedged tracker stops completing rounds but keeps its old counts;
	// without an age check it would look healthy forever.
	StaleAfter time.Duration
}

// defaultStaleAfter floors the staleness window so short watch
// intervals do not flap a busy cluster to "stale" between rounds.
const defaultStaleAfter = 30 * time.Second

// staleAfter resolves the effective staleness window.
func (d *Daemon) staleAfter() time.Duration {
	if d.opt.StaleAfter > 0 {
		return d.opt.StaleAfter
	}
	iv := d.opt.Interval
	if iv <= 0 {
		iv = time.Second
	}
	if w := 10 * iv; w > defaultStaleAfter {
		return w
	}
	return defaultStaleAfter
}

// Daemon hosts one online.Tracker per cluster, runs their watch loops
// concurrently on a shared bounded pool, grades every finding through
// the rules engine, and serves the results (Handler). Clusters are
// added before Run; the report surface is safe for concurrent readers
// while the watchers run.
type Daemon struct {
	rules   *RuleSet
	opt     DaemonOptions
	gate    chan struct{} // shared pool: one token per concurrent round
	members map[string]*member
	order   []string // member names in add order (the fleet listing order)
	running bool
}

// member is one tracked cluster: its tracker, watch plumbing, and the
// report state the HTTP layer reads. The watch goroutine is the only
// writer of the mutable fields; mu lets API readers snapshot them
// mid-flight.
type member struct {
	name        string
	tracker     *online.Tracker
	quiesce     sync.Locker
	stateDir    string
	rescanEvery int
	rounds      int // watch rounds configured (0 = until ctx)

	reg       *telemetry.Registry
	mRounds   *telemetry.Counter // health_rounds_total
	mFailures *telemetry.Counter // health_round_failures_total
	mCritical *telemetry.Gauge   // health_findings_critical
	mWarning  *telemetry.Gauge   // health_findings_warning
	mInfo     *telemetry.Gauge   // health_findings_info
	mRefresh  *telemetry.Gauge   // health_last_round_refreshed_inodes
	mChecks   *telemetry.Gauge   // health_tracker_checks
	mRescan   *telemetry.Gauge   // health_tracker_inodes_rescanned
	mScrubs   *telemetry.Gauge   // health_tracker_rescans

	// journal is the cluster's flight recorder: the tracker's checker
	// and online events land here (Options.Journal), joined by the
	// daemon's round outcomes and grading decisions. Served on the
	// journal API endpoint and dumped to the state dir when a round
	// fails.
	journal *telemetry.Journal

	mu          sync.RWMutex
	completed   int
	failures    int
	lastErr     string
	findings    []GradedFinding
	counts      SeverityCounts
	history     []RoundSummary
	lastRes     *online.CheckResult
	lastSettled time.Time
}

// ClusterSpec describes one cluster to track.
type ClusterSpec struct {
	// Name is the cluster's identity in the API and metric labels (see
	// ClusterConfig.Name for the charset).
	Name   string
	Images []*ldiskfs.Image
	// Options configures the cluster's checks (zero value = defaults).
	Options checker.Options
	// StateDir, when non-empty, holds the durable tracker snapshot: the
	// daemon resumes from it when present and saves after every round.
	StateDir string
	// RescanEvery > 0 forces a full scrub every N completed rounds.
	RescanEvery int
	// Quiesce, when non-nil, is held while a round reads the images —
	// in-process mutators (the soak harness) take the same lock.
	Quiesce sync.Locker
	// Rounds bounds this cluster's watch loop (0 = until the run
	// context is cancelled) — the soak harness's stopping rule.
	Rounds int
}

// NewDaemon builds an empty daemon; add clusters, then Run.
func NewDaemon(rules *RuleSet, opt DaemonOptions) (*Daemon, error) {
	if rules == nil {
		rules = DefaultRules()
	}
	if err := rules.Validate(); err != nil {
		return nil, err
	}
	if opt.History <= 0 {
		opt.History = defaultHistory
	}
	return &Daemon{
		rules:   rules,
		opt:     opt,
		members: make(map[string]*member),
	}, nil
}

// NewDaemonFromConfig assembles a daemon from a config file's worth of
// state: rules loaded (or the built-in policy), every cluster's images
// loaded from its directory, tracker state resumed where a compatible
// snapshot exists.
func NewDaemonFromConfig(cfg *Config) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rules := DefaultRules()
	if cfg.Rules != "" {
		var err error
		if rules, err = LoadRules(cfg.Rules); err != nil {
			return nil, err
		}
	}
	d, err := NewDaemon(rules, DaemonOptions{
		Interval: cfg.Interval.Duration,
		Workers:  cfg.Workers,
		History:  cfg.History,
		Logf:     log.Printf,
	})
	if err != nil {
		return nil, err
	}
	for _, cl := range cfg.Clusters {
		images, err := imgdir.Load(cl.Dir)
		if err != nil {
			return nil, fmt.Errorf("health: cluster %q: %w", cl.Name, err)
		}
		if err := d.AddCluster(ClusterSpec{
			Name:        cl.Name,
			Images:      images,
			Options:     checker.DefaultOptions(),
			StateDir:    cl.State,
			RescanEvery: cl.RescanEvery,
		}); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// AddCluster registers one cluster: its tracker is constructed now
// (resuming from StateDir's snapshot when one exists and matches this
// build), so a daemon that starts Run has already paid every cluster's
// initial scan.
func (d *Daemon) AddCluster(spec ClusterSpec) error {
	if d.running {
		return fmt.Errorf("health: AddCluster after Run")
	}
	if !validName(spec.Name) {
		return fmt.Errorf("health: cluster name %q (want non-empty [a-zA-Z0-9._-])", spec.Name)
	}
	if _, dup := d.members[spec.Name]; dup {
		return fmt.Errorf("health: duplicate cluster %q", spec.Name)
	}
	opt := spec.Options
	if opt.Core.MaxIterations == 0 {
		opt = checker.DefaultOptions()
	}
	reg := telemetry.NewRegistry()
	opt.Metrics = reg
	jr := telemetry.NewJournal(0)
	jr.SetServer(spec.Name)
	opt.Journal = jr

	tr, err := d.openTracker(spec, opt)
	if err != nil {
		return fmt.Errorf("health: cluster %q: %w", spec.Name, err)
	}
	m := &member{
		name:        spec.Name,
		tracker:     tr,
		quiesce:     spec.Quiesce,
		stateDir:    spec.StateDir,
		rescanEvery: spec.RescanEvery,
		rounds:      spec.Rounds,
		reg:         reg,
		mRounds:     reg.Counter("health_rounds_total"),
		mFailures:   reg.Counter("health_round_failures_total"),
		mCritical:   reg.Gauge("health_findings_critical"),
		mWarning:    reg.Gauge("health_findings_warning"),
		mInfo:       reg.Gauge("health_findings_info"),
		mRefresh:    reg.Gauge("health_last_round_refreshed_inodes"),
		mChecks:     reg.Gauge("health_tracker_checks"),
		mRescan:     reg.Gauge("health_tracker_inodes_rescanned"),
		mScrubs:     reg.Gauge("health_tracker_rescans"),
		journal:     jr,
	}
	d.members[spec.Name] = m
	d.order = append(d.order, spec.Name)
	return nil
}

// openTracker resumes a cluster's tracker from its state directory when
// a compatible snapshot exists, and starts cold otherwise — the same
// fallback ladder as `faultyrank -online -state`.
func (d *Daemon) openTracker(spec ClusterSpec, opt checker.Options) (*online.Tracker, error) {
	if spec.StateDir == "" {
		return online.NewTracker(spec.Images, opt)
	}
	tr, err := online.LoadState(spec.StateDir, spec.Images, opt)
	switch {
	case err == nil:
		d.logf("cluster %s: resumed tracker state from %s", spec.Name, spec.StateDir)
		return tr, nil
	case errors.Is(err, fs.ErrNotExist):
		return online.NewTracker(spec.Images, opt)
	case errors.Is(err, online.ErrTrackerSnapshotVersion):
		d.logf("cluster %s: snapshot in %s is from an incompatible build, starting fresh",
			spec.Name, spec.StateDir)
		return online.NewTracker(spec.Images, opt)
	default:
		return nil, err
	}
}

func (d *Daemon) logf(format string, args ...any) {
	if d.opt.Logf != nil {
		d.opt.Logf(format, args...)
	}
}

// BoundRounds caps every cluster's watch loop at n rounds — how a
// config-driven run (`frhealthd -rounds N`) becomes a bounded smoke
// test instead of a daemon. Call before Run.
func (d *Daemon) BoundRounds(n int) {
	for _, m := range d.members {
		m.rounds = n
	}
}

// Tracker exposes a cluster's tracker (the soak harness's hook for
// fault injection and scrub forcing); nil for an unknown name.
func (d *Daemon) Tracker(name string) *online.Tracker {
	if m := d.members[name]; m != nil {
		return m.tracker
	}
	return nil
}

// Rules returns the daemon's grading policy.
func (d *Daemon) Rules() *RuleSet { return d.rules }

// Run watches every cluster until ctx is cancelled (or each bounded
// member finishes its rounds), bounding concurrent check rounds by the
// shared worker pool. It returns nil on a clean shutdown (context
// cancellation included) and the joined errors of any watchers that
// failed outright.
func (d *Daemon) Run(ctx context.Context) error {
	if len(d.members) == 0 {
		return fmt.Errorf("health: no clusters to run")
	}
	d.running = true
	workers := d.opt.Workers
	if workers <= 0 {
		workers = min(len(d.members), runtime.GOMAXPROCS(0))
	}
	d.gate = make(chan struct{}, workers)

	errs := make([]error, len(d.order))
	var wg sync.WaitGroup
	for i, name := range d.order {
		m := d.members[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = d.watch(ctx, m)
		}()
	}
	wg.Wait()
	var bad []error
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			bad = append(bad, fmt.Errorf("cluster %s: %w", d.order[i], err))
		}
	}
	return errors.Join(bad...)
}

// watch is one member's loop: Tracker.Watch with the shared gate, the
// member's quiesce lock, and round completion/failure routed into the
// report state. Round errors do not stop the watch — the feed the
// failed server kept intact is retried next round — so the only exits
// are context cancellation, a bounded member finishing, or a
// non-retryable watch failure.
func (d *Daemon) watch(ctx context.Context, m *member) error {
	return m.tracker.Watch(ctx, online.WatchOptions{
		Interval: d.opt.Interval,
		Rounds:   m.rounds,
		Quiesce:  m.quiesce,
		Gate: func(ctx context.Context) (func(), error) {
			select {
			case d.gate <- struct{}{}:
				return func() { <-d.gate }, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
		OnRound: func(round int, res *online.CheckResult) {
			d.completeRound(m, round, res)
		},
		OnError: func(round int, err error) error {
			d.failRound(m, round, err)
			return nil
		},
	})
}

// completeRound folds one successful check into the member's report
// state: grade the findings, refresh the gauges, append to the history
// ring, persist the tracker snapshot, and schedule the periodic scrub.
func (d *Daemon) completeRound(m *member, round int, res *online.CheckResult) {
	graded := gradeFindings(d.rules, res.Findings)
	counts := countSeverities(graded)

	m.mRounds.Inc()
	m.mCritical.Set(int64(counts.Critical))
	m.mWarning.Set(int64(counts.Warning))
	m.mInfo.Set(int64(counts.Info))
	m.mRefresh.Set(int64(res.InodesRefreshed))
	st := m.tracker.Stats()
	m.mChecks.Set(st.Checks)
	m.mRescan.Set(st.InodesRescanned)
	m.mScrubs.Set(st.Rescans)

	m.journal.Record("health", "round-settled",
		"round", fmt.Sprintf("%d", round),
		"refreshed", fmt.Sprintf("%d", res.InodesRefreshed),
		"critical", fmt.Sprintf("%d", counts.Critical),
		"warning", fmt.Sprintf("%d", counts.Warning),
		"info", fmt.Sprintf("%d", counts.Info))
	for _, g := range graded {
		if g.Severity == SevInfo {
			continue
		}
		m.journal.Record("health", "grading",
			"fid", g.FID, "kind", g.Kind,
			"rule", g.Rule, "severity", g.Severity.String())
	}

	m.mu.Lock()
	m.completed++
	m.lastErr = ""
	m.findings = graded
	m.counts = counts
	m.lastRes = res
	m.lastSettled = time.Now()
	m.pushHistory(RoundSummary{
		Round:      round,
		Refreshed:  res.InodesRefreshed,
		Findings:   counts,
		Warm:       res.Warm,
		Iterations: res.Rank.Iterations,
	}, d.opt.History)
	completed := m.completed
	m.mu.Unlock()

	if m.stateDir != "" {
		if err := m.tracker.SaveState(m.stateDir); err != nil {
			d.logf("cluster %s: save state: %v", m.name, err)
		}
	}
	if counts.Total() > 0 {
		d.logf("cluster %s round %d: %d finding(s) — %d critical, %d warning, %d info",
			m.name, round, counts.Total(), counts.Critical, counts.Warning, counts.Info)
	}
	// The periodic scrub runs here, between rounds, under the same
	// quiesce lock a check holds: silent corruption that bypassed the
	// change feed is picked up by the next round's check.
	if m.rescanEvery > 0 && completed%m.rescanEvery == 0 {
		if err := d.rescanQuiesced(m); err != nil {
			d.failRound(m, round, fmt.Errorf("rescan: %w", err))
		}
	}
}

func (d *Daemon) rescanQuiesced(m *member) error {
	if m.quiesce != nil {
		m.quiesce.Lock()
		defer m.quiesce.Unlock()
	}
	m.journal.Record("health", "scrub")
	return m.tracker.Rescan()
}

// failRound records a failed round. The tracker left the failing feed
// intact, so the next round retries the lost work; the report keeps
// the error until a round completes cleanly.
func (d *Daemon) failRound(m *member, round int, err error) {
	m.mFailures.Inc()
	m.journal.Record("health", "round-failed",
		"round", fmt.Sprintf("%d", round), "err", err.Error())
	m.mu.Lock()
	m.failures++
	m.lastErr = err.Error()
	m.pushHistory(RoundSummary{Round: round, Err: err.Error()}, d.opt.History)
	m.mu.Unlock()
	d.logf("cluster %s round %d failed: %v", m.name, round, err)
	// Dump the flight record next to the tracker snapshot: the failed
	// round's event trail is exactly what frtrace renders when someone
	// asks why the cluster is unhealthy.
	if m.stateDir != "" {
		path := filepath.Join(m.stateDir, journalDumpName)
		if werr := telemetry.WriteJournalFile(path, m.journalSections()); werr != nil {
			d.logf("cluster %s: journal dump: %v", m.name, werr)
		} else {
			d.logf("cluster %s: journal dumped to %s", m.name, path)
		}
	}
}

// journalDumpName is the flight-record file a failed round leaves in
// the cluster's state directory (FRJR format; render with frtrace).
const journalDumpName = "journal.frjr"

// journalSections snapshots the member's flight record.
func (m *member) journalSections() []telemetry.JournalSnapshot {
	return []telemetry.JournalSnapshot{m.journal.Snapshot()}
}

// Journal returns a cluster's flight-record sections; false for an
// unknown name.
func (d *Daemon) Journal(name string) ([]telemetry.JournalSnapshot, bool) {
	m := d.members[name]
	if m == nil {
		return nil, false
	}
	return m.journalSections(), true
}

// pushHistory appends to the ring; callers hold m.mu.
func (m *member) pushHistory(rs RoundSummary, limit int) {
	m.history = append(m.history, rs)
	if len(m.history) > limit {
		m.history = m.history[len(m.history)-limit:]
	}
}

// Clusters lists every cluster's summary row in add order.
func (d *Daemon) Clusters() []ClusterSummary {
	out := make([]ClusterSummary, 0, len(d.order))
	stale := d.staleAfter()
	for _, name := range d.order {
		out = append(out, d.members[name].summary(stale))
	}
	return out
}

func (m *member) summary(staleAfter time.Duration) ClusterSummary {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := ClusterSummary{
		Name:     m.name,
		Rounds:   m.completed,
		Failures: m.failures,
		Findings: m.counts,
	}
	switch {
	case m.completed == 0:
		s.Status = "pending"
	default:
		age := time.Since(m.lastSettled)
		s.LastSettledAge = age.Seconds()
		if age > staleAfter {
			// No round has settled in a staleness window: the counts
			// below are from a round too old to trust, so the row must
			// not read as healthy.
			s.Status = "stale"
		} else {
			s.Status = m.counts.status()
		}
	}
	return s
}

// Report assembles one cluster's full report; false for an unknown
// name.
func (d *Daemon) Report(name string) (*Report, bool) {
	m := d.members[name]
	if m == nil {
		return nil, false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	r := &Report{
		Schema:       ReportSchema,
		Cluster:      m.name,
		RulesVersion: d.rules.Version,
		Rounds:       m.completed,
		Failures:     m.failures,
		LastError:    m.lastErr,
		Counts:       m.counts,
		Findings:     append([]GradedFinding{}, m.findings...),
		Stats:        m.tracker.Stats(),
		History:      append([]RoundSummary{}, m.history...),
	}
	if m.completed == 0 {
		r.Status = "pending"
	} else {
		r.Status = m.counts.status()
	}
	return r, true
}

// lastResult is the most recent completed round's check result (the
// soak harness reads it to drive repairs); nil before the first round.
func (d *Daemon) lastResult(name string) *online.CheckResult {
	m := d.members[name]
	if m == nil {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.lastRes
}

// MetricsSnapshots gathers every cluster's registry snapshot, sorted by
// cluster name, for the labeled Prometheus exposition.
func (d *Daemon) MetricsSnapshots() []telemetry.LabeledSnapshot {
	names := append([]string(nil), d.order...)
	sort.Strings(names)
	out := make([]telemetry.LabeledSnapshot, 0, len(names))
	for _, name := range names {
		out = append(out, telemetry.LabeledSnapshot{
			Label:    name,
			Snapshot: d.members[name].reg.Snapshot(),
		})
	}
	return out
}
