package health

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/imgdir"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

func testCluster(t testing.TB) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.MkdirAll("/w")
	for i := 0; i < 8; i++ {
		if _, err := c.Create(fmt.Sprintf("/w/f%02d", i), 2*64<<10); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func testDaemon(t testing.TB, opt DaemonOptions, specs ...ClusterSpec) *Daemon {
	t.Helper()
	if opt.Interval == 0 {
		opt.Interval = time.Millisecond
	}
	d, err := NewDaemon(nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		if err := d.AddCluster(spec); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

// TestDaemonServesFleet is the end-to-end happy path: two clean
// clusters watched to completion, then every API surface read back
// over real HTTP.
func TestDaemonServesFleet(t *testing.T) {
	d := testDaemon(t, DaemonOptions{},
		ClusterSpec{Name: "alpha", Images: checker.ClusterImages(testCluster(t)), Rounds: 3},
		ClusterSpec{Name: "beta", Images: checker.ClusterImages(testCluster(t)), Rounds: 3},
	)
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var hz struct {
		Status   string `json:"status"`
		Clusters int    `json:"clusters"`
	}
	if resp := getJSON(t, srv.URL+"/healthz", &hz); resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if hz.Status != "ok" || hz.Clusters != 2 {
		t.Fatalf("healthz %+v", hz)
	}

	var list []ClusterSummary
	getJSON(t, srv.URL+"/api/v1/clusters", &list)
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "beta" {
		t.Fatalf("clusters %+v", list)
	}
	for _, c := range list {
		if c.Status != "ok" || c.Rounds != 3 || c.Failures != 0 {
			t.Fatalf("cluster %+v", c)
		}
	}

	var rep Report
	getJSON(t, srv.URL+"/api/v1/clusters/beta/report", &rep)
	if rep.Schema != ReportSchema || rep.Cluster != "beta" || rep.Status != "ok" {
		t.Fatalf("report %+v", rep)
	}
	if rep.RulesVersion != DefaultRules().Version {
		t.Fatalf("rules version %d", rep.RulesVersion)
	}
	if rep.Rounds != 3 || len(rep.History) != 3 || rep.Stats.Checks != 3 {
		t.Fatalf("rounds %d, history %d, checks %d", rep.Rounds, len(rep.History), rep.Stats.Checks)
	}
	for i, h := range rep.History {
		if h.Round != i+1 || h.Err != "" {
			t.Fatalf("history[%d] = %+v", i, h)
		}
	}

	if resp := getJSON(t, srv.URL+"/api/v1/clusters/nope/report", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown cluster status %d", resp.StatusCode)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`health_rounds_total{cluster="alpha"} 3`,
		`health_rounds_total{cluster="beta"} 3`,
		`health_findings_critical{cluster="alpha"} 0`,
		`health_tracker_checks{cluster="beta"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
	// One TYPE line per metric across the whole multi-cluster exposition.
	if n := strings.Count(text, "# TYPE health_rounds_total counter"); n != 1 {
		t.Fatalf("%d TYPE lines for health_rounds_total", n)
	}
}

// TestDaemonGradesInjectedFault: a fault injected into a live cluster
// surfaces in the report with a severity, the rule that graded it, and
// a suggested action — the tentpole acceptance property in miniature.
func TestDaemonGradesInjectedFault(t *testing.T) {
	c := testCluster(t)
	d := testDaemon(t, DaemonOptions{},
		ClusterSpec{Name: "prod", Images: checker.ClusterImages(c), Rounds: 2})
	inj, err := inject.Inject(c, inject.MismatchFilterFID, "/w/f03")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	rep, ok := d.Report("prod")
	if !ok {
		t.Fatal("no report")
	}
	if rep.Status == "ok" || rep.Counts.Total() == 0 {
		t.Fatalf("fault not reported: %+v", rep)
	}
	var hit bool
	for _, f := range rep.Findings {
		if f.FID == inj.VictimFID.String() {
			hit = true
			if f.Action == "" || f.Rule == "" {
				t.Fatalf("victim graded without action/rule: %+v", f)
			}
		}
		if f.Severity != SevCritical && f.Severity != SevWarning && f.Severity != SevInfo {
			t.Fatalf("unparseable severity: %+v", f)
		}
	}
	if !hit {
		t.Fatalf("victim %v not in report: %+v", inj.VictimFID, rep.Findings)
	}
	sum := d.Clusters()[0]
	if sum.Status != rep.Status || sum.Findings != rep.Counts {
		t.Fatalf("summary %+v diverges from report %+v", sum, rep.Counts)
	}
}

// countingLock is a sync.Locker that records the maximum number of
// concurrent holders across every lock sharing the same counters.
type countingLock struct {
	mu       sync.Mutex
	cur, max *atomic.Int32
}

func (l *countingLock) Lock() {
	l.mu.Lock()
	cur := l.cur.Add(1)
	for {
		old := l.max.Load()
		if cur <= old || l.max.CompareAndSwap(old, cur) {
			return
		}
	}
}

func (l *countingLock) Unlock() {
	l.cur.Add(-1)
	l.mu.Unlock()
}

// TestDaemonPoolBoundsConcurrentRounds: with a one-slot worker pool,
// three trackers' rounds never overlap — each round runs under its
// cluster's quiesce lock, and the shared counters would catch any two
// holders at once.
func TestDaemonPoolBoundsConcurrentRounds(t *testing.T) {
	var cur, peak atomic.Int32
	specs := make([]ClusterSpec, 3)
	for i := range specs {
		specs[i] = ClusterSpec{
			Name:    fmt.Sprintf("c%d", i),
			Images:  checker.ClusterImages(testCluster(t)),
			Rounds:  3,
			Quiesce: &countingLock{cur: &cur, max: &peak},
		}
	}
	d := testDaemon(t, DaemonOptions{Workers: 1}, specs...)
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != 1 {
		t.Fatalf("peak concurrent rounds %d with a 1-slot pool", got)
	}
	for _, c := range d.Clusters() {
		if c.Rounds != 3 {
			t.Fatalf("cluster %s ran %d rounds", c.Name, c.Rounds)
		}
	}
}

// TestDaemonSurvivesFailedRounds: injected scan faults fail two rounds;
// the daemon records them (failure counter, history entries, last
// error) and keeps watching — the feed left intact retries, and a
// clean round clears the error.
func TestDaemonSurvivesFailedRounds(t *testing.T) {
	c := testCluster(t)
	d := testDaemon(t, DaemonOptions{},
		ClusterSpec{Name: "flaky", Images: checker.ClusterImages(c), Rounds: 4})
	d.Tracker("flaky").InjectScanFault(&inject.ScanFault{FailEvery: 1, MaxFailures: 2})
	// Dirty an inode so the early rounds have something to scan (and
	// fail on).
	if _, err := c.Create("/w/late", 2*64<<10); err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep, _ := d.Report("flaky")
	if rep.Failures != 2 {
		t.Fatalf("failures %d (history %+v)", rep.Failures, rep.History)
	}
	if rep.LastError != "" {
		t.Fatalf("clean round did not clear the error: %q", rep.LastError)
	}
	if rep.Status != "ok" || rep.Rounds != 2 {
		t.Fatalf("status %s after %d clean rounds", rep.Status, rep.Rounds)
	}
	var failed int
	for _, h := range rep.History {
		if h.Err != "" {
			failed++
			if !strings.Contains(h.Err, "injected scan fault") {
				t.Fatalf("history error %q", h.Err)
			}
		}
	}
	if failed != 2 {
		t.Fatalf("%d failed history entries", failed)
	}
	if rep.Stats.InodesRescanned == 0 {
		t.Fatal("the retried feed never committed")
	}
}

// TestDaemonStatePersistence: a daemon's tracker state survives into a
// successor process — the second daemon resumes the lifetime counters
// instead of starting cold.
func TestDaemonStatePersistence(t *testing.T) {
	c := testCluster(t)
	images := checker.ClusterImages(c)
	state := t.TempDir()

	d1 := testDaemon(t, DaemonOptions{},
		ClusterSpec{Name: "durable", Images: images, StateDir: state, Rounds: 3})
	if err := d1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := d1.Tracker("durable").Stats()
	if want.Checks != 3 {
		t.Fatalf("first daemon ran %d checks", want.Checks)
	}

	d2 := testDaemon(t, DaemonOptions{},
		ClusterSpec{Name: "durable", Images: images, StateDir: state, Rounds: 1})
	if got := d2.Tracker("durable").Stats(); got != want {
		t.Fatalf("successor started from %+v, want %+v", got, want)
	}
}

// TestDaemonRescanEvery: the periodic scrub fires on schedule.
func TestDaemonRescanEvery(t *testing.T) {
	d := testDaemon(t, DaemonOptions{},
		ClusterSpec{Name: "scrubbed", Images: checker.ClusterImages(testCluster(t)),
			Rounds: 4, RescanEvery: 2})
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := d.Tracker("scrubbed").Stats().Rescans; got != 2 {
		t.Fatalf("%d rescans after 4 rounds with rescan_every=2", got)
	}
}

// TestDaemonRunCancellation: cancelling the run context stops unbounded
// watchers cleanly (nil error).
func TestDaemonRunCancellation(t *testing.T) {
	d := testDaemon(t, DaemonOptions{},
		ClusterSpec{Name: "forever", Images: checker.ClusterImages(testCluster(t))})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()
	// Let at least one round land before pulling the plug.
	deadline := time.Now().Add(5 * time.Second)
	for d.Clusters()[0].Rounds == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("cancelled run: %v", err)
	}
	if d.Clusters()[0].Rounds == 0 {
		t.Fatal("no round completed before cancellation")
	}
}

// TestNewDaemonFromConfig: the config-file path end to end — images
// loaded from imgdir directories, rules from a file, state resumed.
func TestNewDaemonFromConfig(t *testing.T) {
	root := t.TempDir()
	for _, name := range []string{"east", "west"} {
		dir := filepath.Join(root, name)
		if err := imgdir.Save(dir, checker.ClusterImages(testCluster(t))); err != nil {
			t.Fatal(err)
		}
	}
	rulesPath := writeRules(t, DefaultRules())
	cfg := &Config{
		Schema:   ConfigSchema,
		Rules:    rulesPath,
		Interval: Duration{time.Millisecond},
		Workers:  2,
		Clusters: []ClusterConfig{
			{Name: "east", Dir: filepath.Join(root, "east"), State: filepath.Join(root, "east-state")},
			{Name: "west", Dir: filepath.Join(root, "west")},
		},
	}
	blob, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(root, "fleet.json")
	if err := os.WriteFile(cfgPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadConfig(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemonFromConfig(loaded)
	if err != nil {
		t.Fatal(err)
	}
	d.BoundRounds(2)
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Clusters() {
		if c.Status != "ok" || c.Rounds != 2 {
			t.Fatalf("cluster %+v", c)
		}
	}
	if _, err := os.Stat(filepath.Join(root, "east-state", "tracker.snap")); err != nil {
		t.Fatalf("state not persisted: %v", err)
	}

	if _, err := NewDaemonFromConfig(&Config{Schema: "nope"}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := NewDaemonFromConfig(&Config{Schema: ConfigSchema,
		Clusters: []ClusterConfig{{Name: "ghost", Dir: filepath.Join(root, "missing")}}}); err == nil {
		t.Fatal("missing image dir accepted")
	}
}

func TestAddClusterValidation(t *testing.T) {
	d := testDaemon(t, DaemonOptions{})
	images := checker.ClusterImages(testCluster(t))
	if err := d.AddCluster(ClusterSpec{Name: "bad name", Images: images}); err == nil {
		t.Fatal("invalid name accepted")
	}
	if err := d.AddCluster(ClusterSpec{Name: "a", Images: images}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddCluster(ClusterSpec{Name: "a", Images: images}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := testDaemon(t, DaemonOptions{}).Run(context.Background()); err == nil {
		t.Fatal("empty daemon ran")
	}
}
