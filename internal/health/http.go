package health

import (
	"encoding/json"
	"net/http"

	"faultyrank/internal/telemetry"
	"faultyrank/internal/trace"
)

// Handler serves the daemon's report API:
//
//	GET /healthz                          liveness + fleet status
//	GET /api/v1/clusters                  one summary row per cluster
//	GET /api/v1/clusters/{name}/report    a cluster's full report
//	GET /api/v1/clusters/{name}/journal   the cluster's flight record,
//	                                      rendered as a frtrace timeline
//	GET /metrics                          Prometheus exposition, every
//	                                      series labeled cluster="..."
//
// The handler is safe to serve while Run's watchers write: report
// state is read under each member's lock.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		clusters := d.Clusters()
		worst := "ok"
		// A stale cluster outranks findings-based grades short of
		// critical: its tally is stale by definition, so the fleet
		// status must surface the wedged tracker, not the old counts.
		rank := map[string]int{"ok": 0, "pending": 1, "info": 2, "warning": 3, "stale": 4, "critical": 5}
		for _, c := range clusters {
			if rank[c.Status] > rank[worst] {
				worst = c.Status
			}
		}
		writeJSON(w, map[string]any{
			"status":   worst,
			"clusters": len(clusters),
		})
	})
	mux.HandleFunc("GET /api/v1/clusters", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.Clusters())
	})
	mux.HandleFunc("GET /api/v1/clusters/{name}/report", func(w http.ResponseWriter, r *http.Request) {
		rep, ok := d.Report(r.PathValue("name"))
		if !ok {
			http.Error(w, `{"error":"unknown cluster"}`, http.StatusNotFound)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("GET /api/v1/clusters/{name}/journal", func(w http.ResponseWriter, r *http.Request) {
		sections, ok := d.Journal(r.PathValue("name"))
		if !ok {
			http.Error(w, `{"error":"unknown cluster"}`, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = trace.Build(sections).WriteJSON(w)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		_ = telemetry.WritePrometheusLabeled(w, "cluster", d.MetricsSnapshots())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
