package health

import (
	"faultyrank/internal/checker"
	"faultyrank/internal/online"
)

// ReportSchema identifies the report JSON layout served by the API.
const ReportSchema = "frhealthd/report/v1"

// GradedFinding is one checker finding with its severity grade — the
// unit the report API serves. The geometry fields (kind, fid, score,
// blast) come from the checker; the grade (severity, rule, action)
// from the rules engine.
type GradedFinding struct {
	Kind   string  `json:"kind"`
	FID    string  `json:"fid"`
	Detail string  `json:"detail"`
	Score  float64 `json:"score,omitempty"`
	Blast  int     `json:"blast,omitempty"`

	Severity Severity `json:"severity"`
	// Rule names the grading clause that matched.
	Rule string `json:"rule"`
	// Action is the suggested operator action.
	Action string `json:"action"`
	// Repairs are the checker's recommended repair actions, rendered.
	Repairs []string `json:"repairs,omitempty"`
}

// gradeFindings classifies a check's findings under a rule set.
func gradeFindings(rs *RuleSet, findings []checker.Finding) []GradedFinding {
	out := make([]GradedFinding, 0, len(findings))
	for _, f := range findings {
		g := rs.Grade(f)
		gf := GradedFinding{
			Kind:     f.Kind.String(),
			FID:      f.FID.String(),
			Detail:   f.Detail,
			Score:    f.Score,
			Blast:    f.Blast,
			Severity: g.Severity,
			Rule:     g.Rule,
			Action:   g.Action,
		}
		for _, r := range f.Repairs {
			gf.Repairs = append(gf.Repairs, r.String())
		}
		out = append(out, gf)
	}
	return out
}

// SeverityCounts tallies findings by grade.
type SeverityCounts struct {
	Critical int `json:"critical"`
	Warning  int `json:"warning"`
	Info     int `json:"info"`
}

func countSeverities(findings []GradedFinding) SeverityCounts {
	var c SeverityCounts
	for _, f := range findings {
		switch f.Severity {
		case SevCritical:
			c.Critical++
		case SevWarning:
			c.Warning++
		default:
			c.Info++
		}
	}
	return c
}

// Total is the tally across all grades.
func (c SeverityCounts) Total() int { return c.Critical + c.Warning + c.Info }

// status maps a tally onto the cluster status string: the worst grade
// present, or "ok".
func (c SeverityCounts) status() string {
	switch {
	case c.Critical > 0:
		return "critical"
	case c.Warning > 0:
		return "warning"
	case c.Info > 0:
		return "info"
	default:
		return "ok"
	}
}

// RoundSummary is one watch round's entry in a cluster's history ring.
// A failed round carries its error and no tally.
type RoundSummary struct {
	Round     int            `json:"round"`
	Refreshed int            `json:"refreshed"`
	Findings  SeverityCounts `json:"findings"`
	// Warm reports whether the round's ranking warm-started; Iterations
	// is its converged iteration count.
	Warm       bool   `json:"warm"`
	Iterations int    `json:"iterations"`
	Err        string `json:"error,omitempty"`
}

// ClusterSummary is one cluster's row in the fleet listing.
type ClusterSummary struct {
	Name string `json:"name"`
	// Status is "pending" before the first completed round; "stale" when
	// no round has settled within the daemon's staleness window (the
	// findings tally is then too old to trust); otherwise the worst
	// severity among current findings or "ok".
	Status   string         `json:"status"`
	Rounds   int            `json:"rounds"`
	Failures int            `json:"failures"`
	Findings SeverityCounts `json:"findings"`
	// LastSettledAge is the seconds since the last settled round (0
	// while pending) — the freshness behind the "stale" status.
	LastSettledAge float64 `json:"last_settled_age_seconds,omitempty"`
}

// Report is one cluster's full health report.
type Report struct {
	Schema  string `json:"schema"`
	Cluster string `json:"cluster"`
	// RulesVersion is the grading policy revision that produced the
	// severities below.
	RulesVersion int    `json:"rules_version"`
	Status       string `json:"status"`
	// Rounds counts completed watch rounds; Failures counts failed ones.
	Rounds   int `json:"rounds"`
	Failures int `json:"failures"`
	// LastError is the most recent failed round's error ("" after a
	// clean round — a recovery clears it).
	LastError string `json:"last_error,omitempty"`

	Counts   SeverityCounts      `json:"counts"`
	Findings []GradedFinding     `json:"findings"`
	Stats    online.TrackerStats `json:"tracker"`
	// History is the round-history ring, oldest first.
	History []RoundSummary `json:"history"`
}
