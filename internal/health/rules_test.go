package health

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"faultyrank/internal/checker"
)

func TestDefaultRulesValidate(t *testing.T) {
	if err := DefaultRules().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range DefaultRules().Rules {
		if r.Action == "" {
			t.Fatalf("rule %q suggests no action", r.Name)
		}
	}
	if DefaultRules().Default.Action == "" {
		t.Fatal("fallback suggests no action")
	}
}

// TestGradeOrdering: the escalation clauses fire in their declared
// order — a kind-specific catastrophe beats the blast rule, blast
// beats rank depth, rank depth beats the per-kind grade, and each
// condition gates correctly.
func TestGradeOrdering(t *testing.T) {
	rs := DefaultRules()
	cases := []struct {
		name string
		f    checker.Finding
		rule string
		sev  Severity
	}{
		{"kind rule beats blast", checker.Finding{Kind: checker.DuplicateIdentity, Blast: 50}, "duplicate-identity", SevCritical},
		{"hot object escalates a warning kind", checker.Finding{Kind: checker.FaultyProperty, Blast: 9}, "hot-object", SevCritical},
		{"cool object keeps its kind grade", checker.Finding{Kind: checker.FaultyProperty, Blast: 2}, "faulty-property", SevWarning},
		{"deep rank escalates", checker.Finding{Kind: checker.FaultyID, Score: 0.05}, "deep-rank-fault", SevCritical},
		{"shallow rank does not", checker.Finding{Kind: checker.FaultyID, Score: 0.3}, "faulty-id", SevWarning},
		{"unscored finding never matches max_score", checker.Finding{Kind: checker.StaleObject}, "stale-object", SevWarning},
		{"orphan is informational", checker.Finding{Kind: checker.OrphanObject}, "orphan-object", SevInfo},
		{"unknown kind falls through", checker.Finding{Kind: checker.FindingKind(99)}, "default", SevWarning},
	}
	for _, tc := range cases {
		g := rs.Grade(tc.f)
		if g.Rule != tc.rule || g.Severity != tc.sev {
			t.Errorf("%s: graded %s/%v (want %s/%v)", tc.name, g.Rule, g.Severity, tc.rule, tc.sev)
		}
		if g.Action == "" {
			t.Errorf("%s: no suggested action", tc.name)
		}
	}
}

func writeRules(t *testing.T, rs *RuleSet) string {
	t.Helper()
	blob, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rules.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadRulesRoundTrip: a marshalled rule set loads back and grades
// identically — severity names, score thresholds and all.
func TestLoadRulesRoundTrip(t *testing.T) {
	custom := &RuleSet{
		Schema:  RulesSchema,
		Version: 7,
		Rules: []Rule{
			{Name: "everything-is-fine", Kind: "*", Severity: SevInfo, Action: "relax"},
		},
		Default: Fallback{Severity: SevCritical, Action: "panic"},
	}
	got, err := LoadRules(writeRules(t, custom))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 {
		t.Fatalf("version %d", got.Version)
	}
	g := got.Grade(checker.Finding{Kind: checker.DuplicateIdentity})
	if g.Severity != SevInfo || g.Rule != "everything-is-fine" {
		t.Fatalf("graded %+v", g)
	}
}

func TestLoadRulesRejects(t *testing.T) {
	bad := []struct {
		name string
		rs   *RuleSet
	}{
		{"wrong schema", &RuleSet{Schema: "nope", Version: 1}},
		{"zero version", &RuleSet{Schema: RulesSchema}},
		{"unnamed rule", &RuleSet{Schema: RulesSchema, Version: 1, Rules: []Rule{{Severity: SevInfo}}}},
		{"duplicate names", &RuleSet{Schema: RulesSchema, Version: 1, Rules: []Rule{
			{Name: "x", Severity: SevInfo}, {Name: "x", Severity: SevInfo}}}},
		{"non-positive max_score", &RuleSet{Schema: RulesSchema, Version: 1, Rules: []Rule{
			{Name: "x", MaxScore: f64(-1)}}}},
		{"negative min_blast", &RuleSet{Schema: RulesSchema, Version: 1, Rules: []Rule{
			{Name: "x", MinBlast: -2}}}},
	}
	for _, tc := range bad {
		if _, err := LoadRules(writeRules(t, tc.rs)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := LoadRules(filepath.Join(t.TempDir(), "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRules(path); err == nil {
		t.Fatal("garbage accepted")
	}
	// A bad severity name must fail at parse, not silently grade as info.
	path = filepath.Join(t.TempDir(), "sev.json")
	blob := `{"schema":"` + RulesSchema + `","version":1,"rules":[{"name":"x","severity":"fatal","action":"a"}],"default":{"severity":"info","action":"b"}}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRules(path); err == nil || !strings.Contains(err.Error(), "unknown severity") {
		t.Fatalf("bad severity: %v", err)
	}
}

func TestSeverityJSON(t *testing.T) {
	for _, s := range []Severity{SevInfo, SevWarning, SevCritical} {
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got Severity
		if err := json.Unmarshal(blob, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("%v round-tripped to %v", s, got)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Fatal("unknown severity accepted")
	}
	if _, err := ParseSeverity("Critical"); err == nil {
		t.Fatal("severity names are lowercase")
	}
}

func TestConfigValidate(t *testing.T) {
	ok := &Config{Schema: ConfigSchema, Clusters: []ClusterConfig{{Name: "a", Dir: "x"}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Config{
		{Schema: "nope", Clusters: []ClusterConfig{{Name: "a", Dir: "x"}}},
		{Schema: ConfigSchema},
		{Schema: ConfigSchema, Workers: -1, Clusters: []ClusterConfig{{Name: "a", Dir: "x"}}},
		{Schema: ConfigSchema, Clusters: []ClusterConfig{{Name: "a/b", Dir: "x"}}},
		{Schema: ConfigSchema, Clusters: []ClusterConfig{{Name: "", Dir: "x"}}},
		{Schema: ConfigSchema, Clusters: []ClusterConfig{{Name: "a", Dir: " "}}},
		{Schema: ConfigSchema, Clusters: []ClusterConfig{{Name: "a", Dir: "x"}, {Name: "a", Dir: "y"}}},
		{Schema: ConfigSchema, Clusters: []ClusterConfig{{Name: "a", Dir: "x", RescanEvery: -1}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	var cfg Config
	if err := json.Unmarshal([]byte(`{"schema":"`+ConfigSchema+`","interval":"150ms","clusters":[{"name":"a","dir":"x"}]}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Interval.Milliseconds() != 150 {
		t.Fatalf("interval %v", cfg.Interval)
	}
	blob, err := json.Marshal(cfg.Interval)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `"150ms"` {
		t.Fatalf("marshalled %s", blob)
	}
	if err := json.Unmarshal([]byte(`{"interval":"soon"}`), &cfg); err == nil {
		t.Fatal("bad duration accepted")
	}
}
