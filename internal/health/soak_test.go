package health

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/lustre"
	"faultyrank/internal/repair"
	"faultyrank/internal/scanner"
)

// soakMember is one cluster's slice of the soak fleet: the live
// cluster, its quiesce lock (shared with the mutator), and the fault
// scenario this cluster will suffer.
type soakMember struct {
	name     string
	cluster  *lustre.Cluster
	quiesce  sync.Mutex
	scenario inject.Scenario
	victim   string
}

// coldFindings is the offline ground truth: a fresh full scan and cold
// analysis of the cluster's images, quiesced.
func coldFindings(t *testing.T, sm *soakMember) []checker.Finding {
	t.Helper()
	sm.quiesce.Lock()
	defer sm.quiesce.Unlock()
	images := checker.ClusterImages(sm.cluster)
	parts := make([]*scanner.Partial, len(images))
	for i, img := range images {
		p, err := scanner.ScanImage(img, 0)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = p
	}
	res := &checker.Result{}
	if err := checker.Analyze(res, images, parts, checker.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return res.Findings
}

// findingKeys reduces findings to a sorted kind/FID multiset — the
// drift comparison between the daemon's view and the ground truth.
func findingKeys(fs []checker.Finding) []string {
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		out = append(out, f.Kind.String()+" "+f.FID.String())
	}
	sort.Strings(out)
	return out
}

// mentionsFID reports whether a graded finding concerns the FID —
// directly, in its detail, or through a recommended repair.
func mentionsFID(f GradedFinding, fid string) bool {
	if f.FID == fid || strings.Contains(f.Detail, fid) {
		return true
	}
	for _, r := range f.Repairs {
		if strings.Contains(r, fid) {
			return true
		}
	}
	return false
}

func gradedKeys(fs []GradedFinding) []string {
	out := make([]string, 0, len(fs))
	for _, f := range fs {
		out = append(out, f.Kind+" "+f.FID)
	}
	sort.Strings(out)
	return out
}

func assertNoDrift(t *testing.T, sm *soakMember, d *Daemon) {
	t.Helper()
	cold := findingKeys(coldFindings(t, sm))
	rep, ok := d.Report(sm.name)
	if !ok {
		t.Fatalf("%s: no report", sm.name)
	}
	got := gradedKeys(rep.Findings)
	if len(got) != len(cold) {
		t.Fatalf("%s: daemon reports %d finding(s), offline ground truth %d:\n daemon %v\n cold   %v",
			sm.name, len(got), len(cold), got, cold)
	}
	for i := range got {
		if got[i] != cold[i] {
			t.Fatalf("%s: drift at %d:\n daemon %v\n cold   %v", sm.name, i, got, cold)
		}
	}
	// The report's tracker stats must be the tracker's — not a cached or
	// re-derived copy that could lag the daemon's own accounting.
	if rep.Stats != d.Tracker(sm.name).Stats() {
		t.Fatalf("%s: report stats %+v drift from tracker %+v",
			sm.name, rep.Stats, d.Tracker(sm.name).Stats())
	}
}

// TestFleetSoak drives one daemon through the full multi-cluster
// lifecycle the tentpole promises: four clusters watched concurrently
// on a two-slot pool under live mutation, injected scan faults failing
// rounds mid-soak, a periodic scrub, then a distinct Fig. 7 fault per
// cluster — detected and graded with an action — repaired through the
// change feed, and re-checked clean, with zero drift between the
// daemon's view and a cold offline analysis at every settled point.
func TestFleetSoak(t *testing.T) {
	scenarios := []inject.Scenario{
		inject.DanglingDirent,
		inject.UnrefLOVEADropped,
		inject.UnrefStaleObject,
		inject.MismatchFilterFID,
	}
	fleet := make([]*soakMember, len(scenarios))
	specs := make([]ClusterSpec, len(scenarios))
	for i, s := range scenarios {
		sm := &soakMember{
			name:     fmt.Sprintf("soak%d", i),
			cluster:  testCluster(t),
			scenario: s,
			victim:   fmt.Sprintf("/w/f%02d", i),
		}
		fleet[i] = sm
		specs[i] = ClusterSpec{
			Name:    sm.name,
			Images:  checker.ClusterImages(sm.cluster),
			Quiesce: &sm.quiesce,
		}
	}
	// Member 0 scrubs every 3 completed rounds; member 1 suffers scan
	// faults that fail two of its early rounds.
	specs[0].RescanEvery = 3
	d := testDaemon(t, DaemonOptions{Workers: 2}, specs...)
	d.Tracker(fleet[1].name).InjectScanFault(&inject.ScanFault{FailEvery: 2, MaxFailures: 2})

	// Pre-dirty every feed so round one has real work (and the faulted
	// member has enough scans to burn its failures early).
	for _, sm := range fleet {
		for j := 0; j < 3; j++ {
			if _, err := sm.cluster.Create(fmt.Sprintf("/w/pre-%d", j), 2*64<<10); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Phase 1: watch under live mutation. Each cluster's mutator churns
	// its own namespace under the shared quiesce lock.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, sm := range fleet {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sm.quiesce.Lock()
				p := fmt.Sprintf("/w/churn-%03d", i)
				if _, err := sm.cluster.Create(p, 64<<10); err == nil && i%3 == 2 {
					_ = sm.cluster.Unlink(p)
				}
				sm.quiesce.Unlock()
				time.Sleep(time.Millisecond)
			}
		}()
	}
	d.BoundRounds(6)
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// Phase 2: drain — two quiet rounds consume whatever the mutators
	// left in the feeds, then the daemon's view must match a cold scan.
	d.BoundRounds(2)
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, sm := range fleet {
		assertNoDrift(t, sm, d)
	}
	if rep, _ := d.Report(fleet[1].name); rep.Failures != 2 {
		t.Fatalf("faulted member recorded %d failed rounds (want 2): %+v", rep.Failures, rep.History)
	}
	if got := d.Tracker(fleet[0].name).Stats().Rescans; got == 0 {
		t.Fatal("scrubbed member never rescanned")
	}

	// Phase 3: every cluster suffers its own Fig. 7 scenario; two watch
	// rounds later each fault must be in the report, graded, with a
	// suggested action.
	injected := make([]*inject.Injection, len(fleet))
	for i, sm := range fleet {
		sm.quiesce.Lock()
		inj, err := inject.Inject(sm.cluster, sm.scenario, sm.victim)
		sm.quiesce.Unlock()
		if err != nil {
			t.Fatalf("%s: %v", sm.name, err)
		}
		injected[i] = inj
	}
	d.BoundRounds(2)
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, sm := range fleet {
		assertNoDrift(t, sm, d)
		rep, _ := d.Report(sm.name)
		if rep.Status == "ok" || rep.Counts.Total() == 0 {
			t.Fatalf("%s: injected %v not reported: %+v", sm.name, sm.scenario, rep.Counts)
		}
		// The victim surfaces either as the finding's own FID or through
		// the recommended repairs (a stale object's quarantine names the
		// phantom owner as its source).
		victim := injected[i].VictimFID.String()
		var hit bool
		for _, f := range rep.Findings {
			if !mentionsFID(f, victim) {
				continue
			}
			hit = true
			if f.Action == "" || f.Rule == "" {
				t.Fatalf("%s: victim graded without rule/action: %+v", sm.name, f)
			}
		}
		if !hit {
			t.Fatalf("%s: victim %s of %v missing from report %v",
				sm.name, victim, sm.scenario, gradedKeys(rep.Findings))
		}
	}
	for _, c := range d.Clusters() {
		if c.Status == "ok" || c.Status == "pending" {
			t.Fatalf("cluster %s reads %s with a live fault", c.Name, c.Status)
		}
	}

	// Phase 4: repair each cluster from the daemon's own last result —
	// the repairs flow through the change feed like any other mutation —
	// then re-check clean.
	for _, sm := range fleet {
		res := d.lastResult(sm.name)
		if res == nil || len(res.Findings) == 0 {
			t.Fatalf("%s: no result to repair from", sm.name)
		}
		sm.quiesce.Lock()
		sum := repair.NewEngine(checker.ClusterImages(sm.cluster), res.Result).Apply(res.Findings)
		sm.quiesce.Unlock()
		if sum.Applied == 0 {
			t.Fatalf("%s: nothing repaired: %v", sm.name, sum.Log)
		}
	}
	d.BoundRounds(2)
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, sm := range fleet {
		assertNoDrift(t, sm, d)
		rep, _ := d.Report(sm.name)
		if rep.Status != "ok" || rep.Counts.Total() != 0 {
			t.Fatalf("%s: not clean after repair: %+v", sm.name, rep.Findings)
		}
	}
}
