package repair

import (
	"fmt"
	"testing"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

func fig7Cluster(t testing.TB) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		dir := fmt.Sprintf("/proj%d", d)
		if err := c.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			if _, err := c.Create(fmt.Sprintf("%s/file%d", dir, f), 3*64<<10); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

// TestRepairRoundTripAllScenarios is the headline repair property: for
// every Fig. 7 scenario, inject → check → repair → re-check must end
// with a fully consistent file system (zero findings, zero unpaired
// edges) — the paper's claim that FaultyRank both identifies the root
// cause and fixes it.
func TestRepairRoundTripAllScenarios(t *testing.T) {
	for s := inject.Scenario(0); s < inject.NumScenarios; s++ {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			c := fig7Cluster(t)
			if _, err := inject.Inject(c, s, "/proj1/file2"); err != nil {
				t.Fatal(err)
			}
			images := checker.ClusterImages(c)
			res, err := checker.Run(images, checker.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Findings) == 0 {
				t.Fatal("injection produced no findings")
			}
			eng := NewEngine(images, res)
			sum := eng.Apply(res.Findings)
			if sum.Applied == 0 {
				t.Fatalf("nothing applied; log: %v", sum.Log)
			}

			verify, err := checker.Run(images, checker.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if verify.Stats.UnpairedEdges != 0 {
				t.Errorf("unpaired edges after repair: %d", verify.Stats.UnpairedEdges)
			}
			for _, f := range verify.Findings {
				t.Errorf("residual finding: %v %v: %s", f.Kind, f.FID, f.Detail)
			}
			if t.Failed() {
				t.Logf("repair log: %v", sum.Log)
			}
		})
	}
}

// TestRepairDetachedCycle: the reachability extension's island finding
// round-trips too — after re-rooting the island under /lost+found, the
// whole namespace is reachable and consistent again.
func TestRepairDetachedCycle(t *testing.T) {
	c := fig7Cluster(t)
	if _, err := inject.Inject(c, inject.DetachedCycle, "/proj1/file2"); err != nil {
		t.Fatal(err)
	}
	images := checker.ClusterImages(c)
	res, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FindingsOfKind(checker.DetachedNamespace)) != 1 {
		t.Fatalf("island not found: %+v", res.Findings)
	}
	eng := NewEngine(images, res)
	sum := eng.Apply(res.Findings)
	if sum.Applied == 0 {
		t.Fatalf("nothing applied: %v", sum.Log)
	}
	verify, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if verify.Stats.UnpairedEdges != 0 {
		t.Errorf("unpaired after island repair: %d", verify.Stats.UnpairedEdges)
	}
	for _, f := range verify.Findings {
		t.Errorf("residual: %v %v %s", f.Kind, f.FID, f.Detail)
	}
	if t.Failed() {
		t.Logf("repair log: %v", sum.Log)
	}
	// The re-rooted subtree is reachable under /lost+found.
	mdt := images[0]
	lf, found, _ := mdt.LookupDirent(c.RootIno(), "lost+found")
	if !found {
		t.Fatal("no /lost+found after island repair")
	}
	ents, _ := mdt.Dirents(lf.Ino)
	if len(ents) != 1 {
		t.Fatalf("lost+found entries = %d", len(ents))
	}
}

// TestRepairIdempotent: applying the same findings twice is harmless.
func TestRepairIdempotent(t *testing.T) {
	c := fig7Cluster(t)
	if _, err := inject.Inject(c, inject.DanglingDirent, "/proj1/file2"); err != nil {
		t.Fatal(err)
	}
	images := checker.ClusterImages(c)
	res, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(images, res)
	first := eng.Apply(res.Findings)
	second := eng.Apply(res.Findings)
	if second.Skipped > first.Skipped+first.Applied {
		t.Errorf("second apply failed hard: %+v", second)
	}
	verify, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(verify.Findings) != 0 {
		t.Errorf("residual findings after double apply: %d", len(verify.Findings))
	}
}

// TestRecreatedOwnerVisibleInLostFound: after the stale-object repair,
// the lost file is reachable under /lost+found with its full layout.
func TestRecreatedOwnerVisibleInLostFound(t *testing.T) {
	c := fig7Cluster(t)
	inj, err := inject.Inject(c, inject.UnrefStaleObject, "/proj1/file2")
	if err != nil {
		t.Fatal(err)
	}
	images := checker.ClusterImages(c)
	res, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(images, res)
	sum := eng.Apply(res.Findings)

	mdt := images[0]
	// find /lost+found via root dirents
	rootDe, found, err := mdt.LookupDirent(c.RootIno(), "lost+found")
	if err != nil || !found {
		t.Fatalf("no /lost+found after repair (%v); log %v", err, sum.Log)
	}
	ents, err := mdt.Dirents(rootDe.Ino)
	if err != nil || len(ents) != 1 {
		t.Fatalf("lost+found entries: %v %v", ents, err)
	}
	if got := lustre.FIDFromBytes(ents[0].Tag[:]); got != inj.VictimFID {
		t.Errorf("recreated owner FID = %v, want %v", got, inj.VictimFID)
	}
	raw, ok, _ := mdt.GetXattr(ents[0].Ino, lustre.XattrLOV)
	if !ok {
		t.Fatal("recreated owner has no LOVEA")
	}
	layout, err := lustre.DecodeLOVEA(raw)
	if err != nil || len(layout.Stripes) != 3 {
		t.Errorf("recreated layout: %+v %v", layout, err)
	}
	sz, _ := mdt.Size(ents[0].Ino)
	if sz != 3*64<<10 {
		t.Errorf("recreated size = %d", sz)
	}
}

// TestAdoptOrphanObject: a fully disconnected OST object (present, no
// relations at all) is wrapped in a fresh lost+found owner file.
func TestAdoptOrphanObject(t *testing.T) {
	c := fig7Cluster(t)
	// A stray object with an identity but neither filter-fid nor owner.
	ost := c.OSTs[1]
	ino, err := ost.Img.AllocInode(ldiskfs.TypeObject)
	if err != nil {
		t.Fatal(err)
	}
	strayFID := lustre.FID{Seq: lustre.OSTSeqBase + 1, Oid: 0xABCD}
	if err := ost.Img.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(strayFID)); err != nil {
		t.Fatal(err)
	}
	if err := ost.Img.SetSize(ino, 4096); err != nil {
		t.Fatal(err)
	}
	images := checker.ClusterImages(c)
	res, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasFinding(checker.OrphanObject, strayFID) {
		t.Fatalf("orphan not found: %+v", res.Findings)
	}
	eng := NewEngine(images, res)
	sum := eng.Apply(res.Findings)
	if sum.Applied == 0 {
		t.Fatalf("adoption not applied: %v", sum.Log)
	}
	verify, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(verify.Findings) != 0 || verify.Stats.UnpairedEdges != 0 {
		t.Fatalf("residuals after adoption: %d findings, %d unpaired; log %v",
			len(verify.Findings), verify.Stats.UnpairedEdges, sum.Log)
	}
	// The wrapper file references the stray object with the right size.
	mdt := images[0]
	lf, found, _ := mdt.LookupDirent(c.RootIno(), "lost+found")
	if !found {
		t.Fatal("no lost+found")
	}
	ents, _ := mdt.Dirents(lf.Ino)
	if len(ents) != 1 {
		t.Fatalf("lost+found entries: %d", len(ents))
	}
	sz, _ := mdt.Size(ents[0].Ino)
	if sz != 4096 {
		t.Errorf("wrapper size = %d", sz)
	}
}

// TestEngineErrorsAreSkipsNotFailures: actions on unknown FIDs are
// logged and skipped.
func TestEngineErrorsAreSkipsNotFailures(t *testing.T) {
	c := fig7Cluster(t)
	images := checker.ClusterImages(c)
	res, err := checker.Run(images, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(images, res)
	bogus := []checker.Finding{{
		Kind: checker.FaultyID,
		Repairs: []checker.RepairAction{{
			Op: 0, TargetFID: lustre.FID{Seq: 0xBAD, Oid: 1}, NewID: lustre.FID{Seq: 1, Oid: 1},
		}},
	}}
	sum := eng.Apply(bogus)
	if sum.Skipped != 1 || sum.Applied != 0 {
		t.Errorf("summary: %+v", sum)
	}
}
