package repair

import (
	"testing"

	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/lustre"
)

// corruptLinkEAOnly rewires one file's LinkEA to a bogus parent while
// its layout relations stay healthy — the plane-dilution case: the
// merged property rank is propped up by the paired LOVEA edges.
func corruptLinkEAOnly(t *testing.T, c *lustre.Cluster, p string) lustre.Entry {
	t.Helper()
	ent, err := c.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	link, err := lustre.EncodeLinkEA([]lustre.LinkEntry{
		{Parent: lustre.FID{Seq: 0xDEAD, Oid: 7}, Name: "misdirected"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MDT.Img.SetXattr(ent.Ino, lustre.XattrLink, link); err != nil {
		t.Fatal(err)
	}
	return ent
}

// TestSplitPassCatchesDilutedFault: the split-property option attributes
// a namespace-plane fault the merged ranks can dilute away, and the
// resulting repair round-trips to a consistent file system.
func TestSplitPassCatchesDilutedFault(t *testing.T) {
	c := fig7Cluster(t)
	ent := corruptLinkEAOnly(t, c, "/proj1/file2")
	images := checker.ClusterImages(c)

	opt := checker.DefaultOptions()
	opt.SplitProperties = true
	res, err := checker.Run(images, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasFinding(checker.FaultyProperty, ent.FID) {
		var got []string
		for _, f := range res.Findings {
			got = append(got, f.Kind.String()+" "+f.FID.String()+": "+f.Detail)
		}
		t.Fatalf("split pass did not attribute the LinkEA fault: %v", got)
	}

	eng := NewEngine(images, res)
	sum := eng.Apply(res.Findings)
	if sum.Applied == 0 {
		t.Fatalf("nothing applied: %v", sum.Log)
	}
	verify, err := checker.Run(images, opt)
	if err != nil {
		t.Fatal(err)
	}
	if verify.Stats.UnpairedEdges != 0 {
		t.Errorf("unpaired after split-guided repair: %d", verify.Stats.UnpairedEdges)
		t.Logf("repair log: %v", sum.Log)
	}
	for _, f := range verify.Findings {
		if f.Kind != checker.Ambiguous {
			t.Errorf("residual: %v %v %s", f.Kind, f.FID, f.Detail)
		}
	}
}

// TestSplitPassNoFalsePositives: the option adds nothing on a clean
// cluster.
func TestSplitPassNoFalsePositives(t *testing.T) {
	c := fig7Cluster(t)
	opt := checker.DefaultOptions()
	opt.SplitProperties = true
	res, err := checker.RunCluster(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("split pass invented findings on a clean cluster: %d", len(res.Findings))
	}
}

// TestSplitPassDoesNotDuplicate: vertices already flagged by the merged
// pass are not re-reported.
func TestSplitPassDoesNotDuplicate(t *testing.T) {
	c := fig7Cluster(t)
	// A wiped directory is attributed by the merged pass already.
	dir, err := c.Stat("/proj1")
	if err != nil {
		t.Fatal(err)
	}
	ranges, err := c.MDT.Img.DirentBlockRanges(dir.Ino)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranges {
		c.MDT.Img.CorruptBytes(r[0], make([]byte, r[1]-r[0]))
	}
	c.MDT.Img.RemoveXattr(dir.Ino, lustre.XattrLink)

	opt := checker.DefaultOptions()
	opt.SplitProperties = true
	res, err := checker.RunCluster(c, opt)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, f := range res.Findings {
		if f.FID == dir.FID && f.Field == core.FieldProperty && f.Kind == checker.FaultyProperty {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("dir property reported %d times", seen)
	}
}
