// Package repair applies the checker's recommended repairs back to the
// server images (paper §III-F): faulty properties are overwritten from
// their healthy counterparts, wrong identities are restored from the FID
// their peers still reference, bogus pointers are dropped, and objects
// whose relations cannot be reconstructed are parked under /lost+found —
// where FaultyRank, unlike LFSCK, can recreate the lost owner file from
// the stranded objects' filter-fids.
//
// The engine is idempotent: re-applying a repair that already holds is a
// no-op, so overlapping findings are harmless.
package repair

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"faultyrank/internal/agg"
	"faultyrank/internal/checker"
	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// LostFoundSeq is the reserved FID sequence for objects the engine
// creates (the /lost+found directory and recreated owner files).
const LostFoundSeq uint64 = 0x200000FF0

// Summary reports what the engine did.
type Summary struct {
	Applied int
	Skipped int
	Log     []string
}

func (s *Summary) logf(format string, args ...interface{}) {
	s.Log = append(s.Log, fmt.Sprintf(format, args...))
}

// Engine applies repair actions against a set of server images.
type Engine struct {
	images map[string]*ldiskfs.Image
	u      *agg.Unified

	// DefaultStripeSize seeds LOVEAs the engine must create from
	// scratch; the checker cannot recover the original stripe size when
	// the whole EA is gone.
	DefaultStripeSize uint32

	nextLostOid uint32
	lfIno       ldiskfs.Ino // /lost+found inode on the MDT, 0 until made
	lfFID       lustre.FID
}

// NewEngine builds an engine over the images of a finished checker run.
func NewEngine(images []*ldiskfs.Image, res *checker.Result) *Engine {
	byLabel := make(map[string]*ldiskfs.Image, len(images))
	for _, img := range images {
		byLabel[img.Label()] = img
	}
	return &Engine{
		images:            byLabel,
		u:                 res.Unified,
		DefaultStripeSize: 64 << 10,
	}
}

// mdt returns the primary metadata target image (the lowest-numbered
// MDT label — the one holding the root and /lost+found).
func (e *Engine) mdt() (*ldiskfs.Image, error) {
	best := ""
	for label := range e.images {
		if !strings.HasPrefix(label, "mdt") {
			continue
		}
		if best == "" || label < best {
			best = label
		}
	}
	if best == "" {
		return nil, errors.New("repair: no MDT image")
	}
	return e.images[best], nil
}

// locate resolves a FID to its first claiming inode.
func (e *Engine) locate(f lustre.FID) (*ldiskfs.Image, ldiskfs.Ino, error) {
	g, ok := e.u.GID(f)
	if !ok || len(e.u.Claims[g]) == 0 {
		return nil, 0, fmt.Errorf("repair: %v has no physical inode", f)
	}
	c := e.u.Claims[g][0]
	img := e.images[c.Server]
	if img == nil {
		return nil, 0, fmt.Errorf("repair: unknown server %q", c.Server)
	}
	return img, c.Ino, nil
}

// Apply executes every repair action attached to the findings. Actions
// that cannot be applied are logged and counted as skipped, never fatal:
// a checker must fix what it can.
func (e *Engine) Apply(findings []checker.Finding) *Summary {
	sum := &Summary{}
	// Stale objects sharing one phantom owner are regrouped so the owner
	// is recreated exactly once with a full layout.
	staleByOwner := make(map[lustre.FID][]lustre.FID)
	for _, f := range findings {
		for _, a := range f.Repairs {
			if a.Op == core.RepairQuarantine && a.Kind == graph.KindFilterFID {
				staleByOwner[a.SourceFID] = append(staleByOwner[a.SourceFID], a.TargetFID)
				continue
			}
			if err := e.apply(a, sum); err != nil {
				sum.Skipped++
				sum.logf("skip %v: %v", a, err)
			} else {
				sum.Applied++
			}
		}
	}
	owners := make([]lustre.FID, 0, len(staleByOwner))
	for o := range staleByOwner {
		owners = append(owners, o)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i].Less(owners[j]) })
	for _, owner := range owners {
		objs := staleByOwner[owner]
		sort.Slice(objs, func(i, j int) bool { return objs[i].Less(objs[j]) })
		if err := e.recreateOwner(owner, objs, sum); err != nil {
			sum.Skipped++
			sum.logf("skip recreate %v: %v", owner, err)
		} else {
			sum.Applied++
		}
	}
	return sum
}

func (e *Engine) apply(a checker.RepairAction, sum *Summary) error {
	switch a.Op {
	case core.RepairSetID:
		return e.setID(a, sum)
	case core.RepairSetProperty:
		return e.setProperty(a, sum)
	case core.RepairDropPointer:
		return e.dropPointer(a, sum)
	case core.RepairQuarantine:
		return e.quarantine(a, sum)
	default:
		return fmt.Errorf("unknown op %v", a.Op)
	}
}

// setID restores an object's identity: its LMA is overwritten with the
// FID its peers reference.
func (e *Engine) setID(a checker.RepairAction, sum *Summary) error {
	if a.NewID.IsZero() {
		return errors.New("set-id without resolved identity")
	}
	img, ino, err := e.locate(a.TargetFID)
	if err != nil {
		return err
	}
	if err := img.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(a.NewID)); err != nil {
		return err
	}
	sum.logf("set-id %s/%d: %v -> %v", img.Label(), ino, a.TargetFID, a.NewID)
	return nil
}

// setProperty rewrites one pointing field of the target so it references
// the source, reconstructing the value from the source's own metadata.
func (e *Engine) setProperty(a checker.RepairAction, sum *Summary) error {
	switch a.Kind {
	case graph.KindDirent:
		return e.restoreDirent(a, sum)
	case graph.KindLinkEA:
		return e.restoreLinkEA(a, sum)
	case graph.KindLOVEA:
		return e.restoreLOVEA(a, sum)
	case graph.KindFilterFID:
		return e.restoreFilterFID(a, sum)
	default:
		return fmt.Errorf("set-property of kind %v unsupported", a.Kind)
	}
}

// restoreDirent re-adds the directory entry for source inside target,
// recovering the name from the child's LinkEA.
func (e *Engine) restoreDirent(a checker.RepairAction, sum *Summary) error {
	dirImg, dirIno, err := e.locate(a.TargetFID)
	if err != nil {
		return err
	}
	childImg, childIno, err := e.locate(a.SourceFID)
	if err != nil {
		return err
	}
	name := ""
	if raw, ok, _ := childImg.GetXattr(childIno, lustre.XattrLink); ok {
		if links, err := lustre.DecodeLinkEA(raw); err == nil {
			for _, l := range links {
				if l.Parent == a.TargetFID {
					name = l.Name
					break
				}
			}
		}
	}
	if name == "" {
		name = "obj-" + strings.Trim(a.SourceFID.String(), "[]")
	}
	typ, err := childImg.Type(childIno)
	if err != nil {
		return err
	}
	err = dirImg.AddDirent(dirIno, ldiskfs.Dirent{
		Ino: childIno, Type: typ, Tag: a.SourceFID.Bytes(), Name: name,
	})
	if errors.Is(err, ldiskfs.ErrExist) {
		return nil // idempotent
	}
	if err != nil {
		return err
	}
	sum.logf("restored dirent %q in %v -> %v", name, a.TargetFID, a.SourceFID)
	return nil
}

// restoreLinkEA points the target's LinkEA back at the source directory,
// recovering the name from the directory's entry for the target.
func (e *Engine) restoreLinkEA(a checker.RepairAction, sum *Summary) error {
	childImg, childIno, err := e.locate(a.TargetFID)
	if err != nil {
		return err
	}
	dirImg, dirIno, err := e.locate(a.SourceFID)
	if err != nil {
		return err
	}
	name := ""
	if ents, derr := dirImg.Dirents(dirIno); derr == nil {
		for _, de := range ents {
			if lustre.FIDFromBytes(de.Tag[:]) == a.TargetFID {
				name = de.Name
				break
			}
		}
	}
	if name == "" {
		name = "obj-" + strings.Trim(a.TargetFID.String(), "[]")
	}
	var links []lustre.LinkEntry
	if raw, ok, _ := childImg.GetXattr(childIno, lustre.XattrLink); ok {
		if got, err := lustre.DecodeLinkEA(raw); err == nil {
			links = got
		}
	}
	for _, l := range links {
		if l.Parent == a.SourceFID && l.Name == name {
			return nil // already holds
		}
	}
	links = append(links, lustre.LinkEntry{Parent: a.SourceFID, Name: name})
	enc, err := lustre.EncodeLinkEA(links)
	if err != nil {
		return err
	}
	if err := childImg.SetXattr(childIno, lustre.XattrLink, enc); err != nil {
		return err
	}
	sum.logf("restored linkEA of %v -> %v (%q)", a.TargetFID, a.SourceFID, name)
	return nil
}

// restoreLOVEA re-adds the stripe entry for source in target's layout,
// recovering the stripe index from the object's filter-fid and the OST
// index from the object's physical location.
func (e *Engine) restoreLOVEA(a checker.RepairAction, sum *Summary) error {
	fileImg, fileIno, err := e.locate(a.TargetFID)
	if err != nil {
		return err
	}
	objImg, objIno, err := e.locate(a.SourceFID)
	if err != nil {
		return err
	}
	stripeIdx := uint32(0)
	if raw, ok, _ := objImg.GetXattr(objIno, lustre.XattrFilterFID); ok {
		if ff, err := lustre.DecodeFilterFID(raw); err == nil {
			stripeIdx = ff.StripeIndex
		}
	}
	ostIdx, err := ostIndexOf(objImg.Label())
	if err != nil {
		return err
	}
	layout := lustre.Layout{StripeSize: e.DefaultStripeSize}
	if raw, ok, _ := fileImg.GetXattr(fileIno, lustre.XattrLOV); ok {
		if got, err := lustre.DecodeLOVEA(raw); err == nil {
			layout = got
		}
	}
	for int(stripeIdx) >= len(layout.Stripes) {
		layout.Stripes = append(layout.Stripes, lustre.StripeEntry{})
	}
	if layout.Stripes[stripeIdx].ObjectFID == a.SourceFID {
		return nil // already holds
	}
	layout.Stripes[stripeIdx] = lustre.StripeEntry{OSTIndex: uint32(ostIdx), ObjectFID: a.SourceFID}
	enc, err := lustre.EncodeLOVEA(layout)
	if err != nil {
		return err
	}
	if err := fileImg.SetXattr(fileIno, lustre.XattrLOV, enc); err != nil {
		return err
	}
	sum.logf("restored LOVEA[%d] of %v -> %v", stripeIdx, a.TargetFID, a.SourceFID)
	return nil
}

// restoreFilterFID points the object's filter-fid back at its owner,
// recovering the stripe index from the owner's layout.
func (e *Engine) restoreFilterFID(a checker.RepairAction, sum *Summary) error {
	objImg, objIno, err := e.locate(a.TargetFID)
	if err != nil {
		return err
	}
	fileImg, fileIno, err := e.locate(a.SourceFID)
	if err != nil {
		return err
	}
	stripeIdx := -1
	if raw, ok, _ := fileImg.GetXattr(fileIno, lustre.XattrLOV); ok {
		if layout, err := lustre.DecodeLOVEA(raw); err == nil {
			for i, s := range layout.Stripes {
				if s.ObjectFID == a.TargetFID {
					stripeIdx = i
					break
				}
			}
		}
	}
	if stripeIdx < 0 {
		return fmt.Errorf("owner %v does not reference %v", a.SourceFID, a.TargetFID)
	}
	ff := lustre.EncodeFilterFID(lustre.FilterFID{
		ParentFID: a.SourceFID, StripeIndex: uint32(stripeIdx),
	})
	if err := objImg.SetXattr(objIno, lustre.XattrFilterFID, ff); err != nil {
		return err
	}
	sum.logf("restored filter-fid of %v -> %v[%d]", a.TargetFID, a.SourceFID, stripeIdx)
	return nil
}

// dropPointer removes target's bogus pointer of the given kind toward
// source.
func (e *Engine) dropPointer(a checker.RepairAction, sum *Summary) error {
	img, ino, err := e.locate(a.TargetFID)
	if err != nil {
		return err
	}
	switch a.Kind {
	case graph.KindDirent:
		ents, _ := img.Dirents(ino)
		for _, de := range ents {
			if lustre.FIDFromBytes(de.Tag[:]) == a.SourceFID {
				if err := img.RemoveDirent(ino, de.Name); err != nil {
					return err
				}
			}
		}
	case graph.KindLOVEA:
		raw, ok, _ := img.GetXattr(ino, lustre.XattrLOV)
		if !ok {
			return nil
		}
		layout, err := lustre.DecodeLOVEA(raw)
		if err != nil {
			return err
		}
		changed := false
		for i := range layout.Stripes {
			if layout.Stripes[i].ObjectFID == a.SourceFID {
				layout.Stripes[i] = lustre.StripeEntry{} // released slot
				changed = true
			}
		}
		if !changed {
			return nil
		}
		enc, err := lustre.EncodeLOVEA(layout)
		if err != nil {
			return err
		}
		if err := img.SetXattr(ino, lustre.XattrLOV, enc); err != nil {
			return err
		}
	case graph.KindLinkEA:
		raw, ok, _ := img.GetXattr(ino, lustre.XattrLink)
		if !ok {
			return nil
		}
		links, err := lustre.DecodeLinkEA(raw)
		if err != nil {
			return err
		}
		kept := links[:0]
		for _, l := range links {
			if l.Parent != a.SourceFID {
				kept = append(kept, l)
			}
		}
		enc, err := lustre.EncodeLinkEA(kept)
		if err != nil {
			return err
		}
		if err := img.SetXattr(ino, lustre.XattrLink, enc); err != nil {
			return err
		}
	case graph.KindFilterFID:
		if err := img.RemoveXattr(ino, lustre.XattrFilterFID); err != nil &&
			!errors.Is(err, ldiskfs.ErrNotExist) {
			return err
		}
	default:
		return fmt.Errorf("drop-pointer of kind %v unsupported", a.Kind)
	}
	sum.logf("dropped %v pointer of %v toward %v", a.Kind, a.TargetFID, a.SourceFID)
	return nil
}

func ostIndexOf(label string) (int, error) {
	if !strings.HasPrefix(label, "ost") {
		return 0, fmt.Errorf("repair: %q is not an OST label", label)
	}
	return strconv.Atoi(strings.TrimPrefix(label, "ost"))
}
