package repair

import (
	"errors"
	"fmt"
	"strings"

	"faultyrank/internal/checker"
	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// allocLostFID hands out a FID from the engine's reserved sequence.
func (e *Engine) allocLostFID() lustre.FID {
	e.nextLostOid++
	return lustre.FID{Seq: LostFoundSeq, Oid: e.nextLostOid}
}

// lostFound returns (creating on first use) the /lost+found directory on
// the MDT.
func (e *Engine) lostFound(sum *Summary) (*ldiskfs.Image, ldiskfs.Ino, lustre.FID, error) {
	mdt, err := e.mdt()
	if err != nil {
		return nil, 0, lustre.FID{}, err
	}
	if e.lfIno != 0 {
		return mdt, e.lfIno, e.lfFID, nil
	}
	rootImg, rootIno, err := e.locate(lustre.RootFID)
	if err != nil {
		return nil, 0, lustre.FID{}, fmt.Errorf("root not found: %w", err)
	}
	if rootImg != mdt {
		return nil, 0, lustre.FID{}, errors.New("repair: root not on MDT")
	}
	// Reuse an existing /lost+found if present.
	if de, found, _ := mdt.LookupDirent(rootIno, "lost+found"); found {
		e.lfIno = de.Ino
		e.lfFID = lustre.FIDFromBytes(de.Tag[:])
		return mdt, e.lfIno, e.lfFID, nil
	}
	fid := e.allocLostFID()
	ino, err := mdt.AllocInode(ldiskfs.TypeDir)
	if err != nil {
		return nil, 0, lustre.FID{}, err
	}
	if err := mdt.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(fid)); err != nil {
		return nil, 0, lustre.FID{}, err
	}
	link, err := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: lustre.RootFID, Name: "lost+found"}})
	if err != nil {
		return nil, 0, lustre.FID{}, err
	}
	if err := mdt.SetXattr(ino, lustre.XattrLink, link); err != nil {
		return nil, 0, lustre.FID{}, err
	}
	if err := mdt.AddDirent(rootIno, ldiskfs.Dirent{
		Ino: ino, Type: ldiskfs.TypeDir, Tag: fid.Bytes(), Name: "lost+found",
	}); err != nil {
		return nil, 0, lustre.FID{}, err
	}
	e.lfIno, e.lfFID = ino, fid
	sum.logf("created /lost+found (%v)", fid)
	return mdt, ino, fid, nil
}

// quarantine handles the remaining quarantine shapes:
//   - a child whose parent directory is gone (LinkEA kind): reattach it
//     under /lost+found;
//   - a duplicate-identity impostor (Loc pinned): re-identify it and
//     wrap it in a fresh lost+found owner;
//   - a fully disconnected object: wrap it in a fresh lost+found owner.
//
// Stale objects (filter-fid kind) are grouped by Apply and handled in
// recreateOwner instead.
func (e *Engine) quarantine(a checker.RepairAction, sum *Summary) error {
	switch {
	case a.Kind == graph.KindLinkEA || a.Kind == graph.KindDirent:
		// Namespace re-rooting: parentless children and the anchors of
		// detached islands both move under /lost+found.
		return e.reattachChild(a, sum)
	case a.Loc.Server != "":
		return e.quarantineImpostor(a, sum)
	default:
		return e.adoptOrphan(a, sum)
	}
}

// reattachChild moves a parentless namespace object under /lost+found.
func (e *Engine) reattachChild(a checker.RepairAction, sum *Summary) error {
	mdt, lfIno, lfFID, err := e.lostFound(sum)
	if err != nil {
		return err
	}
	childImg, childIno, err := e.locate(a.TargetFID)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(childImg.Label(), "mdt") {
		return fmt.Errorf("namespace object %v not on a metadata target", a.TargetFID)
	}
	name := "obj-" + strings.Trim(a.TargetFID.String(), "[]")
	// Keep the original name when the stale LinkEA still decodes.
	if raw, ok, _ := childImg.GetXattr(childIno, lustre.XattrLink); ok {
		if links, err := lustre.DecodeLinkEA(raw); err == nil && len(links) > 0 && links[0].Name != "" {
			name = links[0].Name
		}
	}
	link, err := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: lfFID, Name: name}})
	if err != nil {
		return err
	}
	if err := childImg.SetXattr(childIno, lustre.XattrLink, link); err != nil {
		return err
	}
	typ, _ := childImg.Type(childIno)
	err = mdt.AddDirent(lfIno, ldiskfs.Dirent{
		Ino: childIno, Type: typ, Tag: a.TargetFID.Bytes(), Name: name,
	})
	if err != nil && !errors.Is(err, ldiskfs.ErrExist) {
		return err
	}
	sum.logf("reattached %v under /lost+found as %q", a.TargetFID, name)
	return nil
}

// recreateOwner rebuilds a lost file from its surviving stripe objects:
// the owner FID the objects still reference is given a fresh MDT inode
// under /lost+found whose LOVEA covers every stranded object. This is
// the repair LFSCK cannot make (it only parks objects).
func (e *Engine) recreateOwner(owner lustre.FID, objects []lustre.FID, sum *Summary) error {
	mdt, lfIno, lfFID, err := e.lostFound(sum)
	if err != nil {
		return err
	}
	if _, _, err := e.locate(owner); err == nil {
		return fmt.Errorf("owner %v exists; nothing to recreate", owner)
	}
	layout := lustre.Layout{StripeSize: e.DefaultStripeSize}
	var total uint64
	for _, objFID := range objects {
		objImg, objIno, err := e.locate(objFID)
		if err != nil {
			return err
		}
		stripeIdx := uint32(0)
		if raw, ok, _ := objImg.GetXattr(objIno, lustre.XattrFilterFID); ok {
			if ff, ferr := lustre.DecodeFilterFID(raw); ferr == nil {
				stripeIdx = ff.StripeIndex
			}
		}
		ostIdx, err := ostIndexOf(objImg.Label())
		if err != nil {
			return err
		}
		for int(stripeIdx) >= len(layout.Stripes) {
			layout.Stripes = append(layout.Stripes, lustre.StripeEntry{})
		}
		layout.Stripes[stripeIdx] = lustre.StripeEntry{
			OSTIndex: uint32(ostIdx), ObjectFID: objFID,
		}
		if sz, err := objImg.Size(objIno); err == nil {
			total += sz
		}
	}
	name := "obj-" + strings.Trim(owner.String(), "[]")
	ino, err := mdt.AllocInode(ldiskfs.TypeFile)
	if err != nil {
		return err
	}
	if err := mdt.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(owner)); err != nil {
		return err
	}
	link, err := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: lfFID, Name: name}})
	if err != nil {
		return err
	}
	if err := mdt.SetXattr(ino, lustre.XattrLink, link); err != nil {
		return err
	}
	lov, err := lustre.EncodeLOVEA(layout)
	if err != nil {
		return err
	}
	if err := mdt.SetXattr(ino, lustre.XattrLOV, lov); err != nil {
		return err
	}
	if err := mdt.SetSize(ino, total); err != nil {
		return err
	}
	err = mdt.AddDirent(lfIno, ldiskfs.Dirent{
		Ino: ino, Type: ldiskfs.TypeFile, Tag: owner.Bytes(), Name: name,
	})
	if err != nil && !errors.Is(err, ldiskfs.ErrExist) {
		return err
	}
	sum.logf("recreated lost file %v under /lost+found with %d stripes (%d bytes)",
		owner, len(objects), total)
	return nil
}

// quarantineImpostor strips a duplicated identity from the pinned inode:
// it receives a fresh FID and a fresh lost+found owner wrapping it, so
// its data stays reachable without conflicting with the legitimate
// claim.
func (e *Engine) quarantineImpostor(a checker.RepairAction, sum *Summary) error {
	img := e.images[a.Loc.Server]
	if img == nil {
		return fmt.Errorf("unknown server %q", a.Loc.Server)
	}
	freshID := e.allocLostFID()
	if err := img.SetXattr(a.Loc.Ino, lustre.XattrLMA, lustre.EncodeLMA(freshID)); err != nil {
		return err
	}
	sum.logf("re-identified impostor %s/%d: %v -> %v", a.Loc.Server, a.Loc.Ino, a.TargetFID, freshID)
	if strings.HasPrefix(a.Loc.Server, "ost") {
		return e.wrapObject(img, a.Loc.Ino, freshID, sum)
	}
	return nil
}

// adoptOrphan wraps a fully disconnected OST object in a fresh
// lost+found owner file. Disconnected MDT objects are reattached as
// children instead.
func (e *Engine) adoptOrphan(a checker.RepairAction, sum *Summary) error {
	img, ino, err := e.locate(a.TargetFID)
	if err != nil {
		return err
	}
	if !strings.HasPrefix(img.Label(), "ost") {
		return e.reattachChild(checker.RepairAction{
			Op: a.Op, TargetFID: a.TargetFID, Kind: graph.KindLinkEA,
		}, sum)
	}
	return e.wrapObject(img, ino, a.TargetFID, sum)
}

// wrapObject creates a lost+found owner file whose single-stripe layout
// references the object, and points the object's filter-fid back at it.
func (e *Engine) wrapObject(objImg *ldiskfs.Image, objIno ldiskfs.Ino, objFID lustre.FID, sum *Summary) error {
	mdt, lfIno, lfFID, err := e.lostFound(sum)
	if err != nil {
		return err
	}
	ostIdx, err := ostIndexOf(objImg.Label())
	if err != nil {
		return err
	}
	ownerFID := e.allocLostFID()
	name := "obj-" + strings.Trim(objFID.String(), "[]")
	ino, err := mdt.AllocInode(ldiskfs.TypeFile)
	if err != nil {
		return err
	}
	if err := mdt.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(ownerFID)); err != nil {
		return err
	}
	link, err := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: lfFID, Name: name}})
	if err != nil {
		return err
	}
	if err := mdt.SetXattr(ino, lustre.XattrLink, link); err != nil {
		return err
	}
	lov, err := lustre.EncodeLOVEA(lustre.Layout{
		StripeSize: e.DefaultStripeSize,
		Stripes:    []lustre.StripeEntry{{OSTIndex: uint32(ostIdx), ObjectFID: objFID}},
	})
	if err != nil {
		return err
	}
	if err := mdt.SetXattr(ino, lustre.XattrLOV, lov); err != nil {
		return err
	}
	if sz, serr := objImg.Size(objIno); serr == nil {
		_ = mdt.SetSize(ino, sz)
	}
	if err := mdt.AddDirent(lfIno, ldiskfs.Dirent{
		Ino: ino, Type: ldiskfs.TypeFile, Tag: ownerFID.Bytes(), Name: name,
	}); err != nil && !errors.Is(err, ldiskfs.ErrExist) {
		return err
	}
	ff := lustre.EncodeFilterFID(lustre.FilterFID{ParentFID: ownerFID, StripeIndex: 0})
	if err := objImg.SetXattr(objIno, lustre.XattrFilterFID, ff); err != nil {
		return err
	}
	sum.logf("wrapped object %v in lost+found owner %v", objFID, ownerFID)
	return nil
}
