package repair

import (
	"fmt"
	"testing"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lfsck"
	"faultyrank/internal/lustre"
)

func dneCluster(t testing.TB) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, NumMDTs: 3, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 6; d++ {
		dir := fmt.Sprintf("/vol%d", d)
		if err := c.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			if _, err := c.Create(fmt.Sprintf("%s/file%d", dir, f), 3*64<<10); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

// TestDNECleanClusterConsistent: the checker merges partial graphs from
// any number of MDTs — a healthy DNE cluster checks clean, including
// the cross-MDT remote-directory relations.
func TestDNECleanClusterConsistent(t *testing.T) {
	c := dneCluster(t)
	res, err := checker.RunCluster(c, checker.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UnpairedEdges != 0 || len(res.Findings) != 0 {
		t.Fatalf("DNE cluster inconsistent: %d unpaired, %d findings",
			res.Stats.UnpairedEdges, len(res.Findings))
	}
	// Sanity: the namespace genuinely spans multiple MDTs.
	var nonZero bool
	for d := 0; d < 6; d++ {
		ent, err := c.Stat(fmt.Sprintf("/vol%d", d))
		if err != nil {
			t.Fatal(err)
		}
		if ent.MDT != 0 {
			nonZero = true
		}
	}
	if !nonZero {
		t.Fatal("all directories landed on MDT0")
	}
}

// TestDNEInjectCheckRepairRoundTrip: every Fig. 7 scenario (plus the
// detached-cycle extension) round-trips on a 3-MDT cluster, with the
// target file homed on a non-primary MDT.
func TestDNEInjectCheckRepairRoundTrip(t *testing.T) {
	for s := inject.Scenario(0); s <= inject.DetachedCycle; s++ {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			c := dneCluster(t)
			// Find a target file homed off MDT0 to force cross-MDT paths.
			target := ""
			for d := 0; d < 6 && target == ""; d++ {
				p := fmt.Sprintf("/vol%d/file2", d)
				if ent, err := c.Stat(p); err == nil && ent.MDT != 0 {
					target = p
				}
			}
			if target == "" {
				t.Fatal("no off-primary file found")
			}
			if _, err := inject.Inject(c, s, target); err != nil {
				t.Fatalf("inject: %v", err)
			}
			images := checker.ClusterImages(c)
			res, err := checker.Run(images, checker.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Findings) == 0 {
				t.Fatal("nothing detected")
			}
			eng := NewEngine(images, res)
			sum := eng.Apply(res.Findings)
			verify, err := checker.Run(images, checker.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if verify.Stats.UnpairedEdges != 0 || len(verify.Findings) != 0 {
				t.Errorf("residual: %d unpaired, %d findings; log %v",
					verify.Stats.UnpairedEdges, len(verify.Findings), sum.Log)
			}
		})
	}
}

// TestLFSCKRejectsDNE: the baseline declares multi-MDT out of scope.
func TestLFSCKRejectsDNE(t *testing.T) {
	c := dneCluster(t)
	if _, err := lfsck.Run(checker.ClusterImages(c), lfsck.Options{}); err == nil {
		t.Fatal("lfsck accepted a multi-MDT cluster")
	}
}
