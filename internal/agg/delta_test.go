package agg

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

// fidEdgeKey is an edge in FID space, the numbering-independent form.
type fidEdgeKey struct {
	src, dst lustre.FID
	kind     graph.EdgeKind
}

// refState mirrors a DeltaBuilder with the batch path: per-server inode
// maps materialised into partials and merged with MergeWorkers — the
// executable specification the incremental path must match in FID space.
type refState struct {
	labels []string
	byIno  []map[ldiskfs.Ino]*scanner.Partial
}

func newRefState(labels []string) *refState {
	r := &refState{labels: labels}
	for range labels {
		r.byIno = append(r.byIno, make(map[ldiskfs.Ino]*scanner.Partial))
	}
	return r
}

func (r *refState) merge() *Unified {
	var parts []*scanner.Partial
	for i, label := range r.labels {
		merged := &scanner.Partial{ServerLabel: label}
		inos := make([]ldiskfs.Ino, 0, len(r.byIno[i]))
		for ino := range r.byIno[i] {
			inos = append(inos, ino)
		}
		sort.Slice(inos, func(a, b int) bool { return inos[a] < inos[b] })
		for _, ino := range inos {
			p := r.byIno[i][ino]
			merged.Objects = append(merged.Objects, p.Objects...)
			merged.Edges = append(merged.Edges, p.Edges...)
			merged.Issues = append(merged.Issues, p.Issues...)
		}
		parts = append(parts, merged)
	}
	return MergeWorkers(parts, 1)
}

// assertFIDEquivalent checks that two Unified graphs have identical
// FID-space content: same present FIDs with the same types and claim
// lists, and the same edge sequence — independent of GID numbering.
func assertFIDEquivalent(t *testing.T, got, want *Unified) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("vertex count: got %d, want %d", got.N(), want.N())
	}
	wantGID := make(map[lustre.FID]uint32, want.N())
	for g, f := range want.FIDs {
		wantGID[f] = uint32(g)
	}
	for g, f := range got.FIDs {
		wg, ok := wantGID[f]
		if !ok {
			t.Fatalf("FID %v exists incrementally but not in the batch merge", f)
		}
		if got.Present[g] != want.Present[wg] {
			t.Fatalf("FID %v: present %v vs %v", f, got.Present[g], want.Present[wg])
		}
		if got.Types[g] != want.Types[wg] {
			t.Fatalf("FID %v: type %v vs %v", f, got.Types[g], want.Types[wg])
		}
		if !reflect.DeepEqual(got.Claims[g], want.Claims[wg]) {
			t.Fatalf("FID %v: claims %v vs %v", f, got.Claims[g], want.Claims[wg])
		}
		if gg, ok := got.GID(f); !ok || gg != uint32(g) {
			t.Fatalf("FID %v: GID lookup returned (%d,%v), want (%d,true)", f, gg, ok, g)
		}
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("edge count: got %d, want %d", len(got.Edges), len(want.Edges))
	}
	for i := range got.Edges {
		ge, we := got.Edges[i], want.Edges[i]
		gk := fidEdgeKey{got.FIDs[ge.Src], got.FIDs[ge.Dst], ge.Kind}
		wk := fidEdgeKey{want.FIDs[we.Src], want.FIDs[we.Dst], we.Kind}
		if gk != wk {
			t.Fatalf("edge %d: %+v vs %+v", i, gk, wk)
		}
	}
	if !reflect.DeepEqual(got.Issues, want.Issues) {
		t.Fatalf("issues diverge:\n got  %v\n want %v", got.Issues, want.Issues)
	}
}

func fidFor(server, ino int) lustre.FID {
	return lustre.FID{Seq: uint64(0x200000400 + server), Oid: uint32(ino), Ver: 0}
}

// randomContribution fabricates a plausible single-inode scan result:
// the inode claims its FID and points at a few peers (possibly phantom).
func randomContribution(r *rand.Rand, server, ino, inoSpace int) *scanner.Partial {
	self := fidFor(server, ino)
	p := &scanner.Partial{
		Objects: []scanner.Object{{FID: self, Ino: ldiskfs.Ino(ino), Type: ldiskfs.TypeFile}},
	}
	p.Stats.InodesScanned = 1
	for k := 0; k < r.Intn(4); k++ {
		dst := fidFor(r.Intn(3), 1+r.Intn(inoSpace))
		kind := []graph.EdgeKind{graph.KindDirent, graph.KindLinkEA, graph.KindLOVEA}[r.Intn(3)]
		p.Edges = append(p.Edges, scanner.FIDEdge{Src: self, Dst: dst, Kind: kind})
	}
	if r.Intn(10) == 0 {
		p.Issues = append(p.Issues, scanner.Issue{Ino: ldiskfs.Ino(ino), What: "synthetic damage"})
	}
	return p
}

// TestDeltaMatchesBatchMergeProperty drives random apply/remove
// sequences through a DeltaBuilder and the batch reference in lockstep,
// asserting FID-space equivalence after every materialisation — deletes,
// re-creates of the same inode number, and phantom-only FIDs included.
func TestDeltaMatchesBatchMergeProperty(t *testing.T) {
	labels := []string{"mdt0", "ost0", "ost1"}
	const inoSpace = 40
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := NewDeltaBuilder(labels)
		ref := newRefState(labels)
		for round := 0; round < 8; round++ {
			for op := 0; op < 1+r.Intn(12); op++ {
				srv := r.Intn(len(labels))
				ino := 1 + r.Intn(inoSpace)
				if r.Intn(3) == 0 {
					db.Remove(srv, ldiskfs.Ino(ino))
					delete(ref.byIno[srv], ldiskfs.Ino(ino))
					continue
				}
				p := randomContribution(r, srv, ino, inoSpace)
				if err := db.Apply(srv, ldiskfs.Ino(ino), p); err != nil {
					t.Fatal(err)
				}
				ref.byIno[srv][ldiskfs.Ino(ino)] = p
			}
			mat := db.Materialize()
			assertFIDEquivalent(t, mat.U, ref.merge())
			if mat.NumIIDs < mat.U.N() {
				t.Fatalf("interner smaller than live set: %d < %d", mat.NumIIDs, mat.U.N())
			}
		}
	}
}

// TestDeltaDeadFIDsLeaveNoZombies: once nothing claims or references a
// FID it must vanish from the materialised graph — zombie vertices
// would change N and perturb every sink-mass redistribution.
func TestDeltaDeadFIDsLeaveNoZombies(t *testing.T) {
	db := NewDeltaBuilder([]string{"mdt0"})
	p := &scanner.Partial{
		Objects: []scanner.Object{{FID: fidFor(0, 1), Ino: 1, Type: ldiskfs.TypeFile}},
		Edges: []scanner.FIDEdge{
			{Src: fidFor(0, 1), Dst: fidFor(0, 99), Kind: graph.KindLinkEA},
		},
	}
	if err := db.Apply(0, 1, p); err != nil {
		t.Fatal(err)
	}
	mat := db.Materialize()
	if mat.U.N() != 2 {
		t.Fatalf("want object + phantom = 2 vertices, got %d", mat.U.N())
	}
	db.Remove(0, 1)
	mat = db.Materialize()
	if mat.U.N() != 0 {
		t.Fatalf("dead FIDs survived: %d vertices (%v)", mat.U.N(), mat.U.FIDs)
	}
	if _, ok := mat.U.GID(fidFor(0, 1)); ok {
		t.Fatal("GID lookup resolved a dead FID")
	}
	// Re-create the same inode with a different FID: the old identity
	// must stay dead, the new one live.
	p2 := &scanner.Partial{
		Objects: []scanner.Object{{FID: fidFor(0, 7), Ino: 1, Type: ldiskfs.TypeDir}},
	}
	if err := db.Apply(0, 1, p2); err != nil {
		t.Fatal(err)
	}
	mat = db.Materialize()
	if mat.U.N() != 1 || mat.U.FIDs[0] != fidFor(0, 7) {
		t.Fatalf("recreate: got %v", mat.U.FIDs)
	}
}

func TestDeltaApplyUnknownServer(t *testing.T) {
	db := NewDeltaBuilder([]string{"mdt0"})
	if err := db.Apply(3, 1, &scanner.Partial{}); err == nil {
		t.Fatal("unknown server accepted")
	}
	db.Remove(3, 1) // must not panic
}

// TestDeltaGIDLookupSurvivesLaterDeltas: the Unified returned by one
// Materialize keeps answering GID lookups correctly (for its own FIDs)
// after the builder has interned new FIDs in later rounds — the repair
// engine holds a result across subsequent updates.
func TestDeltaGIDLookupSurvivesLaterDeltas(t *testing.T) {
	db := NewDeltaBuilder([]string{"mdt0"})
	p := &scanner.Partial{
		Objects: []scanner.Object{{FID: fidFor(0, 1), Ino: 1, Type: ldiskfs.TypeFile}},
	}
	if err := db.Apply(0, 1, p); err != nil {
		t.Fatal(err)
	}
	old := db.Materialize().U
	for i := 2; i < 10; i++ {
		pi := &scanner.Partial{
			Objects: []scanner.Object{{FID: fidFor(0, i), Ino: ldiskfs.Ino(i), Type: ldiskfs.TypeFile}},
		}
		if err := db.Apply(0, ldiskfs.Ino(i), pi); err != nil {
			t.Fatal(err)
		}
	}
	db.Materialize()
	if g, ok := old.GID(fidFor(0, 1)); !ok || g != 0 {
		t.Fatalf("stale view lookup: (%d,%v)", g, ok)
	}
	if _, ok := old.GID(fidFor(0, 5)); ok {
		t.Fatal("stale view resolved a FID interned after it was built")
	}
}

func ExampleDeltaBuilder() {
	db := NewDeltaBuilder([]string{"mdt0"})
	_ = db.Apply(0, 1, &scanner.Partial{
		Objects: []scanner.Object{{FID: fidFor(0, 1), Ino: 1, Type: ldiskfs.TypeFile}},
	})
	mat := db.Materialize()
	fmt.Println(mat.U.N())
	db.Remove(0, 1)
	fmt.Println(db.Materialize().U.N())
	// Output:
	// 1
	// 0
}
