package agg

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

// assertUnifiedIdentical compares every externally observable field of
// two unified graphs: the GID space (FIDs), the translated edge list,
// presence, types, claim order and issues.
func assertUnifiedIdentical(t *testing.T, label string, want, got *Unified) {
	t.Helper()
	if !reflect.DeepEqual(want.FIDs, got.FIDs) {
		t.Fatalf("%s: FID table (GID space) diverges", label)
	}
	if !reflect.DeepEqual(want.Edges, got.Edges) {
		t.Fatalf("%s: edge list diverges", label)
	}
	if !reflect.DeepEqual(want.Present, got.Present) {
		t.Fatalf("%s: Present diverges", label)
	}
	if !reflect.DeepEqual(want.Types, got.Types) {
		t.Fatalf("%s: Types diverges", label)
	}
	if !reflect.DeepEqual(want.Claims, got.Claims) {
		t.Fatalf("%s: Claims diverges", label)
	}
	if !reflect.DeepEqual(want.Issues, got.Issues) {
		t.Fatalf("%s: Issues diverges", label)
	}
	for g, f := range want.FIDs {
		gg, ok := got.GID(f)
		if !ok || gg != uint32(g) {
			t.Fatalf("%s: GID(%v) = %d,%v, want %d", label, f, gg, ok, g)
		}
	}
}

// randomPartials builds a fixed pseudo-random set of partial graphs
// with heavy FID overlap across servers (shared sequences), duplicate
// claims and phantom references — the shapes that stress first-
// appearance ordering.
func randomPartials(seed int64, nParts, nObj, nEdge int) []*scanner.Partial {
	r := rand.New(rand.NewSource(seed))
	fid := func() lustre.FID {
		return lustre.FID{Seq: uint64(r.Intn(7)), Oid: uint32(r.Intn(nObj * 2)), Ver: uint32(r.Intn(2))}
	}
	parts := make([]*scanner.Partial, nParts)
	for pi := range parts {
		p := &scanner.Partial{ServerLabel: fmt.Sprintf("srv%d", pi)}
		for i := 0; i < nObj; i++ {
			p.Objects = append(p.Objects, scanner.Object{
				FID: fid(), Ino: ldiskfs.Ino(i + 1), Type: ldiskfs.FileType(1 + r.Intn(3)),
			})
		}
		for i := 0; i < nEdge; i++ {
			p.Edges = append(p.Edges, scanner.FIDEdge{
				Src: fid(), Dst: fid(), Kind: graph.EdgeKind(r.Intn(5)),
			})
		}
		if r.Intn(2) == 0 {
			p.Issues = append(p.Issues, scanner.Issue{Ino: ldiskfs.Ino(r.Intn(99)), What: "synthetic damage"})
		}
		parts[pi] = p
	}
	return parts
}

// TestMergeShardedMatchesReference: the parallel sharded merge yields a
// Unified identical to the single-threaded reference merge — same FID
// table, edges, presence, types and claims order — across worker counts
// 1/2/8 and across shuffled-but-fixed partial orders.
func TestMergeShardedMatchesReference(t *testing.T) {
	base := randomPartials(42, 5, 300, 900)

	orders := [][]*scanner.Partial{base}
	// Shuffled-but-fixed orders: both merges see the same permutation,
	// so outputs must still be identical (the GID space legitimately
	// changes with partial order — but identically for both).
	for _, seed := range []int64{1, 7} {
		perm := rand.New(rand.NewSource(seed)).Perm(len(base))
		shuffled := make([]*scanner.Partial, len(base))
		for i, j := range perm {
			shuffled[i] = base[j]
		}
		orders = append(orders, shuffled)
	}

	for oi, parts := range orders {
		ref := mergeReference(parts)
		for _, w := range []int{1, 2, 8} {
			got := MergeWorkers(parts, w)
			assertUnifiedIdentical(t, fmt.Sprintf("order %d workers %d", oi, w), ref, got)
		}
	}
}

// TestMergeShardedMatchesReferenceCluster: same property on real
// scanner output from a simulated cluster, where FIDs have realistic
// sequence structure.
func TestMergeShardedMatchesReferenceCluster(t *testing.T) {
	c := smallCluster(t)
	parts := scanCluster(t, c)
	ref := mergeReference(parts)
	for _, w := range []int{1, 2, 8} {
		got := MergeWorkers(parts, w)
		assertUnifiedIdentical(t, fmt.Sprintf("cluster workers %d", w), ref, got)
	}
}

// TestMergeEmpty: no partials and empty partials degrade gracefully.
func TestMergeEmpty(t *testing.T) {
	for _, parts := range [][]*scanner.Partial{nil, {{ServerLabel: "mdt0"}}} {
		u := MergeWorkers(parts, 4)
		if u.N() != 0 || len(u.Edges) != 0 {
			t.Fatalf("empty merge: N=%d edges=%d", u.N(), len(u.Edges))
		}
		if _, ok := u.GID(lustre.RootFID); ok {
			t.Fatal("GID hit on empty unified graph")
		}
	}
}
