// Package agg implements the FaultyRank aggregator (paper §IV-B): it
// merges the partial graphs produced by per-server scanners into one
// unified metadata graph, remaps sparse 128-bit FIDs onto dense 32-bit
// GIDs, and builds the in-DRAM CSR the iterative algorithm runs on.
//
// Because FIDs are cluster-unique, merging never conflicts; the remap is
// a single deterministic pass in first-appearance order, so the same set
// of partials always yields the same GID space.
package agg

import (
	"fmt"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

// ObjectLoc is the physical location of one inode claiming a FID.
type ObjectLoc struct {
	Server string // image label ("mdt0", "ost3", ...)
	Ino    ldiskfs.Ino
}

// Unified is the merged, densely-numbered metadata graph plus the vertex
// metadata the checker needs to translate graph findings back into file
// system repairs.
type Unified struct {
	// FIDs maps GID -> FID.
	FIDs []lustre.FID
	// Edges is the merged edge list in GID space.
	Edges []graph.Edge
	// Present[g] is true when at least one scanned inode carries FID g;
	// false marks a phantom: a FID that is referenced but exists nowhere.
	Present []bool
	// Types[g] is the file type of the first claiming inode.
	Types []ldiskfs.FileType
	// Claims[g] lists every physical inode claiming FID g; more than one
	// entry is itself an inconsistency (duplicate identity).
	Claims [][]ObjectLoc
	// Issues carries forward the scanners' structural parse problems.
	Issues []string

	byFID map[lustre.FID]uint32
}

// N returns the vertex count of the unified graph.
func (u *Unified) N() int { return len(u.FIDs) }

// GID resolves a FID to its dense id.
func (u *Unified) GID(f lustre.FID) (uint32, bool) {
	g, ok := u.byFID[f]
	return g, ok
}

// FID returns the FID of a GID (zero value when out of range).
func (u *Unified) FID(g uint32) lustre.FID {
	if int(g) >= len(u.FIDs) {
		return lustre.FID{}
	}
	return u.FIDs[g]
}

// Merge combines partial graphs into a unified graph. Partials must be
// passed in a fixed order (conventionally MDT first, then OSTs by index)
// for a deterministic GID space.
func Merge(parts []*scanner.Partial) *Unified {
	var nObj, nEdge int
	for _, p := range parts {
		nObj += len(p.Objects)
		nEdge += len(p.Edges)
	}
	u := &Unified{
		byFID: make(map[lustre.FID]uint32, nObj+nEdge/4),
		Edges: make([]graph.Edge, 0, nEdge),
	}
	gid := func(f lustre.FID) uint32 {
		if g, ok := u.byFID[f]; ok {
			return g
		}
		g := uint32(len(u.FIDs))
		u.byFID[f] = g
		u.FIDs = append(u.FIDs, f)
		u.Present = append(u.Present, false)
		u.Types = append(u.Types, ldiskfs.TypeFree)
		u.Claims = append(u.Claims, nil)
		return g
	}
	// Pass 1: physically present objects claim their FIDs.
	for _, p := range parts {
		for _, o := range p.Objects {
			g := gid(o.FID)
			if !u.Present[g] {
				u.Present[g] = true
				u.Types[g] = o.Type
			}
			u.Claims[g] = append(u.Claims[g], ObjectLoc{Server: p.ServerLabel, Ino: o.Ino})
		}
		for _, is := range p.Issues {
			u.Issues = append(u.Issues, fmt.Sprintf("%s: %s", p.ServerLabel, is))
		}
	}
	// Pass 2: edges; unseen destinations become phantom vertices.
	for _, p := range parts {
		for _, e := range p.Edges {
			u.Edges = append(u.Edges, graph.Edge{
				Src: gid(e.Src), Dst: gid(e.Dst), Kind: e.Kind,
			})
		}
	}
	return u
}

// DuplicateClaims returns the GIDs claimed by more than one inode —
// duplicate-identity inconsistencies (paper Table I, double reference).
func (u *Unified) DuplicateClaims() []uint32 {
	var out []uint32
	for g, c := range u.Claims {
		if len(c) > 1 {
			out = append(out, uint32(g))
		}
	}
	return out
}

// Orphans returns present GIDs with no incoming edges in the unified
// graph — objects nothing refers to (paper Table I, unreferenced object).
// It needs the built graph for degree information.
func (u *Unified) Orphans(b *graph.Bidirected) []uint32 {
	var out []uint32
	for g := 0; g < u.N(); g++ {
		if u.Present[g] && b.InDegree(uint32(g)) == 0 {
			out = append(out, uint32(g))
		}
	}
	return out
}

// Phantoms returns GIDs that are referenced but not present anywhere.
func (u *Unified) Phantoms() []uint32 {
	var out []uint32
	for g, present := range u.Present {
		if !present {
			out = append(out, uint32(g))
		}
	}
	return out
}

// Build constructs the bidirected CSR graph from the merged edges.
func (u *Unified) Build(workers int) *graph.Bidirected {
	return graph.NewBidirected(u.N(), u.Edges, workers)
}
