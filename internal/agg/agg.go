// Package agg implements the FaultyRank aggregator (paper §IV-B): it
// merges the partial graphs produced by per-server scanners into one
// unified metadata graph, remaps sparse 128-bit FIDs onto dense 32-bit
// GIDs, and builds the in-DRAM CSR the iterative algorithm runs on.
//
// Because FIDs are cluster-unique, merging never conflicts. The remap
// runs on all cores via a hash-sharded interner (intern.go) whose
// renumbering pass reproduces the sequential first-appearance order, so
// the same set of partials always yields the same GID space regardless
// of worker count. A Builder accepts the scanners' chunk streams
// incrementally, which lets aggregation overlap transfer.
package agg

import (
	"fmt"
	"sync"
	"time"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/par"
	"faultyrank/internal/scanner"
)

// ObjectLoc is the physical location of one inode claiming a FID.
type ObjectLoc struct {
	Server string // image label ("mdt0", "ost3", ...)
	Ino    ldiskfs.Ino
}

// Unified is the merged, densely-numbered metadata graph plus the vertex
// metadata the checker needs to translate graph findings back into file
// system repairs.
type Unified struct {
	// FIDs maps GID -> FID.
	FIDs []lustre.FID
	// Edges is the merged edge list in GID space.
	Edges []graph.Edge
	// Present[g] is true when at least one scanned inode carries FID g;
	// false marks a phantom: a FID that is referenced but exists nowhere.
	Present []bool
	// Types[g] is the file type of the first claiming inode.
	Types []ldiskfs.FileType
	// Claims[g] lists every physical inode claiming FID g; more than one
	// entry is itself an inconsistency (duplicate identity).
	Claims [][]ObjectLoc
	// Issues carries forward the scanners' structural parse problems.
	Issues []string

	byFID fidShards
	// gidFn, when non-nil, overrides byFID lookups. Incremental
	// producers (DeltaBuilder) resolve GIDs through their persistent
	// interner instead of rebuilding per-run lookup maps.
	gidFn func(lustre.FID) (uint32, bool)
}

// N returns the vertex count of the unified graph.
func (u *Unified) N() int { return len(u.FIDs) }

// GID resolves a FID to its dense id.
func (u *Unified) GID(f lustre.FID) (uint32, bool) {
	if u.gidFn != nil {
		return u.gidFn(f)
	}
	return u.byFID.gid(f)
}

// FID returns the FID of a GID (zero value when out of range).
func (u *Unified) FID(g uint32) lustre.FID {
	if int(g) >= len(u.FIDs) {
		return lustre.FID{}
	}
	return u.FIDs[g]
}

// Merge combines partial graphs into a unified graph. Partials must be
// passed in a fixed order (conventionally MDT first, then OSTs by index)
// for a deterministic GID space. Merging is parallel (all cores); use
// MergeWorkers to bound it.
func Merge(parts []*scanner.Partial) *Unified {
	return MergeWorkers(parts, 0)
}

// MergeWorkers is Merge with explicit parallelism (<= 0 = GOMAXPROCS).
// The result is identical for every worker count: the sharded interner
// renumbers FIDs into the sequential first-appearance order (intern.go)
// and every fill pass below is partitioned so writes never race and
// ordering follows the canonical stream.
func MergeWorkers(parts []*scanner.Partial, workers int) *Unified {
	return MergeWorkersObserved(parts, workers, nil)
}

// MergeWorkersObserved is MergeWorkers with instrumentation: each fill
// pass reports per-worker busy time and item counts through m, and the
// interner's final size lands on the agg_interned_fids gauge. A nil m
// observes nothing and adds no overhead beyond one branch per pass.
func MergeWorkersObserved(parts []*scanner.Partial, workers int, m *Metrics) *Unified {
	if workers <= 0 {
		workers = par.DefaultWorkers()
	}
	u := &Unified{}
	u.FIDs, u.byFID = internSharded(parts, workers)
	n := len(u.FIDs)
	if m != nil {
		m.InternedFIDs.Set(int64(n))
		m.Journal.Record("agg", "interned", "fids", fmt.Sprintf("%d", n))
	}
	u.Present = make([]bool, n)
	u.Types = make([]ldiskfs.FileType, n) // zero value is TypeFree
	u.Claims = make([][]ObjectLoc, n)

	// Object stream GIDs, translated once in parallel (the sharded index
	// is read-only from here on).
	var nObj int
	objOff := make([]int, len(parts))
	for i, p := range parts {
		objOff[i] = nObj
		nObj += len(p.Objects)
	}
	objGID := make([]uint32, nObj)
	for i, p := range parts {
		off := objOff[i]
		observedRange(len(p.Objects), workers, m, m.mergeObjects(), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				g, _ := u.byFID.gid(p.Objects[k].FID)
				objGID[off+k] = g
			}
		})
	}

	// Present/Types/Claims: workers own disjoint GID ranges and each
	// walks the object stream in canonical order, so the first claim
	// wins and Claims order matches the sequential merge exactly.
	observedRange(n, workers, m, nil, func(glo, ghi int) {
		for i, p := range parts {
			off := objOff[i]
			for k, o := range p.Objects {
				g := int(objGID[off+k])
				if g < glo || g >= ghi {
					continue
				}
				if !u.Present[g] {
					u.Present[g] = true
					u.Types[g] = o.Type
				}
				u.Claims[g] = append(u.Claims[g], ObjectLoc{Server: p.ServerLabel, Ino: o.Ino})
			}
		}
	})
	for _, p := range parts {
		for _, is := range p.Issues {
			u.Issues = append(u.Issues, fmt.Sprintf("%s: %s", p.ServerLabel, is))
		}
	}

	// Edge translation: order-preserving, each slot written once.
	var nEdge int
	edgeOff := make([]int, len(parts))
	for i, p := range parts {
		edgeOff[i] = nEdge
		nEdge += len(p.Edges)
	}
	u.Edges = make([]graph.Edge, nEdge)
	for i, p := range parts {
		off := edgeOff[i]
		observedRange(len(p.Edges), workers, m, m.mergeEdges(), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				e := p.Edges[k]
				src, _ := u.byFID.gid(e.Src)
				dst, _ := u.byFID.gid(e.Dst)
				u.Edges[off+k] = graph.Edge{Src: src, Dst: dst, Kind: e.Kind}
			}
		})
	}
	if m != nil {
		m.Journal.Record("agg", "merge-done",
			"servers", fmt.Sprintf("%d", len(parts)),
			"vertices", fmt.Sprintf("%d", n),
			"edges", fmt.Sprintf("%d", nEdge))
	}
	return u
}

// mergeReference is the original single-threaded first-appearance merge,
// kept as the executable specification the sharded merge is tested
// against (and nothing else should call).
func mergeReference(parts []*scanner.Partial) *Unified {
	var nObj, nEdge int
	for _, p := range parts {
		nObj += len(p.Objects)
		nEdge += len(p.Edges)
	}
	u := &Unified{
		byFID: newFIDShards(),
		Edges: make([]graph.Edge, 0, nEdge),
	}
	gid := func(f lustre.FID) uint32 {
		if g, ok := u.byFID.gid(f); ok {
			return g
		}
		g := uint32(len(u.FIDs))
		u.byFID[shardOf(f)][f] = g
		u.FIDs = append(u.FIDs, f)
		u.Present = append(u.Present, false)
		u.Types = append(u.Types, ldiskfs.TypeFree)
		u.Claims = append(u.Claims, nil)
		return g
	}
	// Pass 1: physically present objects claim their FIDs.
	for _, p := range parts {
		for _, o := range p.Objects {
			g := gid(o.FID)
			if !u.Present[g] {
				u.Present[g] = true
				u.Types[g] = o.Type
			}
			u.Claims[g] = append(u.Claims[g], ObjectLoc{Server: p.ServerLabel, Ino: o.Ino})
		}
		for _, is := range p.Issues {
			u.Issues = append(u.Issues, fmt.Sprintf("%s: %s", p.ServerLabel, is))
		}
	}
	// Pass 2: edges; unseen destinations become phantom vertices.
	for _, p := range parts {
		for _, e := range p.Edges {
			u.Edges = append(u.Edges, graph.Edge{
				Src: gid(e.Src), Dst: gid(e.Dst), Kind: e.Kind,
			})
		}
	}
	return u
}

// Builder accepts the scanners' chunk streams — in any interleaving
// across servers — and reassembles them into per-server partials so
// aggregation can overlap transfer. The canonical server order is fixed
// at construction; Finish then merges with the usual deterministic GID
// space, no matter how chunks arrived.
//
// Builder implements scanner.Sink, so in-process scanners stream into
// it directly; the wire collector feeds it decoded chunks.
type Builder struct {
	mu      sync.Mutex
	order   []string
	accs    map[string]*builderAcc
	metrics *Metrics
}

type builderAcc struct {
	p    scanner.Partial
	next int
	done bool
}

// NewBuilder fixes the canonical server order (conventionally MDTs
// first, then OSTs by index — the order their labels are passed here).
func NewBuilder(labels []string) *Builder {
	b := &Builder{order: labels, accs: make(map[string]*builderAcc, len(labels))}
	for _, l := range labels {
		b.accs[l] = &builderAcc{p: scanner.Partial{ServerLabel: l}}
	}
	return b
}

// Observe attaches instrumentation: intake counters on every Emit,
// lock-wait samples, and merge-side metrics on Finish/FinishCompleted.
// Call before streaming starts; not synchronised with Emit.
func (b *Builder) Observe(m *Metrics) { b.metrics = m }

// Emit consumes one chunk. Safe for concurrent use by the per-server
// scanner goroutines; chunks of one server must arrive in Seq order
// (the scanner and the wire stream both guarantee it).
func (b *Builder) Emit(c *scanner.Chunk) error {
	if m := b.metrics; m != nil {
		t0 := time.Now()
		b.mu.Lock()
		m.LockWait.Observe(time.Since(t0).Seconds())
		m.Chunks.Inc()
		m.Objects.Add(int64(len(c.Objects)))
		m.Edges.Add(int64(len(c.Edges)))
		m.Issues.Add(int64(len(c.Issues)))
	} else {
		b.mu.Lock()
	}
	defer b.mu.Unlock()
	acc, ok := b.accs[c.ServerLabel]
	if !ok {
		return fmt.Errorf("agg: chunk for unknown server %q", c.ServerLabel)
	}
	if acc.done {
		return fmt.Errorf("agg: chunk after final for server %q", c.ServerLabel)
	}
	if c.Seq != acc.next {
		return fmt.Errorf("agg: server %q chunk out of order: got seq %d, want %d", c.ServerLabel, c.Seq, acc.next)
	}
	acc.next++
	acc.p.Objects = append(acc.p.Objects, c.Objects...)
	acc.p.Edges = append(acc.p.Edges, c.Edges...)
	acc.p.Issues = append(acc.p.Issues, c.Issues...)
	acc.p.Stats.InodesScanned += c.Stats.InodesScanned
	acc.p.Stats.DirentsRead += c.Stats.DirentsRead
	acc.p.Stats.EdgesEmitted += c.Stats.EdgesEmitted
	if c.Final {
		acc.done = true
	}
	return nil
}

// Partials returns the reassembled per-server partial graphs in
// canonical order. It errors if any stream is still open.
func (b *Builder) Partials() ([]*scanner.Partial, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	parts := make([]*scanner.Partial, 0, len(b.order))
	for _, l := range b.order {
		acc := b.accs[l]
		if !acc.done {
			return nil, fmt.Errorf("agg: server %q stream incomplete", l)
		}
		parts = append(parts, &acc.p)
	}
	return parts, nil
}

// Finish merges every completed stream into the unified graph using
// workers cores (<= 0 = GOMAXPROCS).
func (b *Builder) Finish(workers int) (*Unified, error) {
	parts, err := b.Partials()
	if err != nil {
		return nil, err
	}
	return MergeWorkersObserved(parts, workers, b.metrics), nil
}

// CompletedPartials returns the partials of every stream that has seen
// its final chunk, in canonical order, plus the labels of the streams
// still open — the degraded-mode split when a scanner crashed or missed
// its deadline. Chunks already received on an incomplete stream are
// dropped wholesale: merging a prefix would make the unified graph
// depend on where in the stream the failure landed, and degraded runs
// must stay deterministic for a given set of surviving servers.
func (b *Builder) CompletedPartials() ([]*scanner.Partial, []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	parts := make([]*scanner.Partial, 0, len(b.order))
	var missing []string
	for _, l := range b.order {
		if acc := b.accs[l]; acc.done {
			parts = append(parts, &acc.p)
		} else {
			missing = append(missing, l)
		}
	}
	return parts, missing
}

// FinishCompleted merges only the completed streams (degraded mode),
// returning the unified graph built from the survivors and the labels
// of the servers whose streams never finished. It errors when no stream
// completed at all — there is nothing to degrade to.
func (b *Builder) FinishCompleted(workers int) (*Unified, []string, error) {
	parts, missing := b.CompletedPartials()
	if len(parts) == 0 {
		return nil, missing, fmt.Errorf("agg: no scanner stream completed (missing: %v)", missing)
	}
	return MergeWorkersObserved(parts, workers, b.metrics), missing, nil
}

// DuplicateClaims returns the GIDs claimed by more than one inode —
// duplicate-identity inconsistencies (paper Table I, double reference).
func (u *Unified) DuplicateClaims() []uint32 {
	var out []uint32
	for g, c := range u.Claims {
		if len(c) > 1 {
			out = append(out, uint32(g))
		}
	}
	return out
}

// Orphans returns present GIDs with no incoming edges in the unified
// graph — objects nothing refers to (paper Table I, unreferenced object).
// It needs the built graph for degree information.
func (u *Unified) Orphans(b *graph.Bidirected) []uint32 {
	var out []uint32
	for g := 0; g < u.N(); g++ {
		if u.Present[g] && b.InDegree(uint32(g)) == 0 {
			out = append(out, uint32(g))
		}
	}
	return out
}

// Phantoms returns GIDs that are referenced but not present anywhere.
func (u *Unified) Phantoms() []uint32 {
	var out []uint32
	for g, present := range u.Present {
		if !present {
			out = append(out, uint32(g))
		}
	}
	return out
}

// Build constructs the bidirected CSR graph from the merged edges.
func (u *Unified) Build(workers int) *graph.Bidirected {
	return graph.NewBidirected(u.N(), u.Edges, workers)
}
