package agg

import (
	"faultyrank/internal/graph"
	"faultyrank/internal/lustre"
	"faultyrank/internal/par"
)

// PartitionOf maps a FID onto one of k rank partitions. It reuses the
// interner's shard hash (shardOf), so the partition key is the same
// pure function of the FID the aggregation pipeline already shards by —
// deterministic across runs, machines, and worker counts, and
// independent of the GID numbering.
func PartitionOf(f lustre.FID, k int) int {
	return shardOf(f) % k
}

// PartitionOwners computes the owners map of the unified graph's GID
// space for a k-way partitioned rank execution (the input of
// graph.PartitionPlan). Both the batch aggregator and the incremental
// delta builder populate FIDs, so the owners map is available on either
// path.
func (u *Unified) PartitionOwners(k int) []uint16 {
	owners := make([]uint16, len(u.FIDs))
	par.ForRange(len(u.FIDs), par.DefaultWorkers(), func(lo, hi int) {
		for g := lo; g < hi; g++ {
			owners[g] = uint16(PartitionOf(u.FIDs[g], k))
		}
	})
	return owners
}

// BuildPartitioned materializes the bidirected graph and its k-way
// partition plan in one call — the per-partition CSRs with their
// boundary cut that the distributed rank stage executes over.
func (u *Unified) BuildPartitioned(k, workers int) (*graph.Bidirected, *graph.Plan) {
	b := u.Build(workers)
	plan := graph.PartitionPlan(b, u.PartitionOwners(k), k, workers)
	return b, plan
}
