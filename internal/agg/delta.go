package agg

import (
	"fmt"
	"sort"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

// DeltaBuilder maintains the unified metadata graph incrementally: the
// online checker (package online) feeds it one inode's scan result at a
// time — Apply for a changed inode, Remove for a freed one — and each
// check materialises a Unified without re-interning or re-merging the
// unchanged majority. Where the batch Builder re-consumes every
// server's full chunk stream per run, the DeltaBuilder's per-check cost
// is O(delta) map work plus O(N+E) array passes (the same order as the
// CSR build any check needs), with no per-occurrence map lookups.
//
// Internally FIDs are interned once, persistently, onto stable internal
// ids (IIDs) that are never recycled; per-inode contributions are
// cached in IID space. Materialize densely renumbers the *live* IIDs —
// those still claimed by an object or touched by an edge — into the
// check's GID space, so dead FIDs (deleted and no longer referenced)
// leave no zombie vertices behind.
//
// The FID-space content of a materialised Unified — present FIDs,
// claim lists, types, the edge multiset and its canonical (server,
// inode, emission) order — is identical to a cold MergeWorkers over
// fresh full scans of the same images (property-tested in package
// online). Only the GID numbering differs: first appearance in the
// tracker's history rather than in the current canonical stream. Every
// consumer downstream of the merge works in FID space or is
// permutation-invariant, so findings match a cold run exactly.
type DeltaBuilder struct {
	labels  []string
	servers []*deltaServer

	// Persistent interner: FID -> IID, append-only.
	iidOf fidShards
	fids  []lustre.FID // IID -> FID

	// dirty accumulates the IIDs whose cached contribution changed since
	// the last ResetDirty — the seed set for frontier-based incremental
	// ranking. It is cumulative on purpose: the online tracker resets it
	// only when it saves warm-start ranks (a converged check), so the
	// seeds always mean "changed since the ranks we would warm-start
	// from", even across failed or unconverged checks in between.
	dirty map[uint32]struct{}
}

// deltaServer caches one server's per-inode contributions plus a lazily
// maintained sorted iteration order: membership changes are buffered in
// added/removed and folded in at the next Materialize, keeping Apply
// O(contribution) and the re-sort O(n + delta·log delta) instead of a
// full O(n·log n) sort per check.
type deltaServer struct {
	label   string
	contrib map[ldiskfs.Ino]*inoContrib
	sorted  []ldiskfs.Ino // sorted members as of the last fold
	added   []ldiskfs.Ino // new members since, unsorted
	removed map[ldiskfs.Ino]struct{}
}

// inoContrib is one inode's cached scan result in IID space.
type inoContrib struct {
	objs   []contribObj
	edges  []contribEdge
	issues []scanner.Issue
	stats  scanner.Stats
}

// markDirty records every IID a contribution touches. Both the old and
// the new contribution of a changed inode are marked: a replaced or
// removed edge changes the equations at both of its old endpoints just
// as an added one does at its new ones.
func (b *DeltaBuilder) markDirty(c *inoContrib) {
	if c == nil {
		return
	}
	for _, o := range c.objs {
		b.dirty[o.iid] = struct{}{}
	}
	for _, e := range c.edges {
		b.dirty[e.src] = struct{}{}
		b.dirty[e.dst] = struct{}{}
	}
}

type contribObj struct {
	iid uint32
	typ ldiskfs.FileType
}

type contribEdge struct {
	src, dst uint32
	kind     graph.EdgeKind
}

// Materialized is one check's dense view plus the IID<->GID mapping the
// online checker uses to carry warm-start ranks across checks.
type Materialized struct {
	U *Unified
	// IIDOfGID maps this check's GID to the stable IID.
	IIDOfGID []uint32
	// NumIIDs is the interner size at materialisation time; IIDs >= it
	// belong to later deltas.
	NumIIDs int
	// DirtySeeds are the GIDs (ascending) of live vertices whose cached
	// contribution changed since the builder's last ResetDirty — the
	// frontier seeds for core.RunIncremental. Dirty IIDs no longer live
	// in this materialisation are omitted: a vertex that is gone has no
	// equation to reseed, and its old neighbours are themselves dirty.
	DirtySeeds []uint32
}

// NewDeltaBuilder fixes the canonical server order (MDTs first, then
// OSTs by index — the same convention as NewBuilder).
func NewDeltaBuilder(labels []string) *DeltaBuilder {
	b := &DeltaBuilder{
		labels: labels,
		iidOf:  newFIDShards(),
		dirty:  make(map[uint32]struct{}),
	}
	for _, l := range labels {
		b.servers = append(b.servers, &deltaServer{
			label:   l,
			contrib: make(map[ldiskfs.Ino]*inoContrib),
			removed: make(map[ldiskfs.Ino]struct{}),
		})
	}
	return b
}

// intern resolves (or assigns) the stable IID of a FID.
func (b *DeltaBuilder) intern(f lustre.FID) uint32 {
	if iid, ok := b.iidOf.gid(f); ok {
		return iid
	}
	iid := uint32(len(b.fids))
	b.iidOf[shardOf(f)][f] = iid
	b.fids = append(b.fids, f)
	return iid
}

// Apply replaces one inode's contribution with a fresh scan result
// (scanner.ScanInode output for that inode).
func (b *DeltaBuilder) Apply(server int, ino ldiskfs.Ino, p *scanner.Partial) error {
	if server < 0 || server >= len(b.servers) {
		return fmt.Errorf("agg: delta apply for unknown server index %d", server)
	}
	s := b.servers[server]
	c := &inoContrib{issues: p.Issues, stats: p.Stats}
	for _, o := range p.Objects {
		c.objs = append(c.objs, contribObj{iid: b.intern(o.FID), typ: o.Type})
	}
	for _, e := range p.Edges {
		c.edges = append(c.edges, contribEdge{
			src: b.intern(e.Src), dst: b.intern(e.Dst), kind: e.Kind,
		})
	}
	if old, tracked := s.contrib[ino]; tracked {
		b.markDirty(old)
	} else {
		if _, wasRemoved := s.removed[ino]; wasRemoved {
			delete(s.removed, ino)
		}
		s.added = append(s.added, ino)
	}
	b.markDirty(c)
	s.contrib[ino] = c
	return nil
}

// Remove drops one inode's contribution (the tombstone for a freed
// inode). Removing an untracked inode is a no-op.
func (b *DeltaBuilder) Remove(server int, ino ldiskfs.Ino) {
	if server < 0 || server >= len(b.servers) {
		return
	}
	s := b.servers[server]
	c, tracked := s.contrib[ino]
	if !tracked {
		return
	}
	b.markDirty(c)
	delete(s.contrib, ino)
	s.removed[ino] = struct{}{}
}

// ResetDirty clears the accumulated dirty-IID set. The online tracker
// calls it exactly when it saves warm-start ranks, so the set always
// describes the delta relative to the saved ranks.
func (b *DeltaBuilder) ResetDirty() {
	clear(b.dirty)
}

// fold merges the buffered membership changes into the sorted order.
func (s *deltaServer) fold() {
	if len(s.added) == 0 && len(s.removed) == 0 {
		return
	}
	sort.Slice(s.added, func(i, j int) bool { return s.added[i] < s.added[j] })
	merged := make([]ldiskfs.Ino, 0, len(s.contrib))
	i, j := 0, 0
	for i < len(s.sorted) || j < len(s.added) {
		var ino ldiskfs.Ino
		switch {
		case i >= len(s.sorted):
			ino = s.added[j]
			j++
		case j >= len(s.added):
			ino = s.sorted[i]
			i++
		case s.added[j] < s.sorted[i]:
			ino = s.added[j]
			j++
		case s.added[j] == s.sorted[i]:
			// re-added after a removal that predates the last fold
			ino = s.sorted[i]
			i++
			j++
		default:
			ino = s.sorted[i]
			i++
		}
		if _, gone := s.removed[ino]; gone {
			continue
		}
		// A fold can see the same ino from both streams (removed then
		// re-added between folds lands in added while still in sorted).
		if n := len(merged); n > 0 && merged[n-1] == ino {
			continue
		}
		merged = append(merged, ino)
	}
	s.sorted = merged
	s.added = s.added[:0]
	clear(s.removed)
}

// Materialize renumbers the live IIDs densely and assembles the check's
// Unified in the canonical (server order, ascending inode) walk — the
// same walk a cold merge over full scans performs.
func (b *DeltaBuilder) Materialize() *Materialized {
	nIID := len(b.fids)
	live := make([]bool, nIID)
	var nEdge int
	for _, s := range b.servers {
		s.fold()
		for _, c := range s.contrib {
			for _, o := range c.objs {
				live[o.iid] = true
			}
			for _, e := range c.edges {
				live[e.src] = true
				live[e.dst] = true
			}
			nEdge += len(c.edges)
		}
	}

	gidOf := make([]uint32, nIID)
	iidOfGID := make([]uint32, 0, nIID)
	for iid, l := range live {
		if l {
			gidOf[iid] = uint32(len(iidOfGID))
			iidOfGID = append(iidOfGID, uint32(iid))
		}
	}
	n := len(iidOfGID)

	u := &Unified{
		FIDs:    make([]lustre.FID, n),
		Present: make([]bool, n),
		Types:   make([]ldiskfs.FileType, n),
		Claims:  make([][]ObjectLoc, n),
		Edges:   make([]graph.Edge, 0, nEdge),
	}
	for g, iid := range iidOfGID {
		u.FIDs[g] = b.fids[iid]
	}

	// Pass 1: objects claim their FIDs; first claim in canonical order
	// fixes Present and Types, exactly as the batch merge does. Issues
	// fold in alongside, preserving the cold per-server order.
	for _, s := range b.servers {
		for _, ino := range s.sorted {
			c := s.contrib[ino]
			for _, o := range c.objs {
				g := gidOf[o.iid]
				if !u.Present[g] {
					u.Present[g] = true
					u.Types[g] = o.typ
				}
				u.Claims[g] = append(u.Claims[g], ObjectLoc{Server: s.label, Ino: ino})
			}
			for _, is := range c.issues {
				u.Issues = append(u.Issues, fmt.Sprintf("%s: %s", s.label, is))
			}
		}
	}

	// Pass 2: edges in canonical order.
	for _, s := range b.servers {
		for _, ino := range s.sorted {
			for _, e := range s.contrib[ino].edges {
				u.Edges = append(u.Edges, graph.Edge{
					Src: gidOf[e.src], Dst: gidOf[e.dst], Kind: e.kind,
				})
			}
		}
	}

	// GID lookups resolve through the persistent interner. The closure
	// snapshots live/gidOf, so lookups against this Unified stay correct
	// (and merely miss FIDs interned by later deltas) after the builder
	// moves on.
	u.gidFn = func(f lustre.FID) (uint32, bool) {
		iid, ok := b.iidOf.gid(f)
		if !ok || int(iid) >= len(live) || !live[iid] {
			return 0, false
		}
		return gidOf[iid], true
	}

	var seeds []uint32
	for iid := range b.dirty {
		if int(iid) < len(live) && live[iid] {
			seeds = append(seeds, gidOf[iid])
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	return &Materialized{U: u, IIDOfGID: iidOfGID, NumIIDs: nIID, DirtySeeds: seeds}
}

// Labels returns the canonical server order the builder was created
// with.
func (b *DeltaBuilder) Labels() []string {
	return append([]string(nil), b.labels...)
}

// Tracked reports whether the builder holds a cached contribution for
// the given server/inode — the membership test the online tracker uses
// to distinguish a refresh from a first sighting.
func (b *DeltaBuilder) Tracked(server int, ino ldiskfs.Ino) bool {
	if server < 0 || server >= len(b.servers) {
		return false
	}
	_, ok := b.servers[server].contrib[ino]
	return ok
}

// TrackedCount returns how many inodes the builder tracks for a server.
func (b *DeltaBuilder) TrackedCount(server int) int {
	if server < 0 || server >= len(b.servers) {
		return 0
	}
	return len(b.servers[server].contrib)
}

// ServerPartial reconstructs one server's merged partial graph from the
// cached contributions, in deterministic ascending-inode order —
// content-identical to concatenating fresh scanner.ScanInode results
// over the server's allocated inodes. The builder's cache is the single
// source of truth for the maintained snapshot; this is its projection
// back into scanner space (tests, Partials, downstream consumers).
func (b *DeltaBuilder) ServerPartial(server int) *scanner.Partial {
	if server < 0 || server >= len(b.servers) {
		return &scanner.Partial{}
	}
	s := b.servers[server]
	s.fold()
	out := &scanner.Partial{ServerLabel: s.label}
	for _, ino := range s.sorted {
		c := s.contrib[ino]
		for _, o := range c.objs {
			out.Objects = append(out.Objects, scanner.Object{
				FID: b.fids[o.iid], Ino: ino, Type: o.typ,
			})
		}
		for _, e := range c.edges {
			out.Edges = append(out.Edges, scanner.FIDEdge{
				Src: b.fids[e.src], Dst: b.fids[e.dst], Kind: e.kind,
			})
		}
		out.Issues = append(out.Issues, c.issues...)
		out.Stats.InodesScanned += c.stats.InodesScanned
		out.Stats.DirentsRead += c.stats.DirentsRead
		out.Stats.EdgesEmitted += c.stats.EdgesEmitted
	}
	return out
}
