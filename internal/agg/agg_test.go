package agg

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

func scanCluster(t *testing.T, c *lustre.Cluster) []*scanner.Partial {
	t.Helper()
	var parts []*scanner.Partial
	// MDT first, then OSTs by index (deterministic GID space).
	p, err := scanner.ScanImage(c.MDT.Img, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts = append(parts, p)
	for _, ost := range c.OSTs {
		p, err := scanner.ScanImage(ost.Img, 0)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	return parts
}

func smallCluster(t *testing.T) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 2, StripeSize: 64 << 10,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.MkdirAll("/d")
	for i := 0; i < 3; i++ {
		c.Create(fmt.Sprintf("/d/f%d", i), 128<<10) // 2 objects each
	}
	return c
}

func TestMergeConsistentCluster(t *testing.T) {
	c := smallCluster(t)
	u := Merge(scanCluster(t, c))
	// Vertices: root, /d, 3 files, 6 objects = 11, no phantoms.
	if u.N() != 11 {
		t.Fatalf("N = %d, want 11", u.N())
	}
	for g := 0; g < u.N(); g++ {
		if !u.Present[g] {
			t.Errorf("vertex %d (%v) is phantom in a consistent cluster", g, u.FID(uint32(g)))
		}
		if len(u.Claims[g]) != 1 {
			t.Errorf("vertex %d claims = %d", g, len(u.Claims[g]))
		}
	}
	if d := u.DuplicateClaims(); len(d) != 0 {
		t.Errorf("duplicates: %v", d)
	}
	if p := u.Phantoms(); len(p) != 0 {
		t.Errorf("phantoms: %v", p)
	}
	b := u.Build(0)
	st := b.Stats(0)
	if st.UnpairedEdges != 0 {
		t.Errorf("unpaired edges = %d, want 0", st.UnpairedEdges)
	}
	if orphans := u.Orphans(b); len(orphans) != 0 {
		t.Errorf("orphans: %v", orphans)
	}
	// GID lookup round-trips.
	root, ok := u.GID(lustre.RootFID)
	if !ok || u.FID(root) != lustre.RootFID {
		t.Errorf("root GID lookup failed")
	}
	if u.Types[root] != ldiskfs.TypeDir {
		t.Errorf("root type = %v", u.Types[root])
	}
	if !u.FID(uint32(u.N() + 5)).IsZero() {
		t.Error("out-of-range FID lookup")
	}
}

func TestMergeDeterministic(t *testing.T) {
	c := smallCluster(t)
	parts := scanCluster(t, c)
	a := Merge(parts)
	b := Merge(parts)
	if a.N() != b.N() {
		t.Fatal("different N")
	}
	for g := 0; g < a.N(); g++ {
		if a.FIDs[g] != b.FIDs[g] {
			t.Fatalf("GID %d maps to %v vs %v", g, a.FIDs[g], b.FIDs[g])
		}
	}
}

func TestMergePhantomAndOrphan(t *testing.T) {
	c := smallCluster(t)
	// Orphan an object by rewriting one file's LOVEA to reference a
	// nonexistent object FID: creates one phantom + one orphan.
	ent, err := c.Stat("/d/f0")
	if err != nil {
		t.Fatal(err)
	}
	raw, _, _ := c.MDT.Img.GetXattr(ent.Ino, lustre.XattrLOV)
	layout, err := lustre.DecodeLOVEA(raw)
	if err != nil {
		t.Fatal(err)
	}
	orphanFID := layout.Stripes[0].ObjectFID
	layout.Stripes[0].ObjectFID = lustre.FID{Seq: 0xDEAD, Oid: 1}
	enc, _ := lustre.EncodeLOVEA(layout)
	c.MDT.Img.SetXattr(ent.Ino, lustre.XattrLOV, enc)

	u := Merge(scanCluster(t, c))
	b := u.Build(0)
	phantoms := u.Phantoms()
	if len(phantoms) != 1 || u.FID(phantoms[0]) != (lustre.FID{Seq: 0xDEAD, Oid: 1}) {
		t.Fatalf("phantoms: %v", phantoms)
	}
	// The disowned object still points at f0, so it is not a graph
	// orphan (in-degree 0) — but the unpaired edge shows up.
	if st := b.Stats(0); st.UnpairedEdges != 2 {
		t.Errorf("unpaired = %d, want 2 (dangling + disowned)", st.UnpairedEdges)
	}
	og, ok := u.GID(orphanFID)
	if !ok {
		t.Fatal("orphan FID missing from graph")
	}
	if !u.Present[og] {
		t.Error("orphan should be present")
	}
}

func TestMergeDuplicateClaims(t *testing.T) {
	c := smallCluster(t)
	// Give a second inode the same LMA FID as /d/f1 (duplicate identity).
	ent, _ := c.Stat("/d/f1")
	ino, err := c.MDT.Img.AllocInode(ldiskfs.TypeFile)
	if err != nil {
		t.Fatal(err)
	}
	c.MDT.Img.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(ent.FID))
	u := Merge(scanCluster(t, c))
	d := u.DuplicateClaims()
	if len(d) != 1 || u.FID(d[0]) != ent.FID {
		t.Fatalf("duplicates: %v", d)
	}
	if len(u.Claims[d[0]]) != 2 {
		t.Errorf("claims = %+v", u.Claims[d[0]])
	}
}

func TestOrphansDetected(t *testing.T) {
	c := smallCluster(t)
	// Remove one file's dirent + LOVEA reference by unlinking the file
	// but manually re-creating a stranded OST object.
	ost := c.OSTs[0]
	ino, err := ost.Img.AllocInode(ldiskfs.TypeObject)
	if err != nil {
		t.Fatal(err)
	}
	strayFID := lustre.FID{Seq: lustre.OSTSeqBase, Oid: 9999}
	ost.Img.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(strayFID))
	// No filter-fid: the object neither points nor is pointed at.
	u := Merge(scanCluster(t, c))
	b := u.Build(0)
	orphans := u.Orphans(b)
	var fids []string
	for _, g := range orphans {
		fids = append(fids, u.FID(g).String())
	}
	sort.Strings(fids)
	if len(orphans) != 1 || u.FID(orphans[0]) != strayFID {
		t.Fatalf("orphans = %v", fids)
	}
}

// TestMergeEdgeCountPreservedProperty: aggregation neither drops nor
// invents edges, for arbitrary partial-graph contents.
func TestMergeEdgeCountPreservedProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var parts []*scanner.Partial
		total := 0
		for p := 0; p < 1+r.Intn(4); p++ {
			part := &scanner.Partial{ServerLabel: fmt.Sprintf("ost%d", p)}
			for i := 0; i < r.Intn(40); i++ {
				part.Objects = append(part.Objects, scanner.Object{
					FID: lustre.FID{Seq: uint64(r.Intn(5)), Oid: uint32(r.Intn(20))},
					Ino: ldiskfs.Ino(i + 1), Type: ldiskfs.TypeObject,
				})
			}
			for i := 0; i < r.Intn(80); i++ {
				part.Edges = append(part.Edges, scanner.FIDEdge{
					Src:  lustre.FID{Seq: uint64(r.Intn(5)), Oid: uint32(r.Intn(20))},
					Dst:  lustre.FID{Seq: uint64(r.Intn(5)), Oid: uint32(r.Intn(20))},
					Kind: graph.EdgeKind(r.Intn(5)),
				})
				total++
			}
			parts = append(parts, part)
		}
		u := Merge(parts)
		if len(u.Edges) != total {
			return false
		}
		b := u.Build(0)
		return b.Fwd.NumEdges() == int64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeForwardsIssues: scanner parse problems survive aggregation
// with their server labels.
func TestMergeForwardsIssues(t *testing.T) {
	parts := []*scanner.Partial{
		{ServerLabel: "mdt0", Issues: []scanner.Issue{{Ino: 5, What: "corrupt LMA"}}},
		{ServerLabel: "ost1", Issues: []scanner.Issue{{Ino: 9, What: "corrupt LOVEA"}}},
	}
	u := Merge(parts)
	if len(u.Issues) != 2 {
		t.Fatalf("issues = %v", u.Issues)
	}
	if u.Issues[0] != "mdt0: ino 5: corrupt LMA" || u.Issues[1] != "ost1: ino 9: corrupt LOVEA" {
		t.Errorf("issue strings: %v", u.Issues)
	}
}

func TestMergeEdgesKindsPreserved(t *testing.T) {
	c := smallCluster(t)
	u := Merge(scanCluster(t, c))
	kinds := make(map[graph.EdgeKind]int)
	for _, e := range u.Edges {
		kinds[e.Kind]++
	}
	if kinds[graph.KindDirent] == 0 || kinds[graph.KindLinkEA] == 0 ||
		kinds[graph.KindLOVEA] == 0 || kinds[graph.KindFilterFID] == 0 {
		t.Errorf("edge kinds missing: %v", kinds)
	}
}
