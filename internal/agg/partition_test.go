package agg

import (
	"testing"
)

// TestPartitionOwnersDeterministic: the owners map is a pure function
// of the FID table — independent of worker counts and stable across
// repeated calls — and every owner is in range.
func TestPartitionOwnersDeterministic(t *testing.T) {
	u := MergeWorkers(randomPartials(11, 4, 200, 600), 4)
	for _, k := range []int{1, 2, 3, 8} {
		owners := u.PartitionOwners(k)
		if len(owners) != u.N() {
			t.Fatalf("k=%d: owners length %d want %d", k, len(owners), u.N())
		}
		again := u.PartitionOwners(k)
		for g := range owners {
			if owners[g] != again[g] {
				t.Fatalf("k=%d: owners[%d] unstable: %d then %d", k, g, owners[g], again[g])
			}
			if int(owners[g]) >= k {
				t.Fatalf("k=%d: owners[%d]=%d out of range", k, g, owners[g])
			}
			if got := PartitionOf(u.FIDs[g], k); got != int(owners[g]) {
				t.Fatalf("k=%d: owners[%d]=%d but PartitionOf=%d", k, g, owners[g], got)
			}
		}
	}
	// k=1 degenerates to all-zero (the legacy single-kernel case).
	for g, o := range u.PartitionOwners(1) {
		if o != 0 {
			t.Fatalf("k=1: owners[%d]=%d", g, o)
		}
	}
}

// TestBuildPartitioned: the one-call materialization covers the whole
// GID space and agrees with the separately built graph.
func TestBuildPartitioned(t *testing.T) {
	u := MergeWorkers(randomPartials(13, 3, 150, 500), 4)
	b, plan := u.BuildPartitioned(3, 4)
	if b.N() != u.N() || plan.N != u.N() || plan.K != 3 {
		t.Fatalf("BuildPartitioned shape: graph N=%d plan N=%d K=%d unified N=%d", b.N(), plan.N, plan.K, u.N())
	}
	total := 0
	for _, sub := range plan.Parts {
		total += sub.NLocal()
	}
	if total != u.N() {
		t.Fatalf("partitions own %d of %d vertices", total, u.N())
	}
}
