package agg

import (
	"sort"

	"faultyrank/internal/lustre"
	"faultyrank/internal/par"
	"faultyrank/internal/scanner"
)

// The sharded interner replaces the aggregator's single global
// map[FID]uint32 with nShards hash-disjoint maps so that interning,
// claim accounting and edge translation all run on every core while
// still producing the exact GID space of the sequential first-appearance
// walk. The pipeline is:
//
//  1. The canonical occurrence stream is defined exactly as the
//     sequential merge visits FIDs: every part's Objects in part order
//     (one occurrence per object), then every part's Edges in part
//     order (Src before Dst). Each occurrence has a global index.
//  2. Shard-local interning (parallel over stream pieces, then over
//     shards): each shard collects its FIDs with their first-occurrence
//     index. Piece-local dedup keeps the buckets small.
//  3. Deterministic global renumbering: all shards' unique FIDs are
//     sorted by first-occurrence index; position = GID. Because
//     occurrence indices are unique, the order — and therefore the GID
//     space — is byte-identical to the sequential merge, independent of
//     worker count and shard count.

// nShards is the shard count of the FID index. A power of two so that
// shardOf can mask; 64 keeps per-shard maps usefully small well past
// the core counts this code base targets.
const nShards = 64

// shardOf hashes a FID onto its shard with a splitmix64-style mix; it
// must be a pure function of the FID so lookups and builds agree.
func shardOf(f lustre.FID) int {
	h := f.Seq*0x9E3779B97F4A7C15 + uint64(f.Oid)*0xBF58476D1CE4E5B9 + uint64(f.Ver)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return int(h & (nShards - 1))
}

// fidShards is the sharded FID -> GID index.
type fidShards []map[lustre.FID]uint32

func newFIDShards() fidShards {
	s := make(fidShards, nShards)
	for i := range s {
		s[i] = make(map[lustre.FID]uint32)
	}
	return s
}

func (s fidShards) gid(f lustre.FID) (uint32, bool) {
	if len(s) == 0 {
		return 0, false
	}
	g, ok := s[shardOf(f)][f]
	return g, ok
}

// occurrence is one FID sighting in the canonical stream.
type occurrence struct {
	fid   lustre.FID
	idx   int64
	shard uint16
}

// streamPiece is a contiguous slice of the occurrence stream, bounded
// so phase 1 load-balances across workers.
type streamPiece struct {
	part   int
	edges  bool // false: Objects[lo:hi], true: Edges[lo:hi]
	lo, hi int
	base   int64 // occurrence index of element lo (edges carry two each)
}

// pieceTarget is the occurrence count one phase-1 piece aims for.
const pieceTarget = 1 << 16

func splitStream(parts []*scanner.Partial) ([]streamPiece, int64) {
	var pieces []streamPiece
	var occ int64
	for pi, p := range parts {
		for lo := 0; lo < len(p.Objects); lo += pieceTarget {
			hi := lo + pieceTarget
			if hi > len(p.Objects) {
				hi = len(p.Objects)
			}
			pieces = append(pieces, streamPiece{part: pi, lo: lo, hi: hi, base: occ + int64(lo)})
		}
		occ += int64(len(p.Objects))
	}
	for pi, p := range parts {
		step := pieceTarget / 2
		for lo := 0; lo < len(p.Edges); lo += step {
			hi := lo + step
			if hi > len(p.Edges) {
				hi = len(p.Edges)
			}
			pieces = append(pieces, streamPiece{part: pi, edges: true, lo: lo, hi: hi, base: occ + 2*int64(lo)})
		}
		occ += 2 * int64(len(p.Edges))
	}
	return pieces, occ
}

// internSharded runs the three interning phases and returns the GID ->
// FID table plus the sharded lookup index.
func internSharded(parts []*scanner.Partial, workers int) ([]lustre.FID, fidShards) {
	pieces, _ := splitStream(parts)

	// Phase 1: per-piece first occurrences, bucketed by shard.
	buckets := make([][][]occurrence, len(pieces))
	par.ForEach(len(pieces), workers, func(i int) {
		pc := pieces[i]
		seen := make(map[lustre.FID]struct{}, pc.hi-pc.lo)
		bk := make([][]occurrence, nShards)
		add := func(f lustre.FID, idx int64) {
			if _, dup := seen[f]; dup {
				return
			}
			seen[f] = struct{}{}
			s := shardOf(f)
			bk[s] = append(bk[s], occurrence{fid: f, idx: idx, shard: uint16(s)})
		}
		p := parts[pc.part]
		if pc.edges {
			for k, e := range p.Edges[pc.lo:pc.hi] {
				add(e.Src, pc.base+2*int64(k))
				add(e.Dst, pc.base+2*int64(k)+1)
			}
		} else {
			for k, o := range p.Objects[pc.lo:pc.hi] {
				add(o.FID, pc.base+int64(k))
			}
		}
		buckets[i] = bk
	})

	// Phase 2: shard-local interning. Pieces are generated — and hence
	// iterated — in ascending base order and entries within a bucket
	// ascend, so the first sighting of a FID in this walk carries its
	// minimum occurrence index.
	shardUnique := make([][]occurrence, nShards)
	par.ForEach(nShards, workers, func(s int) {
		seen := make(map[lustre.FID]struct{})
		var uniq []occurrence
		for i := range pieces {
			for _, en := range buckets[i][s] {
				if _, dup := seen[en.fid]; dup {
					continue
				}
				seen[en.fid] = struct{}{}
				uniq = append(uniq, en)
			}
		}
		shardUnique[s] = uniq
	})

	// Phase 3: deterministic global renumbering by first occurrence.
	total := 0
	for _, u := range shardUnique {
		total += len(u)
	}
	all := make([]occurrence, 0, total)
	for _, u := range shardUnique {
		all = append(all, u...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].idx < all[j].idx })

	fids := make([]lustre.FID, len(all))
	par.ForRange(len(all), workers, func(lo, hi int) {
		for g := lo; g < hi; g++ {
			fids[g] = all[g].fid
		}
	})

	// Final lookup maps: group GID assignments by shard, then let each
	// shard build its own map — no write sharing.
	assign := make([][]int, nShards) // indices into all
	for g, en := range all {
		assign[en.shard] = append(assign[en.shard], g)
	}
	idx := make(fidShards, nShards)
	par.ForEach(nShards, workers, func(s int) {
		m := make(map[lustre.FID]uint32, len(assign[s]))
		for _, g := range assign[s] {
			m[all[g].fid] = uint32(g)
		}
		idx[s] = m
	})
	return fids, idx
}
