package agg

import (
	"time"

	"faultyrank/internal/par"
	"faultyrank/internal/telemetry"
)

// Metrics is the aggregator's instrumentation: intake counters on the
// Builder (chunks and their entries, plus time spent blocked on the
// shared intake lock — the contention the streaming design is meant to
// keep negligible) and merge-side counters (items translated per merge
// worker, per-worker busy time, interner size). Instruments are
// nil-safe; a nil *Metrics observes nothing.
type Metrics struct {
	// Builder intake.
	Chunks, Objects, Edges, Issues *telemetry.Counter
	// LockWait observes how long each Emit waited for the shared
	// builder lock (seconds) — intake-side idle time.
	LockWait *telemetry.Histogram

	// Merge fills.
	MergeObjects, MergeEdges *telemetry.Counter
	// WorkerBusy observes each merge worker's busy time per fill pass
	// (seconds); stage wall minus busy is that worker's idle share.
	WorkerBusy *telemetry.Histogram
	// InternedFIDs is the interner's final size — the unified graph's
	// vertex count, phantoms included.
	InternedFIDs *telemetry.Gauge

	// Journal, when set, receives merge-milestone events (not resolved
	// from a registry; the run-journal owner assigns it). Nil-tolerant.
	Journal *telemetry.Journal
}

// NewMetrics resolves the aggregator instruments from reg (nil reg →
// no-op instruments).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Chunks:       reg.Counter("agg_chunks_total"),
		Objects:      reg.Counter("agg_objects_total"),
		Edges:        reg.Counter("agg_edges_total"),
		Issues:       reg.Counter("agg_issues_total"),
		LockWait:     reg.Histogram("agg_intake_lock_wait_seconds", nil),
		MergeObjects: reg.Counter("agg_merge_objects_total"),
		MergeEdges:   reg.Counter("agg_merge_edges_total"),
		WorkerBusy:   reg.Histogram("agg_merge_worker_busy_seconds", nil),
		InternedFIDs: reg.Gauge("agg_interned_fids"),
	}
}

// mergeObjects and mergeEdges are nil-safe accessors so call sites can
// pick an item counter without a nil guard of their own.
func (m *Metrics) mergeObjects() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.MergeObjects
}

func (m *Metrics) mergeEdges() *telemetry.Counter {
	if m == nil {
		return nil
	}
	return m.MergeEdges
}

// observedRange is par.ForRange with per-worker observation: each
// worker's contiguous range contributes one busy-time sample and its
// item count. With m == nil it is exactly par.ForRange.
func observedRange(n, workers int, m *Metrics, items *telemetry.Counter, fn func(lo, hi int)) {
	if m == nil {
		par.ForRange(n, workers, fn)
		return
	}
	par.ForRange(n, workers, func(lo, hi int) {
		t0 := time.Now()
		fn(lo, hi)
		m.WorkerBusy.Observe(time.Since(t0).Seconds())
		items.Add(int64(hi - lo))
	})
}
