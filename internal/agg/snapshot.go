package agg

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

// This file is the DeltaBuilder's durable form: a deterministic,
// versioned binary codec for the persistent interner, the cached
// per-inode contributions, and the accumulated dirty set — everything a
// restarted online tracker needs to resume from the change feed instead
// of a cold rescan. It follows the telemetry codec's discipline:
//
//   - Versioned: the blob starts with "FRDB" | version; a layout change
//     bumps DeltaCodecVersion and old blobs fail loudly.
//   - Canonical: inodes encode in ascending order per server and the
//     dirty set strictly ascending; decode REJECTS any other order, so
//     a blob either fails to decode or re-encodes byte-identically
//     (the online snapshot fuzz target leans on this).
//   - Bounded: counts from untrusted headers are sanity-checked against
//     the remaining payload before any allocation sized from them, and
//     every IID reference is range-checked against the interner table.

// DeltaCodecVersion identifies the binary layout of DeltaBuilder blobs.
// Bump on any incompatible change.
const DeltaCodecVersion = 1

var deltaMagic = [4]byte{'F', 'R', 'D', 'B'}

// ErrDeltaSnapshot is wrapped by every decode failure caused by a
// malformed blob (truncation, corruption, non-canonical form).
var ErrDeltaSnapshot = errors.New("malformed delta snapshot")

// ErrDeltaSnapshotVersion is wrapped when the blob's magic or version
// does not match this build — the mixed-version signal a deployment
// handles by falling back to a cold rescan.
var ErrDeltaSnapshotVersion = errors.New("unsupported delta snapshot version")

func errDelta(format string, args ...any) error {
	return fmt.Errorf("agg: %s: %w", fmt.Sprintf(format, args...), ErrDeltaSnapshot)
}

// EncodeBinary renders the builder's full state as a versioned blob.
// Equal builder states always produce identical bytes: membership
// buffers are folded first and every collection encodes in canonical
// order.
func (b *DeltaBuilder) EncodeBinary() []byte {
	return b.AppendBinary(nil)
}

// AppendBinary appends EncodeBinary's blob to buf.
func (b *DeltaBuilder) AppendBinary(buf []byte) []byte {
	buf = append(buf, deltaMagic[:]...)
	buf = append(buf, DeltaCodecVersion)

	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(b.labels)))
	for _, l := range b.labels {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(l)))
		buf = append(buf, l...)
	}

	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.fids)))
	for _, f := range b.fids {
		buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
		buf = binary.LittleEndian.AppendUint32(buf, f.Oid)
		buf = binary.LittleEndian.AppendUint32(buf, f.Ver)
	}

	dirty := make([]uint32, 0, len(b.dirty))
	for iid := range b.dirty {
		dirty = append(dirty, iid)
	}
	slices.Sort(dirty)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(dirty)))
	for _, iid := range dirty {
		buf = binary.LittleEndian.AppendUint32(buf, iid)
	}

	for _, s := range b.servers {
		s.fold()
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.sorted)))
		for _, ino := range s.sorted {
			c := s.contrib[ino]
			buf = binary.LittleEndian.AppendUint64(buf, uint64(ino))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.objs)))
			for _, o := range c.objs {
				buf = binary.LittleEndian.AppendUint32(buf, o.iid)
				buf = binary.LittleEndian.AppendUint16(buf, uint16(o.typ))
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.edges)))
			for _, e := range c.edges {
				buf = binary.LittleEndian.AppendUint32(buf, e.src)
				buf = binary.LittleEndian.AppendUint32(buf, e.dst)
				buf = append(buf, byte(e.kind))
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.issues)))
			for _, is := range c.issues {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(is.Ino))
				buf = binary.LittleEndian.AppendUint16(buf, uint16(len(is.What)))
				buf = append(buf, is.What...)
			}
			buf = binary.LittleEndian.AppendUint64(buf, uint64(c.stats.InodesScanned))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(c.stats.DirentsRead))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(c.stats.EdgesEmitted))
		}
	}
	return buf
}

// ddec is the bounded decoder for delta blobs.
type ddec struct {
	b   []byte
	off int
	err error
}

func (d *ddec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || d.off+n > len(d.b) {
		d.err = errDelta("truncated at offset %d", d.off)
		return false
	}
	return true
}

func (d *ddec) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *ddec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *ddec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *ddec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *ddec) str() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *ddec) remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.b) - d.off
}

// Minimum on-wire record sizes, the allocation bounds for hostile
// counts.
const (
	deltaMinFID   = 16          // seq + oid + ver
	deltaMinInode = 8 + 12 + 24 // ino + three zero counts + stats
	deltaMinObj   = 6           // iid + type
	deltaMinEdge  = 9           // src + dst + kind
	deltaMinIssue = 10          // ino + empty string
)

// DecodeDeltaBuilder reconstructs a builder from an EncodeBinary blob.
// The sharded FID index is rebuilt from the interner table; the blob is
// rejected (never panicked on) when truncated, when counts are
// implausible for the remaining payload, when any IID reference or
// canonical order is violated, or when the version does not match.
func DecodeDeltaBuilder(blob []byte) (*DeltaBuilder, error) {
	d := &ddec{b: blob}
	if !d.need(5) {
		return nil, d.err
	}
	if [4]byte(blob[:4]) != deltaMagic {
		return nil, fmt.Errorf("agg: bad delta snapshot magic %q: %w", blob[:4], ErrDeltaSnapshotVersion)
	}
	if v := blob[4]; v != DeltaCodecVersion {
		return nil, fmt.Errorf("agg: delta snapshot version %d (have %d): %w", v, DeltaCodecVersion, ErrDeltaSnapshotVersion)
	}
	d.off = 5

	nLabels := int(d.u16())
	if d.err == nil && nLabels*2 > d.remaining() {
		return nil, errDelta("implausible server count %d", nLabels)
	}
	labels := make([]string, 0, nLabels)
	for i := 0; i < nLabels && d.err == nil; i++ {
		labels = append(labels, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	b := NewDeltaBuilder(labels)

	nFIDs := d.u32()
	if d.err == nil && uint64(nFIDs)*deltaMinFID > uint64(d.remaining()) {
		return nil, errDelta("implausible FID count %d", nFIDs)
	}
	b.fids = make([]lustre.FID, 0, nFIDs)
	for i := uint32(0); i < nFIDs && d.err == nil; i++ {
		f := lustre.FID{Seq: d.u64(), Oid: d.u32(), Ver: d.u32()}
		if d.err != nil {
			break
		}
		if _, dup := b.iidOf.gid(f); dup {
			return nil, errDelta("duplicate FID %v in interner table", f)
		}
		b.iidOf[shardOf(f)][f] = uint32(len(b.fids))
		b.fids = append(b.fids, f)
	}

	nDirty := d.u32()
	if d.err == nil && uint64(nDirty)*4 > uint64(d.remaining()) {
		return nil, errDelta("implausible dirty count %d", nDirty)
	}
	prevDirty := uint32(0)
	for i := uint32(0); i < nDirty && d.err == nil; i++ {
		iid := d.u32()
		if d.err != nil {
			break
		}
		if iid >= nFIDs {
			return nil, errDelta("dirty IID %d out of range (%d FIDs)", iid, nFIDs)
		}
		if i > 0 && iid <= prevDirty {
			return nil, errDelta("dirty set not strictly ascending at IID %d", iid)
		}
		prevDirty = iid
		b.dirty[iid] = struct{}{}
	}

	for si := 0; si < nLabels && d.err == nil; si++ {
		s := b.servers[si]
		nInodes := d.u32()
		if d.err == nil && uint64(nInodes)*deltaMinInode > uint64(d.remaining()) {
			return nil, errDelta("implausible inode count %d for server %q", nInodes, s.label)
		}
		s.sorted = make([]ldiskfs.Ino, 0, nInodes)
		var prevIno ldiskfs.Ino
		for i := uint32(0); i < nInodes && d.err == nil; i++ {
			ino := ldiskfs.Ino(d.u64())
			if d.err != nil {
				break
			}
			if i > 0 && ino <= prevIno {
				return nil, errDelta("server %q inodes not strictly ascending at %d", s.label, ino)
			}
			prevIno = ino
			c := &inoContrib{}

			nObjs := d.u32()
			if d.err == nil && uint64(nObjs)*deltaMinObj > uint64(d.remaining()) {
				return nil, errDelta("implausible object count %d for ino %d", nObjs, ino)
			}
			for j := uint32(0); j < nObjs && d.err == nil; j++ {
				iid := d.u32()
				typ := ldiskfs.FileType(d.u16())
				if d.err != nil {
					break
				}
				if iid >= nFIDs {
					return nil, errDelta("object IID %d out of range (%d FIDs)", iid, nFIDs)
				}
				c.objs = append(c.objs, contribObj{iid: iid, typ: typ})
			}

			nEdges := d.u32()
			if d.err == nil && uint64(nEdges)*deltaMinEdge > uint64(d.remaining()) {
				return nil, errDelta("implausible edge count %d for ino %d", nEdges, ino)
			}
			for j := uint32(0); j < nEdges && d.err == nil; j++ {
				src := d.u32()
				dst := d.u32()
				kind := graph.EdgeKind(d.u8())
				if d.err != nil {
					break
				}
				if src >= nFIDs || dst >= nFIDs {
					return nil, errDelta("edge IID %d->%d out of range (%d FIDs)", src, dst, nFIDs)
				}
				c.edges = append(c.edges, contribEdge{src: src, dst: dst, kind: kind})
			}

			nIssues := d.u32()
			if d.err == nil && uint64(nIssues)*deltaMinIssue > uint64(d.remaining()) {
				return nil, errDelta("implausible issue count %d for ino %d", nIssues, ino)
			}
			for j := uint32(0); j < nIssues && d.err == nil; j++ {
				isIno := ldiskfs.Ino(d.u64())
				what := d.str()
				if d.err != nil {
					break
				}
				c.issues = append(c.issues, scanner.Issue{Ino: isIno, What: what})
			}

			c.stats.InodesScanned = int64(d.u64())
			c.stats.DirentsRead = int64(d.u64())
			c.stats.EdgesEmitted = int64(d.u64())
			if d.err != nil {
				break
			}
			s.sorted = append(s.sorted, ino)
			s.contrib[ino] = c
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(blob) {
		return nil, errDelta("%d trailing bytes", len(blob)-d.off)
	}
	return b, nil
}
