package agg

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"slices"
	"testing"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

// buildRandomDelta drives a random apply/remove sequence and returns the
// builder (same generator as the delta equivalence property test).
func buildRandomDelta(r *rand.Rand, rounds int) *DeltaBuilder {
	labels := []string{"mdt0", "ost0", "ost1"}
	const inoSpace = 40
	db := NewDeltaBuilder(labels)
	for round := 0; round < rounds; round++ {
		for op := 0; op < 1+r.Intn(12); op++ {
			srv := r.Intn(len(labels))
			ino := 1 + r.Intn(inoSpace)
			if r.Intn(3) == 0 {
				db.Remove(srv, ldiskfs.Ino(ino))
				continue
			}
			if err := db.Apply(srv, ldiskfs.Ino(ino), randomContribution(r, srv, ino, inoSpace)); err != nil {
				panic(err)
			}
		}
		if r.Intn(2) == 0 {
			db.Materialize() // interleave folds with membership churn
		}
		if r.Intn(3) == 0 {
			db.ResetDirty()
		}
	}
	return db
}

// assertMaterializedEqual compares two materialisations field by field
// (Unified carries a closure, so DeepEqual on the whole struct is out).
func assertMaterializedEqual(t *testing.T, got, want *Materialized) {
	t.Helper()
	if !reflect.DeepEqual(got.U.FIDs, want.U.FIDs) {
		t.Fatal("FID tables diverge")
	}
	if !reflect.DeepEqual(got.U.Present, want.U.Present) ||
		!reflect.DeepEqual(got.U.Types, want.U.Types) ||
		!reflect.DeepEqual(got.U.Claims, want.U.Claims) {
		t.Fatal("object state diverges")
	}
	if !reflect.DeepEqual(got.U.Edges, want.U.Edges) {
		t.Fatal("edges diverge")
	}
	if !reflect.DeepEqual(got.U.Issues, want.U.Issues) {
		t.Fatal("issues diverge")
	}
	if !reflect.DeepEqual(got.IIDOfGID, want.IIDOfGID) || got.NumIIDs != want.NumIIDs {
		t.Fatal("IID mapping diverges")
	}
	if !reflect.DeepEqual(got.DirtySeeds, want.DirtySeeds) {
		t.Fatalf("dirty seeds diverge: got %v, want %v", got.DirtySeeds, want.DirtySeeds)
	}
}

// TestDeltaSnapshotRoundTrip: encode → decode reproduces the builder
// exactly — byte-identical re-encoding (the bijectivity the fuzz target
// asserts), identical materialisation including dirty seeds, and
// identical reconstructed partials.
func TestDeltaSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		db := buildRandomDelta(r, 6)

		blob := db.EncodeBinary()
		got, err := DecodeDeltaBuilder(blob)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if re := got.EncodeBinary(); !bytes.Equal(re, blob) {
			t.Fatalf("seed %d: re-encode differs (%d vs %d bytes)", seed, len(re), len(blob))
		}
		if !reflect.DeepEqual(got.Labels(), db.Labels()) {
			t.Fatalf("seed %d: labels %v vs %v", seed, got.Labels(), db.Labels())
		}
		assertMaterializedEqual(t, got.Materialize(), db.Materialize())
		for si := range db.Labels() {
			if !reflect.DeepEqual(got.ServerPartial(si), db.ServerPartial(si)) {
				t.Fatalf("seed %d: server %d partial diverges after round trip", seed, si)
			}
		}
		// The restored interner must keep assigning the same IIDs: intern
		// a FID both builders have seen and one neither has.
		if a, b := got.intern(fidFor(0, 1)), db.intern(fidFor(0, 1)); a != b {
			t.Fatalf("seed %d: known FID re-interned differently: %d vs %d", seed, a, b)
		}
		if a, b := got.intern(fidFor(9, 999)), db.intern(fidFor(9, 999)); a != b {
			t.Fatalf("seed %d: fresh FID interned differently: %d vs %d", seed, a, b)
		}
	}
}

// TestDeltaSnapshotRejectsDamage: every truncation of a valid blob and
// the classic header forgeries fail with named errors — never a panic,
// never a silently wrong builder.
func TestDeltaSnapshotRejectsDamage(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	db := buildRandomDelta(r, 4)
	blob := db.EncodeBinary()

	for n := 0; n < len(blob); n++ {
		if _, err := DecodeDeltaBuilder(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		} else if !errors.Is(err, ErrDeltaSnapshot) && !errors.Is(err, ErrDeltaSnapshotVersion) {
			t.Fatalf("truncation to %d bytes: unnamed error %v", n, err)
		}
	}

	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, err := DecodeDeltaBuilder(bad); !errors.Is(err, ErrDeltaSnapshotVersion) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), blob...)
	bad[4] = DeltaCodecVersion + 1
	if _, err := DecodeDeltaBuilder(bad); !errors.Is(err, ErrDeltaSnapshotVersion) {
		t.Fatalf("future version: %v", err)
	}

	if _, err := DecodeDeltaBuilder(append(append([]byte(nil), blob...), 0)); !errors.Is(err, ErrDeltaSnapshot) {
		t.Fatalf("trailing byte: %v", err)
	}

	// Random single-byte corruption: either rejected or — when the flip
	// lands in free-form content like an issue string — still canonical,
	// in which case it must re-encode to exactly the corrupted bytes.
	for i := 0; i < 200; i++ {
		pos := r.Intn(len(blob)-5) + 5
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 1 << r.Intn(8)
		got, err := DecodeDeltaBuilder(mut)
		if err != nil {
			continue
		}
		if re := got.EncodeBinary(); !bytes.Equal(re, mut) {
			t.Fatalf("corrupt blob (byte %d) decoded non-canonically", pos)
		}
	}
}

// TestDeltaDirtySeeds: the dirty set means "changed since ResetDirty".
// Applying a contribution seeds its objects and both endpoints of its
// edges; replacing one seeds old and new; removing one seeds what it
// touched (minus vertices that died with it); ResetDirty empties it.
func TestDeltaDirtySeeds(t *testing.T) {
	db := NewDeltaBuilder([]string{"mdt0"})
	apply := func(ino int, self lustre.FID, targets ...lustre.FID) {
		t.Helper()
		p := &scanner.Partial{
			Objects: []scanner.Object{{FID: self, Ino: ldiskfs.Ino(ino), Type: ldiskfs.TypeFile}},
		}
		for _, dst := range targets {
			p.Edges = append(p.Edges, scanner.FIDEdge{Src: self, Dst: dst, Kind: graph.KindLinkEA})
		}
		if err := db.Apply(0, ldiskfs.Ino(ino), p); err != nil {
			t.Fatal(err)
		}
	}

	apply(1, fidFor(0, 1), fidFor(0, 2))
	apply(2, fidFor(0, 2), fidFor(0, 1))
	mat := db.Materialize()
	if len(mat.DirtySeeds) != mat.U.N() {
		t.Fatalf("initial build: %d seeds, want all %d vertices", len(mat.DirtySeeds), mat.U.N())
	}

	db.ResetDirty()
	mat = db.Materialize()
	if len(mat.DirtySeeds) != 0 {
		t.Fatalf("after reset: %d seeds, want 0", len(mat.DirtySeeds))
	}

	// Replace inode 1's contribution: it now points at a new phantom FID
	// instead of FID 2. Old endpoints (1, 2) and the new one are dirty.
	apply(1, fidFor(0, 1), fidFor(0, 3))
	mat = db.Materialize()
	want := seedSet(t, mat, fidFor(0, 1), fidFor(0, 2), fidFor(0, 3))
	if !reflect.DeepEqual(mat.DirtySeeds, want) {
		t.Fatalf("after replace: seeds %v, want %v", mat.DirtySeeds, want)
	}

	// A failed/unconverged check does not reset: seeds accumulate.
	db.Remove(0, 2)
	mat = db.Materialize()
	// FID 2's vertex died with the removal (nothing references it), so
	// only the survivors appear, but FID 1 stays from the prior delta.
	want = seedSet(t, mat, fidFor(0, 1), fidFor(0, 3))
	if !reflect.DeepEqual(mat.DirtySeeds, want) {
		t.Fatalf("after remove: seeds %v, want %v", mat.DirtySeeds, want)
	}
}

// FuzzDecodeDeltaSnapshot asserts the codec's canonical-form invariant:
// any blob that decodes must re-encode byte-identically, and no input
// may panic or over-allocate.
func FuzzDecodeDeltaSnapshot(f *testing.F) {
	for seed := int64(0); seed < 3; seed++ {
		r := rand.New(rand.NewSource(seed))
		f.Add(buildRandomDelta(r, 3).EncodeBinary())
	}
	f.Add(NewDeltaBuilder(nil).EncodeBinary())
	f.Fuzz(func(t *testing.T, blob []byte) {
		b, err := DecodeDeltaBuilder(blob)
		if err != nil {
			if b != nil {
				t.Fatal("decode returned both a builder and an error")
			}
			return
		}
		if re := b.EncodeBinary(); !bytes.Equal(re, blob) {
			t.Fatalf("decode accepted a non-canonical blob (%d bytes, re-encodes to %d)",
				len(blob), len(re))
		}
	})
}

// seedSet maps FIDs to their sorted GIDs in mat.
func seedSet(t *testing.T, mat *Materialized, fids ...lustre.FID) []uint32 {
	t.Helper()
	out := make([]uint32, 0, len(fids))
	for _, f := range fids {
		g, ok := mat.U.GID(f)
		if !ok {
			t.Fatalf("FID %v not live in materialisation", f)
		}
		out = append(out, g)
	}
	slices.Sort(out)
	return out
}
