package checker

import (
	"strings"
	"testing"
	"time"

	"faultyrank/internal/agg"
	"faultyrank/internal/core"
	"faultyrank/internal/graph"
)

// goldenResult builds a Result by hand with every field that reaches the
// report pinned, so the rendered text can be compared byte for byte.
func goldenResult() *Result {
	return &Result{
		TScan:  1500 * time.Millisecond,
		TGraph: 250 * time.Millisecond,
		TRank:  125 * time.Millisecond,
		Coverage: Coverage{
			Total: 3,
		},
		Net: NetStats{Frames: 42, Bytes: 8192, DialRetries: 2},
		Scan: ScanStats{
			InodesScanned: 1000,
			DirentsRead:   400,
			EdgesEmitted:  900,
			ParseIssues:   1,
			Chunks:        7,
		},
		Stats:   graph.Stats{Vertices: 500, Edges: 900, PairedEdges: 800, UnpairedEdges: 100},
		Unified: &agg.Unified{Present: []bool{true, true}},
		Rank:    &core.Result{Iterations: 9, Converged: true},
	}
}

// TestReportGoldenClean pins the full report of a clean, fully-covered
// run — including the telemetry-derived scan counter line.
func TestReportGoldenClean(t *testing.T) {
	res := goldenResult()
	var buf strings.Builder
	if err := res.WriteReport(&buf, false); err != nil {
		t.Fatal(err)
	}
	want := `metadata graph: 500 vertices, 900 edges (800 paired, 100 unpaired), 0 phantom FIDs
timing: T_scan=1.500s  T_graph=0.250s  T_FR=0.125s  total=1.875s
rank: 9 iterations, converged=true
coverage: complete — all 3 server(s) merged
transfer: 42 frames, 8192 bytes, 2 dial retries
scan: 1000 inodes, 400 dirents, 900 edges emitted, 7 chunks, 1 parse issues
verdict: file system is consistent — no findings
`
	if got := buf.String(); got != want {
		t.Errorf("clean report mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestReportGoldenDegraded pins the degraded-coverage rendering: the
// missing servers, the stream-error lines, and the same counter lines.
func TestReportGoldenDegraded(t *testing.T) {
	res := goldenResult()
	res.Coverage.Missing = []string{"ost1"}
	res.Net.StreamErrors = []string{"stream 2: connection reset"}
	var buf strings.Builder
	if err := res.WriteReport(&buf, false); err != nil {
		t.Fatal(err)
	}
	want := `metadata graph: 500 vertices, 900 edges (800 paired, 100 unpaired), 0 phantom FIDs
timing: T_scan=1.500s  T_graph=0.250s  T_FR=0.125s  total=1.875s
rank: 9 iterations, converged=true
coverage: DEGRADED — 2 of 3 server(s) merged; missing: ost1
  findings below cover surviving servers only; cross-server
  relations into missing servers will appear unpaired
  stream error: stream 2: connection reset
transfer: 42 frames, 8192 bytes, 2 dial retries
scan: 1000 inodes, 400 dirents, 900 edges emitted, 7 chunks, 1 parse issues
verdict: file system is consistent — no findings
`
	if got := buf.String(); got != want {
		t.Errorf("degraded report mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRunPopulatesObservability checks that an ordinary in-process run
// fills the new Result fields: scan counters, the phase tree, and a
// non-empty metrics snapshot — and that the report carries the scan
// counter line.
func TestRunPopulatesObservability(t *testing.T) {
	c := fig7Cluster(t)
	res, err := Run(ClusterImages(c), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scan.InodesScanned == 0 || res.Scan.Chunks == 0 {
		t.Errorf("scan stats not populated: %+v", res.Scan)
	}
	if res.Phases == nil || res.Phases.Name != "run" {
		t.Fatalf("phase tree missing: %+v", res.Phases)
	}
	for _, phase := range []string{"scan", "aggregate", "rank"} {
		if res.Phases.Find(phase) == nil {
			t.Errorf("phase tree lacks %q: %+v", phase, res.Phases)
		}
	}
	if v := res.Metrics.Counter("scanner_inodes_scanned_total"); v != res.Scan.InodesScanned {
		t.Errorf("snapshot counter = %d; want %d", v, res.Scan.InodesScanned)
	}
	var buf strings.Builder
	if err := res.WriteReport(&buf, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "scan: ") {
		t.Errorf("report lacks scan counter line:\n%s", buf.String())
	}
}
