package checker

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"faultyrank/internal/inject"
	"faultyrank/internal/telemetry"
	"faultyrank/internal/trace"
)

// TestJournalFaultTimeline is the flight recorder's acceptance path: a
// crash-mid-stream TCP fault run completes degraded and leaves a run
// journal whose coordinator lane records the failure sequence naming
// the victim; the journal survives an FRJR dump-and-reload; and the
// trace render names the victim as culprit with its scan-failed and
// degraded evidence.
func TestJournalFaultTimeline(t *testing.T) {
	ctx, cancel := testCtx(t)
	defer cancel()

	c := fig7Cluster(t)
	images := ClusterImages(c)
	victim := images[len(images)-1].Label()

	fault := &inject.NetFault{Scenario: inject.NetCrashMidStream, AfterChunks: 1}
	res, err := RunContext(ctx, images, degradedOptions(victim, fault))
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if !res.Coverage.Degraded() {
		t.Fatalf("expected degraded coverage, got %+v", res.Coverage)
	}

	// The run's flight record: coordinator lane first, then per-server
	// sections; survivors shipped their sections as wire trailers and the
	// victim's sender-side journal was kept locally.
	if len(res.Journal) < 2 {
		t.Fatalf("journal sections: %d, want coordinator + servers", len(res.Journal))
	}
	coord := res.Journal[0]
	if coord.Server != "coordinator" {
		t.Fatalf("first section %q, want coordinator", coord.Server)
	}
	var sawRun, sawFail, sawDegraded bool
	for _, e := range coord.Events {
		switch e.Kind {
		case "run":
			sawRun = true
		case "scan-failed":
			if e.Attr("server") == victim {
				sawFail = true
			}
		case "degraded":
			if strings.Contains(e.Attr("missing"), victim) {
				sawDegraded = true
			}
		}
	}
	if !sawRun || !sawFail || !sawDegraded {
		t.Fatalf("coordinator lane run=%t scan-failed(%s)=%t degraded=%t:\n%+v",
			sawRun, victim, sawFail, sawDegraded, coord.Events)
	}
	lanes := map[string]bool{}
	for _, s := range res.Journal {
		lanes[s.Server] = true
	}
	if !lanes[victim] {
		t.Fatalf("victim %s has no journal lane: %v", victim, lanes)
	}

	// Auto-dump and reload: the FRJR file round-trips the sections.
	path := filepath.Join(t.TempDir(), "journal.frjr")
	if err := telemetry.WriteJournalFile(path, res.Journal); err != nil {
		t.Fatalf("dump: %v", err)
	}
	sections, err := telemetry.ReadJournalFile(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if len(sections) != len(res.Journal) {
		t.Fatalf("reloaded %d sections, want %d", len(sections), len(res.Journal))
	}

	// The rendered timeline names the failing server and shows its
	// failure sequence.
	tl := trace.Build(sections)
	if got := tl.Culprit(); got != victim {
		t.Fatalf("culprit %q, want %q (suspects %+v)", got, victim, tl.Suspects)
	}
	var buf bytes.Buffer
	if err := tl.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"culprit: " + victim,
		"scan-failed",
		"degraded",
		"missing=" + victim,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline render missing %q:\n%s", want, out)
		}
	}
}

// TestJournalCleanRun: a healthy in-process run still produces a
// journal (coordinator + one lane per server) but no suspects.
func TestJournalCleanRun(t *testing.T) {
	c := fig7Cluster(t)
	res, err := RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Journal) != len(ClusterImages(c))+1 {
		t.Fatalf("journal sections: %d, want %d", len(res.Journal), len(ClusterImages(c))+1)
	}
	tl := trace.Build(res.Journal)
	if got := tl.Culprit(); got != "" {
		t.Fatalf("clean run culprit %q (suspects %+v)", got, tl.Suspects)
	}
	var sawMerge, sawIter bool
	for _, e := range res.Journal[0].Events {
		switch e.Kind {
		case "merge-done":
			sawMerge = true
		case "iteration":
			sawIter = true
		}
	}
	if !sawMerge || !sawIter {
		t.Fatalf("coordinator lane merge-done=%t iteration=%t:\n%+v",
			sawMerge, sawIter, res.Journal[0].Events)
	}
}
