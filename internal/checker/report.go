package checker

import (
	"fmt"
	"io"
	"strings"
)

// timelineBarWidth is the character budget of a per-server phase bar.
const timelineBarWidth = 30

// writeTimeline renders the cluster manifest's per-server section as a
// text timeline: one bar per server scaled to the slowest scan span,
// annotated with the per-server columns, and the straggler attribution
// line. Rendered only when a cluster manifest exists (a run with a scan
// stage) — hand-built results keep their report unchanged.
func writeTimeline(w io.Writer, m *ClusterManifest) {
	if m == nil || len(m.Servers) == 0 {
		return
	}
	fmt.Fprintln(w, "per-server scan timeline:")
	wide := 0
	for _, s := range m.Servers {
		if len(s.Server) > wide {
			wide = len(s.Server)
		}
	}
	for _, s := range m.Servers {
		if s.Missing {
			fmt.Fprintf(w, "  %-*s  [telemetry missing — stream lost]\n", wide, s.Server)
			continue
		}
		cells := 0
		if m.Skew.SlowestSeconds > 0 {
			cells = int(s.ScanSeconds / m.Skew.SlowestSeconds * timelineBarWidth)
		}
		if cells < 1 {
			cells = 1
		}
		bar := strings.Repeat("█", cells) + strings.Repeat("·", timelineBarWidth-cells)
		fmt.Fprintf(w, "  %-*s  %s %8.3fs  %d inodes", wide, s.Server, bar, s.ScanSeconds, s.InodesScanned)
		if s.Frames > 0 {
			fmt.Fprintf(w, ", %d frames, %d B", s.Frames, s.Bytes)
		}
		if s.DialRetries > 0 {
			fmt.Fprintf(w, ", %d redials", s.DialRetries)
		}
		if s.StallSeconds > 0 {
			fmt.Fprintf(w, ", %.3fs stalled", s.StallSeconds)
		}
		fmt.Fprintln(w)
	}
	if sk := m.Skew; sk.Straggler != "" {
		fmt.Fprintf(w, "  straggler: %s at %.3fs (%.2fx the %.3fs mean; fastest %s at %.3fs)\n",
			sk.Straggler, sk.SlowestSeconds, sk.StragglerRatio, sk.MeanSeconds,
			sk.Fastest, sk.FastestSeconds)
	}
	if len(m.Skew.MissingTelemetry) > 0 {
		fmt.Fprintf(w, "  missing telemetry: %s\n", strings.Join(m.Skew.MissingTelemetry, " "))
	}
}

// WriteReport renders a human-readable account of a checker run: the
// graph summary, the paper's stage timings, and every finding with its
// recommended repairs. Verbose additionally dumps the rank scores of
// the suspect vertices (the paper's Fig. 7 "example plot" data).
func (r *Result) WriteReport(w io.Writer, verbose bool) error {
	st := r.Stats
	if _, err := fmt.Fprintf(w,
		"metadata graph: %d vertices, %d edges (%d paired, %d unpaired), %d phantom FIDs\n",
		st.Vertices, st.Edges, st.PairedEdges, st.UnpairedEdges,
		len(r.Unified.Phantoms())); err != nil {
		return err
	}
	fmt.Fprintf(w, "timing: T_scan=%.3fs  T_graph=%.3fs  T_FR=%.3fs  total=%.3fs\n",
		r.TScan.Seconds(), r.TGraph.Seconds(), r.TRank.Seconds(), r.Total().Seconds())
	fmt.Fprintf(w, "rank: %d iterations, converged=%v\n", r.Rank.Iterations, r.Rank.Converged)

	if r.Coverage.Degraded() {
		fmt.Fprintf(w, "coverage: DEGRADED — %d of %d server(s) merged; missing:",
			r.Coverage.Complete(), r.Coverage.Total)
		for _, s := range r.Coverage.Missing {
			fmt.Fprintf(w, " %s", s)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w, "  findings below cover surviving servers only; cross-server")
		fmt.Fprintln(w, "  relations into missing servers will appear unpaired")
		for _, e := range r.Net.StreamErrors {
			fmt.Fprintf(w, "  stream error: %s\n", e)
		}
	} else if r.Coverage.Total > 0 {
		fmt.Fprintf(w, "coverage: complete — all %d server(s) merged\n", r.Coverage.Total)
	}
	if r.Net.Frames > 0 || r.Net.DialRetries > 0 {
		fmt.Fprintf(w, "transfer: %d frames, %d bytes, %d dial retries\n",
			r.Net.Frames, r.Net.Bytes, r.Net.DialRetries)
	}
	if r.Scan != (ScanStats{}) {
		fmt.Fprintf(w, "scan: %d inodes, %d dirents, %d edges emitted, %d chunks, %d parse issues\n",
			r.Scan.InodesScanned, r.Scan.DirentsRead, r.Scan.EdgesEmitted,
			r.Scan.Chunks, r.Scan.ParseIssues)
	}
	writeTimeline(w, r.Cluster)

	if len(r.Findings) == 0 {
		fmt.Fprintln(w, "verdict: file system is consistent — no findings")
		return nil
	}
	fmt.Fprintf(w, "verdict: %d finding(s)\n", len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(w, "  [%v] %v", f.Kind, f.FID)
		if f.Detail != "" {
			fmt.Fprintf(w, "  %s", f.Detail)
		}
		fmt.Fprintln(w)
		for _, a := range f.Repairs {
			fmt.Fprintf(w, "      repair: %v\n", a)
		}
	}
	if verbose {
		fmt.Fprintln(w, "suspect scores (mass-N scale, healthy ≈ 1.0):")
		for _, s := range r.Report.Suspects {
			fmt.Fprintf(w, "  %v %v: %.4f  (peers: %d)\n",
				r.Unified.FID(s.Vertex), s.Field, s.Score, len(s.Peers))
		}
		for _, rel := range r.Report.Ambiguous {
			fmt.Fprintf(w, "  ambiguous: %v -> %v (%v)\n",
				r.Unified.FID(rel.From), r.Unified.FID(rel.To), rel.Kind)
		}
	}
	return nil
}
