package checker

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"faultyrank/internal/core"
	"faultyrank/internal/telemetry"
)

// TestMetricsEndpointWithTCPRun runs the TCP pipeline against a shared
// registry exposed over HTTP — the cmd/faultyrank -metrics-addr shape —
// and checks the exposition carries both scanner- and wire-side series.
func TestMetricsEndpointWithTCPRun(t *testing.T) {
	reg := telemetry.NewRegistry()
	addr, stop, err := telemetry.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	opt := DefaultOptions()
	opt.UseTCP = true
	opt.Metrics = reg
	c := fig7Cluster(t)
	res, err := Run(ClusterImages(c), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Frames == 0 {
		t.Fatal("TCP run decoded no frames")
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{
		"scanner_inodes_scanned_total",
		"wire_frames_sent_total",
		"wire_frames_received_total",
		"agg_chunks_total",
	} {
		if !strings.Contains(string(body), series) {
			t.Errorf("/metrics lacks %s:\n%s", series, body)
		}
	}
}

// TestSharedRegistryPerRunDeltas runs twice against one registry: the
// registry's counters accumulate across runs, but NetStats and ScanStats
// must stay per-run (delta-based), matching each other exactly.
func TestSharedRegistryPerRunDeltas(t *testing.T) {
	reg := telemetry.NewRegistry()
	opt := DefaultOptions()
	opt.UseTCP = true
	opt.Metrics = reg

	c := fig7Cluster(t)
	first, err := Run(ClusterImages(c), opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ClusterImages(c), opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Scan != second.Scan {
		t.Errorf("per-run scan stats diverge on identical runs: %+v vs %+v", first.Scan, second.Scan)
	}
	if first.Net.Frames != second.Net.Frames || first.Net.Bytes != second.Net.Bytes {
		t.Errorf("per-run net stats diverge: %+v vs %+v", first.Net, second.Net)
	}
	// The shared registry, by contrast, holds both runs' worth.
	total := reg.Counter("scanner_inodes_scanned_total").Value()
	if want := first.Scan.InodesScanned + second.Scan.InodesScanned; total != want {
		t.Errorf("registry total = %d, want %d (sum of both runs)", total, want)
	}
}

// TestManifestShape checks the run manifest carries the documented
// sections with live values.
func TestManifestShape(t *testing.T) {
	c := fig7Cluster(t)
	opt := DefaultOptions()
	opt.Core.ConvergenceTrace = true
	res, err := Run(ClusterImages(c), opt)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Manifest(opt)
	if m.Schema != telemetry.ManifestSchema || m.Tool != "faultyrank" {
		t.Errorf("manifest identity wrong: %q %q", m.Schema, m.Tool)
	}
	if m.Phases == nil || m.Phases.Find("scan") == nil {
		t.Error("manifest lacks the phase tree")
	}
	if m.Metrics.Counter("scanner_inodes_scanned_total") == 0 {
		t.Error("manifest metrics snapshot empty")
	}
	conv, ok := m.Results["convergence"].(map[string]any)
	if !ok {
		t.Fatalf("manifest lacks convergence results: %+v", m.Results)
	}
	trace, ok := conv["trace"].([]core.IterStats)
	if !ok || len(trace) == 0 {
		t.Errorf("convergence trace missing: %+v", conv["trace"])
	}
	if conv["iterations"].(int) != res.Rank.Iterations {
		t.Errorf("manifest iterations = %v, want %d", conv["iterations"], res.Rank.Iterations)
	}
}
