package checker

import (
	"faultyrank/internal/telemetry"
)

// Manifest assembles the machine-readable record of this run: the
// options that shaped it, the phase-timing tree, the full metrics
// snapshot, and the headline results (coverage, findings, convergence).
// The caller serialises it with telemetry.WriteJSON (cmd/faultyrank
// -run-manifest). opt should be the Options the run actually used.
func (r *Result) Manifest(opt Options) *telemetry.RunManifest {
	m := telemetry.NewRunManifest("faultyrank")
	m.Options = map[string]any{
		"workers":          opt.Workers,
		"use_tcp":          opt.UseTCP,
		"chunk_size":       opt.ChunkSize,
		"split_properties": opt.SplitProperties,
		"allow_degraded":   opt.AllowDegraded,
		"scan_timeout_ns":  opt.ScanTimeout.Nanoseconds(),
		"op_timeout_ns":    opt.OpTimeout.Nanoseconds(),
		"epsilon":          opt.Core.Epsilon,
		"max_iterations":   opt.Core.MaxIterations,
		"unpaired_weight":  opt.Core.UnpairedWeight,
		"sink_policy":      opt.Core.SinkPolicy.String(),
		"smoothing":        opt.Core.Smoothing,
		"threshold":        opt.Core.Threshold,
	}
	m.Phases = r.Phases
	m.Metrics = r.Metrics

	byKind := make(map[string]int)
	for _, f := range r.Findings {
		byKind[f.Kind.String()]++
	}
	results := map[string]any{
		"coverage": map[string]any{
			"total":    r.Coverage.Total,
			"complete": r.Coverage.Complete(),
			"missing":  r.Coverage.Missing,
			"degraded": r.Coverage.Degraded(),
		},
		"graph": map[string]any{
			"vertices":       r.Stats.Vertices,
			"edges":          r.Stats.Edges,
			"paired_edges":   r.Stats.PairedEdges,
			"unpaired_edges": r.Stats.UnpairedEdges,
		},
		"findings_total":   len(r.Findings),
		"findings_by_kind": byKind,
		"timings_ns": map[string]int64{
			"scan":  r.TScan.Nanoseconds(),
			"graph": r.TGraph.Nanoseconds(),
			"rank":  r.TRank.Nanoseconds(),
			"total": r.Total().Nanoseconds(),
		},
		"scan": map[string]int64{
			"inodes_scanned": r.Scan.InodesScanned,
			"dirents_read":   r.Scan.DirentsRead,
			"edges_emitted":  r.Scan.EdgesEmitted,
			"parse_issues":   r.Scan.ParseIssues,
			"chunks":         r.Scan.Chunks,
		},
		"net": map[string]any{
			"frames":        r.Net.Frames,
			"bytes":         r.Net.Bytes,
			"dial_retries":  r.Net.DialRetries,
			"stream_errors": r.Net.StreamErrors,
		},
	}
	if r.Cluster != nil {
		results["cluster"] = r.Cluster
	}
	if r.Rank != nil {
		conv := map[string]any{
			"iterations": r.Rank.Iterations,
			"converged":  r.Rank.Converged,
		}
		if len(r.Rank.Trace) > 0 {
			conv["trace"] = r.Rank.Trace
		}
		results["convergence"] = conv
	}
	m.Results = results
	return m
}
