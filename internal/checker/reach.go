package checker

import (
	"fmt"
	"sort"
	"strings"

	"faultyrank/internal/agg"
	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// The paper concedes (§VI) that FaultyRank cannot detect "multiple
// paired metadata that are all wrong but point to each other
// coherently": a subtree whose internal DIRENT↔LinkEA relations are
// perfectly paired, yet which no path from the root reaches — for
// example two directories corrupted into claiming each other as
// parent/child, severed from the tree. Pairing sees nothing wrong.
//
// This file extends the checker past that limitation with a namespace
// reachability pass: a BFS from the root over DIRENT edges. Present
// namespace objects (files/directories on the MDT) that the walk never
// reaches form detached islands; each island is reported and repaired by
// re-rooting it under /lost+found (breaking one internal claim edge so
// the re-rooted vertex has a single parent again).

// reachability computes which vertices a DIRENT-only BFS from the root
// reaches.
func reachability(u *agg_, b *graph.Bidirected) []bool {
	reached := make([]bool, u.N())
	rootGID, ok := u.GID(lustre.RootFID)
	if !ok {
		return reached // no root: everything is unreachable, pass 0 reports it
	}
	queue := []uint32{rootGID}
	reached[rootGID] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		s, e := b.Fwd.EdgeRange(v)
		for i := s; i < e; i++ {
			if b.Fwd.Kinds != nil && b.Fwd.Kinds[i] != graph.KindDirent {
				continue
			}
			t := b.Fwd.Targets[i]
			if !reached[t] {
				reached[t] = true
				queue = append(queue, t)
			}
		}
	}
	return reached
}

// agg_ abbreviates the aggregator's unified-graph type locally.
type agg_ = agg.Unified

// classifyDetachedIslands appends findings for namespace objects that
// are present and internally consistent but unreachable from the root.
// Vertices already implicated by pairing-based findings are skipped —
// their unpaired edges explain the disconnection and carry better
// repairs (e.g. rebuilding a destroyed parent directory).
func classifyDetachedIslands(res *Result, findings []Finding) []Finding {
	u := res.Unified
	b := res.Graph
	reached := reachability(u, b)

	implicated := make(map[lustre.FID]bool)
	for _, f := range findings {
		implicated[f.FID] = true
		for _, r := range f.Repairs {
			implicated[r.TargetFID] = true
			implicated[r.SourceFID] = true
		}
	}

	// Collect unreachable, present namespace vertices (dirs/files that
	// live on an MDT image).
	var detached []uint32
	for g := 0; g < u.N(); g++ {
		gi := uint32(g)
		if reached[gi] || !u.Present[gi] {
			continue
		}
		if u.Types[gi] != ldiskfs.TypeDir && u.Types[gi] != ldiskfs.TypeFile {
			continue
		}
		if len(u.Claims[gi]) == 0 || !strings.HasPrefix(u.Claims[gi][0].Server, "mdt") {
			continue
		}
		if implicated[u.FID(gi)] || b.HasUnpairedEdge(gi) {
			continue // pairing-based findings already own this vertex
		}
		detached = append(detached, gi)
	}
	if len(detached) == 0 {
		return findings
	}

	// Group the detached vertices into islands (weak connectivity over
	// namespace edges restricted to the detached set) and report one
	// finding per island, anchored at its smallest-FID directory.
	islands := groupIslands(b, detached)
	for _, island := range islands {
		anchor := islandAnchor(u, island)
		f := Finding{
			Kind: DetachedNamespace, FID: u.FID(anchor),
			Detail: fmt.Sprintf(
				"island of %d namespace object(s) unreachable from the root despite consistent pairing",
				len(island)),
			Repairs: []RepairAction{{
				Op: core.RepairQuarantine, TargetFID: u.FID(anchor),
				Kind: graph.KindDirent,
			}},
		}
		// Breaking the cycle: if an island member claims the anchor via
		// DIRENT, that internal claim must be dropped when the anchor is
		// re-rooted under /lost+found.
		s, e := b.Rev.EdgeRange(anchor)
		for i := s; i < e; i++ {
			if b.Rev.Kinds != nil && b.Rev.Kinds[i] != graph.KindDirent {
				continue
			}
			src := b.Rev.Targets[i]
			f.Repairs = append(f.Repairs, RepairAction{
				Op: core.RepairDropPointer, TargetFID: u.FID(src),
				SourceFID: u.FID(anchor), Kind: graph.KindDirent,
			})
		}
		findings = append(findings, f)
	}
	sortFindings(findings)
	return findings
}

// groupIslands partitions detached vertices into weakly-connected
// groups over namespace edges.
func groupIslands(b *graph.Bidirected, detached []uint32) [][]uint32 {
	inSet := make(map[uint32]bool, len(detached))
	for _, v := range detached {
		inSet[v] = true
	}
	seen := make(map[uint32]bool, len(detached))
	var islands [][]uint32
	for _, start := range detached {
		if seen[start] {
			continue
		}
		var island []uint32
		queue := []uint32{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			island = append(island, v)
			visit := func(t uint32) {
				if inSet[t] && !seen[t] {
					seen[t] = true
					queue = append(queue, t)
				}
			}
			s, e := b.Fwd.EdgeRange(v)
			for i := s; i < e; i++ {
				visit(b.Fwd.Targets[i])
			}
			s, e = b.Rev.EdgeRange(v)
			for i := s; i < e; i++ {
				visit(b.Rev.Targets[i])
			}
		}
		sort.Slice(island, func(i, j int) bool { return island[i] < island[j] })
		islands = append(islands, island)
	}
	sort.Slice(islands, func(i, j int) bool { return islands[i][0] < islands[j][0] })
	return islands
}

// islandAnchor picks the vertex to re-root: the smallest-FID directory,
// falling back to the smallest-FID member.
func islandAnchor(u *agg_, island []uint32) uint32 {
	best := island[0]
	bestIsDir := u.Types[best] == ldiskfs.TypeDir
	for _, v := range island[1:] {
		isDir := u.Types[v] == ldiskfs.TypeDir
		switch {
		case isDir && !bestIsDir:
			best, bestIsDir = v, true
		case isDir == bestIsDir && u.FID(v).Less(u.FID(best)):
			best = v
		}
	}
	return best
}
