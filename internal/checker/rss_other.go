//go:build !linux

package checker

import "os/exec"

// peakRSS is unavailable off Linux (rusage layouts differ per OS); the
// manifest records 0 rather than guessing units.
func peakRSS(cmd *exec.Cmd) int64 { return 0 }
