package checker

import (
	"sort"

	"faultyrank/internal/telemetry"
	"faultyrank/internal/wire"
)

// ClusterManifestSchema identifies the cluster-manifest JSON layout.
const ClusterManifestSchema = "faultyrank/cluster-manifest/v1"

// ServerTelemetry is one server's section of the cluster manifest: the
// telemetry its scanner shipped home in the wire trailer (or produced
// locally on the in-process path), plus the headline columns the skew
// analysis and the report timeline derive from it.
type ServerTelemetry struct {
	Server string `json:"server"`
	// Missing marks a server whose telemetry never arrived — its
	// scanner crashed, stalled, or lost its stream before the trailer
	// shipped. The section then carries no data; by design this is an
	// entry in the manifest, never a failed run.
	Missing bool `json:"missing,omitempty"`

	// ScanSeconds is the server's scan-span duration — the per-server
	// term whose maximum sets the stage's wall clock.
	ScanSeconds float64 `json:"scan_seconds,omitempty"`
	// Frames and Bytes count the chunk frames this server shipped
	// (zero on the in-process path, which moves no frames).
	Frames int64 `json:"frames,omitempty"`
	Bytes  int64 `json:"bytes,omitempty"`
	// DialRetries counts this server's redials toward the collector.
	DialRetries int64 `json:"dial_retries,omitempty"`
	// StallSeconds is the total time this server spent blocked in frame
	// writes (the wire_frame_write_seconds sum) — backpressure from the
	// aggregator or the network, the usual straggler signature.
	StallSeconds float64 `json:"stall_seconds,omitempty"`
	// InodesScanned is the server's own sweep tally.
	InodesScanned int64 `json:"inodes_scanned,omitempty"`

	// Snapshot is the full per-server instrument snapshot, gauges
	// labeled with the server id; Span is its scan-phase tree.
	Snapshot telemetry.Snapshot  `json:"snapshot,omitempty"`
	Span     *telemetry.SpanNode `json:"span,omitempty"`
}

// ClusterSkew is the straggler analysis over the servers that shipped
// telemetry: which server set the wall clock, which finished first, and
// how uneven the stage was.
type ClusterSkew struct {
	// Straggler names the slowest scan span (ties broken toward the
	// earlier server in canonical order, keeping the report
	// deterministic).
	Straggler string `json:"straggler,omitempty"`
	// Fastest names the quickest scan span.
	Fastest        string  `json:"fastest,omitempty"`
	SlowestSeconds float64 `json:"slowest_seconds,omitempty"`
	FastestSeconds float64 `json:"fastest_seconds,omitempty"`
	MeanSeconds    float64 `json:"mean_seconds,omitempty"`
	// StragglerRatio is slowest/mean — 1.0 for a perfectly even stage;
	// the paper's parallel-scan speedup erodes as this grows.
	StragglerRatio float64 `json:"straggler_ratio,omitempty"`
	// MissingTelemetry lists the servers excluded from the analysis
	// because their telemetry never arrived.
	MissingTelemetry []string `json:"missing_telemetry,omitempty"`
}

// ClusterManifest is the cluster-scoped view of one run: a section per
// server, the merged cluster totals (counters summed, gauges labeled
// max, histograms bucket-wise), and the skew report.
type ClusterManifest struct {
	Schema  string            `json:"schema"`
	Servers []ServerTelemetry `json:"servers"`
	// Cluster is the merge of every present server snapshot — the
	// cluster-wide totals, attribution labels on the gauge maxima.
	Cluster telemetry.Snapshot `json:"cluster"`
	Skew    ClusterSkew        `json:"skew"`
	// Rank is the partitioned-rank section (sharding, per-superstep
	// exchange stats, degraded fallback); nil when the single-process
	// kernel ran.
	Rank *RankManifest `json:"rank,omitempty"`
}

// Server returns the named section (nil when absent).
func (m *ClusterManifest) Server(label string) *ServerTelemetry {
	if m == nil {
		return nil
	}
	for i := range m.Servers {
		if m.Servers[i].Server == label {
			return &m.Servers[i]
		}
	}
	return nil
}

// BuildClusterManifest assembles the cluster manifest from the run's
// server labels and whatever telemetry shipments arrived. Every label
// gets a section — shipped ones carry their snapshot and derived
// columns, the rest are marked Missing — so a degraded run yields a
// deterministic partial manifest instead of an error. Sections follow
// the given label order (the run's canonical MDT-first order).
func BuildClusterManifest(labels []string, ships []*wire.Telemetry) *ClusterManifest {
	byServer := make(map[string]*wire.Telemetry, len(ships))
	for _, t := range ships {
		if t != nil && t.Server != "" {
			byServer[t.Server] = t
		}
	}
	m := &ClusterManifest{Schema: ClusterManifestSchema}
	var present []telemetry.Snapshot
	for _, label := range labels {
		t := byServer[label]
		if t == nil {
			m.Servers = append(m.Servers, ServerTelemetry{Server: label, Missing: true})
			m.Skew.MissingTelemetry = append(m.Skew.MissingTelemetry, label)
			continue
		}
		sec := ServerTelemetry{
			Server:        label,
			Frames:        t.Snapshot.Counter("wire_frames_sent_total"),
			Bytes:         t.Snapshot.Counter("wire_bytes_sent_total"),
			DialRetries:   t.Snapshot.Counter("wire_dial_retries_total"),
			InodesScanned: t.Snapshot.Counter("scanner_inodes_scanned_total"),
			Snapshot:      t.Snapshot,
			Span:          t.Span,
		}
		if h, ok := t.Snapshot.Histogram("wire_frame_write_seconds"); ok {
			sec.StallSeconds = h.Sum
		}
		if t.Span != nil {
			sec.ScanSeconds = t.Span.Seconds
		}
		m.Servers = append(m.Servers, sec)
		present = append(present, t.Snapshot)
	}
	m.Cluster = telemetry.MergeSnapshots(present...)

	var total float64
	n := 0
	for i := range m.Servers {
		s := &m.Servers[i]
		if s.Missing {
			continue
		}
		total += s.ScanSeconds
		n++
		if m.Skew.Straggler == "" || s.ScanSeconds > m.Skew.SlowestSeconds {
			m.Skew.Straggler, m.Skew.SlowestSeconds = s.Server, s.ScanSeconds
		}
		if m.Skew.Fastest == "" || s.ScanSeconds < m.Skew.FastestSeconds {
			m.Skew.Fastest, m.Skew.FastestSeconds = s.Server, s.ScanSeconds
		}
	}
	if n > 0 {
		m.Skew.MeanSeconds = total / float64(n)
		if m.Skew.MeanSeconds > 0 {
			m.Skew.StragglerRatio = m.Skew.SlowestSeconds / m.Skew.MeanSeconds
		}
	}
	sort.Strings(m.Skew.MissingTelemetry)
	return m
}
