package checker

import (
	"testing"

	"faultyrank/internal/inject"
)

// TestDetachedCycleDetected: the coherent-corruption case the paper
// declares undetectable (§VI) — a subtree severed from the root whose
// members all pair perfectly — must be found by the reachability pass.
func TestDetachedCycleDetected(t *testing.T) {
	c := fig7Cluster(t)
	inj, err := inject.Inject(c, inject.DetachedCycle, fig7Target)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every relation pairs: rank-based detection must stay silent...
	if res.Stats.UnpairedEdges != 0 {
		t.Fatalf("cycle injection left %d unpaired edges — not coherent", res.Stats.UnpairedEdges)
	}
	if len(res.Report.Suspects) != 0 {
		t.Errorf("rank suspects on a coherent graph: %+v", res.Report.Suspects)
	}
	// ...and the reachability pass must raise exactly one island.
	islands := res.FindingsOfKind(DetachedNamespace)
	if len(islands) != 1 {
		t.Fatalf("detached islands = %d; findings: %v", len(islands), describe(res))
	}
	if islands[0].FID != inj.VictimFID {
		t.Errorf("island anchored at %v, want %v", islands[0].FID, inj.VictimFID)
	}
	if len(islands[0].Repairs) < 2 { // re-root + drop the internal claim
		t.Errorf("island repairs incomplete: %+v", islands[0].Repairs)
	}
}

// TestCleanClusterHasNoIslands guards against reachability false
// positives, including on clusters with lost+found content.
func TestCleanClusterHasNoIslands(t *testing.T) {
	c := fig7Cluster(t)
	res, err := RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.FindingsOfKind(DetachedNamespace)); n != 0 {
		t.Fatalf("islands on a clean cluster: %d", n)
	}
}

// TestDetachedIslandSkipsPairingFindings: a subtree severed the *loud*
// way (parent dirent gone, LinkEA stale) is owned by pairing-based
// findings; the reachability pass must not double-report it.
func TestDetachedIslandSkipsPairingFindings(t *testing.T) {
	c := fig7Cluster(t)
	// Sever /proj1 by removing its dirent only: /proj1's LinkEA is now
	// unanswered, which the pairing passes attribute.
	dir, err := c.Stat("/proj1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MDT.Img.RemoveDirent(c.RootIno(), "proj1"); err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.FindingsOfKind(DetachedNamespace) {
		if f.FID == dir.FID {
			t.Fatalf("island double-reports the unpaired severed dir: %v", describe(res))
		}
	}
	if len(res.Findings) == 0 {
		t.Fatal("loud severing not reported at all")
	}
}
