package checker

import (
	"context"
	"fmt"
	"sync"
	"time"

	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/inject"
	"faultyrank/internal/par"
	"faultyrank/internal/telemetry"
	"faultyrank/internal/wire"
)

// Partitioned rank orchestration: when Options.RankWorkers > 1, the
// checker shards the CSR by the aggregator's FID hash (the same hash
// that sharded the interner, so the owners map is a pure function of
// the FID table), spawns one rank worker per partition, and drives the
// BSP superstep protocol as coordinator. The decomposition is exact, so
// the only observable differences from the single-process kernel are
// the per-partition spans, the exchange counters and the rank manifest.

// RankManifest is the rank section of the cluster manifest: how the
// graph was sharded, what each superstep exchanged, and — in degraded
// runs — which partition was lost and how the run completed anyway.
type RankManifest struct {
	// Partitions is the rank worker count (Options.RankWorkers).
	Partitions int `json:"partitions"`
	// Transport is "in-process" or "tcp" — which link flavour carried
	// the superstep frames.
	Transport string `json:"transport"`
	// Supersteps is the iteration count the exchange drove.
	Supersteps int `json:"supersteps"`
	// UpBytes/DownBytes are run totals of canonical encoded frame sizes
	// (identical on both transports by construction).
	UpBytes   int64 `json:"up_bytes"`
	DownBytes int64 `json:"down_bytes"`
	// CutEdges counts row entries whose column lives on another
	// partition — the ghost traffic driver.
	CutEdges int64 `json:"cut_edges"`
	// Remote records that the workers were separate frrankd processes
	// (Options.RankRemote / RankSpawn) rather than goroutines of the
	// checker.
	Remote bool `json:"remote,omitempty"`
	// WorkerRSS, on spawned runs, is each partition's peak resident set
	// in bytes (wait4 rusage) — the observable the ROADMAP item-1 exit
	// criterion (per-worker RSS near 1/K) is judged on.
	WorkerRSS []int64 `json:"worker_rss,omitempty"`
	// Fallback, when set, records the degraded path: a partition's link
	// broke mid-exchange, and the ranks were recomputed on the
	// single-process kernel (the coordinator holds the whole graph). It
	// names the lost partition; Parts/Steps then describe the aborted
	// exchange.
	Fallback string `json:"fallback,omitempty"`
	// Parts describes each partition's share of the graph.
	Parts []core.PartSummary `json:"parts,omitempty"`
	// Steps carries the per-superstep exchange stats.
	Steps []core.SuperstepStats `json:"steps,omitempty"`
}

// runRank executes the rank iteration: the legacy single-process kernel
// for RankWorkers <= 1 (the degenerate case every pre-existing caller
// stays on), the partitioned BSP execution otherwise.
func runRank(ctx context.Context, res *Result, opt Options, obs *runObs) error {
	k := opt.RankWorkers
	if k <= 1 {
		opt.Core.OnIteration = journalIterations(obs, "iteration", opt.Core.OnIteration)
		if opt.RankIncremental {
			res.Rank = core.RunIncremental(res.Graph, opt.Core, opt.RankFrontier)
		} else {
			res.Rank = core.Run(res.Graph, opt.Core)
		}
		if fs := res.Rank.Frontier; fs != nil {
			obs.journal.Record("rank", "frontier",
				"seeds", fmt.Sprintf("%d", fs.Seeds),
				"touched", fmt.Sprintf("%d", fs.Touched),
				"full_sweeps", fmt.Sprintf("%d", fs.FullSweeps))
			if fs.Saturated {
				obs.journal.Record("rank", "frontier-saturated")
			}
		}
		return nil
	}

	opt.Core.OnIteration = journalIterations(obs, "superstep", opt.Core.OnIteration)
	_, partSpan := telemetry.StartSpan(ctx, "partition")
	owners := res.Unified.PartitionOwners(k)
	plan := graph.PartitionPlan(res.Graph, owners, k, opt.Workers)
	partSpan.End()

	man := &RankManifest{
		Partitions: k,
		Transport:  "in-process",
		CutEdges:   plan.CutEdges(),
	}
	// Remote workers and explicit bind addresses only exist over TCP, so
	// either forces the socket path even when the scan ran in process.
	tcpRank := opt.UseTCP || opt.rankRemote() || opt.RankListen != ""
	if tcpRank {
		man.Transport = "tcp"
	}

	var (
		rank *core.Result
		rep  *core.ExchangeReport
		err  error
	)
	if tcpRank {
		rank, rep, err = rankOverTCP(ctx, plan, opt, obs, man)
	} else {
		rank, rep, err = rankInProcess(ctx, plan, opt)
	}
	if rep != nil {
		man.Supersteps = len(rep.Supersteps)
		man.UpBytes = rep.UpBytes
		man.DownBytes = rep.DownBytes
		man.Parts = rep.Partitions
		man.Steps = rep.Supersteps
		for _, p := range rep.Partitions {
			obs.journal.Record("rank", "partition",
				"id", fmt.Sprintf("%d", p.Part),
				"locals", fmt.Sprintf("%d", p.Locals),
				"ghosts", fmt.Sprintf("%d", p.Ghosts))
		}
	}
	if err != nil {
		if !opt.AllowDegraded {
			return err
		}
		// Degraded completion: unlike a lost scanner stream, a lost rank
		// worker costs no data — the coordinator holds the whole unified
		// graph — so the run falls back to the single-process kernel and
		// the manifest names what died.
		obs.journal.Record("rank", "rank-degraded", "err", err.Error())
		man.Fallback = fmt.Sprintf("%v; re-ranked on the single-process kernel", err)
		rank = core.Run(res.Graph, opt.Core)
	}
	res.Rank = rank
	obs.rankSupersteps.Add(int64(man.Supersteps))
	obs.rankBytes.Add(man.UpBytes + man.DownBytes)
	obs.rankParts.Set(int64(k))
	res.RankExec = man
	if res.Cluster != nil {
		res.Cluster.Rank = man
	}
	return nil
}

// journalIterations chains a rank-progress journal event (kind
// "iteration" for the single-process kernel, "superstep" for the
// coordinated exchange) onto any caller-provided OnIteration hook.
func journalIterations(obs *runObs, kind string, prev func(int, float64)) func(int, float64) {
	return func(iter int, maxDelta float64) {
		obs.journal.Record("rank", kind,
			"iter", fmt.Sprintf("%d", iter),
			"max_delta", fmt.Sprintf("%.4g", maxDelta))
		if prev != nil {
			prev(iter, maxDelta)
		}
	}
}

// partOptions divides the run's worker budget across partitions
// (minimum 1 each), mirroring core.RunPartitioned's split.
func partOptions(opt Options, k int) core.Options {
	wopt := opt.Core
	w := wopt.Workers
	if w <= 0 {
		w = opt.Workers
	}
	if w <= 0 {
		w = par.DefaultWorkers()
	}
	wopt.Workers = w / k
	if wopt.Workers < 1 {
		wopt.Workers = 1
	}
	return wopt
}

// workerLoop is one rank worker's lifetime under its own telemetry
// span, with any injected fault interposed on the link.
func workerLoop(ctx context.Context, plan *graph.Plan, p int, wopt core.Options, opt Options, link core.Link) error {
	_, sp := telemetry.StartSpan(ctx, fmt.Sprintf("rank:p%d", p))
	defer sp.End()
	if f := opt.RankFaults[p]; f != nil {
		link = f.WrapLink(link)
	}
	return core.RunPartition(core.NewPartState(plan.Parts[p], wopt), link)
}

// rankInProcess runs the workers as goroutines on channel link pairs —
// same protocol, same frames, no sockets.
func rankInProcess(ctx context.Context, plan *graph.Plan, opt Options) (*core.Result, *core.ExchangeReport, error) {
	wopt := partOptions(opt, plan.K)
	links := make([]core.Link, plan.K)
	workers := make([]*core.LocalLink, plan.K)
	var wg sync.WaitGroup
	for p := 0; p < plan.K; p++ {
		coord, worker := core.LinkPair()
		links[p], workers[p] = coord, worker
		wg.Add(1)
		go func(p int, worker *core.LocalLink) {
			defer wg.Done()
			// A worker death tears its pair down, so the coordinator's
			// next wait on this partition returns a named PartError.
			if err := workerLoop(ctx, plan, p, wopt, opt, worker); err != nil {
				worker.Close()
			}
		}(p, worker)
	}
	rank, rep, err := core.Coordinate(plan, links, opt.Core)
	for _, w := range workers {
		w.Close()
	}
	wg.Wait()
	return rank, rep, err
}

// rankRemote reports whether the rank workers are separate processes:
// externally launched (RankRemote) or exec'd by the checker (RankSpawn).
func (opt Options) rankRemote() bool {
	return opt.RankRemote || opt.RankSpawn != ""
}

// handshakeTimeout bounds the wait for remote workers to dial in. A
// worker that never arrives must become an error, not a hang — even
// when no OpTimeout was configured.
func (opt Options) handshakeTimeout() time.Duration {
	if opt.OpTimeout > 0 {
		return opt.OpTimeout
	}
	return 60 * time.Second
}

// rankOverTCP runs the deployment shape: an exchange (localhost by
// default, Options.RankListen to go beyond it) accepts one dialing
// worker per partition — in-process dial goroutines normally, separate
// frrankd processes with RankRemote/RankSpawn — validates each Hello
// against the plan, and ships shards to workers that arrive without
// one. A worker that crashes mid-superstep drops its connection; the
// coordinator's read fails within OpTimeout and Coordinate returns a
// PartError naming the partition — closing the exchange then releases
// the surviving workers, so nothing hangs. A worker that fails before
// the handshake (dial fault, dead process) is reported as the first
// recorded worker error, wrapped with its partition index, instead of
// vanishing behind the generic accept failure.
func rankOverTCP(ctx context.Context, plan *graph.Plan, opt Options, obs *runObs, man *RankManifest) (*core.Result, *core.ExchangeReport, error) {
	x, addr, err := wire.NewRankExchange(opt.RankListen, opt.OpTimeout)
	if err != nil {
		return nil, nil, err
	}
	defer x.Close()
	x.Observe(obs.wireM)
	man.Remote = opt.rankRemote()

	// A worker that cannot even dial would leave the accept loop waiting
	// for a connection that never comes; cancelling the handshake context
	// turns that into a prompt error instead.
	rankCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Canonical shard blobs: their fingerprints are what a valid Hello
	// must carry, and the blobs themselves are shipped to workers that
	// announce with none.
	blobs := make([][]byte, plan.K)
	sums := make([]uint64, plan.K)
	for p, sub := range plan.Parts {
		blobs[p] = graph.EncodeSubGraph(sub)
		sums[p] = graph.FingerprintShard(blobs[p])
	}
	spec := wire.WorkerSpec{
		K:     plan.K,
		Sums:  sums,
		Shard: func(p int) []byte { return blobs[p] },
	}

	// First worker error, in arrival order, wrapped with its partition —
	// the root cause to surface when the handshake fails.
	var (
		workerOnce sync.Once
		workerErr  error
	)
	recordErr := func(p int, err error) {
		workerOnce.Do(func() {
			workerErr = &core.PartError{Part: p, Err: err}
		})
	}

	wopt := partOptions(opt, plan.K)
	var wg sync.WaitGroup
	var procs *spawnedWorkers
	if opt.rankRemote() {
		spec.HandshakeTimeout = opt.handshakeTimeout()
		if opt.RankSpawn != "" {
			procs, err = spawnRankWorkers(opt, plan, addr, wopt.Workers, recordErr)
			if err != nil {
				return nil, nil, err
			}
		}
	} else {
		for p := 0; p < plan.K; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				if f := opt.RankFaults[p]; f != nil && f.FailDial {
					recordErr(p, inject.ErrRankDialFault)
					cancel()
					return
				}
				conn, err := wire.DialRankLink(rankCtx, addr, p, plan.K, sums[p], opt.Retry, opt.OpTimeout)
				if err != nil {
					recordErr(p, fmt.Errorf("dialing rank exchange: %w", err))
					cancel()
					return
				}
				defer conn.Close()
				if err := workerLoop(rankCtx, plan, p, wopt, opt, conn); err != nil {
					recordErr(p, err)
				}
			}(p)
		}
	}

	links, err := x.AcceptWorkers(rankCtx, spec)
	if err != nil {
		x.Close()
		cancel()
		wg.Wait()
		if procs != nil {
			man.WorkerRSS = procs.finish(opt.handshakeTimeout())
		}
		// The accept failure is usually downstream of a worker's own
		// death (it never dialed, or died pre-handshake); the recorded
		// worker error is the root cause and names the partition.
		if workerErr != nil {
			return nil, nil, workerErr
		}
		return nil, nil, fmt.Errorf("checker: rank worker handshake: %w", err)
	}
	rank, rep, err := core.Coordinate(plan, links, opt.Core)
	x.Close()
	wg.Wait()
	if procs != nil {
		man.WorkerRSS = procs.finish(opt.handshakeTimeout())
	}
	return rank, rep, err
}
