package checker

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"faultyrank/internal/inject"
)

// testCtx bounds a fault test by the test binary's own deadline (minus
// grace for cleanup), so a regression that hangs the network path fails
// with the checker's context error instead of a test-suite timeout.
func testCtx(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	if dl, ok := t.Deadline(); ok {
		return context.WithDeadline(context.Background(), dl.Add(-5*time.Second))
	}
	return context.WithTimeout(context.Background(), 60*time.Second)
}

// degradedOptions is the shared TCP fault-test configuration: a tight
// stage deadline (the stall scenario waits it out in full), chunks small
// enough that every stream has several (so mid-stream faults fire), and
// degraded completion on.
func degradedOptions(victim string, fault *inject.NetFault) Options {
	opt := DefaultOptions()
	opt.UseTCP = true
	opt.ChunkSize = 8
	opt.ScanTimeout = 1500 * time.Millisecond
	opt.AllowDegraded = true
	if fault != nil {
		opt.NetFaults = map[string]*inject.NetFault{victim: fault}
	}
	return opt
}

// TestTCPDegradedScenarios drives the TCP checker through every network
// fault scenario with one OST's stream injected. Each run must complete
// (never hang), name exactly the lost server in Coverage.Missing, stay
// deterministic across identical runs, and render a degraded report.
func TestTCPDegradedScenarios(t *testing.T) {
	scenarios := []inject.NetFault{
		{Scenario: inject.NetCrashBeforeConnect},
		{Scenario: inject.NetCrashMidStream, AfterChunks: 1},
		{Scenario: inject.NetStallMidStream, AfterChunks: 1},
		{Scenario: inject.NetCorruptFrame, AfterChunks: 1},
	}
	for i := range scenarios {
		fault := scenarios[i]
		t.Run(fault.Scenario.String(), func(t *testing.T) {
			t.Parallel()
			ctx, cancel := testCtx(t)
			defer cancel()

			c := fig7Cluster(t)
			images := ClusterImages(c)
			victim := images[len(images)-1].Label()

			run := func() *Result {
				res, err := RunContext(ctx, images, degradedOptions(victim, &fault))
				if err != nil {
					t.Fatalf("degraded run failed: %v", err)
				}
				return res
			}
			res := run()
			if !res.Coverage.Degraded() {
				t.Fatal("fault injected but coverage reports complete")
			}
			if len(res.Coverage.Missing) != 1 || res.Coverage.Missing[0] != victim {
				t.Fatalf("missing = %v, want [%s]", res.Coverage.Missing, victim)
			}
			if res.Coverage.Complete() != len(images)-1 {
				t.Fatalf("complete = %d, want %d", res.Coverage.Complete(), len(images)-1)
			}
			if len(res.Net.StreamErrors) == 0 {
				t.Error("no stream errors recorded for the injected fault")
			}

			// Identical degraded runs must agree exactly: graph shape,
			// coverage, and findings cannot depend on failure timing.
			res2 := run()
			if res.Stats != res2.Stats {
				t.Errorf("graph stats diverge across runs: %+v vs %+v", res.Stats, res2.Stats)
			}
			if !reflect.DeepEqual(res.Coverage, res2.Coverage) {
				t.Errorf("coverage diverges: %+v vs %+v", res.Coverage, res2.Coverage)
			}
			if len(res.Findings) != len(res2.Findings) {
				t.Fatalf("finding counts diverge: %d vs %d", len(res.Findings), len(res2.Findings))
			}
			for j := range res.Findings {
				a, b := res.Findings[j], res2.Findings[j]
				if a.Kind != b.Kind || a.FID != b.FID {
					t.Errorf("finding %d diverges: %+v vs %+v", j, a, b)
				}
			}

			var buf bytes.Buffer
			if err := res.WriteReport(&buf, false); err != nil {
				t.Fatal(err)
			}
			report := buf.String()
			if !strings.Contains(report, "DEGRADED") {
				t.Error("report does not flag degraded coverage")
			}
			if !strings.Contains(report, victim) {
				t.Errorf("report does not name the lost server %s", victim)
			}
		})
	}
}

// TestTCPStrictFaultFails: without AllowDegraded the same injected
// crash must abort the run with an error — and still not hang.
func TestTCPStrictFaultFails(t *testing.T) {
	t.Parallel()
	ctx, cancel := testCtx(t)
	defer cancel()

	c := fig7Cluster(t)
	images := ClusterImages(c)
	victim := images[len(images)-1].Label()

	opt := degradedOptions(victim, &inject.NetFault{Scenario: inject.NetCrashBeforeConnect})
	opt.AllowDegraded = false
	_, err := RunContext(ctx, images, opt)
	if err == nil {
		t.Fatal("strict run swallowed a crashed scanner")
	}
	if !errors.Is(err, inject.ErrScannerCrash) {
		t.Fatalf("error does not identify the crash: %v", err)
	}
}

// TestTCPDegradedAllLost: when every stream is lost, degraded mode must
// still refuse to report on an empty graph.
func TestTCPDegradedAllLost(t *testing.T) {
	t.Parallel()
	ctx, cancel := testCtx(t)
	defer cancel()

	c := fig7Cluster(t)
	images := ClusterImages(c)
	faults := make(map[string]*inject.NetFault, len(images))
	for _, img := range images {
		faults[img.Label()] = &inject.NetFault{Scenario: inject.NetCrashBeforeConnect}
	}
	opt := degradedOptions("", nil)
	opt.NetFaults = faults
	if _, err := RunContext(ctx, images, opt); err == nil {
		t.Fatal("run reported on a graph with zero surviving servers")
	}
}

// TestTCPCleanDegradedMatchesStrict: with no fault injected, a degraded
// run is byte-for-byte the strict run — full coverage, same graph.
func TestTCPCleanDegradedMatchesStrict(t *testing.T) {
	t.Parallel()
	ctx, cancel := testCtx(t)
	defer cancel()

	c := fig7Cluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, fig7Target); err != nil {
		t.Fatal(err)
	}
	images := ClusterImages(c)

	strict := degradedOptions("", nil)
	strict.AllowDegraded = false
	sres, err := RunContext(ctx, images, strict)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := RunContext(ctx, images, degradedOptions("", nil))
	if err != nil {
		t.Fatal(err)
	}
	if dres.Coverage.Degraded() {
		t.Fatalf("clean degraded run lost servers: %v", dres.Coverage.Missing)
	}
	if sres.Stats != dres.Stats {
		t.Errorf("graph stats diverge: %+v vs %+v", sres.Stats, dres.Stats)
	}
	if len(sres.Findings) != len(dres.Findings) {
		t.Fatalf("finding counts diverge: %d vs %d", len(sres.Findings), len(dres.Findings))
	}
}
