package checker

import (
	"fmt"

	"faultyrank/internal/agg"
	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// classify translates the rank-level detection report plus the unified
// graph's presence/claim accounting into file-system-level findings with
// concrete repair actions. Rank attribution (paper §III-F) decides most
// cases; a set of structural refinements grounds the remaining ones in
// Lustre metadata semantics — misdirected point-backs, double claims on
// consistently-owned objects, and objects whose owner lost the forward
// pointer — so every Fig. 7 scenario ends with the most promising repair.
func classify(res *Result, images map[string]*ldiskfs.Image, opt Options) []Finding {
	u := res.Unified
	b := res.Graph
	var findings []Finding

	// Phantom FIDs consumed by an identity fix or a property redirect.
	consumedPhantom := make(map[uint32]bool)
	// Relations already explained by a structural refinement.
	explained := make(map[[2]uint32]bool)

	// ---- 1. rank-based suspects --------------------------------------
	for _, s := range res.Report.Suspects {
		fid := u.FID(s.Vertex)
		if !u.Present[s.Vertex] {
			// A phantom suspect carries no repairable object itself; it
			// resolves through a present suspect's set-id or the
			// phantom pass below.
			continue
		}
		switch s.Field {
		case core.FieldProperty:
			f := Finding{
				Kind: FaultyProperty, FID: fid, Field: s.Field, Score: s.Score,
				Detail: fmt.Sprintf("property rank %.3f below threshold", s.Score),
			}
			for _, r := range res.Report.Repairs {
				if r.Target != s.Vertex || (r.Op != core.RepairSetProperty && r.Op != core.RepairDropPointer) {
					continue
				}
				f.Repairs = append(f.Repairs, RepairAction{
					Op: r.Op, TargetFID: fid, SourceFID: u.FID(r.Source), Kind: r.Kind,
				})
				explained[[2]uint32{r.Source, s.Vertex}] = true
				explained[[2]uint32{s.Vertex, r.Source}] = true
			}
			findings = append(findings, f)
		case core.FieldID:
			f := Finding{
				Kind: FaultyID, FID: fid, Field: s.Field, Score: s.Score,
				Detail: fmt.Sprintf("id rank %.3f below threshold", s.Score),
			}
			if p, ok := matchPhantomIdentity(u, b, s.Vertex); ok {
				// The mis-identified object's peers still reference its
				// old FID: restore the identity (Table I dangling /
				// mismatch, root cause "b's id is wrong").
				consumedPhantom[p] = true
				f.Repairs = append(f.Repairs, RepairAction{
					Op: core.RepairSetID, TargetFID: fid, NewID: u.FID(p),
				})
				f.Detail += fmt.Sprintf("; true identity %v", u.FID(p))
				for _, w := range b.UnpairedOut(s.Vertex) {
					explained[[2]uint32{s.Vertex, w}] = true
					explained[[2]uint32{w, s.Vertex}] = true
				}
				findings = append(findings, f)
				break
			}
			if tgt, kind, ok := ownerLostPointer(u, b, s.Vertex); ok {
				// No dangling pointer anywhere names this object, and it
				// points back at a healthy present owner: the only
				// consistent explanation is that the owner's property
				// lost the entry (Table I unreferenced, "neighbours'
				// properties are wrong"). Repair the owner.
				findings = append(findings, Finding{
					Kind: FaultyProperty, FID: u.FID(tgt), Field: core.FieldProperty,
					Score:  res.Rank.PropRank[tgt],
					Detail: fmt.Sprintf("lost its %v entry for %v", kind.Counterpart(), fid),
					Repairs: []RepairAction{{
						Op: core.RepairSetProperty, TargetFID: u.FID(tgt),
						SourceFID: fid, Kind: kind.Counterpart(),
					}},
				})
				explained[[2]uint32{s.Vertex, tgt}] = true
				break
			}
			findings = append(findings, f)
		}
	}

	// ---- 2. structural refinement of remaining unpaired relations -----
	// Walk unpaired forward property edges (LOVEA/DIRENT) whose target
	// exists: the mismatch and double-reference shapes live here.
	for vi := 0; vi < u.N(); vi++ {
		x := uint32(vi)
		if !u.Present[x] {
			continue
		}
		s, e := b.Fwd.EdgeRange(x)
		for i := s; i < e; i++ {
			if b.FwdPaired[i] == 1 {
				continue
			}
			y := b.Fwd.Targets[i]
			kind := graph.KindGeneric
			if b.Fwd.Kinds != nil {
				kind = b.Fwd.Kinds[i]
			}
			if (kind != graph.KindLOVEA && kind != graph.KindDirent) ||
				!u.Present[y] || explained[[2]uint32{x, y}] {
				continue
			}
			back := kind.Counterpart()
			// (a) Misdirected point-back: y's counterpart property names
			// a phantom that only y references — y's point-back is
			// corrupt; restore it from x (Table I mismatch, "b's
			// property is wrong").
			if p, ok := privatePhantomTarget(u, b, y, back); ok && !consumedPhantom[p] {
				consumedPhantom[p] = true
				explained[[2]uint32{x, y}] = true
				findings = append(findings, Finding{
					Kind: FaultyProperty, FID: u.FID(y), Field: core.FieldProperty,
					Score:  res.Rank.PropRank[y],
					Detail: fmt.Sprintf("%v misdirected at nonexistent %v", back, u.FID(p)),
					Repairs: []RepairAction{{
						// Drop the misdirected pointer first, then
						// rebuild it from the unanswered claimer.
						Op: core.RepairDropPointer, TargetFID: u.FID(y),
						SourceFID: u.FID(p), Kind: back,
					}, {
						Op: core.RepairSetProperty, TargetFID: u.FID(y),
						SourceFID: u.FID(x), Kind: back,
					}},
				})
				continue
			}
			// (b) Double reference: y already has a consistent owner
			// other than x, so x's pointer is bogus. If an unreferenced
			// object points at x unanswered, x most likely meant that
			// object — relink; otherwise just drop the claim.
			if hasPairedBackEdge(b, y, x, back) {
				explained[[2]uint32{x, y}] = true
				f := Finding{
					Kind: FaultyProperty, FID: u.FID(x), Field: core.FieldProperty,
					Score:  res.Rank.PropRank[x],
					Detail: fmt.Sprintf("duplicate %v claim on %v (already owned)", kind, u.FID(y)),
					Repairs: []RepairAction{{
						Op: core.RepairDropPointer, TargetFID: u.FID(x),
						SourceFID: u.FID(y), Kind: kind,
					}},
				}
				if w, ok := unansweredBackEdge(u, b, x, back); ok {
					f.Repairs = append(f.Repairs, RepairAction{
						Op: core.RepairSetProperty, TargetFID: u.FID(x),
						SourceFID: u.FID(w), Kind: kind,
					})
					f.Detail += fmt.Sprintf("; unreferenced %v is the likely intended target", u.FID(w))
					explained[[2]uint32{w, x}] = true
				}
				findings = append(findings, f)
			}
		}
	}

	// ---- 3. phantoms not explained above -------------------------------
	for _, p := range u.Phantoms() {
		if consumedPhantom[p] {
			continue
		}
		s, e := b.Rev.EdgeRange(p)
		for i := s; i < e; i++ {
			src := b.Rev.Targets[i]
			if !u.Present[src] || explained[[2]uint32{src, p}] {
				continue
			}
			if len(u.Claims[src]) > 1 {
				// The source FID is claimed by multiple inodes; the
				// duplicate-identity arbitration quarantines the bogus
				// claimants (including their stale point-backs).
				continue
			}
			kind := graph.KindGeneric
			if b.Rev.Kinds != nil {
				kind = b.Rev.Kinds[i]
			}
			switch kind {
			case graph.KindFilterFID:
				findings = append(findings, Finding{
					Kind: StaleObject, FID: u.FID(src),
					Detail: fmt.Sprintf("object's owner %v does not exist", u.FID(p)),
					Repairs: []RepairAction{{
						Op: core.RepairQuarantine, TargetFID: u.FID(src),
						SourceFID: u.FID(p), Kind: graph.KindFilterFID,
					}},
				})
			case graph.KindLinkEA:
				findings = append(findings, Finding{
					Kind: StaleObject, FID: u.FID(src),
					Detail: fmt.Sprintf("parent directory %v does not exist", u.FID(p)),
					Repairs: []RepairAction{{
						Op: core.RepairQuarantine, TargetFID: u.FID(src),
						SourceFID: u.FID(p), Kind: graph.KindLinkEA,
					}},
				})
			case graph.KindDirent, graph.KindLOVEA:
				if res.Report.Suspected(src, core.FieldProperty) {
					continue // the source's property is already being rebuilt
				}
				findings = append(findings, Finding{
					Kind: Ambiguous, FID: u.FID(src),
					Detail: fmt.Sprintf("%v pointer to nonexistent %v", kind, u.FID(p)),
					Repairs: []RepairAction{{
						Op: core.RepairDropPointer, TargetFID: u.FID(src),
						SourceFID: u.FID(p), Kind: kind,
					}},
				})
			}
		}
	}

	// ---- 4. duplicate identity claims ----------------------------------
	for _, g := range u.DuplicateClaims() {
		fid := u.FID(g)
		legit, impostors := arbitrateClaims(res, images, g)
		f := Finding{
			Kind: DuplicateIdentity, FID: fid,
			Detail: fmt.Sprintf("%d inodes claim %v", len(u.Claims[g]), fid),
		}
		for _, imp := range impostors {
			f.Repairs = append(f.Repairs, RepairAction{
				Op: core.RepairQuarantine, TargetFID: fid, Loc: imp,
			})
		}
		if legit != nil {
			f.Detail += fmt.Sprintf("; consistent claim at %s/%d", legit.Server, legit.Ino)
		}
		findings = append(findings, f)
	}

	// ---- 5. fully disconnected present objects -------------------------
	for g := 0; g < u.N(); g++ {
		gi := uint32(g)
		if !u.Present[gi] || u.FID(gi) == lustre.RootFID {
			continue
		}
		if b.InDegree(gi) == 0 && b.OutDegree(gi) == 0 {
			findings = append(findings, Finding{
				Kind: OrphanObject, FID: u.FID(gi),
				Detail: "object participates in no relation",
				Repairs: []RepairAction{{
					Op: core.RepairQuarantine, TargetFID: u.FID(gi),
				}},
			})
		}
	}

	// ---- 6. scanner-level parse damage ----------------------------------
	for _, issue := range u.Issues {
		findings = append(findings, Finding{Kind: ParseDamage, Detail: issue})
	}

	// ---- 7. remaining ambiguous relations -------------------------------
	for _, rel := range res.Report.Ambiguous {
		if !u.Present[rel.To] || explained[[2]uint32{rel.From, rel.To}] {
			continue
		}
		findings = append(findings, Finding{
			Kind: Ambiguous, FID: u.FID(rel.From),
			Detail: fmt.Sprintf("unpaired %v relation %v -> %v needs user input",
				rel.Kind, u.FID(rel.From), u.FID(rel.To)),
		})
	}

	// ---- 8. reachability: coherently detached namespace islands --------
	findings = classifyDetachedIslands(res, findings)

	// ---- 9. optional split-property pass --------------------------------
	if opt.SplitProperties {
		findings = classifySplitPlanes(res, findings, opt)
	}

	// Blast radius: every finding that names a graph vertex carries the
	// relation count of that vertex, the severity rules' size input.
	for i := range findings {
		if g, ok := u.GID(findings[i].FID); ok {
			findings[i].Blast = b.InDegree(g) + b.OutDegree(g)
		}
	}

	sortFindings(findings)
	return findings
}

// classifySplitPlanes folds in per-plane rank attribution (§VIII
// extension): faults the merged rank dilutes away — one plane corrupted
// while the other props the blended score up — surface here. Only
// findings on vertices/fields nothing else flagged are added.
func classifySplitPlanes(res *Result, findings []Finding, opt Options) []Finding {
	u := res.Unified
	sr := core.RunSplit(u.N(), u.Edges, opt.Core)
	rep := core.DetectSplit(sr, u.Present, opt.Core)

	type key struct {
		fid   lustre.FID
		field core.Field
	}
	have := make(map[key]bool)
	for _, f := range findings {
		have[key{f.FID, f.Field}] = true
	}
	added := make(map[key]*Finding)
	for _, s := range rep.Suspects {
		fid := u.FID(s.Vertex)
		k := key{fid, s.Field}
		if have[k] || added[k] != nil {
			continue
		}
		f := &Finding{
			Kind: FaultyProperty, FID: fid, Field: s.Field, Score: s.Score,
			Detail: fmt.Sprintf("%v-plane rank %.3f below threshold (split-property pass)",
				s.Class, s.Score),
		}
		if s.Field == core.FieldID {
			f.Kind = FaultyID
		}
		added[k] = f
	}
	if len(added) == 0 {
		return findings
	}
	for _, r := range rep.Repairs {
		fid := u.FID(r.Target)
		var field core.Field
		switch r.Op {
		case core.RepairSetProperty, core.RepairDropPointer:
			field = core.FieldProperty
		default:
			field = core.FieldID
		}
		f := added[key{fid, field}]
		if f == nil {
			continue
		}
		f.Repairs = append(f.Repairs, RepairAction{
			Op: r.Op, TargetFID: fid, SourceFID: u.FID(r.Source), Kind: r.Kind,
		})
	}
	for _, f := range added {
		findings = append(findings, *f)
	}
	return findings
}

// matchPhantomIdentity finds the phantom FID that is the true identity
// of a mis-identified object v: the vertices with which v has unpaired
// relations still reference the old identity, so the phantom whose
// referrers overlap v's unpaired peers is the original FID.
func matchPhantomIdentity(u *agg.Unified, b *graph.Bidirected, v uint32) (uint32, bool) {
	peers := make(map[uint32]bool)
	for _, w := range b.UnpairedOut(v) {
		peers[w] = true
	}
	for _, w := range b.UnpairedIncoming(v) {
		peers[w] = true
	}
	best, bestOverlap := uint32(0), 0
	for _, p := range u.Phantoms() {
		overlap := 0
		s, e := b.Rev.EdgeRange(p)
		for i := s; i < e; i++ {
			if peers[b.Rev.Targets[i]] {
				overlap++
			}
		}
		if overlap > bestOverlap {
			best, bestOverlap = p, overlap
		}
	}
	return best, bestOverlap > 0
}

// ownerLostPointer checks whether unsupported-identity vertex v points
// back (via LinkEA/filter-fid) at a present owner that simply lost its
// forward entry: the owner must have no unpaired forward pointer of the
// counterpart kind (no dangling alternative) for the inference to hold.
func ownerLostPointer(u *agg.Unified, b *graph.Bidirected, v uint32) (uint32, graph.EdgeKind, bool) {
	s, e := b.Fwd.EdgeRange(v)
	for i := s; i < e; i++ {
		if b.FwdPaired[i] == 1 {
			continue
		}
		kind := graph.KindGeneric
		if b.Fwd.Kinds != nil {
			kind = b.Fwd.Kinds[i]
		}
		if kind != graph.KindFilterFID && kind != graph.KindLinkEA {
			continue
		}
		owner := b.Fwd.Targets[i]
		if !u.Present[owner] {
			continue
		}
		// Does the owner have a dangling forward pointer of the
		// counterpart kind? Then the dangling/identity explanation wins.
		dangling := false
		os, oe := b.Fwd.EdgeRange(owner)
		for j := os; j < oe; j++ {
			if b.FwdPaired[j] == 1 {
				continue
			}
			k := graph.KindGeneric
			if b.Fwd.Kinds != nil {
				k = b.Fwd.Kinds[j]
			}
			if k == kind.Counterpart() && !u.Present[b.Fwd.Targets[j]] {
				dangling = true
				break
			}
		}
		if !dangling {
			return owner, kind, true
		}
	}
	return 0, graph.KindGeneric, false
}

// privatePhantomTarget reports whether y's `back`-kind pointer names a
// phantom referenced by nobody else.
func privatePhantomTarget(u *agg.Unified, b *graph.Bidirected, y uint32, back graph.EdgeKind) (uint32, bool) {
	s, e := b.Fwd.EdgeRange(y)
	for i := s; i < e; i++ {
		kind := graph.KindGeneric
		if b.Fwd.Kinds != nil {
			kind = b.Fwd.Kinds[i]
		}
		if kind != back {
			continue
		}
		t := b.Fwd.Targets[i]
		if !u.Present[t] && b.InDegree(t) == 1 {
			return t, true
		}
	}
	return 0, false
}

// hasPairedBackEdge reports whether y has a paired `back`-kind pointer
// to some vertex other than x (a consistent owner that is not x).
func hasPairedBackEdge(b *graph.Bidirected, y, x uint32, back graph.EdgeKind) bool {
	s, e := b.Fwd.EdgeRange(y)
	for i := s; i < e; i++ {
		if b.FwdPaired[i] != 1 || b.Fwd.Targets[i] == x {
			continue
		}
		kind := graph.KindGeneric
		if b.Fwd.Kinds != nil {
			kind = b.Fwd.Kinds[i]
		}
		if kind == back {
			return true
		}
	}
	return false
}

// unansweredBackEdge finds a present vertex w whose `back`-kind pointer
// at x is unanswered — the natural adoptee for x's bogus claim.
func unansweredBackEdge(u *agg.Unified, b *graph.Bidirected, x uint32, back graph.EdgeKind) (uint32, bool) {
	s, e := b.Rev.EdgeRange(x)
	for i := s; i < e; i++ {
		if b.RevPaired[i] == 1 {
			continue
		}
		kind := graph.KindGeneric
		if b.Rev.Kinds != nil {
			kind = b.Rev.Kinds[i]
		}
		if kind != back {
			continue
		}
		w := b.Rev.Targets[i]
		if u.Present[w] {
			return w, true
		}
	}
	return 0, false
}

// arbitrateClaims decides, among multiple physical inodes claiming one
// FID, which one's own point-back metadata is answered by the rest of
// the file system: each claim's inode is re-read from its image, its
// point-back targets are resolved, and the claim whose targets point
// back at this FID wins. Claims without a reciprocated point-back are
// impostors.
func arbitrateClaims(res *Result, images map[string]*ldiskfs.Image, g uint32) (*agg.ObjectLoc, []agg.ObjectLoc) {
	u := res.Unified
	var legit *agg.ObjectLoc
	var impostors []agg.ObjectLoc
	for _, claim := range u.Claims[g] {
		answered := false
		if img := images[claim.Server]; img != nil {
			for _, target := range pointBackTargets(img, claim.Ino) {
				if tg, ok := u.GID(target); ok && res.Graph.Fwd.HasEdge(tg, g) {
					answered = true
					break
				}
			}
		}
		c := claim
		if answered && legit == nil {
			legit = &c
		} else {
			impostors = append(impostors, c)
		}
	}
	return legit, impostors
}

// pointBackTargets reads the FIDs an inode's point-back metadata names:
// the filter-fid owner for OST objects and LinkEA parents for MDT
// files/directories.
func pointBackTargets(img *ldiskfs.Image, ino ldiskfs.Ino) []lustre.FID {
	var out []lustre.FID
	if raw, ok, err := img.GetXattr(ino, lustre.XattrFilterFID); err == nil && ok {
		if ff, err := lustre.DecodeFilterFID(raw); err == nil {
			out = append(out, ff.ParentFID)
		}
	}
	if raw, ok, err := img.GetXattr(ino, lustre.XattrLink); err == nil && ok {
		if links, err := lustre.DecodeLinkEA(raw); err == nil {
			for _, l := range links {
				out = append(out, l.Parent)
			}
		}
	}
	return out
}
