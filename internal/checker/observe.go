package checker

import (
	"sort"
	"sync"

	"faultyrank/internal/agg"
	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
	"faultyrank/internal/wire"
)

// chunkEventEvery is the scanner chunk-lifecycle sampling stride: one
// journal event per this many released chunks keeps the flight recorder
// legible (and the hot path within the ingest overhead budget) while
// still timestamping the stream's progress.
const chunkEventEvery = 64

// ScanStats aggregates the scanner-side telemetry counters of one run —
// what the sweep actually touched, as opposed to what survived into the
// unified graph. Filled from registry counter deltas, so it stays
// per-run even when several runs share one Options.Metrics registry.
type ScanStats struct {
	InodesScanned int64
	DirentsRead   int64
	EdgesEmitted  int64
	ParseIssues   int64
	Chunks        int64
}

// runObs bundles one run's instruments. Every run gets one: when
// Options.Metrics is nil a private registry is created, so Result.Metrics,
// ScanStats and the report counters are always populated; a caller-provided
// registry additionally exposes the same instruments on -metrics-addr.
// Counter base values are captured at construction, so per-run views
// (NetStats, ScanStats) are deltas and shared registries stay correct.
type runObs struct {
	reg   *telemetry.Registry
	scan  *scanner.Instr
	wireM *wire.Metrics
	aggM  *agg.Metrics
	base  map[*telemetry.Counter]int64

	// Partitioned-rank instruments: supersteps driven, exchange volume
	// (canonical encoded frame sizes, so the in-process path reports the
	// same bytes TCP would move), and the partition count of the latest
	// run.
	rankSupersteps *telemetry.Counter
	rankBytes      *telemetry.Counter
	rankParts      *telemetry.Gauge

	// journal is the run's coordinator-lane flight recorder (the caller's
	// Options.Journal, or a private one — always non-nil so event sites
	// need no guards). srvJournals collects the per-server sections that
	// arrive as wire trailers or from in-process scanners.
	journal     *telemetry.Journal
	jmu         sync.Mutex
	srvJournals []telemetry.JournalSnapshot
}

func newRunObs(reg *telemetry.Registry, j *telemetry.Journal) *runObs {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if j == nil {
		j = telemetry.NewJournal(0)
		j.SetServer("coordinator")
	}
	o := &runObs{
		reg:   reg,
		scan:  scanner.NewInstr(reg),
		wireM: wire.NewMetrics(reg),
		aggM:  agg.NewMetrics(reg),
		base:  make(map[*telemetry.Counter]int64),

		rankSupersteps: reg.Counter("rank_supersteps_total"),
		rankBytes:      reg.Counter("rank_exchange_bytes_total"),
		rankParts:      reg.Gauge("rank_partitions"),

		journal: j,
	}
	o.wireM.Journal = j
	o.aggM.Journal = j
	o.scan.AttachJournal(j, chunkEventEvery)
	for _, c := range []*telemetry.Counter{
		o.scan.InodesScanned, o.scan.DirentsRead, o.scan.EdgesEmitted,
		o.scan.ParseIssues, o.scan.ChunksReleased,
		o.wireM.FramesRecv, o.wireM.BytesRecv, o.wireM.DialRetries,
		o.wireM.StreamErrors,
	} {
		o.base[c] = c.Value()
	}
	return o
}

// delta returns how much c grew since this run started.
func (o *runObs) delta(c *telemetry.Counter) int64 { return c.Value() - o.base[c] }

// addJournal files one server's flight-recorder section (thread-safe;
// scanners finish concurrently). Unlabeled or empty sections are
// dropped — an empty lane renders as noise.
func (o *runObs) addJournal(s telemetry.JournalSnapshot) {
	if s.Server == "" || len(s.Events) == 0 {
		return
	}
	o.jmu.Lock()
	o.srvJournals = append(o.srvJournals, s)
	o.jmu.Unlock()
}

// journals returns the run's complete flight record: the coordinator
// section first, then the per-server sections in canonical label order.
func (o *runObs) journals() []telemetry.JournalSnapshot {
	o.jmu.Lock()
	defer o.jmu.Unlock()
	out := make([]telemetry.JournalSnapshot, 0, 1+len(o.srvJournals))
	out = append(out, o.journal.Snapshot())
	out = append(out, o.srvJournals...)
	sort.SliceStable(out[1:], func(i, j int) bool {
		return out[1+i].Server < out[1+j].Server
	})
	return out
}

// scanStats snapshots the scanner counters as per-run deltas.
func (o *runObs) scanStats() ScanStats {
	return ScanStats{
		InodesScanned: o.delta(o.scan.InodesScanned),
		DirentsRead:   o.delta(o.scan.DirentsRead),
		EdgesEmitted:  o.delta(o.scan.EdgesEmitted),
		ParseIssues:   o.delta(o.scan.ParseIssues),
		Chunks:        o.delta(o.scan.ChunksReleased),
	}
}

// netStats snapshots the wire counters as per-run deltas. StreamErrors
// descriptions are appended by the caller — the registry only counts.
func (o *runObs) netStats() NetStats {
	return NetStats{
		Frames:      o.delta(o.wireM.FramesRecv),
		Bytes:       o.delta(o.wireM.BytesRecv),
		DialRetries: o.delta(o.wireM.DialRetries),
	}
}

// finish closes the root span and lands the observability fields on res.
func (o *runObs) finish(res *Result, root *telemetry.Span) {
	root.End()
	node := root.Node()
	res.Phases = &node
	res.Scan = o.scanStats()
	res.Metrics = o.reg.Snapshot()
	res.Journal = o.journals()
}
