package checker

import (
	"strings"
	"testing"
	"time"

	"faultyrank/internal/core"
	"faultyrank/internal/inject"
	"faultyrank/internal/lustre"
)

func TestRunValidatesInput(t *testing.T) {
	if _, err := Run(nil, DefaultOptions()); err == nil {
		t.Fatal("empty image list accepted")
	}
}

func TestRunZeroOptionsGetDefaults(t *testing.T) {
	c := fig7Cluster(t)
	res, err := RunCluster(c, Options{}) // zero Core options
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rank.Converged {
		t.Error("defaults not applied: no convergence")
	}
}

// TestTCPTransferEquivalence: shipping partial graphs over localhost TCP
// must produce exactly the same findings and graph as the in-process
// hand-off.
func TestTCPTransferEquivalence(t *testing.T) {
	c := fig7Cluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, fig7Target); err != nil {
		t.Fatal(err)
	}
	images := ClusterImages(c)

	inproc, err := Run(images, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.UseTCP = true
	tcp, err := Run(images, opt)
	if err != nil {
		t.Fatal(err)
	}
	if inproc.Stats != tcp.Stats {
		t.Errorf("graph stats diverge: %+v vs %+v", inproc.Stats, tcp.Stats)
	}
	if len(inproc.Findings) != len(tcp.Findings) {
		t.Fatalf("finding counts diverge: %d vs %d", len(inproc.Findings), len(tcp.Findings))
	}
	for i := range inproc.Findings {
		a, b := inproc.Findings[i], tcp.Findings[i]
		if a.Kind != b.Kind || a.FID != b.FID || len(a.Repairs) != len(b.Repairs) {
			t.Errorf("finding %d diverges: %+v vs %+v", i, a, b)
		}
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		TScan:  time.Second,
		TGraph: 2 * time.Second,
		TRank:  3 * time.Second,
		Findings: []Finding{
			{Kind: FaultyID, FID: lustre.FID{Seq: 1, Oid: 1}},
			{Kind: FaultyProperty, FID: lustre.FID{Seq: 1, Oid: 2}},
			{Kind: FaultyID, FID: lustre.FID{Seq: 1, Oid: 3}},
		},
	}
	if r.Total() != 6*time.Second {
		t.Errorf("total = %v", r.Total())
	}
	if got := len(r.FindingsOfKind(FaultyID)); got != 2 {
		t.Errorf("FindingsOfKind = %d", got)
	}
	if !r.HasFinding(FaultyID, lustre.FID{Seq: 1, Oid: 3}) {
		t.Error("HasFinding missed")
	}
	if r.HasFinding(FaultyProperty, lustre.FID{Seq: 1, Oid: 3}) {
		t.Error("HasFinding false hit")
	}
}

func TestFindingKindStrings(t *testing.T) {
	for k := FindingKind(0); k <= Ambiguous; k++ {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if FindingKind(99).String() == "" {
		t.Error("unknown kind unnamed")
	}
}

func TestRepairActionString(t *testing.T) {
	a := RepairAction{Op: core.RepairSetID, TargetFID: lustre.FID{Seq: 1, Oid: 2}, NewID: lustre.FID{Seq: 3, Oid: 4}}
	if a.String() == "" {
		t.Error("empty set-id string")
	}
	b := RepairAction{Op: core.RepairSetProperty, TargetFID: lustre.FID{Seq: 1, Oid: 2}}
	if b.String() == "" {
		t.Error("empty set-property string")
	}
	c := RepairAction{Op: core.RepairDropPointer}
	if c.String() == "" {
		t.Error("empty drop string")
	}
}

func TestWriteReport(t *testing.T) {
	c := fig7Cluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, fig7Target); err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteReport(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"metadata graph:", "T_scan=", "faulty-id", "repair: set-id", "suspect scores"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Clean cluster report says so.
	clean := fig7Cluster(t)
	cres, err := RunCluster(clean, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	cres.WriteReport(&buf, false)
	if !strings.Contains(buf.String(), "consistent — no findings") {
		t.Errorf("clean report wrong:\n%s", buf.String())
	}
}

// TestHardLinksStayConsistent: multi-link files produce one LinkEA
// record per name and one dirent per parent; the checker must see all
// of them as paired relations.
func TestHardLinksStayConsistent(t *testing.T) {
	c := fig7Cluster(t)
	if err := c.Link("/proj0/file1", "/proj2/alias1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Link("/proj0/file1", "/proj1/alias2"); err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.UnpairedEdges != 0 || len(res.Findings) != 0 {
		t.Fatalf("hard links broke pairing: %d unpaired, %v",
			res.Stats.UnpairedEdges, describe(res))
	}
	// Damaging ONE link's record is attributed to the file's property
	// without disturbing the other names.
	ent, _ := c.Stat("/proj0/file1")
	raw, _, _ := c.MDT.Img.GetXattr(ent.Ino, lustre.XattrLink)
	links, _ := lustre.DecodeLinkEA(raw)
	if len(links) != 3 {
		t.Fatalf("linkEA records = %d", len(links))
	}
	enc, _ := lustre.EncodeLinkEA(links[:2]) // drop the last name's record
	c.MDT.Img.SetXattr(ent.Ino, lustre.XattrLink, enc)
	res, err = RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("dropped link record not detected")
	}
}

// TestStageTimingsPopulated: every stage reports nonzero wall time on a
// real cluster.
func TestStageTimingsPopulated(t *testing.T) {
	c := fig7Cluster(t)
	res, err := RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TScan <= 0 || res.TGraph <= 0 || res.TRank <= 0 {
		t.Errorf("timings: %v %v %v", res.TScan, res.TGraph, res.TRank)
	}
}
