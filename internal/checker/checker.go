// Package checker orchestrates the end-to-end FaultyRank pipeline on a
// set of server images (paper Fig. 6): parallel per-server scanners →
// bulk transfer of partial graphs to the aggregator → FID→GID remap and
// CSR build → the iterative FaultyRank algorithm → fault classification
// and repair recommendations. It reports the paper's stage timings
// (T_scan, T_graph, T_FR) used in Table VI.
package checker

import (
	"fmt"
	"sort"
	"time"

	"faultyrank/internal/agg"
	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
	"faultyrank/internal/wire"
)

// Options configures a checker run.
type Options struct {
	// Workers bounds parallelism in scanners and graph kernels.
	Workers int
	// Core configures the FaultyRank iteration and detection.
	Core core.Options
	// UseTCP routes partial graphs through localhost TCP (the paper's
	// deployment shape: scanners on OSS nodes ship graphs to the MDS
	// aggregator). False hands the partials over in process.
	UseTCP bool
	// SplitProperties additionally runs the per-plane (namespace vs
	// layout) rank extension (paper §VIII future work) and folds in the
	// faults it attributes that the merged ranks dilute away — e.g. a
	// corrupted LinkEA hiding behind a healthy layout.
	SplitProperties bool
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{Core: core.DefaultOptions()}
}

// FindingKind classifies one reported inconsistency.
type FindingKind uint8

const (
	// FaultyID: an object's identity scored below threshold.
	FaultyID FindingKind = iota
	// FaultyProperty: an object's pointing metadata scored below
	// threshold.
	FaultyProperty
	// StaleObject: an object points at an owner FID that exists nowhere
	// (lost file); LFSCK's lost+found territory.
	StaleObject
	// DuplicateIdentity: more than one physical inode claims one FID.
	DuplicateIdentity
	// OrphanObject: a present object participates in no relation at all.
	OrphanObject
	// ParseDamage: the scanner could not decode some metadata.
	ParseDamage
	// Ambiguous: an unpaired relation whose root cause the ranks cannot
	// attribute (paper §VI: user input needed).
	Ambiguous
	// DetachedNamespace: an island of namespace objects whose relations
	// pair perfectly yet which no root path reaches — the coherent
	// corruption the paper declares undetectable (§VI); found here by
	// the reachability extension.
	DetachedNamespace
)

func (k FindingKind) String() string {
	switch k {
	case FaultyID:
		return "faulty-id"
	case FaultyProperty:
		return "faulty-property"
	case StaleObject:
		return "stale-object"
	case DuplicateIdentity:
		return "duplicate-identity"
	case OrphanObject:
		return "orphan-object"
	case ParseDamage:
		return "parse-damage"
	case Ambiguous:
		return "ambiguous"
	case DetachedNamespace:
		return "detached-namespace"
	default:
		return fmt.Sprintf("finding(%d)", uint8(k))
	}
}

// RepairAction is a concrete, applyable fix in FID space.
type RepairAction struct {
	Op        core.RepairOp
	TargetFID lustre.FID
	SourceFID lustre.FID
	Kind      graph.EdgeKind
	// NewID is the corrected identity for RepairSetID actions (resolved
	// by matching the mis-identified object against the phantom FID its
	// peers still reference).
	NewID lustre.FID
	// Loc pins the action to one physical inode when TargetFID alone is
	// ambiguous (duplicate-identity quarantines).
	Loc agg.ObjectLoc
}

func (a RepairAction) String() string {
	switch a.Op {
	case core.RepairSetID:
		return fmt.Sprintf("set-id %v -> %v", a.TargetFID, a.NewID)
	case core.RepairSetProperty:
		return fmt.Sprintf("set-%v of %v to point at %v", a.Kind, a.TargetFID, a.SourceFID)
	default:
		return fmt.Sprintf("drop %v pointer of %v toward %v", a.Kind, a.TargetFID, a.SourceFID)
	}
}

// Finding is one classified inconsistency with its recommended repairs.
type Finding struct {
	Kind    FindingKind
	FID     lustre.FID
	Field   core.Field
	Score   float64
	Detail  string
	Repairs []RepairAction
}

// Result is the outcome of one checker run.
type Result struct {
	// Stage timings (paper Table VI columns).
	TScan, TGraph, TRank time.Duration

	Unified  *agg.Unified
	Graph    *graph.Bidirected
	Rank     *core.Result
	Report   *core.Report
	Stats    graph.Stats
	Findings []Finding
}

// Total returns the end-to-end time.
func (r *Result) Total() time.Duration { return r.TScan + r.TGraph + r.TRank }

// FindingsOfKind filters findings.
func (r *Result) FindingsOfKind(k FindingKind) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// HasFinding reports whether a finding of kind k names fid.
func (r *Result) HasFinding(k FindingKind, fid lustre.FID) bool {
	for _, f := range r.Findings {
		if f.Kind == k && f.FID == fid {
			return true
		}
	}
	return false
}

// Run executes the full pipeline over the server images, which must be
// ordered MDT first, then OSTs by index (the label order also used for
// deterministic GID assignment).
func Run(images []*ldiskfs.Image, opt Options) (*Result, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("checker: no images")
	}
	if opt.Core.MaxIterations == 0 {
		opt.Core = core.DefaultOptions()
	}
	res := &Result{}

	// ---- Stage 1: parallel scanners (T_scan) -------------------------
	t0 := time.Now()
	parts := make([]*scanner.Partial, len(images))
	errs := make([]error, len(images))
	done := make(chan int, len(images))
	for i := range images {
		go func(i int) {
			parts[i], errs[i] = scanner.ScanImage(images[i], opt.Workers)
			done <- i
		}(i)
	}
	for range images {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.TScan = time.Since(t0)
	if err := Analyze(res, images, parts, opt); err != nil {
		return nil, err
	}
	return res, nil
}

// Analyze runs the pipeline's post-scan stages — transfer, aggregation,
// CSR build, ranking and classification — over already-produced partial
// graphs, filling the timing and result fields of res. It exists
// separately from Run so incremental producers (package online) can
// feed maintained partials through the identical analysis path.
func Analyze(res *Result, images []*ldiskfs.Image, parts []*scanner.Partial, opt Options) error {
	if opt.Core.MaxIterations == 0 {
		opt.Core = core.DefaultOptions()
	}
	// ---- Stage 2: transfer + aggregate + CSR build (T_graph) ---------
	t1 := time.Now()
	if opt.UseTCP {
		shipped, err := shipOverTCP(parts)
		if err != nil {
			return err
		}
		parts = shipped
	}
	res.Unified = agg.Merge(parts)
	res.Graph = res.Unified.Build(opt.Workers)
	res.TGraph = time.Since(t1)

	// ---- Stage 3: FaultyRank + detection (T_FR) ----------------------
	t2 := time.Now()
	res.Rank = core.Run(res.Graph, opt.Core)
	res.Report = core.Detect(res.Graph, res.Rank, res.Unified.Present, opt.Core)
	byLabel := make(map[string]*ldiskfs.Image, len(images))
	for _, img := range images {
		byLabel[img.Label()] = img
	}
	res.Findings = classify(res, byLabel, opt)
	res.Stats = res.Graph.Stats(opt.Workers)
	res.TRank = time.Since(t2)
	return nil
}

// RunCluster is a convenience wrapper scanning a simulated cluster's
// images in canonical order.
func RunCluster(c *lustre.Cluster, opt Options) (*Result, error) {
	return Run(ClusterImages(c), opt)
}

// ClusterImages returns a cluster's images in canonical order (MDTs
// first by index, then OSTs by index).
func ClusterImages(c *lustre.Cluster) []*ldiskfs.Image {
	var images []*ldiskfs.Image
	for _, mdt := range c.MDTs {
		images = append(images, mdt.Img)
	}
	for _, ost := range c.OSTs {
		images = append(images, ost.Img)
	}
	return images
}

// shipOverTCP reproduces the deployment data path: every partial graph
// is encoded, sent once in bulk to an MDS-side collector, and decoded
// there. Partials are re-ordered by label so the GID space stays
// deterministic.
func shipOverTCP(parts []*scanner.Partial) ([]*scanner.Partial, error) {
	col, addr, err := wire.NewCollector()
	if err != nil {
		return nil, err
	}
	defer col.Close()
	errCh := make(chan error, len(parts))
	for _, p := range parts {
		go func(p *scanner.Partial) {
			errCh <- wire.SendPartialTo(addr, wire.EncodePartial(p))
		}(p)
	}
	raw, err := col.CollectRaw(len(parts))
	if err != nil {
		return nil, err
	}
	for range parts {
		if err := <-errCh; err != nil {
			return nil, err
		}
	}
	byLabel := make(map[string]*scanner.Partial, len(parts))
	for _, b := range raw {
		p, err := wire.DecodePartial(b)
		if err != nil {
			return nil, err
		}
		byLabel[p.ServerLabel] = p
	}
	out := make([]*scanner.Partial, 0, len(parts))
	for _, orig := range parts {
		p, ok := byLabel[orig.ServerLabel]
		if !ok {
			return nil, fmt.Errorf("checker: partial for %q lost in transfer", orig.ServerLabel)
		}
		out = append(out, p)
	}
	return out, nil
}

// sortFindings orders findings deterministically for stable output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Kind != fs[j].Kind {
			return fs[i].Kind < fs[j].Kind
		}
		if fs[i].FID != fs[j].FID {
			return fs[i].FID.Less(fs[j].FID)
		}
		return fs[i].Field < fs[j].Field
	})
}
