// Package checker orchestrates the end-to-end FaultyRank pipeline on a
// set of server images (paper Fig. 6): parallel per-server scanners
// streaming bounded chunks into the aggregator (overlapping transfer
// with aggregation) → FID→GID remap and CSR build → the iterative
// FaultyRank algorithm → fault classification and repair
// recommendations. It reports the paper's stage timings (T_scan,
// T_graph, T_FR) used in Table VI.
package checker

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"faultyrank/internal/agg"
	"faultyrank/internal/core"
	"faultyrank/internal/graph"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
	"faultyrank/internal/wire"
)

// Options configures a checker run.
type Options struct {
	// Workers bounds parallelism in scanners and graph kernels.
	Workers int
	// Core configures the FaultyRank iteration and detection.
	Core core.Options
	// UseTCP routes chunk streams through localhost TCP (the paper's
	// deployment shape: scanners on OSS nodes ship graphs to the MDS
	// aggregator). False hands the chunks over in process.
	UseTCP bool
	// ChunkSize bounds the entries per streamed scanner chunk
	// (<= 0 = scanner.DefaultChunkEntries).
	ChunkSize int
	// SplitProperties additionally runs the per-plane (namespace vs
	// layout) rank extension (paper §VIII future work) and folds in the
	// faults it attributes that the merged ranks dilute away — e.g. a
	// corrupted LinkEA hiding behind a healthy layout.
	SplitProperties bool

	// ScanTimeout bounds the whole scan→ship→collect stage on the TCP
	// path (0 = no deadline). When it expires, the collector stops
	// waiting, stalled connections are cut, and — with AllowDegraded —
	// the run completes from the surviving streams.
	ScanTimeout time.Duration
	// OpTimeout bounds each individual frame write/ack read on a chunk
	// stream (0 = the scan deadline only).
	OpTimeout time.Duration
	// AllowDegraded lets the run complete when scanner streams are lost
	// (crash, stall, corrupt frame, missed deadline): the unified graph
	// is built from the surviving partials and Result.Coverage names the
	// missing servers. False (the default) keeps the strict behaviour —
	// any stream failure aborts the run.
	AllowDegraded bool
	// Retry is the sender-side dial retry policy (zero value = the
	// wire default: 3 attempts with exponential backoff).
	Retry wire.RetryPolicy
	// NetFaults injects a network fault into the named servers' chunk
	// streams on the TCP path — the test/bench hook for exercising the
	// failure model (nil = no faults).
	NetFaults map[string]*inject.NetFault

	// RankWorkers shards the CSR across this many rank partitions and
	// iterates as BSP supersteps (internal/core superstep protocol);
	// <= 1 runs the legacy single-process kernel. The partitioned path
	// is exact — ranks and findings are bit-identical to the
	// single-process kernel for any worker count — so this trades
	// nothing but exchange overhead for per-partition parallelism. With
	// UseTCP the workers run behind real localhost TCP links (the
	// deployment shape: rank shards on separate nodes); otherwise they
	// are in-process goroutines on channel links.
	RankWorkers int
	// RankFaults injects a crash into the numbered rank partitions'
	// superstep links — the test/bench hook for the rank-stage failure
	// model (nil = no faults). A lost partition fails a strict run with
	// a PartError naming it; with AllowDegraded the checker falls back
	// to the single-process kernel (the whole graph is local to the
	// coordinator) and records the fallback in the rank manifest.
	RankFaults map[int]*inject.RankFault

	// RankListen binds the rank exchange to an explicit address
	// ("host:port"; empty = a fresh localhost port) so frrankd workers
	// beyond the loopback can dial in. Setting it forces the TCP rank
	// path regardless of UseTCP.
	RankListen string
	// RankRemote waits for externally-launched frrankd processes to
	// dial the exchange instead of spawning in-process dial goroutines.
	// The coordinator ships each worker its shard over the link (or
	// validates the fingerprint of a shard the worker pre-loaded); a
	// worker that never arrives within OpTimeout fails the run — or,
	// with AllowDegraded, falls back to the single-process kernel with
	// the fallback recorded in the rank manifest.
	RankRemote bool
	// RankSpawn, when non-empty, is the path of an frrankd binary the
	// checker execs once per partition (implies RankRemote) — the CI
	// shape proving real process separation on one host. Per-process
	// peak RSS lands in the rank manifest.
	RankSpawn string

	// RankIncremental runs the frontier-based incremental kernel
	// (core.RunIncremental) instead of full sweeps, seeded from
	// RankFrontier — the online tracker's warm path, where the work
	// should scale with the delta, not the graph. It applies only to the
	// single-process kernel (RankWorkers <= 1); the partitioned BSP
	// execution always sweeps its whole shard. Without warm-start
	// vectors in Core the incremental kernel degenerates to a plain
	// cold Run, so setting this on a cold check is harmless.
	RankIncremental bool
	// RankFrontier is the dirty-vertex seed set (current-GID space) for
	// RankIncremental: every vertex whose contribution to the unified
	// graph changed since the warm-start ranks were saved.
	RankFrontier []uint32

	// Metrics is the registry the run's instruments resolve from. Nil
	// means a private per-run registry — Result.Metrics, Result.Scan and
	// the report counters are populated either way. Pass a shared
	// registry to expose the same instruments on a live /metrics
	// endpoint (cmd/faultyrank -metrics-addr) or across repeated runs;
	// per-run views (NetStats, ScanStats) are computed as counter
	// deltas, so sharing stays correct.
	Metrics *telemetry.Registry

	// Journal is the coordinator-lane flight recorder the run's typed
	// events land in (dial retries, stream errors, degraded transitions,
	// merge milestones, rank progress). Nil means a private per-run
	// journal — Result.Journal is populated either way. Pass a shared
	// journal to accumulate events across repeated runs (the online
	// tracker does); its events then carry every round, and per-run
	// Result.Journal snapshots grow with it until the ring wraps.
	Journal *telemetry.Journal
}

// Coverage reports which servers' partial graphs made it into the
// unified metadata graph. A non-degraded run covers every server; a
// degraded run names the servers whose streams never completed, whose
// metadata is therefore absent from the graph and whose findings the
// report flags as incomplete.
type Coverage struct {
	// Total is the number of server images the run was asked to check.
	Total int
	// Missing lists the servers whose streams never completed, in
	// canonical label order.
	Missing []string
}

// Degraded reports whether any server's stream was lost.
func (c Coverage) Degraded() bool { return len(c.Missing) > 0 }

// Complete is the number of server streams that fully arrived.
func (c Coverage) Complete() int { return c.Total - len(c.Missing) }

// NetStats aggregates the wire-level counters of one TCP scan stage
// (zero for in-process runs).
type NetStats struct {
	// Frames and Bytes count the chunk frames the collector decoded.
	Frames, Bytes int64
	// DialRetries counts sender-side redials across all scanners.
	DialRetries int64
	// StreamErrors describes each failed or aborted stream.
	StreamErrors []string
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{Core: core.DefaultOptions()}
}

// FindingKind classifies one reported inconsistency.
type FindingKind uint8

const (
	// FaultyID: an object's identity scored below threshold.
	FaultyID FindingKind = iota
	// FaultyProperty: an object's pointing metadata scored below
	// threshold.
	FaultyProperty
	// StaleObject: an object points at an owner FID that exists nowhere
	// (lost file); LFSCK's lost+found territory.
	StaleObject
	// DuplicateIdentity: more than one physical inode claims one FID.
	DuplicateIdentity
	// OrphanObject: a present object participates in no relation at all.
	OrphanObject
	// ParseDamage: the scanner could not decode some metadata.
	ParseDamage
	// Ambiguous: an unpaired relation whose root cause the ranks cannot
	// attribute (paper §VI: user input needed).
	Ambiguous
	// DetachedNamespace: an island of namespace objects whose relations
	// pair perfectly yet which no root path reaches — the coherent
	// corruption the paper declares undetectable (§VI); found here by
	// the reachability extension.
	DetachedNamespace
)

func (k FindingKind) String() string {
	switch k {
	case FaultyID:
		return "faulty-id"
	case FaultyProperty:
		return "faulty-property"
	case StaleObject:
		return "stale-object"
	case DuplicateIdentity:
		return "duplicate-identity"
	case OrphanObject:
		return "orphan-object"
	case ParseDamage:
		return "parse-damage"
	case Ambiguous:
		return "ambiguous"
	case DetachedNamespace:
		return "detached-namespace"
	default:
		return fmt.Sprintf("finding(%d)", uint8(k))
	}
}

// RepairAction is a concrete, applyable fix in FID space.
type RepairAction struct {
	Op        core.RepairOp
	TargetFID lustre.FID
	SourceFID lustre.FID
	Kind      graph.EdgeKind
	// NewID is the corrected identity for RepairSetID actions (resolved
	// by matching the mis-identified object against the phantom FID its
	// peers still reference).
	NewID lustre.FID
	// Loc pins the action to one physical inode when TargetFID alone is
	// ambiguous (duplicate-identity quarantines).
	Loc agg.ObjectLoc
}

func (a RepairAction) String() string {
	switch a.Op {
	case core.RepairSetID:
		return fmt.Sprintf("set-id %v -> %v", a.TargetFID, a.NewID)
	case core.RepairSetProperty:
		return fmt.Sprintf("set-%v of %v to point at %v", a.Kind, a.TargetFID, a.SourceFID)
	default:
		return fmt.Sprintf("drop %v pointer of %v toward %v", a.Kind, a.TargetFID, a.SourceFID)
	}
}

// Finding is one classified inconsistency with its recommended repairs.
type Finding struct {
	Kind    FindingKind
	FID     lustre.FID
	Field   core.Field
	Score   float64
	Detail  string
	Repairs []RepairAction
	// Blast is the finding's blast radius: how many metadata relations
	// (incoming plus outgoing edges) touch the faulty object. A dangling
	// dirent on a hot directory carries a large Blast; an isolated
	// orphan object carries zero. Severity rules (internal/health) use
	// it to separate contained faults from ones whose repair delay
	// spreads.
	Blast int
}

// Result is the outcome of one checker run.
type Result struct {
	// Stage timings (paper Table VI columns).
	TScan, TGraph, TRank time.Duration

	// Coverage names the servers whose partial graphs were merged; a
	// degraded run lists the lost servers in Coverage.Missing.
	Coverage Coverage
	// Net carries the scan stage's transfer counters (TCP path only).
	Net NetStats
	// Scan carries the scanner-side telemetry counters (both paths).
	Scan ScanStats
	// Phases is the run's phase-timing tree: run → scan (one child per
	// server) → aggregate (merge, build) → rank (iterate, classify).
	Phases *telemetry.SpanNode
	// Metrics is the deterministic end-of-run registry snapshot.
	Metrics telemetry.Snapshot
	// Cluster is the cluster-scoped telemetry view: one section per
	// server (wire-shipped snapshots on the TCP path), merged cluster
	// totals, and the straggler analysis. Nil for Analyze-only results
	// (no scan stage ran).
	Cluster *ClusterManifest
	// Journal is the run's flight record: the coordinator's event
	// section first, then one section per server whose journal arrived
	// (as a wire trailer on the TCP path, directly in process). Encode
	// with telemetry.EncodeJournal / WriteJournalFile and render with
	// cmd/frtrace.
	Journal []telemetry.JournalSnapshot

	// RankExec describes the partitioned rank execution — partition
	// shapes, per-superstep exchange stats, degraded fallback — and is
	// also folded into Cluster as its rank section. Nil when the
	// single-process kernel ran (RankWorkers <= 1).
	RankExec *RankManifest

	Unified  *agg.Unified
	Graph    *graph.Bidirected
	Rank     *core.Result
	Report   *core.Report
	Stats    graph.Stats
	Findings []Finding
}

// Total returns the end-to-end time.
func (r *Result) Total() time.Duration { return r.TScan + r.TGraph + r.TRank }

// FindingsOfKind filters findings.
func (r *Result) FindingsOfKind(k FindingKind) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}

// HasFinding reports whether a finding of kind k names fid.
func (r *Result) HasFinding(k FindingKind, fid lustre.FID) bool {
	for _, f := range r.Findings {
		if f.Kind == k && f.FID == fid {
			return true
		}
	}
	return false
}

// Run executes the full pipeline over the server images, which must be
// ordered MDT first, then OSTs by index (the label order also used for
// deterministic GID assignment). Scanners stream bounded chunks into
// the aggregator's Builder — directly or over TCP — so T_scan covers
// scan plus transfer, and T_graph covers the parallel sharded merge
// plus the CSR build.
func Run(images []*ldiskfs.Image, opt Options) (*Result, error) {
	return RunContext(context.Background(), images, opt)
}

// RunContext is Run under a context: cancelling ctx (or exceeding
// opt.ScanTimeout on the TCP path) unwedges every network wait in the
// collection stage, so a crashed or stalled scanner can never hang the
// checker. With opt.AllowDegraded the run then completes from the
// surviving scanner streams and Result.Coverage names the lost servers.
func RunContext(ctx context.Context, images []*ldiskfs.Image, opt Options) (*Result, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("checker: no images")
	}
	if opt.Core.MaxIterations == 0 {
		opt.Core = core.DefaultOptions()
	}
	if opt.Retry.Attempts == 0 {
		opt.Retry = wire.DefaultRetryPolicy()
	}
	res := &Result{Coverage: Coverage{Total: len(images)}}
	obs := newRunObs(opt.Metrics, opt.Journal)
	ctx, root := telemetry.StartSpan(ctx, "run")
	transport := "in-process"
	if opt.UseTCP {
		transport = "tcp"
	}
	obs.journal.Record("checker", "run",
		"servers", fmt.Sprintf("%d", len(images)), "transport", transport)

	labels := make([]string, len(images))
	for i, img := range images {
		labels[i] = img.Label()
	}
	builder := agg.NewBuilder(labels)
	builder.Observe(obs.aggM)

	// ---- Stage 1: parallel scanners streaming chunks (T_scan) --------
	t0 := time.Now()
	scanCtx, scanSpan := telemetry.StartSpan(ctx, "scan")
	var err error
	var ships []*wire.Telemetry
	if opt.UseTCP {
		ships, err = streamOverTCP(scanCtx, images, builder, opt, res, obs)
	} else {
		ships, err = streamInProcess(scanCtx, images, builder, opt, obs)
	}
	scanSpan.End()
	if err != nil {
		return nil, err
	}
	res.TScan = time.Since(t0)
	res.Cluster = BuildClusterManifest(labels, ships)

	// ---- Stage 2: sharded merge + CSR build (T_graph) ----------------
	t1 := time.Now()
	aggCtx, aggSpan := telemetry.StartSpan(ctx, "aggregate")
	_, mergeSpan := telemetry.StartSpan(aggCtx, "merge")
	if opt.AllowDegraded {
		var missing []string
		res.Unified, missing, err = builder.FinishCompleted(opt.Workers)
		res.Coverage.Missing = missing
		if len(missing) > 0 {
			obs.journal.Record("checker", "degraded",
				"missing", strings.Join(missing, ","))
		}
	} else {
		res.Unified, err = builder.Finish(opt.Workers)
	}
	mergeSpan.End()
	if err != nil {
		aggSpan.End()
		return nil, err
	}
	_, buildSpan := telemetry.StartSpan(aggCtx, "build")
	res.Graph = res.Unified.Build(opt.Workers)
	buildSpan.End()
	aggSpan.End()
	res.TGraph = time.Since(t1)

	err = rankAndClassify(ctx, res, images, opt, obs)
	obs.finish(res, root)
	return res, err
}

// Analyze runs the pipeline's post-scan stages — aggregation, CSR
// build, ranking and classification — over already-produced partial
// graphs, filling the timing and result fields of res. It exists
// separately from Run so incremental producers (package online) can
// feed maintained partials through the identical analysis path.
func Analyze(res *Result, images []*ldiskfs.Image, parts []*scanner.Partial, opt Options) error {
	if opt.Core.MaxIterations == 0 {
		opt.Core = core.DefaultOptions()
	}
	obs := newRunObs(opt.Metrics, opt.Journal)
	ctx, root := telemetry.StartSpan(context.Background(), "analyze")
	// ---- Stage 2: aggregate + CSR build (T_graph) --------------------
	t1 := time.Now()
	aggCtx, aggSpan := telemetry.StartSpan(ctx, "aggregate")
	_, mergeSpan := telemetry.StartSpan(aggCtx, "merge")
	res.Unified = agg.MergeWorkersObserved(parts, opt.Workers, obs.aggM)
	mergeSpan.End()
	_, buildSpan := telemetry.StartSpan(aggCtx, "build")
	res.Graph = res.Unified.Build(opt.Workers)
	buildSpan.End()
	aggSpan.End()
	res.TGraph = time.Since(t1)
	err := rankAndClassify(ctx, res, images, opt, obs)
	obs.finish(res, root)
	return err
}

// AnalyzeUnified runs the post-merge stages — CSR build, ranking and
// classification — over an already-materialised unified graph. It is
// the online checker's per-check entry point: the incremental
// aggregator (agg.DeltaBuilder) maintains the Unified across checks, so
// neither scanning nor merging re-runs; what remains is exactly the
// work any check must do on the current graph.
func AnalyzeUnified(res *Result, images []*ldiskfs.Image, u *agg.Unified, opt Options) error {
	if opt.Core.MaxIterations == 0 {
		opt.Core = core.DefaultOptions()
	}
	obs := newRunObs(opt.Metrics, opt.Journal)
	ctx, root := telemetry.StartSpan(context.Background(), "analyze")
	t1 := time.Now()
	aggCtx, aggSpan := telemetry.StartSpan(ctx, "aggregate")
	_, buildSpan := telemetry.StartSpan(aggCtx, "build")
	res.Unified = u
	res.Graph = u.Build(opt.Workers)
	buildSpan.End()
	aggSpan.End()
	res.TGraph = time.Since(t1)
	err := rankAndClassify(ctx, res, images, opt, obs)
	obs.finish(res, root)
	return err
}

// rankAndClassify is stage 3 (T_FR), shared by Run and Analyze:
// FaultyRank iteration — single-process or partitioned per
// opt.RankWorkers — then detection and fault classification.
func rankAndClassify(ctx context.Context, res *Result, images []*ldiskfs.Image, opt Options, obs *runObs) error {
	t2 := time.Now()
	rankCtx, rankSpan := telemetry.StartSpan(ctx, "rank")
	iterCtx, iterSpan := telemetry.StartSpan(rankCtx, "iterate")
	err := runRank(iterCtx, res, opt, obs)
	iterSpan.End()
	if err != nil {
		rankSpan.End()
		res.TRank = time.Since(t2)
		return err
	}
	_, classifySpan := telemetry.StartSpan(rankCtx, "classify")
	res.Report = core.Detect(res.Graph, res.Rank, res.Unified.Present, opt.Core)
	byLabel := make(map[string]*ldiskfs.Image, len(images))
	for _, img := range images {
		byLabel[img.Label()] = img
	}
	res.Findings = classify(res, byLabel, opt)
	res.Stats = res.Graph.Stats(opt.Workers)
	classifySpan.End()
	rankSpan.End()
	res.TRank = time.Since(t2)
	return nil
}

// RunCluster is a convenience wrapper scanning a simulated cluster's
// images in canonical order.
func RunCluster(c *lustre.Cluster, opt Options) (*Result, error) {
	return Run(ClusterImages(c), opt)
}

// ClusterImages returns a cluster's images in canonical order (MDTs
// first by index, then OSTs by index).
func ClusterImages(c *lustre.Cluster) []*ldiskfs.Image {
	var images []*ldiskfs.Image
	for _, mdt := range c.MDTs {
		images = append(images, mdt.Img)
	}
	for _, ost := range c.OSTs {
		images = append(images, ost.Img)
	}
	return images
}

// streamInProcess runs every image's scanner concurrently, each
// streaming its chunks straight into the shared sink (Builder.Emit is
// thread-safe, so chunk interleaving across servers is harmless). Each
// scanner also keeps a per-server registry — the same set of
// instruments the TCP path ships home as a telemetry trailer — so the
// cluster manifest has per-server sections on both paths.
func streamInProcess(ctx context.Context, images []*ldiskfs.Image, sink scanner.Sink, opt Options, obs *runObs) ([]*wire.Telemetry, error) {
	errs := make([]error, len(images))
	ships := make([]*wire.Telemetry, len(images))
	var wg sync.WaitGroup
	for i, img := range images {
		wg.Add(1)
		go func(i int, img *ldiskfs.Image) {
			defer wg.Done()
			label := img.Label()
			srvReg := telemetry.NewRegistry()
			srvIns := scanner.NewInstr(srvReg)
			srvJournal := telemetry.NewJournal(0)
			srvJournal.SetServer(label)
			srvIns.AttachJournal(srvJournal, chunkEventEvery)
			srvJournal.Record("scanner", "scan-start")
			_, sp := telemetry.StartSpan(ctx, "scan:"+label)
			defer sp.End()
			errs[i] = scanner.ScanImageToSinkInstr(ctx, img, opt.Workers, opt.ChunkSize, sink, obs.scan, srvIns)
			if errs[i] == nil {
				sp.End()
				node := sp.Node()
				ships[i] = &wire.Telemetry{Server: label, Snapshot: srvReg.Snapshot().Labeled(label), Span: &node}
				srvJournal.Record("scanner", "scan-done")
			} else {
				obs.journal.Record("checker", "scan-failed",
					"server", label, "err", errs[i].Error())
			}
			obs.addJournal(srvJournal.Snapshot())
		}(i, img)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return ships, nil
}

// streamOverTCP reproduces the deployment data path: every scanner
// opens one chunk stream to the MDS-side collector and ships chunks as
// it produces them, so the aggregator consumes while the scanners are
// still sweeping — transfer no longer waits for a whole encoded
// partial.
//
// Failure handling: dials are retried per opt.Retry; opt.ScanTimeout
// bounds the whole stage; when a stream is lost the degraded collector
// keeps the surviving streams flowing, while strict mode aborts the
// siblings and fails the run. The transfer counters land in res.Net.
//
// Each scanner keeps a per-server registry (its own scan counters and
// wire metrics) and ships it to the collector as a telemetry trailer
// after its final chunk — best-effort when the scan fails, since its
// connection may already be gone. The collected trailers become the
// cluster manifest's per-server sections; a crashed server simply has
// no trailer and turns into a missing-telemetry entry.
func streamOverTCP(ctx context.Context, images []*ldiskfs.Image, builder *agg.Builder, opt Options, res *Result, obs *runObs) ([]*wire.Telemetry, error) {
	col, addr, err := wire.NewCollector()
	if err != nil {
		return nil, err
	}
	defer col.Close()
	col.Observe(obs.wireM)
	if opt.ScanTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.ScanTimeout)
		defer cancel()
	}
	errs := make([]error, len(images))
	srvJournals := make([]*telemetry.Journal, len(images))
	var wg sync.WaitGroup
	for i, img := range images {
		wg.Add(1)
		go func(i int, img *ldiskfs.Image) {
			defer wg.Done()
			label := img.Label()
			srvReg := telemetry.NewRegistry()
			srvIns := scanner.NewInstr(srvReg)
			srvWire := wire.NewMetrics(srvReg)
			srvJournal := telemetry.NewJournal(0)
			srvJournal.SetServer(label)
			srvJournals[i] = srvJournal
			srvIns.AttachJournal(srvJournal, chunkEventEvery)
			_, sp := telemetry.StartSpan(ctx, "scan:"+label)
			defer sp.End()
			fault := opt.NetFaults[label]
			if fault != nil && fault.PreConnect() {
				errs[i] = fmt.Errorf("%w before connect (%s)", inject.ErrScannerCrash, label)
				obs.journal.Record("checker", "scan-failed",
					"server", label, "err", errs[i].Error())
				return
			}
			cs, err := wire.DialChunkStreamObserved(ctx, addr, opt.Retry, opt.OpTimeout, obs.wireM, srvWire)
			if err != nil {
				errs[i] = err
				obs.journal.Record("checker", "scan-failed",
					"server", label, "err", err.Error())
				return
			}
			defer cs.Close()
			if n := cs.DialRetries(); n > 0 {
				obs.journal.Record("wire", "dial-retry",
					"server", label, "retries", fmt.Sprintf("%d", n))
			}
			// The per-server journal rides home as a trailer frame right
			// behind the telemetry snapshot (wire.MsgJournal).
			cs.SetJournal(srvJournal)
			srvJournal.Record("scanner", "scan-start")
			// The trailer source runs right after the final chunk frame is
			// written — the server's instruments are final at that moment.
			cs.SetTelemetrySource(func() *wire.Telemetry {
				sp.End()
				node := sp.Node()
				return &wire.Telemetry{Server: label, Snapshot: srvReg.Snapshot().Labeled(label), Span: &node}
			})
			sink := scanner.Sink(cs)
			if fault != nil {
				sink = fault.WrapStream(ctx, cs)
			}
			errs[i] = scanner.ScanImageToSinkInstr(ctx, img, opt.Workers, opt.ChunkSize, sink, obs.scan, srvIns)
			if errs[i] != nil {
				obs.journal.Record("checker", "scan-failed",
					"server", label, "err", errs[i].Error())
				// Best-effort partial telemetry and journal for the failure
				// path; the connection is usually gone, and that is fine —
				// the server then shows up as a missing-telemetry entry.
				_ = cs.SendTelemetry(nil)
				_ = cs.SendJournal()
			} else {
				srvJournal.Record("scanner", "scan-done")
			}
		}(i, img)
	}
	// A scanner that fails before or during its stream leaves the
	// collector short; close the listener once all senders finish so
	// the accept wait cannot block until the deadline for a connection
	// that will never come. (A *stalled* sender keeps wg held — there
	// the ScanTimeout deadline does the unblocking.)
	go func() {
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				col.Close()
				return
			}
		}
	}()
	colRes, collectErr := col.CollectChunksContext(ctx, len(images), opt.AllowDegraded, builder.Emit)
	wg.Wait()
	// Per-server flight-recorder sections: prefer the wire-shipped
	// trailer (what actually crossed the network), and fall back to the
	// sender-side journal for servers whose trailer never arrived — a
	// crashed stream's event trail is the evidence frtrace renders.
	collected := make(map[string]bool, len(colRes.Journals))
	for _, js := range colRes.Journals {
		obs.addJournal(js)
		collected[js.Server] = true
	}
	for i, j := range srvJournals {
		if j != nil && !collected[images[i].Label()] {
			obs.addJournal(j.Snapshot())
		}
	}
	// NetStats is a per-run view over the registry-backed wire counters;
	// the error descriptions still come from the collector, which is the
	// only place that knows why a stream died.
	res.Net = obs.netStats()
	res.Net.StreamErrors = colRes.Errors
	if opt.AllowDegraded {
		// Sender-side failures are part of the degraded story, not
		// fatal; record them for the report.
		for i, err := range errs {
			if err != nil {
				res.Net.StreamErrors = append(res.Net.StreamErrors,
					fmt.Sprintf("scanner %s: %v", images[i].Label(), err))
			}
		}
		return colRes.Telemetry, nil
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return colRes.Telemetry, collectErr
}

// sortFindings orders findings deterministically for stable output.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Kind != fs[j].Kind {
			return fs[i].Kind < fs[j].Kind
		}
		if fs[i].FID != fs[j].FID {
			return fs[i].FID.Less(fs[j].FID)
		}
		return fs[i].Field < fs[j].Field
	})
}
