package checker

import (
	"fmt"
	"testing"

	"faultyrank/internal/core"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// fig7Cluster builds a small but realistic tree: enough healthy context
// that every object has rank support (the paper's "extra edges" §III-F).
func fig7Cluster(t testing.TB) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		dir := fmt.Sprintf("/proj%d", d)
		if err := c.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 4; f++ {
			// 3-stripe files so layout relations have neighbours.
			if _, err := c.Create(fmt.Sprintf("%s/file%d", dir, f), 3*64<<10); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

const fig7Target = "/proj1/file2"

// runScenario injects one Fig. 7 scenario into a fresh cluster and runs
// the FaultyRank checker.
func runScenario(t testing.TB, s inject.Scenario) (*lustre.Cluster, *inject.Injection, *Result) {
	t.Helper()
	c := fig7Cluster(t)
	inj, err := inject.Inject(c, s, fig7Target)
	if err != nil {
		t.Fatalf("inject %v: %v", s, err)
	}
	res, err := RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatalf("check %v: %v", s, err)
	}
	return c, inj, res
}

// TestCleanClusterNoFindings: a healthy cluster yields zero findings.
func TestCleanClusterNoFindings(t *testing.T) {
	c := fig7Cluster(t)
	res, err := RunCluster(c, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 0 {
		t.Fatalf("findings on clean cluster: %+v", res.Findings)
	}
	if res.Stats.UnpairedEdges != 0 {
		t.Errorf("unpaired edges: %d", res.Stats.UnpairedEdges)
	}
	if !res.Rank.Converged {
		t.Error("rank did not converge")
	}
}

// --- the eight Fig. 7 scenarios -------------------------------------------

func TestFig7DanglingDirent(t *testing.T) {
	_, inj, res := runScenario(t, inject.DanglingDirent)
	if !res.HasFinding(FaultyProperty, inj.VictimFID) {
		t.Fatalf("dir property not flagged; findings: %v", describe(res))
	}
	// The repairs rebuild the dirent table from the children and the
	// LinkEA from the parent.
	var dirents, linkeas int
	for _, f := range res.FindingsOfKind(FaultyProperty) {
		if f.FID != inj.VictimFID {
			continue
		}
		for _, r := range f.Repairs {
			if r.Op != core.RepairSetProperty {
				continue
			}
			switch r.Kind.String() {
			case "dirent":
				dirents++
			case "linkea":
				linkeas++
			}
		}
	}
	if dirents < 4 { // the four files under /proj1
		t.Errorf("dirent rebuild repairs = %d, want >= 4 (%v)", dirents, describe(res))
	}
	if linkeas != 1 {
		t.Errorf("linkea rebuild repairs = %d, want 1", linkeas)
	}
}

func TestFig7DanglingObjectID(t *testing.T) {
	_, inj, res := runScenario(t, inject.DanglingObjectID)
	if !res.HasFinding(FaultyID, inj.NewFID) {
		t.Fatalf("object id not flagged; findings: %v", describe(res))
	}
	ok := false
	for _, f := range res.FindingsOfKind(FaultyID) {
		for _, r := range f.Repairs {
			if r.Op == core.RepairSetID && r.TargetFID == inj.NewFID && r.NewID == inj.VictimFID {
				ok = true
			}
		}
	}
	if !ok {
		t.Errorf("no set-id repair restoring %v; findings: %v", inj.VictimFID, describe(res))
	}
}

func TestFig7UnrefLOVEADropped(t *testing.T) {
	_, inj, res := runScenario(t, inject.UnrefLOVEADropped)
	// The file's LOVEA lost an entry: the repair re-adds it from the
	// unreferenced object's filter-fid.
	ok := false
	for _, f := range res.FindingsOfKind(FaultyProperty) {
		if f.FID != inj.VictimFID {
			continue
		}
		for _, r := range f.Repairs {
			if r.Op == core.RepairSetProperty && r.SourceFID == inj.PeerFID && r.Kind.String() == "lovea" {
				ok = true
			}
		}
	}
	if !ok {
		t.Fatalf("LOVEA restore repair missing; findings: %v", describe(res))
	}
}

func TestFig7UnrefStaleObject(t *testing.T) {
	_, inj, res := runScenario(t, inject.UnrefStaleObject)
	stale := res.FindingsOfKind(StaleObject)
	if len(stale) != 3 { // the file had 3 stripe objects
		t.Fatalf("stale findings = %d, want 3; findings: %v", len(stale), describe(res))
	}
	for _, f := range stale {
		if len(f.Repairs) == 0 || f.Repairs[0].Op != core.RepairQuarantine ||
			f.Repairs[0].SourceFID != inj.VictimFID {
			t.Errorf("stale repair wrong: %+v", f)
		}
	}
}

func TestFig7DoubleRefLOVEA(t *testing.T) {
	_, inj, res := runScenario(t, inject.DoubleRefLOVEA)
	// The impostor file's duplicate claim is dropped and relinked to its
	// own (now unreferenced) object; the repairs may arrive across
	// multiple findings for the impostor FID.
	var repairs []RepairAction
	for _, f := range res.Findings {
		if f.Kind == FaultyProperty && f.FID == inj.VictimFID {
			repairs = append(repairs, f.Repairs...)
		}
	}
	if len(repairs) == 0 {
		t.Fatalf("impostor property not flagged; findings: %v", describe(res))
	}
	var drop, relink bool
	for _, r := range repairs {
		if r.Op == core.RepairDropPointer && r.SourceFID == inj.PeerFID {
			drop = true
		}
		if r.Op == core.RepairSetProperty && r.Kind.String() == "lovea" {
			relink = true
		}
	}
	if !drop || !relink {
		t.Errorf("double-ref repairs incomplete (drop=%v relink=%v): %+v", drop, relink, repairs)
	}
}

func TestFig7DoubleRefLMA(t *testing.T) {
	_, inj, res := runScenario(t, inject.DoubleRefLMA)
	dups := res.FindingsOfKind(DuplicateIdentity)
	if len(dups) != 1 || dups[0].FID != inj.VictimFID {
		t.Fatalf("duplicate identity not flagged; findings: %v", describe(res))
	}
	if len(dups[0].Repairs) != 1 || dups[0].Repairs[0].Op != core.RepairQuarantine {
		t.Fatalf("impostor quarantine missing: %+v", dups[0])
	}
	// The arbitration must finger exactly the impostor (which lives on a
	// different OST than the real object).
	if dups[0].Repairs[0].Loc.Server == "" {
		t.Error("impostor location not pinned")
	}
}

func TestFig7MismatchFilterFID(t *testing.T) {
	_, inj, res := runScenario(t, inject.MismatchFilterFID)
	ok := false
	for _, f := range res.FindingsOfKind(FaultyProperty) {
		if f.FID != inj.VictimFID {
			continue
		}
		for _, r := range f.Repairs {
			if r.Op == core.RepairSetProperty && r.SourceFID == inj.PeerFID &&
				r.Kind.String() == "filterfid" {
				ok = true
			}
		}
	}
	if !ok {
		t.Fatalf("filter-fid restore missing; findings: %v", describe(res))
	}
}

func TestFig7MismatchFileID(t *testing.T) {
	_, inj, res := runScenario(t, inject.MismatchFileID)
	ok := false
	for _, f := range res.FindingsOfKind(FaultyID) {
		if f.FID != inj.NewFID {
			continue
		}
		for _, r := range f.Repairs {
			if r.Op == core.RepairSetID && r.NewID == inj.VictimFID {
				ok = true
			}
		}
	}
	if !ok {
		t.Fatalf("file id restore missing; findings: %v", describe(res))
	}
}

// TestFig7AllScenariosNoFalsePositiveStorm: each scenario should produce
// a focused report, not flag the whole tree.
func TestFig7AllScenariosNoFalsePositiveStorm(t *testing.T) {
	for s := inject.Scenario(0); s < inject.NumScenarios; s++ {
		_, _, res := runScenario(t, s)
		actionable := 0
		for _, f := range res.Findings {
			if f.Kind != Ambiguous && f.Kind != ParseDamage {
				actionable++
			}
		}
		if actionable == 0 {
			t.Errorf("%v: nothing detected", s)
		}
		if actionable > 6 {
			t.Errorf("%v: %d findings — false-positive storm? %v", s, actionable, describe(res))
		}
	}
}

func describe(res *Result) []string {
	var out []string
	for _, f := range res.Findings {
		out = append(out, fmt.Sprintf("%v %v: %s (repairs %v)", f.Kind, f.FID, f.Detail, f.Repairs))
	}
	return out
}
