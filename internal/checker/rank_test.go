package checker

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"faultyrank/internal/core"
	"faultyrank/internal/inject"
)

// rankEqualBitwise demands bit-identical rank vectors — the partitioned
// path's exactness contract, checked at the findings level elsewhere.
func rankEqualBitwise(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	if len(got.IDRank) != len(want.IDRank) {
		t.Fatalf("%s: rank length %d want %d", label, len(got.IDRank), len(want.IDRank))
	}
	for i := range got.IDRank {
		if math.Float64bits(got.IDRank[i]) != math.Float64bits(want.IDRank[i]) ||
			math.Float64bits(got.PropRank[i]) != math.Float64bits(want.PropRank[i]) {
			t.Fatalf("%s: rank %d diverges from single-process kernel", label, i)
		}
	}
	if got.Iterations != want.Iterations || got.Converged != want.Converged {
		t.Fatalf("%s: iterations %d/%v want %d/%v", label, got.Iterations, got.Converged, want.Iterations, want.Converged)
	}
}

// TestRankWorkersFindingsIdentical: for K ∈ {1,2,3,8} on both the
// in-process and TCP paths, a partitioned run of a faulty cluster must
// produce findings byte-identical to the single-process run and rank
// scores that are exactly (bitwise) equal — and the K=1 case must stay
// on the legacy kernel (no exchange, no rank manifest).
func TestRankWorkersFindingsIdentical(t *testing.T) {
	c := fig7Cluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, fig7Target); err != nil {
		t.Fatal(err)
	}
	images := ClusterImages(c)

	base, err := Run(images, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Findings) == 0 {
		t.Fatal("baseline run found nothing; the equivalence check would be vacuous")
	}

	for _, useTCP := range []bool{false, true} {
		for _, k := range []int{1, 2, 3, 8} {
			label := fmt.Sprintf("in-process/k=%d", k)
			if useTCP {
				label = fmt.Sprintf("tcp/k=%d", k)
			}

			opt := DefaultOptions()
			opt.UseTCP = useTCP
			opt.RankWorkers = k
			opt.OpTimeout = 10 * time.Second
			res, err := Run(images, opt)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}

			rankEqualBitwise(t, label, res.Rank, base.Rank)
			if !reflect.DeepEqual(res.Findings, base.Findings) {
				t.Fatalf("%s: findings diverge from single-process run", label)
			}

			if k <= 1 {
				// The degenerate case stays on the legacy kernel.
				if res.RankExec != nil {
					t.Fatalf("%s: rank manifest on the single-kernel path: %+v", label, res.RankExec)
				}
				continue
			}
			man := res.RankExec
			if man == nil {
				t.Fatalf("%s: no rank manifest", label)
			}
			if man.Partitions != k || len(man.Parts) != k {
				t.Fatalf("%s: manifest partitions %d/%d", label, man.Partitions, len(man.Parts))
			}
			wantTransport := "in-process"
			if useTCP {
				wantTransport = "tcp"
			}
			if man.Transport != wantTransport {
				t.Fatalf("%s: transport %q", label, man.Transport)
			}
			if man.Supersteps != res.Rank.Iterations || len(man.Steps) != man.Supersteps {
				t.Fatalf("%s: %d supersteps / %d steps for %d iterations", label, man.Supersteps, len(man.Steps), res.Rank.Iterations)
			}
			if man.UpBytes <= 0 || man.DownBytes <= 0 {
				t.Fatalf("%s: empty exchange accounting: %+v", label, man)
			}
			if man.Fallback != "" {
				t.Fatalf("%s: unexpected fallback %q", label, man.Fallback)
			}
			locals := 0
			for _, p := range man.Parts {
				locals += p.Locals
			}
			if locals != res.Graph.N() {
				t.Fatalf("%s: partitions own %d of %d vertices", label, locals, res.Graph.N())
			}
			if res.Cluster == nil || res.Cluster.Rank != man {
				t.Fatalf("%s: rank manifest not folded into the cluster manifest", label)
			}
			if got := res.Metrics.Counter("rank_supersteps_total"); got != int64(man.Supersteps) {
				t.Fatalf("%s: rank_supersteps_total=%d want %d", label, got, man.Supersteps)
			}
			if got := res.Metrics.Counter("rank_exchange_bytes_total"); got != man.UpBytes+man.DownBytes {
				t.Fatalf("%s: rank_exchange_bytes_total=%d want %d", label, got, man.UpBytes+man.DownBytes)
			}
		}
	}
}

// crashOptions configures a partitioned TCP run with rank worker 1
// dying mid-superstep (after its first UpA — the crash lands between
// the two phases of an iteration).
func crashOptions(allowDegraded bool) Options {
	opt := DefaultOptions()
	opt.UseTCP = true
	opt.RankWorkers = 3
	opt.OpTimeout = 5 * time.Second
	opt.AllowDegraded = allowDegraded
	opt.RankFaults = map[int]*inject.RankFault{1: {CrashAfterUps: 1}}
	return opt
}

// TestRankWorkerCrashTCPDegraded: a rank worker crashing mid-superstep
// on the TCP path must degrade — promptly, never hanging the barrier —
// into the single-process fallback, with the manifest naming the lost
// partition and the findings identical to an undisturbed run.
func TestRankWorkerCrashTCPDegraded(t *testing.T) {
	ctx, cancel := testCtx(t)
	defer cancel()

	c := fig7Cluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, fig7Target); err != nil {
		t.Fatal(err)
	}
	images := ClusterImages(c)

	base, err := Run(images, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunContext(ctx, images, crashOptions(true))
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	man := res.RankExec
	if man == nil || man.Fallback == "" {
		t.Fatalf("no fallback recorded: %+v", man)
	}
	if !strings.Contains(man.Fallback, "rank partition 1") {
		t.Fatalf("fallback does not name the lost partition: %q", man.Fallback)
	}
	rankEqualBitwise(t, "degraded", res.Rank, base.Rank)
	if !reflect.DeepEqual(res.Findings, base.Findings) {
		t.Fatal("degraded findings diverge from the undisturbed run")
	}
	if res.Cluster == nil || res.Cluster.Rank == nil || res.Cluster.Rank.Fallback == "" {
		t.Fatal("cluster manifest missing the degraded rank section")
	}
}

// TestRankWorkerCrashStrictFails: without AllowDegraded the same crash
// must fail the run with a PartError naming partition 1 — and still
// return promptly.
func TestRankWorkerCrashStrictFails(t *testing.T) {
	ctx, cancel := testCtx(t)
	defer cancel()

	c := fig7Cluster(t)
	images := ClusterImages(c)

	_, err := RunContext(ctx, images, crashOptions(false))
	if err == nil {
		t.Fatal("strict run completed despite a dead rank worker")
	}
	var pe *core.PartError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not attribute a partition: %v", err)
	}
	if pe.Part != 1 {
		t.Fatalf("error names partition %d, want 1: %v", pe.Part, err)
	}
}

// TestRankWorkerCrashInProcessDegraded: the same failure model holds on
// channel links — a dead worker tears its pair down and the run
// degrades with the partition named.
func TestRankWorkerCrashInProcessDegraded(t *testing.T) {
	c := fig7Cluster(t)
	images := ClusterImages(c)

	base, err := Run(images, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	opt := crashOptions(true)
	opt.UseTCP = false
	res, err := Run(images, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.RankExec == nil || !strings.Contains(res.RankExec.Fallback, "rank partition 1") {
		t.Fatalf("fallback missing or anonymous: %+v", res.RankExec)
	}
	rankEqualBitwise(t, "in-process degraded", res.Rank, base.Rank)
}

// TestRankDialFaultNamesPartition is the regression test for the
// dropped-dial-error bug: a worker that cannot even reach the exchange
// used to surface as a generic accept/context error with the root cause
// lost. The strict run must now fail with a PartError naming the
// faulted partition and wrapping the dial error itself.
func TestRankDialFaultNamesPartition(t *testing.T) {
	ctx, cancel := testCtx(t)
	defer cancel()

	c := fig7Cluster(t)
	images := ClusterImages(c)

	opt := crashOptions(false)
	opt.RankFaults = map[int]*inject.RankFault{2: {FailDial: true}}

	_, err := RunContext(ctx, images, opt)
	if err == nil {
		t.Fatal("strict run completed despite a worker that never dialed")
	}
	var pe *core.PartError
	if !errors.As(err, &pe) {
		t.Fatalf("dial failure does not attribute a partition: %v", err)
	}
	if pe.Part != 2 {
		t.Fatalf("error names partition %d, want 2: %v", pe.Part, err)
	}
	if !errors.Is(err, inject.ErrRankDialFault) {
		t.Fatalf("root dial cause lost from the error chain: %v", err)
	}
}

// TestRankDialFaultDegraded: the same dial failure with AllowDegraded
// falls back to the single-process kernel, names the partition in the
// manifest, and matches the undisturbed findings.
func TestRankDialFaultDegraded(t *testing.T) {
	ctx, cancel := testCtx(t)
	defer cancel()

	c := fig7Cluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, fig7Target); err != nil {
		t.Fatal(err)
	}
	images := ClusterImages(c)

	base, err := Run(images, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	opt := crashOptions(true)
	opt.RankFaults = map[int]*inject.RankFault{2: {FailDial: true}}
	res, err := RunContext(ctx, images, opt)
	if err != nil {
		t.Fatalf("degraded run failed outright: %v", err)
	}
	man := res.RankExec
	if man == nil || !strings.Contains(man.Fallback, "rank partition 2") {
		t.Fatalf("fallback missing or anonymous: %+v", man)
	}
	rankEqualBitwise(t, "dial-fault degraded", res.Rank, base.Rank)
	if !reflect.DeepEqual(res.Findings, base.Findings) {
		t.Fatal("degraded findings diverge from the undisturbed run")
	}
}

// TestRankRemoteNoWorker: in remote mode (externally-launched frrankd
// processes) a worker that never arrives must fail the handshake within
// the op timeout — strict runs error, degraded runs fall back with the
// manifest recording both the remote topology and the fallback.
func TestRankRemoteNoWorker(t *testing.T) {
	ctx, cancel := testCtx(t)
	defer cancel()

	c := fig7Cluster(t)
	images := ClusterImages(c)

	base, err := Run(images, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	opt := DefaultOptions()
	opt.RankWorkers = 2
	opt.RankRemote = true
	opt.OpTimeout = 300 * time.Millisecond

	start := time.Now()
	if _, err := RunContext(ctx, images, opt); err == nil {
		t.Fatal("strict remote run completed with no workers")
	} else if !strings.Contains(err.Error(), "handshake") {
		t.Fatalf("missing-worker failure is not a handshake error: %v", err)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("missing worker stalled the run for %v", waited)
	}

	opt.AllowDegraded = true
	res, err := RunContext(ctx, images, opt)
	if err != nil {
		t.Fatalf("degraded remote run failed outright: %v", err)
	}
	man := res.RankExec
	if man == nil || man.Fallback == "" {
		t.Fatalf("no fallback recorded: %+v", man)
	}
	if !man.Remote || man.Transport != "tcp" {
		t.Fatalf("manifest does not record the remote topology: %+v", man)
	}
	rankEqualBitwise(t, "remote degraded", res.Rank, base.Rank)
}

// TestRankListenBind is the checker-level regression test for the
// hardcoded-localhost-listen bug: an explicit RankListen address must
// actually be used for the exchange (forcing the TCP rank path even on
// an in-process scan) and change nothing about the results.
func TestRankListenBind(t *testing.T) {
	c := fig7Cluster(t)
	if _, err := inject.Inject(c, inject.DanglingObjectID, fig7Target); err != nil {
		t.Fatal(err)
	}
	images := ClusterImages(c)

	base, err := Run(images, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	opt := DefaultOptions()
	opt.RankWorkers = 3
	opt.RankListen = "127.0.0.1:0"
	opt.OpTimeout = 10 * time.Second
	res, err := Run(images, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.RankExec == nil || res.RankExec.Transport != "tcp" {
		t.Fatalf("explicit rank bind did not force the TCP rank path: %+v", res.RankExec)
	}
	rankEqualBitwise(t, "rank-listen", res.Rank, base.Rank)
	if !reflect.DeepEqual(res.Findings, base.Findings) {
		t.Fatal("findings diverge under an explicit rank bind")
	}
}
