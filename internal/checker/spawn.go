package checker

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"faultyrank/internal/graph"
)

// Spawned rank workers: with Options.RankSpawn the checker execs one
// frrankd process per partition against its own exchange — real process
// separation on one host, the CI-checkable step toward workers on other
// hosts. Each process receives the kernel knobs the worker side of the
// superstep protocol actually reads (workers, smoothing, unpaired
// weight, leaky distribution) so its arithmetic is the coordinator's
// arithmetic, and dials back with a no-shard Hello; the coordinator
// ships the shard over the link.

// rankProc is one exec'd frrankd worker.
type rankProc struct {
	part   int
	cmd    *exec.Cmd
	stderr bytes.Buffer
	done   chan struct{}
	err    error
}

// spawnedWorkers tracks the exec'd cohort until finish.
type spawnedWorkers struct {
	procs []*rankProc
}

// spawnRankWorkers launches opt.RankSpawn once per partition. Processes
// that exit with an error report it — wrapped with their partition and
// their stderr tail — through recordErr, so a worker that dies before
// the handshake surfaces as its own failure rather than a bare accept
// timeout. On a start failure the already-started processes are killed
// and reaped before returning.
func spawnRankWorkers(opt Options, plan *graph.Plan, addr string, workers int, recordErr func(int, error)) (*spawnedWorkers, error) {
	s := &spawnedWorkers{}
	for p := 0; p < plan.K; p++ {
		args := []string{
			"-connect", addr,
			"-part", fmt.Sprintf("%d", p),
			"-workers", fmt.Sprintf("%d", workers),
			"-op-timeout", opt.handshakeTimeout().String(),
			"-unpaired-weight", fmt.Sprintf("%g", opt.Core.UnpairedWeight),
			"-smoothing", fmt.Sprintf("%g", opt.Core.Smoothing),
		}
		if opt.Core.LeakyDistribution {
			args = append(args, "-leaky")
		}
		// The injected-crash hook crosses the process boundary as a flag,
		// so fault campaigns drive spawned workers exactly like link-
		// wrapped goroutines.
		if f := opt.RankFaults[p]; f != nil {
			args = append(args, "-fail-after-ups", fmt.Sprintf("%d", f.CrashAfterUps))
		}
		proc := &rankProc{part: p, done: make(chan struct{})}
		proc.cmd = exec.Command(opt.RankSpawn, args...)
		proc.cmd.Stderr = &proc.stderr
		proc.cmd.Stdout = os.Stdout
		if err := proc.cmd.Start(); err != nil {
			err = fmt.Errorf("checker: spawning rank worker %d (%s): %w", p, opt.RankSpawn, err)
			s.kill()
			s.finish(time.Second)
			return nil, err
		}
		s.procs = append(s.procs, proc)
		go func(proc *rankProc) {
			defer close(proc.done)
			proc.err = proc.cmd.Wait()
			if proc.err != nil {
				msg := strings.TrimSpace(proc.stderr.String())
				if msg == "" {
					msg = proc.err.Error()
				}
				recordErr(proc.part, fmt.Errorf("frrankd worker exited: %s", msg))
			}
		}(proc)
	}
	return s, nil
}

// kill force-terminates every started process (error-path cleanup).
func (s *spawnedWorkers) kill() {
	for _, proc := range s.procs {
		if proc.cmd.Process != nil {
			_ = proc.cmd.Process.Kill()
		}
	}
}

// finish reaps the cohort — waiting up to grace for each process to
// exit on its own (the closed exchange ends them within their op
// timeout), then killing stragglers — and returns each partition's peak
// resident set in bytes (0 where the platform exposes none).
func (s *spawnedWorkers) finish(grace time.Duration) []int64 {
	rss := make([]int64, len(s.procs))
	timer := time.NewTimer(grace)
	defer timer.Stop()
	for i, proc := range s.procs {
		select {
		case <-proc.done:
		case <-timer.C:
			// Grace expired: no straggler is coming back, take the whole
			// cohort down (the timer fires at most once).
			s.kill()
			<-proc.done
		}
		rss[i] = peakRSS(proc.cmd)
	}
	return rss
}
