package checker

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/telemetry"
)

// eightServerCluster simulates the paper's evaluation shape: 1 MDS +
// several OSS, enough files that every OST holds objects.
func eightServerCluster(t testing.TB) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 7, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		dir := fmt.Sprintf("/proj%d", d)
		if err := c.MkdirAll(dir); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 6; f++ {
			if _, err := c.Create(fmt.Sprintf("%s/file%d", dir, f), 7*64<<10); err != nil {
				t.Fatal(err)
			}
		}
	}
	return c
}

// TestClusterManifestTCPEightServers is the tentpole's acceptance run:
// a TCP-path run over 1 MDT + 7 OSTs produces a ClusterManifest with 8
// per-server sections, merged totals equal to an in-process run's
// totals, and a skew section naming the straggler.
func TestClusterManifestTCPEightServers(t *testing.T) {
	t.Parallel()
	ctx, cancel := testCtx(t)
	defer cancel()
	c := eightServerCluster(t)
	images := ClusterImages(c)

	opt := DefaultOptions()
	opt.UseTCP = true
	opt.ChunkSize = 64
	tcpRes, err := RunContext(ctx, images, opt)
	if err != nil {
		t.Fatal(err)
	}
	m := tcpRes.Cluster
	if m == nil || m.Schema != ClusterManifestSchema {
		t.Fatalf("cluster manifest missing or unversioned: %+v", m)
	}
	if len(m.Servers) != 8 {
		t.Fatalf("sections = %d, want 8", len(m.Servers))
	}
	for _, s := range m.Servers {
		if s.Missing {
			t.Fatalf("clean run has missing telemetry for %s", s.Server)
		}
		if s.Frames == 0 || s.Bytes == 0 {
			t.Errorf("server %s shipped no frames/bytes over TCP (%d/%d)", s.Server, s.Frames, s.Bytes)
		}
		if s.ScanSeconds <= 0 {
			t.Errorf("server %s has no scan span duration", s.Server)
		}
	}

	// Per-server sections must sum to the run-wide scan totals, and an
	// in-process run over the same images must agree: the cluster view
	// is the same data no matter which path carried it.
	inpRes, err := RunContext(ctx, images, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"scanner_inodes_scanned_total",
		"scanner_dirents_read_total",
		"scanner_edges_emitted_total",
		"scanner_chunks_released_total",
	} {
		tcpTotal := m.Cluster.Counter(name)
		if tcpTotal == 0 {
			t.Errorf("merged cluster counter %s is zero", name)
		}
		if inp := inpRes.Cluster.Cluster.Counter(name); name != "scanner_chunks_released_total" && tcpTotal != inp {
			t.Errorf("%s: TCP cluster total %d != in-process total %d", name, tcpTotal, inp)
		}
	}
	if got, want := m.Cluster.Counter("scanner_inodes_scanned_total"), tcpRes.Scan.InodesScanned; got != want {
		t.Errorf("merged inodes %d != run-wide ScanStats %d", got, want)
	}
	var perServer int64
	for _, s := range m.Servers {
		perServer += s.InodesScanned
	}
	if perServer != tcpRes.Scan.InodesScanned {
		t.Errorf("per-server inode sum %d != run total %d", perServer, tcpRes.Scan.InodesScanned)
	}

	// Skew must name a straggler that is one of the servers, bounded by
	// its own extremes.
	sk := m.Skew
	if m.Server(sk.Straggler) == nil || m.Server(sk.Fastest) == nil {
		t.Fatalf("skew names unknown servers: %+v", sk)
	}
	if sk.SlowestSeconds < sk.FastestSeconds || sk.MeanSeconds <= 0 || sk.StragglerRatio < 1 {
		t.Errorf("skew not internally consistent: %+v", sk)
	}
	if m.Server(sk.Straggler).ScanSeconds != sk.SlowestSeconds {
		t.Errorf("straggler section disagrees with skew: %+v", sk)
	}

	// The report gains the per-server timeline with attribution.
	var buf bytes.Buffer
	if err := tcpRes.WriteReport(&buf, false); err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	if !strings.Contains(report, "per-server scan timeline:") {
		t.Error("report lacks the timeline section")
	}
	if !strings.Contains(report, "straggler: "+sk.Straggler) {
		t.Errorf("report does not attribute the straggler %q:\n%s", sk.Straggler, report)
	}

	// Merging the shipped snapshots in any order reproduces the manifest
	// totals byte-identically (the merge-law acceptance check, on real
	// wire-shipped data).
	snaps := make([]telemetry.Snapshot, 0, len(m.Servers))
	for _, s := range m.Servers {
		snaps = append(snaps, s.Snapshot)
	}
	want := telemetry.EncodeSnapshot(m.Cluster)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(snaps))
		shuffled := make([]telemetry.Snapshot, len(snaps))
		for i, p := range perm {
			shuffled[i] = snaps[p]
		}
		if got := telemetry.EncodeSnapshot(telemetry.MergeSnapshots(shuffled...)); !bytes.Equal(got, want) {
			t.Fatalf("cluster merge is order-sensitive (perm %v)", perm)
		}
	}
}

// TestClusterManifestDegradedPartial: a crash-mid-stream fault yields a
// partial manifest — the victim becomes a missing-telemetry entry, the
// run does not fail, and the deterministic parts of the manifest agree
// across identical runs.
func TestClusterManifestDegradedPartial(t *testing.T) {
	t.Parallel()
	ctx, cancel := testCtx(t)
	defer cancel()
	c := fig7Cluster(t)
	images := ClusterImages(c)
	victim := images[len(images)-1].Label()
	fault := inject.NetFault{Scenario: inject.NetCrashMidStream, AfterChunks: 1}

	run := func() *ClusterManifest {
		res, err := RunContext(ctx, images, degradedOptions(victim, &fault))
		if err != nil {
			t.Fatalf("degraded run failed: %v", err)
		}
		if res.Cluster == nil {
			t.Fatal("degraded run produced no cluster manifest")
		}
		return res.Cluster
	}
	m := run()
	if len(m.Servers) != len(images) {
		t.Fatalf("sections = %d, want %d", len(m.Servers), len(images))
	}
	vs := m.Server(victim)
	if vs == nil || !vs.Missing {
		t.Fatalf("victim %s not marked missing: %+v", victim, vs)
	}
	if !reflect.DeepEqual(m.Skew.MissingTelemetry, []string{victim}) {
		t.Fatalf("missing telemetry = %v, want [%s]", m.Skew.MissingTelemetry, victim)
	}
	for _, s := range m.Servers {
		if s.Server != victim && s.Missing {
			t.Errorf("surviving server %s marked missing", s.Server)
		}
	}
	if m.Skew.Straggler == victim || m.Skew.Straggler == "" {
		t.Errorf("straggler attribution broken under degradation: %+v", m.Skew)
	}

	// Determinism: the structural content — sections, missing set, and
	// every merged counter (integer totals) — cannot depend on failure
	// timing. (Durations and float sums legitimately vary per run.)
	m2 := run()
	if !reflect.DeepEqual(m.Cluster.Counters, m2.Cluster.Counters) {
		t.Errorf("merged cluster counters diverge:\n%+v\n%+v", m.Cluster.Counters, m2.Cluster.Counters)
	}
	if !reflect.DeepEqual(m.Skew.MissingTelemetry, m2.Skew.MissingTelemetry) {
		t.Errorf("missing sets diverge: %v vs %v", m.Skew.MissingTelemetry, m2.Skew.MissingTelemetry)
	}
	for i := range m.Servers {
		a, b := m.Servers[i], m2.Servers[i]
		if a.Server != b.Server || a.Missing != b.Missing ||
			a.InodesScanned != b.InodesScanned || a.Frames != b.Frames || a.Bytes != b.Bytes {
			t.Errorf("section %d diverges:\n%+v\n%+v", i, a, b)
		}
	}
}

// TestClusterManifestInProcess: the in-process path builds the same
// per-server shape (no frames, but full scan counters and spans), so
// cluster observability does not depend on deployment mode.
func TestClusterManifestInProcess(t *testing.T) {
	t.Parallel()
	c := fig7Cluster(t)
	res, err := Run(ClusterImages(c), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Cluster
	if m == nil || len(m.Servers) != len(ClusterImages(c)) {
		t.Fatalf("in-process cluster manifest wrong shape: %+v", m)
	}
	for _, s := range m.Servers {
		if s.Missing {
			t.Errorf("in-process server %s missing", s.Server)
		}
		if s.Span == nil || !strings.HasPrefix(s.Span.Name, "scan:") {
			t.Errorf("server %s span absent or unnamed: %+v", s.Server, s.Span)
		}
	}
	if got, want := m.Cluster.Counter("scanner_inodes_scanned_total"), res.Scan.InodesScanned; got != want {
		t.Errorf("merged inodes %d != ScanStats %d", got, want)
	}
}
