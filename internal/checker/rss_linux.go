//go:build linux

package checker

import (
	"os/exec"
	"syscall"
)

// peakRSS reads a finished child's peak resident set from the wait4
// rusage. Linux reports ru_maxrss in KiB.
func peakRSS(cmd *exec.Cmd) int64 {
	if cmd.ProcessState == nil {
		return 0
	}
	if ru, ok := cmd.ProcessState.SysUsage().(*syscall.Rusage); ok && ru != nil {
		return ru.Maxrss << 10
	}
	return 0
}
