package scanner

import (
	"testing"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// TestScanInodeSingle: the incremental entry point parses exactly one
// inode and matches the corresponding slice of a full scan.
func TestScanInodeSingle(t *testing.T) {
	c := buildCluster(t)
	ent, err := c.Stat("/proj/data/f3")
	if err != nil {
		t.Fatal(err)
	}
	p, err := ScanInode(c.MDT.Img, ent.Ino)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Objects) != 1 || p.Objects[0].FID != ent.FID {
		t.Fatalf("objects: %+v", p.Objects)
	}
	if p.Stats.InodesScanned != 1 {
		t.Errorf("stats: %+v", p.Stats)
	}
	// One LinkEA edge + LOVEA edges, nothing else.
	var linkea, lovea int
	for _, e := range p.Edges {
		switch e.Kind {
		case graph.KindLinkEA:
			linkea++
		case graph.KindLOVEA:
			lovea++
		default:
			t.Errorf("unexpected edge kind %v", e.Kind)
		}
	}
	if linkea != 1 || lovea == 0 {
		t.Errorf("edges: linkea=%d lovea=%d", linkea, lovea)
	}
}

func TestScanInodeFreeSlot(t *testing.T) {
	c := buildCluster(t)
	ent, _ := c.Stat("/proj/data/f1")
	if err := c.Unlink("/proj/data/f1"); err != nil {
		t.Fatal(err)
	}
	p, err := ScanInode(c.MDT.Img, ent.Ino)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Objects) != 0 || len(p.Edges) != 0 || p.Stats.InodesScanned != 0 {
		t.Fatalf("freed inode contributed: %+v", p)
	}
	if _, err := ScanInode(c.MDT.Img, ldiskfs.Ino(1<<40)); err == nil {
		t.Error("out-of-range inode accepted")
	}
}

func TestIssueString(t *testing.T) {
	is := Issue{Ino: 7, What: "corrupt LMA"}
	if is.String() != "ino 7: corrupt LMA" {
		t.Errorf("got %q", is.String())
	}
	_ = lustre.FID{} // keep import for helper reuse
}
