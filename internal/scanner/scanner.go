// Package scanner extracts Lustre metadata from raw ldiskfs-style server
// images into partial graphs (paper §IV-A). A scanner runs once per
// server (MDT and every OST), sweeping the image's block groups: it
// iterates the inode table, parses extended attributes (LMA, LinkEA,
// LOVEA, filter-fid) and, on directories, hops to the dirent blocks.
// The output is an edge list keyed by cluster-unique FIDs plus the list
// of physically present objects, which the aggregator later merges into
// the unified metadata graph.
package scanner

import (
	"fmt"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// FIDEdge is a point-to relation between two FIDs, before GID remapping.
type FIDEdge struct {
	Src, Dst lustre.FID
	Kind     graph.EdgeKind
}

// Object records one physically scanned object: an allocated inode that
// carries (or should carry) an identity.
type Object struct {
	FID  lustre.FID
	Ino  ldiskfs.Ino
	Type ldiskfs.FileType
}

// Issue is a structural problem found while parsing the image — damaged
// EAs, unidentifiable inodes, malformed dirents. These are not rank-based
// findings; they are raw parse facts the checker folds into its report.
type Issue struct {
	Ino  ldiskfs.Ino
	What string
}

func (i Issue) String() string { return fmt.Sprintf("ino %d: %s", i.Ino, i.What) }

// Stats counts the scanner's work.
type Stats struct {
	InodesScanned int64
	DirentsRead   int64
	EdgesEmitted  int64
}

// Partial is the scan result of one server: the partial metadata graph
// the paper's scanners ship to the MDS aggregator.
type Partial struct {
	ServerLabel string
	Objects     []Object
	Edges       []FIDEdge
	Issues      []Issue
	Stats       Stats
}

// Scan opens a serialized image and extracts its partial graph, sharding
// the block-group sweep across workers (<=0 = GOMAXPROCS).
func Scan(raw []byte, workers int) (*Partial, error) {
	img, err := ldiskfs.FromBytes(raw)
	if err != nil {
		return nil, err
	}
	return ScanImage(img, workers)
}

// ScanImage extracts the partial graph of one server image: a compat
// wrapper reassembling the streaming scanner's chunk sequence (released
// in group order, so the result is deterministic independent of worker
// interleaving) into one bulk Partial.
func ScanImage(img *ldiskfs.Image, workers int) (*Partial, error) {
	var ps PartialSink
	if err := ScanImageToSink(img, workers, 0, &ps); err != nil {
		return nil, err
	}
	out := ps.Partial()
	if out.ServerLabel == "" {
		out.ServerLabel = img.Label()
	}
	return out, nil
}

// scanGroup sweeps one block group's inode table.
func scanGroup(img *ldiskfs.Image, g int, p *Partial) error {
	return img.AllocatedInodesInGroup(g, func(ino ldiskfs.Ino, t ldiskfs.FileType) error {
		p.Stats.InodesScanned++
		scanInode(img, ino, t, p)
		return nil
	})
}

// ScanInode parses one inode's EAs (and dirents, for directories) into
// a fresh single-inode partial: the incremental entry point the online
// checker uses to consume a change feed one inode at a time.
func ScanInode(img *ldiskfs.Image, ino ldiskfs.Ino) (*Partial, error) {
	t, err := img.Type(ino)
	if err != nil {
		return nil, err
	}
	p := &Partial{ServerLabel: img.Label()}
	if t == ldiskfs.TypeFree {
		return p, nil // deallocated: contributes nothing
	}
	p.Stats.InodesScanned = 1
	scanInode(img, ino, t, p)
	return p, nil
}

// scanInode parses one inode's EAs (and dirents for directories) and
// emits the corresponding objects and FID edges.
func scanInode(img *ldiskfs.Image, ino ldiskfs.Ino, t ldiskfs.FileType, p *Partial) {
	xs, err := img.Xattrs(ino)
	if err != nil {
		p.Issues = append(p.Issues, Issue{Ino: ino, What: fmt.Sprintf("unreadable EAs: %v", err)})
		xs = nil
	}

	// Identity: the LMA self-FID.
	var self lustre.FID
	if raw, ok := xs[lustre.XattrLMA]; ok {
		if fid, err := lustre.DecodeLMA(raw); err == nil && !fid.IsZero() {
			self = fid
		} else {
			p.Issues = append(p.Issues, Issue{Ino: ino, What: "corrupt LMA"})
		}
	} else if xs != nil {
		p.Issues = append(p.Issues, Issue{Ino: ino, What: "missing LMA"})
	}
	if self.IsZero() {
		// Without an identity the object cannot participate in the FID
		// graph; record it and move on (LFSCK's oi_scrub territory).
		return
	}
	p.Objects = append(p.Objects, Object{FID: self, Ino: ino, Type: t})

	emit := func(dst lustre.FID, kind graph.EdgeKind) {
		if dst.IsZero() {
			p.Issues = append(p.Issues, Issue{Ino: ino, What: fmt.Sprintf("zero FID in %v", kind)})
			return
		}
		p.Edges = append(p.Edges, FIDEdge{Src: self, Dst: dst, Kind: kind})
		p.Stats.EdgesEmitted++
	}

	// LinkEA: point-backs to parents (namespace).
	if raw, ok := xs[lustre.XattrLink]; ok {
		if links, err := lustre.DecodeLinkEA(raw); err == nil {
			for _, l := range links {
				emit(l.Parent, graph.KindLinkEA)
			}
		} else {
			p.Issues = append(p.Issues, Issue{Ino: ino, What: "corrupt LinkEA"})
		}
	}

	// LOVEA: layout pointers to stripe objects. A zero object FID is a
	// released stripe slot (kept so later stripes keep their indices),
	// not corruption.
	if raw, ok := xs[lustre.XattrLOV]; ok {
		if layout, err := lustre.DecodeLOVEA(raw); err == nil {
			for _, s := range layout.Stripes {
				if s.ObjectFID.IsZero() {
					continue
				}
				emit(s.ObjectFID, graph.KindLOVEA)
			}
		} else {
			p.Issues = append(p.Issues, Issue{Ino: ino, What: "corrupt LOVEA"})
		}
	}

	// filter-fid: layout point-back to the owning file.
	if raw, ok := xs[lustre.XattrFilterFID]; ok {
		if ff, err := lustre.DecodeFilterFID(raw); err == nil {
			emit(ff.ParentFID, graph.KindFilterFID)
		} else {
			p.Issues = append(p.Issues, Issue{Ino: ino, What: "corrupt filter-fid"})
		}
	}

	// Directory entries: namespace pointers to children, read from the
	// directory's data blocks (the scanner's only non-sequential hop).
	if t == ldiskfs.TypeDir {
		ents, err := img.Dirents(ino)
		if err != nil {
			p.Issues = append(p.Issues, Issue{Ino: ino, What: fmt.Sprintf("dirent damage: %v", err)})
		}
		for _, de := range ents {
			p.Stats.DirentsRead++
			emit(lustre.FIDFromBytes(de.Tag[:]), graph.KindDirent)
		}
	}
}
