package scanner

import "faultyrank/internal/telemetry"

// Instr is the scanner's instrumentation: run-wide counters shared by
// every concurrent per-server scan. Counters are registry-backed and
// nil-safe, so a nil *Instr (or one built from a nil registry) keeps
// the scan path observation-free at the cost of one branch per block
// group — never per inode: the scan batches each group's tallies into
// one atomic add per counter when the group is released, which is what
// keeps instrumentation overhead within the ingest benchmark's budget.
type Instr struct {
	// InodesScanned counts allocated inodes swept across all servers.
	InodesScanned *telemetry.Counter
	// DirentsRead counts directory entries parsed.
	DirentsRead *telemetry.Counter
	// EdgesEmitted counts FID edges produced.
	EdgesEmitted *telemetry.Counter
	// ParseIssues counts structural damage found while parsing (corrupt
	// or missing EAs, dirent damage — the report's parse-damage feed).
	ParseIssues *telemetry.Counter
	// ChunksReleased counts chunks flushed downstream (the ordered
	// releases that overlap transfer with the sweep).
	ChunksReleased *telemetry.Counter

	// chunkEvents, when attached, journals a sampled chunk-lifecycle
	// event (no attributes — attribute slices would allocate on every
	// call, sampled out or not, and the scan path has an overhead
	// budget). Nil when no journal is attached.
	chunkEvents *telemetry.Sampler
}

// NewInstr resolves the scanner's counters from reg (nil reg → no-op
// instruments).
func NewInstr(reg *telemetry.Registry) *Instr {
	return &Instr{
		InodesScanned:  reg.Counter("scanner_inodes_scanned_total"),
		DirentsRead:    reg.Counter("scanner_dirents_read_total"),
		EdgesEmitted:   reg.Counter("scanner_edges_emitted_total"),
		ParseIssues:    reg.Counter("scanner_parse_issues_total"),
		ChunksReleased: reg.Counter("scanner_chunks_released_total"),
	}
}

// group batches one released block group's tallies into the counters.
func (in *Instr) group(p *Partial) {
	if in == nil {
		return
	}
	in.InodesScanned.Add(p.Stats.InodesScanned)
	in.DirentsRead.Add(p.Stats.DirentsRead)
	in.EdgesEmitted.Add(p.Stats.EdgesEmitted)
	in.ParseIssues.Add(int64(len(p.Issues)))
}

// AttachJournal points the scanner's chunk-lifecycle events at j,
// recording one "chunk-released" event per every chunks flushed (<1 →
// every chunk). Nil j (or nil in) detaches — the scan stays journal-free.
func (in *Instr) AttachJournal(j *telemetry.Journal, every int) {
	if in == nil {
		return
	}
	in.chunkEvents = j.Sampler(every)
}

// chunk records one flushed chunk.
func (in *Instr) chunk() {
	if in == nil {
		return
	}
	in.ChunksReleased.Inc()
	in.chunkEvents.Record("scanner", "chunk-released")
}
