package scanner

import (
	"context"
	"fmt"

	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/par"
)

// DefaultChunkEntries is the default bound on a chunk's total entry
// count (objects + edges + issues). Large enough to amortise framing,
// small enough that aggregation and transfer overlap the scan instead
// of waiting for a whole server's partial graph.
const DefaultChunkEntries = 8192

// Chunk is one bounded batch of scan output. A server's scan emits an
// ordered sequence of chunks (Seq 0, 1, ...) ending with exactly one
// Final chunk; concatenating the sequence reproduces the server's
// Partial byte for byte, because chunks are released in block-group
// order regardless of how the group sweep was parallelised.
type Chunk struct {
	ServerLabel string
	// Seq is the chunk's position in the server's stream.
	Seq int
	// Final marks the stream's last chunk (possibly empty).
	Final bool

	Objects []Object
	Edges   []FIDEdge
	Issues  []Issue
	// Stats holds this chunk's deltas; summing over a stream yields the
	// server's scan totals.
	Stats Stats
}

// Entries returns the chunk's total entry count.
func (c *Chunk) Entries() int { return len(c.Objects) + len(c.Edges) + len(c.Issues) }

// Sink consumes a scan's chunk stream. Emit is called sequentially per
// server stream; a sink shared by several concurrent scans must
// serialise internally (agg.Builder does).
type Sink interface {
	Emit(*Chunk) error
}

// PartialSink reassembles a chunk stream into one Partial — the compat
// path that keeps Scan/ScanImage's bulk interface on top of the
// streaming scanner.
type PartialSink struct {
	p Partial
}

// Emit appends one chunk.
func (s *PartialSink) Emit(c *Chunk) error {
	if s.p.ServerLabel == "" {
		s.p.ServerLabel = c.ServerLabel
	}
	s.p.Objects = append(s.p.Objects, c.Objects...)
	s.p.Edges = append(s.p.Edges, c.Edges...)
	s.p.Issues = append(s.p.Issues, c.Issues...)
	s.p.Stats.InodesScanned += c.Stats.InodesScanned
	s.p.Stats.DirentsRead += c.Stats.DirentsRead
	s.p.Stats.EdgesEmitted += c.Stats.EdgesEmitted
	return nil
}

// Partial returns the accumulated partial graph.
func (s *PartialSink) Partial() *Partial { return &s.p }

// chunkEmitter batches scan output into bounded chunks.
type chunkEmitter struct {
	label string
	sink  Sink
	limit int
	seq   int
	cur   Chunk
	ins   []*Instr
}

func newChunkEmitter(label string, limit int, sink Sink, ins []*Instr) *chunkEmitter {
	if limit <= 0 {
		limit = DefaultChunkEntries
	}
	return &chunkEmitter{label: label, sink: sink, limit: limit, ins: ins}
}

func (e *chunkEmitter) flush(final bool) error {
	c := e.cur
	c.ServerLabel = e.label
	c.Seq = e.seq
	c.Final = final
	e.seq++
	e.cur = Chunk{}
	for _, in := range e.ins {
		in.chunk()
	}
	return e.sink.Emit(&c)
}

func (e *chunkEmitter) maybeFlush() error {
	if e.cur.Entries() >= e.limit {
		return e.flush(false)
	}
	return nil
}

// add appends one group's scan output, splitting at chunk boundaries.
func (e *chunkEmitter) add(p *Partial) error {
	for len(p.Objects) > 0 {
		room := e.limit - e.cur.Entries()
		take := len(p.Objects)
		if take > room {
			take = room
		}
		e.cur.Objects = append(e.cur.Objects, p.Objects[:take]...)
		p.Objects = p.Objects[take:]
		if err := e.maybeFlush(); err != nil {
			return err
		}
	}
	for len(p.Edges) > 0 {
		room := e.limit - e.cur.Entries()
		take := len(p.Edges)
		if take > room {
			take = room
		}
		e.cur.Edges = append(e.cur.Edges, p.Edges[:take]...)
		p.Edges = p.Edges[take:]
		if err := e.maybeFlush(); err != nil {
			return err
		}
	}
	for len(p.Issues) > 0 {
		room := e.limit - e.cur.Entries()
		take := len(p.Issues)
		if take > room {
			take = room
		}
		e.cur.Issues = append(e.cur.Issues, p.Issues[:take]...)
		p.Issues = p.Issues[take:]
		if err := e.maybeFlush(); err != nil {
			return err
		}
	}
	// Stats ride on whichever chunk is open when the group lands; the
	// stream total is what matters.
	e.cur.Stats.InodesScanned += p.Stats.InodesScanned
	e.cur.Stats.DirentsRead += p.Stats.DirentsRead
	e.cur.Stats.EdgesEmitted += p.Stats.EdgesEmitted
	return nil
}

// ScanImageToSink sweeps one server image and streams its partial graph
// to sink as bounded chunks. Block groups are scanned in parallel
// (workers <= 0 = GOMAXPROCS) but chunks are released in group order,
// so the stream — and therefore everything downstream, including the
// aggregator's GID space — is deterministic. chunkEntries bounds a
// chunk's entry count (<= 0 = DefaultChunkEntries). Exactly one Final
// chunk ends the stream, even for an empty image.
func ScanImageToSink(img *ldiskfs.Image, workers, chunkEntries int, sink Sink) error {
	return ScanImageToSinkContext(context.Background(), img, workers, chunkEntries, sink)
}

// ScanImageToSinkContext is ScanImageToSink under a context: the scan
// stops emitting at the first group boundary after ctx is done and
// returns ctx.Err(), so a checker deadline cancels an in-flight sweep
// instead of letting it ship chunks nobody will collect.
func ScanImageToSinkContext(ctx context.Context, img *ldiskfs.Image, workers, chunkEntries int, sink Sink) error {
	return ScanImageToSinkInstr(ctx, img, workers, chunkEntries, sink)
}

// ScanImageToSinkInstr is ScanImageToSinkContext with instrumentation:
// each ins's counters (inodes, dirents, edges, parse issues, chunks)
// are updated as groups are released — batched per group, so the
// per-inode sweep stays free of atomics. The cluster path passes two
// instruments, the run-wide one and the per-server set a telemetry
// trailer snapshots; none (or nil entries) observe nothing.
func ScanImageToSinkInstr(ctx context.Context, img *ldiskfs.Image, workers, chunkEntries int, sink Sink, ins ...*Instr) error {
	groups := img.Groups()
	em := newChunkEmitter(img.Label(), chunkEntries, sink, ins)
	if groups == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		return em.flush(true)
	}

	shards := make([]*Partial, groups)
	errs := make([]error, groups)
	ready := make([]chan struct{}, groups)
	for g := range ready {
		ready[g] = make(chan struct{})
	}
	go par.ForRange(groups, workers, func(lo, hi int) {
		for g := lo; g < hi; g++ {
			p := &Partial{}
			errs[g] = scanGroup(img, g, p)
			shards[g] = p
			close(ready[g])
		}
	})

	// Ordered release: groups stream out in index order as they finish,
	// overlapping the sweep with downstream transfer and aggregation.
	var firstErr error
	for g := 0; g < groups; g++ {
		<-ready[g]
		if firstErr != nil {
			continue // drain so the sweep goroutines finish before return
		}
		if err := ctx.Err(); err != nil {
			firstErr = err
			continue
		}
		if errs[g] != nil {
			firstErr = fmt.Errorf("scanner: group %d: %w", g, errs[g])
			continue
		}
		for _, in := range ins {
			in.group(shards[g]) // before add: add consumes the group's slices
		}
		if err := em.add(shards[g]); err != nil {
			firstErr = err
			continue
		}
		shards[g] = nil // release as soon as shipped
	}
	if firstErr != nil {
		return firstErr
	}
	return em.flush(true)
}
