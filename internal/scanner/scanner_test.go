package scanner

import (
	"fmt"
	"testing"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

func buildCluster(t *testing.T) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MkdirAll("/proj/data"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Create(fmt.Sprintf("/proj/data/f%d", i), int64(i)*80<<10); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestScanMDTEmitsNamespaceAndLayout(t *testing.T) {
	c := buildCluster(t)
	p, err := ScanImage(c.MDT.Img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.ServerLabel != "mdt0" {
		t.Errorf("label = %q", p.ServerLabel)
	}
	// Objects: root + proj + data + 6 files = 9.
	if len(p.Objects) != 9 {
		t.Fatalf("objects = %d, want 9", len(p.Objects))
	}
	var dirents, linkeas, loveas int
	for _, e := range p.Edges {
		switch e.Kind {
		case graph.KindDirent:
			dirents++
		case graph.KindLinkEA:
			linkeas++
		case graph.KindLOVEA:
			loveas++
		default:
			t.Errorf("unexpected edge kind %v on MDT", e.Kind)
		}
	}
	// Dirents: root->proj, proj->data, data->6 files = 8.
	if dirents != 8 {
		t.Errorf("dirent edges = %d, want 8", dirents)
	}
	// LinkEAs: every object (incl. root self-link) = 9.
	if linkeas != 9 {
		t.Errorf("linkea edges = %d, want 9", linkeas)
	}
	// LOVEA entries: files of size 0,80K,160K,240K,320K,400K with 64K
	// stripes capped at 4 OSTs -> 1+2+3+4+4+4 = 18.
	if loveas != 18 {
		t.Errorf("lovea edges = %d, want 18", loveas)
	}
	if len(p.Issues) != 0 {
		t.Errorf("unexpected issues: %v", p.Issues)
	}
	if p.Stats.InodesScanned != 9 || p.Stats.DirentsRead != 8 {
		t.Errorf("stats: %+v", p.Stats)
	}
}

func TestScanOSTEmitsFilterFIDs(t *testing.T) {
	c := buildCluster(t)
	var objects, ffEdges int
	for _, ost := range c.OSTs {
		p, err := ScanImage(ost.Img, 2)
		if err != nil {
			t.Fatal(err)
		}
		objects += len(p.Objects)
		for _, e := range p.Edges {
			if e.Kind != graph.KindFilterFID {
				t.Errorf("unexpected kind %v on OST", e.Kind)
			}
			ffEdges++
		}
	}
	if objects != 18 || ffEdges != 18 {
		t.Errorf("objects=%d ffEdges=%d, want 18/18", objects, ffEdges)
	}
}

func TestScanRoundTripPairing(t *testing.T) {
	// A consistent cluster must scan into a fully paired graph (after
	// aggregation every point-to has its point-back).
	c := buildCluster(t)
	var edges []FIDEdge
	for _, img := range c.Images() {
		p, err := ScanImage(img, 0)
		if err != nil {
			t.Fatal(err)
		}
		edges = append(edges, p.Edges...)
	}
	set := make(map[[2]lustre.FID]int)
	for _, e := range edges {
		set[[2]lustre.FID{e.Src, e.Dst}]++
	}
	for pair := range set {
		if set[[2]lustre.FID{pair[1], pair[0]}] == 0 {
			t.Errorf("edge %v -> %v has no reciprocal", pair[0], pair[1])
		}
	}
}

func TestScanDeterministicAcrossWorkers(t *testing.T) {
	c := buildCluster(t)
	base, err := ScanImage(c.MDT.Img, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		p, err := ScanImage(c.MDT.Img, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Edges) != len(base.Edges) || len(p.Objects) != len(base.Objects) {
			t.Fatalf("workers=%d: different counts", w)
		}
		for i := range p.Edges {
			if p.Edges[i] != base.Edges[i] {
				t.Fatalf("workers=%d: edge %d differs", w, i)
			}
		}
	}
}

func TestScanFromBytes(t *testing.T) {
	c := buildCluster(t)
	raw := append([]byte(nil), c.MDT.Img.Bytes()...)
	p, err := Scan(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Objects) != 9 {
		t.Errorf("objects = %d", len(p.Objects))
	}
	if _, err := Scan([]byte("garbage"), 0); err == nil {
		t.Error("garbage image scanned")
	}
}

func TestScanReportsCorruptEAs(t *testing.T) {
	c := buildCluster(t)
	ent, err := c.Stat("/proj/data/f3")
	if err != nil {
		t.Fatal(err)
	}
	img := c.MDT.Img
	// Corrupt the LOVEA magic of one file.
	raw, ok, _ := img.GetXattr(ent.Ino, lustre.XattrLOV)
	if !ok {
		t.Fatal("no LOVEA")
	}
	raw[0] ^= 0xFF
	if err := img.SetXattr(ent.Ino, lustre.XattrLOV, raw); err != nil {
		t.Fatal(err)
	}
	p, err := ScanImage(img, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, is := range p.Issues {
		if is.Ino == ent.Ino {
			found = true
		}
	}
	if !found {
		t.Errorf("corrupt LOVEA not reported: %v", p.Issues)
	}
	// The file still appears as an object (its LMA is intact) but emits
	// no LOVEA edges.
	for _, e := range p.Edges {
		if e.Src == ent.FID && e.Kind == graph.KindLOVEA {
			t.Errorf("edge emitted from corrupt LOVEA")
		}
	}
}

func TestScanSkipsInodesWithoutLMA(t *testing.T) {
	c := buildCluster(t)
	ent, _ := c.Stat("/proj/data/f1")
	if err := c.MDT.Img.RemoveXattr(ent.Ino, lustre.XattrLMA); err != nil {
		t.Fatal(err)
	}
	p, err := ScanImage(c.MDT.Img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Objects) != 8 {
		t.Errorf("objects = %d, want 8", len(p.Objects))
	}
	var reported bool
	for _, is := range p.Issues {
		if is.Ino == ent.Ino {
			reported = true
		}
	}
	if !reported {
		t.Error("missing LMA not reported")
	}
}
