package scanner

import (
	"errors"
	"reflect"
	"testing"
)

// collectSink records every emitted chunk.
type collectSink struct {
	chunks []*Chunk
}

func (s *collectSink) Emit(c *Chunk) error {
	// Copy: the emitter recycles nothing today, but the sink contract
	// should not depend on that.
	cc := *c
	s.chunks = append(s.chunks, &cc)
	return nil
}

func TestScanImageToSinkReassemblesPartial(t *testing.T) {
	c := buildCluster(t)
	want, err := ScanImage(c.MDT.Img, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkSize := range []int{1, 7, 100, DefaultChunkEntries} {
		var sink collectSink
		if err := ScanImageToSink(c.MDT.Img, 0, chunkSize, &sink); err != nil {
			t.Fatal(err)
		}
		var ps PartialSink
		finals := 0
		for i, ch := range sink.chunks {
			if ch.Seq != i {
				t.Fatalf("chunk %d has seq %d", i, ch.Seq)
			}
			if ch.ServerLabel != "mdt0" {
				t.Fatalf("chunk %d label %q", i, ch.ServerLabel)
			}
			if ch.Final {
				finals++
				if i != len(sink.chunks)-1 {
					t.Fatalf("final chunk at %d of %d", i, len(sink.chunks))
				}
			} else if ch.Entries() > chunkSize {
				t.Fatalf("chunkSize %d: non-final chunk holds %d entries", chunkSize, ch.Entries())
			}
			if err := ps.Emit(ch); err != nil {
				t.Fatal(err)
			}
		}
		if finals != 1 {
			t.Fatalf("chunkSize %d: %d final chunks", chunkSize, finals)
		}
		got := ps.Partial()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("chunkSize %d: reassembled partial diverges from bulk scan", chunkSize)
		}
	}
}

func TestScanImageToSinkDeterministicAcrossWorkers(t *testing.T) {
	c := buildCluster(t)
	var ref collectSink
	if err := ScanImageToSink(c.MDT.Img, 1, 64, &ref); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 16} {
		var got collectSink
		if err := ScanImageToSink(c.MDT.Img, w, 64, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref.chunks, got.chunks) {
			t.Fatalf("workers=%d: chunk stream diverges from single-threaded scan", w)
		}
	}
}

// errSink fails the stream after a fixed number of chunks.
type errSink struct {
	after int
	n     int
}

var errSinkBoom = errors.New("sink full")

func (s *errSink) Emit(*Chunk) error {
	s.n++
	if s.n > s.after {
		return errSinkBoom
	}
	return nil
}

func TestScanImageToSinkPropagatesSinkError(t *testing.T) {
	c := buildCluster(t)
	err := ScanImageToSink(c.MDT.Img, 0, 4, &errSink{after: 1})
	if !errors.Is(err, errSinkBoom) {
		t.Fatalf("err = %v, want sink error", err)
	}
}

func TestScanImageToSinkEmptyImageEmitsFinal(t *testing.T) {
	c := buildCluster(t)
	// An OST that never received objects still ends its stream.
	var sink collectSink
	if err := ScanImageToSink(c.OSTs[3].Img, 0, 0, &sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.chunks) == 0 || !sink.chunks[len(sink.chunks)-1].Final {
		t.Fatalf("no final chunk: %d chunks", len(sink.chunks))
	}
}
