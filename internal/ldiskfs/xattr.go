package ldiskfs

import (
	"fmt"
	"sort"
)

// Extended attributes are serialized into the inode's inline EA area
// (bytes [inodeHeaderSize, InodeSize)) or, when they outgrow it, into a
// dedicated overflow block referenced from the inode header — mirroring
// ldiskfs' large-inode in-body EAs with ext4 xattr-block overflow.
//
// Area layout (little-endian):
//
//	u16 count
//	count × { u8 nameLen, name, u16 valueLen, value }

const xattrNameMax = 255

// xattrArea returns the byte slice currently holding the inode's EAs
// (inline or overflow) and whether it is the overflow block.
func (im *Image) xattrArea(rec []byte) ([]byte, bool, error) {
	if blk := le.Uint64(rec[inoXattrBlkOff:]); blk != 0 {
		data, err := im.blockData(blk)
		return data, true, err
	}
	return rec[inodeHeaderSize:], false, nil
}

// parseXattrs decodes an EA area. Damaged encodings yield an error —
// the scanner treats that as "EAs unreadable", exactly how a real
// checker sees a corrupted xattr region.
func parseXattrs(area []byte) (map[string][]byte, error) {
	if len(area) < 2 {
		return nil, fmt.Errorf("ldiskfs: xattr area too small")
	}
	count := int(le.Uint16(area))
	out := make(map[string][]byte, count)
	off := 2
	for i := 0; i < count; i++ {
		if off+1 > len(area) {
			return nil, fmt.Errorf("ldiskfs: truncated xattr entry %d", i)
		}
		nl := int(area[off])
		off++
		if nl == 0 || off+nl+2 > len(area) {
			return nil, fmt.Errorf("ldiskfs: bad xattr name (entry %d)", i)
		}
		name := string(area[off : off+nl])
		off += nl
		vl := int(le.Uint16(area[off:]))
		off += 2
		if off+vl > len(area) {
			return nil, fmt.Errorf("ldiskfs: truncated xattr value for %q", name)
		}
		val := make([]byte, vl)
		copy(val, area[off:off+vl])
		off += vl
		out[name] = val
	}
	return out, nil
}

// encodeXattrs serializes EAs deterministically (sorted by name).
func encodeXattrs(xs map[string][]byte) ([]byte, error) {
	names := make([]string, 0, len(xs))
	for n := range xs {
		if n == "" || len(n) > xattrNameMax {
			return nil, fmt.Errorf("ldiskfs: bad xattr name %q", n)
		}
		names = append(names, n)
	}
	sort.Strings(names)
	size := 2
	for _, n := range names {
		if len(xs[n]) > 0xFFFF {
			return nil, fmt.Errorf("%w: xattr %q (%d bytes)", ErrTooLarge, n, len(xs[n]))
		}
		size += 1 + len(n) + 2 + len(xs[n])
	}
	buf := make([]byte, size)
	le.PutUint16(buf, uint16(len(names)))
	off := 2
	for _, n := range names {
		buf[off] = byte(len(n))
		off++
		copy(buf[off:], n)
		off += len(n)
		le.PutUint16(buf[off:], uint16(len(xs[n])))
		off += 2
		copy(buf[off:], xs[n])
		off += len(xs[n])
	}
	return buf, nil
}

// Xattrs returns all extended attributes of ino.
func (im *Image) Xattrs(ino Ino) (map[string][]byte, error) {
	rec, err := im.inode(ino)
	if err != nil {
		return nil, err
	}
	if FileType(le.Uint16(rec[inoModeOff:])) == TypeFree {
		return nil, ErrNotAllocated
	}
	area, _, err := im.xattrArea(rec)
	if err != nil {
		return nil, err
	}
	return parseXattrs(area)
}

// GetXattr returns one attribute value and whether it exists.
func (im *Image) GetXattr(ino Ino, name string) ([]byte, bool, error) {
	xs, err := im.Xattrs(ino)
	if err != nil {
		return nil, false, err
	}
	v, ok := xs[name]
	return v, ok, nil
}

// SetXattr creates or replaces one attribute.
func (im *Image) SetXattr(ino Ino, name string, value []byte) error {
	return im.updateXattrs(ino, func(xs map[string][]byte) {
		v := make([]byte, len(value))
		copy(v, value)
		xs[name] = v
	})
}

// RemoveXattr deletes one attribute; removing a missing name is an error.
func (im *Image) RemoveXattr(ino Ino, name string) error {
	var missing bool
	err := im.updateXattrs(ino, func(xs map[string][]byte) {
		if _, ok := xs[name]; !ok {
			missing = true
			return
		}
		delete(xs, name)
	})
	if err != nil {
		return err
	}
	if missing {
		return fmt.Errorf("%w: xattr %q", ErrNotExist, name)
	}
	return nil
}

// updateXattrs reads, mutates, and rewrites the EA set, migrating
// between inline and overflow storage as the encoded size dictates.
func (im *Image) updateXattrs(ino Ino, mutate func(map[string][]byte)) error {
	rec, err := im.inode(ino)
	if err != nil {
		return err
	}
	if FileType(le.Uint16(rec[inoModeOff:])) == TypeFree {
		return ErrNotAllocated
	}
	area, _, err := im.xattrArea(rec)
	if err != nil {
		return err
	}
	xs, err := parseXattrs(area)
	if err != nil {
		// A mutation on top of damaged EAs starts from scratch; repair
		// tooling relies on being able to rewrite corrupted areas.
		xs = make(map[string][]byte)
	}
	mutate(xs)
	enc, err := encodeXattrs(xs)
	if err != nil {
		return err
	}
	inline := rec[inodeHeaderSize:]
	switch {
	case len(enc) <= len(inline):
		if blk := le.Uint64(rec[inoXattrBlkOff:]); blk != 0 {
			im.freeBlock(blk)
			// rec may have been invalidated by... no reallocation
			// happens on free, so rec stays valid.
			le.PutUint64(rec[inoXattrBlkOff:], 0)
		}
		clear(inline)
		copy(inline, enc)
	case len(enc) <= im.geom.BlockSize:
		blk := le.Uint64(rec[inoXattrBlkOff:])
		if blk == 0 {
			blk = im.allocBlock()
			// allocBlock may grow the image and reallocate the buffer;
			// re-resolve the inode record before writing through it.
			rec, _ = im.inode(ino)
			le.PutUint64(rec[inoXattrBlkOff:], blk)
		}
		data, err := im.blockData(blk)
		if err != nil {
			return err
		}
		clear(data)
		copy(data, enc)
		clear(rec[inodeHeaderSize:]) // inline area unused now
	default:
		return fmt.Errorf("%w: encoded xattrs %d bytes > block size %d",
			ErrTooLarge, len(enc), im.geom.BlockSize)
	}
	im.markDirty(ino)
	return nil
}
