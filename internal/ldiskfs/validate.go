package ldiskfs

import (
	"fmt"
)

// Validate is the substrate's own fsck-lite: it checks the *structural*
// invariants of an image — bitmap/superblock agreement, block pointers
// in range, no block referenced twice, dirent inode numbers within the
// image. It says nothing about Lustre-level consistency (that is the
// checkers' job); it exists so tests can assert that no operation in
// this package ever corrupts an image's own bookkeeping.
func (im *Image) Validate() []error {
	var errs []error
	report := func(format string, args ...interface{}) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// 1. Superblock counters match the bitmaps.
	var allocInodes, allocBlocks int64
	per := im.geom.InodesPerGroup
	dataPer := im.geom.dataBlocksPerGroup()
	for g := 0; g < im.Groups(); g++ {
		ibm, bbm := im.inodeBitmap(g), im.blockBitmap(g)
		for i := 0; i < per; i++ {
			if bitmapGet(ibm, i) {
				allocInodes++
			}
		}
		for i := 0; i < dataPer; i++ {
			if bitmapGet(bbm, i) {
				allocBlocks++
			}
		}
	}
	if allocInodes != im.InodeCount() {
		report("inode count %d != bitmap population %d", im.InodeCount(), allocInodes)
	}
	if allocBlocks != im.BlockCount() {
		report("block count %d != bitmap population %d", im.BlockCount(), allocBlocks)
	}

	// 2. Allocated inodes have a valid type; free slots are zero-typed
	//    per the bitmap; every referenced block is allocated, in range,
	//    and referenced exactly once.
	blockOwner := make(map[uint64]Ino)
	claimBlock := func(ino Ino, blk uint64, what string) {
		if blk == 0 {
			return
		}
		idx := int(blk - 1)
		g := idx / dataPer
		if g >= im.Groups() {
			report("inode %d: %s block %d out of range", ino, what, blk)
			return
		}
		if !bitmapGet(im.blockBitmap(g), idx%dataPer) {
			report("inode %d: %s block %d not allocated", ino, what, blk)
		}
		if prev, dup := blockOwner[blk]; dup {
			report("block %d referenced by both inode %d and inode %d", blk, prev, ino)
		}
		blockOwner[blk] = ino
	}
	maxIno := im.MaxInode()
	for g := 0; g < im.Groups(); g++ {
		ibm := im.inodeBitmap(g)
		for i := 0; i < per; i++ {
			ino := Ino(g*per + i + 1)
			rec, err := im.inode(ino)
			if err != nil {
				report("inode %d unreadable: %v", ino, err)
				continue
			}
			typ := FileType(le.Uint16(rec[inoModeOff:]))
			if !bitmapGet(ibm, i) {
				if typ != TypeFree {
					report("inode %d: free per bitmap but typed %v", ino, typ)
				}
				continue
			}
			if typ == TypeFree || typ > TypeSymlink {
				report("inode %d: allocated with invalid type %d", ino, uint16(typ))
			}
			claimBlock(ino, le.Uint64(rec[inoXattrBlkOff:]), "xattr")
			for d := 0; d < numDirect; d++ {
				claimBlock(ino, le.Uint64(rec[inoDirectOff+8*d:]), "dirent")
			}
			if ind := le.Uint64(rec[inoIndirectOff:]); ind != 0 {
				claimBlock(ino, ind, "indirect")
				if data, err := im.blockData(ind); err == nil {
					for off := 0; off+8 <= len(data); off += 8 {
						claimBlock(ino, le.Uint64(data[off:]), "indirect-dirent")
					}
				}
			}
			// 3. Directory entries reference in-range inodes.
			if typ == TypeDir {
				ents, _ := im.Dirents(ino)
				for _, de := range ents {
					if de.Ino == 0 || de.Ino > maxIno {
						report("inode %d: dirent %q references out-of-range inode %d",
							ino, de.Name, de.Ino)
					}
				}
			}
		}
	}

	// 4. No allocated data block is orphaned (allocated but unowned).
	for g := 0; g < im.Groups(); g++ {
		bbm := im.blockBitmap(g)
		for i := 0; i < dataPer; i++ {
			if !bitmapGet(bbm, i) {
				continue
			}
			blk := uint64(g*dataPer + i + 1)
			if _, owned := blockOwner[blk]; !owned {
				report("block %d allocated but referenced by no inode", blk)
			}
		}
	}
	return errs
}
