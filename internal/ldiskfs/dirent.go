package ldiskfs

import (
	"fmt"
)

// Dirent is one directory entry. ldiskfs extends classic ext4 entries
// with the child's Lustre FID; the Tag field carries that 16-byte value
// opaquely (package lustre defines its encoding).
//
// On-disk entry layout (packed back to back inside dirent blocks):
//
//	u64 ino | 16-byte tag | u8 type | u8 nameLen | name
//
// A zero ino terminates a block's entry list.
type Dirent struct {
	Ino  Ino
	Type FileType
	Tag  [16]byte
	Name string
}

const direntFixed = 8 + 16 + 1 + 1

func (d Dirent) encodedLen() int { return direntFixed + len(d.Name) }

// direntBlocks returns the global block numbers of all dirent blocks of
// the inode record, resolving the indirect block.
func (im *Image) direntBlocks(rec []byte) []uint64 {
	var blocks []uint64
	for i := 0; i < numDirect; i++ {
		if blk := le.Uint64(rec[inoDirectOff+8*i:]); blk != 0 {
			blocks = append(blocks, blk)
		}
	}
	if ind := le.Uint64(rec[inoIndirectOff:]); ind != 0 {
		data, err := im.blockData(ind)
		if err == nil {
			for off := 0; off+8 <= len(data); off += 8 {
				if blk := le.Uint64(data[off:]); blk != 0 {
					blocks = append(blocks, blk)
				}
			}
		}
	}
	return blocks
}

// appendDirentBlock allocates a new dirent block and links it into the
// inode (direct pointers first, then the indirect block). It returns the
// new block number. Since allocation may grow the image buffer, the
// caller must re-resolve any held slices afterwards.
func (im *Image) appendDirentBlock(ino Ino) (uint64, error) {
	blk := im.allocBlock()
	rec, err := im.inode(ino)
	if err != nil {
		return 0, err
	}
	for i := 0; i < numDirect; i++ {
		if le.Uint64(rec[inoDirectOff+8*i:]) == 0 {
			le.PutUint64(rec[inoDirectOff+8*i:], blk)
			return blk, nil
		}
	}
	ind := le.Uint64(rec[inoIndirectOff:])
	if ind == 0 {
		ind = im.allocBlock()
		rec, err = im.inode(ino) // re-resolve: buffer may have grown
		if err != nil {
			return 0, err
		}
		le.PutUint64(rec[inoIndirectOff:], ind)
	}
	data, err := im.blockData(ind)
	if err != nil {
		return 0, err
	}
	for off := 0; off+8 <= len(data); off += 8 {
		if le.Uint64(data[off:]) == 0 {
			le.PutUint64(data[off:], blk)
			return blk, nil
		}
	}
	im.freeBlock(blk)
	return 0, fmt.Errorf("%w: directory %d indirect block full", ErrNoSpace, ino)
}

// parseDirentBlock decodes entries from one block. A malformed entry
// terminates the scan with an error; already-decoded entries are
// returned — a checker wants whatever survives corruption.
func parseDirentBlock(data []byte) ([]Dirent, error) {
	var out []Dirent
	off := 0
	for off+direntFixed <= len(data) {
		ino := le.Uint64(data[off:])
		if ino == 0 {
			return out, nil
		}
		var d Dirent
		d.Ino = Ino(ino)
		copy(d.Tag[:], data[off+8:off+24])
		d.Type = FileType(data[off+24])
		nl := int(data[off+25])
		if nl == 0 || off+direntFixed+nl > len(data) {
			return out, fmt.Errorf("ldiskfs: malformed dirent at offset %d", off)
		}
		d.Name = string(data[off+direntFixed : off+direntFixed+nl])
		out = append(out, d)
		off += direntFixed + nl
	}
	return out, nil
}

// encodeDirentsInto packs entries into block data, zero-terminated.
// It panics if they do not fit; callers size-check first.
func encodeDirentsInto(data []byte, ents []Dirent) {
	clear(data)
	off := 0
	for _, d := range ents {
		le.PutUint64(data[off:], uint64(d.Ino))
		copy(data[off+8:], d.Tag[:])
		data[off+24] = byte(d.Type)
		data[off+25] = byte(len(d.Name))
		copy(data[off+direntFixed:], d.Name)
		off += d.encodedLen()
	}
}

// direntBlockUsed returns the bytes consumed by a block's live entries.
func direntBlockUsed(ents []Dirent) int {
	n := 0
	for _, d := range ents {
		n += d.encodedLen()
	}
	return n
}

func (im *Image) requireDir(ino Ino) ([]byte, error) {
	rec, err := im.inode(ino)
	if err != nil {
		return nil, err
	}
	switch FileType(le.Uint16(rec[inoModeOff:])) {
	case TypeDir:
		return rec, nil
	case TypeFree:
		return nil, ErrNotAllocated
	default:
		return nil, fmt.Errorf("%w: inode %d", ErrNotDir, ino)
	}
}

// Dirents lists all entries of a directory, in block order. Corrupted
// blocks contribute their decodable prefix; the first corruption error
// encountered is returned alongside the surviving entries.
func (im *Image) Dirents(dir Ino) ([]Dirent, error) {
	rec, err := im.requireDir(dir)
	if err != nil {
		return nil, err
	}
	var (
		out      []Dirent
		firstErr error
	)
	for _, blk := range im.direntBlocks(rec) {
		data, err := im.blockData(blk)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ents, err := parseDirentBlock(data)
		out = append(out, ents...)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// scanDirentBlock walks a block's entries without materialising them.
// It returns the byte offset past the last well-formed entry, whether
// an entry named `name` was seen (name == "" disables the search, and
// at which offset), and whether the block parsed cleanly to its
// terminator.
func scanDirentBlock(data []byte, name string) (used int, foundAt int, wellFormed bool) {
	foundAt = -1
	off := 0
	for off+direntFixed <= len(data) {
		if le.Uint64(data[off:]) == 0 {
			return off, foundAt, true
		}
		nl := int(data[off+25])
		if nl == 0 || off+direntFixed+nl > len(data) {
			return off, foundAt, false // malformed tail
		}
		if name != "" && nl == len(name) &&
			string(data[off+direntFixed:off+direntFixed+nl]) == name {
			foundAt = off
		}
		off += direntFixed + nl
	}
	return off, foundAt, true
}

// decodeDirentAt materialises the single entry starting at off.
func decodeDirentAt(data []byte, off int) Dirent {
	var d Dirent
	d.Ino = Ino(le.Uint64(data[off:]))
	copy(d.Tag[:], data[off+8:off+24])
	d.Type = FileType(data[off+24])
	nl := int(data[off+25])
	d.Name = string(data[off+direntFixed : off+direntFixed+nl])
	return d
}

// LookupDirent finds an entry by name without materialising the whole
// directory (this is the hot path of file creation).
func (im *Image) LookupDirent(dir Ino, name string) (Dirent, bool, error) {
	rec, err := im.requireDir(dir)
	if err != nil {
		return Dirent{}, false, err
	}
	if name == "" {
		return Dirent{}, false, nil
	}
	for _, blk := range im.direntBlocks(rec) {
		data, err := im.blockData(blk)
		if err != nil {
			continue
		}
		if _, at, _ := scanDirentBlock(data, name); at >= 0 {
			return decodeDirentAt(data, at), true, nil
		}
	}
	return Dirent{}, false, nil
}

// AddDirent appends an entry to a directory. Duplicate names error.
// The insert is a single pass: every block is scanned once (duplicate
// check + free-space discovery) and the entry is written in place after
// the block's last entry — no re-encoding of existing entries.
func (im *Image) AddDirent(dir Ino, d Dirent) error {
	if d.Ino == 0 {
		return fmt.Errorf("%w: zero inode in dirent", ErrBadInode)
	}
	if len(d.Name) == 0 || len(d.Name) > 255 {
		return fmt.Errorf("ldiskfs: bad entry name %q", d.Name)
	}
	need := d.encodedLen()
	if need > im.geom.BlockSize {
		return fmt.Errorf("%w: dirent %q", ErrTooLarge, d.Name)
	}
	rec, err := im.requireDir(dir)
	if err != nil {
		return err
	}
	bestBlk := uint64(0)
	bestUsed := 0
	for _, blk := range im.direntBlocks(rec) {
		data, err := im.blockData(blk)
		if err != nil {
			continue
		}
		used, at, ok := scanDirentBlock(data, d.Name)
		if at >= 0 {
			return fmt.Errorf("%w: %q", ErrExist, d.Name)
		}
		// Never append into a corrupted block.
		if ok && bestBlk == 0 && used+need <= im.geom.BlockSize {
			bestBlk, bestUsed = blk, used
		}
	}
	if bestBlk == 0 {
		blk, err := im.appendDirentBlock(dir)
		if err != nil {
			return err
		}
		bestBlk, bestUsed = blk, 0
	}
	data, err := im.blockData(bestBlk)
	if err != nil {
		return err
	}
	writeDirentAt(data, bestUsed, d)
	im.markDirty(dir)
	return im.bumpDirSize(dir)
}

// writeDirentAt serialises one entry at the given block offset.
func writeDirentAt(data []byte, off int, d Dirent) {
	le.PutUint64(data[off:], uint64(d.Ino))
	copy(data[off+8:], d.Tag[:])
	data[off+24] = byte(d.Type)
	data[off+25] = byte(len(d.Name))
	copy(data[off+direntFixed:], d.Name)
}

// bumpDirSize keeps the directory's size field equal to its block span.
func (im *Image) bumpDirSize(dir Ino) error {
	rec, err := im.inode(dir)
	if err != nil {
		return err
	}
	n := len(im.direntBlocks(rec))
	le.PutUint64(rec[inoSizeOff:], uint64(n*im.geom.BlockSize))
	return nil
}

// RemoveDirent deletes the entry with the given name.
func (im *Image) RemoveDirent(dir Ino, name string) error {
	rec, err := im.requireDir(dir)
	if err != nil {
		return err
	}
	for _, blk := range im.direntBlocks(rec) {
		data, err := im.blockData(blk)
		if err != nil {
			continue
		}
		ents, _ := parseDirentBlock(data)
		for i, d := range ents {
			if d.Name == name {
				encodeDirentsInto(data, append(ents[:i:i], ents[i+1:]...))
				im.markDirty(dir)
				return nil
			}
		}
	}
	return fmt.Errorf("%w: %q", ErrNotExist, name)
}

// DirentBlockRanges returns the [start, end) byte ranges of every dirent
// block of a directory, for byte-level fault injection.
func (im *Image) DirentBlockRanges(dir Ino) ([][2]int64, error) {
	rec, err := im.requireDir(dir)
	if err != nil {
		return nil, err
	}
	var out [][2]int64
	for _, blk := range im.direntBlocks(rec) {
		data, err := im.blockData(blk)
		if err != nil {
			continue
		}
		off := im.blockOffset(blk)
		out = append(out, [2]int64{off, off + int64(len(data))})
	}
	return out, nil
}

// blockOffset returns the byte offset of a global data block.
func (im *Image) blockOffset(blk uint64) int64 {
	idx := int(blk - 1)
	per := im.geom.dataBlocksPerGroup()
	g := idx / per
	slot := idx % per
	return int64(im.groupBase(g) + im.geom.metaBlocksPerGroup()*im.geom.BlockSize + slot*im.geom.BlockSize)
}

// AllocatedInodes iterates every allocated inode in the image in
// ascending order, calling fn with the inode number and type. This is
// the raw sweep the metadata scanner performs per block group.
func (im *Image) AllocatedInodes(fn func(ino Ino, t FileType) error) error {
	for g := 0; g < im.Groups(); g++ {
		if err := im.AllocatedInodesInGroup(g, fn); err != nil {
			return err
		}
	}
	return nil
}

// AllocatedInodesInGroup iterates the allocated inodes of one block
// group, enabling scanners to shard the inode-table sweep by group.
func (im *Image) AllocatedInodesInGroup(g int, fn func(ino Ino, t FileType) error) error {
	if g < 0 || g >= im.Groups() {
		return fmt.Errorf("ldiskfs: no block group %d", g)
	}
	per := im.geom.InodesPerGroup
	bm := im.inodeBitmap(g)
	for i := 0; i < per; i++ {
		if !bitmapGet(bm, i) {
			continue
		}
		ino := Ino(g*per + i + 1)
		rec, err := im.inode(ino)
		if err != nil {
			return err
		}
		if err := fn(ino, FileType(le.Uint16(rec[inoModeOff:]))); err != nil {
			return err
		}
	}
	return nil
}
