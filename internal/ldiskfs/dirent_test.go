package ldiskfs

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkTag(b byte) (t [16]byte) {
	for i := range t {
		t[i] = b
	}
	return
}

func TestDirentAddLookupRemove(t *testing.T) {
	im := newTestImage(t)
	dir, _ := im.AllocInode(TypeDir)
	child, _ := im.AllocInode(TypeFile)
	d := Dirent{Ino: child, Type: TypeFile, Tag: mkTag(7), Name: "hello.txt"}
	if err := im.AddDirent(dir, d); err != nil {
		t.Fatal(err)
	}
	got, ok, err := im.LookupDirent(dir, "hello.txt")
	if err != nil || !ok || got != d {
		t.Fatalf("lookup = %+v %v %v", got, ok, err)
	}
	if err := im.AddDirent(dir, d); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate add: %v", err)
	}
	if err := im.RemoveDirent(dir, "hello.txt"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := im.LookupDirent(dir, "hello.txt"); ok {
		t.Error("entry survived removal")
	}
	if err := im.RemoveDirent(dir, "hello.txt"); !errors.Is(err, ErrNotExist) {
		t.Errorf("remove missing: %v", err)
	}
}

func TestDirentValidation(t *testing.T) {
	im := newTestImage(t)
	dir, _ := im.AllocInode(TypeDir)
	file, _ := im.AllocInode(TypeFile)
	if err := im.AddDirent(file, Dirent{Ino: dir, Name: "x"}); !errors.Is(err, ErrNotDir) {
		t.Errorf("add to non-dir: %v", err)
	}
	if err := im.AddDirent(dir, Dirent{Ino: 0, Name: "x"}); err == nil {
		t.Error("zero-ino dirent accepted")
	}
	if err := im.AddDirent(dir, Dirent{Ino: file, Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := im.Dirents(file); !errors.Is(err, ErrNotDir) {
		t.Errorf("dirents of file: %v", err)
	}
	free := im.MaxInode() // allocated? ensure unallocated slot
	if im.InodeAllocated(free) {
		t.Skip("unexpectedly full image")
	}
	if _, err := im.Dirents(free); !errors.Is(err, ErrNotAllocated) {
		t.Errorf("dirents of free inode: %v", err)
	}
}

func TestDirentManyEntriesSpillBlocks(t *testing.T) {
	im := newTestImage(t)
	dir, _ := im.AllocInode(TypeDir)
	const n = 600 // forces multiple blocks and the indirect block (1KiB blocks)
	for i := 0; i < n; i++ {
		child, err := im.AllocInode(TypeFile)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("file-%05d", i)
		if err := im.AddDirent(dir, Dirent{Ino: child, Type: TypeFile, Tag: mkTag(byte(i)), Name: name}); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	ents, err := im.Dirents(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("entries = %d, want %d", len(ents), n)
	}
	seen := make(map[string]bool)
	for _, e := range ents {
		seen[e.Name] = true
	}
	if len(seen) != n {
		t.Fatalf("distinct names = %d", len(seen))
	}
	// directory size reflects the block span
	sz, _ := im.Size(dir)
	if sz == 0 || sz%uint64(im.Geometry().BlockSize) != 0 {
		t.Errorf("dir size = %d", sz)
	}
	// removal from a middle block works
	if err := im.RemoveDirent(dir, "file-00300"); err != nil {
		t.Fatal(err)
	}
	ents, _ = im.Dirents(dir)
	if len(ents) != n-1 {
		t.Errorf("after removal: %d", len(ents))
	}
}

func TestDirentRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		im := MustNew(CompactGeometry())
		dir, _ := im.AllocInode(TypeDir)
		want := make(map[string]Dirent)
		for i := 0; i < r.Intn(60); i++ {
			child, err := im.AllocInode(TypeFile)
			if err != nil {
				return false
			}
			nameLen := 1 + r.Intn(30)
			nameBytes := make([]byte, nameLen)
			for j := range nameBytes {
				nameBytes[j] = byte('a' + r.Intn(26))
			}
			name := fmt.Sprintf("%s-%d", nameBytes, i)
			d := Dirent{Ino: child, Type: TypeFile, Tag: mkTag(byte(r.Intn(256))), Name: name}
			if err := im.AddDirent(dir, d); err != nil {
				return false
			}
			want[name] = d
		}
		got, err := im.Dirents(dir)
		if err != nil || len(got) != len(want) {
			return false
		}
		for _, d := range got {
			if want[d.Name] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDirentCorruptedBlockPartialParse(t *testing.T) {
	im := newTestImage(t)
	dir, _ := im.AllocInode(TypeDir)
	for i := 0; i < 5; i++ {
		child, _ := im.AllocInode(TypeFile)
		im.AddDirent(dir, Dirent{Ino: child, Type: TypeFile, Name: fmt.Sprintf("f%d", i)})
	}
	// Corrupt the nameLen of the third entry: entries are 26+2 bytes.
	rec, _ := im.inode(dir)
	blocks := im.direntBlocks(rec)
	data, _ := im.blockData(blocks[0])
	entrySize := direntFixed + 2
	data[2*entrySize+25] = 0 // nameLen of 3rd entry -> malformed
	ents, err := im.Dirents(dir)
	if err == nil {
		t.Error("corruption not reported")
	}
	if len(ents) != 2 {
		t.Errorf("surviving entries = %d, want 2", len(ents))
	}
}

func TestFreeInodeReleasesDirentBlocks(t *testing.T) {
	im := newTestImage(t)
	dir, _ := im.AllocInode(TypeDir)
	for i := 0; i < 100; i++ {
		child, _ := im.AllocInode(TypeFile)
		im.AddDirent(dir, Dirent{Ino: child, Type: TypeFile, Name: fmt.Sprintf("f%03d", i)})
	}
	used := im.BlockCount()
	if used == 0 {
		t.Fatal("no blocks in use")
	}
	if err := im.FreeInode(dir); err != nil {
		t.Fatal(err)
	}
	if im.BlockCount() != 0 {
		t.Errorf("blocks leaked: %d", im.BlockCount())
	}
}

func TestAllocatedInodesSweep(t *testing.T) {
	im := newTestImage(t)
	var want []Ino
	for i := 0; i < 10; i++ {
		ino, _ := im.AllocInode(TypeFile)
		want = append(want, ino)
	}
	im.FreeInode(want[4])
	var got []Ino
	err := im.AllocatedInodes(func(ino Ino, ft FileType) error {
		if ft != TypeFile {
			t.Errorf("type of %d = %v", ino, ft)
		}
		got = append(got, ino)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("swept %d inodes, want 9", len(got))
	}
	stop := errors.New("stop")
	count := 0
	err = im.AllocatedInodes(func(Ino, FileType) error {
		count++
		if count == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || count != 3 {
		t.Errorf("early stop: err=%v count=%d", err, count)
	}
}
