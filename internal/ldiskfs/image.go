package ldiskfs

import (
	"errors"
	"fmt"
	"slices"
)

// Common errors.
var (
	ErrBadImage     = errors.New("ldiskfs: not a valid image")
	ErrBadInode     = errors.New("ldiskfs: invalid inode number")
	ErrNotAllocated = errors.New("ldiskfs: inode not allocated")
	ErrNoSpace      = errors.New("ldiskfs: out of space")
	ErrNotDir       = errors.New("ldiskfs: not a directory")
	ErrExist        = errors.New("ldiskfs: entry already exists")
	ErrNotExist     = errors.New("ldiskfs: entry does not exist")
	ErrTooLarge     = errors.New("ldiskfs: value too large")
)

// Image is an in-memory ldiskfs-style disk image. All state lives in the
// flat byte buffer — nothing is cached in Go structures — so serializing
// an image is a copy of Bytes() and the scanner genuinely parses raw
// bytes. Images grow by whole block groups on demand.
//
// Image is not safe for concurrent mutation; concurrent readers are fine.
type Image struct {
	geom Geometry
	buf  []byte
	// dirty tracks inodes whose metadata changed since the last
	// ClearDirty — the change feed an *online* checker consumes (the
	// simulation counterpart of Lustre's ChangeLog; see package online).
	// It is in-memory only: serialized images carry no dirty state, just
	// like a remounted file system starts with a fresh changelog.
	dirty map[Ino]struct{}
}

// New creates an empty image with one block group.
func New(geom Geometry) (*Image, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	im := &Image{geom: geom}
	im.buf = make([]byte, superblockBlocks*geom.BlockSize)
	le.PutUint64(im.buf[sbMagicOff:], Magic)
	le.PutUint32(im.buf[sbBlockSizeOff:], uint32(geom.BlockSize))
	le.PutUint32(im.buf[sbInodeSizeOff:], uint32(geom.InodeSize))
	le.PutUint32(im.buf[sbInoPerGrpOff:], uint32(geom.InodesPerGroup))
	le.PutUint32(im.buf[sbBlkPerGrpOff:], uint32(geom.BlocksPerGroup))
	im.addGroup()
	return im, nil
}

// MustNew is New for known-good geometries (panics on error).
func MustNew(geom Geometry) *Image {
	im, err := New(geom)
	if err != nil {
		panic(err)
	}
	return im
}

// FromBytes adopts a serialized image (no copy) after validating its
// superblock. This is how scanners and injectors open server images.
func FromBytes(b []byte) (*Image, error) {
	if len(b) < 48 || le.Uint64(b[sbMagicOff:]) != Magic {
		return nil, ErrBadImage
	}
	geom := Geometry{
		BlockSize:      int(le.Uint32(b[sbBlockSizeOff:])),
		InodeSize:      int(le.Uint32(b[sbInodeSizeOff:])),
		InodesPerGroup: int(le.Uint32(b[sbInoPerGrpOff:])),
		BlocksPerGroup: int(le.Uint32(b[sbBlkPerGrpOff:])),
	}
	if err := geom.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadImage, err)
	}
	groups := int(le.Uint32(b[sbGroupCountOff:]))
	want := superblockBlocks*geom.BlockSize + groups*geom.groupBytes()
	if groups < 1 || len(b) != want {
		return nil, fmt.Errorf("%w: size %d, want %d (%d groups)", ErrBadImage, len(b), want, groups)
	}
	return &Image{geom: geom, buf: b}, nil
}

// Bytes returns the raw image. The slice aliases the live image.
func (im *Image) Bytes() []byte { return im.buf }

// Geometry returns the image geometry.
func (im *Image) Geometry() Geometry { return im.geom }

// Label returns the image label (e.g. "mdt0", "ost3").
func (im *Image) Label() string {
	n := int(le.Uint32(im.buf[sbLabelLenOff:]))
	if n <= 0 || n > sbLabelMax {
		return ""
	}
	return string(im.buf[sbLabelOff : sbLabelOff+n])
}

// SetLabel stores the image label (truncated to 64 bytes).
func (im *Image) SetLabel(s string) {
	if len(s) > sbLabelMax {
		s = s[:sbLabelMax]
	}
	le.PutUint32(im.buf[sbLabelLenOff:], uint32(len(s)))
	copy(im.buf[sbLabelOff:sbLabelOff+sbLabelMax], s)
}

// Groups returns the number of block groups.
func (im *Image) Groups() int { return int(le.Uint32(im.buf[sbGroupCountOff:])) }

// InodeCount returns the number of allocated inodes.
func (im *Image) InodeCount() int64 { return int64(le.Uint64(im.buf[sbInodeCountOff:])) }

// BlockCount returns the number of allocated data blocks.
func (im *Image) BlockCount() int64 { return int64(le.Uint64(im.buf[sbBlockCountOff:])) }

// MaxInode returns the highest valid inode number in the image.
func (im *Image) MaxInode() Ino { return Ino(im.Groups() * im.geom.InodesPerGroup) }

func (im *Image) addInodeCount(d int64) {
	le.PutUint64(im.buf[sbInodeCountOff:], uint64(im.InodeCount()+d))
}

func (im *Image) addBlockCount(d int64) {
	le.PutUint64(im.buf[sbBlockCountOff:], uint64(im.BlockCount()+d))
}

// addGroup appends one zeroed block group and updates the superblock.
func (im *Image) addGroup() {
	im.buf = append(im.buf, make([]byte, im.geom.groupBytes())...)
	le.PutUint32(im.buf[sbGroupCountOff:], uint32(im.Groups()+1))
}

// --- group/block/inode addressing ----------------------------------------

// groupBase returns the byte offset of group g.
func (im *Image) groupBase(g int) int {
	return superblockBlocks*im.geom.BlockSize + g*im.geom.groupBytes()
}

// group sub-areas, as byte offsets from the image start.
func (im *Image) inodeBitmap(g int) []byte {
	base := im.groupBase(g)
	return im.buf[base : base+im.geom.InodesPerGroup/8]
}

func (im *Image) blockBitmap(g int) []byte {
	base := im.groupBase(g) + im.geom.BlockSize
	return im.buf[base : base+(im.geom.dataBlocksPerGroup()+7)/8]
}

// InodeOffset returns the byte offset of inode ino's record in the
// image. Exported for the fault injector, which corrupts raw bytes.
func (im *Image) InodeOffset(ino Ino) (int64, error) {
	if ino == 0 || ino > im.MaxInode() {
		return 0, fmt.Errorf("%w: %d", ErrBadInode, ino)
	}
	idx := int(ino - 1)
	g := idx / im.geom.InodesPerGroup
	slot := idx % im.geom.InodesPerGroup
	off := im.groupBase(g) + 2*im.geom.BlockSize + slot*im.geom.InodeSize
	return int64(off), nil
}

// inode returns the inode record slice (header + inline EA area).
func (im *Image) inode(ino Ino) ([]byte, error) {
	off, err := im.InodeOffset(ino)
	if err != nil {
		return nil, err
	}
	return im.buf[off : off+int64(im.geom.InodeSize)], nil
}

// blockData returns the data of global data-block number blk (1-based
// position in the global data-block space; 0 is the nil pointer).
func (im *Image) blockData(blk uint64) ([]byte, error) {
	if blk == 0 {
		return nil, fmt.Errorf("ldiskfs: nil block pointer")
	}
	idx := int(blk - 1)
	per := im.geom.dataBlocksPerGroup()
	g := idx / per
	slot := idx % per
	if g >= im.Groups() {
		return nil, fmt.Errorf("ldiskfs: block %d out of range", blk)
	}
	off := im.groupBase(g) + im.geom.metaBlocksPerGroup()*im.geom.BlockSize + slot*im.geom.BlockSize
	return im.buf[off : off+im.geom.BlockSize], nil
}

// --- bitmap helpers -------------------------------------------------------

func bitmapGet(bm []byte, i int) bool { return bm[i/8]&(1<<(i%8)) != 0 }
func bitmapSet(bm []byte, i int)      { bm[i/8] |= 1 << (i % 8) }
func bitmapClear(bm []byte, i int)    { bm[i/8] &^= 1 << (i % 8) }

// bitmapFindFree returns the first clear bit < n, or -1.
func bitmapFindFree(bm []byte, n int) int {
	for byteIdx := 0; byteIdx*8 < n; byteIdx++ {
		b := bm[byteIdx]
		if b == 0xFF {
			continue
		}
		for bit := 0; bit < 8; bit++ {
			i := byteIdx*8 + bit
			if i >= n {
				return -1
			}
			if b&(1<<bit) == 0 {
				return i
			}
		}
	}
	return -1
}

// --- inode allocation -----------------------------------------------------

// AllocInode allocates a fresh inode of the given type and returns its
// number. A new block group is appended when the image is full.
func (im *Image) AllocInode(t FileType) (Ino, error) {
	if t == TypeFree {
		return 0, fmt.Errorf("ldiskfs: cannot allocate TypeFree")
	}
	for g := 0; g < im.Groups(); g++ {
		if i := bitmapFindFree(im.inodeBitmap(g), im.geom.InodesPerGroup); i >= 0 {
			bitmapSet(im.inodeBitmap(g), i)
			ino := Ino(g*im.geom.InodesPerGroup + i + 1)
			rec, _ := im.inode(ino)
			clear(rec)
			le.PutUint16(rec[inoModeOff:], uint16(t))
			le.PutUint16(rec[inoLinksOff:], 1)
			im.addInodeCount(1)
			im.markDirty(ino)
			return ino, nil
		}
	}
	im.addGroup()
	return im.AllocInode(t)
}

// FreeInode releases an inode and all blocks it references.
func (im *Image) FreeInode(ino Ino) error {
	rec, err := im.inode(ino)
	if err != nil {
		return err
	}
	if FileType(le.Uint16(rec[inoModeOff:])) == TypeFree {
		return ErrNotAllocated
	}
	// Release dirent blocks and xattr overflow block.
	for _, blk := range im.direntBlocks(rec) {
		im.freeBlock(blk)
	}
	if ind := le.Uint64(rec[inoIndirectOff:]); ind != 0 {
		im.freeBlock(ind)
	}
	if xb := le.Uint64(rec[inoXattrBlkOff:]); xb != 0 {
		im.freeBlock(xb)
	}
	clear(rec)
	idx := int(ino - 1)
	g := idx / im.geom.InodesPerGroup
	bitmapClear(im.inodeBitmap(g), idx%im.geom.InodesPerGroup)
	im.addInodeCount(-1)
	im.markDirty(ino)
	return nil
}

// InodeAllocated reports whether ino is allocated per the bitmap.
func (im *Image) InodeAllocated(ino Ino) bool {
	if ino == 0 || ino > im.MaxInode() {
		return false
	}
	idx := int(ino - 1)
	g := idx / im.geom.InodesPerGroup
	return bitmapGet(im.inodeBitmap(g), idx%im.geom.InodesPerGroup)
}

// Type returns the inode's file type.
func (im *Image) Type(ino Ino) (FileType, error) {
	rec, err := im.inode(ino)
	if err != nil {
		return TypeFree, err
	}
	return FileType(le.Uint16(rec[inoModeOff:])), nil
}

// --- scalar inode fields ---------------------------------------------------

func (im *Image) getU64(ino Ino, off int) (uint64, error) {
	rec, err := im.inode(ino)
	if err != nil {
		return 0, err
	}
	return le.Uint64(rec[off:]), nil
}

func (im *Image) setU64(ino Ino, off int, v uint64) error {
	rec, err := im.inode(ino)
	if err != nil {
		return err
	}
	le.PutUint64(rec[off:], v)
	im.markDirty(ino)
	return nil
}

// Size returns the inode's recorded size in bytes.
func (im *Image) Size(ino Ino) (uint64, error) { return im.getU64(ino, inoSizeOff) }

// SetSize records the inode's size in bytes.
func (im *Image) SetSize(ino Ino, size uint64) error { return im.setU64(ino, inoSizeOff, size) }

// SetTimes records access/modify/change times (unix nanoseconds).
func (im *Image) SetTimes(ino Ino, atime, mtime, ctime int64) error {
	rec, err := im.inode(ino)
	if err != nil {
		return err
	}
	le.PutUint64(rec[inoAtimeOff:], uint64(atime))
	le.PutUint64(rec[inoMtimeOff:], uint64(mtime))
	le.PutUint64(rec[inoCtimeOff:], uint64(ctime))
	im.markDirty(ino)
	return nil
}

// Times returns (atime, mtime, ctime) in unix nanoseconds.
func (im *Image) Times(ino Ino) (atime, mtime, ctime int64, err error) {
	rec, err := im.inode(ino)
	if err != nil {
		return 0, 0, 0, err
	}
	return int64(le.Uint64(rec[inoAtimeOff:])),
		int64(le.Uint64(rec[inoMtimeOff:])),
		int64(le.Uint64(rec[inoCtimeOff:])), nil
}

// SetOwner records uid/gid.
func (im *Image) SetOwner(ino Ino, uid, gid uint32) error {
	rec, err := im.inode(ino)
	if err != nil {
		return err
	}
	le.PutUint32(rec[inoUIDOff:], uid)
	le.PutUint32(rec[inoGIDOff:], gid)
	im.markDirty(ino)
	return nil
}

// Owner returns (uid, gid).
func (im *Image) Owner(ino Ino) (uid, gid uint32, err error) {
	rec, err := im.inode(ino)
	if err != nil {
		return 0, 0, err
	}
	return le.Uint32(rec[inoUIDOff:]), le.Uint32(rec[inoGIDOff:]), nil
}

// --- data block allocation --------------------------------------------------

// allocBlock allocates one data block and returns its global number
// (1-based; 0 is the nil pointer). The block is zeroed.
func (im *Image) allocBlock() uint64 {
	per := im.geom.dataBlocksPerGroup()
	for g := 0; g < im.Groups(); g++ {
		if i := bitmapFindFree(im.blockBitmap(g), per); i >= 0 {
			bitmapSet(im.blockBitmap(g), i)
			blk := uint64(g*per + i + 1)
			data, _ := im.blockData(blk)
			clear(data)
			im.addBlockCount(1)
			return blk
		}
	}
	im.addGroup()
	return im.allocBlock()
}

func (im *Image) freeBlock(blk uint64) {
	if blk == 0 {
		return
	}
	per := im.geom.dataBlocksPerGroup()
	idx := int(blk - 1)
	g := idx / per
	if g >= im.Groups() {
		return
	}
	if bitmapGet(im.blockBitmap(g), idx%per) {
		bitmapClear(im.blockBitmap(g), idx%per)
		im.addBlockCount(-1)
	}
}

// CorruptBytes overwrites raw image bytes — the fault-injection hook.
// The containing inode (if the range hits one, or a directory whose
// dirent block it hits) is NOT marked dirty: silent corruption is
// exactly the change an online checker does not get told about.
func (im *Image) CorruptBytes(off int64, b []byte) error {
	if off < 0 || off+int64(len(b)) > int64(len(im.buf)) {
		return fmt.Errorf("ldiskfs: corrupt range [%d,%d) outside image", off, off+int64(len(b)))
	}
	copy(im.buf[off:], b)
	return nil
}

// --- dirty-inode tracking (online checking support) -----------------------

// markDirty records a metadata change to ino.
func (im *Image) markDirty(ino Ino) {
	if im.dirty == nil {
		im.dirty = make(map[Ino]struct{})
	}
	im.dirty[ino] = struct{}{}
}

// MarkDirty exposes markDirty for callers that mutate inode metadata
// through raw byte access but still want the change feed to see it.
func (im *Image) MarkDirty(ino Ino) { im.markDirty(ino) }

// DirtyInodes returns the inodes touched since the last ClearDirty, in
// ascending order. Freed inodes appear too (the consumer notices the
// deallocation via InodeAllocated).
func (im *Image) DirtyInodes() []Ino {
	out := make([]Ino, 0, len(im.dirty))
	for ino := range im.dirty {
		out = append(out, ino)
	}
	// An aging workload can accumulate tens of thousands of dirty inodes
	// between checks, so this must not be quadratic.
	slices.Sort(out)
	return out
}

// ClearDirty resets the change feed (after a consumer caught up).
//
// Only safe when the image is quiesced: any inode dirtied between the
// consumer's DirtyInodes() call and this reset is silently dropped from
// the feed. A consumer running concurrently with mutators must use
// ConsumeDirty with the exact set it processed.
func (im *Image) ClearDirty() { im.dirty = nil }

// ConsumeDirty removes exactly the given inodes from the change feed,
// leaving anything dirtied since the caller's DirtyInodes() snapshot in
// place for the next round. This is the lost-update-safe acknowledgement
// path for online consumers.
func (im *Image) ConsumeDirty(inos []Ino) {
	if len(im.dirty) == 0 {
		return
	}
	for _, ino := range inos {
		delete(im.dirty, ino)
	}
}
