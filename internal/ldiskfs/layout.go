// Package ldiskfs implements a simplified ldiskfs/ext4-style disk image:
// a superblock, block groups with inode/block bitmaps, fixed-size inodes
// with inline extended-attribute areas (plus overflow xattr blocks), and
// directory-entry blocks. Lustre (paper §II-A) stores every piece of
// checking-relevant metadata in exactly these structures — inode EAs
// (LMA, LinkEA, LOVEA, filter-fid) and directory entries — so this
// substrate lets the FaultyRank scanner parse metadata from raw bytes
// the same way the paper's scanner walks a real ldiskfs device, and lets
// the fault injector corrupt metadata at the byte level.
//
// The format is deliberately Lustre-agnostic: EA names and values are
// opaque, and directory entries carry an opaque 16-byte tag (ldiskfs
// extends ext4 dirents with the child's Lustre FID; package lustre
// defines the encodings).
package ldiskfs

import (
	"encoding/binary"
	"fmt"
)

// Magic identifies a serialized image ("LDFSIM01" as little-endian u64).
const Magic uint64 = 0x31304D495346444C

// Geometry fixes the on-disk layout constants of an image.
type Geometry struct {
	BlockSize      int // bytes per block (power of two)
	InodeSize      int // bytes per inode (power of two, >= 256)
	InodesPerGroup int // inodes in each block group
	BlocksPerGroup int // total blocks in each group, incl. metadata
}

// DefaultGeometry mirrors common ldiskfs settings scaled for in-memory
// images: 4 KiB blocks, 512 B inodes (large inodes are the mechanism
// real ldiskfs uses to keep Lustre EAs inline), 4096 inodes per group.
func DefaultGeometry() Geometry {
	return Geometry{
		BlockSize:      4096,
		InodeSize:      512,
		InodesPerGroup: 4096,
		BlocksPerGroup: 1024,
	}
}

// CompactGeometry is a small-image variant used by tests.
func CompactGeometry() Geometry {
	return Geometry{
		BlockSize:      1024,
		InodeSize:      256,
		InodesPerGroup: 64,
		BlocksPerGroup: 64,
	}
}

// Validate checks internal consistency of the geometry.
func (g Geometry) Validate() error {
	switch {
	case g.BlockSize < 512 || g.BlockSize&(g.BlockSize-1) != 0:
		return fmt.Errorf("ldiskfs: bad block size %d", g.BlockSize)
	case g.InodeSize < inodeHeaderSize+64 || g.InodeSize&(g.InodeSize-1) != 0:
		return fmt.Errorf("ldiskfs: bad inode size %d", g.InodeSize)
	case g.InodesPerGroup < 8:
		return fmt.Errorf("ldiskfs: too few inodes per group (%d)", g.InodesPerGroup)
	case g.InodesPerGroup%8 != 0:
		return fmt.Errorf("ldiskfs: inodes per group must be a multiple of 8")
	}
	if g.inodeTableBlocks()*2 > g.BlocksPerGroup {
		return fmt.Errorf("ldiskfs: group too small: %d table blocks, %d total",
			g.inodeTableBlocks(), g.BlocksPerGroup)
	}
	if g.InodesPerGroup/8 > g.BlockSize {
		return fmt.Errorf("ldiskfs: inode bitmap exceeds one block")
	}
	if g.dataBlocksPerGroup() > 8*g.BlockSize {
		return fmt.Errorf("ldiskfs: block bitmap exceeds one block")
	}
	return nil
}

// inodeTableBlocks is the number of blocks the inode table occupies.
func (g Geometry) inodeTableBlocks() int {
	return (g.InodesPerGroup*g.InodeSize + g.BlockSize - 1) / g.BlockSize
}

// metaBlocksPerGroup: inode bitmap + block bitmap + inode table.
func (g Geometry) metaBlocksPerGroup() int { return 2 + g.inodeTableBlocks() }

// dataBlocksPerGroup is the number of allocatable data blocks per group.
func (g Geometry) dataBlocksPerGroup() int { return g.BlocksPerGroup - g.metaBlocksPerGroup() }

// groupBytes is the byte size of one block group.
func (g Geometry) groupBytes() int { return g.BlocksPerGroup * g.BlockSize }

// Superblock layout (block 0 of the image, little-endian):
//
//	off  size  field
//	  0     8  magic
//	  8     4  block size
//	 12     4  inode size
//	 16     4  inodes per group
//	 20     4  blocks per group
//	 24     4  group count
//	 28     8  allocated inode count
//	 36     8  allocated data block count
//	 44     8  label length + label bytes (max 64)
const (
	sbMagicOff       = 0
	sbBlockSizeOff   = 8
	sbInodeSizeOff   = 12
	sbInoPerGrpOff   = 16
	sbBlkPerGrpOff   = 20
	sbGroupCountOff  = 24
	sbInodeCountOff  = 28
	sbBlockCountOff  = 36
	sbLabelLenOff    = 44
	sbLabelOff       = 48
	sbLabelMax       = 64
	superblockBlocks = 1
)

// Inode header layout (little-endian). The remainder of the inode, from
// inodeHeaderSize to InodeSize, is the inline extended-attribute area.
//
//	off  size  field
//	  0     2  mode (FileType)
//	  2     2  link count
//	  4     8  size (bytes)
//	 12     8  atime (unix ns)
//	 20     8  mtime
//	 28     8  ctime
//	 36     4  uid
//	 40     4  gid
//	 44     8  xattr overflow block (global block number, 0 = none)
//	 52     8  indirect dirent block (global block number, 0 = none)
//	 60  8*8=64  direct dirent block pointers (global, 0 = none)
//	124     4  generation
const (
	inoModeOff      = 0
	inoLinksOff     = 2
	inoSizeOff      = 4
	inoAtimeOff     = 12
	inoMtimeOff     = 20
	inoCtimeOff     = 28
	inoUIDOff       = 36
	inoGIDOff       = 40
	inoXattrBlkOff  = 44
	inoIndirectOff  = 52
	inoDirectOff    = 60
	numDirect       = 8
	inoGenOff       = 60 + numDirect*8
	inodeHeaderSize = inoGenOff + 4
)

// FileType is the inode mode as understood by this substrate.
type FileType uint16

const (
	// TypeFree marks an unallocated inode slot.
	TypeFree FileType = iota
	// TypeFile is a regular file inode (an MDT file object).
	TypeFile
	// TypeDir is a directory inode.
	TypeDir
	// TypeObject is an OST stripe-object inode.
	TypeObject
	// TypeSymlink is a symbolic-link inode (target stored as an EA).
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeObject:
		return "object"
	case TypeSymlink:
		return "symlink"
	default:
		return fmt.Sprintf("type(%d)", uint16(t))
	}
}

// Ino is a 1-based inode number; 0 is invalid.
type Ino uint64

var le = binary.LittleEndian
