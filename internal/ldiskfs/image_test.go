package ldiskfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestImage(t *testing.T) *Image {
	t.Helper()
	im, err := New(CompactGeometry())
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if err := CompactGeometry().Validate(); err != nil {
		t.Fatalf("compact geometry invalid: %v", err)
	}
	bad := []Geometry{
		{BlockSize: 100, InodeSize: 256, InodesPerGroup: 64, BlocksPerGroup: 64},
		{BlockSize: 1024, InodeSize: 100, InodesPerGroup: 64, BlocksPerGroup: 64},
		{BlockSize: 1024, InodeSize: 256, InodesPerGroup: 4, BlocksPerGroup: 64},
		{BlockSize: 1024, InodeSize: 256, InodesPerGroup: 63, BlocksPerGroup: 64},
		{BlockSize: 1024, InodeSize: 256, InodesPerGroup: 64, BlocksPerGroup: 8},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("bad geometry %d accepted: %+v", i, g)
		}
	}
}

func TestNewAndFromBytes(t *testing.T) {
	im := newTestImage(t)
	im.SetLabel("mdt0")
	ino, err := im.AllocInode(TypeDir)
	if err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), im.Bytes()...)
	got, err := FromBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label() != "mdt0" {
		t.Errorf("label = %q", got.Label())
	}
	if !got.InodeAllocated(ino) {
		t.Error("allocation lost in round trip")
	}
	typ, err := got.Type(ino)
	if err != nil || typ != TypeDir {
		t.Errorf("type = %v, %v", typ, err)
	}
}

func TestFromBytesRejectsGarbage(t *testing.T) {
	if _, err := FromBytes(nil); !errors.Is(err, ErrBadImage) {
		t.Errorf("nil: %v", err)
	}
	if _, err := FromBytes(make([]byte, 4096)); !errors.Is(err, ErrBadImage) {
		t.Errorf("zeros: %v", err)
	}
	im := newTestImage(t)
	trunc := im.Bytes()[:len(im.Bytes())-10]
	if _, err := FromBytes(trunc); !errors.Is(err, ErrBadImage) {
		t.Errorf("truncated: %v", err)
	}
}

func TestAllocFreeInode(t *testing.T) {
	im := newTestImage(t)
	a, _ := im.AllocInode(TypeFile)
	b, _ := im.AllocInode(TypeDir)
	if a == b {
		t.Fatal("duplicate inode numbers")
	}
	if im.InodeCount() != 2 {
		t.Fatalf("count = %d", im.InodeCount())
	}
	if err := im.FreeInode(a); err != nil {
		t.Fatal(err)
	}
	if im.InodeAllocated(a) {
		t.Error("freed inode still allocated")
	}
	if err := im.FreeInode(a); !errors.Is(err, ErrNotAllocated) {
		t.Errorf("double free: %v", err)
	}
	// freed slot is reused
	c, _ := im.AllocInode(TypeObject)
	if c != a {
		t.Errorf("expected reuse of %d, got %d", a, c)
	}
}

func TestAllocGrowsGroups(t *testing.T) {
	im := newTestImage(t)
	per := im.Geometry().InodesPerGroup
	for i := 0; i < per+3; i++ {
		if _, err := im.AllocInode(TypeFile); err != nil {
			t.Fatal(err)
		}
	}
	if im.Groups() < 2 {
		t.Fatalf("groups = %d, want >= 2", im.Groups())
	}
	if im.InodeCount() != int64(per+3) {
		t.Fatalf("count = %d", im.InodeCount())
	}
	// image still parses after growth
	if _, err := FromBytes(im.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestScalarFields(t *testing.T) {
	im := newTestImage(t)
	ino, _ := im.AllocInode(TypeFile)
	if err := im.SetSize(ino, 123456); err != nil {
		t.Fatal(err)
	}
	if sz, _ := im.Size(ino); sz != 123456 {
		t.Errorf("size = %d", sz)
	}
	if err := im.SetTimes(ino, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	a, m, c, err := im.Times(ino)
	if err != nil || a != 1 || m != 2 || c != 3 {
		t.Errorf("times = %d %d %d %v", a, m, c, err)
	}
	if err := im.SetOwner(ino, 1000, 2000); err != nil {
		t.Fatal(err)
	}
	uid, gid, err := im.Owner(ino)
	if err != nil || uid != 1000 || gid != 2000 {
		t.Errorf("owner = %d %d %v", uid, gid, err)
	}
	if _, err := im.Size(0); !errors.Is(err, ErrBadInode) {
		t.Errorf("size(0): %v", err)
	}
	if _, err := im.Size(im.MaxInode() + 1); !errors.Is(err, ErrBadInode) {
		t.Errorf("size(max+1): %v", err)
	}
}

func TestXattrBasic(t *testing.T) {
	im := newTestImage(t)
	ino, _ := im.AllocInode(TypeFile)
	if err := im.SetXattr(ino, "lma", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := im.SetXattr(ino, "link", []byte("parent")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := im.GetXattr(ino, "lma")
	if err != nil || !ok || !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("lma = %v %v %v", v, ok, err)
	}
	// replace
	if err := im.SetXattr(ino, "lma", []byte{9}); err != nil {
		t.Fatal(err)
	}
	v, _, _ = im.GetXattr(ino, "lma")
	if !bytes.Equal(v, []byte{9}) {
		t.Fatalf("replaced lma = %v", v)
	}
	xs, err := im.Xattrs(ino)
	if err != nil || len(xs) != 2 {
		t.Fatalf("xattrs = %v %v", xs, err)
	}
	if err := im.RemoveXattr(ino, "link"); err != nil {
		t.Fatal(err)
	}
	if err := im.RemoveXattr(ino, "link"); !errors.Is(err, ErrNotExist) {
		t.Errorf("remove missing: %v", err)
	}
	if _, ok, _ := im.GetXattr(ino, "link"); ok {
		t.Error("removed xattr still present")
	}
	if _, err := im.Xattrs(Ino(9999999)); err == nil {
		t.Error("xattrs of invalid inode")
	}
}

func TestXattrOverflowToBlock(t *testing.T) {
	im := newTestImage(t)
	ino, _ := im.AllocInode(TypeFile)
	big := bytes.Repeat([]byte{0xAB}, 500) // > inline area of 256B inode
	if err := im.SetXattr(ino, "lov", big); err != nil {
		t.Fatal(err)
	}
	if im.BlockCount() == 0 {
		t.Error("no overflow block allocated")
	}
	v, ok, err := im.GetXattr(ino, "lov")
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("overflowed value mismatch: %d bytes, ok=%v err=%v", len(v), ok, err)
	}
	// shrink back: overflow block released, value back inline
	if err := im.SetXattr(ino, "lov", []byte{1}); err != nil {
		t.Fatal(err)
	}
	if im.BlockCount() != 0 {
		t.Errorf("overflow block not released: %d", im.BlockCount())
	}
	v, _, _ = im.GetXattr(ino, "lov")
	if !bytes.Equal(v, []byte{1}) {
		t.Fatalf("shrunk value = %v", v)
	}
	// larger than a block is rejected
	huge := make([]byte, im.Geometry().BlockSize+1)
	if err := im.SetXattr(ino, "x", huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge xattr: %v", err)
	}
}

func TestXattrRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		im := MustNew(CompactGeometry())
		ino, _ := im.AllocInode(TypeFile)
		want := make(map[string][]byte)
		for i := 0; i < r.Intn(6); i++ {
			name := string(rune('a'+i)) + "attr"
			val := make([]byte, r.Intn(40))
			r.Read(val)
			want[name] = val
			if err := im.SetXattr(ino, name, val); err != nil {
				return false
			}
		}
		got, err := im.Xattrs(ino)
		if err != nil || len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if !bytes.Equal(got[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptBytes(t *testing.T) {
	im := newTestImage(t)
	ino, _ := im.AllocInode(TypeFile)
	im.SetXattr(ino, "lma", []byte{1, 2, 3, 4})
	off, err := im.InodeOffset(ino)
	if err != nil {
		t.Fatal(err)
	}
	// stomp the inline EA area
	if err := im.CorruptBytes(off+int64(inodeHeaderSize), bytes.Repeat([]byte{0xFF}, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := im.Xattrs(ino); err == nil {
		t.Error("corrupted EA area parsed cleanly")
	}
	if err := im.CorruptBytes(-1, []byte{0}); err == nil {
		t.Error("negative offset accepted")
	}
	if err := im.CorruptBytes(int64(len(im.Bytes())), []byte{0}); err == nil {
		t.Error("out-of-range offset accepted")
	}
}

func TestDirtyInodesSorted(t *testing.T) {
	im := MustNew(CompactGeometry())
	r := rand.New(rand.NewSource(7))
	want := map[Ino]struct{}{}
	for i := 0; i < 500; i++ {
		ino := Ino(1 + r.Intn(10000))
		im.MarkDirty(ino)
		want[ino] = struct{}{}
	}
	got := im.DirtyInodes()
	if len(got) != len(want) {
		t.Fatalf("%d dirty inodes, want %d", len(got), len(want))
	}
	for i, ino := range got {
		if _, ok := want[ino]; !ok {
			t.Fatalf("unexpected dirty ino %d", ino)
		}
		if i > 0 && got[i-1] >= ino {
			t.Fatalf("not strictly ascending at %d: %d >= %d", i, got[i-1], ino)
		}
	}
	im.ClearDirty()
	if len(im.DirtyInodes()) != 0 {
		t.Fatal("feed not cleared")
	}
}

// TestConsumeDirtyKeepsLateArrivals: ConsumeDirty acknowledges exactly
// the snapshot a consumer processed; inodes dirtied after that snapshot
// was taken stay in the feed. (ClearDirty would drop them — the lost
// update the online tracker used to ship with.)
func TestConsumeDirtyKeepsLateArrivals(t *testing.T) {
	im := MustNew(CompactGeometry())
	im.MarkDirty(3)
	im.MarkDirty(7)
	snapshot := im.DirtyInodes()

	// A mutator dirties a new inode between the consumer's snapshot and
	// its commit.
	im.MarkDirty(11)

	im.ConsumeDirty(snapshot)
	got := im.DirtyInodes()
	want := []Ino{11}
	if len(got) != 1 || got[0] != want[0] {
		t.Fatalf("after consume: feed %v, want %v", got, want)
	}

	// Consuming from an empty feed (and consuming inodes never dirtied)
	// is a no-op, not a panic.
	im.ConsumeDirty([]Ino{11, 99})
	im.ConsumeDirty([]Ino{42})
	if len(im.DirtyInodes()) != 0 {
		t.Fatalf("feed not empty: %v", im.DirtyInodes())
	}
}

// BenchmarkDirtyInodes guards the feed drain against the quadratic
// insertion sort it used to ship with: an aging workload can easily
// accumulate 64k dirty inodes between online checks.
func BenchmarkDirtyInodes(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			im := MustNew(CompactGeometry())
			r := rand.New(rand.NewSource(1))
			for i := 0; i < n; i++ {
				im.MarkDirty(Ino(r.Uint64() >> 16))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := im.DirtyInodes(); len(got) == 0 {
					b.Fatal("empty feed")
				}
			}
		})
	}
}
