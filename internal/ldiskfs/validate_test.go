package ldiskfs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func assertValid(t *testing.T, im *Image, ctx string) {
	t.Helper()
	if errs := im.Validate(); len(errs) != 0 {
		t.Fatalf("%s: image invalid: %v", ctx, errs)
	}
}

func TestValidateFreshImage(t *testing.T) {
	assertValid(t, newTestImage(t), "fresh")
}

// TestValidateAfterRandomOps: arbitrary sequences of this package's
// operations must never corrupt an image's structural bookkeeping.
func TestValidateAfterRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		im := MustNew(CompactGeometry())
		var files, dirs []Ino
		for op := 0; op < 120; op++ {
			switch r.Intn(7) {
			case 0, 1: // alloc file
				if ino, err := im.AllocInode(TypeFile); err == nil {
					files = append(files, ino)
				}
			case 2: // alloc dir
				if ino, err := im.AllocInode(TypeDir); err == nil {
					dirs = append(dirs, ino)
				}
			case 3: // set xattr (sometimes forcing overflow)
				if len(files) > 0 {
					ino := files[r.Intn(len(files))]
					val := make([]byte, r.Intn(400))
					im.SetXattr(ino, fmt.Sprintf("k%d", r.Intn(3)), val)
				}
			case 4: // add dirent
				if len(dirs) > 0 && len(files) > 0 {
					dir := dirs[r.Intn(len(dirs))]
					child := files[r.Intn(len(files))]
					im.AddDirent(dir, Dirent{
						Ino: child, Type: TypeFile,
						Name: fmt.Sprintf("e%d", op),
					})
				}
			case 5: // remove dirent
				if len(dirs) > 0 {
					dir := dirs[r.Intn(len(dirs))]
					if ents, _ := im.Dirents(dir); len(ents) > 0 {
						im.RemoveDirent(dir, ents[r.Intn(len(ents))].Name)
					}
				}
			case 6: // free inode
				if len(files) > 2 {
					i := r.Intn(len(files))
					if im.FreeInode(files[i]) == nil {
						files = append(files[:i], files[i+1:]...)
					}
				}
			}
		}
		return len(im.Validate()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCounterDrift(t *testing.T) {
	im := newTestImage(t)
	im.AllocInode(TypeFile)
	// Stomp the superblock inode counter.
	raw := im.Bytes()
	raw[sbInodeCountOff] = 99
	if errs := im.Validate(); len(errs) == 0 {
		t.Fatal("counter drift not detected")
	}
}

func TestValidateDetectsTypeBitmapDisagreement(t *testing.T) {
	im := newTestImage(t)
	ino, _ := im.AllocInode(TypeFile)
	off, _ := im.InodeOffset(ino)
	// Zero the mode while the bitmap still says allocated.
	im.CorruptBytes(off, []byte{0, 0})
	if errs := im.Validate(); len(errs) == 0 {
		t.Fatal("allocated-but-free-typed inode not detected")
	}
}

func TestValidateDetectsBadDirentBlockPointer(t *testing.T) {
	im := newTestImage(t)
	dir, _ := im.AllocInode(TypeDir)
	child, _ := im.AllocInode(TypeFile)
	im.AddDirent(dir, Dirent{Ino: child, Type: TypeFile, Name: "x"})
	// Point the first direct dirent block somewhere wild.
	off, _ := im.InodeOffset(dir)
	wild := make([]byte, 8)
	wild[0] = 0xFF
	wild[1] = 0xFF
	im.CorruptBytes(off+int64(inoDirectOff), wild)
	if errs := im.Validate(); len(errs) == 0 {
		t.Fatal("wild block pointer not detected")
	}
}

func TestValidateDetectsDoubleOwnedBlock(t *testing.T) {
	im := newTestImage(t)
	d1, _ := im.AllocInode(TypeDir)
	d2, _ := im.AllocInode(TypeDir)
	c, _ := im.AllocInode(TypeFile)
	im.AddDirent(d1, Dirent{Ino: c, Type: TypeFile, Name: "a"})
	im.AddDirent(d2, Dirent{Ino: c, Type: TypeFile, Name: "b"})
	// Make d2's first dirent block alias d1's.
	off1, _ := im.InodeOffset(d1)
	off2, _ := im.InodeOffset(d2)
	blk := make([]byte, 8)
	copy(blk, im.Bytes()[off1+int64(inoDirectOff):off1+int64(inoDirectOff)+8])
	im.CorruptBytes(off2+int64(inoDirectOff), blk)
	if errs := im.Validate(); len(errs) == 0 {
		t.Fatal("doubly-owned block not detected")
	}
}
