package wire

import (
	"fmt"

	"faultyrank/internal/telemetry"
)

// Telemetry is the trailer a scanner ships after its last chunk (and
// best-effort when its context is cancelled): the server's metric
// snapshot plus, optionally, its span tree. The collector gathers these
// tolerantly — a missing or malformed trailer never fails a stream
// whose chunks completed — and the checker merges them into the
// cluster manifest.
type Telemetry struct {
	Server   string
	Snapshot telemetry.Snapshot
	Span     *telemetry.SpanNode
}

// Telemetry encoding (little-endian):
//
//	u16 serverLen | server
//	u32 snapLen   | snapshot blob (telemetry.EncodeSnapshot)
//	u32 spanLen   | span blob (telemetry.EncodeSpanNode; len 0 = absent)
//
// Like the chunk codec, the encoding is bijective: the inner telemetry
// blobs enforce canonical form, so a payload either fails
// DecodeTelemetry or re-encodes to identical bytes (the fuzz target
// leans on this).

// EncodeTelemetry serializes one trailer for transfer.
func EncodeTelemetry(t *Telemetry) []byte {
	snap := telemetry.EncodeSnapshot(t.Snapshot)
	buf := make([]byte, 0, 2+len(t.Server)+8+len(snap)+64)
	buf = appendU16(buf, uint16(len(t.Server)))
	buf = append(buf, t.Server...)
	buf = appendU32(buf, uint32(len(snap)))
	buf = append(buf, snap...)
	if t.Span == nil {
		return appendU32(buf, 0)
	}
	span := telemetry.EncodeSpanNode(t.Span)
	buf = appendU32(buf, uint32(len(span)))
	return append(buf, span...)
}

// DecodeTelemetry parses an encoded trailer. Lengths come from an
// untrusted header, so they are bounded against the payload before any
// slice is taken, and the inner blobs go through the telemetry codec's
// own canonical-form and allocation checks.
func DecodeTelemetry(b []byte) (*Telemetry, error) {
	d := &decoder{b: b}
	t := &Telemetry{}
	t.Server = d.str16()

	snapLen := int(d.u32())
	if !d.need(snapLen) {
		return nil, fmt.Errorf("wire: telemetry snapshot blob truncated")
	}
	snap, err := telemetry.DecodeSnapshot(d.b[d.off : d.off+snapLen])
	if err != nil {
		return nil, fmt.Errorf("wire: telemetry trailer: %w", err)
	}
	t.Snapshot = snap
	d.off += snapLen

	spanLen := int(d.u32())
	if spanLen > 0 {
		if !d.need(spanLen) {
			return nil, fmt.Errorf("wire: telemetry span blob truncated")
		}
		node, err := telemetry.DecodeSpanNode(d.b[d.off : d.off+spanLen])
		if err != nil {
			return nil, fmt.Errorf("wire: telemetry trailer: %w", err)
		}
		t.Span = node
		d.off += spanLen
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes in telemetry trailer", len(b)-d.off)
	}
	return t, nil
}
