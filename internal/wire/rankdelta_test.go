package wire

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"faultyrank/internal/core"
	"faultyrank/internal/graph"
)

func randomRankDelta(r *rand.Rand) *core.RankDelta {
	d := &core.RankDelta{
		Kind:    uint8(1 + r.Intn(7)),
		Part:    uint32(r.Intn(8)),
		Iter:    uint32(r.Intn(100)),
		Base:    r.NormFloat64(),
		PerSink: r.Float64(),
		Diff:    r.Float64(),
		Sum:     uint64(r.Int63()),
		Halt:    r.Intn(2) == 1,
	}
	vec := func(n int) []float64 {
		if n == 0 {
			return nil
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = r.NormFloat64()
		}
		return out
	}
	d.Sink = vec(r.Intn(5))
	d.Ghost = vec(r.Intn(5))
	d.ID = vec(r.Intn(5))
	d.Prop = vec(r.Intn(5))
	if k := r.Intn(4); k > 0 {
		d.Bound = make([][]float64, k)
		for q := range d.Bound {
			d.Bound[q] = vec(r.Intn(4))
		}
	}
	return d
}

// TestRankDeltaRoundTrip: encode/decode is the identity and the
// encoded size always matches WireSize (the accounting used by the
// in-process path to mirror TCP volumes).
func TestRankDeltaRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for i := 0; i < 200; i++ {
		d := randomRankDelta(r)
		enc := EncodeRankDelta(d)
		if len(enc) != d.WireSize() {
			t.Fatalf("encoded %d bytes, WireSize says %d (frame %+v)", len(enc), d.WireSize(), d)
		}
		got, err := DecodeRankDelta(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(d, got) {
			t.Fatalf("round trip diverged:\n in: %+v\nout: %+v", d, got)
		}
	}
}

// TestRankDeltaRejects: version, halt, kind, lying counts, trailing
// bytes — every malformed shape must fail, never allocate per a lying
// header, and never be silently normalised.
func TestRankDeltaRejects(t *testing.T) {
	valid := EncodeRankDelta(&core.RankDelta{Kind: core.RankUpA, Sink: []float64{1, 2}})

	cases := map[string][]byte{
		"empty":          {},
		"bad version":    append([]byte{9}, valid[1:]...),
		"stale version":  append([]byte{1}, valid[1:]...),
		"bad kind":       append([]byte{RankDeltaVersion, 0}, valid[2:]...),
		"bad halt":       mutate(valid, 42, 7),
		"trailing bytes": append(append([]byte{}, valid...), 0),
		"truncated":      valid[:len(valid)-3],
	}
	// Lying sink count far past the payload.
	lie := append([]byte{}, valid[:43]...)
	lie = appendU32(lie, 0xFFFFFF)
	cases["lying count"] = lie

	for name, b := range cases {
		if d, err := DecodeRankDelta(b); err == nil {
			t.Fatalf("%s: decoded %+v from malformed payload", name, d)
		}
	}
}

func mutate(b []byte, off int, v byte) []byte {
	out := append([]byte{}, b...)
	out[off] = v
	return out
}

// TestRankExchangeTCPExact runs a complete partitioned rank execution
// over real TCP links — workers dial in, announce partitions via
// Hello, and the BSP protocol crosses the versioned codec — and
// demands bit-identical ranks vs the single-process kernel.
func TestRankExchangeTCPExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	var edges []graph.Edge
	for i := 0; i < 700; i++ {
		src, dst := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
		if rng.Intn(4) != 0 {
			edges = append(edges, graph.Edge{Src: dst, Dst: src})
		}
	}
	b := graph.NewBidirected(n, edges, 4)
	opt := core.DefaultOptions()
	want := core.Run(b, opt)

	for _, k := range []int{1, 3} {
		owners := make([]uint16, n)
		for g := range owners {
			owners[g] = uint16(rng.Intn(k))
		}
		plan := graph.PartitionPlan(b, owners, k, 4)

		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		x, addr, err := NewRankExchange("", 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]uint64, k)
		for p, sub := range plan.Parts {
			sums[p] = sub.Fingerprint()
		}

		var wg sync.WaitGroup
		for p := 0; p < k; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				link, err := DialRankLink(ctx, addr, p, k, sums[p], DefaultRetryPolicy(), 5*time.Second)
				if err != nil {
					t.Errorf("worker %d dial: %v", p, err)
					return
				}
				defer link.Close()
				if err := core.RunPartition(core.NewPartState(plan.Parts[p], opt), link); err != nil {
					t.Errorf("worker %d: %v", p, err)
				}
			}(p)
		}

		links, err := x.AcceptWorkers(ctx, WorkerSpec{K: k, Sums: sums})
		if err != nil {
			t.Fatalf("k=%d accept: %v", k, err)
		}
		got, rep, err := core.Coordinate(plan, links, opt)
		if err != nil {
			t.Fatalf("k=%d coordinate: %v", k, err)
		}
		wg.Wait()
		x.Close()
		cancel()

		for i := range got.IDRank {
			if math.Float64bits(got.IDRank[i]) != math.Float64bits(want.IDRank[i]) ||
				math.Float64bits(got.PropRank[i]) != math.Float64bits(want.PropRank[i]) {
				t.Fatalf("k=%d: rank %d diverges from single-process kernel", k, i)
			}
		}
		if got.Iterations != want.Iterations || got.Converged != want.Converged {
			t.Fatalf("k=%d: iterations %d/%v want %d/%v", k, got.Iterations, got.Converged, want.Iterations, want.Converged)
		}
		if len(rep.Supersteps) != want.Iterations {
			t.Fatalf("k=%d: %d supersteps for %d iterations", k, len(rep.Supersteps), want.Iterations)
		}
	}
}

// TestRankExchangeRejectsBadHello: duplicate and out-of-range
// partition announcements fail the handshake.
func TestRankExchangeRejectsBadHello(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for name, parts := range map[string][]int{
		"duplicate":    {1, 1},
		"out-of-range": {0, 7},
	} {
		x, addr, err := NewRankExchange("", 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parts {
			link, err := DialRankLink(ctx, addr, p, 2, 1, RetryPolicy{}, 2*time.Second)
			if err != nil {
				t.Fatalf("%s: dial: %v", name, err)
			}
			defer link.Close()
		}
		if _, err := x.AcceptWorkers(ctx, WorkerSpec{K: 2}); err == nil {
			t.Fatalf("%s: handshake accepted", name)
		}
		x.Close()
	}
}

// TestRankExchangeBindAddress: the exchange listens where it is told
// (the hook that lets workers beyond localhost dial in), defaults to a
// fresh localhost port, and reports unusable binds instead of silently
// reverting to the default.
func TestRankExchangeBindAddress(t *testing.T) {
	x, addr, err := NewRankExchange("127.0.0.1:0", time.Second)
	if err != nil {
		t.Fatalf("explicit loopback bind: %v", err)
	}
	if host, _, err := net.SplitHostPort(addr); err != nil || host != "127.0.0.1" {
		t.Fatalf("explicit bind resolved to %q (%v)", addr, err)
	}
	// A second exchange on the SAME port must fail — proof the bind
	// address is honoured rather than replaced with a fresh port.
	if x2, a2, err := NewRankExchange(addr, time.Second); err == nil {
		x2.Close()
		t.Fatalf("duplicate bind of %s succeeded as %s", addr, a2)
	}
	x.Close()

	xd, addr, err := NewRankExchange("", time.Second)
	if err != nil {
		t.Fatalf("default bind: %v", err)
	}
	defer xd.Close()
	if host, _, err := net.SplitHostPort(addr); err != nil || host != "127.0.0.1" {
		t.Fatalf("default bind resolved to %q (%v)", addr, err)
	}
}

// TestRankExchangeRejectsHelloMismatch: a worker announcing the wrong K
// or the wrong shard fingerprint — a stale or mis-pointed frrankd — is
// refused with ErrHelloMismatch before any superstep runs, as is a
// shard-less worker when shipping is not configured.
func TestRankExchangeRejectsHelloMismatch(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	cases := map[string]struct {
		k    int
		sum  uint64
		spec WorkerSpec
	}{
		"wrong K":            {k: 4, sum: 7, spec: WorkerSpec{K: 2, Sums: []uint64{7, 7}}},
		"wrong fingerprint":  {k: 2, sum: 9, spec: WorkerSpec{K: 2, Sums: []uint64{7, 7}}},
		"no shard, no ship": {k: 0, sum: 0, spec: WorkerSpec{K: 2}},
	}
	for name, tc := range cases {
		x, addr, err := NewRankExchange("", 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		link, err := DialRankLink(ctx, addr, 0, tc.k, tc.sum, RetryPolicy{}, 2*time.Second)
		if err != nil {
			t.Fatalf("%s: dial: %v", name, err)
		}
		_, err = x.AcceptWorkers(ctx, tc.spec)
		if !errors.Is(err, ErrHelloMismatch) {
			t.Fatalf("%s: got %v, want ErrHelloMismatch", name, err)
		}
		link.Close()
		x.Close()
	}

	// A stale worker binary speaks codec version 1: its Hello must die
	// in DecodeRankDelta, not be half-understood.
	x, addr, err := NewRankExchange("", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	stale := EncodeRankDelta(&core.RankDelta{Kind: core.RankHello, Iter: 1, Sum: 1})
	stale[0] = 1 // the version byte a v1 binary would send
	if err := WriteFrame(conn, MsgRankDelta, stale); err != nil {
		t.Fatal(err)
	}
	if _, err := x.AcceptWorkers(ctx, WorkerSpec{K: 1, Sums: []uint64{1}}); err == nil {
		t.Fatal("stale codec version accepted")
	}
}

// TestRankShardShipping: a worker that announces with no shard gets its
// partition's FRSG blob shipped over the link, byte-identical to the
// coordinator's canonical encoding.
func TestRankShardShipping(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	b := graph.NewBidirected(40, []graph.Edge{{Src: 0, Dst: 9}, {Src: 9, Dst: 0}, {Src: 3, Dst: 22}}, 2)
	owners := make([]uint16, b.N())
	for g := range owners {
		owners[g] = uint16(g % 2)
	}
	plan := graph.PartitionPlan(b, owners, 2, 2)
	blobs := [][]byte{graph.EncodeSubGraph(plan.Parts[0]), graph.EncodeSubGraph(plan.Parts[1])}

	x, addr, err := NewRankExchange("", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	type joined struct {
		p    int
		blob []byte
		err  error
	}
	got := make(chan joined, 2)
	for p := 0; p < 2; p++ {
		go func(p int) {
			link, blob, err := JoinRankShipped(ctx, addr, p, RetryPolicy{}, 2*time.Second)
			if err == nil {
				defer link.Close()
			}
			got <- joined{p: p, blob: blob, err: err}
		}(p)
	}
	if _, err := x.AcceptWorkers(ctx, WorkerSpec{K: 2, Shard: func(p int) []byte { return blobs[p] }}); err != nil {
		t.Fatalf("accept: %v", err)
	}
	for i := 0; i < 2; i++ {
		j := <-got
		if j.err != nil {
			t.Fatalf("worker %d: %v", j.p, j.err)
		}
		if !bytes.Equal(j.blob, blobs[j.p]) {
			t.Fatalf("worker %d: shipped blob differs from canonical encoding", j.p)
		}
		if sub, err := graph.DecodeSubGraph(j.blob); err != nil || sub.Part != j.p {
			t.Fatalf("worker %d: shipped blob decode: %v", j.p, err)
		}
	}
}
