package wire

import (
	"context"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// FIDInfo is the answer to a StatFID RPC: everything a rule-based
// checker cross-checks about one object.
type FIDInfo struct {
	Exists bool
	Type   ldiskfs.FileType
	Size   uint64
	// Xattrs carries the object's raw EAs (LMA/LinkEA/LOVEA/filter-fid);
	// the querying side decodes whichever it needs.
	Xattrs map[string][]byte
}

// encodeFIDInfo: u8 exists | u16 type | u64 size | u16 n | n × {u8 nameLen,
// name, u32 valLen, val}. Field widths are checked before encoding — a
// name, value, or xattr count that does not fit its width is rejected
// rather than silently truncated, keeping the codec bijective (a frame
// that encodes always decodes back to the same FIDInfo).
func encodeFIDInfo(in FIDInfo) ([]byte, error) {
	if len(in.Xattrs) > math.MaxUint16 {
		return nil, fmt.Errorf("wire: %d xattrs exceed the u16 count field", len(in.Xattrs))
	}
	buf := make([]byte, 0, 64)
	if in.Exists {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendU16(buf, uint16(in.Type))
	buf = appendU64(buf, in.Size)
	buf = appendU16(buf, uint16(len(in.Xattrs)))
	// deterministic order is unnecessary on the wire; iterate freely
	for name, val := range in.Xattrs {
		if len(name) > math.MaxUint8 {
			return nil, fmt.Errorf("wire: xattr name %.16q… is %d bytes, exceeds the u8 length field", name, len(name))
		}
		if uint64(len(val)) > math.MaxUint32 {
			return nil, fmt.Errorf("wire: xattr %q value is %d bytes, exceeds the u32 length field", name, len(val))
		}
		buf = append(buf, byte(len(name)))
		buf = append(buf, name...)
		buf = appendU32(buf, uint32(len(val)))
		buf = append(buf, val...)
	}
	return buf, nil
}

func decodeFIDInfo(b []byte) (FIDInfo, error) {
	d := &decoder{b: b}
	var in FIDInfo
	in.Exists = d.u8() == 1
	in.Type = ldiskfs.FileType(d.u16())
	in.Size = d.u64()
	n := int(d.u16())
	if n > 0 {
		in.Xattrs = make(map[string][]byte, n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		nl := int(d.u8())
		if !d.need(nl) {
			break
		}
		name := string(d.b[d.off : d.off+nl])
		d.off += nl
		vl := int(d.u32())
		if !d.need(vl) {
			break
		}
		val := make([]byte, vl)
		copy(val, d.b[d.off:d.off+vl])
		d.off += vl
		in.Xattrs[name] = val
	}
	return in, d.err
}

// ObjectService answers StatFID RPCs for one server image. It builds a
// FID→inode object index up front, playing the role of Lustre's OI
// (object index) files.
type ObjectService struct {
	img   *ldiskfs.Image
	index map[lustre.FID]ldiskfs.Ino

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewObjectService indexes the image and returns a service ready to
// Serve.
func NewObjectService(img *ldiskfs.Image) (*ObjectService, error) {
	s := &ObjectService{img: img, index: make(map[lustre.FID]ldiskfs.Ino)}
	err := img.AllocatedInodes(func(ino ldiskfs.Ino, _ ldiskfs.FileType) error {
		raw, ok, err := img.GetXattr(ino, lustre.XattrLMA)
		if err != nil || !ok {
			return nil // unidentifiable inode: not reachable by FID
		}
		fid, err := lustre.DecodeLMA(raw)
		if err == nil && !fid.IsZero() {
			if _, dup := s.index[fid]; !dup {
				s.index[fid] = ino
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Stat resolves one FID locally (the in-process fast path used when the
// checker runs without TCP).
func (s *ObjectService) Stat(f lustre.FID) FIDInfo {
	ino, ok := s.index[f]
	if !ok {
		return FIDInfo{}
	}
	info := FIDInfo{Exists: true}
	if t, err := s.img.Type(ino); err == nil {
		info.Type = t
	}
	if sz, err := s.img.Size(ino); err == nil {
		info.Size = sz
	}
	if xs, err := s.img.Xattrs(ino); err == nil {
		info.Xattrs = xs
	}
	return info
}

// Listen starts accepting StatFID connections on a fresh localhost port
// and returns the address.
func (s *ObjectService) Listen() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the listener, force-closes any connection still open
// (a stuck or dead client must not hang shutdown), and waits for the
// in-flight handlers.
func (s *ObjectService) Close() {
	s.mu.Lock()
	if s.ln != nil && !s.closed {
		s.closed = true
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *ObjectService) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *ObjectService) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *ObjectService) handle(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case MsgStatFID:
			if len(payload) != 16 {
				_ = WriteError(conn, fmt.Errorf("bad StatFID payload"))
				continue
			}
			rec, err := encodeFIDInfo(s.Stat(lustre.FIDFromBytes(payload)))
			if err != nil {
				_ = WriteError(conn, err)
				continue
			}
			if err := WriteFrame(conn, MsgFIDInfo, rec); err != nil {
				return
			}
		case MsgStatBatch:
			fids, err := decodeStatBatch(payload)
			if err != nil {
				_ = WriteError(conn, err)
				continue
			}
			var out []byte
			var encErr error
			for _, f := range fids {
				rec, err := encodeFIDInfo(s.Stat(f))
				if err != nil {
					encErr = err
					break
				}
				out = appendU32(out, uint32(len(rec)))
				out = append(out, rec...)
			}
			if encErr != nil {
				_ = WriteError(conn, encErr)
				continue
			}
			if err := WriteFrame(conn, MsgFIDInfoBatch, out); err != nil {
				return
			}
		case MsgBye:
			return
		default:
			_ = WriteError(conn, fmt.Errorf("unexpected message %d", typ))
		}
	}
}

// Client is a StatFID RPC client holding one connection.
type Client struct {
	conn net.Conn
	ctx  context.Context
	// opTimeout bounds each RPC's write and reply read (0 = the ctx
	// deadline only), so a wedged service surfaces as an I/O timeout
	// instead of hanging the checker phase.
	opTimeout   time.Duration
	dialRetries int
}

// Dial connects to an ObjectService with no deadline and no retry.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr, RetryPolicy{}, 0)
}

// DialContext connects to an ObjectService under ctx, retrying the dial
// per policy; opTimeout bounds each subsequent RPC round trip.
func DialContext(ctx context.Context, addr string, policy RetryPolicy, opTimeout time.Duration) (*Client, error) {
	conn, retries, err := dialRetry(ctx, addr, policy)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, ctx: ctx, opTimeout: opTimeout, dialRetries: retries}, nil
}

// DialRetries reports how many redials the initial connect needed.
func (c *Client) DialRetries() int { return c.dialRetries }

// armDeadlines applies the per-op/ctx deadline to both directions of
// the next round trip and reports a context already expired.
func (c *Client) armDeadlines() error {
	ctx := c.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return c.conn.SetDeadline(ioDeadline(ctx, c.opTimeout))
}

// Stat performs one synchronous StatFID round trip — deliberately one
// request per object, like LFSCK's per-inode pipeline.
func (c *Client) Stat(f lustre.FID) (FIDInfo, error) {
	if err := c.armDeadlines(); err != nil {
		return FIDInfo{}, err
	}
	fb := f.Bytes()
	if err := WriteFrame(c.conn, MsgStatFID, fb[:]); err != nil {
		return FIDInfo{}, err
	}
	typ, payload, err := ReadFrame(c.conn)
	if err != nil {
		return FIDInfo{}, err
	}
	if err := AsError(typ, payload); err != nil {
		return FIDInfo{}, err
	}
	if typ != MsgFIDInfo {
		return FIDInfo{}, fmt.Errorf("wire: unexpected reply %d", typ)
	}
	return decodeFIDInfo(payload)
}

// StatBatch resolves many FIDs in one round trip — the batched-RPC
// improvement a modernised LFSCK could adopt (cf. Dai et al., MSST'19);
// kept alongside the per-object Stat so both designs can be compared.
func (c *Client) StatBatch(fids []lustre.FID) ([]FIDInfo, error) {
	if err := c.armDeadlines(); err != nil {
		return nil, err
	}
	payload := appendU32(nil, uint32(len(fids)))
	for _, f := range fids {
		fb := f.Bytes()
		payload = append(payload, fb[:]...)
	}
	if err := WriteFrame(c.conn, MsgStatBatch, payload); err != nil {
		return nil, err
	}
	typ, body, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if err := AsError(typ, body); err != nil {
		return nil, err
	}
	if typ != MsgFIDInfoBatch {
		return nil, fmt.Errorf("wire: unexpected reply %d", typ)
	}
	out := make([]FIDInfo, 0, len(fids))
	d := &decoder{b: body}
	for i := 0; i < len(fids); i++ {
		n := int(d.u32())
		if !d.need(n) {
			return nil, fmt.Errorf("wire: truncated batch reply at record %d", i)
		}
		info, err := decodeFIDInfo(d.b[d.off : d.off+n])
		if err != nil {
			return nil, err
		}
		d.off += n
		out = append(out, info)
	}
	return out, nil
}

// decodeStatBatch parses a MsgStatBatch payload.
func decodeStatBatch(b []byte) ([]lustre.FID, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: short StatBatch")
	}
	n := int(le.Uint32(b))
	if len(b) != 4+16*n {
		return nil, fmt.Errorf("wire: StatBatch size mismatch (%d fids, %d bytes)", n, len(b))
	}
	fids := make([]lustre.FID, n)
	for i := 0; i < n; i++ {
		fids[i] = lustre.FIDFromBytes(b[4+16*i:])
	}
	return fids, nil
}

// Close ends the session.
func (c *Client) Close() error {
	_ = WriteFrame(c.conn, MsgBye, nil)
	return c.conn.Close()
}

// SendPartialTo ships one encoded partial graph to a collector address
// and waits for the ack — FaultyRank's single bulk transfer per server.
func SendPartialTo(addr string, payload []byte) error {
	_, err := SendPartialToContext(context.Background(), addr, payload, RetryPolicy{}, 0)
	return err
}

// SendPartialToContext is SendPartialTo under a context: the dial is
// retried per policy, and opTimeout bounds the payload write and the
// ack read (0 = the ctx deadline only). Retry covers connection
// establishment only — once any payload byte is on the wire a failure
// is returned, not replayed, because the collector may already hold the
// transfer (at-most-once delivery). The retry count is returned for the
// caller's counters.
func SendPartialToContext(ctx context.Context, addr string, payload []byte, policy RetryPolicy, opTimeout time.Duration) (int, error) {
	conn, retries, err := dialRetry(ctx, addr, policy)
	if err != nil {
		return retries, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(ioDeadline(ctx, opTimeout)); err != nil {
		return retries, err
	}
	if err := WriteFrame(conn, MsgPartial, payload); err != nil {
		return retries, err
	}
	typ, body, err := ReadFrame(conn)
	if err != nil {
		return retries, err
	}
	if err := AsError(typ, body); err != nil {
		return retries, err
	}
	if typ != MsgAck {
		return retries, fmt.Errorf("wire: unexpected ack type %d", typ)
	}
	return retries, nil
}

// Collector receives partial graphs over TCP (the MDS-side aggregator
// endpoint).
type Collector struct {
	ln net.Listener
	// metrics, when set via Observe, feeds the run-wide transfer
	// counters as chunk frames are decoded.
	metrics *Metrics
}

// Observe attaches run-wide wire metrics to the collector: every
// decoded chunk frame and every stream failure is counted into m in
// addition to the per-collect CollectResult tallies. Call before
// collection starts.
func (c *Collector) Observe(m *Metrics) { c.metrics = m }

// NewCollector listens on a fresh localhost port.
func NewCollector() (*Collector, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return &Collector{ln: ln}, ln.Addr().String(), nil
}

// CollectRaw accepts exactly n partial-graph payloads and returns them
// in arrival order (the caller decodes and re-orders by label).
func (c *Collector) CollectRaw(n int) ([][]byte, error) {
	out := make([][]byte, 0, n)
	for len(out) < n {
		conn, err := c.ln.Accept()
		if err != nil {
			return nil, err
		}
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if typ != MsgPartial {
			_ = WriteError(conn, fmt.Errorf("expected partial, got %d", typ))
			conn.Close()
			continue
		}
		if err := WriteFrame(conn, MsgAck, nil); err != nil {
			conn.Close()
			return nil, err
		}
		conn.Close()
		out = append(out, payload)
	}
	return out, nil
}

// Close stops the collector's listener.
func (c *Collector) Close() { c.ln.Close() }
