package wire

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"faultyrank/internal/agg"
	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
)

func sampleTelemetry(server string) *Telemetry {
	reg := telemetry.NewRegistry()
	reg.Counter("scanner_inodes_scanned_total").Add(2048)
	reg.Counter("wire_frames_sent_total").Add(12)
	reg.Gauge("agg_interner_size").Set(77)
	reg.Histogram("wire_frame_write_seconds", []float64{0.001, 0.01}).Observe(0.002)
	return &Telemetry{
		Server:   server,
		Snapshot: reg.Snapshot().Labeled(server),
		Span: &telemetry.SpanNode{
			Name: "scan:" + server, Duration: 3 * time.Second, Seconds: 3,
			Children: []telemetry.SpanNode{{Name: "walk", Duration: time.Second, Seconds: 1}},
		},
	}
}

func TestTelemetryCodecRoundtrip(t *testing.T) {
	for _, tr := range []*Telemetry{
		sampleTelemetry("ost3"),
		{Server: "mdt0", Snapshot: telemetry.Snapshot{Counters: []telemetry.CounterValue{{Name: "c", Value: 1}}}},
		{}, // the empty trailer a source-less stream ships
	} {
		enc := EncodeTelemetry(tr)
		got, err := DecodeTelemetry(enc)
		if err != nil {
			t.Fatalf("decode %q: %v", tr.Server, err)
		}
		if !reflect.DeepEqual(tr, got) {
			t.Fatalf("roundtrip diverges for %q:\n%+v\n%+v", tr.Server, tr, got)
		}
		if !bytes.Equal(enc, EncodeTelemetry(got)) {
			t.Fatalf("re-encode diverges for %q", tr.Server)
		}
	}
}

func TestDecodeTelemetryRejects(t *testing.T) {
	valid := EncodeTelemetry(sampleTelemetry("ost0"))
	if _, err := DecodeTelemetry(valid[:len(valid)-2]); err == nil {
		t.Error("truncated trailer decoded")
	}
	if _, err := DecodeTelemetry(append(append([]byte(nil), valid...), 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
	// Lying snapshot length far past the payload must fail fast.
	lie := appendU16(nil, 4)
	lie = append(lie, "ost0"...)
	lie = appendU32(lie, 0xFFFFFF00)
	if _, err := DecodeTelemetry(lie); err == nil {
		t.Error("lying snapshot length accepted")
	}
}

// TestChunkStreamShipsTrailer: streams with a telemetry source deliver
// their snapshots to the collector alongside the graph data; a stream
// without a source costs nothing and yields no entry.
func TestChunkStreamShipsTrailer(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	labels := []string{"mdt0", "ost0", "ost1"}
	parts := make([]*scanner.Partial, len(labels))
	for i, l := range labels {
		p := randomPartial(r)
		p.ServerLabel = l
		parts[i] = p
	}

	col, addr, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	builder := agg.NewBuilder(labels)

	errCh := make(chan error, len(parts))
	for i, p := range parts {
		go func(i int, p *scanner.Partial) {
			errCh <- func() error {
				cs, err := DialChunkStream(addr)
				if err != nil {
					return err
				}
				defer cs.Close()
				if p.ServerLabel != "ost1" { // ost1 ships no telemetry
					label := p.ServerLabel
					cs.SetTelemetrySource(func() *Telemetry { return sampleTelemetry(label) })
				}
				for _, ch := range chunksOf(p, 5) {
					if err := cs.Emit(ch); err != nil {
						return err
					}
				}
				return nil
			}()
		}(i, p)
	}
	res, err := col.CollectChunksContext(context.Background(), len(parts), false, builder.Emit)
	if err != nil {
		t.Fatal(err)
	}
	for range parts {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if len(res.Telemetry) != 2 {
		t.Fatalf("telemetry entries = %d, want 2 (%+v)", len(res.Telemetry), res.Telemetry)
	}
	if res.Telemetry[0].Server != "mdt0" || res.Telemetry[1].Server != "ost0" {
		t.Fatalf("telemetry servers = %q, %q", res.Telemetry[0].Server, res.Telemetry[1].Server)
	}
	want := sampleTelemetry("mdt0")
	if !reflect.DeepEqual(res.Telemetry[0].Snapshot, want.Snapshot) {
		t.Fatalf("mdt0 snapshot diverges:\n%+v\n%+v", res.Telemetry[0].Snapshot, want.Snapshot)
	}
	if res.Telemetry[0].Span == nil || res.Telemetry[0].Span.Find("walk") == nil {
		t.Fatalf("mdt0 span tree lost: %+v", res.Telemetry[0].Span)
	}
	// The graph data must be untouched by the trailer protocol.
	got, err := builder.Partials()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if !reflect.DeepEqual(p, got[i]) {
			t.Fatalf("server %s: partial diverges with trailers enabled", labels[i])
		}
	}
}

// TestSendTelemetryMidStream: the best-effort failure-path trailer is
// recorded even when the stream never completes — and the stream still
// counts as failed, not completed.
func TestSendTelemetryMidStream(t *testing.T) {
	col, addr, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	sendErr := make(chan error, 1)
	go func() {
		sendErr <- func() error {
			cs, err := DialChunkStream(addr)
			if err != nil {
				return err
			}
			if err := cs.Emit(&scanner.Chunk{ServerLabel: "ost0", Seq: 0}); err != nil {
				return err
			}
			if err := cs.SendTelemetry(sampleTelemetry("ost0")); err != nil {
				return err
			}
			return cs.Close() // die without a final chunk
		}()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	builder := agg.NewBuilder([]string{"ost0"})
	res, err := col.CollectChunksContext(ctx, 1, true, builder.Emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 0 {
		t.Fatalf("aborted stream reported completed: %v", res.Completed)
	}
	if len(res.Telemetry) != 1 || res.Telemetry[0].Server != "ost0" {
		t.Fatalf("mid-stream telemetry lost: %+v", res.Telemetry)
	}
	if got := res.Telemetry[0].Snapshot.Counter("scanner_inodes_scanned_total"); got != 2048 {
		t.Fatalf("recorded snapshot counter = %d, want 2048", got)
	}
}

// TestTrailerMalformedTolerated: a corrupt telemetry frame mid-stream
// is dropped without failing the stream; the graph data still lands and
// the stream completes.
func TestTrailerMalformedTolerated(t *testing.T) {
	col, addr, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	r := rand.New(rand.NewSource(5))
	p := randomPartial(r)
	p.ServerLabel = "mdt0"

	sendErr := make(chan error, 1)
	go func() {
		sendErr <- func() error {
			cs, err := DialChunkStream(addr)
			if err != nil {
				return err
			}
			defer cs.Close()
			chunks := chunksOf(p, 5)
			for _, ch := range chunks[:len(chunks)-1] {
				if err := cs.Emit(ch); err != nil {
					return err
				}
			}
			// A garbage telemetry frame between chunks.
			if err := WriteFrame(cs.conn, MsgTelemetry, []byte{0xba, 0xad}); err != nil {
				return err
			}
			return cs.Emit(chunks[len(chunks)-1])
		}()
	}()

	builder := agg.NewBuilder([]string{"mdt0"})
	res, err := col.CollectChunksContext(context.Background(), 1, false, builder.Emit)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-sendErr; err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 1 || res.Completed[0] != "mdt0" {
		t.Fatalf("completed = %v", res.Completed)
	}
	if len(res.Telemetry) != 0 {
		t.Fatalf("malformed trailer recorded: %+v", res.Telemetry)
	}
}
