package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"faultyrank/internal/core"
	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
)

// FuzzDecodeChunk drives the streamed-chunk decoder with hostile bytes.
// The invariant is bijectivity: any payload either fails to decode, or
// decodes to a chunk whose re-encoding is byte-identical to the input
// and decodes again to the same chunk. Count fields must be bounded
// before allocation, so implausible headers fail fast instead of OOMing.
func FuzzDecodeChunk(f *testing.F) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		f.Add(EncodeChunk(randomChunk(r)))
	}
	f.Add(EncodeChunk(&scanner.Chunk{ServerLabel: "mdt0", Final: true}))

	// Malformed frame lengths: counts far larger than the payload.
	huge := appendU16(nil, 0)
	huge = appendU32(huge, 3)
	huge = append(huge, 0)
	huge = appendU32(huge, 0xFFFFFFFF)
	f.Add(huge)

	// Truncated mid-FID: a valid chunk cut inside an object's FID bytes.
	full := EncodeChunk(chunksOf(randomPartial(rand.New(rand.NewSource(13))), 4)[0])
	if len(full) > 20 {
		f.Add(full[:len(full)-29]) // clips into the last object record
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeChunk(b)
		if err != nil {
			return
		}
		enc := EncodeChunk(c)
		if !bytes.Equal(enc, b) {
			t.Fatalf("re-encoding diverges from accepted input")
		}
		c2, err := DecodeChunk(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}

// FuzzDecodeTelemetry drives the telemetry-trailer decoder with hostile
// bytes under the same bijectivity invariant as the chunk fuzzing: any
// payload either fails to decode or re-encodes byte-identically and
// decodes again to the same trailer. The inner snapshot/span blobs
// enforce canonical form (sorted names, ascending bounds) and bound
// every count against the remaining payload, so lying headers fail
// fast instead of allocating.
func FuzzDecodeTelemetry(f *testing.F) {
	reg := telemetry.NewRegistry()
	reg.Counter("scanner_inodes_scanned_total").Add(1234)
	reg.Counter("wire_frames_sent_total").Add(9)
	reg.Gauge("agg_interner_size").Set(55)
	reg.Histogram("wire_frame_write_seconds", []float64{0.001, 0.1}).Observe(0.02)
	span := &telemetry.SpanNode{
		Name: "scan:ost3", Duration: 2 * time.Second, Seconds: 2,
		Children: []telemetry.SpanNode{{Name: "walk", Duration: time.Second, Seconds: 1}},
	}
	f.Add(EncodeTelemetry(&Telemetry{Server: "ost3", Snapshot: reg.Snapshot().Labeled("ost3"), Span: span}))
	f.Add(EncodeTelemetry(&Telemetry{Server: "mdt0", Snapshot: reg.Snapshot()}))
	f.Add(EncodeTelemetry(&Telemetry{}))

	// Lying snapshot-blob length far past the payload.
	lie := appendU16(nil, 4)
	lie = append(lie, "ost0"...)
	lie = appendU32(lie, 0xFFFFFF00)
	f.Add(lie)

	// Truncated inside the span blob.
	full := EncodeTelemetry(&Telemetry{Server: "ost1", Span: span})
	f.Add(full[:len(full)-7])

	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := DecodeTelemetry(b)
		if err != nil {
			return
		}
		enc := EncodeTelemetry(tr)
		if !bytes.Equal(enc, b) {
			t.Fatalf("re-encoding diverges from accepted input")
		}
		tr2, err := DecodeTelemetry(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}

// FuzzDecodeRankDelta drives the superstep-frame decoder with hostile
// bytes under the family invariant: any payload either fails
// DecodeRankDelta, or re-encodes byte-identically and decodes again to
// an equal frame. Counts are bounded against the remaining payload
// before any vector is allocated, so a lying header costs an error,
// never an allocation. Float comparisons go through the encoded bytes
// (NaN bit patterns round-trip but compare unequal as values).
func FuzzDecodeRankDelta(f *testing.F) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 5; i++ {
		f.Add(EncodeRankDelta(randomRankDelta(r)))
	}
	f.Add(EncodeRankDelta(&core.RankDelta{Kind: core.RankHello, Part: 3}))
	f.Add(EncodeRankDelta(&core.RankDelta{
		Kind: core.RankDownB, Iter: 9, Base: 0.25, PerSink: 0.5, Halt: true,
		Ghost: []float64{1, 2, 3},
	}))

	// Lying sink count far past the payload.
	lie := []byte{RankDeltaVersion, core.RankUpA}
	lie = appendU32(lie, 0)
	lie = appendU32(lie, 0)
	lie = appendU64(lie, 0)
	lie = appendU64(lie, 0)
	lie = appendU64(lie, 0)
	lie = append(lie, 0)
	lie = appendU32(lie, 0xFFFFFFFF)
	f.Add(lie)

	// Truncated mid-vector.
	full := EncodeRankDelta(&core.RankDelta{Kind: core.RankUpB, Sink: []float64{1, 2, 3}})
	f.Add(full[:len(full)-5])

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeRankDelta(b)
		if err != nil {
			return
		}
		enc := EncodeRankDelta(d)
		if !bytes.Equal(enc, b) {
			t.Fatalf("re-encoding diverges from accepted input")
		}
		d2, err := DecodeRankDelta(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(EncodeRankDelta(d2), enc) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}
