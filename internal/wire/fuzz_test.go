package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"faultyrank/internal/scanner"
)

// FuzzDecodeChunk drives the streamed-chunk decoder with hostile bytes.
// The invariant is bijectivity: any payload either fails to decode, or
// decodes to a chunk whose re-encoding is byte-identical to the input
// and decodes again to the same chunk. Count fields must be bounded
// before allocation, so implausible headers fail fast instead of OOMing.
func FuzzDecodeChunk(f *testing.F) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		f.Add(EncodeChunk(randomChunk(r)))
	}
	f.Add(EncodeChunk(&scanner.Chunk{ServerLabel: "mdt0", Final: true}))

	// Malformed frame lengths: counts far larger than the payload.
	huge := appendU16(nil, 0)
	huge = appendU32(huge, 3)
	huge = append(huge, 0)
	huge = appendU32(huge, 0xFFFFFFFF)
	f.Add(huge)

	// Truncated mid-FID: a valid chunk cut inside an object's FID bytes.
	full := EncodeChunk(chunksOf(randomPartial(rand.New(rand.NewSource(13))), 4)[0])
	if len(full) > 20 {
		f.Add(full[:len(full)-29]) // clips into the last object record
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeChunk(b)
		if err != nil {
			return
		}
		enc := EncodeChunk(c)
		if !bytes.Equal(enc, b) {
			t.Fatalf("re-encoding diverges from accepted input")
		}
		c2, err := DecodeChunk(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}
