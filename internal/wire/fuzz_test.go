package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
)

// FuzzDecodeChunk drives the streamed-chunk decoder with hostile bytes.
// The invariant is bijectivity: any payload either fails to decode, or
// decodes to a chunk whose re-encoding is byte-identical to the input
// and decodes again to the same chunk. Count fields must be bounded
// before allocation, so implausible headers fail fast instead of OOMing.
func FuzzDecodeChunk(f *testing.F) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 4; i++ {
		f.Add(EncodeChunk(randomChunk(r)))
	}
	f.Add(EncodeChunk(&scanner.Chunk{ServerLabel: "mdt0", Final: true}))

	// Malformed frame lengths: counts far larger than the payload.
	huge := appendU16(nil, 0)
	huge = appendU32(huge, 3)
	huge = append(huge, 0)
	huge = appendU32(huge, 0xFFFFFFFF)
	f.Add(huge)

	// Truncated mid-FID: a valid chunk cut inside an object's FID bytes.
	full := EncodeChunk(chunksOf(randomPartial(rand.New(rand.NewSource(13))), 4)[0])
	if len(full) > 20 {
		f.Add(full[:len(full)-29]) // clips into the last object record
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		c, err := DecodeChunk(b)
		if err != nil {
			return
		}
		enc := EncodeChunk(c)
		if !bytes.Equal(enc, b) {
			t.Fatalf("re-encoding diverges from accepted input")
		}
		c2, err := DecodeChunk(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}

// FuzzDecodeTelemetry drives the telemetry-trailer decoder with hostile
// bytes under the same bijectivity invariant as the chunk fuzzing: any
// payload either fails to decode or re-encodes byte-identically and
// decodes again to the same trailer. The inner snapshot/span blobs
// enforce canonical form (sorted names, ascending bounds) and bound
// every count against the remaining payload, so lying headers fail
// fast instead of allocating.
func FuzzDecodeTelemetry(f *testing.F) {
	reg := telemetry.NewRegistry()
	reg.Counter("scanner_inodes_scanned_total").Add(1234)
	reg.Counter("wire_frames_sent_total").Add(9)
	reg.Gauge("agg_interner_size").Set(55)
	reg.Histogram("wire_frame_write_seconds", []float64{0.001, 0.1}).Observe(0.02)
	span := &telemetry.SpanNode{
		Name: "scan:ost3", Duration: 2 * time.Second, Seconds: 2,
		Children: []telemetry.SpanNode{{Name: "walk", Duration: time.Second, Seconds: 1}},
	}
	f.Add(EncodeTelemetry(&Telemetry{Server: "ost3", Snapshot: reg.Snapshot().Labeled("ost3"), Span: span}))
	f.Add(EncodeTelemetry(&Telemetry{Server: "mdt0", Snapshot: reg.Snapshot()}))
	f.Add(EncodeTelemetry(&Telemetry{}))

	// Lying snapshot-blob length far past the payload.
	lie := appendU16(nil, 4)
	lie = append(lie, "ost0"...)
	lie = appendU32(lie, 0xFFFFFF00)
	f.Add(lie)

	// Truncated inside the span blob.
	full := EncodeTelemetry(&Telemetry{Server: "ost1", Span: span})
	f.Add(full[:len(full)-7])

	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := DecodeTelemetry(b)
		if err != nil {
			return
		}
		enc := EncodeTelemetry(tr)
		if !bytes.Equal(enc, b) {
			t.Fatalf("re-encoding diverges from accepted input")
		}
		tr2, err := DecodeTelemetry(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("decode/encode/decode not stable")
		}
	})
}
