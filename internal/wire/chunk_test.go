package wire

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"faultyrank/internal/agg"
	"faultyrank/internal/scanner"
)

func randomChunk(r *rand.Rand) *scanner.Chunk {
	p := randomPartial(r)
	return &scanner.Chunk{
		ServerLabel: p.ServerLabel,
		Seq:         r.Intn(1000),
		Final:       r.Intn(2) == 0,
		Objects:     p.Objects,
		Edges:       p.Edges,
		Issues:      p.Issues,
		Stats:       p.Stats,
	}
}

func TestChunkCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomChunk(r)
		got, err := DecodeChunk(EncodeChunk(c))
		return err == nil && reflect.DeepEqual(c, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeChunkRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	enc := EncodeChunk(randomChunk(r))
	if _, err := DecodeChunk(enc[:len(enc)/2]); err == nil {
		t.Error("truncated chunk decoded")
	}
	if _, err := DecodeChunk(append(append([]byte{}, enc...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeChunk(nil); err == nil {
		t.Error("nil decoded")
	}

	// Unknown flag bits must be rejected (keeps the codec bijective).
	small := EncodeChunk(&scanner.Chunk{ServerLabel: "x", Final: true})
	flagsOff := 2 + 1 + 4
	bad := append([]byte{}, small...)
	bad[flagsOff] |= 0x80
	if _, err := DecodeChunk(bad); err == nil {
		t.Error("unknown flag bits accepted")
	}

	// A huge count in the header must error on the sanity bound, not
	// allocate or loop.
	huge := appendU16(nil, 0)       // empty label
	huge = appendU32(huge, 0)       // seq
	huge = append(huge, 0)          // flags
	huge = appendU32(huge, 1<<32-1) // object count from hostile header
	huge = append(huge, 1, 2, 3, 4) // a few junk bytes
	if _, err := DecodeChunk(huge); err == nil {
		t.Error("implausible object count accepted")
	}
}

// chunksOf splits a partial into a valid chunk stream of n entries per
// slice type, with stats and issues on the final chunk.
func chunksOf(p *scanner.Partial, n int) []*scanner.Chunk {
	var chunks []*scanner.Chunk
	seq := 0
	add := func(c *scanner.Chunk) {
		c.ServerLabel = p.ServerLabel
		c.Seq = seq
		seq++
		chunks = append(chunks, c)
	}
	for lo := 0; lo < len(p.Objects); lo += n {
		hi := lo + n
		if hi > len(p.Objects) {
			hi = len(p.Objects)
		}
		add(&scanner.Chunk{Objects: p.Objects[lo:hi]})
	}
	for lo := 0; lo < len(p.Edges); lo += n {
		hi := lo + n
		if hi > len(p.Edges) {
			hi = len(p.Edges)
		}
		add(&scanner.Chunk{Edges: p.Edges[lo:hi]})
	}
	add(&scanner.Chunk{Issues: p.Issues, Stats: p.Stats, Final: true})
	return chunks
}

// TestChunkStreamsIntoBuilder: several concurrent chunk streams arrive
// at one collector feeding an agg.Builder; the reassembled per-server
// partials match the originals exactly.
func TestChunkStreamsIntoBuilder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	labels := []string{"mdt0", "ost0", "ost1"}
	parts := make([]*scanner.Partial, len(labels))
	for i, l := range labels {
		p := randomPartial(r)
		p.ServerLabel = l
		parts[i] = p
	}

	col, addr, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	builder := agg.NewBuilder(labels)

	errCh := make(chan error, len(parts))
	for _, p := range parts {
		go func(p *scanner.Partial) {
			errCh <- func() error {
				cs, err := DialChunkStream(addr)
				if err != nil {
					return err
				}
				defer cs.Close()
				for _, ch := range chunksOf(p, 5) {
					if err := cs.Emit(ch); err != nil {
						return err
					}
				}
				return nil
			}()
		}(p)
	}
	if err := col.CollectChunks(len(parts), builder.Emit); err != nil {
		t.Fatal(err)
	}
	for range parts {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	got, err := builder.Partials()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if !reflect.DeepEqual(p, got[i]) {
			t.Fatalf("server %s: reassembled partial diverges", labels[i])
		}
	}
}

// TestCollectChunksSenderKilled: the collector expects two streams but
// one sender dies before ever connecting. The old accept loop blocked
// forever; under a deadline the collector must return — with the
// surviving stream's data in degraded mode, with DeadlineExceeded in
// strict mode — well before the test times out.
func TestCollectChunksSenderKilled(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	p := randomPartial(r)
	p.ServerLabel = "mdt0"

	for _, degraded := range []bool{true, false} {
		col, addr, err := NewCollector()
		if err != nil {
			t.Fatal(err)
		}
		sendErr := make(chan error, 1)
		go func() {
			sendErr <- func() error {
				cs, err := DialChunkStream(addr)
				if err != nil {
					return err
				}
				defer cs.Close()
				for _, ch := range chunksOf(p, 5) {
					if err := cs.Emit(ch); err != nil {
						return err
					}
				}
				return nil
			}()
		}()

		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		builder := agg.NewBuilder([]string{"mdt0", "ost0"})
		// nStreams = 2, but the ost0 sender was "killed" and never dials.
		res, err := col.CollectChunksContext(ctx, 2, degraded, builder.Emit)
		cancel()
		col.Close()
		if degraded {
			if err != nil {
				t.Fatalf("degraded collect failed: %v", err)
			}
			if len(res.Completed) != 1 || res.Completed[0] != "mdt0" {
				t.Fatalf("degraded completed = %v", res.Completed)
			}
			parts, missing := builder.CompletedPartials()
			if len(parts) != 1 || !reflect.DeepEqual(parts[0], p) {
				t.Fatal("surviving stream's partial diverges")
			}
			if len(missing) != 1 || missing[0] != "ost0" {
				t.Fatalf("missing = %v", missing)
			}
		} else if err == nil {
			t.Fatal("strict collect returned nil with a stream missing")
		}
		if err := <-sendErr; err != nil {
			t.Fatalf("surviving sender failed: %v", err)
		}
	}
}

// TestCollectChunksAbortsSiblings: in strict mode a mid-stream error on
// one connection must unblock the sibling stream and the accept wait
// instead of waiting for every other sender to finish naturally.
func TestCollectChunksAbortsSiblings(t *testing.T) {
	col, addr, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// Sibling: connects, sends one non-final chunk, then idles forever
	// (no final chunk, connection held open).
	sibling, err := DialChunkStream(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sibling.Close()
	if err := sibling.Emit(&scanner.Chunk{ServerLabel: "ost0", Seq: 0}); err != nil {
		t.Fatal(err)
	}

	// Offender: sends a corrupt frame mid-stream.
	offender, err := DialChunkStream(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer offender.Close()
	if err := offender.EmitRaw([]byte{0xde, 0xad}, false); err != nil {
		t.Fatal(err)
	}

	builder := agg.NewBuilder([]string{"mdt0", "ost0"})
	done := make(chan error, 1)
	go func() {
		// 3 expected streams: the third never arrives; the corrupt frame
		// must abort both the sibling read and the accept wait.
		_, err := col.CollectChunksContext(context.Background(), 3, false, builder.Emit)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("corrupt frame not reported")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mid-stream error did not abort sibling streams")
	}
}

// TestCollectChunksDeliverError: a deliver failure surfaces on both
// sides — CollectChunks returns it and the sender sees an error frame
// in place of the final ack.
func TestCollectChunksDeliverError(t *testing.T) {
	col, addr, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	r := rand.New(rand.NewSource(9))
	p := randomPartial(r)
	p.ServerLabel = "mdt0"

	sendErr := make(chan error, 1)
	go func() {
		sendErr <- func() error {
			cs, err := DialChunkStream(addr)
			if err != nil {
				return err
			}
			defer cs.Close()
			for _, ch := range chunksOf(p, 5) {
				if err := cs.Emit(ch); err != nil {
					return err
				}
			}
			return nil
		}()
	}()

	// Builder expecting a different server rejects every chunk.
	builder := agg.NewBuilder([]string{"ost0"})
	if err := col.CollectChunks(1, builder.Emit); err == nil {
		t.Fatal("CollectChunks swallowed deliver error")
	}
	if err := <-sendErr; err == nil {
		t.Fatal("sender saw no error")
	}
}
