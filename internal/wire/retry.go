package wire

import (
	"context"
	"net"
	"time"
)

// RetryPolicy bounds sender-side reconnection attempts. The collection
// path treats the network as unreliable: a scanner that cannot reach
// the collector retries its dial a bounded number of times with
// exponential backoff before giving up (at which point the collector's
// degraded mode takes over). Retries cover connection establishment
// only — a stream that fails mid-transfer is not replayed, because the
// aggregator's in-order chunk accounting makes a partial resend
// ambiguous; the failed server is reported as missing instead.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first
	// (<= 1 disables retry).
	Attempts int
	// Backoff delays the second attempt; it doubles per retry.
	Backoff time.Duration
	// MaxBackoff caps the doubling (0 = uncapped).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy matches the checker's deployment defaults: three
// tries, 25 ms initial backoff, capped at 500 ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, Backoff: 25 * time.Millisecond, MaxBackoff: 500 * time.Millisecond}
}

// Do runs attempt up to p.Attempts times, sleeping the backoff schedule
// between tries and stopping early when ctx is done. It returns the
// number of retries performed (0 = first try succeeded) and the last
// error.
func (p RetryPolicy) Do(ctx context.Context, attempt func() error) (int, error) {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	delay := p.Backoff
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 && delay > 0 {
			t := time.NewTimer(delay)
			select {
			case <-ctx.Done():
				t.Stop()
				return try, ctx.Err()
			case <-t.C:
			}
			delay *= 2
			if p.MaxBackoff > 0 && delay > p.MaxBackoff {
				delay = p.MaxBackoff
			}
		}
		if err = ctx.Err(); err != nil {
			return try, err
		}
		if err = attempt(); err == nil {
			return try, nil
		}
	}
	return attempts - 1, err
}

// dialRetry establishes one TCP connection under ctx with bounded
// retry, returning the connection and the retry count.
func dialRetry(ctx context.Context, addr string, p RetryPolicy) (net.Conn, int, error) {
	var conn net.Conn
	var d net.Dialer
	retries, err := p.Do(ctx, func() error {
		c, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			conn = c
		}
		return err
	})
	return conn, retries, err
}

// ioDeadline combines a per-operation timeout with a context deadline
// into the single deadline handed to net.Conn (zero = none).
func ioDeadline(ctx context.Context, opTimeout time.Duration) time.Time {
	var d time.Time
	if opTimeout > 0 {
		d = time.Now().Add(opTimeout)
	}
	if dl, ok := ctx.Deadline(); ok && (d.IsZero() || dl.Before(d)) {
		d = dl
	}
	return d
}
