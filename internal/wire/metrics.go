package wire

import "faultyrank/internal/telemetry"

// Metrics is the wire layer's instrumentation: run-wide transfer
// counters shared by every chunk stream and the collector. These are
// the registry-backed replacements for the hand-rolled counters that
// used to live behind checker.NetStats — NetStats survives as a
// snapshot view over them. All instruments are nil-safe, so a nil
// *Metrics (or one resolved from a nil registry) costs one predictable
// branch per event.
type Metrics struct {
	// FramesSent and BytesSent count chunk frames shipped by senders.
	FramesSent, BytesSent *telemetry.Counter
	// FramesRecv and BytesRecv count chunk frames the collector decoded.
	FramesRecv, BytesRecv *telemetry.Counter
	// DialRetries counts sender-side redials beyond the first attempt.
	DialRetries *telemetry.Counter
	// StreamErrors counts failed or aborted streams at the collector.
	StreamErrors *telemetry.Counter
	// FrameWrite observes per-frame write latency on the sender
	// (seconds), the distribution behind transfer stalls.
	FrameWrite *telemetry.Histogram
	// Journal, when attached, receives the wire layer's flight-recorder
	// events (slow frames on senders, stream errors at the collector).
	// It is not resolved from the registry — the owner of the run's
	// journal sets it — and stays nil-tolerant like the instruments.
	Journal *telemetry.Journal
}

// NewMetrics resolves the wire counters from reg (nil reg → no-op
// instruments).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		FramesSent:   reg.Counter("wire_frames_sent_total"),
		BytesSent:    reg.Counter("wire_bytes_sent_total"),
		FramesRecv:   reg.Counter("wire_frames_received_total"),
		BytesRecv:    reg.Counter("wire_bytes_received_total"),
		DialRetries:  reg.Counter("wire_dial_retries_total"),
		StreamErrors: reg.Counter("wire_stream_errors_total"),
		FrameWrite:   reg.Histogram("wire_frame_write_seconds", nil),
	}
}
