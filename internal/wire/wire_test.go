package wire

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello frames")
	if err := WriteFrame(&buf, MsgPartial, payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, MsgAck, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != MsgPartial || !bytes.Equal(got, payload) {
		t.Fatalf("frame 1: %d %q %v", typ, got, err)
	}
	typ, got, err = ReadFrame(&buf)
	if err != nil || typ != MsgAck || len(got) != 0 {
		t.Fatalf("frame 2: %d %q %v", typ, got, err)
	}
	if _, _, err := ReadFrame(&buf); err == nil {
		t.Error("read from empty buffer succeeded")
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, MsgPartial, []byte("0123456789"))
	short := buf.Bytes()[:8]
	if _, _, err := ReadFrame(bytes.NewReader(short)); err == nil {
		t.Error("truncated frame accepted")
	}
}

// TestReadFrameLyingHeader: a frame header claiming almost MaxFrame on
// a stream carrying a handful of bytes must fail on the first bounded
// batch — quickly and without the multi-GiB up-front allocation the old
// code performed straight from the untrusted length field.
func TestReadFrameLyingHeader(t *testing.T) {
	hostile := []byte{MsgChunk, 0xff, 0xff, 0xff, 0x7e} // length ≈ 2 GiB − ε
	hostile = append(hostile, "short"...)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, _, err := ReadFrame(bytes.NewReader(hostile)); err == nil {
		t.Fatal("lying header accepted")
	}
	runtime.ReadMemStats(&after)
	// One bounded batch plus bookkeeping — far from the 2 GiB the header
	// promises (TotalAlloc is cumulative, so the delta counts every byte
	// allocated during the read).
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 16<<20 {
		t.Errorf("lying header allocated %d bytes", grew)
	}

	// Exactly MaxFrame is still rejected outright.
	overflow := []byte{MsgChunk, 0x00, 0x00, 0x00, 0x80}
	if _, _, err := ReadFrame(bytes.NewReader(overflow)); err != ErrFrameTooLarge {
		t.Errorf("MaxFrame header: %v", err)
	}

	// A frame larger than one batch still round-trips.
	big := bytes.Repeat([]byte{0xAB}, 3<<20)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPartial, big); err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil || typ != MsgPartial || !bytes.Equal(got, big) {
		t.Fatalf("multi-batch frame: type %d, %d bytes, %v", typ, len(got), err)
	}
}

func TestErrorFrames(t *testing.T) {
	var buf bytes.Buffer
	WriteError(&buf, bytes.ErrTooLarge)
	typ, payload, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e := AsError(typ, payload); e == nil {
		t.Error("AsError returned nil for MsgError")
	}
	if e := AsError(MsgAck, nil); e != nil {
		t.Errorf("AsError on ack: %v", e)
	}
}

func randomPartial(r *rand.Rand) *scanner.Partial {
	p := &scanner.Partial{ServerLabel: "ost7"}
	for i := 0; i < r.Intn(20); i++ {
		p.Objects = append(p.Objects, scanner.Object{
			FID:  lustre.FID{Seq: r.Uint64(), Oid: r.Uint32(), Ver: r.Uint32()},
			Ino:  ldiskfs.Ino(r.Uint64()),
			Type: ldiskfs.FileType(r.Intn(4)),
		})
	}
	for i := 0; i < r.Intn(30); i++ {
		p.Edges = append(p.Edges, scanner.FIDEdge{
			Src:  lustre.FID{Seq: r.Uint64(), Oid: r.Uint32()},
			Dst:  lustre.FID{Seq: r.Uint64(), Oid: r.Uint32()},
			Kind: graph.EdgeKind(r.Intn(5)),
		})
	}
	for i := 0; i < r.Intn(4); i++ {
		p.Issues = append(p.Issues, scanner.Issue{
			Ino: ldiskfs.Ino(r.Uint64()), What: "corrupt something",
		})
	}
	p.Stats = scanner.Stats{
		InodesScanned: r.Int63(), DirentsRead: r.Int63(), EdgesEmitted: r.Int63(),
	}
	return p
}

func TestPartialCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomPartial(r)
		got, err := DecodePartial(EncodePartial(p))
		return err == nil && reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePartialRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	enc := EncodePartial(randomPartial(r))
	if _, err := DecodePartial(enc[:len(enc)/2]); err == nil {
		t.Error("truncated partial decoded")
	}
	if _, err := DecodePartial(append(enc, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodePartial(nil); err == nil {
		t.Error("nil decoded")
	}
}

func TestFIDInfoCodec(t *testing.T) {
	in := FIDInfo{
		Exists: true, Type: ldiskfs.TypeObject, Size: 123456,
		Xattrs: map[string][]byte{"lma": {1, 2}, "fid": {3, 4, 5}},
	}
	enc, err := encodeFIDInfo(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := decodeFIDInfo(enc)
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: %+v %v", out, err)
	}
	enc, err = encodeFIDInfo(FIDInfo{})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := decodeFIDInfo(enc)
	if err != nil || empty.Exists || empty.Xattrs != nil {
		t.Fatalf("empty round trip: %+v %v", empty, err)
	}
}

// TestFIDInfoCodecBoundaries: the codec accepts exactly the widths its
// frame fields can carry and rejects one past each boundary instead of
// silently truncating (the truncation used to make the decoder misparse
// every following record).
func TestFIDInfoCodecBoundaries(t *testing.T) {
	longName := strings.Repeat("n", 255)
	in := FIDInfo{Exists: true, Xattrs: map[string][]byte{longName: {7}}}
	enc, err := encodeFIDInfo(in)
	if err != nil {
		t.Fatalf("255-byte name rejected: %v", err)
	}
	out, err := decodeFIDInfo(enc)
	if err != nil || !reflect.DeepEqual(in, out) {
		t.Fatalf("255-byte name round trip: %v", err)
	}

	tooLong := strings.Repeat("n", 256)
	if _, err := encodeFIDInfo(FIDInfo{Xattrs: map[string][]byte{tooLong: nil}}); err == nil {
		t.Error("256-byte xattr name encoded (would truncate)")
	}

	many := make(map[string][]byte, 1<<16)
	for i := 0; i < 1<<16; i++ {
		many[fmt.Sprintf("x%05d", i)] = nil
	}
	if _, err := encodeFIDInfo(FIDInfo{Xattrs: many}); err == nil {
		t.Error("65536 xattrs encoded (count field would wrap to 0)")
	}
	delete(many, "x00000")
	enc, err = encodeFIDInfo(FIDInfo{Exists: true, Xattrs: many})
	if err != nil {
		t.Fatalf("65535 xattrs rejected: %v", err)
	}
	out, err = decodeFIDInfo(enc)
	if err != nil || len(out.Xattrs) != 1<<16-1 {
		t.Fatalf("65535-xattr round trip: %d xattrs, %v", len(out.Xattrs), err)
	}
}

func serviceCluster(t *testing.T) (*lustre.Cluster, lustre.Entry) {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 2, StripeSize: 64 << 10, Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ent, err := c.Create("/file", 130<<10)
	if err != nil {
		t.Fatal(err)
	}
	return c, ent
}

func TestObjectServiceLocalStat(t *testing.T) {
	c, ent := serviceCluster(t)
	svc, err := NewObjectService(c.MDT.Img)
	if err != nil {
		t.Fatal(err)
	}
	info := svc.Stat(ent.FID)
	if !info.Exists || info.Type != ldiskfs.TypeFile || info.Size != uint64(130<<10) {
		t.Fatalf("stat: %+v", info)
	}
	if _, ok := info.Xattrs[lustre.XattrLOV]; !ok {
		t.Error("LOVEA missing from stat")
	}
	if svc.Stat(lustre.FID{Seq: 1, Oid: 1}).Exists {
		t.Error("nonexistent FID exists")
	}
}

func TestObjectServiceOverTCP(t *testing.T) {
	c, ent := serviceCluster(t)
	svc, err := NewObjectService(c.MDT.Img)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := svc.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	info, err := cli.Stat(ent.FID)
	if err != nil || !info.Exists || info.Size != uint64(130<<10) {
		t.Fatalf("rpc stat: %+v %v", info, err)
	}
	missing, err := cli.Stat(lustre.FID{Seq: 99, Oid: 99})
	if err != nil || missing.Exists {
		t.Fatalf("missing stat: %+v %v", missing, err)
	}
	// Concurrent clients.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cli.Close()
			for j := 0; j < 20; j++ {
				if _, err := cli.Stat(ent.FID); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStatBatchOverTCP: the batched RPC answers in submission order and
// agrees with per-FID Stat, including misses.
func TestStatBatchOverTCP(t *testing.T) {
	c, ent := serviceCluster(t)
	svc, err := NewObjectService(c.MDT.Img)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := svc.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	missing := lustre.FID{Seq: 0xEEE, Oid: 1}
	fids := []lustre.FID{ent.FID, missing, lustre.RootFID, ent.FID}
	batch, err := cli.StatBatch(fids)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(fids) {
		t.Fatalf("batch size %d", len(batch))
	}
	for i, f := range fids {
		single, err := cli.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Exists != single.Exists || batch[i].Size != single.Size ||
			batch[i].Type != single.Type {
			t.Errorf("record %d diverges: %+v vs %+v", i, batch[i], single)
		}
	}
	if batch[1].Exists {
		t.Error("missing FID exists in batch")
	}
	// Empty batch is legal.
	empty, err := cli.StatBatch(nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty batch: %v %v", empty, err)
	}
}

func TestDecodeStatBatchErrors(t *testing.T) {
	if _, err := decodeStatBatch(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := decodeStatBatch([]byte{2, 0, 0, 0, 1}); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestCollectorBulkTransfer(t *testing.T) {
	col, addr, err := NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	r := rand.New(rand.NewSource(2))
	want := [][]byte{
		EncodePartial(randomPartial(r)),
		EncodePartial(randomPartial(r)),
		EncodePartial(randomPartial(r)),
	}
	errCh := make(chan error, len(want))
	for _, payload := range want {
		go func(p []byte) { errCh <- SendPartialTo(addr, p) }(payload)
	}
	got, err := col.CollectRaw(len(want))
	if err != nil {
		t.Fatal(err)
	}
	for range want {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("collected %d", len(got))
	}
	// Arrival order is arbitrary; match by content.
	for _, g := range got {
		found := false
		for _, w := range want {
			if bytes.Equal(g, w) {
				found = true
			}
		}
		if !found {
			t.Error("unexpected payload collected")
		}
	}
	// Decoded payloads are valid partials.
	for _, g := range got {
		if _, err := DecodePartial(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRawConnBadMessage(t *testing.T) {
	c, _ := serviceCluster(t)
	svc, _ := NewObjectService(c.MDT.Img)
	addr, err := svc.Listen()
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// bad StatFID payload size
	if err := WriteFrame(conn, MsgStatFID, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(conn)
	if err != nil || AsError(typ, payload) == nil {
		t.Fatalf("want error frame, got %d %v", typ, err)
	}
	// unknown message type
	if err := WriteFrame(conn, 200, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err = ReadFrame(conn)
	if err != nil || AsError(typ, payload) == nil {
		t.Fatalf("want error frame, got %d %v", typ, err)
	}
}
