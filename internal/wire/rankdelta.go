package wire

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"time"

	"faultyrank/internal/core"
)

// RankDeltaVersion is the codec version carried in every MsgRankDelta
// payload. A coordinator and its workers must agree exactly — the
// superstep protocol has no room for mixed-version best effort, and now
// that workers can be separately-built frrankd binaries the version
// byte is what turns a stale binary into a loud decode error instead of
// silent garbage. Version 2 added the u64 sum field (shard fingerprint
// on Hello frames).
const RankDeltaVersion = 2

// RankDelta encoding (little-endian), version 2:
//
//	u8 version | u8 kind | u32 part | u32 iter
//	u64 base | u64 perSink | u64 diff   (IEEE-754 bit patterns)
//	u64 sum
//	u8 halt (0 or 1)
//	u32 sinkCount  | sinkCount  × u64
//	u32 ghostCount | ghostCount × u64
//	u32 idCount    | idCount    × u64
//	u32 propCount  | propCount  × u64
//	u16 boundCount | boundCount × { u32 count | count × u64 }
//
// The encoding is bijective: halt admits only 0/1, every count is
// bounded against the remaining payload before its array is allocated
// (a lying header on a hostile stream fails fast, it never allocates),
// zero-length vectors decode to nil, and trailing bytes are rejected —
// so a payload either fails DecodeRankDelta or re-encodes to identical
// bytes (FuzzDecodeRankDelta leans on this). Float values cross as raw
// bit patterns, which is part of the partitioned kernel's bitwise-
// equivalence contract: a ghost value arrives as exactly the float the
// owner computed.

// EncodeRankDelta serializes one superstep frame. The result's length
// is always (*core.RankDelta).WireSize().
func EncodeRankDelta(d *core.RankDelta) []byte {
	buf := make([]byte, 0, d.WireSize())
	buf = append(buf, RankDeltaVersion, d.Kind)
	buf = appendU32(buf, d.Part)
	buf = appendU32(buf, d.Iter)
	buf = appendU64(buf, math.Float64bits(d.Base))
	buf = appendU64(buf, math.Float64bits(d.PerSink))
	buf = appendU64(buf, math.Float64bits(d.Diff))
	buf = appendU64(buf, d.Sum)
	if d.Halt {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, vec := range [][]float64{d.Sink, d.Ghost, d.ID, d.Prop} {
		buf = appendU32(buf, uint32(len(vec)))
		for _, v := range vec {
			buf = appendU64(buf, math.Float64bits(v))
		}
	}
	buf = appendU16(buf, uint16(len(d.Bound)))
	for _, b := range d.Bound {
		buf = appendU32(buf, uint32(len(b)))
		for _, v := range b {
			buf = appendU64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// floats64 decodes a u32-counted float vector, bounding the count
// against the remaining payload before allocating. Empty decodes nil
// (canonical form).
func (d *decoder) floats64(what string) []float64 {
	n := int(d.u32())
	if n == 0 || d.err != nil {
		return nil
	}
	if d.off+8*n > len(d.b) {
		d.err = fmt.Errorf("wire: rank delta %s count %d exceeds payload", what, n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(le.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return out
}

// DecodeRankDelta parses one superstep frame.
func DecodeRankDelta(b []byte) (*core.RankDelta, error) {
	d := &decoder{b: b}
	if v := d.u8(); d.err == nil && v != RankDeltaVersion {
		return nil, fmt.Errorf("wire: rank delta version %d, want %d", v, RankDeltaVersion)
	}
	r := &core.RankDelta{}
	r.Kind = d.u8()
	if d.err == nil && (r.Kind < core.RankHello || r.Kind > core.RankDone) {
		return nil, fmt.Errorf("wire: unknown rank delta kind %d", r.Kind)
	}
	r.Part = d.u32()
	r.Iter = d.u32()
	r.Base = math.Float64frombits(d.u64())
	r.PerSink = math.Float64frombits(d.u64())
	r.Diff = math.Float64frombits(d.u64())
	r.Sum = d.u64()
	switch h := d.u8(); h {
	case 0:
	case 1:
		r.Halt = true
	default:
		if d.err == nil {
			return nil, fmt.Errorf("wire: rank delta halt byte %d", h)
		}
	}
	r.Sink = d.floats64("sink")
	r.Ghost = d.floats64("ghost")
	r.ID = d.floats64("id")
	r.Prop = d.floats64("prop")
	nBound := int(d.u16())
	if nBound > 0 && d.err == nil {
		// Each bundle needs at least its 4-byte count.
		if d.off+4*nBound > len(d.b) {
			return nil, fmt.Errorf("wire: rank delta bound count %d exceeds payload", nBound)
		}
		r.Bound = make([][]float64, nBound)
		for q := range r.Bound {
			r.Bound[q] = d.floats64("bound")
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes in rank delta", len(b)-d.off)
	}
	return r, nil
}

// RankConn is one end of a TCP superstep link (core.Link over framed
// MsgRankDelta messages). Every send and receive carries the
// established deadline discipline: per-operation timeout combined with
// the context deadline, so a crashed peer surfaces as an I/O error
// within opTimeout instead of hanging the superstep barrier.
type RankConn struct {
	conn      net.Conn
	ctx       context.Context
	opTimeout time.Duration
	metrics   *Metrics
}

// NewRankConn wraps an established connection as a superstep link.
func NewRankConn(ctx context.Context, conn net.Conn, opTimeout time.Duration) *RankConn {
	return &RankConn{conn: conn, ctx: ctx, opTimeout: opTimeout}
}

// Observe attaches wire metrics: rank frames count into the run-wide
// frame/byte counters like chunk frames do.
func (c *RankConn) Observe(m *Metrics) { c.metrics = m }

// Send frames and writes one superstep message.
func (c *RankConn) Send(d *core.RankDelta) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	_ = c.conn.SetWriteDeadline(ioDeadline(c.ctx, c.opTimeout))
	payload := EncodeRankDelta(d)
	if err := WriteFrame(c.conn, MsgRankDelta, payload); err != nil {
		return err
	}
	if c.metrics != nil {
		c.metrics.FramesSent.Inc()
		c.metrics.BytesSent.Add(int64(len(payload)))
	}
	return nil
}

// Recv reads one superstep message.
func (c *RankConn) Recv() (*core.RankDelta, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	_ = c.conn.SetReadDeadline(ioDeadline(c.ctx, c.opTimeout))
	typ, payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if err := AsError(typ, payload); err != nil {
		return nil, err
	}
	if typ != MsgRankDelta {
		return nil, fmt.Errorf("wire: unexpected frame type %d on rank link", typ)
	}
	if c.metrics != nil {
		c.metrics.FramesRecv.Inc()
		c.metrics.BytesRecv.Add(int64(len(payload)))
	}
	return DecodeRankDelta(payload)
}

// Close releases the connection.
func (c *RankConn) Close() error { return c.conn.Close() }

// RankExchange is the coordinator-side endpoint of a TCP superstep
// exchange: rank workers dial in, announce their partition with a Hello
// frame, and the coordinator drives the BSP protocol over the resulting
// links.
type RankExchange struct {
	ln        net.Listener
	opTimeout time.Duration
	metrics   *Metrics
	conns     []*RankConn
}

// NewRankExchange listens for rank workers on bind ("" defaults to
// 127.0.0.1:0, a fresh localhost port — the in-process and test path).
// A non-loopback bind is what lets frrankd workers on other hosts dial
// in. opTimeout bounds every subsequent per-frame read/write on
// accepted links.
func NewRankExchange(bind string, opTimeout time.Duration) (*RankExchange, string, error) {
	if bind == "" {
		bind = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, "", err
	}
	return &RankExchange{ln: ln, opTimeout: opTimeout}, ln.Addr().String(), nil
}

// Observe attaches wire metrics to every link the exchange accepts.
func (x *RankExchange) Observe(m *Metrics) { x.metrics = m }

// ErrHelloMismatch is wrapped when a worker's Hello names the right
// partition but the wrong plan — a K that differs from the
// coordinator's, or a shard fingerprint that does not match the shard
// the coordinator built for that partition. It is the named signal that
// a separately-built or mis-pointed worker was refused before any
// superstep ran.
var ErrHelloMismatch = errors.New("wire: rank hello does not match coordinator plan")

// WorkerSpec tells AcceptWorkers what a valid worker cohort looks like
// and how to equip workers that arrive without a shard.
type WorkerSpec struct {
	// K is the partition count; exactly K workers are accepted.
	K int

	// Sums[p], when non-nil, is the canonical FRSG fingerprint of
	// partition p's shard; a worker whose Hello carries a different
	// non-zero sum is rejected (ErrHelloMismatch).
	Sums []uint64

	// Shard returns partition p's encoded FRSG blob for a worker whose
	// Hello carries Sum 0 ("no shard, ship me one"). Nil means shipping
	// is unsupported and such a worker is rejected.
	Shard func(p int) []byte

	// HandshakeTimeout, when positive, bounds the wait for each worker
	// to dial in — the knob that turns "a remote worker never arrived"
	// into a timely error the checker can degrade on, without poisoning
	// the accepted links' lifetime (they keep ctx + opTimeout).
	HandshakeTimeout time.Duration
}

// AcceptWorkers accepts exactly spec.K worker connections, reads and
// validates each one's Hello, and returns the links ordered by
// partition index. Duplicate or out-of-range partitions, a mismatched
// K, or a mismatched shard fingerprint fail the accept; a worker with
// no shard gets its partition's blob shipped in a MsgSubGraph frame
// before the next accept. ctx bounds the whole handshake: its
// cancellation closes the listener and every accepted connection, so a
// worker that never dials cannot hang the checker.
func (x *RankExchange) AcceptWorkers(ctx context.Context, spec WorkerSpec) ([]core.Link, error) {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			x.Close()
		case <-done:
		}
	}()
	if spec.HandshakeTimeout > 0 {
		if tl, ok := x.ln.(*net.TCPListener); ok {
			_ = tl.SetDeadline(time.Now().Add(spec.HandshakeTimeout))
			defer tl.SetDeadline(time.Time{})
		}
	}

	links := make([]core.Link, spec.K)
	for accepted := 0; accepted < spec.K; accepted++ {
		conn, err := x.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				err = ctx.Err()
			}
			return nil, fmt.Errorf("wire: rank exchange accept (%d/%d workers): %w", accepted, spec.K, err)
		}
		rc := NewRankConn(ctx, conn, x.opTimeout)
		rc.Observe(x.metrics)
		x.conns = append(x.conns, rc)
		hello, err := rc.Recv()
		if err != nil {
			return nil, fmt.Errorf("wire: rank hello: %w", err)
		}
		if hello.Kind != core.RankHello {
			return nil, fmt.Errorf("wire: expected rank hello, got kind %d", hello.Kind)
		}
		if hello.Part >= uint32(spec.K) {
			return nil, fmt.Errorf("wire: rank hello names partition %d of %d", hello.Part, spec.K)
		}
		if links[hello.Part] != nil {
			return nil, fmt.Errorf("wire: duplicate rank hello for partition %d", hello.Part)
		}
		if hello.Sum == 0 {
			// The worker has no shard; ship the canonical blob. The
			// fingerprint check is moot — it runs what we just sent.
			if spec.Shard == nil {
				return nil, fmt.Errorf("wire: partition %d worker has no shard and shipping is not configured: %w", hello.Part, ErrHelloMismatch)
			}
			if err := rc.sendShard(spec.Shard(int(hello.Part))); err != nil {
				return nil, fmt.Errorf("wire: shipping shard to partition %d: %w", hello.Part, err)
			}
		} else {
			if hello.Iter != uint32(spec.K) {
				return nil, fmt.Errorf("wire: partition %d worker built for K=%d, coordinator has K=%d: %w", hello.Part, hello.Iter, spec.K, ErrHelloMismatch)
			}
			if spec.Sums != nil && hello.Sum != spec.Sums[hello.Part] {
				return nil, fmt.Errorf("wire: partition %d worker shard fingerprint %#x, coordinator plan has %#x: %w", hello.Part, hello.Sum, spec.Sums[hello.Part], ErrHelloMismatch)
			}
		}
		links[hello.Part] = rc
	}
	return links, nil
}

// Close shuts the listener and every accepted link.
func (x *RankExchange) Close() error {
	err := x.ln.Close()
	for _, c := range x.conns {
		_ = c.Close()
	}
	return err
}

// sendShard ships an encoded FRSG blob as a MsgSubGraph frame. The
// blob is opaque to the wire layer — graph owns the codec.
func (c *RankConn) sendShard(blob []byte) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	_ = c.conn.SetWriteDeadline(ioDeadline(c.ctx, c.opTimeout))
	if err := WriteFrame(c.conn, MsgSubGraph, blob); err != nil {
		return err
	}
	if c.metrics != nil {
		c.metrics.FramesSent.Inc()
		c.metrics.BytesSent.Add(int64(len(blob)))
	}
	return nil
}

// RecvShard reads the MsgSubGraph frame a coordinator ships after a
// no-shard Hello and returns the opaque FRSG blob.
func (c *RankConn) RecvShard() ([]byte, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	_ = c.conn.SetReadDeadline(ioDeadline(c.ctx, c.opTimeout))
	typ, payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if err := AsError(typ, payload); err != nil {
		return nil, err
	}
	if typ != MsgSubGraph {
		return nil, fmt.Errorf("wire: expected subgraph frame, got type %d", typ)
	}
	if c.metrics != nil {
		c.metrics.FramesRecv.Inc()
		c.metrics.BytesRecv.Add(int64(len(payload)))
	}
	return payload, nil
}

// DialRankLink connects one rank worker to a coordinator's exchange
// with bounded retry and announces its partition, the K it was built
// for, and its shard's canonical fingerprint (Hello reuses the Iter
// field for K). The returned link is ready for core.RunPartition.
func DialRankLink(ctx context.Context, addr string, part, k int, sum uint64, policy RetryPolicy, opTimeout time.Duration) (*RankConn, error) {
	conn, _, err := dialRetry(ctx, addr, policy)
	if err != nil {
		return nil, err
	}
	rc := NewRankConn(ctx, conn, opTimeout)
	if err := rc.Send(&core.RankDelta{Kind: core.RankHello, Part: uint32(part), Iter: uint32(k), Sum: sum}); err != nil {
		conn.Close()
		return nil, err
	}
	return rc, nil
}

// JoinRankShipped connects a shard-less worker: it announces its
// partition with Sum 0 ("ship me my shard") and returns the link
// together with the FRSG blob the coordinator answers with. The caller
// decodes the blob (graph.DecodeSubGraph) and runs the partition.
func JoinRankShipped(ctx context.Context, addr string, part int, policy RetryPolicy, opTimeout time.Duration) (*RankConn, []byte, error) {
	conn, _, err := dialRetry(ctx, addr, policy)
	if err != nil {
		return nil, nil, err
	}
	rc := NewRankConn(ctx, conn, opTimeout)
	if err := rc.Send(&core.RankDelta{Kind: core.RankHello, Part: uint32(part)}); err != nil {
		conn.Close()
		return nil, nil, err
	}
	blob, err := rc.RecvShard()
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("wire: receiving shipped shard for partition %d: %w", part, err)
	}
	return rc, blob, nil
}
