package wire

import (
	"context"
	"fmt"
	"math"
	"net"
	"time"

	"faultyrank/internal/core"
)

// RankDeltaVersion is the codec version carried in every MsgRankDelta
// payload. A coordinator and its workers must agree exactly — the
// superstep protocol has no room for mixed-version best effort.
const RankDeltaVersion = 1

// RankDelta encoding (little-endian), version 1:
//
//	u8 version | u8 kind | u32 part | u32 iter
//	u64 base | u64 perSink | u64 diff   (IEEE-754 bit patterns)
//	u8 halt (0 or 1)
//	u32 sinkCount  | sinkCount  × u64
//	u32 ghostCount | ghostCount × u64
//	u32 idCount    | idCount    × u64
//	u32 propCount  | propCount  × u64
//	u16 boundCount | boundCount × { u32 count | count × u64 }
//
// The encoding is bijective: halt admits only 0/1, every count is
// bounded against the remaining payload before its array is allocated
// (a lying header on a hostile stream fails fast, it never allocates),
// zero-length vectors decode to nil, and trailing bytes are rejected —
// so a payload either fails DecodeRankDelta or re-encodes to identical
// bytes (FuzzDecodeRankDelta leans on this). Float values cross as raw
// bit patterns, which is part of the partitioned kernel's bitwise-
// equivalence contract: a ghost value arrives as exactly the float the
// owner computed.

// EncodeRankDelta serializes one superstep frame. The result's length
// is always (*core.RankDelta).WireSize().
func EncodeRankDelta(d *core.RankDelta) []byte {
	buf := make([]byte, 0, d.WireSize())
	buf = append(buf, RankDeltaVersion, d.Kind)
	buf = appendU32(buf, d.Part)
	buf = appendU32(buf, d.Iter)
	buf = appendU64(buf, math.Float64bits(d.Base))
	buf = appendU64(buf, math.Float64bits(d.PerSink))
	buf = appendU64(buf, math.Float64bits(d.Diff))
	if d.Halt {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, vec := range [][]float64{d.Sink, d.Ghost, d.ID, d.Prop} {
		buf = appendU32(buf, uint32(len(vec)))
		for _, v := range vec {
			buf = appendU64(buf, math.Float64bits(v))
		}
	}
	buf = appendU16(buf, uint16(len(d.Bound)))
	for _, b := range d.Bound {
		buf = appendU32(buf, uint32(len(b)))
		for _, v := range b {
			buf = appendU64(buf, math.Float64bits(v))
		}
	}
	return buf
}

// floats64 decodes a u32-counted float vector, bounding the count
// against the remaining payload before allocating. Empty decodes nil
// (canonical form).
func (d *decoder) floats64(what string) []float64 {
	n := int(d.u32())
	if n == 0 || d.err != nil {
		return nil
	}
	if d.off+8*n > len(d.b) {
		d.err = fmt.Errorf("wire: rank delta %s count %d exceeds payload", what, n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(le.Uint64(d.b[d.off:]))
		d.off += 8
	}
	return out
}

// DecodeRankDelta parses one superstep frame.
func DecodeRankDelta(b []byte) (*core.RankDelta, error) {
	d := &decoder{b: b}
	if v := d.u8(); d.err == nil && v != RankDeltaVersion {
		return nil, fmt.Errorf("wire: rank delta version %d, want %d", v, RankDeltaVersion)
	}
	r := &core.RankDelta{}
	r.Kind = d.u8()
	if d.err == nil && (r.Kind < core.RankHello || r.Kind > core.RankDone) {
		return nil, fmt.Errorf("wire: unknown rank delta kind %d", r.Kind)
	}
	r.Part = d.u32()
	r.Iter = d.u32()
	r.Base = math.Float64frombits(d.u64())
	r.PerSink = math.Float64frombits(d.u64())
	r.Diff = math.Float64frombits(d.u64())
	switch h := d.u8(); h {
	case 0:
	case 1:
		r.Halt = true
	default:
		if d.err == nil {
			return nil, fmt.Errorf("wire: rank delta halt byte %d", h)
		}
	}
	r.Sink = d.floats64("sink")
	r.Ghost = d.floats64("ghost")
	r.ID = d.floats64("id")
	r.Prop = d.floats64("prop")
	nBound := int(d.u16())
	if nBound > 0 && d.err == nil {
		// Each bundle needs at least its 4-byte count.
		if d.off+4*nBound > len(d.b) {
			return nil, fmt.Errorf("wire: rank delta bound count %d exceeds payload", nBound)
		}
		r.Bound = make([][]float64, nBound)
		for q := range r.Bound {
			r.Bound[q] = d.floats64("bound")
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes in rank delta", len(b)-d.off)
	}
	return r, nil
}

// RankConn is one end of a TCP superstep link (core.Link over framed
// MsgRankDelta messages). Every send and receive carries the
// established deadline discipline: per-operation timeout combined with
// the context deadline, so a crashed peer surfaces as an I/O error
// within opTimeout instead of hanging the superstep barrier.
type RankConn struct {
	conn      net.Conn
	ctx       context.Context
	opTimeout time.Duration
	metrics   *Metrics
}

// NewRankConn wraps an established connection as a superstep link.
func NewRankConn(ctx context.Context, conn net.Conn, opTimeout time.Duration) *RankConn {
	return &RankConn{conn: conn, ctx: ctx, opTimeout: opTimeout}
}

// Observe attaches wire metrics: rank frames count into the run-wide
// frame/byte counters like chunk frames do.
func (c *RankConn) Observe(m *Metrics) { c.metrics = m }

// Send frames and writes one superstep message.
func (c *RankConn) Send(d *core.RankDelta) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	_ = c.conn.SetWriteDeadline(ioDeadline(c.ctx, c.opTimeout))
	payload := EncodeRankDelta(d)
	if err := WriteFrame(c.conn, MsgRankDelta, payload); err != nil {
		return err
	}
	if c.metrics != nil {
		c.metrics.FramesSent.Inc()
		c.metrics.BytesSent.Add(int64(len(payload)))
	}
	return nil
}

// Recv reads one superstep message.
func (c *RankConn) Recv() (*core.RankDelta, error) {
	if err := c.ctx.Err(); err != nil {
		return nil, err
	}
	_ = c.conn.SetReadDeadline(ioDeadline(c.ctx, c.opTimeout))
	typ, payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if err := AsError(typ, payload); err != nil {
		return nil, err
	}
	if typ != MsgRankDelta {
		return nil, fmt.Errorf("wire: unexpected frame type %d on rank link", typ)
	}
	if c.metrics != nil {
		c.metrics.FramesRecv.Inc()
		c.metrics.BytesRecv.Add(int64(len(payload)))
	}
	return DecodeRankDelta(payload)
}

// Close releases the connection.
func (c *RankConn) Close() error { return c.conn.Close() }

// RankExchange is the coordinator-side endpoint of a TCP superstep
// exchange: rank workers dial in, announce their partition with a Hello
// frame, and the coordinator drives the BSP protocol over the resulting
// links.
type RankExchange struct {
	ln        net.Listener
	opTimeout time.Duration
	metrics   *Metrics
	conns     []*RankConn
}

// NewRankExchange listens on a fresh localhost port. opTimeout bounds
// every subsequent per-frame read/write on accepted links.
func NewRankExchange(opTimeout time.Duration) (*RankExchange, string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return &RankExchange{ln: ln, opTimeout: opTimeout}, ln.Addr().String(), nil
}

// Observe attaches wire metrics to every link the exchange accepts.
func (x *RankExchange) Observe(m *Metrics) { x.metrics = m }

// AcceptWorkers accepts exactly k worker connections, reads each one's
// Hello, and returns the links ordered by partition index. Duplicate or
// out-of-range partitions fail the accept. ctx bounds the whole
// handshake: its cancellation closes the listener and every accepted
// connection, so a worker that never dials cannot hang the checker.
func (x *RankExchange) AcceptWorkers(ctx context.Context, k int) ([]core.Link, error) {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			x.Close()
		case <-done:
		}
	}()

	links := make([]core.Link, k)
	for accepted := 0; accepted < k; accepted++ {
		conn, err := x.ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				err = ctx.Err()
			}
			return nil, fmt.Errorf("wire: rank exchange accept: %w", err)
		}
		rc := NewRankConn(ctx, conn, x.opTimeout)
		rc.Observe(x.metrics)
		x.conns = append(x.conns, rc)
		hello, err := rc.Recv()
		if err != nil {
			return nil, fmt.Errorf("wire: rank hello: %w", err)
		}
		if hello.Kind != core.RankHello {
			return nil, fmt.Errorf("wire: expected rank hello, got kind %d", hello.Kind)
		}
		if hello.Part >= uint32(k) {
			return nil, fmt.Errorf("wire: rank hello names partition %d of %d", hello.Part, k)
		}
		if links[hello.Part] != nil {
			return nil, fmt.Errorf("wire: duplicate rank hello for partition %d", hello.Part)
		}
		links[hello.Part] = rc
	}
	return links, nil
}

// Close shuts the listener and every accepted link.
func (x *RankExchange) Close() error {
	err := x.ln.Close()
	for _, c := range x.conns {
		_ = c.Close()
	}
	return err
}

// DialRankLink connects one rank worker to a coordinator's exchange
// with bounded retry and announces its partition. The returned link is
// ready for core.RunPartition.
func DialRankLink(ctx context.Context, addr string, part int, policy RetryPolicy, opTimeout time.Duration) (*RankConn, error) {
	conn, _, err := dialRetry(ctx, addr, policy)
	if err != nil {
		return nil, err
	}
	rc := NewRankConn(ctx, conn, opTimeout)
	if err := rc.Send(&core.RankDelta{Kind: core.RankHello, Part: uint32(part)}); err != nil {
		conn.Close()
		return nil, err
	}
	return rc, nil
}
