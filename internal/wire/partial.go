package wire

import (
	"fmt"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

// Partial-graph encoding (all little-endian):
//
//	u16 labelLen | label
//	u64 objectCount | objects × { 16B fid, u64 ino, u16 type }
//	u64 edgeCount   | edges   × { 16B src, 16B dst, u8 kind }
//	u32 issueCount  | issues  × { u64 ino, u16 len, text }
//	stats: 3 × u64

// EncodePartial serializes a scanner partial graph for bulk transfer.
func EncodePartial(p *scanner.Partial) []byte {
	size := 2 + len(p.ServerLabel) + 8 + len(p.Objects)*26 + 8 + len(p.Edges)*33 + 4 + 24
	for _, is := range p.Issues {
		size += 10 + len(is.What)
	}
	buf := make([]byte, 0, size)
	buf = appendU16(buf, uint16(len(p.ServerLabel)))
	buf = append(buf, p.ServerLabel...)
	buf = appendU64(buf, uint64(len(p.Objects)))
	for _, o := range p.Objects {
		fb := o.FID.Bytes()
		buf = append(buf, fb[:]...)
		buf = appendU64(buf, uint64(o.Ino))
		buf = appendU16(buf, uint16(o.Type))
	}
	buf = appendU64(buf, uint64(len(p.Edges)))
	for _, e := range p.Edges {
		sb, db := e.Src.Bytes(), e.Dst.Bytes()
		buf = append(buf, sb[:]...)
		buf = append(buf, db[:]...)
		buf = append(buf, byte(e.Kind))
	}
	buf = appendU32(buf, uint32(len(p.Issues)))
	for _, is := range p.Issues {
		buf = appendU64(buf, uint64(is.Ino))
		buf = appendU16(buf, uint16(len(is.What)))
		buf = append(buf, is.What...)
	}
	buf = appendU64(buf, uint64(p.Stats.InodesScanned))
	buf = appendU64(buf, uint64(p.Stats.DirentsRead))
	buf = appendU64(buf, uint64(p.Stats.EdgesEmitted))
	return buf
}

// DecodePartial parses an encoded partial graph.
func DecodePartial(b []byte) (*scanner.Partial, error) {
	d := &decoder{b: b}
	p := &scanner.Partial{}
	p.ServerLabel = d.str16()
	nObj := d.u64()
	if d.err == nil && nObj > uint64(len(b)) { // cheap sanity bound
		return nil, fmt.Errorf("wire: implausible object count %d", nObj)
	}
	for i := uint64(0); i < nObj && d.err == nil; i++ {
		var o scanner.Object
		o.FID = d.fid()
		o.Ino = ldiskfs.Ino(d.u64())
		o.Type = ldiskfs.FileType(d.u16())
		p.Objects = append(p.Objects, o)
	}
	nEdge := d.u64()
	if d.err == nil && nEdge > uint64(len(b)) {
		return nil, fmt.Errorf("wire: implausible edge count %d", nEdge)
	}
	for i := uint64(0); i < nEdge && d.err == nil; i++ {
		var e scanner.FIDEdge
		e.Src = d.fid()
		e.Dst = d.fid()
		e.Kind = graph.EdgeKind(d.u8())
		p.Edges = append(p.Edges, e)
	}
	nIssue := d.u32()
	for i := uint32(0); i < nIssue && d.err == nil; i++ {
		var is scanner.Issue
		is.Ino = ldiskfs.Ino(d.u64())
		is.What = d.str16()
		p.Issues = append(p.Issues, is)
	}
	p.Stats.InodesScanned = int64(d.u64())
	p.Stats.DirentsRead = int64(d.u64())
	p.Stats.EdgesEmitted = int64(d.u64())
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes in partial", len(b)-d.off)
	}
	return p, nil
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("wire: truncated message at offset %d", d.off)
		return false
	}
	return true
}

func (d *decoder) u8() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := le.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := le.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := le.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) fid() lustre.FID {
	if !d.need(16) {
		return lustre.FID{}
	}
	f := lustre.FIDFromBytes(d.b[d.off:])
	d.off += 16
	return f
}

func (d *decoder) str16() string {
	n := int(d.u16())
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func appendU16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
