// Package wire is the network layer shared by both checkers. It defines
// a length-prefixed binary framing over TCP, a bulk codec for scanner
// partial graphs (FaultyRank ships each server's whole partial graph in
// one message — the paper's §V-C explanation for its low network cost),
// and a per-object metadata RPC (StatFID) with which the LFSCK baseline
// performs its one-round-trip-per-object cross-checks, reproducing the
// high fan-out that makes the original LFSCK slow.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

var le = binary.LittleEndian

// Message types.
const (
	// MsgPartial carries one encoded scanner.Partial (bulk transfer).
	MsgPartial byte = iota + 1
	// MsgAck acknowledges a bulk transfer.
	MsgAck
	// MsgStatFID requests the metadata of one FID (16-byte payload).
	MsgStatFID
	// MsgFIDInfo answers MsgStatFID.
	MsgFIDInfo
	// MsgError carries a textual error.
	MsgError
	// MsgBye closes a session.
	MsgBye
	// MsgStatBatch requests the metadata of many FIDs in one round trip
	// (u32 count, count × 16-byte FIDs).
	MsgStatBatch
	// MsgFIDInfoBatch answers MsgStatBatch (count × length-prefixed
	// encoded FIDInfo records).
	MsgFIDInfoBatch
	// MsgChunk carries one encoded scanner.Chunk of a streamed partial
	// graph; the chunk marked final ends the stream and is acked.
	MsgChunk
	// MsgTelemetry carries a scanner's telemetry trailer (snapshot +
	// span tree), sent between the final chunk and the ack — and
	// best-effort mid-stream when the scanner's context is cancelled.
	MsgTelemetry
	// MsgRankDelta carries one superstep frame of the partitioned rank
	// exchange (core.RankDelta, versioned codec in rankdelta.go).
	MsgRankDelta
	// MsgJournal carries a scanner's flight-recorder trailer (an FRJR
	// blob of telemetry.JournalSnapshot sections), sent right after
	// MsgTelemetry on the same tolerant trailer protocol.
	MsgJournal
	// MsgSubGraph carries one partition's encoded graph.SubGraph shard
	// (FRSG blob, opaque to the wire layer), shipped by the coordinator
	// to a rank worker that announced itself with no shard.
	MsgSubGraph
)

// MaxFrame bounds a single frame (a partial graph of a multi-million
// inode server fits comfortably; this is a sanity guard, not a limit
// the protocol design relies on).
const MaxFrame = 1 << 31

// ErrFrameTooLarge is returned for frames exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame too large")

// WriteFrame writes one framed message: u8 type | u32 length | payload.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if int64(len(payload)) >= MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [5]byte
	hdr[0] = typ
	le.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readBatch bounds how much payload ReadFrame allocates ahead of the
// bytes actually arriving.
const readBatch = 1 << 20

// ReadFrame reads one framed message. The length comes from an
// untrusted header, so the payload grows in bounded batches as bytes
// arrive (the edgelist.ReadBinary discipline): a lying header on a
// short or hostile stream costs at most one batch before the
// truncation error, never a MaxFrame-sized allocation.
func ReadFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := le.Uint32(hdr[1:])
	if int64(n) >= MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	payload := make([]byte, 0, min(n, readBatch))
	for uint32(len(payload)) < n {
		grow := n - uint32(len(payload))
		if grow > readBatch {
			grow = readBatch
		}
		off := len(payload)
		payload = append(payload, make([]byte, grow)...)
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			return 0, nil, fmt.Errorf("wire: frame truncated at byte %d of %d: %w", off, n, err)
		}
	}
	return hdr[0], payload, nil
}

// WriteError frames err as a MsgError.
func WriteError(w io.Writer, err error) error {
	return WriteFrame(w, MsgError, []byte(err.Error()))
}

// AsError converts a received (type, payload) into a Go error when the
// frame is MsgError, else nil.
func AsError(typ byte, payload []byte) error {
	if typ == MsgError {
		return fmt.Errorf("wire: remote error: %s", payload)
	}
	return nil
}
