package wire

import (
	"fmt"
	"net"
	"sync"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/scanner"
)

// Chunk encoding (all little-endian):
//
//	u16 labelLen | label
//	u32 seq
//	u8 flags (bit 0 = final; other bits must be zero)
//	u32 objectCount | objects × { 16B fid, u64 ino, u16 type }
//	u32 edgeCount   | edges   × { 16B src, 16B dst, u8 kind }
//	u32 issueCount  | issues  × { u64 ino, u16 len, text }
//	stats: 3 × u64
//
// The encoding is bijective: a payload either fails DecodeChunk or
// re-encodes to the identical bytes (the fuzz target leans on this).

const chunkFlagFinal = 1

// EncodeChunk serializes one scanner chunk for streamed transfer.
func EncodeChunk(c *scanner.Chunk) []byte {
	size := 2 + len(c.ServerLabel) + 5 + 4 + len(c.Objects)*26 + 4 + len(c.Edges)*33 + 4 + 24
	for _, is := range c.Issues {
		size += 10 + len(is.What)
	}
	buf := make([]byte, 0, size)
	buf = appendU16(buf, uint16(len(c.ServerLabel)))
	buf = append(buf, c.ServerLabel...)
	buf = appendU32(buf, uint32(c.Seq))
	var flags byte
	if c.Final {
		flags |= chunkFlagFinal
	}
	buf = append(buf, flags)
	buf = appendU32(buf, uint32(len(c.Objects)))
	for _, o := range c.Objects {
		fb := o.FID.Bytes()
		buf = append(buf, fb[:]...)
		buf = appendU64(buf, uint64(o.Ino))
		buf = appendU16(buf, uint16(o.Type))
	}
	buf = appendU32(buf, uint32(len(c.Edges)))
	for _, e := range c.Edges {
		sb, db := e.Src.Bytes(), e.Dst.Bytes()
		buf = append(buf, sb[:]...)
		buf = append(buf, db[:]...)
		buf = append(buf, byte(e.Kind))
	}
	buf = appendU32(buf, uint32(len(c.Issues)))
	for _, is := range c.Issues {
		buf = appendU64(buf, uint64(is.Ino))
		buf = appendU16(buf, uint16(len(is.What)))
		buf = append(buf, is.What...)
	}
	buf = appendU64(buf, uint64(c.Stats.InodesScanned))
	buf = appendU64(buf, uint64(c.Stats.DirentsRead))
	buf = appendU64(buf, uint64(c.Stats.EdgesEmitted))
	return buf
}

// DecodeChunk parses an encoded chunk. Counts are sanity-bounded against
// the payload length before any allocation sized from them.
func DecodeChunk(b []byte) (*scanner.Chunk, error) {
	d := &decoder{b: b}
	c := &scanner.Chunk{}
	c.ServerLabel = d.str16()
	c.Seq = int(d.u32())
	flags := d.u8()
	if d.err == nil && flags&^byte(chunkFlagFinal) != 0 {
		return nil, fmt.Errorf("wire: unknown chunk flags %#x", flags)
	}
	c.Final = flags&chunkFlagFinal != 0
	nObj := d.u32()
	if d.err == nil && uint64(nObj)*26 > uint64(len(b)) {
		return nil, fmt.Errorf("wire: implausible chunk object count %d", nObj)
	}
	for i := uint32(0); i < nObj && d.err == nil; i++ {
		var o scanner.Object
		o.FID = d.fid()
		o.Ino = ldiskfs.Ino(d.u64())
		o.Type = ldiskfs.FileType(d.u16())
		c.Objects = append(c.Objects, o)
	}
	nEdge := d.u32()
	if d.err == nil && uint64(nEdge)*33 > uint64(len(b)) {
		return nil, fmt.Errorf("wire: implausible chunk edge count %d", nEdge)
	}
	for i := uint32(0); i < nEdge && d.err == nil; i++ {
		var e scanner.FIDEdge
		e.Src = d.fid()
		e.Dst = d.fid()
		e.Kind = graph.EdgeKind(d.u8())
		c.Edges = append(c.Edges, e)
	}
	nIssue := d.u32()
	if d.err == nil && uint64(nIssue)*10 > uint64(len(b)) {
		return nil, fmt.Errorf("wire: implausible chunk issue count %d", nIssue)
	}
	for i := uint32(0); i < nIssue && d.err == nil; i++ {
		var is scanner.Issue
		is.Ino = ldiskfs.Ino(d.u64())
		is.What = d.str16()
		c.Issues = append(c.Issues, is)
	}
	c.Stats.InodesScanned = int64(d.u64())
	c.Stats.DirentsRead = int64(d.u64())
	c.Stats.EdgesEmitted = int64(d.u64())
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes in chunk", len(b)-d.off)
	}
	return c, nil
}

// ChunkStream ships a scanner's chunk stream to a collector over one TCP
// connection. It implements scanner.Sink, so it plugs directly under
// scanner.ScanImageToSink: each emitted chunk is framed and written
// immediately, which is what lets the MDS-side aggregation overlap the
// transfer instead of waiting for a whole encoded partial. The final
// chunk is acknowledged by the collector before Emit returns.
type ChunkStream struct {
	conn net.Conn
	err  error
}

// DialChunkStream connects one scanner stream to a collector.
func DialChunkStream(addr string) (*ChunkStream, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &ChunkStream{conn: conn}, nil
}

// Emit frames and sends one chunk. A mid-stream collector failure
// surfaces either as a write error here or as the error frame read in
// place of the final ack.
func (s *ChunkStream) Emit(c *scanner.Chunk) error {
	if s.err != nil {
		return s.err
	}
	if err := WriteFrame(s.conn, MsgChunk, EncodeChunk(c)); err != nil {
		s.err = err
		return err
	}
	if !c.Final {
		return nil
	}
	typ, body, err := ReadFrame(s.conn)
	if err != nil {
		s.err = err
		return err
	}
	if err := AsError(typ, body); err != nil {
		s.err = err
		return err
	}
	if typ != MsgAck {
		s.err = fmt.Errorf("wire: unexpected ack type %d", typ)
		return s.err
	}
	return nil
}

// Close releases the connection.
func (s *ChunkStream) Close() error { return s.conn.Close() }

// CollectChunks accepts nStreams chunk-stream connections and delivers
// every decoded chunk until each stream has sent its final chunk.
// Streams are handled concurrently, so deliver must be safe for
// concurrent use (agg.Builder.Emit is). The first error — network,
// decode, or from deliver — is returned after all stream handlers stop.
func (c *Collector) CollectChunks(nStreams int, deliver func(*scanner.Chunk) error) error {
	var wg sync.WaitGroup
	errs := make(chan error, nStreams+1)
	for i := 0; i < nStreams; i++ {
		conn, err := c.ln.Accept()
		if err != nil {
			errs <- err
			break
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			errs <- serveChunkStream(conn, deliver)
		}(conn)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// serveChunkStream drains one connection's chunks into deliver.
func serveChunkStream(conn net.Conn, deliver func(*scanner.Chunk) error) error {
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return fmt.Errorf("wire: chunk stream: %w", err)
		}
		if err := AsError(typ, payload); err != nil {
			return err
		}
		if typ != MsgChunk {
			err := fmt.Errorf("wire: expected chunk, got message %d", typ)
			_ = WriteError(conn, err)
			return err
		}
		ch, err := DecodeChunk(payload)
		if err != nil {
			_ = WriteError(conn, err)
			return err
		}
		if err := deliver(ch); err != nil {
			_ = WriteError(conn, err)
			return err
		}
		if ch.Final {
			return WriteFrame(conn, MsgAck, nil)
		}
	}
}
