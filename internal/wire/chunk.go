package wire

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"faultyrank/internal/graph"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/scanner"
	"faultyrank/internal/telemetry"
)

// Chunk encoding (all little-endian):
//
//	u16 labelLen | label
//	u32 seq
//	u8 flags (bit 0 = final; other bits must be zero)
//	u32 objectCount | objects × { 16B fid, u64 ino, u16 type }
//	u32 edgeCount   | edges   × { 16B src, 16B dst, u8 kind }
//	u32 issueCount  | issues  × { u64 ino, u16 len, text }
//	stats: 3 × u64
//
// The encoding is bijective: a payload either fails DecodeChunk or
// re-encodes to the identical bytes (the fuzz target leans on this).

const chunkFlagFinal = 1

// EncodeChunk serializes one scanner chunk for streamed transfer.
func EncodeChunk(c *scanner.Chunk) []byte {
	size := 2 + len(c.ServerLabel) + 5 + 4 + len(c.Objects)*26 + 4 + len(c.Edges)*33 + 4 + 24
	for _, is := range c.Issues {
		size += 10 + len(is.What)
	}
	buf := make([]byte, 0, size)
	buf = appendU16(buf, uint16(len(c.ServerLabel)))
	buf = append(buf, c.ServerLabel...)
	buf = appendU32(buf, uint32(c.Seq))
	var flags byte
	if c.Final {
		flags |= chunkFlagFinal
	}
	buf = append(buf, flags)
	buf = appendU32(buf, uint32(len(c.Objects)))
	for _, o := range c.Objects {
		fb := o.FID.Bytes()
		buf = append(buf, fb[:]...)
		buf = appendU64(buf, uint64(o.Ino))
		buf = appendU16(buf, uint16(o.Type))
	}
	buf = appendU32(buf, uint32(len(c.Edges)))
	for _, e := range c.Edges {
		sb, db := e.Src.Bytes(), e.Dst.Bytes()
		buf = append(buf, sb[:]...)
		buf = append(buf, db[:]...)
		buf = append(buf, byte(e.Kind))
	}
	buf = appendU32(buf, uint32(len(c.Issues)))
	for _, is := range c.Issues {
		buf = appendU64(buf, uint64(is.Ino))
		buf = appendU16(buf, uint16(len(is.What)))
		buf = append(buf, is.What...)
	}
	buf = appendU64(buf, uint64(c.Stats.InodesScanned))
	buf = appendU64(buf, uint64(c.Stats.DirentsRead))
	buf = appendU64(buf, uint64(c.Stats.EdgesEmitted))
	return buf
}

// DecodeChunk parses an encoded chunk. Counts are sanity-bounded against
// the payload length before any allocation sized from them.
func DecodeChunk(b []byte) (*scanner.Chunk, error) {
	d := &decoder{b: b}
	c := &scanner.Chunk{}
	c.ServerLabel = d.str16()
	c.Seq = int(d.u32())
	flags := d.u8()
	if d.err == nil && flags&^byte(chunkFlagFinal) != 0 {
		return nil, fmt.Errorf("wire: unknown chunk flags %#x", flags)
	}
	c.Final = flags&chunkFlagFinal != 0
	nObj := d.u32()
	if d.err == nil && uint64(nObj)*26 > uint64(len(b)) {
		return nil, fmt.Errorf("wire: implausible chunk object count %d", nObj)
	}
	for i := uint32(0); i < nObj && d.err == nil; i++ {
		var o scanner.Object
		o.FID = d.fid()
		o.Ino = ldiskfs.Ino(d.u64())
		o.Type = ldiskfs.FileType(d.u16())
		c.Objects = append(c.Objects, o)
	}
	nEdge := d.u32()
	if d.err == nil && uint64(nEdge)*33 > uint64(len(b)) {
		return nil, fmt.Errorf("wire: implausible chunk edge count %d", nEdge)
	}
	for i := uint32(0); i < nEdge && d.err == nil; i++ {
		var e scanner.FIDEdge
		e.Src = d.fid()
		e.Dst = d.fid()
		e.Kind = graph.EdgeKind(d.u8())
		c.Edges = append(c.Edges, e)
	}
	nIssue := d.u32()
	if d.err == nil && uint64(nIssue)*10 > uint64(len(b)) {
		return nil, fmt.Errorf("wire: implausible chunk issue count %d", nIssue)
	}
	for i := uint32(0); i < nIssue && d.err == nil; i++ {
		var is scanner.Issue
		is.Ino = ldiskfs.Ino(d.u64())
		is.What = d.str16()
		c.Issues = append(c.Issues, is)
	}
	c.Stats.InodesScanned = int64(d.u64())
	c.Stats.DirentsRead = int64(d.u64())
	c.Stats.EdgesEmitted = int64(d.u64())
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes in chunk", len(b)-d.off)
	}
	return c, nil
}

// ChunkStream ships a scanner's chunk stream to a collector over one TCP
// connection. It implements scanner.Sink, so it plugs directly under
// scanner.ScanImageToSink: each emitted chunk is framed and written
// immediately, which is what lets the MDS-side aggregation overlap the
// transfer instead of waiting for a whole encoded partial. After the
// final chunk the stream ships its telemetry trailer (MsgTelemetry),
// then waits for the collector's acknowledgement before Emit returns.
type ChunkStream struct {
	conn net.Conn
	ctx  context.Context
	// opTimeout bounds each frame write (and the final ack read); zero
	// relies on the ctx deadline alone.
	opTimeout   time.Duration
	dialRetries int
	// frames and bytes are this stream's own tallies (telemetry
	// counters so Sent is race-free against a concurrent reader);
	// metrics additionally feeds each attached registry view — the
	// run-wide one and, on the cluster path, the per-server one.
	frames  telemetry.Counter
	bytes   telemetry.Counter
	metrics []*Metrics
	// telemetrySource, when set, is invoked right after the final chunk
	// frame is written — the moment the server's instruments stop
	// moving — to build the trailer shipped before the ack.
	telemetrySource func() *Telemetry
	// journal, when set, records this stream's flight-recorder events
	// (slow frames) and is snapshotted into the MsgJournal trailer that
	// follows MsgTelemetry. Nil journals no-op and ship an empty blob,
	// keeping the trailer protocol uniform for every sender.
	journal *telemetry.Journal
	err     error
}

// SlowFrameThreshold is the frame-write latency above which a stream
// with a journal records a slow-frame event — slow enough to indicate
// backpressure or a stalling peer, fast enough to fire well before the
// op timeout kills the stream.
const SlowFrameThreshold = 250 * time.Millisecond

// DialChunkStream connects one scanner stream to a collector with no
// deadline and no retry (the in-process tests' path).
func DialChunkStream(addr string) (*ChunkStream, error) {
	return DialChunkStreamContext(context.Background(), addr, RetryPolicy{}, 0)
}

// DialChunkStreamContext connects one scanner stream to a collector
// under ctx, retrying the dial per policy. opTimeout bounds each
// subsequent frame write and the final ack read (0 = ctx deadline
// only), so a stalled collector surfaces as an I/O timeout instead of
// hanging the scanner.
func DialChunkStreamContext(ctx context.Context, addr string, policy RetryPolicy, opTimeout time.Duration) (*ChunkStream, error) {
	return DialChunkStreamObserved(ctx, addr, policy, opTimeout)
}

// DialChunkStreamObserved is DialChunkStreamContext with wire metrics
// attached: dial retries, sent frames/bytes and per-frame write latency
// land in every registry view in ms as the stream ships. The cluster
// path passes two — the run-wide metrics and the per-server set the
// telemetry trailer snapshots — and nil entries observe nothing.
func DialChunkStreamObserved(ctx context.Context, addr string, policy RetryPolicy, opTimeout time.Duration, ms ...*Metrics) (*ChunkStream, error) {
	conn, retries, err := dialRetry(ctx, addr, policy)
	if err != nil {
		return nil, err
	}
	for _, m := range ms {
		if m != nil {
			m.DialRetries.Add(int64(retries))
		}
	}
	return &ChunkStream{conn: conn, ctx: ctx, opTimeout: opTimeout, dialRetries: retries, metrics: ms}, nil
}

// SetTelemetrySource attaches the callback that builds this stream's
// telemetry trailer. It runs exactly when the final chunk frame has
// been written (instruments final, ack not yet requested), or when
// SendTelemetry ships a best-effort trailer on the failure path.
func (s *ChunkStream) SetTelemetrySource(fn func() *Telemetry) { s.telemetrySource = fn }

// SetJournal attaches the stream's flight recorder: slow frame writes
// are recorded to it, and its snapshot ships home as the MsgJournal
// trailer right after the telemetry trailer. A nil journal is fine.
func (s *ChunkStream) SetJournal(j *telemetry.Journal) { s.journal = j }

// DialRetries reports how many redials the initial connect needed.
func (s *ChunkStream) DialRetries() int { return s.dialRetries }

// Sent reports the frames and payload bytes shipped so far.
func (s *ChunkStream) Sent() (frames, bytes int64) { return s.frames.Value(), s.bytes.Value() }

// Emit frames and sends one chunk. A mid-stream collector failure
// surfaces either as a write error here or as the error frame read in
// place of the final ack.
func (s *ChunkStream) Emit(c *scanner.Chunk) error {
	return s.emit(EncodeChunk(c), c.Final)
}

// EmitRaw ships an already-encoded (possibly deliberately corrupt)
// chunk payload — the hook fault injection uses to put hostile frames
// on a live stream.
func (s *ChunkStream) EmitRaw(payload []byte, final bool) error {
	return s.emit(payload, final)
}

func (s *ChunkStream) emit(payload []byte, final bool) error {
	if s.err != nil {
		return s.err
	}
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return err
		}
	}
	s.setDeadline(net.Conn.SetWriteDeadline)
	var t0 time.Time
	if len(s.metrics) > 0 || s.journal != nil {
		t0 = time.Now()
	}
	if err := WriteFrame(s.conn, MsgChunk, payload); err != nil {
		s.err = err
		return err
	}
	s.frames.Inc()
	s.bytes.Add(int64(len(payload)))
	var elapsed time.Duration
	if !t0.IsZero() {
		elapsed = time.Since(t0)
	}
	for _, m := range s.metrics {
		if m != nil {
			m.FrameWrite.Observe(elapsed.Seconds())
			m.FramesSent.Inc()
			m.BytesSent.Add(int64(len(payload)))
		}
	}
	if s.journal != nil && elapsed > SlowFrameThreshold {
		s.journal.Record("wire", "slow-frame",
			"seconds", fmt.Sprintf("%.3f", elapsed.Seconds()),
			"bytes", fmt.Sprintf("%d", len(payload)))
	}
	if !final {
		return nil
	}
	// The stream's instruments are final now: build and ship the
	// telemetry trailer, then the journal trailer, before requesting
	// the ack. Both ride the same write deadline as the chunk and
	// deliberately do not count into the frame/byte tallies, which
	// report graph transfer. Every sender ships both trailers (empty
	// when uninstrumented), so the collector's trailer reads are
	// uniform and the ack handshake can never deadlock.
	if s.journal != nil {
		// Terminal marker recorded before the snapshot is taken, so the
		// shipped section ends with it — a lane whose last event is not
		// stream-final died mid-stream.
		s.journal.Record("wire", "stream-final",
			"frames", fmt.Sprintf("%d", s.frames.Value()),
			"bytes", fmt.Sprintf("%d", s.bytes.Value()))
	}
	if err := WriteFrame(s.conn, MsgTelemetry, EncodeTelemetry(s.trailer())); err != nil {
		s.err = err
		return err
	}
	if err := WriteFrame(s.conn, MsgJournal, s.journalTrailer()); err != nil {
		s.err = err
		return err
	}
	s.setDeadline(net.Conn.SetReadDeadline)
	typ, body, err := ReadFrame(s.conn)
	if err != nil {
		s.err = err
		return err
	}
	if err := AsError(typ, body); err != nil {
		s.err = err
		return err
	}
	if typ != MsgAck {
		s.err = fmt.Errorf("wire: unexpected ack type %d", typ)
		return s.err
	}
	return nil
}

// trailer builds the stream's telemetry trailer: the source callback's
// result when one is attached, an empty (but valid) trailer otherwise,
// so the collector-side protocol is uniform for every sender.
func (s *ChunkStream) trailer() *Telemetry {
	if s.telemetrySource != nil {
		if t := s.telemetrySource(); t != nil {
			return t
		}
	}
	return &Telemetry{}
}

// journalTrailer encodes the stream's journal snapshot (an empty FRJR
// blob when no journal is attached).
func (s *ChunkStream) journalTrailer() []byte {
	if s.journal == nil {
		return telemetry.EncodeJournal(nil)
	}
	return telemetry.EncodeJournal([]telemetry.JournalSnapshot{s.journal.Snapshot()})
}

// SendTelemetry ships a best-effort telemetry trailer outside the
// normal final-chunk flow — the path a cancelled or failed scanner uses
// so its partial instruments still reach the collector when the
// connection happens to survive. Errors are returned for logging but a
// failure here must never escalate: the run is already degraded.
func (s *ChunkStream) SendTelemetry(t *Telemetry) error {
	if s.err != nil {
		return s.err
	}
	if t == nil {
		t = s.trailer()
	}
	s.setDeadline(net.Conn.SetWriteDeadline)
	return WriteFrame(s.conn, MsgTelemetry, EncodeTelemetry(t))
}

// SendJournal ships a best-effort journal trailer outside the normal
// final-chunk flow, the flight recorder's counterpart to SendTelemetry:
// a failing scanner's event trail is exactly what the coordinator wants
// when diagnosing the failure, so it is worth one opportunistic write.
func (s *ChunkStream) SendJournal() error {
	if s.err != nil {
		return s.err
	}
	s.setDeadline(net.Conn.SetWriteDeadline)
	return WriteFrame(s.conn, MsgJournal, s.journalTrailer())
}

func (s *ChunkStream) setDeadline(set func(net.Conn, time.Time) error) {
	ctx := s.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	_ = set(s.conn, ioDeadline(ctx, s.opTimeout))
}

// Close releases the connection.
func (s *ChunkStream) Close() error { return s.conn.Close() }

// CollectResult reports what one CollectChunks run received: the
// per-stage transfer counters frbench surfaces, the labels whose
// streams completed, and a human-readable account of every stream
// failure (empty on a clean run).
type CollectResult struct {
	// Frames and Bytes count every chunk frame the collector decoded
	// (snapshots of the per-collect counters, taken after all stream
	// handlers stop).
	Frames, Bytes int64
	// Completed lists the server labels whose final chunk arrived,
	// sorted for deterministic reporting.
	Completed []string
	// Errors describes each failed or aborted stream.
	Errors []string
	// Telemetry holds the trailers received, one per server label
	// (last wins on a duplicate), sorted by server for determinism. A
	// server that crashed before its trailer simply has no entry here —
	// missing telemetry never fails a collect.
	Telemetry []*Telemetry
	// Journals holds the flight-recorder sections received in MsgJournal
	// trailers, one per server label (last wins), sorted by server.
	// Tolerated exactly like Telemetry: missing or malformed journals
	// never fail a collect.
	Journals []telemetry.JournalSnapshot
}

// CollectChunks accepts nStreams chunk-stream connections and delivers
// every decoded chunk until each stream has sent its final chunk.
// Streams are handled concurrently, so deliver must be safe for
// concurrent use (agg.Builder.Emit is). The first error — network,
// decode, or from deliver — is returned after all stream handlers stop;
// a stream error aborts the sibling streams and the accept wait.
func (c *Collector) CollectChunks(nStreams int, deliver func(*scanner.Chunk) error) error {
	_, err := c.CollectChunksContext(context.Background(), nStreams, false, deliver)
	return err
}

// CollectChunksContext is CollectChunks under a context. When ctx
// expires or is cancelled, the accept wait and every in-flight stream
// read are unblocked (listener closed, connection deadlines forced), so
// a crashed or stalled scanner can never hang the aggregator.
//
// With degraded=false the first failure — stream error, accept error,
// or ctx expiry — aborts the sibling streams and is returned. With
// degraded=true the collector instead completes with whatever streams
// finished: failed streams are recorded in the result and the caller
// decides what surviving coverage is acceptable. The result is returned
// in both modes so callers can report transfer counters.
func (c *Collector) CollectChunksContext(ctx context.Context, nStreams int, degraded bool, deliver func(*scanner.Chunk) error) (*CollectResult, error) {
	res := &CollectResult{}
	// Per-collect frame/byte tallies: telemetry counters rather than
	// hand-rolled atomics, snapshotted into res once the handlers stop.
	// c.metrics (when observed) additionally feeds the run registry.
	var frames, bytes telemetry.Counter
	var mu sync.Mutex // guards res fields, telems and conns
	conns := make(map[net.Conn]struct{})
	telems := make(map[string]*Telemetry)
	journals := make(map[string]telemetry.JournalSnapshot)
	var errs []error
	record := func(t *Telemetry) {
		if t == nil || t.Server == "" {
			return
		}
		mu.Lock()
		telems[t.Server] = t
		mu.Unlock()
	}
	recordJournal := func(sections []telemetry.JournalSnapshot) {
		mu.Lock()
		for _, s := range sections {
			if s.Server != "" {
				journals[s.Server] = s
			}
		}
		mu.Unlock()
	}

	// stop unblocks the accept wait and all in-flight reads exactly
	// once: on ctx expiry, or (strict mode) on the first stream error.
	var stopOnce sync.Once
	stop := func() {
		stopOnce.Do(func() {
			c.ln.Close()
			mu.Lock()
			for conn := range conns {
				_ = conn.SetDeadline(time.Now())
			}
			mu.Unlock()
		})
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			stop()
		case <-done:
		}
	}()

	var wg sync.WaitGroup
	accepted := 0
	for accepted < nStreams {
		conn, err := c.ln.Accept()
		if err != nil {
			// The listener was closed — by ctx expiry, a sibling abort,
			// or the caller signalling that no more senders are coming
			// (checker's all-scanners-done watchdog). Only strict mode
			// treats the missing streams as an error.
			if !degraded && ctx.Err() == nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
			break
		}
		accepted++
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer func() {
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
				conn.Close()
			}()
			label, err := serveChunkStream(conn, deliver, &frames, &bytes, c.metrics, record, recordJournal)
			mu.Lock()
			if err != nil {
				if label != "" {
					err = fmt.Errorf("stream %q: %w", label, err)
				}
				errs = append(errs, err)
				res.Errors = append(res.Errors, err.Error())
				if c.metrics != nil {
					c.metrics.StreamErrors.Inc()
					c.metrics.Journal.Record("wire", "stream-error",
						"server", label, "err", err.Error())
				}
				mu.Unlock()
				if !degraded {
					stop() // abort the sibling streams
				}
				return
			}
			res.Completed = append(res.Completed, label)
			mu.Unlock()
		}(conn)
	}
	wg.Wait()
	res.Frames = frames.Value()
	res.Bytes = bytes.Value()
	sort.Strings(res.Completed)
	sort.Strings(res.Errors)
	for _, t := range telems {
		res.Telemetry = append(res.Telemetry, t)
	}
	sort.Slice(res.Telemetry, func(i, j int) bool { return res.Telemetry[i].Server < res.Telemetry[j].Server })
	for _, j := range journals {
		res.Journals = append(res.Journals, j)
	}
	sort.Slice(res.Journals, func(i, j int) bool { return res.Journals[i].Server < res.Journals[j].Server })
	if degraded {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("wire: collect: %w", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(errs) > 0 {
		return res, errs[0]
	}
	return res, nil
}

// serveChunkStream drains one connection's chunks into deliver,
// counting frames and bytes into the per-collect counters and, when
// set, the run-wide metrics. Trailers — the telemetry + journal pair
// expected after the final chunk, or best-effort ones a failing scanner
// ships mid-stream — are handed to record/recordJournal; a malformed
// trailer is dropped, never escalated, since observability must not
// fail a stream whose graph data is intact. Returns the stream's server
// label ("" if no chunk decoded before the failure).
func serveChunkStream(conn net.Conn, deliver func(*scanner.Chunk) error, frames, bytes *telemetry.Counter, m *Metrics, record func(*Telemetry), recordJournal func([]telemetry.JournalSnapshot)) (string, error) {
	label := ""
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return label, fmt.Errorf("wire: chunk stream: %w", err)
		}
		if err := AsError(typ, payload); err != nil {
			return label, err
		}
		if typ == MsgTelemetry || typ == MsgJournal {
			recordTrailer(typ, payload, record, recordJournal)
			continue
		}
		if typ != MsgChunk {
			err := fmt.Errorf("wire: expected chunk, got message %d", typ)
			_ = WriteError(conn, err)
			return label, err
		}
		ch, err := DecodeChunk(payload)
		if err != nil {
			_ = WriteError(conn, err)
			return label, err
		}
		frames.Inc()
		bytes.Add(int64(len(payload)))
		if m != nil {
			m.FramesRecv.Inc()
			m.BytesRecv.Add(int64(len(payload)))
		}
		label = ch.ServerLabel
		if err := deliver(ch); err != nil {
			_ = WriteError(conn, err)
			return label, err
		}
		if ch.Final {
			// Every ChunkStream sender ships its telemetry then journal
			// trailer between the final chunk and the ack wait. Read
			// both tolerantly: a read error or unexpected type leaves
			// that trailer missing but the ack still goes out — the
			// graph transfer did complete.
			for i := 0; i < 2; i++ {
				typ, payload, err := ReadFrame(conn)
				if err != nil || (typ != MsgTelemetry && typ != MsgJournal) {
					break
				}
				recordTrailer(typ, payload, record, recordJournal)
			}
			return label, WriteFrame(conn, MsgAck, nil)
		}
	}
}

// recordTrailer decodes one trailer frame into the matching recorder,
// silently dropping malformed payloads.
func recordTrailer(typ byte, payload []byte, record func(*Telemetry), recordJournal func([]telemetry.JournalSnapshot)) {
	switch typ {
	case MsgTelemetry:
		if t, err := DecodeTelemetry(payload); err == nil && record != nil {
			record(t)
		}
	case MsgJournal:
		if sections, err := telemetry.DecodeJournal(payload); err == nil && recordJournal != nil {
			recordJournal(sections)
		}
	}
}
