// Package par provides small deterministic parallel-for and reduction
// helpers used throughout the FaultyRank code base.
//
// The helpers intentionally favour static range partitioning over work
// stealing: every exported function splits its index space into at most
// `workers` contiguous chunks, which keeps the memory-access pattern of
// CSR kernels sequential per worker and makes results reproducible.
package par

import (
	"runtime"
	"sync"
)

// DefaultWorkers returns the default worker count used when a caller passes
// workers <= 0. It is GOMAXPROCS, the number of usable CPUs.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// clampWorkers normalises a worker request against the problem size.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForRange runs fn over [0, n) split into contiguous chunks, one goroutine
// per chunk. fn receives the half-open range [lo, hi) it owns. ForRange
// returns once all chunks complete. With workers <= 1 (or tiny n) it runs
// inline, avoiding goroutine overhead on small inputs.
func ForRange(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n) using ForRange underneath.
func ForEach(n, workers int, fn func(i int)) {
	ForRange(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// SumFloat64 computes the sum of xs in parallel. Each worker accumulates a
// local sum over its contiguous chunk; partial sums are combined in chunk
// order so the result is deterministic for a fixed worker count.
func SumFloat64(xs []float64, workers int) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	partial := make([]float64, nChunks)
	var wg sync.WaitGroup
	idx := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			partial[slot] = s
		}(idx, lo, hi)
		idx++
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

// MapReduceFloat64 evaluates fn(i) for i in [0, n) and returns the sum of
// the results, computed with the same deterministic chunking as SumFloat64.
func MapReduceFloat64(n, workers int, fn func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		var s float64
		for i := 0; i < n; i++ {
			s += fn(i)
		}
		return s
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	partial := make([]float64, nChunks)
	var wg sync.WaitGroup
	idx := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			var s float64
			for i := lo; i < hi; i++ {
				s += fn(i)
			}
			partial[slot] = s
		}(idx, lo, hi)
		idx++
	}
	wg.Wait()
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}

// MapReduceMaxFloat64 evaluates fn(i) for i in [0, n) and returns the
// maximum of the results, 0 when n <= 0 (callers reduce non-negative
// magnitudes; an empty input has no deviation). Each worker keeps a
// local maximum over its contiguous chunk; chunk maxima are combined in
// chunk order, so the result is independent of goroutine interleaving.
func MapReduceMaxFloat64(n, workers int, fn func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		var m float64
		for i := 0; i < n; i++ {
			if v := fn(i); v > m {
				m = v
			}
		}
		return m
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	partial := make([]float64, nChunks)
	var wg sync.WaitGroup
	idx := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(slot, lo, hi int) {
			defer wg.Done()
			var m float64
			for i := lo; i < hi; i++ {
				if v := fn(i); v > m {
					m = v
				}
			}
			partial[slot] = m
		}(idx, lo, hi)
		idx++
	}
	wg.Wait()
	var m float64
	for _, p := range partial {
		if p > m {
			m = p
		}
	}
	return m
}

// ExclusivePrefixSum64 converts counts (length n) into exclusive prefix
// sums in place and returns the grand total. counts[i] becomes the sum of
// the original counts[0..i). The scan is sequential: prefix sums of the
// sizes used in this project (tens of millions of vertices) take only a
// few milliseconds, far below the cost of parallel-scan coordination.
func ExclusivePrefixSum64(counts []int64) int64 {
	var running int64
	for i := range counts {
		c := counts[i]
		counts[i] = running
		running += c
	}
	return running
}
