package par

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForRangeCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 97, 1000} {
			seen := make([]int32, n)
			ForRange(n, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestForRangeChunksAreDisjointAndOrdered(t *testing.T) {
	var total int64
	ForRange(1000, 8, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty chunk [%d,%d)", lo, hi)
		}
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != 1000 {
		t.Fatalf("covered %d of 1000", total)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
	ForEach(0, 4, func(int) { t.Fatal("called for empty range") })
}

func TestSumFloat64MatchesSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, r.Intn(5000))
		for i := range xs {
			xs[i] = r.Float64() - 0.5
		}
		var want float64
		for _, x := range xs {
			want += x
		}
		for _, w := range []int{1, 3, 16} {
			if math.Abs(SumFloat64(xs, w)-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSumFloat64Deterministic(t *testing.T) {
	xs := make([]float64, 10000)
	r := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = r.Float64()
	}
	a := SumFloat64(xs, 4)
	for i := 0; i < 10; i++ {
		if SumFloat64(xs, 4) != a {
			t.Fatal("nondeterministic for fixed worker count")
		}
	}
}

func TestMapReduceFloat64(t *testing.T) {
	got := MapReduceFloat64(100, 5, func(i int) float64 { return float64(i) })
	if got != 4950 {
		t.Fatalf("got %f", got)
	}
	if MapReduceFloat64(0, 5, func(int) float64 { return 1 }) != 0 {
		t.Fatal("empty range nonzero")
	}
	if MapReduceFloat64(3, 1, func(i int) float64 { return 2 }) != 6 {
		t.Fatal("sequential path wrong")
	}
}

func TestExclusivePrefixSum64(t *testing.T) {
	counts := []int64{3, 0, 5, 2}
	total := ExclusivePrefixSum64(counts)
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	want := []int64{0, 3, 3, 8}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
	if ExclusivePrefixSum64(nil) != 0 {
		t.Fatal("nil prefix sum nonzero")
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func TestMapReduceMaxFloat64(t *testing.T) {
	xs := []float64{0.5, 3.25, 1.0, 3.24999, 2.0, 0.0, 3.25}
	for _, w := range []int{1, 2, 3, 8, 100} {
		got := MapReduceMaxFloat64(len(xs), w, func(i int) float64 { return xs[i] })
		if got != 3.25 {
			t.Fatalf("workers=%d: got %v, want 3.25", w, got)
		}
	}
	if MapReduceMaxFloat64(0, 4, func(int) float64 { return 9 }) != 0 {
		t.Fatal("empty range nonzero")
	}
	if MapReduceMaxFloat64(-1, 4, func(int) float64 { return 9 }) != 0 {
		t.Fatal("negative range nonzero")
	}
	// The maximum at the last index must not be lost to chunk-slot
	// bookkeeping errors.
	n := 1001
	got := MapReduceMaxFloat64(n, 7, func(i int) float64 { return float64(i) })
	if got != float64(n-1) {
		t.Fatalf("last-index max: got %v, want %d", got, n-1)
	}
}

func TestMapReduceMaxFloat64Deterministic(t *testing.T) {
	n := 5000
	fn := func(i int) float64 { return float64((i*2654435761)%997) / 997 }
	want := MapReduceMaxFloat64(n, 1, fn)
	for _, w := range []int{2, 3, 8, 16} {
		if got := MapReduceMaxFloat64(n, w, fn); got != want {
			t.Fatalf("workers=%d: %v != %v", w, got, want)
		}
	}
}
