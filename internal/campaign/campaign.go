// Package campaign drives multi-fault evaluation campaigns in the style
// of PFault (Cao et al., ICS'18 — the fault-injection study that
// motivated FaultyRank): several inconsistencies are planted at once in
// disjoint regions of one cluster, the checker runs a single pass, and
// the verdicts are scored against the ground truth. The paper evaluates
// one fault at a time (Fig. 7); campaigns extend that to concurrent
// faults and measure recall (injected faults found), precision
// (findings attributable to an injected fault) and whether repair
// restored global consistency.
package campaign

import (
	"fmt"
	"math/rand"

	"faultyrank/internal/checker"
	"faultyrank/internal/inject"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/repair"
)

// Spec configures a campaign.
type Spec struct {
	// Faults is how many faults to plant (each in its own subtree).
	Faults int
	// Scenarios restricts the fault mix; empty means all eight.
	Scenarios []inject.Scenario
	// FilesPerRegion sizes each disjoint subtree.
	FilesPerRegion int
	// Seed drives scenario choice and target placement.
	Seed int64
	// Checker configures the pipeline under test.
	Checker checker.Options
}

// DefaultSpec returns a 3-fault campaign over all scenarios.
func DefaultSpec(seed int64) Spec {
	return Spec{Faults: 3, FilesPerRegion: 6, Seed: seed, Checker: checker.DefaultOptions()}
}

// FaultOutcome scores one planted fault.
type FaultOutcome struct {
	Injection *inject.Injection
	Region    string // the subtree the fault lives in
	Detected  bool   // some finding names the fault's region
}

// Result is the campaign outcome.
type Result struct {
	Outcomes []FaultOutcome
	// FalsePositives counts findings not attributable to any planted
	// fault's region.
	FalsePositives int
	// TotalFindings is the raw finding count of the single check pass.
	TotalFindings int
	// RepairedClean reports whether one repair pass restored a fully
	// consistent file system.
	RepairedClean bool
	// ResidualFindings counts findings surviving the repair pass.
	ResidualFindings int
}

// Recall returns the fraction of planted faults that were detected.
func (r *Result) Recall() float64 {
	if len(r.Outcomes) == 0 {
		return 1
	}
	hit := 0
	for _, o := range r.Outcomes {
		if o.Detected {
			hit++
		}
	}
	return float64(hit) / float64(len(r.Outcomes))
}

// Precision returns the fraction of findings attributable to a fault.
func (r *Result) Precision() float64 {
	if r.TotalFindings == 0 {
		return 1
	}
	return float64(r.TotalFindings-r.FalsePositives) / float64(r.TotalFindings)
}

// Run builds a fresh cluster with Spec.Faults disjoint regions, plants
// one fault per region, checks once, scores, repairs, and verifies.
func Run(spec Spec) (*Result, error) {
	if spec.Faults < 1 {
		return nil, fmt.Errorf("campaign: need at least one fault")
	}
	if spec.FilesPerRegion < 4 {
		spec.FilesPerRegion = 4
	}
	scenarios := spec.Scenarios
	if len(scenarios) == 0 {
		for s := inject.Scenario(0); s < inject.NumScenarios; s++ {
			scenarios = append(scenarios, s)
		}
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 8, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		return nil, err
	}
	// Disjoint regions: /region<i>/... so no fault's blast radius
	// (parent dir, files, objects) overlaps another's.
	regions := make([]string, spec.Faults)
	regionFIDs := make([]map[lustre.FID]bool, spec.Faults)
	for i := range regions {
		regions[i] = fmt.Sprintf("/region%02d", i)
		if err := c.MkdirAll(regions[i]); err != nil {
			return nil, err
		}
		for f := 0; f < spec.FilesPerRegion; f++ {
			p := fmt.Sprintf("%s/f%02d", regions[i], f)
			if _, err := c.Create(p, 3*64<<10); err != nil {
				return nil, err
			}
		}
	}
	// Record each region's FID set (dir + files + objects) while the
	// metadata is still pristine.
	for i, region := range regions {
		set := make(map[lustre.FID]bool)
		dirEnt, err := c.Stat(region)
		if err != nil {
			return nil, err
		}
		set[dirEnt.FID] = true
		ents, err := c.ReadDir(region)
		if err != nil {
			return nil, err
		}
		for _, de := range ents {
			fileEnt, err := c.Stat(region + "/" + de.Name)
			if err != nil {
				return nil, err
			}
			set[fileEnt.FID] = true
			if raw, ok, _ := c.MDT.Img.GetXattr(fileEnt.Ino, lustre.XattrLOV); ok {
				if layout, err := lustre.DecodeLOVEA(raw); err == nil {
					for _, s := range layout.Stripes {
						set[s.ObjectFID] = true
					}
				}
			}
		}
		regionFIDs[i] = set
	}

	// Plant one fault per region.
	res := &Result{}
	for i, region := range regions {
		s := scenarios[rng.Intn(len(scenarios))]
		target := fmt.Sprintf("%s/f%02d", region, rng.Intn(spec.FilesPerRegion))
		inj, err := inject.Inject(c, s, target)
		if err != nil {
			return nil, fmt.Errorf("campaign: inject %v in %s: %w", s, region, err)
		}
		// Injection can mint new FIDs (wrong identities, impostors);
		// fold them into the region set.
		regionFIDs[i][inj.VictimFID] = true
		if !inj.NewFID.IsZero() {
			regionFIDs[i][inj.NewFID] = true
		}
		res.Outcomes = append(res.Outcomes, FaultOutcome{Injection: inj, Region: region})
	}

	// One checking pass over everything.
	images := checker.ClusterImages(c)
	chk, err := checker.Run(images, spec.Checker)
	if err != nil {
		return nil, err
	}
	res.TotalFindings = len(chk.Findings)
	for _, f := range chk.Findings {
		attributed := false
		for i := range regions {
			if regionFIDs[i][f.FID] || findingTouches(f, regionFIDs[i]) {
				res.Outcomes[i].Detected = true
				attributed = true
			}
		}
		if !attributed && f.Kind != checker.ParseDamage {
			res.FalsePositives++
		}
	}

	// One repair pass, then verify.
	eng := repair.NewEngine(images, chk)
	eng.Apply(chk.Findings)
	verify, err := checker.Run(images, spec.Checker)
	if err != nil {
		return nil, err
	}
	res.ResidualFindings = len(verify.Findings)
	res.RepairedClean = verify.Stats.UnpairedEdges == 0 && len(verify.Findings) == 0
	return res, nil
}

// findingTouches reports whether any repair of the finding references a
// region FID (the finding's own FID may be a minted one, e.g. a fresh
// lost+found identity).
func findingTouches(f checker.Finding, region map[lustre.FID]bool) bool {
	for _, r := range f.Repairs {
		if region[r.TargetFID] || region[r.SourceFID] || region[r.NewID] {
			return true
		}
	}
	return false
}
