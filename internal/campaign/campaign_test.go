package campaign

import (
	"testing"

	"faultyrank/internal/inject"
)

func TestSingleFaultCampaign(t *testing.T) {
	spec := DefaultSpec(1)
	spec.Faults = 1
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recall() != 1 {
		t.Errorf("recall = %.2f: %+v", res.Recall(), res.Outcomes)
	}
	if !res.RepairedClean {
		t.Errorf("repair left %d residual findings", res.ResidualFindings)
	}
}

// TestMultiFaultCampaigns is the concurrent-fault extension: several
// faults of mixed scenarios planted at once must all be detected by a
// single pass, with high precision, and one repair pass must restore
// consistency.
func TestMultiFaultCampaigns(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		spec := DefaultSpec(seed)
		spec.Faults = 4
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := res.Recall(); got != 1 {
			for _, o := range res.Outcomes {
				if !o.Detected {
					t.Errorf("seed %d: missed %v in %s", seed, o.Injection.Scenario, o.Region)
				}
			}
			t.Fatalf("seed %d: recall %.2f", seed, got)
		}
		if p := res.Precision(); p < 0.99 {
			t.Errorf("seed %d: precision %.2f (%d false positives of %d findings)",
				seed, p, res.FalsePositives, res.TotalFindings)
		}
		if !res.RepairedClean {
			t.Errorf("seed %d: %d residual findings after repair", seed, res.ResidualFindings)
		}
	}
}

// TestScenarioRestriction: campaigns honour the allowed-scenario list.
func TestScenarioRestriction(t *testing.T) {
	spec := DefaultSpec(9)
	spec.Faults = 3
	spec.Scenarios = []inject.Scenario{inject.MismatchFilterFID}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Outcomes {
		if o.Injection.Scenario != inject.MismatchFilterFID {
			t.Errorf("unexpected scenario %v", o.Injection.Scenario)
		}
	}
	if res.Recall() != 1 || !res.RepairedClean {
		t.Errorf("restricted campaign: recall=%.2f clean=%v", res.Recall(), res.RepairedClean)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := Run(Spec{Faults: 0}); err == nil {
		t.Fatal("zero faults accepted")
	}
}
