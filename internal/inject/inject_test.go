package inject

import (
	"fmt"
	"testing"

	"faultyrank/internal/core"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
	"faultyrank/internal/scanner"
)

func testCluster(t *testing.T) *lustre.Cluster {
	t.Helper()
	c, err := lustre.NewCluster(lustre.Config{
		NumOSTs: 4, StripeSize: 64 << 10, StripeCount: -1,
		Geometry: ldiskfs.CompactGeometry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.MkdirAll("/d")
	for i := 0; i < 4; i++ {
		if _, err := c.Create(fmt.Sprintf("/d/f%d", i), 3*64<<10); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestScenarioMetadata(t *testing.T) {
	categories := map[string]int{}
	for s := Scenario(0); s < NumScenarios; s++ {
		if s.String() == "" || s.Category() == "" {
			t.Errorf("scenario %d lacks names", s)
		}
		categories[s.Category()]++
	}
	// Two scenarios per Table I category.
	if len(categories) != 4 {
		t.Fatalf("categories: %v", categories)
	}
	for cat, n := range categories {
		if n != 2 {
			t.Errorf("category %q has %d scenarios, want 2", cat, n)
		}
	}
	if Scenario(200).String() == "" {
		t.Error("unknown scenario has empty name")
	}
}

func TestInjectUnknownScenario(t *testing.T) {
	c := testCluster(t)
	if _, err := Inject(c, Scenario(99), "/d/f0"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestInjectValidatesTarget(t *testing.T) {
	c := testCluster(t)
	if _, err := Inject(c, DanglingObjectID, "/nope"); err == nil {
		t.Error("missing target accepted")
	}
	if _, err := Inject(c, DanglingObjectID, "/d"); err == nil {
		t.Error("directory target accepted for layout scenario")
	}
	// UnrefLOVEADropped needs >= 2 stripes.
	if _, err := c.Create("/d/tiny", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := Inject(c, UnrefLOVEADropped, "/d/tiny"); err == nil {
		t.Error("single-stripe target accepted for entry-drop scenario")
	}
}

// TestEachScenarioBreaksPairing: every injection must actually make the
// scanned metadata graph inconsistent (unpaired edges, duplicate claims
// or a lost object), and the ground truth must be well-formed.
func TestEachScenarioBreaksPairing(t *testing.T) {
	for s := Scenario(0); s < NumScenarios; s++ {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			c := testCluster(t)
			inj, err := Inject(c, s, "/d/f2")
			if err != nil {
				t.Fatal(err)
			}
			if inj.VictimFID.IsZero() {
				t.Error("no victim FID recorded")
			}
			if inj.Description == "" {
				t.Error("no description")
			}
			if inj.Field != core.FieldID && inj.Field != core.FieldProperty {
				t.Errorf("bad field %v", inj.Field)
			}
			// Scan everything and count broken invariants.
			var edges int
			fidSeen := make(map[lustre.FID]int)
			pairs := make(map[[2]lustre.FID]int)
			for _, img := range append([]*ldiskfs.Image{c.MDT.Img}, ostImages(c)...) {
				p, err := scanner.ScanImage(img, 0)
				if err != nil {
					t.Fatal(err)
				}
				for _, o := range p.Objects {
					fidSeen[o.FID]++
				}
				for _, e := range p.Edges {
					pairs[[2]lustre.FID{e.Src, e.Dst}]++
					edges++
				}
			}
			broken := 0
			for pair := range pairs {
				if pairs[[2]lustre.FID{pair[1], pair[0]}] == 0 {
					broken++
				}
			}
			dup := 0
			for _, n := range fidSeen {
				if n > 1 {
					dup++
				}
			}
			if broken == 0 && dup == 0 {
				t.Errorf("injection left the graph fully paired (%d edges)", edges)
			}
		})
	}
}

// TestInjectionsAreLocal: an injection must not damage unrelated files.
func TestInjectionsAreLocal(t *testing.T) {
	for s := Scenario(0); s < NumScenarios; s++ {
		c := testCluster(t)
		before, err := c.Stat("/d/f0")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Inject(c, s, "/d/f2"); err != nil {
			t.Fatal(err)
		}
		if s == DanglingDirent {
			continue // the shared parent directory is the victim there
		}
		after, err := c.Stat("/d/f0")
		if err != nil || after.FID != before.FID {
			t.Errorf("%v: bystander file disturbed (%v, %v)", s, after, err)
		}
	}
}

// TestDetachedCycleInjection: the extension scenario keeps every
// relation paired (detection lives in the checker's reachability pass).
func TestDetachedCycleInjection(t *testing.T) {
	c := testCluster(t)
	inj, err := Inject(c, DetachedCycle, "/d/f1")
	if err != nil {
		t.Fatal(err)
	}
	if inj.VictimFID.IsZero() || inj.PeerFID.IsZero() {
		t.Fatalf("ground truth incomplete: %+v", inj)
	}
	pairs := make(map[[2]lustre.FID]int)
	for _, img := range append([]*ldiskfs.Image{c.MDT.Img}, ostImages(c)...) {
		p, err := scanner.ScanImage(img, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range p.Edges {
			pairs[[2]lustre.FID{e.Src, e.Dst}]++
		}
	}
	for pair := range pairs {
		if pairs[[2]lustre.FID{pair[1], pair[0]}] == 0 {
			t.Fatalf("cycle injection broke pairing: %v -> %v", pair[0], pair[1])
		}
	}
	// Root-level targets are rejected (no parent to sever).
	if _, err := c.Create("/toplevel", 64<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := Inject(c, DetachedCycle, "/toplevel"); err == nil {
		t.Error("root-level target accepted")
	}
}

func TestBogusFIDsAreUnique(t *testing.T) {
	a, b := bogusFID(), bogusFID()
	if a == b || a.Seq != bogusSeq {
		t.Fatalf("bogus fids: %v %v", a, b)
	}
}

func TestPathHelpers(t *testing.T) {
	if parentOf("/a/b/c") != "/a/b" || parentOf("/a") != "/" {
		t.Error("parentOf wrong")
	}
	if baseOf("/a/b/c") != "c" || baseOf("x") != "x" {
		t.Error("baseOf wrong")
	}
}

func ostImages(c *lustre.Cluster) []*ldiskfs.Image {
	var out []*ldiskfs.Image
	for _, o := range c.OSTs {
		out = append(out, o.Img)
	}
	return out
}
