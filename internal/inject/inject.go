// Package inject introduces the eight inconsistency scenarios of paper
// Fig. 7 — two root-cause variants of each Table I category (Dangling
// Reference, Unreferenced Object, Double Reference, Mismatch) — by
// mutating server images the way the paper edits the extended attributes
// of ldiskfs inodes. Every injection returns the ground truth (which
// object's which field was corrupted), so the checkers' verdicts can be
// scored automatically.
package inject

import (
	"fmt"

	"faultyrank/internal/core"
	"faultyrank/internal/ldiskfs"
	"faultyrank/internal/lustre"
)

// Scenario enumerates the Fig. 7 fault cases.
type Scenario uint8

const (
	// DanglingDirent (Dangling Reference, a's property wrong): a
	// directory's entry blocks are destroyed, so its DIRENT property no
	// longer points at its children.
	DanglingDirent Scenario = iota
	// DanglingObjectID (Dangling Reference, b's id wrong): an OST
	// object's LMA is overwritten, so the owning file's LOVEA dangles.
	DanglingObjectID
	// UnrefLOVEADropped (Unreferenced Object, neighbour property wrong):
	// one stripe entry is removed from a file's LOVEA; the object still
	// exists and points back but nothing references it.
	UnrefLOVEADropped
	// UnrefStaleObject (Unreferenced Object, stale identity): the owning
	// file vanishes from the MDT (crash during unlink) leaving its
	// objects pointing at a FID that no longer exists.
	UnrefStaleObject
	// DoubleRefLOVEA (Double Reference, a's property duplicated): a
	// second file's LOVEA is rewritten to claim another file's object.
	DoubleRefLOVEA
	// DoubleRefLMA (Double Reference, b's id duplicated): a second OST
	// object is given the same LMA FID as an existing object.
	DoubleRefLMA
	// MismatchFilterFID (Mismatch, b's property wrong): an object's
	// filter-fid is rewritten so it no longer points back at its owner.
	MismatchFilterFID
	// MismatchFileID (Mismatch, a's id wrong): an MDT file's LMA is
	// overwritten; everything pointing at the file misses it.
	MismatchFileID

	// NumScenarios is the count of the paper's Fig. 7 scenarios.
	NumScenarios = 8

	// DetachedCycle is an *extension* scenario beyond the paper's eight:
	// a directory subtree is severed from the root and its top two
	// directories are rewritten to claim each other coherently — every
	// relation pairs, which the paper declares undetectable (§VI). The
	// checker's reachability pass exists to catch exactly this.
	DetachedCycle Scenario = NumScenarios
)

// String names the scenario as in Fig. 7's grouping.
func (s Scenario) String() string {
	switch s {
	case DanglingDirent:
		return "dangling/dirent-destroyed"
	case DanglingObjectID:
		return "dangling/object-id-corrupt"
	case UnrefLOVEADropped:
		return "unreferenced/lovea-entry-dropped"
	case UnrefStaleObject:
		return "unreferenced/stale-object"
	case DoubleRefLOVEA:
		return "double-ref/lovea-duplicated"
	case DoubleRefLMA:
		return "double-ref/lma-duplicated"
	case MismatchFilterFID:
		return "mismatch/filter-fid-corrupt"
	case MismatchFileID:
		return "mismatch/file-id-corrupt"
	case DetachedCycle:
		return "extension/detached-cycle"
	default:
		return fmt.Sprintf("scenario(%d)", uint8(s))
	}
}

// Category returns the Table I category of the scenario.
func (s Scenario) Category() string {
	switch s {
	case DanglingDirent, DanglingObjectID:
		return "Dangling Reference"
	case UnrefLOVEADropped, UnrefStaleObject:
		return "Unreferenced Object"
	case DoubleRefLOVEA, DoubleRefLMA:
		return "Double Reference"
	case DetachedCycle:
		return "Coherent Corruption (extension)"
	default:
		return "Mismatch"
	}
}

// Injection records what was corrupted: the ground truth against which a
// checker's verdict is scored.
type Injection struct {
	Scenario    Scenario
	Description string

	// VictimFID identifies the corrupted object by the FID under which
	// the *healthy* metadata knew it (for id corruptions: the old FID,
	// which now dangles).
	VictimFID lustre.FID
	// NewFID is the wrong identity now stored, for id corruptions.
	NewFID lustre.FID
	// Field is the ground-truth faulty field.
	Field core.Field
	// PeerFID is the healthy counterpart of the broken relation (the
	// object whose metadata can repair the victim), when applicable.
	PeerFID lustre.FID
}

// bogusSeq marks FIDs fabricated by the injector.
const bogusSeq uint64 = 0xFA017

var bogusCounter uint32

func bogusFID() lustre.FID {
	bogusCounter++
	return lustre.FID{Seq: bogusSeq, Oid: bogusCounter}
}

// Inject applies scenario s to the cluster, corrupting metadata related
// to the file at filePath (a regular file with at least two stripe
// objects for the layout scenarios; its parent directory for namespace
// scenarios). The cluster's in-memory bookkeeping becomes stale after
// injection by design — only the on-image metadata matters to checkers.
func Inject(c *lustre.Cluster, s Scenario, filePath string) (*Injection, error) {
	switch s {
	case DanglingDirent:
		return injectDanglingDirent(c, filePath)
	case DanglingObjectID:
		return injectDanglingObjectID(c, filePath)
	case UnrefLOVEADropped:
		return injectUnrefLOVEADropped(c, filePath)
	case UnrefStaleObject:
		return injectUnrefStaleObject(c, filePath)
	case DoubleRefLOVEA:
		return injectDoubleRefLOVEA(c, filePath)
	case DoubleRefLMA:
		return injectDoubleRefLMA(c, filePath)
	case MismatchFilterFID:
		return injectMismatchFilterFID(c, filePath)
	case MismatchFileID:
		return injectMismatchFileID(c, filePath)
	case DetachedCycle:
		return injectDetachedCycle(c, filePath)
	default:
		return nil, fmt.Errorf("inject: unknown scenario %d", s)
	}
}

// injectDetachedCycle severs filePath's parent directory A from the
// tree and rewires A and a fresh child directory B into a coherent
// parent cycle: A.LinkEA -> B, B.DIRENT -> A. Every relation pairs; only
// reachability analysis can see the island.
func injectDetachedCycle(c *lustre.Cluster, p string) (*Injection, error) {
	if _, err := c.Stat(p); err != nil {
		return nil, err
	}
	aPath := parentOf(p)
	if aPath == "/" {
		return nil, fmt.Errorf("inject: %s must live below a non-root directory", p)
	}
	a, err := c.Stat(aPath)
	if err != nil {
		return nil, err
	}
	parent, err := c.Stat(parentOf(aPath))
	if err != nil {
		return nil, err
	}
	bPath := aPath + "/cycle-sub"
	if err := c.Mkdir(bPath); err != nil {
		return nil, err
	}
	b, err := c.Stat(bPath)
	if err != nil {
		return nil, err
	}
	pimg, err := c.EntryImage(parent)
	if err != nil {
		return nil, err
	}
	aimg, err := c.EntryImage(a)
	if err != nil {
		return nil, err
	}
	bimg, err := c.EntryImage(b)
	if err != nil {
		return nil, err
	}
	// Sever A from its parent.
	if err := pimg.RemoveDirent(parent.Ino, baseOf(aPath)); err != nil {
		return nil, err
	}
	// A claims B as its parent...
	link, err := lustre.EncodeLinkEA([]lustre.LinkEntry{{Parent: b.FID, Name: "looped"}})
	if err != nil {
		return nil, err
	}
	if err := aimg.SetXattr(a.Ino, lustre.XattrLink, link); err != nil {
		return nil, err
	}
	// ...and B answers with a DIRENT for A.
	if err := bimg.AddDirent(b.Ino, ldiskfs.Dirent{
		Ino: a.Ino, Type: ldiskfs.TypeDir, Tag: a.FID.Bytes(), Name: "looped",
	}); err != nil {
		return nil, err
	}
	return &Injection{
		Scenario: DetachedCycle,
		Description: fmt.Sprintf("severed %s and rewired it into a coherent parent cycle with %s",
			aPath, bPath),
		VictimFID: a.FID,
		Field:     core.FieldProperty,
		PeerFID:   b.FID,
	}, nil
}

// fileAndLayout resolves a file path to its entry and decoded layout.
func fileAndLayout(c *lustre.Cluster, p string) (lustre.Entry, lustre.Layout, error) {
	ent, err := c.Stat(p)
	if err != nil {
		return ent, lustre.Layout{}, err
	}
	if ent.Type != ldiskfs.TypeFile {
		return ent, lustre.Layout{}, fmt.Errorf("inject: %s is not a regular file", p)
	}
	img, err := c.EntryImage(ent)
	if err != nil {
		return ent, lustre.Layout{}, err
	}
	raw, ok, err := img.GetXattr(ent.Ino, lustre.XattrLOV)
	if err != nil || !ok {
		return ent, lustre.Layout{}, fmt.Errorf("inject: %s has no LOVEA (%v)", p, err)
	}
	layout, err := lustre.DecodeLOVEA(raw)
	return ent, layout, err
}

// objectLoc resolves a stripe object to its image and inode.
func objectLoc(c *lustre.Cluster, s lustre.StripeEntry) (*ldiskfs.Image, ldiskfs.Ino, error) {
	loc, ok := c.Lookup(s.ObjectFID)
	if !ok || loc.OnMDT() {
		return nil, 0, fmt.Errorf("inject: object %v not found", s.ObjectFID)
	}
	img, err := c.ImageFor(loc)
	return img, loc.Ino, err
}

func injectDanglingDirent(c *lustre.Cluster, p string) (*Injection, error) {
	ent, err := c.Stat(p)
	if err != nil {
		return nil, err
	}
	parentPath := parentOf(p)
	dir, err := c.Stat(parentPath)
	if err != nil {
		return nil, err
	}
	// The paper's case destroys the directory's pointing metadata
	// wholesale ("it does not point to any other vertex"): the DIRENT
	// blocks and its LinkEA.
	dimg, err := c.EntryImage(dir)
	if err != nil {
		return nil, err
	}
	ranges, err := dimg.DirentBlockRanges(dir.Ino)
	if err != nil {
		return nil, err
	}
	for _, r := range ranges {
		zero := make([]byte, r[1]-r[0])
		if err := dimg.CorruptBytes(r[0], zero); err != nil {
			return nil, err
		}
	}
	if err := dimg.RemoveXattr(dir.Ino, lustre.XattrLink); err != nil {
		return nil, err
	}
	_ = ent
	return &Injection{
		Scenario:    DanglingDirent,
		Description: fmt.Sprintf("destroyed DIRENT blocks and LinkEA of %s", parentPath),
		VictimFID:   dir.FID,
		Field:       core.FieldProperty,
	}, nil
}

func injectDanglingObjectID(c *lustre.Cluster, p string) (*Injection, error) {
	ent, layout, err := fileAndLayout(c, p)
	if err != nil {
		return nil, err
	}
	stripe := layout.Stripes[0]
	img, ino, err := objectLoc(c, stripe)
	if err != nil {
		return nil, err
	}
	wrong := bogusFID()
	if err := img.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(wrong)); err != nil {
		return nil, err
	}
	return &Injection{
		Scenario:    DanglingObjectID,
		Description: fmt.Sprintf("rewrote LMA of stripe 0 of %s: %v -> %v", p, stripe.ObjectFID, wrong),
		VictimFID:   stripe.ObjectFID,
		NewFID:      wrong,
		Field:       core.FieldID,
		PeerFID:     ent.FID,
	}, nil
}

func injectUnrefLOVEADropped(c *lustre.Cluster, p string) (*Injection, error) {
	ent, layout, err := fileAndLayout(c, p)
	if err != nil {
		return nil, err
	}
	if len(layout.Stripes) < 2 {
		return nil, fmt.Errorf("inject: %s needs >=2 stripes", p)
	}
	victim := layout.Stripes[len(layout.Stripes)-1]
	layout.Stripes = layout.Stripes[:len(layout.Stripes)-1]
	enc, err := lustre.EncodeLOVEA(layout)
	if err != nil {
		return nil, err
	}
	img, err := c.EntryImage(ent)
	if err != nil {
		return nil, err
	}
	if err := img.SetXattr(ent.Ino, lustre.XattrLOV, enc); err != nil {
		return nil, err
	}
	return &Injection{
		Scenario:    UnrefLOVEADropped,
		Description: fmt.Sprintf("dropped stripe %v from LOVEA of %s", victim.ObjectFID, p),
		VictimFID:   ent.FID,
		Field:       core.FieldProperty,
		PeerFID:     victim.ObjectFID,
	}, nil
}

func injectUnrefStaleObject(c *lustre.Cluster, p string) (*Injection, error) {
	ent, layout, err := fileAndLayout(c, p)
	if err != nil {
		return nil, err
	}
	// Simulate a crash mid-unlink: the MDT inode and its dirent vanish,
	// the OST objects stay behind pointing at a now-phantom file FID.
	parentPath := parentOf(p)
	dir, err := c.Stat(parentPath)
	if err != nil {
		return nil, err
	}
	dimg, err := c.EntryImage(dir)
	if err != nil {
		return nil, err
	}
	if err := dimg.RemoveDirent(dir.Ino, baseOf(p)); err != nil {
		return nil, err
	}
	fimg, err := c.EntryImage(ent)
	if err != nil {
		return nil, err
	}
	if err := fimg.FreeInode(ent.Ino); err != nil {
		return nil, err
	}
	return &Injection{
		Scenario: UnrefStaleObject,
		Description: fmt.Sprintf("removed MDT inode of %s, stranding %d objects",
			p, len(layout.Stripes)),
		VictimFID: ent.FID, // the phantom owner
		Field:     core.FieldID,
		PeerFID:   layout.Stripes[0].ObjectFID,
	}, nil
}

func injectDoubleRefLOVEA(c *lustre.Cluster, p string) (*Injection, error) {
	ent, layout, err := fileAndLayout(c, p)
	if err != nil {
		return nil, err
	}
	// Create an impostor file whose LOVEA claims p's first object.
	impostorPath := p + ".impostor"
	imp, err := c.Create(impostorPath, 64<<10)
	if err != nil {
		return nil, err
	}
	iimg, err := c.EntryImage(imp)
	if err != nil {
		return nil, err
	}
	raw, _, err := iimg.GetXattr(imp.Ino, lustre.XattrLOV)
	if err != nil {
		return nil, err
	}
	impLayout, err := lustre.DecodeLOVEA(raw)
	if err != nil {
		return nil, err
	}
	stolen := layout.Stripes[0]
	impLayout.Stripes[0] = stolen
	enc, err := lustre.EncodeLOVEA(impLayout)
	if err != nil {
		return nil, err
	}
	if err := iimg.SetXattr(imp.Ino, lustre.XattrLOV, enc); err != nil {
		return nil, err
	}
	_ = ent
	return &Injection{
		Scenario: DoubleRefLOVEA,
		Description: fmt.Sprintf("%s's LOVEA duplicated to claim %v (owned by %s)",
			impostorPath, stolen.ObjectFID, p),
		VictimFID: imp.FID,
		Field:     core.FieldProperty,
		PeerFID:   stolen.ObjectFID,
	}, nil
}

func injectDoubleRefLMA(c *lustre.Cluster, p string) (*Injection, error) {
	ent, layout, err := fileAndLayout(c, p)
	if err != nil {
		return nil, err
	}
	victim := layout.Stripes[0]
	// A second object on a different OST claims the same FID but points
	// back at nothing credible (fresh bogus owner).
	ostIdx := (int(victim.OSTIndex) + 1) % len(c.OSTs)
	img := c.OSTs[ostIdx].Img
	ino, err := img.AllocInode(ldiskfs.TypeObject)
	if err != nil {
		return nil, err
	}
	if err := img.SetXattr(ino, lustre.XattrLMA, lustre.EncodeLMA(victim.ObjectFID)); err != nil {
		return nil, err
	}
	ff := lustre.EncodeFilterFID(lustre.FilterFID{ParentFID: bogusFID(), StripeIndex: 0})
	if err := img.SetXattr(ino, lustre.XattrFilterFID, ff); err != nil {
		return nil, err
	}
	return &Injection{
		Scenario: DoubleRefLMA,
		Description: fmt.Sprintf("second inode on ost%d claims LMA %v (object of %s)",
			ostIdx, victim.ObjectFID, p),
		VictimFID: victim.ObjectFID,
		Field:     core.FieldID,
		PeerFID:   ent.FID,
	}, nil
}

func injectMismatchFilterFID(c *lustre.Cluster, p string) (*Injection, error) {
	ent, layout, err := fileAndLayout(c, p)
	if err != nil {
		return nil, err
	}
	stripe := layout.Stripes[0]
	img, ino, err := objectLoc(c, stripe)
	if err != nil {
		return nil, err
	}
	wrongOwner := bogusFID()
	ff := lustre.EncodeFilterFID(lustre.FilterFID{ParentFID: wrongOwner, StripeIndex: 0})
	if err := img.SetXattr(ino, lustre.XattrFilterFID, ff); err != nil {
		return nil, err
	}
	return &Injection{
		Scenario: MismatchFilterFID,
		Description: fmt.Sprintf("filter-fid of %v rewritten: %v -> %v",
			stripe.ObjectFID, ent.FID, wrongOwner),
		VictimFID: stripe.ObjectFID,
		Field:     core.FieldProperty,
		PeerFID:   ent.FID,
	}, nil
}

func injectMismatchFileID(c *lustre.Cluster, p string) (*Injection, error) {
	ent, _, err := fileAndLayout(c, p)
	if err != nil {
		return nil, err
	}
	wrong := bogusFID()
	img, err := c.EntryImage(ent)
	if err != nil {
		return nil, err
	}
	if err := img.SetXattr(ent.Ino, lustre.XattrLMA, lustre.EncodeLMA(wrong)); err != nil {
		return nil, err
	}
	return &Injection{
		Scenario:    MismatchFileID,
		Description: fmt.Sprintf("LMA of %s rewritten: %v -> %v", p, ent.FID, wrong),
		VictimFID:   ent.FID,
		NewFID:      wrong,
		Field:       core.FieldID,
		PeerFID:     ent.FID, // the dirent/linkEA peers still name the old FID
	}, nil
}

func parentOf(p string) string {
	for i := len(p) - 1; i > 0; i-- {
		if p[i] == '/' {
			return p[:i]
		}
	}
	return "/"
}

func baseOf(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}
