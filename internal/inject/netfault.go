package inject

import (
	"context"
	"errors"
	"fmt"

	"faultyrank/internal/scanner"
	"faultyrank/internal/wire"
)

// The image-level scenarios above corrupt what a scanner *reads*; the
// network scenarios here corrupt how a scanner *ships* — the partial
// failures a real 1 MDS + 8 OSS deployment throws at the collection
// path (pFSCK and the B3 crash-consistency work both make the case that
// a checker is only trustworthy if it survives these). Each fault wraps
// one server's chunk stream and fires after a configurable number of
// clean chunks, so the checker's deadline/degraded machinery can be
// exercised deterministically.

// NetScenario enumerates the injected network fault kinds.
type NetScenario uint8

const (
	// NetCrashBeforeConnect: the scanner process dies before dialing the
	// collector — its stream never arrives at all.
	NetCrashBeforeConnect NetScenario = iota
	// NetCrashMidStream: the scanner dies after shipping some chunks —
	// the connection drops without a final chunk.
	NetCrashMidStream
	// NetStallMidStream: the connection freezes (half-dead peer, lost
	// packets): the sender blocks without closing, and only a deadline
	// can unwedge either side.
	NetStallMidStream
	// NetCorruptFrame: a frame arrives with a mangled payload — the
	// collector's decoder must reject it and fail that stream.
	NetCorruptFrame
)

// String names the scenario like the image scenarios name theirs.
func (s NetScenario) String() string {
	switch s {
	case NetCrashBeforeConnect:
		return "net/crash-before-connect"
	case NetCrashMidStream:
		return "net/crash-mid-stream"
	case NetStallMidStream:
		return "net/stall-mid-stream"
	case NetCorruptFrame:
		return "net/corrupt-frame"
	default:
		return fmt.Sprintf("net-scenario(%d)", uint8(s))
	}
}

// ErrScannerCrash marks a simulated scanner process death.
var ErrScannerCrash = errors.New("inject: scanner crashed")

// ErrCorruptFrameSent marks the sender side of a corrupt-frame
// injection (the interesting verdict is the collector's).
var ErrCorruptFrameSent = errors.New("inject: corrupt frame sent")

// NetFault is one injected network fault on a named server's stream.
type NetFault struct {
	Scenario NetScenario
	// AfterChunks is how many chunks flow cleanly before the fault
	// fires (ignored by NetCrashBeforeConnect).
	AfterChunks int
}

// PreConnect reports whether the fault fires before the stream dials —
// the caller must then skip the dial entirely and treat the scanner as
// dead (ErrScannerCrash).
func (f *NetFault) PreConnect() bool {
	return f.Scenario == NetCrashBeforeConnect
}

// WrapStream interposes the fault on a dialed chunk stream. The
// returned sink passes chunks through untouched until AfterChunks have
// flowed, then performs the scenario's failure. ctx is the scan
// deadline: the stall scenario blocks until it expires, exactly like a
// frozen connection.
func (f *NetFault) WrapStream(ctx context.Context, cs *wire.ChunkStream) scanner.Sink {
	return &faultStream{ctx: ctx, cs: cs, fault: f}
}

type faultStream struct {
	ctx   context.Context
	cs    *wire.ChunkStream
	fault *NetFault
	sent  int
}

func (s *faultStream) Emit(c *scanner.Chunk) error {
	if s.sent < s.fault.AfterChunks {
		s.sent++
		return s.cs.Emit(c)
	}
	switch s.fault.Scenario {
	case NetCrashMidStream:
		// Process death: the connection drops with no final chunk and
		// no goodbye.
		_ = s.cs.Close()
		return fmt.Errorf("%w after %d chunks", ErrScannerCrash, s.sent)
	case NetStallMidStream:
		// Frozen peer: hold the connection open, send nothing, and only
		// the deadline releases the scanner.
		<-s.ctx.Done()
		return s.ctx.Err()
	case NetCorruptFrame:
		// Set an unknown flag bit: a mutation the decoder is guaranteed
		// to reject (a flipped data byte might decode to a valid but
		// different chunk and slip through silently).
		payload := wire.EncodeChunk(c)
		flagsOff := 2 + len(c.ServerLabel) + 4
		payload[flagsOff] |= 0x80
		if err := s.cs.EmitRaw(payload, false); err != nil {
			return err
		}
		return ErrCorruptFrameSent
	default:
		return fmt.Errorf("inject: scenario %v cannot fire on a live stream", s.fault.Scenario)
	}
}
