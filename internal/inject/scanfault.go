package inject

import (
	"errors"
	"sync"
)

// ErrScanInjected marks an inode re-parse failure introduced by a
// ScanFault — the online analogue of ErrScannerCrash on the wire path.
var ErrScanInjected = errors.New("injected scan fault")

// ScanFault injects deterministic failures into an online tracker's
// inode re-parse seam (online.Tracker.InjectScanFault) — the test and
// soak hook for the tracker's all-or-nothing feed consumption: a failed
// scan must leave the failing server's dirty feed intact so the next
// round retries the same work, while other servers' commits stand.
//
// The fault is deterministic (every FailEvery-th scan attempt fails),
// so soak runs reproduce, and it is safe for concurrent use.
type ScanFault struct {
	// FailEvery fails every Nth scan attempt (1-based); <= 0 disables.
	FailEvery int
	// MaxFailures bounds the total failures (0 = unbounded), so a
	// harness can inject a burst and then let the tracker heal.
	MaxFailures int

	mu       sync.Mutex
	scans    int
	failures int
}

// Tick records one scan attempt and reports whether it should fail.
func (f *ScanFault) Tick() bool {
	if f == nil || f.FailEvery <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scans++
	if f.MaxFailures > 0 && f.failures >= f.MaxFailures {
		return false
	}
	if f.scans%f.FailEvery == 0 {
		f.failures++
		return true
	}
	return false
}

// Failures reports how many scans have been failed so far.
func (f *ScanFault) Failures() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failures
}
