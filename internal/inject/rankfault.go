package inject

import (
	"errors"
	"fmt"
	"io"

	"faultyrank/internal/core"
)

// The rank-stage counterpart of the network faults above: where NetFault
// kills a scanner's chunk stream, RankFault kills one rank worker's
// superstep link partway through the BSP exchange. The coordinator's
// barrier then has a hole — exactly the failure a distributed checker
// must degrade around rather than hang on.

// ErrRankWorkerCrash marks a simulated rank-worker death mid-superstep.
var ErrRankWorkerCrash = errors.New("inject: rank worker crashed")

// ErrRankDialFault marks a simulated dial failure: the worker died (or
// was mis-pointed) before it ever reached the coordinator's exchange.
var ErrRankDialFault = errors.New("inject: rank worker dial failed")

// RankFault is one injected rank-worker crash. The wrapped link passes
// frames through until CrashAfterUps upstream frames have flowed, then
// closes the underlying link — a TCP connection drops, an in-process
// pair tears down — and reports the crash, so the coordinator's next
// wait on that partition fails with a named core.PartError within its
// deadline instead of stalling the superstep barrier.
type RankFault struct {
	// CrashAfterUps is how many upstream frames (the TCP Hello excluded)
	// flow cleanly before the worker dies. 0 crashes on the first Up of
	// the first superstep; 1 lets UpA through and dies mid-iteration.
	CrashAfterUps int

	// FailDial, on the checker's TCP rank path, fails the worker's dial
	// outright (ErrRankDialFault) instead of crashing an established
	// link — the regression hook for the dropped-dial-error bug, where
	// the root cause vanished behind a generic accept error.
	FailDial bool
}

// WrapLink interposes the fault on an established superstep link.
func (f *RankFault) WrapLink(link core.Link) core.Link {
	return &faultLink{link: link, fault: f}
}

type faultLink struct {
	link  core.Link
	fault *RankFault
	sent  int
}

func (l *faultLink) Send(d *core.RankDelta) error {
	if l.sent < l.fault.CrashAfterUps {
		l.sent++
		return l.link.Send(d)
	}
	// Process death: drop the link with no goodbye so the peer sees a
	// broken connection, not a clean protocol end.
	if c, ok := l.link.(io.Closer); ok {
		_ = c.Close()
	}
	return fmt.Errorf("%w after %d frames", ErrRankWorkerCrash, l.sent)
}

func (l *faultLink) Recv() (*core.RankDelta, error) { return l.link.Recv() }
