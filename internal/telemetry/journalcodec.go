package telemetry

import (
	"fmt"
	"os"
	"sort"
	"time"
)

// FRJR v1: the versioned canonical binary codec for journal snapshots —
// the blob a scanner ships home as a MsgJournal wire trailer, and the
// on-disk format of the journal.frjr files faultyrank/frhealthd dump
// and frtrace renders. One blob holds any number of sections (one per
// journal), so per-server journals merge by concatenation.
//
// Layout (all integers little-endian):
//
//	"FRJR" | u8 version
//	u32 sectionCount
//	section × {
//	  str16 server | u64 base | u64 dropped | u32 eventCount
//	  event × { u64 t | str16 component | str16 kind
//	            | u8 attrCount | attr × { str16 k | str16 v } }
//	}
//
// Same invariants as the FRTM codec: versioned (mixed builds fail
// loudly), bounded (counts are sanity-checked against the remaining
// payload before any allocation), and canonical — sections sorted by
// server, events in non-decreasing T — enforced at decode, so a blob
// either fails to decode or re-encodes byte-identically (the
// FuzzDecodeJournal target leans on this).

// JournalCodecVersion identifies the FRJR layout. Bump on any
// incompatible change.
const JournalCodecVersion = 1

var journalMagic = [4]byte{'F', 'R', 'J', 'R'}

// journalHeaderLen is magic + version.
const journalHeaderLen = 5

// Minimum encoded sizes, the allocation bounds for hostile counts.
const (
	journalMinSection = 2 + 8 + 8 + 4 // empty server, no events
	journalMinEvent   = 8 + 2 + 2 + 1 // empty names, no attrs
	journalMinAttr    = 2 + 2         // empty key and value
)

// EncodeJournal renders the sections as one FRJR blob. Sections are
// canonicalised first — stably sorted by server (events inside a
// section are already time-sorted by construction; Snapshot guarantees
// it, and decode enforces it), so equal inputs always produce identical
// bytes.
func EncodeJournal(sections []JournalSnapshot) []byte {
	ss := append([]JournalSnapshot(nil), sections...)
	sort.SliceStable(ss, func(i, j int) bool { return ss[i].Server < ss[j].Server })

	b := append([]byte(nil), journalMagic[:]...)
	b = append(b, JournalCodecVersion)
	b = cputU32(b, uint32(len(ss)))
	for _, s := range ss {
		b = cputStr(b, s.Server)
		b = cputU64(b, uint64(s.Base))
		b = cputU64(b, uint64(s.Dropped))
		b = cputU32(b, uint32(len(s.Events)))
		for _, e := range s.Events {
			b = cputU64(b, uint64(e.T))
			b = cputStr(b, e.Component)
			b = cputStr(b, e.Kind)
			if len(e.Attrs) > 255 {
				e.Attrs = e.Attrs[:255]
			}
			b = append(b, byte(len(e.Attrs)))
			for _, a := range e.Attrs {
				b = cputStr(b, a.K)
				b = cputStr(b, a.V)
			}
		}
	}
	return b
}

// DecodeJournal parses an FRJR blob, enforcing the canonical form:
// sections in non-descending server order, events in non-decreasing T.
// Counts are bounded against the payload before allocation.
func DecodeJournal(b []byte) ([]JournalSnapshot, error) {
	d := &tdec{b: b}
	if d.need(journalHeaderLen) {
		if [4]byte(d.b[:4]) != journalMagic {
			return nil, fmt.Errorf("telemetry: bad journal magic %q", b[:4])
		}
		if v := d.b[4]; v != JournalCodecVersion {
			return nil, fmt.Errorf("telemetry: unsupported journal version %d (have %d)", v, JournalCodecVersion)
		}
		d.off = journalHeaderLen
	}

	nS := d.u32()
	if d.err == nil && uint64(nS)*journalMinSection > uint64(d.remaining()) {
		return nil, fmt.Errorf("telemetry: implausible journal section count %d", nS)
	}
	var out []JournalSnapshot
	for si := uint32(0); si < nS && d.err == nil; si++ {
		var s JournalSnapshot
		s.Server = d.str()
		s.Base = int64(d.u64())
		s.Dropped = int64(d.u64())
		if d.err == nil && si > 0 && s.Server < out[si-1].Server {
			return nil, fmt.Errorf("telemetry: journal sections not in canonical order at %q", s.Server)
		}
		nE := d.u32()
		if d.err == nil && uint64(nE)*journalMinEvent > uint64(d.remaining()) {
			return nil, fmt.Errorf("telemetry: implausible journal event count %d in %q", nE, s.Server)
		}
		if d.err != nil {
			break
		}
		if nE > 0 {
			s.Events = make([]Event, 0, nE)
		}
		for ei := uint32(0); ei < nE && d.err == nil; ei++ {
			var e Event
			e.T = time.Duration(d.u64())
			e.Component = d.str()
			e.Kind = d.str()
			if d.err == nil && ei > 0 && e.T < s.Events[ei-1].T {
				return nil, fmt.Errorf("telemetry: journal events not in time order in %q", s.Server)
			}
			if !d.need(1) {
				break
			}
			nA := int(d.b[d.off])
			d.off++
			if nA*journalMinAttr > d.remaining() {
				return nil, fmt.Errorf("telemetry: implausible attr count %d in %q", nA, s.Server)
			}
			if nA > 0 {
				e.Attrs = make([]Attr, 0, nA)
			}
			for ai := 0; ai < nA && d.err == nil; ai++ {
				e.Attrs = append(e.Attrs, Attr{K: d.str(), V: d.str()})
			}
			s.Events = append(s.Events, e)
		}
		out = append(out, s)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("telemetry: %d trailing bytes in journal", len(b)-d.off)
	}
	return out, nil
}

// WriteJournalFile atomically writes the sections as an FRJR blob
// (temp file + rename, like WriteJSON).
func WriteJournalFile(path string, sections []JournalSnapshot) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, EncodeJournal(sections), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadJournalFile reads and decodes an FRJR file.
func ReadJournalFile(path string) ([]JournalSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeJournal(b)
}
