package telemetry

import (
	"encoding/json"
	"os"
)

// ManifestSchema identifies the RunManifest JSON layout. Bump on any
// incompatible change so downstream tooling can dispatch on it.
const ManifestSchema = "faultyrank/run-manifest/v1"

// RunManifest is the machine-readable record of one run: the options
// it ran under, the phase-timing span tree, the final counter
// snapshot, and tool-specific results (coverage, findings, convergence
// …). Field types are deliberately generic — the checker, bench and
// graph tools all write the same envelope with their own payloads.
type RunManifest struct {
	Schema  string         `json:"schema"`
	Tool    string         `json:"tool"`
	Options any            `json:"options,omitempty"`
	Phases  *SpanNode      `json:"phases,omitempty"`
	Metrics Snapshot       `json:"metrics"`
	Results map[string]any `json:"results,omitempty"`
}

// NewRunManifest starts a manifest for tool with the schema stamped.
func NewRunManifest(tool string) *RunManifest {
	return &RunManifest{Schema: ManifestSchema, Tool: tool, Results: map[string]any{}}
}

// WriteJSON marshals v with indentation and writes it to path via a
// temp file + rename, so a crash mid-write never leaves a truncated
// manifest behind.
func WriteJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
