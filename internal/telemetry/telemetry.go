// Package telemetry is the run-wide observability layer: a
// dependency-free metrics core (atomic counters, gauges, fixed-bucket
// histograms, a Registry with a deterministic Snapshot), a lightweight
// span API recording a nested phase-timing tree per run, a Prometheus
// text exposition writer with an HTTP handler (plus pprof), and the
// RunManifest JSON the CLIs emit for machine-readable results.
//
// Design constraints, in order:
//
//   - Hot paths stay allocation-free: a Counter is one atomic word, a
//     Histogram observation is one atomic add plus one CAS loop on the
//     sum, and instruments are resolved from the Registry once, outside
//     the loop, never per event.
//   - Everything is nil-tolerant: methods on a nil *Counter, *Gauge,
//     *Histogram or *Registry are no-ops, so uninstrumented call sites
//     pay a single predictable branch and no plumbing is conditional.
//   - Snapshots are deterministic: instruments render sorted by name,
//     so two snapshots of equal state are byte-identical — reports and
//     manifests diff cleanly run to run.
//
// The package depends only on the standard library and is safe under
// the race detector: all mutation is atomic or mutex-guarded.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing atomic counter. The zero
// value is ready to use; methods on a nil receiver are no-ops, which is
// what makes an uninstrumented path free of conditionals.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an instantaneous atomic value that can move both ways.
// The zero value is ready; nil-receiver methods are no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Histogram counts observations into fixed buckets. Bounds are the
// inclusive upper edges, ascending; every histogram has an implicit
// +Inf bucket at the end, so len(counts) == len(bounds)+1. Observations
// also accumulate into a total sum and count, which is what the
// Prometheus text format and mean latency derivations need.
//
// The counts are independent atomics and the sum is a CAS loop on the
// float bits, so concurrent observers never lose an event (asserted by
// the package's -race test) while the hot path stays lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// DefSecondsBuckets are the default latency bounds (seconds): 100 µs to
// ~100 s in decade-ish steps, tuned for the stage and frame timings
// this code base observes.
func DefSecondsBuckets() []float64 {
	return []float64{1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1, 5, 10, 50, 100}
}

// NewHistogram builds a histogram with the given ascending upper
// bounds (nil = DefSecondsBuckets). The bounds slice is copied.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefSecondsBuckets()
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Buckets are few (≈13): linear scan beats binary search on real
	// hardware at this size and keeps the code branch-predictable.
	i := len(h.bounds)
	for j, ub := range h.bounds {
		if v <= ub {
			i = j
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// A Registry names and owns a run's instruments. Lookup lazily creates
// the instrument on first use; callers resolve instruments once and
// keep the pointers (lookups take a mutex, instrument use does not).
// A nil *Registry hands out nil instruments, turning a whole
// instrumentation tree into no-ops with one decision at the root.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use
// (nil registry → nil counter).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (nil bounds = DefSecondsBuckets; bounds of an
// existing histogram are not re-checked).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot. Label names the origin of the
// value — in merged cluster snapshots it attributes the surviving
// maximum to the server that held it (empty for in-process snapshots).
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Label string `json:"label,omitempty"`
}

// HistogramValue is one histogram in a snapshot. Counts are per-bucket
// (not cumulative) and Counts[len(Bounds)] is the +Inf bucket.
type HistogramValue struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`

	// sumTerms carries the constituent per-server sums through a chain
	// of merges (nil for a leaf snapshot, where Sum is the only term).
	// Float addition is not associative, so a pairwise fold of merges
	// would drift from a flat merge by intermediate rounding; keeping
	// the multiset of terms and always deriving Sum as its sorted fold
	// makes MergeSnapshots associative and commutative to the bit. The
	// field is in-memory only: JSON and the binary codec see Sum.
	sumTerms []float64
}

// Snapshot is a deterministic point-in-time view of a registry: every
// slice is sorted by instrument name, so equal registry states always
// render byte-identically.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state (empty for nil).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the named counter's value in the snapshot (0 when
// absent) — the lookup reports and tests use.
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value in the snapshot (0 when absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}
