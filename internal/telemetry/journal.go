package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file is the package's flight recorder: a race-clean, nil-tolerant,
// bounded ring of typed events. Where the Registry answers "how much",
// the Journal answers "in what order" — the sequence of dials, retries,
// stalls, commits and degrade decisions that led a run to where it
// ended, kept cheap enough to leave on in production.
//
// Design constraints, matching the Registry:
//
//   - Bounded: the ring holds at most its capacity; older events are
//     overwritten and counted in Dropped, so a misbehaving loop can
//     never grow memory — the most recent history (the part that
//     explains a failure) is what survives.
//   - Nil-tolerant: every method on a nil *Journal or nil *Sampler is a
//     no-op, so call sites need no conditionals.
//   - Monotonic: event times are offsets from the journal's start on
//     the monotonic clock, taken under the ring lock, so a snapshot's
//     events are always in non-decreasing time order — the property the
//     FRJR codec and frtrace's timeline merge rely on.

// DefaultJournalCap is the ring capacity NewJournal uses for cap <= 0.
// 4096 events × ~100 B ≈ 400 KB per journal: enough to hold several
// rounds of history, small enough to keep one per server.
const DefaultJournalCap = 4096

// An Attr is one key/value pair on an event. Attrs are an ordered
// slice, not a map: order is preserved through the codec, which is what
// makes decode⇒re-encode byte-identical.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// An Event is one entry in the journal: when (offset from the journal
// epoch on the monotonic clock), which component, what kind of event,
// and a small ordered attribute list.
type Event struct {
	T         time.Duration `json:"t_ns"`
	Component string        `json:"component"`
	Kind      string        `json:"kind"`
	Attrs     []Attr        `json:"attrs,omitempty"`
}

// Attr returns the value of the first attribute named k ("" when
// absent) — the lookup frtrace and the tests use.
func (e Event) Attr(k string) string {
	for _, a := range e.Attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// A Journal is a bounded ring of events. The zero value is not usable —
// construct with NewJournal — but a nil *Journal is: every method
// no-ops, so an uninstrumented run pays one branch per call site.
type Journal struct {
	start  time.Time // epoch; carries the monotonic reading
	base   int64     // wall-clock UnixNano at start, for cross-journal merge
	server string    // origin label stamped into snapshots

	mu      sync.Mutex
	buf     []Event // ring storage; len grows to cap then stays
	next    int     // index the next event lands at once the ring is full
	dropped int64   // events overwritten since start
}

// NewJournal builds a journal with the given ring capacity
// (cap <= 0 = DefaultJournalCap). The epoch is now.
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	now := time.Now()
	return &Journal{
		start: now,
		base:  now.UnixNano(),
		buf:   make([]Event, 0, capacity),
	}
}

// SetServer sets the origin label stamped into snapshots. Call before
// recording begins (it is not synchronised with Snapshot).
func (j *Journal) SetServer(label string) {
	if j == nil {
		return
	}
	j.server = label
}

// Record appends one event. kv is alternating key, value pairs; a
// dangling key gets an empty value. When the ring is full the oldest
// event is overwritten and Dropped incremented.
func (j *Journal) Record(component, kind string, kv ...string) {
	if j == nil {
		return
	}
	var attrs []Attr
	if len(kv) > 0 {
		attrs = make([]Attr, 0, (len(kv)+1)/2)
		for i := 0; i < len(kv); i += 2 {
			a := Attr{K: kv[i]}
			if i+1 < len(kv) {
				a.V = kv[i+1]
			}
			attrs = append(attrs, a)
		}
	}
	j.mu.Lock()
	// The offset is taken under the lock so ring order is time order.
	e := Event{T: time.Since(j.start), Component: component, Kind: kind, Attrs: attrs}
	if len(j.buf) < cap(j.buf) {
		j.buf = append(j.buf, e)
	} else {
		j.buf[j.next] = e
		j.next = (j.next + 1) % len(j.buf)
		j.dropped++
	}
	j.mu.Unlock()
}

// Dropped returns the number of events overwritten so far (0 for nil).
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// A JournalSnapshot is a deterministic point-in-time view of one
// journal: the origin server, the wall-clock epoch (UnixNano) that
// anchors event offsets for cross-server merging, the overwrite count,
// and the surviving events in non-decreasing T order.
type JournalSnapshot struct {
	Server  string  `json:"server,omitempty"`
	Base    int64   `json:"base_unix_nano"`
	Dropped int64   `json:"dropped,omitempty"`
	Events  []Event `json:"events"`
}

// Wall returns the absolute wall-clock time of e in UnixNano, derived
// from the snapshot's epoch.
func (s JournalSnapshot) Wall(e Event) int64 { return s.Base + int64(e.T) }

// Snapshot captures the journal's current state: events oldest-first.
// A nil journal yields the zero snapshot.
func (j *Journal) Snapshot() JournalSnapshot {
	if j == nil {
		return JournalSnapshot{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JournalSnapshot{Server: j.server, Base: j.base, Dropped: j.dropped}
	if len(j.buf) == 0 {
		return s
	}
	s.Events = make([]Event, 0, len(j.buf))
	// next is where the oldest surviving event sits once the ring wraps
	// (0, the buffer head, before that).
	s.Events = append(s.Events, j.buf[j.next:]...)
	s.Events = append(s.Events, j.buf[:j.next]...)
	return s
}

// A Sampler thins a hot-path event stream: it records every Nth call
// (the first call always records, so short runs still leave a trace).
// The counter is atomic, so concurrent callers race only on which of
// them records — never on the journal itself. Nil-tolerant like its
// journal.
type Sampler struct {
	j     *Journal
	every uint64
	n     atomic.Uint64
}

// Sampler returns a sampler over j recording one event per every calls
// (every <= 1 records all). A nil journal yields a nil sampler.
func (j *Journal) Sampler(every int) *Sampler {
	if j == nil {
		return nil
	}
	if every < 1 {
		every = 1
	}
	return &Sampler{j: j, every: uint64(every)}
}

// Record counts one call and, on every Nth, records the event.
func (s *Sampler) Record(component, kind string, kv ...string) {
	if s == nil {
		return
	}
	if (s.n.Add(1)-1)%s.every != 0 {
		return
	}
	s.j.Record(component, kind, kv...)
}
